#!/usr/bin/env sh
# Wall-clock benchmark baseline for the simulator's hot paths, emitted as
# BENCH_simulator.json so the trajectory is diffable across PRs.
#
# Covered series:
#   Fastpath{LoadByte,StoreByte,ReadU64,Memcpy4K,Memset4K}  per-byte/word
#       checked access, span TLB vs naive per-page walk (internal/cubicle)
#   FastpathHTTPD          full HTTP request loop, tracing off, TLB vs naive
#   FastpathHTTPDPaired    the same pair interleaved batch-by-batch; its
#       "ratio" metric (tlb over naive) is the drift-immune comparison
#       that -assert gates
#   Fig7Nginx/65536B       the paper's figure workload (wall + virtual time)
#   CallTracing{Disabled,Enabled}  crossing cost with the tracer off/on
#   CallTracingPaired      the same pair interleaved batch-by-batch; its
#       "ratio" metric is the drift-immune tracing-overhead measurement
#   SMPSiege/cores-{1,2,4} sharded open-loop siege per core count: wallrps
#       shows wall-clock scaling, gvtcycles/ok are deterministic
#   ClusterGoodput/backends-{1,2,4}  the virtual cluster behind the
#       health-aware balancer: goodputrps/ok are deterministic and must
#       scale near-linearly with fleet size
#
# The JSON also records tracing_overhead_ratio (CallTracingPaired's ratio
# metric): the cost of leaving the observability layer on. -assert gates
# it.
#
# Virtual-time metrics (vcycles/op, vms/op) are identical whatever the
# wall-clock numbers do — that invariant is enforced by the differential
# fuzz test and the figure golden tests, not by this script.
#
# Usage: scripts/bench.sh [-quick] [-assert]
#   -quick   one iteration per bench (CI smoke: compiles and runs each
#            bench body once; the JSON is written to /dev/null)
#   -assert  run only the gate benches and exit non-zero when a gate
#            fails:
#              - tracing-overhead ratio > MAX_TRACING_RATIO (default 1.6)
#                — the always-on observability gate
#              - FastpathHTTPD/tlb ns/op > MAX_TLB_RATIO (default 1.15) ×
#                FastpathHTTPD/naive — the span TLB must not cost wall
#                time on the end-to-end request loop (the two are
#                statistically tied; the margin absorbs host noise)
#              - SMPSiege wallrps at cores=2 < MIN_SMP_SCALING (default
#                1.4) × wallrps at cores=1 — the BKL-free monitor must
#                scale with real cores. Skipped when nproc < 4: on a
#                box without spare cores the workers time-slice one CPU
#                and wall-clock scaling is physically impossible.
set -eu

cd "$(dirname "$0")/.."

BENCHTIME="${BENCHTIME:-1s}"
HTTPTIME="500x"
OUT="BENCH_simulator.json"
MAX_TRACING_RATIO="${MAX_TRACING_RATIO:-1.6}"
MAX_TLB_RATIO="${MAX_TLB_RATIO:-1.15}"
MIN_SMP_SCALING="${MIN_SMP_SCALING:-1.4}"
MODE=full
for arg in "$@"; do
    case "$arg" in
    -quick)  MODE=quick ;;
    -assert) MODE=assert ;;
    *) echo "bench.sh: unknown flag $arg" >&2; exit 2 ;;
    esac
done
if [ "$MODE" = quick ]; then
    BENCHTIME=1x
    HTTPTIME=1x
    OUT=/dev/null
fi

TMP="$(mktemp)"
trap 'rm -f "$TMP"' EXIT

if [ "$MODE" != assert ]; then
    go test -run '^$' -bench 'Fastpath' -benchtime "$BENCHTIME" ./internal/cubicle/ | tee -a "$TMP"
    go test -run '^$' -bench 'FastpathHTTPD' -benchtime "$HTTPTIME" . | tee -a "$TMP"
    go test -run '^$' -bench 'Fig7Nginx/65536B' -benchtime "$HTTPTIME" . | tee -a "$TMP"
    go test -run '^$' -bench 'SMPSiege' -benchtime "$HTTPTIME" . | tee -a "$TMP"
    go test -run '^$' -bench 'ClusterGoodput' -benchtime "$HTTPTIME" . | tee -a "$TMP"
    # Warm-restart MTTR: checkpointed vs cold chaos-siege recovery. The
    # interesting metrics are deterministic virtual-clock series
    # (warm/colddegradedcycles, warm/coldfailed), so one iteration is
    # enough; TestWarmVsColdSiege asserts warm strictly beats cold.
    go test -run '^$' -bench 'WarmRestartMTTR' -benchtime 1x . | tee -a "$TMP"
fi
# The ratio gate reads BenchmarkCallTracingPaired's "ratio" metric:
# traced and untraced batches interleave at ~100 µs granularity inside
# one benchmark, so host-load drift hits both sides equally and cancels
# in the quotient — the separate Disabled/Enabled benches above report
# absolute ns/op but their quotient is hostage to noise between the two
# measurement blocks. -assert averages three repetitions.
COUNT=1
[ "$MODE" = assert ] && COUNT=3
go test -run '^$' -bench 'CallTracing' -benchtime "$BENCHTIME" -count "$COUNT" ./internal/cubicle/ | tee -a "$TMP"

RATIO="$(awk '
/^BenchmarkCallTracingPaired/ {
    for (i = 3; i + 1 <= NF; i += 2) {
        if ($(i + 1) == "ratio") { r += $i; n++ }
    }
}
END {
    if (n == 0) { print "0"; exit }
    printf "%.3f", r / n
}' "$TMP")"

if [ "$MODE" = assert ]; then
    echo "bench.sh: tracing overhead ratio $RATIO (max $MAX_TRACING_RATIO)"
    awk -v r="$RATIO" -v max="$MAX_TRACING_RATIO" 'BEGIN {
        if (r <= 0) { print "bench.sh: assert: no CallTracing measurements"; exit 1 }
        if (r > max) {
            printf "bench.sh: assert: tracing overhead %.3fx exceeds %.2fx\n", r, max
            exit 1
        }
        printf "bench.sh: assert ok: tracing %.3fx <= %.2fx\n", r, max
    }' || exit 1

    # Span-TLB wall-clock gate: the TLB-enabled request loop must not be
    # slower than the naive per-page walk (within the noise margin). The
    # paired bench interleaves the two variants batch-by-batch on one
    # server, so warm-up and host-load drift cancel in its ratio metric —
    # comparing the sequential tlb/naive sub-benches instead is hostage
    # to whichever ran first in a cold process.
    HTTPTMP="$(mktemp)"
    go test -run '^$' -bench 'FastpathHTTPDPaired' -benchtime 300x -count 3 . | tee "$HTTPTMP"
    awk -v max="$MAX_TLB_RATIO" '
    /^BenchmarkFastpathHTTPDPaired/ {
        for (i = 3; i + 1 <= NF; i += 2) {
            if ($(i + 1) == "ratio") { r += $i; n++ }
        }
    }
    END {
        if (n == 0) { print "bench.sh: assert: no FastpathHTTPDPaired measurements"; exit 1 }
        r /= n
        if (r > max) {
            printf "bench.sh: assert: FastpathHTTPD tlb/naive %.3fx exceeds %.2fx\n", r, max
            exit 1
        }
        printf "bench.sh: assert ok: FastpathHTTPD tlb/naive %.3fx <= %.2fx\n", r, max
    }' "$HTTPTMP" || { rm -f "$HTTPTMP"; exit 1; }
    rm -f "$HTTPTMP"

    # SMP wall-clock scaling gate: with the BKL gone, two real cores must
    # serve meaningfully more requests per wall second than one. Only
    # meaningful when the host has cores to spare for the workers.
    if [ "$(nproc)" -ge 4 ]; then
        SMPTMP="$(mktemp)"
        go test -run '^$' -bench 'SMPSiege/cores-[12]$' -benchtime 1x -count 3 . | tee "$SMPTMP"
        awk -v min="$MIN_SMP_SCALING" '
        /^BenchmarkSMPSiege\/cores-1/ { for (i = 3; i + 1 <= NF; i += 2) if ($(i+1) == "wallrps") { c1 += $i; n1++ } }
        /^BenchmarkSMPSiege\/cores-2/ { for (i = 3; i + 1 <= NF; i += 2) if ($(i+1) == "wallrps") { c2 += $i; n2++ } }
        END {
            if (n1 == 0 || n2 == 0) { print "bench.sh: assert: no SMPSiege measurements"; exit 1 }
            s = (c2 / n2) / (c1 / n1)
            if (s < min) {
                printf "bench.sh: assert: SMPSiege cores-2/cores-1 wallrps scaling %.2fx below %.2fx\n", s, min
                exit 1
            }
            printf "bench.sh: assert ok: SMPSiege scaling %.2fx >= %.2fx\n", s, min
        }' "$SMPTMP" || { rm -f "$SMPTMP"; exit 1; }
        rm -f "$SMPTMP"
    else
        echo "bench.sh: assert: skipping SMPSiege scaling gate (nproc=$(nproc) < 4)"
    fi
    exit 0
fi

awk -v benchtime="$BENCHTIME" -v ratio="$RATIO" -v np="$(nproc)" '
BEGIN {
    printf "{\n \"generated_by\": \"scripts/bench.sh\",\n"
    printf " \"benchtime\": \"%s\",\n \"benches\": [\n", benchtime
    sep = ""
}
/^Benchmark/ {
    name = $1
    # Strip the -GOMAXPROCS suffix. Go only appends it when GOMAXPROCS > 1,
    # and a blind -[0-9]+$ strip would eat real name parts like
    # SMPSiege/cores-1 on a single-CPU host.
    if (np > 1) sub("-" np "$", "", name)
    printf "%s  {\"name\": \"%s\", \"iterations\": %s", sep, name, $2
    for (i = 3; i + 1 <= NF; i += 2) {
        printf ", \"%s\": %s", $(i + 1), $i
    }
    printf "}"
    sep = ",\n"
}
END {
    printf "\n ],\n"
    printf " \"tracing_overhead_ratio\": %s\n}\n", ratio
}
' "$TMP" > "$OUT"

[ "$OUT" = /dev/null ] || echo "bench.sh: wrote $OUT (tracing overhead ${RATIO}x)"
