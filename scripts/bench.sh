#!/usr/bin/env sh
# Wall-clock benchmark baseline for the simulator's hot paths, emitted as
# BENCH_simulator.json so the trajectory is diffable across PRs.
#
# Covered series:
#   Fastpath{LoadByte,StoreByte,ReadU64,Memcpy4K,Memset4K}  per-byte/word
#       checked access, span TLB vs naive per-page walk (internal/cubicle)
#   FastpathHTTPD          full HTTP request loop, tracing off, TLB vs naive
#   Fig7Nginx/65536B       the paper's figure workload (wall + virtual time)
#   CallTracing{Disabled,Enabled}  crossing cost with the tracer off/on
#   SMPSiege/cores-{1,2,4} sharded open-loop siege per core count: wallrps
#       shows wall-clock scaling, gvtcycles/ok are deterministic
#
# Virtual-time metrics (vcycles/op, vms/op) are identical whatever the
# wall-clock numbers do — that invariant is enforced by the differential
# fuzz test and the figure golden tests, not by this script.
#
# Usage: scripts/bench.sh [-quick]
#   -quick  one iteration per bench (CI smoke: compiles and runs each
#           bench body once; the JSON is written to /dev/null)
set -eu

cd "$(dirname "$0")/.."

BENCHTIME="${BENCHTIME:-1s}"
HTTPTIME="500x"
OUT="BENCH_simulator.json"
if [ "${1:-}" = "-quick" ]; then
    BENCHTIME=1x
    HTTPTIME=1x
    OUT=/dev/null
fi

TMP="$(mktemp)"
trap 'rm -f "$TMP"' EXIT

go test -run '^$' -bench 'Fastpath' -benchtime "$BENCHTIME" ./internal/cubicle/ | tee -a "$TMP"
go test -run '^$' -bench 'FastpathHTTPD' -benchtime "$HTTPTIME" . | tee -a "$TMP"
go test -run '^$' -bench 'Fig7Nginx/65536B' -benchtime "$HTTPTIME" . | tee -a "$TMP"
go test -run '^$' -bench 'SMPSiege' -benchtime "$HTTPTIME" . | tee -a "$TMP"
go test -run '^$' -bench 'CallTracing' -benchtime "$BENCHTIME" ./internal/cubicle/ | tee -a "$TMP"

awk -v benchtime="$BENCHTIME" '
BEGIN {
    printf "{\n \"generated_by\": \"scripts/bench.sh\",\n"
    printf " \"benchtime\": \"%s\",\n \"benches\": [\n", benchtime
    sep = ""
}
/^Benchmark/ {
    name = $1
    sub(/-[0-9]+$/, "", name)   # strip the -GOMAXPROCS suffix
    printf "%s  {\"name\": \"%s\", \"iterations\": %s", sep, name, $2
    for (i = 3; i + 1 <= NF; i += 2) {
        printf ", \"%s\": %s", $(i + 1), $i
    }
    printf "}"
    sep = ",\n"
}
END { printf "\n ]\n}\n" }
' "$TMP" > "$OUT"

[ "$OUT" = /dev/null ] || echo "bench.sh: wrote $OUT"
