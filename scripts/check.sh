#!/usr/bin/env sh
# CI gate: static checks, full test suite (with the race detector), and a
# smoke run of the tracing CLI that validates its own output invariants
# (-check: chrome JSON parses, trace-derived counters equal Stats, the
# cycle profile covers the virtual clock).
set -eux

cd "$(dirname "$0")/.."

go vet ./...
go build ./...
go test -race ./...
go test -race ./internal/faultinject/...

# Span fast-path gates: the TLB-vs-naive differential fuzz seeds (run as
# unit tests), a race pass over the cubicle runtime, and a bench smoke
# that compiles and runs every hot-path bench body once.
go test -race -run FuzzSpanTLBDifferential ./internal/cubicle/
go test -race ./internal/cubicle/...
./scripts/bench.sh -quick >/dev/null

go run ./cmd/cubicle-trace -format chrome -requests 5 -check >/dev/null
go run ./cmd/cubicle-trace -format prom -requests 5 -check >/dev/null
go run ./cmd/cubicle-trace -format json -requests 5 -check >/dev/null

# Chaos smoke: deterministic fault injection into RAMFS under supervision.
# The run must contain every injected fault, recover to 200 after disarm,
# and keep the trace/stats invariants (-check) over the chaotic schedule.
go run ./cmd/cubicle-trace -format json -requests 40 -chaos-seed 7 -check >/dev/null

# Overload smoke: open-loop sweep below and past the saturation knee.
# -assert-degrade exits non-zero unless the governed server sheds
# explicitly, keeps connections and memory bounded, and drops nothing.
go run ./cmd/httpbench -openloop -rates 1000,8000 -requests 120 -assert-degrade >/dev/null

echo "check.sh: all green"
