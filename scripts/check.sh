#!/usr/bin/env sh
# CI gate: static checks, full test suite (with the race detector), and a
# smoke run of the tracing CLI that validates its own output invariants
# (-check: chrome JSON parses, trace-derived counters equal Stats, the
# cycle profile covers the virtual clock).
set -eux

cd "$(dirname "$0")/.."

go vet ./...
go build ./...
go test -race ./...
go test -race ./internal/faultinject/...

# Span fast-path gates: the TLB-vs-naive differential fuzz seeds (run as
# unit tests), a race pass over the cubicle runtime, and a bench smoke
# that compiles and runs every hot-path bench body once.
go test -race -run FuzzSpanTLBDifferential ./internal/cubicle/
go test -race ./internal/cubicle/...
./scripts/bench.sh -quick >/dev/null

go run ./cmd/cubicle-trace -format chrome -requests 5 -check >/dev/null
go run ./cmd/cubicle-trace -format prom -requests 5 -check >/dev/null
go run ./cmd/cubicle-trace -format json -requests 5 -check >/dev/null

# Chaos smoke: deterministic fault injection into RAMFS under supervision.
# The run must contain every injected fault, recover to 200 after disarm,
# and keep the trace/stats invariants (-check) over the chaotic schedule.
go run ./cmd/cubicle-trace -format json -requests 40 -chaos-seed 7 -check >/dev/null

# Overload smoke: open-loop sweep below and past the saturation knee.
# -assert-degrade exits non-zero unless the governed server sheds
# explicitly, keeps connections and memory bounded, and drops nothing.
go run ./cmd/httpbench -openloop -rates 1000,8000 -requests 120 -assert-degrade >/dev/null

# SMP gates: the multi-core paths (per-core clocks, GVT barriers, retag
# shootdowns, parallel siege, chaos under SMP) under the race detector,
# the concurrent-retag fuzz seeds, and the 1-core byte-identity golden —
# cores=1 must reproduce the pre-SMP Figure 7 exactly.
go test -race -run 'SMP|Shootdown|Parallel' ./internal/cubicle/ ./internal/uksched/ ./internal/siege/ ./internal/cycles/
go test -race -run FuzzSpanTLBConcurrent ./internal/cubicle/
go run ./cmd/cubicle-bench -fig 7 | diff - cmd/cubicle-bench/testdata/fig7_seed.golden

# SMP siege smoke: the sharded open-loop driver at 2 and 4 cores must
# complete. The wall-clock scaling assertion (>=2x on 4 cores) only means
# anything on a host with >=4 CPUs; on smaller hosts the sweep still runs
# but the ratio is not enforced.
if [ "$(nproc)" -ge 4 ]; then
    go run ./cmd/httpbench -cores 4 -rates 2000,4000 -requests 200 -assert-scale 2
else
    echo "check.sh: $(nproc) CPU(s); SMP siege smoke without the scaling assertion"
    go run ./cmd/httpbench -cores 4 -rates 2000 -requests 100 >/dev/null
fi
go run ./cmd/httpbench -cores 2 -rates 2000 -requests 100 >/dev/null

# Recovery gates: the snapshot codec (round-trip, determinism, corruption
# rejection, fuzz seeds run as unit tests), the checkpoint/warm-restart
# suite (warm restore, snapshot veto, cold fallback, quiescence skip,
# budget exhaustion, warm-vs-cold siege) under the race detector, and a
# record/replay smoke at 1 and 4 cores: -replay -until re-executes the
# chaos run and requires the event streams to be bit-identical up to the
# halt cycle.
go test -race ./internal/snapshot/
go test -race -run FuzzSnapshotDecode ./internal/snapshot/
go test -race -run 'Checkpoint|Snapshot|Restore|WarmRestart|WarmVsCold|RestartBudget|ReplayDeterminism' ./internal/cubicle/ ./internal/siege/
go run ./cmd/cubicle-trace -replay -requests 10 -chaos-seed 7 -checkpoint 500000 -until 3000000 >/dev/null
go run ./cmd/cubicle-trace -replay -cores 4 -requests 10 -chaos-seed 7 -checkpoint 500000 -until 3000000 >/dev/null

# Cluster gates: the virtual cluster behind the health-aware balancer —
# keep-alive/pipelining, wire-drop determinism, the failover suite (drain,
# warm re-admission, retry budget, five-run DeepEqual under chaos) under
# the race detector, and the end-to-end acceptance scenario: killing one
# of four backends mid-flood keeps goodput >= 60% of steady state, the
# victim is re-admitted after a warm restart, and two seeded runs are
# bit-identical.
go test -race ./internal/cluster/
go test -race -run 'KeepAlive|HTTP10|WireDrop' ./internal/siege/ ./internal/netdev/ ./internal/faultinject/
go run ./cmd/httpbench -cluster 4 -assert-degrade >/dev/null
go run ./cmd/cubicle-top -cluster 2 -requests 180 >/dev/null
go run ./cmd/cubicle-inspect -cluster 2 -json >/dev/null

# Observability gates: SMP merge invariants over the sharded rings at
# cores=4, the /metrics exposition and dashboard smoke, and the
# tracing-overhead ratio (paired benchmark, drift-immune; <= 1.6).
go run ./cmd/cubicle-trace -check -format json -cores 4 -requests 10 >/dev/null
go run ./cmd/cubicle-top -once -requests 120 >/dev/null
./scripts/bench.sh -assert

echo "check.sh: all green"
