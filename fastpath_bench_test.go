// Wall-clock benchmark for the span fast path at the system level: the
// full HTTPD request loop (parse, RAMFS read, LWIP send) with the span
// TLB on versus forced onto the legacy per-page walk. Unlike the Figure
// benches this measures simulator speed (ns/op), not virtual cycles —
// the virtual clock is identical in both variants by construction.
package cubicleos_test

import (
	"testing"
	"time"

	"cubicleos"
	"cubicleos/internal/siege"
)

func BenchmarkFastpathHTTPD(b *testing.B) {
	for _, v := range []struct {
		name string
		tlb  bool
	}{{"tlb", true}, {"naive", false}} {
		b.Run(v.name, func(b *testing.B) {
			// ReapClosed keeps per-request cost flat over thousands of
			// iterations (closed sockets are reclaimed instead of
			// accumulating in the poll loop).
			tgt, err := siege.NewTargetOpts(siege.Options{Mode: cubicleos.ModeFull, ReapClosed: true})
			if err != nil {
				b.Fatal(err)
			}
			tgt.Sys.M.SetTLBEnabled(v.tlb)
			if err := tgt.PutFile("/f.bin", make([]byte, 64<<10)); err != nil {
				b.Fatal(err)
			}
			if _, err := tgt.Fetch("/f.bin"); err != nil { // warm-up
				b.Fatal(err)
			}
			start := tgt.Sys.M.Clock.Cycles()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				if _, err := tgt.Fetch("/f.bin"); err != nil {
					b.Fatal(err)
				}
			}
			b.StopTimer()
			// Virtual time per request must be the same in both variants.
			per := float64(tgt.Sys.M.Clock.Cycles()-start) / float64(b.N)
			b.ReportMetric(per, "vcycles/op")
		})
	}
}

// BenchmarkFastpathHTTPDPaired measures the TLB-on/TLB-off wall-clock
// ratio with the two variants interleaved batch-by-batch on one server
// (SetTLBEnabled flips at runtime and leaves virtual time untouched), so
// process warm-up and host-load drift hit both sides equally and cancel
// in the quotient — the sequential sub-benchmarks above always run "tlb"
// first into a cold process, which biases their difference. The "ratio"
// metric (tlb over naive; below 1.0 means the TLB wins) is what
// scripts/bench.sh -assert gates.
func BenchmarkFastpathHTTPDPaired(b *testing.B) {
	tgt, err := siege.NewTargetOpts(siege.Options{Mode: cubicleos.ModeFull, ReapClosed: true})
	if err != nil {
		b.Fatal(err)
	}
	if err := tgt.PutFile("/f.bin", make([]byte, 64<<10)); err != nil {
		b.Fatal(err)
	}
	if _, err := tgt.Fetch("/f.bin"); err != nil { // warm-up
		b.Fatal(err)
	}
	const batch = 4
	var tTLB, tNaive time.Duration
	b.ResetTimer()
	for n := 0; n < b.N; n += batch {
		k := batch
		if rem := b.N - n; rem < k {
			k = rem
		}
		tgt.Sys.M.SetTLBEnabled(true)
		t0 := time.Now()
		for i := 0; i < k; i++ {
			if _, err := tgt.Fetch("/f.bin"); err != nil {
				b.Fatal(err)
			}
		}
		t1 := time.Now()
		tgt.Sys.M.SetTLBEnabled(false)
		for i := 0; i < k; i++ {
			if _, err := tgt.Fetch("/f.bin"); err != nil {
				b.Fatal(err)
			}
		}
		tTLB += t1.Sub(t0)
		tNaive += time.Since(t1)
	}
	b.StopTimer()
	if tNaive > 0 {
		b.ReportMetric(float64(tTLB)/float64(tNaive), "ratio")
	}
}
