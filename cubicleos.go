// Package cubicleos is a Go reproduction of CubicleOS (Sartakov, Vilanova,
// Pietzuch — ASPLOS 2021): a library OS that isolates its components —
// cubicles — with Intel MPK memory tagging while keeping the monolithic,
// direct-call programming model, using windows for zero-copy data sharing
// and trusted trampolines for cross-cubicle control transfers.
//
// Because the Go runtime owns the process address space, the MPK hardware
// is simulated: all component memory lives in a software-managed paged
// address space with per-page 4-bit keys and per-thread PKRU registers,
// and a virtual cycle clock charges each architectural event the cost the
// paper reports (wrpkru ≈ 20 cycles, page retag ≈ 1,100 cycles, …). See
// DESIGN.md for the substitution argument and EXPERIMENTS.md for the
// reproduced evaluation.
//
// The package is a facade over the implementation packages:
//
//   - Monitor, Cubicle, Window, trampolines:  internal/cubicle
//   - simulated memory and MPK:               internal/vm, internal/mpk
//   - library OS components:                  internal/{vfscore,ramfs,lwip,netdev,ualloc,uktime,plat,ulibc,urandom}
//   - applications:                           internal/{httpd,sqldb,speedtest}
//   - baselines and figures:                  internal/{ukernel,experiments}
//
// # Quickstart
//
//	sys := cubicleos.MustBoot(cubicleos.Config{Mode: cubicleos.ModeFull})
//	// register components with the Builder before booting, open windows
//	// with Env.WindowOpen, call across cubicles with resolved Handles.
//
// See examples/quickstart for a complete program.
package cubicleos

import (
	"cubicleos/internal/boot"
	"cubicleos/internal/cubicle"
	"cubicleos/internal/cycles"
	"cubicleos/internal/faultinject"
	"cubicleos/internal/trace"
	"cubicleos/internal/vm"
)

// Core abstractions (§3 of the paper).
type (
	// Monitor is the trusted memory monitor: it enforces cubicle
	// isolation and window permissions via lazy trap-and-map.
	Monitor = cubicle.Monitor
	// Env is the execution environment of component code: checked memory
	// access, allocation, and the window API of Table 1.
	Env = cubicle.Env
	// Thread is a user-level thread with its own PKRU and per-cubicle
	// stacks.
	Thread = cubicle.Thread
	// Cubicle is one isolation compartment.
	Cubicle = cubicle.Cubicle
	// CubicleID identifies a cubicle; all IDs are fixed at link time.
	CubicleID = cubicle.ID
	// WindowID identifies a window within its owning cubicle.
	WindowID = cubicle.WID
	// Handle is a resolved cross-cubicle call target.
	Handle = cubicle.Handle
	// Component describes a loadable library OS or application component.
	Component = cubicle.Component
	// ExportDecl declares one public entry point of a component.
	ExportDecl = cubicle.ExportDecl
	// Fn is the uniform entry-point signature.
	Fn = cubicle.Fn
	// Builder is the trusted component builder.
	Builder = cubicle.Builder
	// Loader is the trusted cubicle loader.
	Loader = cubicle.Loader
	// Mode selects how much of the isolation machinery is active.
	Mode = cubicle.Mode
	// Addr is a simulated virtual address.
	Addr = vm.Addr
	// Costs is the cycle cost model.
	Costs = cycles.Costs
	// Clock is the virtual cycle clock.
	Clock = cycles.Clock
	// Tracer is the observability layer: an event ring, per-edge cycle
	// histograms and a per-cubicle cycle profiler over the virtual clock.
	// Attach one with Monitor.EnableTracing or Config.TraceEvents.
	Tracer = trace.Tracer
	// TraceEvent is one entry of the trace ring.
	TraceEvent = trace.Event
	// TraceSnapshot is the machine-readable digest of a traced run.
	TraceSnapshot = trace.Snapshot
	// CycleProfile is the per-cubicle "where did the time go" report.
	CycleProfile = trace.Profile
)

// Isolation modes (the Figure 6 ablation ladder).
const (
	ModeUnikraft   = cubicle.ModeUnikraft
	ModeTrampoline = cubicle.ModeTrampoline
	ModeNoACL      = cubicle.ModeNoACL
	ModeFull       = cubicle.ModeFull
)

// Component kinds.
const (
	KindIsolated = cubicle.KindIsolated
	KindShared   = cubicle.KindShared
)

// Fault types raised on isolation violations.
type (
	// ProtectionFault is a memory access denied by cubicle isolation.
	ProtectionFault = cubicle.ProtectionFault
	// CFIFault is a control-flow-integrity violation.
	CFIFault = cubicle.CFIFault
	// APIError is a denied monitor API request.
	APIError = cubicle.APIError
	// BudgetFault is a crossing that exceeded the supervisor's watchdog
	// cycle budget.
	BudgetFault = cubicle.BudgetFault
	// ContainedFault is the typed error a caller receives when a callee
	// cubicle faults (or is refused) under containment.
	ContainedFault = cubicle.ContainedFault
	// QuotaFault is a page grant denied by a cubicle's memory quota.
	// Transient: contained and rolled back without quarantining anyone.
	QuotaFault = cubicle.QuotaFault
	// DeadlineFault is a crossing abandoned because the thread's virtual
	// deadline expired. Transient, like QuotaFault.
	DeadlineFault = cubicle.DeadlineFault
)

// Fault containment and supervision (enable with Config.Supervision or
// Monitor.EnableContainment; see DESIGN.md §7).
type (
	// Supervisor contains faults at crossings, quarantines and restarts
	// faulting cubicles, and enforces the watchdog budget.
	Supervisor = cubicle.Supervisor
	// RestartPolicy parameterises the supervisor in virtual cycles.
	RestartPolicy = cubicle.RestartPolicy
	// Health is a cubicle's supervision state.
	Health = cubicle.Health
	// ChaosConfig configures the deterministic fault injector attached via
	// Config.Chaos.
	ChaosConfig = faultinject.Config
	// ChaosInjector is the seeded injector driving a chaos run.
	ChaosInjector = faultinject.Injector
	// RetryPolicy bounds RetryContained in attempts and virtual backoff.
	RetryPolicy = cubicle.RetryPolicy
)

// Cubicle health states.
const (
	Healthy     = cubicle.Healthy
	Quarantined = cubicle.Quarantined
	Dead        = cubicle.Dead
)

// Causes of fail-fast ContainedFaults on unhealthy cubicles.
var (
	ErrQuarantined = cubicle.ErrQuarantined
	ErrDead        = cubicle.ErrDead
)

// DefaultRestartPolicy returns the siege-tuned supervision policy.
func DefaultRestartPolicy() RestartPolicy { return cubicle.DefaultRestartPolicy() }

// CatchContained runs fn and returns the ContainedFault it raised, or nil.
// Components use it to degrade gracefully when a dependency cubicle is down.
func CatchContained(fn func()) *ContainedFault { return cubicle.CatchContained(fn) }

// IsTransient reports whether a contained fault is load-induced (quota or
// deadline) rather than a defect: transient faults never quarantine and
// are safe to retry or answer with backpressure (429/503 + Retry-After).
func IsTransient(cf *ContainedFault) bool { return cubicle.IsTransient(cf) }

// DefaultRetryPolicy returns the bounded retry-with-virtual-backoff policy
// used by the overload experiments.
func DefaultRetryPolicy() RetryPolicy { return cubicle.DefaultRetryPolicy() }

// RetryContained runs fn under containment, retrying transient and
// quarantine refusals with exponential backoff on the virtual clock. It
// returns the last fault, or nil once an attempt succeeds.
func RetryContained(e *Env, p RetryPolicy, fn func()) *ContainedFault {
	return cubicle.RetryContained(e, p, fn)
}

// System is a booted CubicleOS deployment with the standard library OS
// stack (PLAT, TIME, ALLOC, LIBC, RANDOM, VFSCORE, RAMFS, and optionally
// NETDEV + LWIP).
type System = boot.System

// Config describes a deployment for Boot.
type Config = boot.Config

// Boot assembles, builds, loads and wires a deployment.
func Boot(cfg Config) (*System, error) { return boot.NewFS(cfg) }

// MustBoot is Boot for programs where a boot failure is fatal.
func MustBoot(cfg Config) *System { return boot.MustNewFS(cfg) }

// NewMonitor creates a bare monitor for custom deployments that do not
// want the standard component stack.
func NewMonitor(mode Mode, costs Costs) *Monitor { return cubicle.NewMonitor(mode, costs) }

// NewBuilder creates a trusted component builder.
func NewBuilder() *Builder { return cubicle.NewBuilder() }

// NewLoader creates the loader for a monitor.
func NewLoader(m *Monitor) *Loader { return cubicle.NewLoader(m) }

// DefaultCosts returns the calibrated cost model (see EXPERIMENTS.md).
func DefaultCosts() Costs { return cycles.DefaultCosts() }

// Catch runs fn and returns the isolation fault it raised, if any.
func Catch(fn func()) error { return cubicle.Catch(fn) }

// PageSize is the simulated page size (4 KiB).
const PageSize = vm.PageSize
