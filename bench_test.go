// Benchmarks regenerating the paper's tables and figures (run with
// `go test -bench=. -benchmem`), plus ablation benches for the design
// choices DESIGN.md calls out.
//
// Wall-clock numbers measure the simulator; the reproduced quantities are
// the virtual-cycle metrics reported via b.ReportMetric:
//
//	vcycles/op   virtual cycles consumed per operation
//	vms/op       modelled milliseconds (2.2 GHz) per operation
//
// cmd/cubicle-bench prints the full figure tables; these benches give the
// same series in `go test -bench` form.
package cubicleos_test

import (
	"fmt"
	"testing"

	"cubicleos"
	"cubicleos/internal/boot"
	"cubicleos/internal/cluster"
	"cubicleos/internal/cubicle"
	"cubicleos/internal/experiments"
	"cubicleos/internal/siege"
	"cubicleos/internal/speedtest"
	"cubicleos/internal/vm"
)

var benchModes = []struct {
	name string
	mode cubicleos.Mode
}{
	{"unikraft", cubicleos.ModeUnikraft},
	{"no-mpk", cubicleos.ModeTrampoline},
	{"no-acl", cubicleos.ModeNoACL},
	{"cubicleos", cubicleos.ModeFull},
}

// reportVirtual attaches the virtual-clock metrics to a bench.
func reportVirtual(b *testing.B, clock *cubicleos.Clock, start uint64) {
	spent := clock.Cycles() - start
	per := float64(spent) / float64(b.N)
	b.ReportMetric(per, "vcycles/op")
	b.ReportMetric(per/2.2e6, "vms/op")
}

// --- Figure 6: SQLite speedtest1 under the ablation ladder -------------------

// BenchmarkFig6Speedtest runs one representative group-A query (160,
// indexed selects) and one group-B query (410, random big-table lookups)
// per mode.
func BenchmarkFig6Speedtest(b *testing.B) {
	for _, q := range []int{160, 410} {
		for _, m := range benchModes {
			b.Run(fmt.Sprintf("q%d/%s", q, m.name), func(b *testing.B) {
				t, err := experiments.NewSQLiteTarget(m.mode, nil, 50, experiments.UnikraftWorkScale)
				if err != nil {
					b.Fatal(err)
				}
				if err := t.Setup(); err != nil {
					b.Fatal(err)
				}
				start := t.Sys.M.Clock.Cycles()
				b.ResetTimer()
				for i := 0; i < b.N; i++ {
					if _, err := t.RunQuery(q); err != nil {
						b.Fatal(err)
					}
				}
				b.StopTimer()
				reportVirtual(b, t.Sys.M.Clock, start)
			})
		}
	}
}

// --- Figure 7: NGINX download latency vs transfer size ------------------------

func BenchmarkFig7Nginx(b *testing.B) {
	for _, size := range []int{1 << 10, 64 << 10, 1 << 20, 8 << 20} {
		for _, m := range []struct {
			name string
			mode cubicleos.Mode
		}{{"baseline", cubicleos.ModeUnikraft}, {"cubicleos", cubicleos.ModeFull}} {
			b.Run(fmt.Sprintf("%dB/%s", size, m.name), func(b *testing.B) {
				tgt, err := siege.NewTarget(m.mode)
				if err != nil {
					b.Fatal(err)
				}
				data := make([]byte, size)
				if err := tgt.PutFile("/f.bin", data); err != nil {
					b.Fatal(err)
				}
				if _, err := tgt.Fetch("/f.bin"); err != nil { // warm-up
					b.Fatal(err)
				}
				var total uint64
				b.ResetTimer()
				for i := 0; i < b.N; i++ {
					res, err := tgt.Fetch("/f.bin")
					if err != nil {
						b.Fatal(err)
					}
					total += res.Cycles + tgt.RequestFloor
				}
				b.StopTimer()
				per := float64(total) / float64(b.N)
				b.ReportMetric(per, "vcycles/op")
				b.ReportMetric(per/2.2e6, "vms/op")
			})
		}
	}
}

// --- SMP: sharded open-loop siege across core counts ---------------------------

// BenchmarkSMPSiege drives the parallel open-loop driver at 1, 2 and 4
// simulated cores — one booted system per core, stepped by real worker
// goroutines under GVT quantum barriers. wallrps is the wall-clock
// throughput figure that scales with host parallelism; the virtual-time
// metrics (gvtcycles, ok) are deterministic per configuration and must
// not move between runs or machines.
func BenchmarkSMPSiege(b *testing.B) {
	mk := func(core int) (*siege.Target, error) {
		tgt, err := siege.NewTarget(cubicleos.ModeFull)
		if err != nil {
			return nil, err
		}
		return tgt, tgt.PutFile("/index.html", make([]byte, 4096))
	}
	for _, cores := range []int{1, 2, 4} {
		b.Run(fmt.Sprintf("cores-%d", cores), func(b *testing.B) {
			o := siege.OpenLoopOptions{Path: "/index.html", Rate: 2000, Requests: 40}
			var last *siege.ParallelStats
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				ps, err := siege.ParallelOpenLoop(cores, mk, o)
				if err != nil {
					b.Fatal(err)
				}
				last = ps
			}
			b.StopTimer()
			b.ReportMetric(last.WallRPS, "wallrps")
			b.ReportMetric(float64(last.GVT), "gvtcycles")
			b.ReportMetric(float64(last.OK), "ok")
		})
	}
}

// --- Cluster: goodput across fleet sizes ----------------------------------------

// BenchmarkClusterGoodput floods a virtual cluster of 1, 2 and 4
// backends at a per-backend rate of 1500 rps through the health-aware
// balancer. wallms is the simulator cost; the virtual-time metrics
// (goodputrps, ok) are deterministic per fleet size — goodput must scale
// near-linearly with backends, which the cluster tests and
// `httpbench -cluster N -assert-degrade` gate.
func BenchmarkClusterGoodput(b *testing.B) {
	for _, backends := range []int{1, 2, 4} {
		b.Run(fmt.Sprintf("backends-%d", backends), func(b *testing.B) {
			var last *cluster.Stats
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				c, err := cluster.New(cluster.Options{Backends: backends, Mode: cubicleos.ModeFull})
				if err != nil {
					b.Fatal(err)
				}
				if err := c.PutFile("/index.html", make([]byte, 4096)); err != nil {
					b.Fatal(err)
				}
				st, err := c.RunOpenLoop(cluster.RunOptions{
					Path: "/index.html", Rate: 1500 * float64(backends), Requests: 40 * backends})
				if err != nil {
					b.Fatal(err)
				}
				last = st
			}
			b.StopTimer()
			b.ReportMetric(last.GoodputRPS, "goodputrps")
			b.ReportMetric(float64(last.OK), "ok")
		})
	}
}

// --- Figures 5 and 8: call-count graphs ----------------------------------------

func BenchmarkFig5CallCounts(b *testing.B) {
	tgt, err := siege.NewTarget(cubicleos.ModeFull)
	if err != nil {
		b.Fatal(err)
	}
	if err := tgt.PutFile("/f.html", make([]byte, 32<<10)); err != nil {
		b.Fatal(err)
	}
	tgt.Sys.M.Stats.Reset()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := tgt.Fetch("/f.html"); err != nil {
			b.Fatal(err)
		}
	}
	b.StopTimer()
	b.ReportMetric(float64(tgt.Sys.M.Stats.CallsTotal)/float64(b.N), "xcalls/op")
	b.ReportMetric(float64(tgt.Sys.M.Stats.Faults)/float64(b.N), "traps/op")
}

func BenchmarkFig8CallCounts(b *testing.B) {
	t, err := experiments.NewSQLiteTarget(cubicleos.ModeFull, nil, 5, experiments.UnikraftWorkScale)
	if err != nil {
		b.Fatal(err)
	}
	if err := t.Setup(); err != nil {
		b.Fatal(err)
	}
	t.Sys.M.Stats.Reset()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := t.RunQuery(160); err != nil {
			b.Fatal(err)
		}
	}
	b.StopTimer()
	b.ReportMetric(float64(t.Sys.M.Stats.CallsTotal)/float64(b.N), "xcalls/op")
	b.ReportMetric(float64(t.Sys.M.Stats.Retags)/float64(b.N), "retags/op")
}

// --- Figure 10: partitioning comparison -----------------------------------------

func BenchmarkFig10aKernels(b *testing.B) {
	// One representative OS-heavy query (410) per system; vcycles/op is
	// the series behind the Figure 10a bars.
	run := func(b *testing.B, clock *cubicleos.Clock, step func() error) {
		start := clock.Cycles()
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			if err := step(); err != nil {
				b.Fatal(err)
			}
		}
		b.StopTimer()
		reportVirtual(b, clock, start)
	}
	b.Run("CubicleOS-4", func(b *testing.B) {
		t, err := experiments.NewSQLiteTarget(cubicleos.ModeFull,
			map[string]string{"VFSCORE": "CORE", "PLAT": "CORE", "ALLOC": "CORE", "BOOT": "CORE"},
			50, experiments.UnikraftWorkScale)
		if err != nil {
			b.Fatal(err)
		}
		if err := t.Setup(); err != nil {
			b.Fatal(err)
		}
		run(b, t.Sys.M.Clock, func() error { _, err := t.RunQuery(410); return err })
	})
	b.Run("Unikraft", func(b *testing.B) {
		t, err := experiments.NewSQLiteTarget(cubicleos.ModeUnikraft, nil, 50, experiments.UnikraftWorkScale)
		if err != nil {
			b.Fatal(err)
		}
		if err := t.Setup(); err != nil {
			b.Fatal(err)
		}
		run(b, t.Sys.M.Clock, func() error { _, err := t.RunQuery(410); return err })
	})
}

func BenchmarkFig10bSeparation(b *testing.B) {
	// The CubicleOS separation cost: the same query on the 3- and
	// 4-compartment deployments.
	for _, cfg := range []struct {
		name   string
		groups map[string]string
	}{
		{"3-compartments", map[string]string{"VFSCORE": "CORE", "RAMFS": "CORE", "PLAT": "CORE", "ALLOC": "CORE", "BOOT": "CORE"}},
		{"4-compartments", map[string]string{"VFSCORE": "CORE", "PLAT": "CORE", "ALLOC": "CORE", "BOOT": "CORE"}},
	} {
		b.Run(cfg.name, func(b *testing.B) {
			t, err := experiments.NewSQLiteTarget(cubicleos.ModeFull, cfg.groups, 50, experiments.UnikraftWorkScale)
			if err != nil {
				b.Fatal(err)
			}
			if err := t.Setup(); err != nil {
				b.Fatal(err)
			}
			start := t.Sys.M.Clock.Cycles()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				if _, err := t.RunQuery(410); err != nil {
					b.Fatal(err)
				}
			}
			b.StopTimer()
			reportVirtual(b, t.Sys.M.Clock, start)
		})
	}
}

// --- Micro-benchmarks of the core mechanisms -------------------------------------

// pairSystem boots two isolated components and a shared LIBC for the
// mechanism benches.
func pairSystem(b *testing.B, mode cubicleos.Mode) (*cubicleos.Monitor, *cubicleos.Env, cubicleos.Handle, cubicleos.Addr) {
	b.Helper()
	bl := cubicleos.NewBuilder()
	bl.MustAdd(&cubicleos.Component{Name: "A", Kind: cubicleos.KindIsolated,
		Exports: []cubicleos.ExportDecl{{Name: "a_main", Fn: func(e *cubicleos.Env, a []uint64) []uint64 { return nil }}}})
	bl.MustAdd(&cubicleos.Component{Name: "B", Kind: cubicleos.KindIsolated,
		Exports: []cubicleos.ExportDecl{{Name: "b_touch", RegArgs: 1, Fn: func(e *cubicleos.Env, a []uint64) []uint64 {
			e.StoreByte(cubicleos.Addr(a[0]), 1)
			return nil
		}}}})
	si, err := bl.Build()
	if err != nil {
		b.Fatal(err)
	}
	m := cubicleos.NewMonitor(mode, cubicleos.DefaultCosts())
	cubs, err := cubicleos.NewLoader(m).LoadSystem(si, nil)
	if err != nil {
		b.Fatal(err)
	}
	env := m.NewEnv(m.NewThread())
	var buf cubicleos.Addr
	var h cubicleos.Handle
	if err := m.RunAs(env, cubs["A"].ID, func(e *cubicleos.Env) {
		buf = e.HeapAlloc(cubicleos.PageSize)
		wid := e.WindowInit()
		e.WindowAdd(wid, buf, cubicleos.PageSize)
		e.WindowOpen(wid, e.CubicleOf("B"))
		h = m.MustResolve(e.Cubicle(), "B", "b_touch")
	}); err != nil {
		b.Fatal(err)
	}
	return m, env, h, buf
}

// BenchmarkCrossCubicleCall measures one cross-cubicle call (with the
// argument page ping-ponging between the two cubicles) per mode.
func BenchmarkCrossCubicleCall(b *testing.B) {
	for _, m := range benchModes {
		b.Run(m.name, func(b *testing.B) {
			mon, env, h, buf := pairSystem(b, m.mode)
			cubs := mon.CubicleByName("A")
			start := mon.Clock.Cycles()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				if err := mon.RunAs(env, cubs.ID, func(e *cubicleos.Env) {
					h.Call(e, uint64(buf))
					e.StoreByte(buf, 2) // owner touch: forces the ping-pong
				}); err != nil {
					b.Fatal(err)
				}
			}
			b.StopTimer()
			reportVirtual(b, mon.Clock, start)
		})
	}
}

// --- Ablations (DESIGN.md §4) -----------------------------------------------------

// BenchmarkAblationSharedBuffer compares the paper's trap-and-map design
// against the ERIM/Hodor-style alternative: a dedicated shared buffer
// that both sides copy through (two extra copies per transfer, no traps
// after warm-up).
//
// The numbers expose the design's real trade-off: for a small hot buffer
// in steady state, copying through a shared region is *cheaper* per
// transfer than the page ping-pong (two SIGSEGV round trips), which is
// exactly why CubicleOS's NGINX pays 2× on bulk I/O. What trap-and-map
// buys instead is what the paper argues for — unchanged pointer-based
// interfaces, no per-channel tag exhaustion, and zero copies — and the
// §8 pinned-tag extension (see BenchmarkAblationPinnedWindow) recovers
// the fault cost too, by spending a tag on the hot window.
func BenchmarkAblationSharedBuffer(b *testing.B) {
	const payload = 4096
	b.Run("trap-and-map", func(b *testing.B) {
		mon, env, h, buf := pairSystem(b, cubicleos.ModeFull)
		a := mon.CubicleByName("A")
		start := mon.Clock.Cycles()
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			if err := mon.RunAs(env, a.ID, func(e *cubicleos.Env) {
				e.Memset(buf, byte(i), payload) // producer writes in place
				h.Call(e, uint64(buf))          // consumer reads via window
			}); err != nil {
				b.Fatal(err)
			}
		}
		b.StopTimer()
		reportVirtual(b, mon.Clock, start)
	})
	b.Run("shared-buffer-copies", func(b *testing.B) {
		// The same transfer through a shared cubicle's buffer: producer
		// copies in, consumer copies out; the buffer's key is always
		// accessible so no traps occur, but every byte moves twice more.
		bl := cubicleos.NewBuilder()
		bl.MustAdd(&cubicleos.Component{Name: "A", Kind: cubicleos.KindIsolated,
			Exports: []cubicleos.ExportDecl{{Name: "a_main", Fn: func(e *cubicleos.Env, a []uint64) []uint64 { return nil }}}})
		bl.MustAdd(&cubicleos.Component{Name: "B", Kind: cubicleos.KindIsolated,
			Exports: []cubicleos.ExportDecl{{Name: "b_consume", RegArgs: 2, Fn: func(e *cubicleos.Env, a []uint64) []uint64 {
				// Consumer copies from the shared buffer into its own.
				dst := e.HeapAlloc(payload)
				e.Memcpy(dst, cubicleos.Addr(a[0]), a[1])
				e.HeapFree(dst)
				return nil
			}}}})
		bl.MustAdd(&cubicleos.Component{Name: "SHM", Kind: cubicleos.KindShared,
			Exports: []cubicleos.ExportDecl{{Name: "shm_buf", Fn: func(e *cubicleos.Env, a []uint64) []uint64 { return nil }}}})
		si, err := bl.Build()
		if err != nil {
			b.Fatal(err)
		}
		mon := cubicleos.NewMonitor(cubicleos.ModeFull, cubicleos.DefaultCosts())
		cubs, err := cubicleos.NewLoader(mon).LoadSystem(si, nil)
		if err != nil {
			b.Fatal(err)
		}
		env := mon.NewEnv(mon.NewThread())
		var shared, local cubicleos.Addr
		var h cubicleos.Handle
		if err := mon.RunAs(env, cubs["SHM"].ID, func(e *cubicleos.Env) {
			shared = e.HeapAlloc(payload) // shared-cubicle memory: key 15
		}); err != nil {
			b.Fatal(err)
		}
		if err := mon.RunAs(env, cubs["A"].ID, func(e *cubicleos.Env) {
			local = e.HeapAlloc(payload)
			h = mon.MustResolve(e.Cubicle(), "B", "b_consume")
		}); err != nil {
			b.Fatal(err)
		}
		start := mon.Clock.Cycles()
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			if err := mon.RunAs(env, cubs["A"].ID, func(e *cubicleos.Env) {
				e.Memset(local, byte(i), payload)
				e.Memcpy(shared, local, payload) // copy in
				h.Call(e, uint64(shared), payload)
			}); err != nil {
				b.Fatal(err)
			}
		}
		b.StopTimer()
		reportVirtual(b, mon.Clock, start)
	})
}

// BenchmarkAblationEagerRevoke compares causal (lazy) tag consistency
// against eager revocation, where the owner touches every page at window
// close to force the retag immediately.
func BenchmarkAblationEagerRevoke(b *testing.B) {
	for _, eager := range []bool{false, true} {
		name := "lazy-causal"
		if eager {
			name = "eager-revoke"
		}
		b.Run(name, func(b *testing.B) {
			mon, env, h, buf := pairSystem(b, cubicleos.ModeFull)
			a := mon.CubicleByName("A")
			start := mon.Clock.Cycles()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				if err := mon.RunAs(env, a.ID, func(e *cubicleos.Env) {
					h.Call(e, uint64(buf))
					if eager {
						// Owner forces the page back immediately.
						e.StoreByte(buf, 0)
					}
					// Next call re-faults only in the eager variant.
					h.Call(e, uint64(buf))
				}); err != nil {
					b.Fatal(err)
				}
			}
			b.StopTimer()
			reportVirtual(b, mon.Clock, start)
		})
	}
}

// BenchmarkAblationPinnedWindow measures the §8 extension: a hot shared
// buffer under lazy trap-and-map versus a window-specific tag (pinned),
// which trades one MPK key for fault-free producer/consumer exchange.
func BenchmarkAblationPinnedWindow(b *testing.B) {
	for _, pinned := range []bool{false, true} {
		name := "trap-and-map"
		if pinned {
			name = "pinned-tag"
		}
		b.Run(name, func(b *testing.B) {
			mon, env, h, buf := pairSystem(b, cubicleos.ModeFull)
			a := mon.CubicleByName("A")
			if pinned {
				if err := mon.RunAs(env, a.ID, func(e *cubicleos.Env) {
					// Re-window the buffer and pin it.
					wid := e.WindowInit()
					e.WindowAdd(wid, buf, cubicleos.PageSize)
					e.WindowOpen(wid, e.CubicleOf("B"))
					e.WindowPin(wid)
				}); err != nil {
					b.Fatal(err)
				}
			}
			start := mon.Clock.Cycles()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				if err := mon.RunAs(env, a.ID, func(e *cubicleos.Env) {
					e.StoreByte(buf, byte(i)) // producer write
					h.Call(e, uint64(buf))    // consumer write
					e.StoreByte(buf, byte(i)) // producer again: the ping-pong
				}); err != nil {
					b.Fatal(err)
				}
			}
			b.StopTimer()
			reportVirtual(b, mon.Clock, start)
			b.ReportMetric(float64(mon.Stats.Faults)/float64(b.N), "traps/op")
		})
	}
}

// BenchmarkAblationWindowSearch sweeps the per-cubicle window count to
// show the linear descriptor search cost the paper accepts ("all but one
// cubicle have less than ten windows").
func BenchmarkAblationWindowSearch(b *testing.B) {
	for _, nwin := range []int{1, 8, 64} {
		b.Run(fmt.Sprintf("windows-%d", nwin), func(b *testing.B) {
			mon, env, h, _ := pairSystem(b, cubicleos.ModeFull)
			a := mon.CubicleByName("A")
			var bufs []cubicleos.Addr
			if err := mon.RunAs(env, a.ID, func(e *cubicleos.Env) {
				for i := 0; i < nwin; i++ {
					buf := e.HeapAlloc(cubicleos.PageSize)
					wid := e.WindowInit()
					e.WindowAdd(wid, buf, cubicleos.PageSize)
					e.WindowOpen(wid, e.CubicleOf("B"))
					bufs = append(bufs, buf)
				}
			}); err != nil {
				b.Fatal(err)
			}
			start := mon.Clock.Cycles()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				if err := mon.RunAs(env, a.ID, func(e *cubicleos.Env) {
					// Touch the last window's buffer: worst-case search.
					target := bufs[len(bufs)-1]
					h.Call(e, uint64(target))
					e.StoreByte(target, 0)
				}); err != nil {
					b.Fatal(err)
				}
			}
			b.StopTimer()
			reportVirtual(b, mon.Clock, start)
			b.ReportMetric(float64(mon.Stats.WindowSearchSteps)/float64(b.N), "searchsteps/op")
		})
	}
}

// BenchmarkAblationSharedLibc compares LIBC as a shared cubicle (the
// paper's design: calls never enter the TCB) against an isolated LIBC
// cubicle (every memcpy is a cross-cubicle call needing windows).
func BenchmarkAblationSharedLibc(b *testing.B) {
	build := func(kind cubicle.Kind) (*cubicleos.Monitor, *cubicleos.Env, cubicleos.Handle, cubicleos.Addr, cubicleos.Addr) {
		bl := cubicleos.NewBuilder()
		bl.MustAdd(&cubicleos.Component{Name: "APP", Kind: cubicleos.KindIsolated,
			Exports: []cubicleos.ExportDecl{{Name: "app_main", Fn: func(e *cubicleos.Env, a []uint64) []uint64 { return nil }}}})
		bl.MustAdd(&cubicleos.Component{Name: "LIBC", Kind: kind,
			Exports: []cubicleos.ExportDecl{{Name: "memcpy", RegArgs: 3, Fn: func(e *cubicleos.Env, a []uint64) []uint64 {
				e.Memcpy(cubicleos.Addr(a[0]), cubicleos.Addr(a[1]), a[2])
				return nil
			}}}})
		si, err := bl.Build()
		if err != nil {
			b.Fatal(err)
		}
		mon := cubicleos.NewMonitor(cubicleos.ModeFull, cubicleos.DefaultCosts())
		cubs, err := cubicleos.NewLoader(mon).LoadSystem(si, nil)
		if err != nil {
			b.Fatal(err)
		}
		env := mon.NewEnv(mon.NewThread())
		var src, dst cubicleos.Addr
		var h cubicleos.Handle
		if err := mon.RunAs(env, cubs["APP"].ID, func(e *cubicleos.Env) {
			src = e.HeapAlloc(vm.PageSize)
			dst = e.HeapAlloc(vm.PageSize)
			if kind == cubicleos.KindIsolated {
				// An isolated LIBC must be granted windows over both
				// buffers — exactly the burden the shared design avoids.
				for _, buf := range []cubicleos.Addr{src, dst} {
					wid := e.WindowInit()
					e.WindowAdd(wid, buf, vm.PageSize)
					e.WindowOpen(wid, e.CubicleOf("LIBC"))
				}
			}
			h = mon.MustResolve(e.Cubicle(), "LIBC", "memcpy")
		}); err != nil {
			b.Fatal(err)
		}
		return mon, env, h, src, dst
	}
	for _, cfg := range []struct {
		name string
		kind cubicle.Kind
	}{{"shared", cubicleos.KindShared}, {"isolated", cubicleos.KindIsolated}} {
		b.Run(cfg.name, func(b *testing.B) {
			mon, env, h, src, dst := build(cfg.kind)
			app := mon.CubicleByName("APP")
			start := mon.Clock.Cycles()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				if err := mon.RunAs(env, app.ID, func(e *cubicleos.Env) {
					e.StoreByte(src, byte(i)) // producer dirties its buffer
					h.Call(e, uint64(dst), uint64(src), 512)
					e.StoreByte(dst, byte(i)) // consumer touch
				}); err != nil {
					b.Fatal(err)
				}
			}
			b.StopTimer()
			reportVirtual(b, mon.Clock, start)
		})
	}
}

// BenchmarkAblationTagVirtualisation measures key recycling: round-robin
// calls across more isolated cubicles than MPK keys versus a set that
// fits the hardware's 14 free keys.
func BenchmarkAblationTagVirtualisation(b *testing.B) {
	for _, n := range []int{8, 24} {
		b.Run(fmt.Sprintf("cubicles-%d", n), func(b *testing.B) {
			bl := cubicleos.NewBuilder()
			for i := 0; i < n; i++ {
				name := fmt.Sprintf("C%02d", i)
				bl.MustAdd(&cubicleos.Component{Name: name, Kind: cubicleos.KindIsolated,
					Exports: []cubicleos.ExportDecl{{Name: "touch_" + name, Fn: func(e *cubicleos.Env, a []uint64) []uint64 {
						buf := e.HeapAlloc(64)
						e.Memset(buf, 1, 64)
						e.HeapFree(buf)
						return nil
					}}}})
			}
			si, err := bl.Build()
			if err != nil {
				b.Fatal(err)
			}
			mon := cubicleos.NewMonitor(cubicleos.ModeFull, cubicleos.DefaultCosts())
			_, err = cubicleos.NewLoader(mon).LoadSystem(si, nil)
			if err != nil {
				b.Fatal(err)
			}
			env := mon.NewEnv(mon.NewThread())
			handles := make([]cubicleos.Handle, n)
			for i := 0; i < n; i++ {
				name := fmt.Sprintf("C%02d", i)
				handles[i] = mon.MustResolve(cubicle.MonitorID, name, "touch_"+name)
			}
			start := mon.Clock.Cycles()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				handles[i%n].Call(env)
			}
			b.StopTimer()
			reportVirtual(b, mon.Clock, start)
			b.ReportMetric(float64(mon.Stats.KeyEvictions)/float64(b.N), "evictions/op")
		})
	}
}

// --- Warm-restart MTTR: checkpointed vs cold supervised recovery --------------

// BenchmarkWarmRestartMTTR drives the same deterministic chaos siege
// (faults injected into RAMFS) twice — once with the checkpoint manager
// armed, once without — and reports the availability comparison on the
// virtual clock: degraded cycles (MTTR), shed requests, and restart mix.
// Warm restores rewind RAMFS to its last checkpoint, so the warm series
// must show strictly fewer failures and strictly fewer degraded cycles;
// the assertion lives in TestWarmVsColdSiege, this bench publishes the
// numbers into BENCH_simulator.json.
func BenchmarkWarmRestartMTTR(b *testing.B) {
	type outcome struct {
		failed int
		mttr   uint64
		stats  cubicle.Stats
	}
	drive := func(checkpointInterval uint64) outcome {
		policy := cubicleos.DefaultRestartPolicy()
		policy.MaxRestarts = 1000
		policy.CrossingBudget = 200_000_000
		tgt, err := siege.NewTargetOpts(siege.Options{
			Mode:               cubicleos.ModeFull,
			Supervision:        &policy,
			CheckpointInterval: checkpointInterval,
			Chaos: &cubicleos.ChaosConfig{
				Seed:             7,
				Target:           "RAMFS",
				ProtAtCrossing:   0.010,
				CFIAtCrossing:    0.003,
				BudgetAtCrossing: 0.002,
				LeakAtCrossing:   0.005,
				ProtAtWindowOp:   0.003,
				ProtAtRetag:      0.002,
			},
		})
		if err != nil {
			b.Fatal(err)
		}
		data := make([]byte, 16<<10)
		for i := range data {
			data[i] = byte(i)
		}
		if err := tgt.PutFile("/f.bin", data); err != nil {
			b.Fatal(err)
		}
		clk := tgt.Sys.M.Clock
		tgt.Sys.Chaos.Arm()
		var out outcome
		degradedSince := uint64(0)
		for i := 0; i < 60; i++ {
			before := clk.Cycles()
			res, err := tgt.Fetch("/f.bin")
			if err == nil && res.Status == 200 {
				if degradedSince != 0 {
					out.mttr += clk.Cycles() - degradedSince
					degradedSince = 0
				}
				continue
			}
			out.failed++
			if degradedSince == 0 {
				degradedSince = before
			}
			if err == nil && res.Status == 404 {
				_ = tgt.PutFile("/f.bin", data) // operator re-provision: the cold path's recovery cost
			}
		}
		if degradedSince != 0 {
			out.mttr += clk.Cycles() - degradedSince
		}
		tgt.Sys.Chaos.Disarm()
		out.stats = tgt.Sys.M.Stats
		return out
	}
	var warm, cold outcome
	for i := 0; i < b.N; i++ {
		warm = drive(300_000)
		cold = drive(0)
	}
	b.ReportMetric(float64(warm.mttr), "warmdegradedcycles")
	b.ReportMetric(float64(cold.mttr), "colddegradedcycles")
	b.ReportMetric(float64(warm.failed), "warmfailed")
	b.ReportMetric(float64(cold.failed), "coldfailed")
	b.ReportMetric(float64(warm.stats.WarmRestarts), "warmrestarts")
	b.ReportMetric(float64(cold.stats.ColdRestarts), "coldrestarts")
	b.ReportMetric(float64(warm.stats.Checkpoints), "checkpoints")
	b.ReportMetric(float64(warm.stats.CheckpointBytes), "ckptbytes")
}

// --- Table 2: component inventory ---------------------------------------------

// BenchmarkTable2Boot measures system assembly (builder + loader + wiring)
// for the full Figure 5 deployment — the closest runtime analogue of the
// component inventory table.
func BenchmarkTable2Boot(b *testing.B) {
	for i := 0; i < b.N; i++ {
		if _, err := boot.NewFS(boot.Config{Mode: cubicleos.ModeFull, Net: true}); err != nil {
			b.Fatal(err)
		}
	}
}

var _ = speedtest.QueryIDs
