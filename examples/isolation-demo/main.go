// Isolation-demo: the threat-model scenarios of the paper (§2.3, §5.4,
// §5.5) demonstrated live.
//
//  1. A malicious component reads another cubicle's secret — denied.
//  2. A component image containing a smuggled wrpkru/syscall instruction
//     is refused by the loader's binary scan.
//  3. A tampered trampoline descriptor fails builder-signature checking.
//  4. Control transfers that bypass the guard-page entry points fault
//     (CFI).
//  5. Window revocation actually revokes (causal tag consistency).
//
// Run with: go run ./examples/isolation-demo
package main

import (
	"fmt"
	"log"

	"cubicleos"
	"cubicleos/internal/isa"
)

func main() {
	fmt.Println("CubicleOS isolation demo")
	fmt.Println("========================")

	// --- Scenario 2 first: the loader refuses bad code outright. --------
	b := cubicleos.NewBuilder()
	b.MustAdd(&cubicleos.Component{
		Name: "EVIL", Kind: cubicleos.KindIsolated,
		Exports: []cubicleos.ExportDecl{{Name: "evil_main",
			Fn: func(e *cubicleos.Env, a []uint64) []uint64 { return nil }}},
		// The image smuggles a wrpkru instruction into its code section.
		Image: isa.Synthesize("EVIL", []string{"evil_main"},
			isa.SynthOptions{InjectForbidden: isa.OpWRPKRU, InjectAt: -1}),
	})
	si, err := b.Build()
	if err != nil {
		log.Fatal(err)
	}
	m := cubicleos.NewMonitor(cubicleos.ModeFull, cubicleos.DefaultCosts())
	if _, err := cubicleos.NewLoader(m).LoadSystem(si, nil); err != nil {
		fmt.Printf("\n[2] loader scan: %v\n", err)
	} else {
		log.Fatal("BUG: wrpkru-carrying image was loaded")
	}

	// --- A clean system for the remaining scenarios. --------------------
	b = cubicleos.NewBuilder()
	b.MustAdd(&cubicleos.Component{
		Name: "VAULT", Kind: cubicleos.KindIsolated,
		Exports: []cubicleos.ExportDecl{
			{Name: "vault_init", Fn: func(e *cubicleos.Env, a []uint64) []uint64 {
				secret := e.HeapAlloc(32)
				e.Write(secret, []byte("TLS-PRIVATE-KEY-0123456789abcdef"))
				return []uint64{uint64(secret)}
			}},
		},
	})
	b.MustAdd(&cubicleos.Component{
		Name: "INTRUDER", Kind: cubicleos.KindIsolated,
		Exports: []cubicleos.ExportDecl{
			{Name: "intrude", RegArgs: 1, Fn: func(e *cubicleos.Env, a []uint64) []uint64 {
				// Attempt to read the vault's secret directly.
				return []uint64{uint64(e.LoadByte(cubicleos.Addr(a[0])))}
			}},
		},
	})
	b.MustAdd(&cubicleos.Component{
		Name: "MULE", Kind: cubicleos.KindIsolated,
		Exports: []cubicleos.ExportDecl{{Name: "mule_main",
			Fn: func(e *cubicleos.Env, a []uint64) []uint64 { return nil }}},
	})
	si, err = b.Build()
	if err != nil {
		log.Fatal(err)
	}
	// Tamper with a trampoline signature on a second image to show the
	// loader refusing it (scenario 3).
	b2 := cubicleos.NewBuilder()
	b2.MustAdd(&cubicleos.Component{Name: "X", Kind: cubicleos.KindIsolated,
		Exports: []cubicleos.ExportDecl{{Name: "x", Fn: func(e *cubicleos.Env, a []uint64) []uint64 { return nil }}}})
	si2, _ := b2.Build()
	si2.TamperSignature("X", "x")
	m2 := cubicleos.NewMonitor(cubicleos.ModeFull, cubicleos.DefaultCosts())
	if _, err := cubicleos.NewLoader(m2).LoadSystem(si2, nil); err != nil {
		fmt.Printf("[3] builder signature: %v\n", err)
	} else {
		log.Fatal("BUG: tampered descriptor was accepted")
	}

	m = cubicleos.NewMonitor(cubicleos.ModeFull, cubicleos.DefaultCosts())
	cubs, err := cubicleos.NewLoader(m).LoadSystem(si, nil)
	if err != nil {
		log.Fatal(err)
	}
	env := m.NewEnv(m.NewThread())

	var secret cubicleos.Addr
	if err := m.RunAs(env, cubs["VAULT"].ID, func(e *cubicleos.Env) {
		init := m.MustResolve(e.Cubicle(), "VAULT", "vault_init")
		secret = cubicleos.Addr(init.Call(e)[0])
	}); err != nil {
		log.Fatal(err)
	}

	// --- Scenario 1: cross-cubicle secret read. --------------------------
	err = m.RunAs(env, cubs["INTRUDER"].ID, func(e *cubicleos.Env) {
		if fault := cubicleos.Catch(func() { e.LoadByte(secret) }); fault != nil {
			fmt.Printf("[1] spatial isolation: %v\n", fault)
		} else {
			log.Fatal("BUG: intruder read the secret")
		}
	})
	if err != nil {
		log.Fatal(err)
	}

	// --- Scenario 4: CFI — handle misuse and guard-page probing. ---------
	// intrude is resolved for VAULT (its guard page lives in VAULT's
	// cubicle); MULE getting hold of the handle and calling through it
	// models a jump into another cubicle's guard page.
	intrude := m.MustResolve(cubs["VAULT"].ID, "INTRUDER", "intrude")
	err = m.RunAs(env, cubs["MULE"].ID, func(e *cubicleos.Env) {
		if fault := cubicleos.Catch(func() { intrude.Call(e, uint64(secret)) }); fault != nil {
			fmt.Printf("[4] CFI (foreign guard page): %v\n", fault)
		} else {
			log.Fatal("BUG: foreign handle call succeeded")
		}
		if _, err := m.Resolve(e.Cubicle(), "VAULT", "vault_internal"); err != nil {
			fmt.Printf("[4] CFI (non-exported symbol): %v\n", err)
		} else {
			log.Fatal("BUG: resolved a private symbol")
		}
	})
	if err != nil {
		log.Fatal(err)
	}

	// --- Scenario 5: window revocation. ----------------------------------
	err = m.RunAs(env, cubs["VAULT"].ID, func(e *cubicleos.Env) {
		intrID := e.CubicleOf("INTRUDER")
		wid := e.WindowInit()
		e.WindowAdd(wid, secret, 32)
		e.WindowOpen(wid, intrID)
		h := m.MustResolve(e.Cubicle(), "INTRUDER", "intrude")
		got := h.Call(e, uint64(secret))[0]
		fmt.Printf("[5] window open:   intruder legitimately reads byte %#x ('%c')\n", got, byte(got))
		e.WindowClose(wid, intrID)
		_ = e.LoadByte(secret) // owner touch retags the page back
		if fault := cubicleos.Catch(func() { h.Call(e, uint64(secret)) }); fault != nil {
			fmt.Printf("[5] window closed: %v\n", fault)
		} else {
			log.Fatal("BUG: access after revocation succeeded")
		}
	})
	if err != nil {
		log.Fatal(err)
	}

	fmt.Printf("\nall five scenarios contained; %d denied faults recorded by the monitor\n",
		m.Stats.DeniedFaults)
}
