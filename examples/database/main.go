// Database: the paper's SQLite deployment (Figure 8) end to end.
//
// Boots the 7-isolated-cubicle SQLite system (SQLITE, VFSCORE, RAMFS,
// PLAT, ALLOC, TIME, BOOT plus shared LIBC/RANDOM), runs interactive SQL
// through the embedded engine — every page miss and journal write
// crossing the VFSCORE and RAMFS cubicles — and then a slice of the
// speedtest1 schedule, printing per-query virtual times.
//
// Run with: go run ./examples/database
package main

import (
	"fmt"
	"log"

	"cubicleos"
	"cubicleos/internal/cycles"
	"cubicleos/internal/experiments"
	"cubicleos/internal/speedtest"
)

func main() {
	t, err := experiments.NewSQLiteTarget(cubicleos.ModeFull, nil, 20, experiments.UnikraftWorkScale)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("booted the Figure 8 deployment:")
	for _, c := range t.Sys.M.Cubicles() {
		if c.ID == 0 {
			continue
		}
		fmt.Printf("  %-8s kind=%-8s key=%d\n", c.Name, c.Kind, c.Key)
	}

	// Interactive SQL through the isolated stack.
	fmt.Println("\nrunning SQL:")
	err = t.Sys.RunAs("SQLITE", func(e *cubicleos.Env) {
		for _, stmt := range []string{
			"CREATE TABLE accounts (id INTEGER PRIMARY KEY, owner TEXT, balance INTEGER)",
			"CREATE INDEX iowner ON accounts (owner)",
			"INSERT INTO accounts VALUES (1, 'ann', 120), (2, 'bob', 80), (3, 'ann', 45)",
			"UPDATE accounts SET balance = balance + 10 WHERE owner = 'ann'",
			"SELECT owner, count(*), sum(balance) FROM accounts GROUP BY owner ORDER BY owner",
			"PRAGMA integrity_check",
		} {
			res, err := t.DB.Exec(stmt)
			if err != nil {
				log.Fatalf("%s: %v", stmt, err)
			}
			fmt.Printf("  %s\n", stmt)
			for _, row := range res.Rows {
				fmt.Printf("    -> %v\n", row)
			}
		}
	})
	if err != nil {
		log.Fatal(err)
	}

	// A slice of speedtest1.
	fmt.Println("\nspeedtest1 excerpt (virtual time at 2.2 GHz):")
	if err := t.Setup(); err != nil {
		log.Fatal(err)
	}
	for _, id := range []int{100, 160, 170, 410, 980} {
		c, err := t.RunQuery(id)
		if err != nil {
			log.Fatal(err)
		}
		grp := "B"
		if speedtest.InGroupA(id) {
			grp = "A"
		}
		fmt.Printf("  q%-4d [%s] %-55s %8.2f ms\n", id, grp, speedtest.Title(id),
			float64(cycles.Duration(c).Microseconds())/1000)
	}

	st := t.Sys.M.Stats
	fmt.Printf("\nisolation events: %d cross-cubicle calls, %d traps, %d retags, %d window ops\n",
		st.CallsTotal, st.Faults, st.Retags, st.WindowOps)
	fmt.Printf("pager: %d hits, %d misses, %d page writes, %d fsyncs\n",
		t.DB.Pager().Stats.Hits, t.DB.Pager().Stats.Misses, t.DB.Pager().Stats.Writes, t.DB.Pager().Stats.Fsyncs)
}
