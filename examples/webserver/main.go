// Webserver: the paper's NGINX deployment (Figure 5) end to end.
//
// Boots the 8-cubicle web stack — NGINX, LWIP, NETDEV, VFSCORE, RAMFS,
// PLAT, ALLOC, TIME (LIBC and RANDOM shared) — provisions static files,
// serves requests from a siege-style client attached to the virtual
// wire, and prints latencies plus the cross-cubicle call graph.
//
// Run with: go run ./examples/webserver [-mode full|unikraft] [-requests 5]
package main

import (
	"flag"
	"fmt"
	"log"
	"strings"

	"cubicleos"
	"cubicleos/internal/siege"
)

func main() {
	mode := flag.String("mode", "full", "isolation mode: unikraft, no-mpk, no-acl, full")
	requests := flag.Int("requests", 5, "requests per file")
	flag.Parse()

	var m cubicleos.Mode
	switch *mode {
	case "unikraft":
		m = cubicleos.ModeUnikraft
	case "no-mpk":
		m = cubicleos.ModeTrampoline
	case "no-acl":
		m = cubicleos.ModeNoACL
	case "full":
		m = cubicleos.ModeFull
	default:
		log.Fatalf("unknown mode %q", *mode)
	}

	tgt, err := siege.NewTarget(m)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("booted %d cubicles in mode %v:\n", len(tgt.Sys.M.Cubicles())-1, m)
	for _, c := range tgt.Sys.M.Cubicles() {
		if c.ID == 0 {
			continue
		}
		fmt.Printf("  %-8s kind=%-8s key=%d\n", c.Name, c.Kind, c.Key)
	}

	files := map[string]int{"/index.html": 4 << 10, "/app.js": 64 << 10, "/logo.png": 256 << 10}
	for name, size := range files {
		data := []byte(strings.Repeat("x", size))
		if err := tgt.PutFile(name, data); err != nil {
			log.Fatal(err)
		}
	}

	fmt.Println("\nserving:")
	for name := range files {
		for i := 0; i < *requests; i++ {
			res, err := tgt.Fetch(name)
			if err != nil {
				log.Fatal(err)
			}
			if i == *requests-1 {
				fmt.Printf("  GET %-12s -> %d, %7d bytes, %6.2f ms (%d system cycles)\n",
					name, res.Status, len(res.Body), float64(res.Latency.Microseconds())/1000, res.Cycles)
			}
		}
	}

	fmt.Println("\naccess log (via PLAT console):")
	for _, line := range strings.Split(strings.TrimSpace(tgt.Sys.Plat.ConsoleOutput()), "\n") {
		fmt.Println("  " + line)
	}

	fmt.Println("\ncross-cubicle call graph (cf. Figure 5):")
	names := make(map[cubicleos.CubicleID]string)
	for _, c := range tgt.Sys.M.Cubicles() {
		names[c.ID] = c.Name
	}
	for _, e := range tgt.Edges() {
		fmt.Printf("  %-8s -> %-8s %8d calls\n", names[e.From], names[e.To], e.Count)
	}
	st := tgt.Sys.M.Stats
	fmt.Printf("\nisolation events: %d traps, %d retags, %d wrpkru, %d window ops\n",
		st.Faults, st.Retags, st.WRPKRUs, st.WindowOps)
}
