// Quickstart: the paper's Figure 1/2 running example as a program.
//
// Two isolated components, FOO and BAR, run in separate cubicles. FOO
// owns a buffer; BAR exports bar(ptr, idx) which writes into it. Without
// a window the call faults; with a window it works zero-copy; after the
// window closes and FOO touches the buffer again, BAR's access faults
// once more.
//
// Run with: go run ./examples/quickstart
package main

import (
	"fmt"
	"log"

	"cubicleos"
)

func main() {
	// 1. Describe the components to the trusted builder.
	b := cubicleos.NewBuilder()
	b.MustAdd(&cubicleos.Component{
		Name: "FOO", Kind: cubicleos.KindIsolated,
		Exports: []cubicleos.ExportDecl{
			{Name: "foo_main", Fn: func(e *cubicleos.Env, args []uint64) []uint64 { return nil }},
		},
	})
	b.MustAdd(&cubicleos.Component{
		Name: "BAR", Kind: cubicleos.KindIsolated,
		Exports: []cubicleos.ExportDecl{
			// bar(ptr, a): ptr[a] = 0xAA — exactly Figure 1.
			{Name: "bar", RegArgs: 2, Fn: func(e *cubicleos.Env, args []uint64) []uint64 {
				e.StoreByte(cubicleos.Addr(args[0]).Add(args[1]), 0xAA)
				return []uint64{1}
			}},
		},
	})
	si, err := b.Build()
	if err != nil {
		log.Fatal(err)
	}

	// 2. Load the system: the loader scans code, assigns MPK keys,
	// installs trampolines.
	m := cubicleos.NewMonitor(cubicleos.ModeFull, cubicleos.DefaultCosts())
	cubs, err := cubicleos.NewLoader(m).LoadSystem(si, nil)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("loaded: FOO=cubicle %d (key %d), BAR=cubicle %d (key %d)\n",
		cubs["FOO"].ID, cubs["FOO"].Key, cubs["BAR"].ID, cubs["BAR"].Key)

	env := m.NewEnv(m.NewThread())

	// 3. Enter FOO and interact with BAR across the isolation boundary.
	err = m.RunAs(env, cubs["FOO"].ID, func(e *cubicleos.Env) {
		array := e.HeapAlloc(10) // char array[10]
		barID := e.CubicleOf("BAR")
		bar := m.MustResolve(e.Cubicle(), "BAR", "bar")

		// Without a window: the very same call faults.
		if fault := cubicleos.Catch(func() { bar.Call(e, uint64(array), 5) }); fault != nil {
			fmt.Printf("without a window: %v\n", fault)
		}

		// Figure 1c: open a window, call, close.
		wid := e.WindowInit()
		e.WindowAdd(wid, array, 10)
		e.WindowOpen(wid, barID)
		bar.Call(e, uint64(array), 5)
		e.WindowClose(wid, barID)
		fmt.Printf("with a window:    array[5] = %#x (zero-copy write by BAR)\n",
			e.LoadByte(array.Add(5)))

		// Causal tag consistency: once FOO touches the page again, BAR's
		// next access faults.
		if fault := cubicleos.Catch(func() { bar.Call(e, uint64(array), 6) }); fault != nil {
			fmt.Printf("after closing:    %v\n", fault)
		}
	})
	if err != nil {
		log.Fatal(err)
	}

	st := m.Stats
	fmt.Printf("\nstats: %d cross-cubicle calls, %d traps, %d page retags, %d wrpkru, %d cycles (%.2f us at 2.2 GHz)\n",
		st.CallsTotal, st.Faults, st.Retags, st.WRPKRUs,
		m.Clock.Cycles(), float64(m.Clock.Duration().Nanoseconds())/1000)
}
