package lwip_test

import (
	"bytes"
	"testing"

	"cubicleos/internal/boot"
	"cubicleos/internal/cubicle"
	"cubicleos/internal/lwip"
	"cubicleos/internal/netdev"
	"cubicleos/internal/vm"
)

func bootNet(t *testing.T, mode cubicle.Mode, sendBuf uint64) *boot.System {
	t.Helper()
	return boot.MustNewFS(boot.Config{
		Mode: mode, Net: true, SendBuf: sendBuf,
		Extra: []*cubicle.Component{{
			Name: "APP", Kind: cubicle.KindIsolated,
			Exports: []cubicle.ExportDecl{{Name: "main", Fn: func(e *cubicle.Env, a []uint64) []uint64 { return nil }}},
		}},
	})
}

// appNet is the app-side networking state: an I/O buffer windowed to LWIP.
type appNet struct {
	c   *lwip.Client
	buf vm.Addr
	n   uint64
}

func newAppNet(s *boot.System, e *cubicle.Env, size uint64) *appNet {
	an := &appNet{c: lwip.NewClient(s.M, s.Cubs["APP"].ID), n: size}
	an.buf = e.HeapAlloc(size)
	wid := e.WindowInit()
	e.WindowAdd(wid, an.buf, size)
	e.WindowOpen(wid, e.CubicleOf(lwip.Name))
	return an
}

func TestHeaderRoundTrip(t *testing.T) {
	h := lwip.Header{SrcPort: 80, DstPort: 40001, Seq: 12345, Ack: 999,
		Flags: lwip.FlagSYN | lwip.FlagACK, Wnd: 65535, Len: 1448}
	var b [lwip.HdrSize]byte
	lwip.EncodeHeader(b[:], h)
	if got := lwip.DecodeHeader(b[:]); got != h {
		t.Errorf("round trip: %+v != %+v", got, h)
	}
}

// TestAcceptEcho runs a full TCP exchange: connect, send a request, the
// app echoes it back doubled, FIN teardown.
func TestAcceptEcho(t *testing.T) {
	for _, mode := range []cubicle.Mode{cubicle.ModeUnikraft, cubicle.ModeFull} {
		t.Run(mode.String(), func(t *testing.T) {
			s := bootNet(t, mode, 0)
			peer := lwip.NewPeer(s.Netdev.Wire())
			err := s.RunAs("APP", func(e *cubicle.Env) {
				an := newAppNet(s, e, 64*1024)
				fd := an.c.Socket(e)
				if errno := an.c.Bind(e, fd, 80); errno != lwip.EOK {
					t.Fatalf("bind: %d", errno)
				}
				if errno := an.c.Listen(e, fd, 8); errno != lwip.EOK {
					t.Fatalf("listen: %d", errno)
				}
				conn := peer.Connect(80)
				an.c.Poll(e) // process SYN, emit SYN-ACK
				peer.Pump()  // peer completes handshake
				if !conn.Established {
					t.Fatal("handshake failed")
				}
				cfd, errno := an.c.Accept(e, fd)
				if errno != lwip.EOK {
					t.Fatalf("accept: %d", errno)
				}
				conn.Send([]byte("ping-around-the-ring"))
				an.c.Poll(e)
				n, errno := an.c.Recv(e, cfd, an.buf, an.n)
				if errno != lwip.EOK || n != 20 {
					t.Fatalf("recv: n=%d errno=%d", n, errno)
				}
				if string(e.ReadBytes(an.buf, n)) != "ping-around-the-ring" {
					t.Fatal("payload mismatch")
				}
				// Echo back twice the data.
				e.Write(an.buf.Add(n), e.ReadBytes(an.buf, n))
				sent, errno := an.c.Send(e, cfd, an.buf, 2*n)
				if errno != lwip.EOK || sent != 2*n {
					t.Fatalf("send: sent=%d errno=%d", sent, errno)
				}
				an.c.Close(e, cfd)
				for i := 0; i < 10 && !conn.FinRcvd; i++ {
					an.c.Poll(e)
					peer.Pump()
				}
				if got := conn.Received(); !bytes.Equal(got, []byte("ping-around-the-ringping-around-the-ring")) {
					t.Fatalf("peer received %q", got)
				}
				if !conn.FinRcvd {
					t.Fatal("peer never saw FIN")
				}
				// Peer-side close reaches the server as EOF.
				conn.Close()
				an.c.Poll(e)
				if n, errno := an.c.Recv(e, cfd, an.buf, an.n); errno != lwip.EOK || n != 0 {
					t.Fatalf("EOF expected, got n=%d errno=%d", n, errno)
				}
			})
			if err != nil {
				t.Fatal(err)
			}
		})
	}
}

// TestLargeTransferSegmentsAndFlowControl pushes 256 KiB through a 64 KiB
// send buffer and checks segmentation, flow control and total delivery.
func TestLargeTransferSegmentsAndFlowControl(t *testing.T) {
	s := bootNet(t, cubicle.ModeFull, 64<<10)
	peer := lwip.NewPeer(s.Netdev.Wire())
	const total = 256 << 10
	err := s.RunAs("APP", func(e *cubicle.Env) {
		an := newAppNet(s, e, 128<<10)
		fd := an.c.Socket(e)
		an.c.Bind(e, fd, 80)
		an.c.Listen(e, fd, 8)
		conn := peer.Connect(80)
		an.c.Poll(e)
		peer.Pump()
		cfd, errno := an.c.Accept(e, fd)
		if errno != lwip.EOK {
			t.Fatalf("accept: %d", errno)
		}
		want := make([]byte, total)
		for i := range want {
			want[i] = byte(i * 13)
		}
		sent := uint64(0)
		sawBackpressure := false
		rounds := 0
		for sent < total {
			rounds++
			if rounds > 10000 {
				t.Fatal("transfer stuck")
			}
			chunk := uint64(32 << 10)
			if sent+chunk > total {
				chunk = total - sent
			}
			e.Write(an.buf, want[sent:sent+chunk])
			n, errno := an.c.Send(e, cfd, an.buf, chunk)
			sent += n
			if errno == lwip.EAGAIN || n < chunk {
				// Send buffer full: the app must drive the stack before
				// it can queue more — the Figure 7 slope-change regime.
				sawBackpressure = true
				an.c.Poll(e)
				peer.Pump()
			}
		}
		for i := 0; i < 100 && conn.ReceivedLen() < total; i++ {
			an.c.Poll(e)
			peer.Pump()
		}
		if !bytes.Equal(conn.Received(), want) {
			t.Fatalf("peer received %d bytes, mismatch or short (want %d)", conn.ReceivedLen(), total)
		}
		if !sawBackpressure {
			t.Error("send buffer never filled (flow control untested)")
		}
	})
	if err != nil {
		t.Fatal(err)
	}
	if s.Lwip.SegmentsTx < total/lwip.MSS {
		t.Errorf("segments tx = %d, want >= %d", s.Lwip.SegmentsTx, total/lwip.MSS)
	}
	if s.Netdev.Wire().FramesOut == 0 || s.Netdev.Wire().FramesIn == 0 {
		t.Error("wire counters empty")
	}
}

// TestPeerRespectsServerWindow: the peer must not overrun the server's
// 64 KiB receive buffer when the app does not drain it.
func TestPeerRespectsServerWindow(t *testing.T) {
	s := bootNet(t, cubicle.ModeUnikraft, 0)
	peer := lwip.NewPeer(s.Netdev.Wire())
	err := s.RunAs("APP", func(e *cubicle.Env) {
		an := newAppNet(s, e, 256<<10)
		fd := an.c.Socket(e)
		an.c.Bind(e, fd, 80)
		an.c.Listen(e, fd, 8)
		conn := peer.Connect(80)
		an.c.Poll(e)
		peer.Pump()
		cfd, _ := an.c.Accept(e, fd)
		big := make([]byte, 200<<10)
		conn.Send(big)
		for i := 0; i < 50; i++ {
			an.c.Poll(e)
			peer.Pump()
		}
		// Server's rx ring is 64 KiB: everything received must be
		// in-order and bounded; the rest arrives as the app drains.
		got := uint64(0)
		for i := 0; i < 500 && got < uint64(len(big)); i++ {
			n, errno := an.c.Recv(e, cfd, an.buf, an.n)
			if errno == lwip.EAGAIN {
				an.c.Poll(e)
				peer.Pump()
				continue
			}
			got += n
		}
		if got != uint64(len(big)) {
			t.Fatalf("drained %d of %d bytes", got, len(big))
		}
	})
	if err != nil {
		t.Fatal(err)
	}
}

// TestBindConflictAndErrors covers API error paths.
func TestBindConflictAndErrors(t *testing.T) {
	s := bootNet(t, cubicle.ModeUnikraft, 0)
	err := s.RunAs("APP", func(e *cubicle.Env) {
		an := newAppNet(s, e, 4096)
		a := an.c.Socket(e)
		b := an.c.Socket(e)
		an.c.Bind(e, a, 80)
		an.c.Listen(e, a, 4)
		if errno := an.c.Bind(e, b, 80); errno != lwip.EINVAL {
			t.Errorf("duplicate bind: %d", errno)
		}
		if errno := an.c.Listen(e, b, 4); errno != lwip.EINVAL {
			t.Errorf("listen unbound: %d", errno)
		}
		if _, errno := an.c.Accept(e, a); errno != lwip.EAGAIN {
			t.Errorf("accept empty: %d", errno)
		}
		if _, errno := an.c.Accept(e, b); errno != lwip.EINVAL {
			t.Errorf("accept non-listener: %d", errno)
		}
		if _, errno := an.c.Recv(e, 999, an.buf, 1); errno != lwip.EBADF {
			t.Errorf("recv bad fd: %d", errno)
		}
		if _, errno := an.c.Send(e, b, an.buf, 1); errno != lwip.EINVAL {
			t.Errorf("send on unconnected: %d", errno)
		}
	})
	if err != nil {
		t.Fatal(err)
	}
}

// TestNetIsolation: LWIP reading an app buffer without a window faults.
func TestNetIsolation(t *testing.T) {
	s := bootNet(t, cubicle.ModeFull, 0)
	peer := lwip.NewPeer(s.Netdev.Wire())
	err := s.RunAs("APP", func(e *cubicle.Env) {
		c := lwip.NewClient(s.M, s.Cubs["APP"].ID)
		fd := c.Socket(e)
		c.Bind(e, fd, 80)
		c.Listen(e, fd, 4)
		peer.Connect(80)
		c.Poll(e)
		peer.Pump()
		cfd, _ := c.Accept(e, fd)
		buf := e.HeapAlloc(4096) // NOT windowed
		e.Write(buf, []byte("x"))
		if fault := cubicle.Catch(func() { c.Send(e, cfd, buf, 1) }); fault == nil {
			t.Fatal("LWIP read app buffer without a window")
		}
	})
	if err != nil {
		t.Fatal(err)
	}
	// The LWIP->NETDEV edge must exist (SYN-ACK went out).
	edge := cubicle.Edge{From: s.Cubs[lwip.Name].ID, To: s.Cubs[netdev.Name].ID}
	if s.M.Stats.Calls[edge] == 0 {
		t.Error("no LWIP->NETDEV crossings")
	}
}

// TestBacklogLimit: SYNs beyond the listener backlog are dropped, and the
// stack recovers once the queue drains.
func TestBacklogLimit(t *testing.T) {
	s := bootNet(t, cubicle.ModeUnikraft, 0)
	peer := lwip.NewPeer(s.Netdev.Wire())
	err := s.RunAs("APP", func(e *cubicle.Env) {
		an := newAppNet(s, e, 4096)
		fd := an.c.Socket(e)
		an.c.Bind(e, fd, 80)
		an.c.Listen(e, fd, 2) // backlog of 2
		conns := make([]*lwip.PeerConn, 4)
		for i := range conns {
			conns[i] = peer.Connect(80)
		}
		an.c.Poll(e)
		peer.Pump()
		established := 0
		for _, c := range conns {
			if c.Established {
				established++
			}
		}
		if established != 2 {
			t.Fatalf("established %d connections with backlog 2", established)
		}
		// Draining the accept queue makes room for a new connection.
		if _, errno := an.c.Accept(e, fd); errno != lwip.EOK {
			t.Fatal("accept failed")
		}
		late := peer.Connect(80)
		an.c.Poll(e)
		peer.Pump()
		if !late.Established {
			t.Fatal("listener did not recover after accept")
		}
	})
	if err != nil {
		t.Fatal(err)
	}
}

// TestRecvAfterFinDrainsThenEOF: data queued before the FIN is delivered
// before EOF is signalled.
func TestRecvAfterFinDrainsThenEOF(t *testing.T) {
	s := bootNet(t, cubicle.ModeUnikraft, 0)
	peer := lwip.NewPeer(s.Netdev.Wire())
	err := s.RunAs("APP", func(e *cubicle.Env) {
		an := newAppNet(s, e, 4096)
		fd := an.c.Socket(e)
		an.c.Bind(e, fd, 80)
		an.c.Listen(e, fd, 4)
		conn := peer.Connect(80)
		an.c.Poll(e)
		peer.Pump()
		cfd, _ := an.c.Accept(e, fd)
		conn.Send([]byte("last words"))
		conn.Close()
		an.c.Poll(e)
		n, errno := an.c.Recv(e, cfd, an.buf, 4096)
		if errno != lwip.EOK || n != 10 {
			t.Fatalf("drain before EOF: n=%d errno=%d", n, errno)
		}
		n, errno = an.c.Recv(e, cfd, an.buf, 4096)
		if errno != lwip.EOK || n != 0 {
			t.Fatalf("EOF after drain: n=%d errno=%d", n, errno)
		}
	})
	if err != nil {
		t.Fatal(err)
	}
}

// TestCloseListener releases the port for rebinding.
func TestCloseListener(t *testing.T) {
	s := bootNet(t, cubicle.ModeUnikraft, 0)
	err := s.RunAs("APP", func(e *cubicle.Env) {
		an := newAppNet(s, e, 4096)
		fd := an.c.Socket(e)
		an.c.Bind(e, fd, 80)
		an.c.Listen(e, fd, 4)
		an.c.Close(e, fd)
		fd2 := an.c.Socket(e)
		if errno := an.c.Bind(e, fd2, 80); errno != lwip.EOK {
			t.Fatalf("rebind after close: %d", errno)
		}
	})
	if err != nil {
		t.Fatal(err)
	}
}
