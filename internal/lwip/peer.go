package lwip

import (
	"bytes"

	"cubicleos/internal/netdev"
)

// Peer is the host-side TCP endpoint: the network client that load
// generators (siege, test harnesses) use to talk to the library OS over
// the NETDEV wire. It lives entirely outside the simulated machine —
// exactly like the external clients of the paper's evaluation — so its
// processing costs nothing on the virtual clock.
type Peer struct {
	w        *netdev.Wire
	conns    map[uint16]*PeerConn // keyed by the peer-side port
	nextPort uint16
	// Window is the receive window the peer advertises to the server.
	Window uint32
	// ackq lists connections owing a deferred window-update ACK, in the
	// order the data arrived. Draining this instead of scanning conns keeps
	// Pump O(live traffic) regardless of how many connections the load
	// generator has opened, and emits the deferred ACKs in a deterministic
	// order (map iteration order is not).
	ackq []*PeerConn
}

// NewPeer attaches a host peer to the wire.
func NewPeer(w *netdev.Wire) *Peer {
	return &Peer{w: w, conns: make(map[uint16]*PeerConn), nextPort: 40000, Window: 1 << 20}
}

// PeerConn is one host-side TCP connection.
type PeerConn struct {
	p                    *Peer
	localPort            uint16 // peer side
	remotePort           uint16 // server side
	sndNxt               uint32
	rcvNxt               uint32
	lastAcked            uint32
	srvWnd               uint32
	recv                 bytes.Buffer
	Established, FinRcvd bool
	// pending holds outbound application data not yet sent to the wire
	// (respecting the server's advertised receive window).
	pending []byte
	unacked uint32
	// ackQueued marks the connection as already on the peer's deferred-ACK
	// queue; released marks it detached by Release.
	ackQueued, released bool
}

// Connect sends a SYN to the given server port and returns the connection
// (not yet established until Pump processes the SYN-ACK).
func (p *Peer) Connect(serverPort uint16) *PeerConn {
	c := &PeerConn{p: p, localPort: p.nextPort, remotePort: serverPort, srvWnd: 64 << 10}
	p.nextPort++
	p.conns[c.localPort] = c
	p.send(c, FlagSYN, nil)
	c.sndNxt++
	return c
}

// send emits one frame from the peer to the server.
func (p *Peer) send(c *PeerConn, flags uint8, payload []byte) {
	frame := make([]byte, HdrSize+len(payload))
	EncodeHeader(frame, Header{
		SrcPort: c.localPort, DstPort: c.remotePort,
		Seq: c.sndNxt, Ack: c.rcvNxt, Flags: flags,
		Wnd: p.Window, Len: uint16(len(payload)),
	})
	copy(frame[HdrSize:], payload)
	p.w.HostSend(frame)
}

// Pump processes every frame the server has put on the wire; returns the
// number of frames handled.
func (p *Peer) Pump() int {
	n := 0
	for {
		f := p.w.HostRecv()
		if f == nil {
			// Drained: send any deferred window-update acknowledgements, in
			// data-arrival order.
			for _, c := range p.ackq {
				c.ackQueued = false
				if !c.released && c.rcvNxt != c.lastAcked {
					p.send(c, FlagACK, nil)
					c.lastAcked = c.rcvNxt
				}
			}
			p.ackq = p.ackq[:0]
			return n
		}
		n++
		if len(f) < HdrSize {
			continue
		}
		h := DecodeHeader(f)
		c, ok := p.conns[h.DstPort]
		if !ok {
			continue
		}
		c.srvWnd = h.Wnd
		if h.Flags&FlagACK != 0 {
			if int32(h.Ack-(c.sndNxt-c.unacked)) > 0 {
				acked := h.Ack - (c.sndNxt - c.unacked)
				if acked > c.unacked {
					acked = c.unacked
				}
				c.unacked -= acked
			}
		}
		if h.Flags&FlagSYN != 0 {
			c.rcvNxt = h.Seq + 1
			c.Established = true
			p.send(c, FlagACK, nil)
			// The handshake ACK intentionally leaves lastAcked behind, so
			// the drain below re-acknowledges once more: the peer has always
			// confirmed its receive window right after establishment, and
			// the figure goldens pin that frame sequence.
			if !c.ackQueued {
				c.ackQueued = true
				p.ackq = append(p.ackq, c)
			}
			continue
		}
		if h.Len > 0 && h.Seq == c.rcvNxt {
			c.recv.Write(f[HdrSize : HdrSize+int(h.Len)])
			c.rcvNxt += uint32(h.Len)
		}
		if h.Flags&FlagFIN != 0 && h.Seq == c.rcvNxt {
			c.rcvNxt++
			c.FinRcvd = true
		}
		// Delayed acknowledgements: ack immediately on FIN or after four
		// full segments; otherwise acknowledge once the pump drains
		// (below), as real TCP receivers do.
		if c.FinRcvd || c.rcvNxt-c.lastAcked >= 4*MSS {
			p.send(c, FlagACK, nil)
			c.lastAcked = c.rcvNxt
		} else if c.rcvNxt != c.lastAcked && !c.ackQueued {
			c.ackQueued = true
			p.ackq = append(p.ackq, c)
		}
		// Window may have opened: push pending data.
		c.flush()
	}
}

// Send queues application data toward the server; data beyond the
// server's advertised window is held back until ACKs open it.
func (c *PeerConn) Send(data []byte) {
	c.pending = append(c.pending, data...)
	c.flush()
}

func (c *PeerConn) flush() {
	for len(c.pending) > 0 {
		wnd := int(c.srvWnd) - int(c.unacked)
		if wnd <= 0 {
			return
		}
		n := len(c.pending)
		if n > MSS {
			n = MSS
		}
		if n > wnd {
			n = wnd
		}
		c.p.send(c, FlagACK, c.pending[:n])
		c.sndNxt += uint32(n)
		c.unacked += uint32(n)
		c.pending = c.pending[n:]
	}
}

// Close sends a FIN.
func (c *PeerConn) Close() {
	c.p.send(c, FlagFIN|FlagACK, nil)
	c.sndNxt++
}

// Release detaches a finished connection from the peer so its state can
// be collected: frames still in flight for the port are dropped, exactly
// like a closed socket. Received data stays readable. Without this a
// long-running load generator accretes one dead PeerConn per request and
// every Pump drain walks them all.
func (c *PeerConn) Release() {
	if c.released {
		return
	}
	c.released = true
	delete(c.p.conns, c.localPort)
}

// Received returns everything received so far.
func (c *PeerConn) Received() []byte { return c.recv.Bytes() }

// ReceivedLen returns the number of bytes received so far.
func (c *PeerConn) ReceivedLen() int { return c.recv.Len() }
