package lwip

import (
	"bytes"

	"cubicleos/internal/netdev"
)

// Peer is the host-side TCP endpoint: the network client that load
// generators (siege, test harnesses) use to talk to the library OS over
// the NETDEV wire. It lives entirely outside the simulated machine —
// exactly like the external clients of the paper's evaluation — so its
// processing costs nothing on the virtual clock.
type Peer struct {
	w        *netdev.Wire
	conns    map[uint16]*PeerConn // keyed by the peer-side port
	nextPort uint16
	// Window is the receive window the peer advertises to the server.
	Window uint32
}

// NewPeer attaches a host peer to the wire.
func NewPeer(w *netdev.Wire) *Peer {
	return &Peer{w: w, conns: make(map[uint16]*PeerConn), nextPort: 40000, Window: 1 << 20}
}

// PeerConn is one host-side TCP connection.
type PeerConn struct {
	p                    *Peer
	localPort            uint16 // peer side
	remotePort           uint16 // server side
	sndNxt               uint32
	rcvNxt               uint32
	lastAcked            uint32
	srvWnd               uint32
	recv                 bytes.Buffer
	Established, FinRcvd bool
	// pending holds outbound application data not yet sent to the wire
	// (respecting the server's advertised receive window).
	pending []byte
	unacked uint32
}

// Connect sends a SYN to the given server port and returns the connection
// (not yet established until Pump processes the SYN-ACK).
func (p *Peer) Connect(serverPort uint16) *PeerConn {
	c := &PeerConn{p: p, localPort: p.nextPort, remotePort: serverPort, srvWnd: 64 << 10}
	p.nextPort++
	p.conns[c.localPort] = c
	p.send(c, FlagSYN, nil)
	c.sndNxt++
	return c
}

// send emits one frame from the peer to the server.
func (p *Peer) send(c *PeerConn, flags uint8, payload []byte) {
	frame := make([]byte, HdrSize+len(payload))
	EncodeHeader(frame, Header{
		SrcPort: c.localPort, DstPort: c.remotePort,
		Seq: c.sndNxt, Ack: c.rcvNxt, Flags: flags,
		Wnd: p.Window, Len: uint16(len(payload)),
	})
	copy(frame[HdrSize:], payload)
	p.w.HostSend(frame)
}

// Pump processes every frame the server has put on the wire; returns the
// number of frames handled.
func (p *Peer) Pump() int {
	n := 0
	for {
		f := p.w.HostRecv()
		if f == nil {
			// Drained: send any deferred window-update acknowledgements.
			for _, c := range p.conns {
				if c.rcvNxt != c.lastAcked {
					p.send(c, FlagACK, nil)
					c.lastAcked = c.rcvNxt
				}
			}
			return n
		}
		n++
		if len(f) < HdrSize {
			continue
		}
		h := DecodeHeader(f)
		c, ok := p.conns[h.DstPort]
		if !ok {
			continue
		}
		c.srvWnd = h.Wnd
		if h.Flags&FlagACK != 0 {
			if int32(h.Ack-(c.sndNxt-c.unacked)) > 0 {
				acked := h.Ack - (c.sndNxt - c.unacked)
				if acked > c.unacked {
					acked = c.unacked
				}
				c.unacked -= acked
			}
		}
		if h.Flags&FlagSYN != 0 {
			c.rcvNxt = h.Seq + 1
			c.Established = true
			p.send(c, FlagACK, nil)
			continue
		}
		if h.Len > 0 && h.Seq == c.rcvNxt {
			c.recv.Write(f[HdrSize : HdrSize+int(h.Len)])
			c.rcvNxt += uint32(h.Len)
		}
		if h.Flags&FlagFIN != 0 && h.Seq == c.rcvNxt {
			c.rcvNxt++
			c.FinRcvd = true
		}
		// Delayed acknowledgements: ack immediately on FIN or after four
		// full segments; otherwise acknowledge once the pump drains
		// (below), as real TCP receivers do.
		if c.FinRcvd || c.rcvNxt-c.lastAcked >= 4*MSS {
			p.send(c, FlagACK, nil)
			c.lastAcked = c.rcvNxt
		}
		// Window may have opened: push pending data.
		c.flush()
	}
}

// Send queues application data toward the server; data beyond the
// server's advertised window is held back until ACKs open it.
func (c *PeerConn) Send(data []byte) {
	c.pending = append(c.pending, data...)
	c.flush()
}

func (c *PeerConn) flush() {
	for len(c.pending) > 0 {
		wnd := int(c.srvWnd) - int(c.unacked)
		if wnd <= 0 {
			return
		}
		n := len(c.pending)
		if n > MSS {
			n = MSS
		}
		if n > wnd {
			n = wnd
		}
		c.p.send(c, FlagACK, c.pending[:n])
		c.sndNxt += uint32(n)
		c.unacked += uint32(n)
		c.pending = c.pending[n:]
	}
}

// Close sends a FIN.
func (c *PeerConn) Close() {
	c.p.send(c, FlagFIN|FlagACK, nil)
	c.sndNxt++
}

// Received returns everything received so far.
func (c *PeerConn) Received() []byte { return c.recv.Bytes() }

// ReceivedLen returns the number of bytes received so far.
func (c *PeerConn) ReceivedLen() int { return c.recv.Len() }
