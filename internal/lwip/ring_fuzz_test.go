package lwip

import (
	"bytes"
	"sync"
	"testing"

	"cubicleos/internal/cubicle"
	"cubicleos/internal/cycles"
	"cubicleos/internal/vm"
)

// ringHarness is a minimal booted system whose only job is to give the
// ring's Memcpy-based operations a real Env and simulated memory. It is
// built once and shared (under a lock) across fuzz iterations.
type ringHarness struct {
	mu   sync.Mutex
	m    *cubicle.Monitor
	env  *cubicle.Env
	id   cubicle.ID
	buf  vm.Addr // ring storage, maxCap bytes
	side vm.Addr // staging for writes/reads, maxCap bytes
}

const fuzzMaxCap = 512

var harnessOnce struct {
	sync.Once
	h   *ringHarness
	err error
}

func newRingHarness() (*ringHarness, error) {
	b := cubicle.NewBuilder()
	b.MustAdd(&cubicle.Component{Name: "RINGAPP", Kind: cubicle.KindIsolated,
		Exports: []cubicle.ExportDecl{{Name: "main",
			Fn: func(e *cubicle.Env, a []uint64) []uint64 { return nil }}}})
	si, err := b.Build()
	if err != nil {
		return nil, err
	}
	m := cubicle.NewMonitor(cubicle.ModeUnikraft, cycles.DefaultCosts())
	cubs, err := cubicle.NewLoader(m).LoadSystem(si, nil)
	if err != nil {
		return nil, err
	}
	h := &ringHarness{m: m, env: m.NewEnv(m.NewThread()), id: cubs["RINGAPP"].ID}
	if err := m.RunAs(h.env, h.id, func(e *cubicle.Env) {
		h.buf = e.HeapAlloc(fuzzMaxCap)
		h.side = e.HeapAlloc(fuzzMaxCap)
	}); err != nil {
		return nil, err
	}
	return h, nil
}

// FuzzRing drives a ring through an arbitrary op sequence and checks it
// against a plain byte-queue model: every write/read/peek/consume must
// move exactly the clamped count, deliver bytes in FIFO order, and keep
// len/space within capacity — including the wrap-around and zero-capacity
// edges that used to underflow or divide by zero.
func FuzzRing(f *testing.F) {
	f.Add(uint8(0), []byte{0, 255, 1, 255, 3, 255})        // zero capacity: everything refused
	f.Add(uint8(1), []byte{0, 200, 1, 100, 0, 200, 1, 57}) // wrap-around on a small ring
	f.Add(uint8(2), []byte{0, 10, 3, 255, 3, 1})           // over-consume
	f.Add(uint8(3), []byte{0, 255, 0, 255, 2, 40, 1, 255}) // overfill then peek/read
	f.Add(uint8(4), []byte{0, 1, 1, 1, 0, 0, 3, 0})        // zero-length ops
	f.Fuzz(func(t *testing.T, capSel uint8, ops []byte) {
		harnessOnce.Do(func() { harnessOnce.h, harnessOnce.err = newRingHarness() })
		if harnessOnce.err != nil {
			t.Fatal(harnessOnce.err)
		}
		h := harnessOnce.h
		h.mu.Lock()
		defer h.mu.Unlock()

		caps := []uint64{0, 1, 7, 64, fuzzMaxCap}
		capacity := caps[int(capSel)%len(caps)]
		r := &ring{buf: h.buf, cap: capacity}
		var model []byte
		seq := byte(0)
		err := h.m.RunAs(h.env, h.id, func(e *cubicle.Env) {
			for i := 0; i+1 < len(ops); i += 2 {
				op, n := ops[i]%4, uint64(ops[i+1])
				switch op {
				case 0: // write
					pat := make([]byte, n)
					for j := range pat {
						pat[j] = seq
						seq++
					}
					if n > 0 {
						e.Write(h.side, pat)
					}
					want := n
					if free := capacity - uint64(len(model)); want > free {
						want = free
					}
					if got := r.write(e, h.side, n); got != want {
						t.Fatalf("op %d: write(%d) = %d, want %d (len %d cap %d)", i, n, got, want, len(model), capacity)
					} else {
						model = append(model, pat[:got]...)
					}
				case 1: // read
					want := n
					if want > uint64(len(model)) {
						want = uint64(len(model))
					}
					got := r.read(e, h.side, n)
					if got != want {
						t.Fatalf("op %d: read(%d) = %d, want %d", i, n, got, want)
					}
					if got > 0 {
						if data := e.ReadBytes(h.side, got); !bytes.Equal(data, model[:got]) {
							t.Fatalf("op %d: read returned %v, want %v", i, data, model[:got])
						}
						model = model[got:]
					}
				case 2: // peek
					want := n
					if want > uint64(len(model)) {
						want = uint64(len(model))
					}
					got := r.peek(e, h.side, n)
					if got != want {
						t.Fatalf("op %d: peek(%d) = %d, want %d", i, n, got, want)
					}
					if got > 0 {
						if data := e.ReadBytes(h.side, got); !bytes.Equal(data, model[:got]) {
							t.Fatalf("op %d: peek returned %v, want %v", i, data, model[:got])
						}
					}
				case 3: // consume
					want := n
					if want > uint64(len(model)) {
						want = uint64(len(model))
					}
					r.consume(n)
					model = model[want:]
				}
				if r.len != uint64(len(model)) {
					t.Fatalf("op %d: ring len %d diverged from model %d", i, r.len, len(model))
				}
				if r.len > capacity || r.space() != capacity-r.len {
					t.Fatalf("op %d: accounting broken: len %d cap %d space %d", i, r.len, capacity, r.space())
				}
			}
		})
		if err != nil {
			t.Fatal(err)
		}
	})
}
