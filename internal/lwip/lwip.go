// Package lwip is the LWIP component: the TCP/IP stack of the NGINX
// deployment (Figure 5). It implements a compact but real TCP over the
// NETDEV virtual device — handshake, segmentation at the MSS, cumulative
// acknowledgements, flow control against the peer's advertised window,
// and a bounded send buffer whose size produces the latency slope change
// for large transfers that the paper observes in Figure 7 ("the change in
// slope for files larger than 1 MB is due to the buffer size inside
// LWIP").
package lwip

import (
	"encoding/binary"
	"fmt"

	"cubicleos/internal/cubicle"
	"cubicleos/internal/netdev"
	"cubicleos/internal/ualloc"
	"cubicleos/internal/vm"
)

// Name of the component in deployments.
const Name = "LWIP"

// Frame header layout (simplified TCP/IP: ports, seq/ack, flags, window,
// length). The real stack's 54-byte Ethernet+IP+TCP header cost is
// modelled in stackWork.
const (
	HdrSize = 19
	MSS     = 1448
)

// TCP flags.
const (
	FlagSYN = 1 << iota
	FlagACK
	FlagFIN
	FlagRST
)

// Errnos returned by the socket API.
const (
	EOK    = 0
	EAGAIN = 11
	EBADF  = 9
	EINVAL = 22
)

// Default buffer sizes. SendBufCap bounds unsent+unacknowledged data per
// socket; transfers larger than it require the application to interleave
// sends with stack polls, which is the Figure 7 slope change.
const (
	DefaultSendBuf = 1 << 20 // 1 MiB
	DefaultRecvBuf = 64 << 10
)

// stackWork models per-frame TCP/IP processing: header parse/build,
// checksum over the segment, demux, timers.
const stackWork = 3400

// Socket states.
const (
	stClosed = iota
	stListen
	stEstab
	stCloseWait
	stFinSent
)

// Header is a parsed frame header.
type Header struct {
	SrcPort, DstPort uint16
	Seq, Ack         uint32
	Flags            uint8
	Wnd              uint32
	Len              uint16
}

// EncodeHeader writes h into b (at least HdrSize bytes).
func EncodeHeader(b []byte, h Header) {
	binary.BigEndian.PutUint16(b[0:], h.SrcPort)
	binary.BigEndian.PutUint16(b[2:], h.DstPort)
	binary.BigEndian.PutUint32(b[4:], h.Seq)
	binary.BigEndian.PutUint32(b[8:], h.Ack)
	b[12] = h.Flags
	binary.BigEndian.PutUint32(b[13:], h.Wnd)
	binary.BigEndian.PutUint16(b[17:], h.Len)
}

// DecodeHeader parses a frame header.
func DecodeHeader(b []byte) Header {
	return Header{
		SrcPort: binary.BigEndian.Uint16(b[0:]),
		DstPort: binary.BigEndian.Uint16(b[2:]),
		Seq:     binary.BigEndian.Uint32(b[4:]),
		Ack:     binary.BigEndian.Uint32(b[8:]),
		Flags:   b[12],
		Wnd:     binary.BigEndian.Uint32(b[13:]),
		Len:     binary.BigEndian.Uint16(b[17:]),
	}
}

// ring is a byte ring buffer in simulated memory.
type ring struct {
	buf   vm.Addr
	cap   uint64
	start uint64
	len   uint64
}

// write copies up to n bytes from src (simulated memory) into the ring,
// clamped to the free space; returns bytes written. A zero-capacity ring
// accepts nothing (and must not divide by its capacity).
func (r *ring) write(e *cubicle.Env, src vm.Addr, n uint64) uint64 {
	if r.cap == 0 {
		return 0
	}
	if sp := r.space(); n > sp {
		n = sp
	}
	if n == 0 {
		return 0
	}
	off := (r.start + r.len) % r.cap
	first := r.cap - off
	if first > n {
		first = n
	}
	e.Memcpy(r.buf.Add(off), src, first)
	if n > first {
		e.Memcpy(r.buf, src.Add(first), n-first)
	}
	r.len += n
	return n
}

// read copies up to n bytes from the ring into dst; returns bytes moved.
func (r *ring) read(e *cubicle.Env, dst vm.Addr, n uint64) uint64 {
	if n > r.len {
		n = r.len
	}
	if n == 0 {
		return 0
	}
	first := r.cap - r.start
	if first > n {
		first = n
	}
	e.Memcpy(dst, r.buf.Add(r.start), first)
	if n > first {
		e.Memcpy(dst.Add(first), r.buf, n-first)
	}
	r.start = (r.start + n) % r.cap
	r.len -= n
	return n
}

// peek copies up to n bytes from the ring head without consuming.
func (r *ring) peek(e *cubicle.Env, dst vm.Addr, n uint64) uint64 {
	if n > r.len {
		n = r.len
	}
	if n == 0 {
		return 0
	}
	first := r.cap - r.start
	if first > n {
		first = n
	}
	e.Memcpy(dst, r.buf.Add(r.start), first)
	if n > first {
		e.Memcpy(dst.Add(first), r.buf, n-first)
	}
	return n
}

// consume drops up to n bytes from the ring head (clamped to the fill, so
// an over-consume cannot underflow the accounting).
func (r *ring) consume(n uint64) {
	if n > r.len {
		n = r.len
	}
	if n == 0 {
		return
	}
	r.start = (r.start + n) % r.cap
	r.len -= n
}

func (r *ring) space() uint64 { return r.cap - r.len }

// sock is one TCP socket.
type sock struct {
	fd         uint64
	state      int
	localPort  uint16
	remotePort uint16
	rx, tx     ring
	sndNxt     uint32 // next sequence number to send
	sndUna     uint32 // oldest unacknowledged
	rcvNxt     uint32
	peerWnd    uint32
	needAck    bool
	acceptQ    []uint64
	backlog    int
	finRcvd    bool
	finQueued  bool
	// synAckPending marks a SYN-ACK refused by a full device queue, to be
	// retried by pump once the backpressure clears.
	synAckPending bool
}

func (s *sock) inflight() uint32 { return s.sndNxt - s.sndUna }

type connKey struct {
	local, remote uint16
}

// Module is the LWIP component state.
type Module struct {
	socks     map[uint64]*sock
	nextFD    uint64
	listeners map[uint16]*sock
	conns     map[connKey]*sock
	// order lists sockets in creation order so poll pumps them
	// deterministically (map iteration order would make frame ordering —
	// and therefore the virtual clock — vary run to run).
	order []*sock

	nd    *netdev.Client
	alloc ualloc.Allocator

	netdevID cubicle.ID
	stage    vm.Addr // frame staging buffer, shared with NETDEV

	// SendBufCap / RecvBufCap size new sockets' rings.
	SendBufCap uint64
	RecvBufCap uint64

	// ReapClosed, when set, frees a socket's buffers and forgets it once
	// its FIN is acknowledged with nothing in flight. Off by default: the
	// seed behaviour keeps sockets forever, which is exactly the unbounded
	// memory growth the overload experiment demonstrates.
	ReapClosed bool

	// SegmentsTx / SegmentsRx count TCP segments for the reports.
	SegmentsTx, SegmentsRx uint64
	// TxBackpressure counts segment transmits refused by the device queue;
	// Reaped counts sockets reclaimed by ReapClosed.
	TxBackpressure uint64
	Reaped         uint64
}

// New creates the stack; deployment wiring must call SetDeps.
func New() *Module {
	return &Module{
		socks:      make(map[uint64]*sock),
		nextFD:     1,
		listeners:  make(map[uint16]*sock),
		conns:      make(map[connKey]*sock),
		SendBufCap: DefaultSendBuf,
		RecvBufCap: DefaultRecvBuf,
	}
}

// SetDeps wires the NETDEV client and allocator strategy, plus the NETDEV
// cubicle ID for frame-buffer window sharing.
func (l *Module) SetDeps(nd *netdev.Client, alloc ualloc.Allocator, netdevID cubicle.ID) {
	l.nd = nd
	l.alloc = alloc
	l.netdevID = netdevID
}

// ensureInit sets up the staging frame buffer on first use: allocated
// from the configured allocator and shared with NETDEV so the device's
// DMA can reach it.
func (l *Module) ensureInit(e *cubicle.Env) {
	if l.stage != 0 {
		return
	}
	l.stage = l.alloc.Malloc(e, 2*vm.PageSize)
	l.alloc.Share(e, l.stage, 2*vm.PageSize, l.netdevID)
}

func (l *Module) newSock(e *cubicle.Env) *sock {
	s := &sock{fd: l.nextFD, state: stClosed, peerWnd: 64 << 10}
	l.nextFD++
	s.rx = ring{buf: l.alloc.Malloc(e, l.RecvBufCap), cap: l.RecvBufCap}
	s.tx = ring{buf: l.alloc.Malloc(e, l.SendBufCap), cap: l.SendBufCap}
	l.socks[s.fd] = s
	l.order = append(l.order, s)
	return s
}

// reap frees a socket's buffers and forgets it. Only fully closed
// connections (FIN sent and acknowledged, nothing in flight) are reaped.
func (l *Module) reap(e *cubicle.Env, s *sock) {
	l.alloc.Free(e, s.rx.buf)
	l.alloc.Free(e, s.tx.buf)
	delete(l.socks, s.fd)
	delete(l.conns, connKey{local: s.localPort, remote: s.remotePort})
	for i, o := range l.order {
		if o == s {
			l.order = append(l.order[:i], l.order[i+1:]...)
			break
		}
	}
	l.Reaped++
}

// sendFrame builds a frame in the staging buffer and hands it to NETDEV.
// The payload bytes come from the socket's send ring without consuming
// them — the caller consumes after the frame is out, modelling the DMA
// completing before buffer reuse. Returns false when the device refused
// the frame (bounded transmit queue full); the caller must leave its
// state unchanged so the segment is retried on a later pump.
func (l *Module) sendFrame(e *cubicle.Env, s *sock, flags uint8, payload uint64) bool {
	e.Work(stackWork)
	h := Header{
		SrcPort: s.localPort, DstPort: s.remotePort,
		Seq: s.sndNxt, Ack: s.rcvNxt, Flags: flags,
		Wnd: uint32(s.rx.space()), Len: uint16(payload),
	}
	var hdr [HdrSize]byte
	EncodeHeader(hdr[:], h)
	e.Write(l.stage, hdr[:])
	if payload > 0 {
		s.tx.peek(e, l.stage.Add(HdrSize), payload)
	}
	if _, errno := l.nd.Tx(e, l.stage, HdrSize+payload); errno != EOK {
		l.TxBackpressure++
		return false
	}
	l.SegmentsTx++
	return true
}

// poll drives the stack: drains received frames, delivers data, sends
// pending segments and acknowledgements. Returns the number of frames
// processed plus segments sent (activity indicator).
func (l *Module) poll(e *cubicle.Env) uint64 {
	l.ensureInit(e)
	activity := uint64(0)
	// Receive path.
	for {
		n, _ := l.nd.Rx(e, l.stage, 2*vm.PageSize)
		if n == 0 {
			break
		}
		activity++
		l.SegmentsRx++
		e.Work(stackWork)
		// Decode the staged frame header through a stack buffer: the
		// checked read is a single span-TLB probe, no heap allocation.
		var hb [HdrSize]byte
		e.Read(l.stage, hb[:])
		l.handleFrame(e, DecodeHeader(hb[:]))
	}
	// Transmit path, in deterministic creation order.
	for _, s := range l.order {
		activity += l.pump(e, s)
	}
	if l.ReapClosed {
		// Reclaim fully closed connections: FIN sent and acknowledged,
		// nothing left to deliver or retransmit.
		for i := 0; i < len(l.order); {
			s := l.order[i]
			if s.state == stFinSent && s.inflight() == 0 && s.tx.len == 0 && !s.needAck {
				l.reap(e, s)
				continue // reap spliced l.order; same index is the next sock
			}
			i++
		}
	}
	return activity
}

// handleFrame dispatches one received frame.
func (l *Module) handleFrame(e *cubicle.Env, h Header) {
	key := connKey{local: h.DstPort, remote: h.SrcPort}
	s, ok := l.conns[key]
	if !ok {
		// New connection? Must be a SYN to a listener.
		ls, lok := l.listeners[h.DstPort]
		if !lok || h.Flags&FlagSYN == 0 {
			return // drop (no RST generation needed on the lossless wire)
		}
		if len(ls.acceptQ) >= ls.backlog {
			return
		}
		c := l.newSock(e)
		c.state = stEstab
		c.localPort = h.DstPort
		c.remotePort = h.SrcPort
		c.rcvNxt = h.Seq + 1
		c.peerWnd = h.Wnd
		l.conns[key] = c
		ls.acceptQ = append(ls.acceptQ, c.fd)
		// SYN-ACK consumes one sequence number. If the device queue is
		// full it is retried from pump; the connection is already
		// established on our side either way.
		if l.sendFrame(e, c, FlagSYN|FlagACK, 0) {
			c.sndNxt++
			c.sndUna = c.sndNxt - 1
		} else {
			c.synAckPending = true
		}
		return
	}
	if h.Flags&FlagACK != 0 {
		// Cumulative ACK: free acknowledged send-buffer space.
		if int32(h.Ack-s.sndUna) > 0 {
			s.sndUna = h.Ack
		}
		s.peerWnd = h.Wnd
	}
	if h.Len > 0 {
		if h.Seq == s.rcvNxt && uint64(h.Len) <= s.rx.space() {
			s.rx.write(e, l.stage.Add(HdrSize), uint64(h.Len))
			s.rcvNxt += uint32(h.Len)
			s.needAck = true
		} else {
			// Out-of-window data is dropped; the peer retransmits.
			s.needAck = true
		}
	}
	if h.Flags&FlagFIN != 0 && h.Seq == s.rcvNxt {
		s.rcvNxt++
		s.finRcvd = true
		s.needAck = true
		if s.state == stEstab {
			s.state = stCloseWait
		}
	}
	if h.Flags&FlagRST != 0 {
		s.state = stClosed
	}
}

// pump sends as much pending data as the peer window allows, plus any FIN
// or pure ACK due. Returns segments sent.
func (l *Module) pump(e *cubicle.Env, s *sock) uint64 {
	if s.state != stEstab && s.state != stCloseWait && s.state != stFinSent {
		return 0
	}
	sent := uint64(0)
	if s.synAckPending {
		// Retry the handshake reply the device queue refused earlier.
		if !l.sendFrame(e, s, FlagSYN|FlagACK, 0) {
			return sent
		}
		s.synAckPending = false
		s.sndNxt++
		s.sndUna = s.sndNxt - 1
		sent++
	}
	for s.tx.len > 0 {
		wnd := uint64(0)
		if uint64(s.inflight()) < uint64(s.peerWnd) {
			wnd = uint64(s.peerWnd) - uint64(s.inflight())
		}
		seg := s.tx.len
		if seg > MSS {
			seg = MSS
		}
		if seg > wnd {
			seg = wnd
		}
		if seg == 0 {
			break
		}
		if !l.sendFrame(e, s, FlagACK, seg) {
			// Device backpressure: leave the segment in the ring and the
			// sequence space untouched; a later pump retries it.
			return sent
		}
		s.tx.consume(seg)
		s.sndNxt += uint32(seg)
		s.needAck = false
		sent++
	}
	if s.finQueued && s.tx.len == 0 && s.state != stFinSent {
		if !l.sendFrame(e, s, FlagFIN|FlagACK, 0) {
			return sent
		}
		s.sndNxt++
		s.state = stFinSent
		s.needAck = false
		sent++
	}
	if s.needAck {
		if !l.sendFrame(e, s, FlagACK, 0) {
			return sent
		}
		s.needAck = false
		sent++
	}
	return sent
}

func (l *Module) get(fd uint64) (*sock, uint64) {
	s, ok := l.socks[fd]
	if !ok {
		return nil, EBADF
	}
	return s, EOK
}

// snapIdle reports whether a socket is in a checkpointable state: a
// listener with an empty accept queue, a closed socket, or a fully
// drained post-FIN socket. Anything mid-connection vetoes the round.
func snapIdle(s *sock) bool {
	if s.rx.len != 0 || s.tx.len != 0 || s.needAck || s.synAckPending || len(s.acceptQ) != 0 {
		return false
	}
	switch s.state {
	case stListen, stClosed:
		return true
	case stFinSent:
		return s.inflight() == 0 && !s.finQueued
	}
	return false
}

// Snapshot serialises the stack for warm recovery, or returns an error
// when any socket is mid-connection — an in-flight TCP exchange cannot be
// resumed from a checkpoint, so the round is vetoed and the previous
// checkpoint stays good. Ring buffer ADDRESSES are recorded (their pages
// are part of the cubicle's page image, or survive in the foreign
// allocator); ring contents are empty by the idleness rule.
func (l *Module) Snapshot(sc *cubicle.SnapCtx) ([]byte, error) {
	for _, s := range l.order {
		if !snapIdle(s) {
			return nil, fmt.Errorf("lwip: socket %d not idle (state %d)", s.fd, s.state)
		}
	}
	var b []byte
	u64 := func(v uint64) { b = binary.LittleEndian.AppendUint64(b, v) }
	u32 := func(v uint32) { b = binary.LittleEndian.AppendUint32(b, v) }
	u64(l.nextFD)
	u64(uint64(l.stage))
	u64(l.SegmentsTx)
	u64(l.SegmentsRx)
	u64(l.TxBackpressure)
	u64(l.Reaped)
	u32(uint32(len(l.order)))
	for _, s := range l.order {
		u64(s.fd)
		u32(uint32(s.state))
		u32(uint32(s.localPort))
		u32(uint32(s.remotePort))
		u64(uint64(s.rx.buf))
		u64(s.rx.cap)
		u64(uint64(s.tx.buf))
		u64(s.tx.cap)
		u32(s.sndNxt)
		u32(s.sndUna)
		u32(s.rcvNxt)
		u32(s.peerWnd)
		u32(uint32(s.backlog))
		var flags uint32
		if s.finRcvd {
			flags |= 1
		}
		u32(flags)
	}
	return b, nil
}

// Restore rebuilds the stack's socket table from a Snapshot blob. The
// listener and connection maps are reconstructed from the per-socket
// port state, so only the socket list travels in the image.
func (l *Module) Restore(sc *cubicle.SnapCtx, blob []byte) error {
	off := 0
	bad := false
	u64 := func() uint64 {
		if bad || len(blob)-off < 8 {
			bad = true
			return 0
		}
		v := binary.LittleEndian.Uint64(blob[off:])
		off += 8
		return v
	}
	u32 := func() uint32 {
		if bad || len(blob)-off < 4 {
			bad = true
			return 0
		}
		v := binary.LittleEndian.Uint32(blob[off:])
		off += 4
		return v
	}
	nextFD := u64()
	stage := vm.Addr(u64())
	segTx, segRx, backp, reaped := u64(), u64(), u64(), u64()
	count := u32()
	if bad || count > 1<<20 {
		return fmt.Errorf("lwip: corrupt snapshot blob")
	}
	socks := make(map[uint64]*sock, count)
	listeners := make(map[uint16]*sock)
	conns := make(map[connKey]*sock)
	var order []*sock
	for i := uint32(0); i < count; i++ {
		s := &sock{fd: u64(), state: int(u32()),
			localPort: uint16(u32()), remotePort: uint16(u32())}
		s.rx = ring{buf: vm.Addr(u64()), cap: u64()}
		s.tx = ring{buf: vm.Addr(u64()), cap: u64()}
		s.sndNxt, s.sndUna, s.rcvNxt, s.peerWnd = u32(), u32(), u32(), u32()
		s.backlog = int(u32())
		s.finRcvd = u32()&1 != 0
		if bad {
			return fmt.Errorf("lwip: truncated snapshot blob")
		}
		socks[s.fd] = s
		order = append(order, s)
		if s.state == stListen {
			listeners[s.localPort] = s
		}
		if s.remotePort != 0 {
			conns[connKey{local: s.localPort, remote: s.remotePort}] = s
		}
	}
	if off != len(blob) {
		return fmt.Errorf("lwip: trailing bytes in snapshot blob")
	}
	l.socks, l.listeners, l.conns, l.order = socks, listeners, conns, order
	l.nextFD = nextFD
	l.stage = stage
	l.SegmentsTx, l.SegmentsRx = segTx, segRx
	l.TxBackpressure, l.Reaped = backp, reaped
	return nil
}

// Component returns the LWIP component for the builder.
func (l *Module) Component() *cubicle.Component {
	return &cubicle.Component{
		Name:     Name,
		Kind:     cubicle.KindIsolated,
		Snapshot: l.Snapshot,
		Restore:  l.Restore,
		Exports: []cubicle.ExportDecl{
			{Name: "lwip_socket", Fn: func(e *cubicle.Env, a []uint64) []uint64 {
				l.ensureInit(e)
				e.Work(stackWork)
				return []uint64{l.newSock(e).fd, EOK}
			}},
			{Name: "lwip_bind", RegArgs: 2, Fn: func(e *cubicle.Env, a []uint64) []uint64 {
				cubicle.GuardArgs(e, "lwip_bind", a, 2)
				e.Work(100)
				s, errno := l.get(a[0])
				if errno != EOK {
					return []uint64{0, errno}
				}
				if _, taken := l.listeners[uint16(a[1])]; taken {
					return []uint64{0, EINVAL}
				}
				s.localPort = uint16(a[1])
				return []uint64{0, EOK}
			}},
			{Name: "lwip_listen", RegArgs: 2, Fn: func(e *cubicle.Env, a []uint64) []uint64 {
				cubicle.GuardArgs(e, "lwip_listen", a, 2)
				e.Work(100)
				s, errno := l.get(a[0])
				if errno != EOK {
					return []uint64{0, errno}
				}
				if s.localPort == 0 {
					return []uint64{0, EINVAL}
				}
				s.state = stListen
				s.backlog = int(a[1])
				if s.backlog <= 0 {
					s.backlog = 8
				}
				l.listeners[s.localPort] = s
				return []uint64{0, EOK}
			}},
			{Name: "lwip_accept", RegArgs: 1, Fn: func(e *cubicle.Env, a []uint64) []uint64 {
				cubicle.GuardArgs(e, "lwip_accept", a, 1)
				e.Work(150)
				s, errno := l.get(a[0])
				if errno != EOK {
					return []uint64{0, errno}
				}
				if s.state != stListen {
					return []uint64{0, EINVAL}
				}
				if len(s.acceptQ) == 0 {
					return []uint64{0, EAGAIN}
				}
				fd := s.acceptQ[0]
				s.acceptQ = s.acceptQ[1:]
				return []uint64{fd, EOK}
			}},
			{Name: "lwip_recv", RegArgs: 3, Fn: func(e *cubicle.Env, a []uint64) []uint64 {
				cubicle.GuardArgs(e, "lwip_recv", a, 3)
				e.Work(200)
				s, errno := l.get(a[0])
				if errno != EOK {
					return []uint64{0, errno}
				}
				if s.rx.len == 0 {
					if s.finRcvd {
						return []uint64{0, EOK} // EOF
					}
					return []uint64{0, EAGAIN}
				}
				n := s.rx.read(e, vm.Addr(a[1]), a[2])
				s.needAck = true // window update
				return []uint64{n, EOK}
			}},
			{Name: "lwip_send", RegArgs: 3, Fn: func(e *cubicle.Env, a []uint64) []uint64 {
				cubicle.GuardArgs(e, "lwip_send", a, 3)
				e.Work(200)
				s, errno := l.get(a[0])
				if errno != EOK {
					return []uint64{0, errno}
				}
				if s.state != stEstab && s.state != stCloseWait {
					return []uint64{0, EINVAL}
				}
				// The send buffer bounds unsent + unacknowledged bytes.
				used := s.tx.len + uint64(s.inflight())
				if used >= l.SendBufCap {
					return []uint64{0, EAGAIN}
				}
				n := a[2]
				if n > l.SendBufCap-used {
					n = l.SendBufCap - used
				}
				if n > s.tx.space() {
					n = s.tx.space()
				}
				if n == 0 {
					return []uint64{0, EAGAIN}
				}
				s.tx.write(e, vm.Addr(a[1]), n)
				return []uint64{n, EOK}
			}},
			{Name: "lwip_close", RegArgs: 1, Fn: func(e *cubicle.Env, a []uint64) []uint64 {
				cubicle.GuardArgs(e, "lwip_close", a, 1)
				e.Work(150)
				s, errno := l.get(a[0])
				if errno != EOK {
					return []uint64{0, errno}
				}
				if s.state == stListen {
					delete(l.listeners, s.localPort)
					s.state = stClosed
					return []uint64{0, EOK}
				}
				s.finQueued = true
				return []uint64{0, EOK}
			}},
			{Name: "lwip_poll", Fn: func(e *cubicle.Env, a []uint64) []uint64 {
				return []uint64{l.poll(e), EOK}
			}},
		},
	}
}

// Client is typed access to LWIP from another cubicle.
type Client struct {
	socket, bind, listen, accept cubicle.Handle
	recv, send, close_, poll     cubicle.Handle
}

// NewClient resolves LWIP for a caller cubicle.
func NewClient(m *cubicle.Monitor, caller cubicle.ID) *Client {
	return &Client{
		socket: m.MustResolve(caller, Name, "lwip_socket"),
		bind:   m.MustResolve(caller, Name, "lwip_bind"),
		listen: m.MustResolve(caller, Name, "lwip_listen"),
		accept: m.MustResolve(caller, Name, "lwip_accept"),
		recv:   m.MustResolve(caller, Name, "lwip_recv"),
		send:   m.MustResolve(caller, Name, "lwip_send"),
		close_: m.MustResolve(caller, Name, "lwip_close"),
		poll:   m.MustResolve(caller, Name, "lwip_poll"),
	}
}

// Socket creates a socket.
func (c *Client) Socket(e *cubicle.Env) uint64 { return c.socket.Call(e)[0] }

// Bind binds fd to a local port.
func (c *Client) Bind(e *cubicle.Env, fd uint64, port uint16) uint64 {
	return c.bind.Call(e, fd, uint64(port))[1]
}

// Listen marks fd as a listener.
func (c *Client) Listen(e *cubicle.Env, fd uint64, backlog int) uint64 {
	return c.listen.Call(e, fd, uint64(backlog))[1]
}

// Accept pops a pending connection; errno EAGAIN when none.
func (c *Client) Accept(e *cubicle.Env, fd uint64) (uint64, uint64) {
	r := c.accept.Call(e, fd)
	return r[0], r[1]
}

// Recv reads up to n bytes into buf.
func (c *Client) Recv(e *cubicle.Env, fd uint64, buf vm.Addr, n uint64) (uint64, uint64) {
	r := c.recv.Call(e, fd, uint64(buf), n)
	return r[0], r[1]
}

// Send queues up to n bytes from buf; returns bytes accepted.
func (c *Client) Send(e *cubicle.Env, fd uint64, buf vm.Addr, n uint64) (uint64, uint64) {
	r := c.send.Call(e, fd, uint64(buf), n)
	return r[0], r[1]
}

// Close closes fd (queues FIN for connections).
func (c *Client) Close(e *cubicle.Env, fd uint64) uint64 { return c.close_.Call(e, fd)[1] }

// Poll drives the stack; returns the activity count.
func (c *Client) Poll(e *cubicle.Env) uint64 { return c.poll.Call(e)[0] }
