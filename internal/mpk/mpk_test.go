package mpk

import (
	"testing"
	"testing/quick"

	"cubicleos/internal/vm"
)

func TestPKRUDefaults(t *testing.T) {
	for k := Key(0); k < NumKeys; k++ {
		if !AllAllowed.CanRead(k) || !AllAllowed.CanWrite(k) || !AllAllowed.CanExec(k) {
			t.Errorf("AllAllowed denies key %d", k)
		}
		if AllDenied.CanRead(k) || AllDenied.CanWrite(k) {
			t.Errorf("AllDenied grants key %d", k)
		}
		if AllDenied.CanExec(k) {
			t.Errorf("AllDenied allows exec on key %d (hardware modification violated)", k)
		}
	}
}

func TestAllowDeny(t *testing.T) {
	p := AllDenied.Allow(3)
	if !p.CanRead(3) || !p.CanWrite(3) {
		t.Error("Allow(3) did not grant rw")
	}
	for k := Key(0); k < NumKeys; k++ {
		if k != 3 && (p.CanRead(k) || p.CanWrite(k)) {
			t.Errorf("Allow(3) leaked access to key %d", k)
		}
	}
	p = p.Deny(3)
	for k := Key(0); k < NumKeys; k++ {
		if p.CanRead(k) || p.CanWrite(k) || p.CanExec(k) {
			t.Errorf("Deny(3) left access on key %d", k)
		}
	}
}

func TestAllowRead(t *testing.T) {
	p := AllDenied.AllowRead(7)
	if !p.CanRead(7) {
		t.Error("AllowRead denied read")
	}
	if p.CanWrite(7) {
		t.Error("AllowRead granted write")
	}
	if !p.CanExec(7) {
		t.Error("read-allowed key must allow exec under the paper's modification")
	}
}

// TestExecFollowsAccess checks the paper's proposed hardware modification
// (§5.5): whenever read and write access are disabled, execution is too.
func TestExecFollowsAccess(t *testing.T) {
	f := func(raw uint32, k uint8) bool {
		p := PKRU(raw)
		key := Key(k % NumKeys)
		if !p.CanRead(key) && !p.CanWrite(key) {
			return !p.CanExec(key)
		}
		return p.CanExec(key)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

// TestWriteImpliesReadEnabled mirrors the x86 encoding: WD without AD still
// permits reads; AD kills both.
func TestADWDEncoding(t *testing.T) {
	f := func(raw uint32, k uint8) bool {
		p := PKRU(raw)
		key := Key(k % NumKeys)
		if p.CanWrite(key) && !p.CanRead(key) {
			return false // write access without read access is impossible
		}
		return true
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestCheckRespectsPageTablePerms(t *testing.T) {
	p := AllAllowed
	// Even with all keys allowed, the page table still rules.
	if p.Check(AccessWrite, vm.PermRead, 0) {
		t.Error("write allowed on read-only page")
	}
	if p.Check(AccessExec, vm.PermRead|vm.PermWrite, 0) {
		t.Error("exec allowed on non-exec page")
	}
	if !p.Check(AccessExec, vm.PermExec, 0) {
		t.Error("exec denied on exec page with key access")
	}
	// Key denial overrides page-table grant.
	d := AllDenied
	if d.Check(AccessRead, vm.PermRead, 1) {
		t.Error("read allowed with key denied")
	}
	if d.Check(AccessExec, vm.PermExec, 1) {
		t.Error("exec allowed with key fully denied (hardware modification)")
	}
}

func TestPkeyMprotect(t *testing.T) {
	as := vm.NewAddrSpace()
	addr, err := as.Map(3, 0, vm.PageHeap, vm.PermRead, 2)
	if err != nil {
		t.Fatal(err)
	}
	if err := PkeyMprotect(as, addr, 2, 9); err != nil {
		t.Fatal(err)
	}
	if as.Page(addr).Key() != 9 || as.Page(addr.Add(vm.PageSize)).Key() != 9 {
		t.Error("retagged pages do not carry the new key")
	}
	if as.Page(addr.Add(2*vm.PageSize)).Key() != 2 {
		t.Error("retag spilled onto a page outside the range")
	}
	if err := PkeyMprotect(as, addr, 1, 16); err == nil {
		t.Error("retag with out-of-range key succeeded")
	}
	if err := PkeyMprotect(as, addr.Add(3*vm.PageSize), 1, 1); err == nil {
		t.Error("retag of unmapped page succeeded")
	}
}

func TestKeyValid(t *testing.T) {
	if !Key(0).Valid() || !Key(15).Valid() {
		t.Error("keys 0 and 15 should be valid")
	}
	if Key(16).Valid() {
		t.Error("key 16 should be invalid")
	}
}

func TestPKRUString(t *testing.T) {
	s := AllDenied.Allow(1).AllowRead(2).String()
	want := "pkru[-wr-------------]"
	if s != want {
		t.Errorf("String() = %q, want %q", s, want)
	}
}

func TestAccessKindString(t *testing.T) {
	if AccessRead.String() != "read" || AccessWrite.String() != "write" || AccessExec.String() != "exec" {
		t.Error("AccessKind.String mismatch")
	}
}
