// Package mpk simulates Intel Memory Protection Keys (MPK) as described in
// §2.2 of the paper: a 4-bit key on every virtual page and a per-thread
// pkru register holding a 2-bit access-disable/write-disable field for each
// of the 16 keys.
//
// The package also implements the paper's proposed trivial hardware
// modification (§5.5): whenever read and write access to a key are both
// disabled, execution from pages carrying that key is disabled too. This
// gives CubicleOS tag-wide execute permissions, which stock MPK lacks
// (§2.2 challenge iii).
//
// Costs: writing pkru (wrpkru) is a ~20-cycle user-level instruction;
// changing a page's key (pkey_mprotect) goes through the host kernel and
// costs >1,100 cycles. Both are charged by the callers in the cubicle
// runtime via the cycles cost table.
package mpk

import (
	"fmt"

	"cubicleos/internal/vm"
)

// NumKeys is the number of protection keys the hardware provides.
const NumKeys = 16

// Key is a 4-bit MPK protection key.
type Key uint8

// Valid reports whether k is one of the 16 hardware keys.
func (k Key) Valid() bool { return k < NumKeys }

// PKRU is the per-thread protection-key rights register. Each key has two
// bits: AD (access disable, bit 2k) and WD (write disable, bit 2k+1),
// exactly as on x86-64.
type PKRU uint32

// AllDenied is a PKRU value in which every key is access-disabled.
const AllDenied PKRU = 0x55555555

// AllAllowed is a PKRU value granting read and write on every key.
const AllAllowed PKRU = 0

// adBit and wdBit return the AD/WD masks for key k.
func adBit(k Key) PKRU { return 1 << (2 * uint(k)) }
func wdBit(k Key) PKRU { return 1 << (2*uint(k) + 1) }

// CanRead reports whether the register grants read access on key k.
func (p PKRU) CanRead(k Key) bool { return p&adBit(k) == 0 }

// CanWrite reports whether the register grants write access on key k.
func (p PKRU) CanWrite(k Key) bool { return p&adBit(k) == 0 && p&wdBit(k) == 0 }

// CanExec reports whether, under the paper's proposed hardware
// modification, code tagged with key k may execute: execution is allowed
// unless both read and write are disabled.
func (p PKRU) CanExec(k Key) bool { return p.CanRead(k) || p.CanWrite(k) }

// Allow returns a copy of the register with read and write enabled on k.
func (p PKRU) Allow(k Key) PKRU { return p &^ (adBit(k) | wdBit(k)) }

// AllowRead returns a copy with read enabled but write disabled on k.
func (p PKRU) AllowRead(k Key) PKRU { return (p &^ adBit(k)) | wdBit(k) }

// Deny returns a copy of the register with all access to k disabled.
func (p PKRU) Deny(k Key) PKRU { return p | adBit(k) | wdBit(k) }

func (p PKRU) String() string {
	s := ""
	for k := Key(0); k < NumKeys; k++ {
		c := "-"
		switch {
		case p.CanWrite(k):
			c = "w"
		case p.CanRead(k):
			c = "r"
		}
		s += c
	}
	return fmt.Sprintf("pkru[%s]", s)
}

// AccessKind distinguishes the kinds of memory access checked against the
// PKRU register.
type AccessKind uint8

// Access kinds.
const (
	AccessRead AccessKind = iota
	AccessWrite
	AccessExec
)

func (a AccessKind) String() string {
	switch a {
	case AccessRead:
		return "read"
	case AccessWrite:
		return "write"
	case AccessExec:
		return "exec"
	}
	return fmt.Sprintf("AccessKind(%d)", uint8(a))
}

// Check reports whether an access of the given kind is permitted on a page
// with the given page-table permissions and key under register p. It
// applies both the classic page-table check and the MPK key check,
// including the paper's exec-follows-access hardware modification.
func (p PKRU) Check(kind AccessKind, perm vm.Perm, key Key) bool {
	switch kind {
	case AccessRead:
		return perm.Has(vm.PermRead) && p.CanRead(key)
	case AccessWrite:
		return perm.Has(vm.PermWrite) && p.CanWrite(key)
	case AccessExec:
		return perm.Has(vm.PermExec) && p.CanExec(key)
	}
	return false
}

// PkeyMprotect retags npages pages starting at addr with the given key.
// This models the pkey_mprotect host system call: it is a privileged
// operation available only to the trusted monitor (untrusted code cannot
// issue system calls, enforced by the loader's binary scan).
func PkeyMprotect(as *vm.AddrSpace, addr vm.Addr, npages int, key Key) error {
	if !key.Valid() {
		return fmt.Errorf("mpk: invalid key %d", key)
	}
	pn := addr.PageNum()
	for i := uint64(0); i < uint64(npages); i++ {
		p := as.Page(vm.PageAddr(pn + i))
		if p == nil {
			return fmt.Errorf("mpk: pkey_mprotect on unmapped page %#x", (pn+i)<<vm.PageShift)
		}
		p.SetKey(uint8(key))
	}
	// No epoch bump: a retag changes permissions, not the translation, and
	// software TLBs re-check (PKRU, key, perm) against live metadata.
	return nil
}
