// Package dash renders the cubicle-top terminal dashboard: a live view of
// a running deployment built entirely from the observability layer — the
// monitor's architectural counters, the virtual-time metrics ring and the
// tracer's per-edge latency digests. Each frame is a pure function of
// monitor state plus the previous frame's totals (for rates), so frames
// are deterministic in virtual time and renderable from tests without a
// terminal.
package dash

import (
	"fmt"
	"io"
	"sort"
	"strings"

	"cubicleos/internal/cubicle"
	"cubicleos/internal/cycles"
)

// Options configures frame rendering.
type Options struct {
	// TopEdges bounds the per-edge latency table (0 = default 8).
	TopEdges int
	// SparkWidth bounds the call-rate sparkline (0 = default 32).
	SparkWidth int
	// ANSI prefixes each frame with a clear-screen + home sequence.
	ANSI bool
}

// frameTotals is the counter snapshot rates are computed against.
type frameTotals struct {
	cycle                          uint64
	calls, faults, sheds           uint64
	retries, shootdowns, contained uint64
	edgeCalls                      map[cubicle.Edge]uint64
}

// Dash renders frames of one monitor's state.
type Dash struct {
	m     *cubicle.Monitor
	w     io.Writer
	o     Options
	names map[cubicle.ID]string
	prev  frameTotals
	frame int
}

// New attaches a dashboard to a monitor. The first frame shows lifetime
// rates; subsequent frames show rates over the span since the previous
// frame.
func New(m *cubicle.Monitor, w io.Writer, o Options) *Dash {
	if o.TopEdges == 0 {
		o.TopEdges = 8
	}
	if o.SparkWidth == 0 {
		o.SparkWidth = 32
	}
	d := &Dash{m: m, w: w, o: o, names: map[cubicle.ID]string{}}
	for _, c := range m.Cubicles() {
		d.names[c.ID] = c.Name
	}
	return d
}

func (d *Dash) name(id cubicle.ID) string {
	if n, ok := d.names[id]; ok {
		return n
	}
	return fmt.Sprintf("#%d", id)
}

func (d *Dash) totalsNow() frameTotals {
	s := &d.m.Stats
	ft := frameTotals{
		cycle: d.m.Clock.Cycles(),
		calls: s.CallsTotal, faults: s.Faults, sheds: s.Sheds,
		retries: s.Retries, shootdowns: s.TLBShootdowns, contained: s.ContainedFaults,
		edgeCalls: make(map[cubicle.Edge]uint64, len(s.Calls)),
	}
	for e, n := range s.Calls {
		ft.edgeCalls[e] = n
	}
	return ft
}

// rate converts a counter delta over a cycle span to events per virtual
// second.
func rate(delta, span uint64) float64 {
	if span == 0 {
		return 0
	}
	return float64(delta) * float64(cycles.FrequencyHz) / float64(span)
}

var sparkRunes = []rune("▁▂▃▄▅▆▇█")

// sparkline renders values as a block-character strip scaled to the peak.
func sparkline(vals []float64, width int) (string, float64) {
	if len(vals) > width {
		vals = vals[len(vals)-width:]
	}
	var peak float64
	for _, v := range vals {
		if v > peak {
			peak = v
		}
	}
	var sb strings.Builder
	for _, v := range vals {
		i := 0
		if peak > 0 {
			i = int(v / peak * float64(len(sparkRunes)-1))
		}
		sb.WriteRune(sparkRunes[i])
	}
	return sb.String(), peak
}

// Frame renders one frame and advances the rate baseline.
func (d *Dash) Frame() {
	cur := d.totalsNow()
	prev := d.prev
	span := cur.cycle - prev.cycle
	d.frame++

	var sb strings.Builder
	if d.o.ANSI {
		sb.WriteString("\x1b[2J\x1b[H")
	}
	fmt.Fprintf(&sb, "cubicle-top — virtual %8.3f s   cores=%d   frame %d\n",
		float64(cur.cycle)/float64(cycles.FrequencyHz), d.m.Cores(), d.frame)
	fmt.Fprintf(&sb, "calls %d (%.0f/s)   faults %d (%.0f/s)   sheds %d (%.0f/s)   retries %d (%.0f/s)   shootdowns %d (%.0f/s)\n",
		cur.calls, rate(cur.calls-prev.calls, span),
		cur.faults, rate(cur.faults-prev.faults, span),
		cur.sheds, rate(cur.sheds-prev.sheds, span),
		cur.retries, rate(cur.retries-prev.retries, span),
		cur.shootdowns, rate(cur.shootdowns-prev.shootdowns, span))

	// Health ladder: one badge per cubicle, restart counts when non-zero.
	sb.WriteString("health ")
	for _, c := range d.m.Cubicles() {
		if c.ID == cubicle.MonitorID {
			continue
		}
		badge := strings.ToLower(c.Health().String())
		if r := c.Restarts(); r > 0 {
			badge = fmt.Sprintf("%s(r%d)", badge, r)
		}
		fmt.Fprintf(&sb, " %s=%s", c.Name, badge)
	}
	sb.WriteByte('\n')

	// Per-cubicle crossing rates: calls into each callee over the span.
	type cubRate struct {
		id    cubicle.ID
		calls uint64
	}
	in := map[cubicle.ID]uint64{}
	for e, n := range cur.edgeCalls {
		in[e.To] += n - prev.edgeCalls[e]
	}
	rows := make([]cubRate, 0, len(in))
	for id, n := range in {
		rows = append(rows, cubRate{id, n})
	}
	sort.Slice(rows, func(i, j int) bool {
		if rows[i].calls != rows[j].calls {
			return rows[i].calls > rows[j].calls
		}
		return rows[i].id < rows[j].id
	})
	fmt.Fprintf(&sb, "\n%-12s %10s %10s\n", "cubicle", "calls", "rate/s")
	for _, r := range rows {
		fmt.Fprintf(&sb, "%-12s %10d %10.0f\n", d.name(r.id), r.calls, rate(r.calls, span))
	}

	// Per-edge latency digests, when the tracer is attached.
	if trc := d.m.Tracer(); trc != nil {
		if sums := trc.EdgeSummaries(); len(sums) > 0 {
			if len(sums) > d.o.TopEdges {
				sums = sums[:d.o.TopEdges]
			}
			fmt.Fprintf(&sb, "\n%-24s %10s %10s %10s %10s\n", "edge", "calls", "p50", "p99", "max")
			for _, es := range sums {
				fmt.Fprintf(&sb, "%-24s %10d %10s %10s %10s\n",
					d.name(cubicle.ID(es.Edge.From))+"→"+d.name(cubicle.ID(es.Edge.To)),
					es.Hist.Count,
					cycles.Duration(es.Hist.P50).String(),
					cycles.Duration(es.Hist.P99).String(),
					cycles.Duration(es.Hist.Max).String())
			}
		}
	}

	// Call-rate history from the metrics ring, as a sparkline.
	if samples := d.m.MetricsSamples(); len(samples) > 0 {
		rates := make([]float64, len(samples))
		for i, s := range samples {
			rates[i] = s.CallRate
		}
		strip, peak := sparkline(rates, d.o.SparkWidth)
		fmt.Fprintf(&sb, "\ncall rate %s  peak %.0f/s over %d samples", strip, peak, len(samples))
		if last, ok := d.m.LastMetricsSample(); ok && last.CallP99 > 0 {
			fmt.Fprintf(&sb, "   xing p50 %s p99 %s",
				cycles.Duration(last.CallP50), cycles.Duration(last.CallP99))
		}
		sb.WriteByte('\n')
	}

	io.WriteString(d.w, sb.String())
	d.prev = cur
}
