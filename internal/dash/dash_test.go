package dash_test

import (
	"bytes"
	"strings"
	"testing"

	"cubicleos/internal/cubicle"
	"cubicleos/internal/dash"
	"cubicleos/internal/httpd"
	"cubicleos/internal/siege"
)

func bootDashTarget(t *testing.T) *siege.Target {
	t.Helper()
	pol := cubicle.DefaultRestartPolicy()
	pol.CrossingBudget = 0
	tgt, err := siege.NewTargetOpts(siege.Options{
		Mode:        cubicle.ModeFull,
		TraceEvents: 1 << 14, TraceSamplePeriod: 50_000,
		MetricsInterval: 2_000_000,
		Supervision:     &pol,
		Governance: &httpd.Governance{
			MaxConns: 16, RetryAfter: 1, Retry: cubicle.DefaultRetryPolicy(),
		},
		WireCap:    256,
		ReapClosed: true,
	})
	if err != nil {
		t.Fatal(err)
	}
	if err := tgt.PutFile("/index.html", make([]byte, 4096)); err != nil {
		t.Fatal(err)
	}
	return tgt
}

func liveOut(t *testing.T) (string, *siege.OpenLoopStats) {
	t.Helper()
	var buf bytes.Buffer
	st, err := dash.Live(bootDashTarget(t),
		siege.OpenLoopOptions{Path: "/index.html", Rate: 6000, Requests: 200},
		&buf, dash.LiveOptions{})
	if err != nil {
		t.Fatal(err)
	}
	return buf.String(), st
}

// TestLiveRendersRunState checks the dashboard shows every section of a
// governed overload run: header rates, the health ladder, per-cubicle
// crossing rates, edge latency digests and the metrics sparkline.
func TestLiveRendersRunState(t *testing.T) {
	out, st := liveOut(t)
	if st.OK == 0 {
		t.Fatalf("live run completed nothing: %+v", st)
	}
	if !strings.Contains(out, "cubicle-top — virtual") {
		t.Error("output missing the frame header")
	}
	if strings.Count(out, "cubicle-top — virtual") < 2 {
		t.Error("live run rendered fewer than two frames")
	}
	for _, want := range []string{
		"NGINX=healthy", "LWIP=healthy", // health ladder
		"NGINX→LWIP", // edge table
		"call rate ", // sparkline
		"sheds",      // governance rates in the header
	} {
		if !strings.Contains(out, want) {
			t.Errorf("output missing %q", want)
		}
	}
	hasSpark := false
	for _, r := range "▁▂▃▄▅▆▇█" {
		if strings.ContainsRune(out, r) {
			hasSpark = true
		}
	}
	if !hasSpark {
		t.Error("sparkline rendered no block characters")
	}
}

// TestLiveIsDeterministic pins the dashboard to virtual time: two
// identical runs on fresh targets render byte-identical output, because
// every frame fires on a virtual-cycle threshold, never on wall time.
func TestLiveIsDeterministic(t *testing.T) {
	a, _ := liveOut(t)
	b, _ := liveOut(t)
	if a != b {
		t.Error("two identical live runs rendered different output")
	}
}
