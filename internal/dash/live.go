package dash

import (
	"io"
	"time"

	"cubicleos/internal/siege"
)

// LiveOptions configures a live run.
type LiveOptions struct {
	// FrameCycles is the virtual-time quantum between frames (0 = one
	// frame per 2 ms of virtual time).
	FrameCycles uint64
	// Refresh is the wall-clock pause after each frame, so a human can
	// watch a run that would otherwise finish in milliseconds (0 = none;
	// tests use 0).
	Refresh time.Duration
	// StepsPerCheck bounds how many driver iterations run between clock
	// checks (0 = default 1: the clock can jump a whole idle gap in one
	// step, so coarser checks skip frames).
	StepsPerCheck int
	// Dash options pass through to the renderer.
	Dash Options
}

// Live drives an open-loop run against the target while rendering a
// dashboard frame every FrameCycles of virtual time — the cubicle-top
// loop. It returns the run's statistics; a final frame is rendered after
// the run drains so the last state is always visible.
func Live(tgt *siege.Target, lo siege.OpenLoopOptions, w io.Writer, o LiveOptions) (*siege.OpenLoopStats, error) {
	if o.FrameCycles == 0 {
		o.FrameCycles = 4_400_000 // 2 ms at 2.2 GHz
	}
	if o.StepsPerCheck == 0 {
		o.StepsPerCheck = 1
	}
	d := New(tgt.Sys.M, w, o.Dash)
	drv, err := tgt.StartOpenLoop(lo)
	if err != nil {
		return nil, err
	}
	clock := tgt.Sys.M.Clock
	next := clock.Cycles() + o.FrameCycles
	for drv.Step(o.StepsPerCheck) {
		if now := clock.Cycles(); now >= next {
			d.Frame()
			for next <= now {
				next += o.FrameCycles
			}
			if o.Refresh > 0 {
				time.Sleep(o.Refresh)
			}
		}
	}
	st := drv.Finish()
	d.Frame()
	return st, nil
}
