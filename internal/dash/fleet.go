// Fleet rendering: the cluster half of the dashboard. A fleet frame is
// the balancer's view of every backend — health ladder state, routing
// share, drain/re-admission history and restart kinds — plus the
// cluster-wide retry/hedge/failover gauges, rendered from a cluster
// run's report the same way Dash renders one monitor's counters.

package dash

import (
	"fmt"
	"io"

	"cubicleos/internal/cluster"
)

// FleetFrame renders the per-backend fleet table and balancer gauges of
// one cluster run.
func FleetFrame(st *cluster.Stats, w io.Writer) {
	fmt.Fprintf(w, "FLEET  %d backends  offered %.0f rps  goodput %.0f rps  p50 %s  p99 %s\n",
		st.Backends, st.OfferedRPS, st.GoodputRPS,
		st.P50.Round(10_000), st.P99.Round(10_000))
	fmt.Fprintf(w, "%-4s %-9s %7s %6s %5s %5s %5s %7s %8s %5s %5s\n",
		"idx", "health", "routed", "ok", "shed", "err", "drop", "drains", "readmits", "warm", "cold")
	for _, b := range st.PerBackend {
		fmt.Fprintf(w, "%-4d %-9s %7d %6d %5d %5d %5d %7d %8d %5d %5d\n",
			b.Index, b.Health, b.Routed, b.OK, b.Shed, b.Errors, b.Dropped,
			b.Drains, b.Readmits, b.Sys.WarmRestarts, b.Sys.ColdRestarts)
	}
	fmt.Fprintf(w, "balancer: retries %d  hedges %d (%d won)  failovers %d  drains %d  readmits %d  route-faults %d\n",
		st.Retries, st.Hedges, st.HedgeWins, st.Failovers,
		st.Drains, st.Readmits, st.RouteFaults)
}
