// Parallel open-loop driving: the offered load is sharded across N
// simulated cores, each shard a fully independent booted system (its own
// monitor, clock, server and wire — nothing shared, so per-shard
// behaviour is byte-identical to a single-core run at the shard's rate).
// Real goroutine workers step the shards concurrently under the sharded
// scheduler's quantum barriers, with a cycles.Machine computing global
// virtual time over the shard clocks. Virtual-time figures are therefore
// deterministic for a fixed configuration, while wall-clock throughput
// scales with the worker count — the simulator's analogue of running one
// NGINX deployment per core behind a load balancer.

package siege

import (
	"fmt"
	"sort"
	"time"

	"cubicleos/internal/cycles"
	"cubicleos/internal/uksched"
)

// ParallelQuantum is the virtual-cycle length of one scheduler quantum in
// the parallel driver: each shard steps until its clock passes the
// current GVT plus this, then yields to the barrier.
const ParallelQuantum = 2_000_000

// ParallelStats is the merged result of a sharded open-loop run.
type ParallelStats struct {
	// OpenLoopStats holds the machine-wide virtual-time figures: counters
	// and MaxConns/ArenaBytes are summed across shards, latency
	// percentiles are computed over the pooled per-request latencies, and
	// Elapsed/GoodputRPS use the longest shard span (the shards run
	// concurrently in virtual time).
	OpenLoopStats
	// Cores is the number of shards (= worker goroutines).
	Cores int
	// PerCore are the individual shard results.
	PerCore []*OpenLoopStats
	// GVT is global virtual time over the shard clocks at completion.
	GVT uint64
	// Quanta is how many barrier-delimited quanta the run took.
	Quanta uint64
	// WallSeconds is host wall-clock time spent driving the shards
	// (provisioning/boot excluded); WallRPS is completed 200s per host
	// second — the figure that shows wall-clock scaling.
	WallSeconds float64
	WallRPS     float64
}

// ParallelOpenLoop shards o across cores: shard c is booted by mk(c),
// receives Rate/cores of the offered load and an equal share of the
// arrivals (remainder spread over the lowest cores), and is stepped by
// its own worker goroutine in GVT quanta until every shard finishes.
func ParallelOpenLoop(cores int, mk func(core int) (*Target, error), o OpenLoopOptions) (*ParallelStats, error) {
	if cores < 1 {
		cores = 1
	}
	if o.Rate <= 0 || o.Requests <= 0 {
		return nil, fmt.Errorf("siege: open loop needs positive rate and request count")
	}

	targets := make([]*Target, cores)
	runs := make([]*openLoopRun, cores)
	clks := make([]*cycles.Clock, cores)
	base, rem := o.Requests/cores, o.Requests%cores
	for c := 0; c < cores; c++ {
		t, err := mk(c)
		if err != nil {
			return nil, fmt.Errorf("siege: parallel boot of shard %d: %w", c, err)
		}
		so := o
		so.Rate = o.Rate / float64(cores)
		so.Requests = base
		if c < rem {
			so.Requests++
		}
		if so.Requests == 0 {
			// More cores than requests: the shard idles. Keep a target so
			// the core count stays honest, but no run to step.
			targets[c], clks[c] = t, t.Sys.M.Clock
			continue
		}
		r, err := t.newOpenLoopRun(so)
		if err != nil {
			return nil, err
		}
		targets[c], runs[c], clks[c] = t, r, t.Sys.M.Clock
	}

	machine := cycles.MachineOver(clks...)
	smp := uksched.NewSMP(cores)
	smp.Machine = machine
	for c := 0; c < cores; c++ {
		if runs[c] == nil {
			continue
		}
		r := runs[c]
		clk := clks[c]
		smp.AddFunc(c, fmt.Sprintf("siege-shard-%d", c), func() uksched.Status {
			// One quantum: step until the shard's clock passes the bound
			// set at the last barrier. GVT is stable between barriers, so
			// every worker computes the same bound.
			bound := machine.GVT() + ParallelQuantum
			for clk.Cycles() < bound {
				if !r.step() {
					return uksched.Done
				}
			}
			return uksched.Yield
		})
	}

	wallStart := time.Now()
	if !smp.Run(2) {
		return nil, fmt.Errorf("siege: parallel shards stalled: %v", smp.Blocked())
	}
	wall := time.Since(wallStart)

	ps := &ParallelStats{Cores: cores, GVT: machine.Barrier(), Quanta: smp.Quanta}
	ps.OfferedRPS = o.Rate
	var lats []uint64
	var maxElapsed uint64
	for c := 0; c < cores; c++ {
		if runs[c] == nil {
			continue
		}
		st := runs[c].finish()
		ps.PerCore = append(ps.PerCore, st)
		ps.Arrivals += st.Arrivals
		ps.OK += st.OK
		ps.Shed += st.Shed
		ps.Errors += st.Errors
		ps.Dropped += st.Dropped
		ps.MaxConns += st.MaxConns
		ps.ArenaBytes += st.ArenaBytes
		if runs[c].elapsedCycles > maxElapsed {
			maxElapsed = runs[c].elapsedCycles
		}
		lats = append(lats, runs[c].lats...)
	}
	ps.Elapsed = cycles.Duration(maxElapsed)
	if maxElapsed > 0 {
		ps.GoodputRPS = float64(ps.OK) * float64(cycles.FrequencyHz) / float64(maxElapsed)
	}
	sort.Slice(lats, func(i, j int) bool { return lats[i] < lats[j] })
	ps.P50 = percentile(lats, 0.50)
	ps.P99 = percentile(lats, 0.99)
	ps.P999 = percentile(lats, 0.999)
	ps.WallSeconds = wall.Seconds()
	if ps.WallSeconds > 0 {
		ps.WallRPS = float64(ps.OK) / ps.WallSeconds
	}
	return ps, nil
}
