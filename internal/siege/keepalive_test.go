package siege

import (
	"bytes"
	"strings"
	"testing"

	"cubicleos/internal/cubicle"
	"cubicleos/internal/httpd"
)

// TestKeepAliveReusesConnection drives several requests over one
// connection and checks each response is framed and answered correctly.
func TestKeepAliveReusesConnection(t *testing.T) {
	tg := MustNewTarget(cubicle.ModeFull)
	body := bytes.Repeat([]byte("ka"), 2048)
	if err := tg.PutFile("/ka.html", body); err != nil {
		t.Fatal(err)
	}
	k := tg.OpenKA()
	for i := 0; i < 5; i++ {
		r, err := tg.FetchKA(k, "/ka.html")
		if err != nil {
			t.Fatalf("request %d: %v", i, err)
		}
		if r.Status != 200 || !bytes.Equal(r.Body, body) {
			t.Fatalf("request %d: status %d, body %d bytes", i, r.Status, len(r.Body))
		}
		if r.Close {
			t.Fatalf("request %d: server closed a keep-alive exchange early", i)
		}
	}
	if k.Served != 5 {
		t.Fatalf("served %d responses on one connection, want 5", k.Served)
	}
	if k.Conn.FinRcvd {
		t.Fatal("server closed the connection despite keep-alive")
	}
	// Missing files keep the connection too: errors are per-request.
	r, err := tg.FetchKA(k, "/nope.html")
	if err != nil {
		t.Fatal(err)
	}
	if r.Status != 404 || r.Close {
		t.Fatalf("missing file: status %d close %v, want 404 keep-alive", r.Status, r.Close)
	}
	// Connection: close retires it.
	k.RequestClose("/ka.html")
	var last *KAResponse
	for i := 0; i < 2_000_000 && last == nil; i++ {
		tg.stepH.Call(tg.Sys.Env)
		tg.Peer.Pump()
		last, err = k.Next()
		if err != nil {
			t.Fatal(err)
		}
	}
	if last == nil || last.Status != 200 || !last.Close {
		t.Fatalf("Connection: close answer = %+v, want 200 with close", last)
	}
	for i := 0; i < 2_000_000 && !k.Conn.FinRcvd; i++ {
		tg.stepH.Call(tg.Sys.Env)
		tg.Peer.Pump()
	}
	if !k.Conn.FinRcvd {
		t.Fatal("server did not close after Connection: close")
	}
}

// TestKeepAlivePipelining sends two requests back to back in one write;
// both responses must come back in order on the same connection, the
// second parsed straight from buffered bytes without another Recv.
func TestKeepAlivePipelining(t *testing.T) {
	tg := MustNewTarget(cubicle.ModeFull)
	if err := tg.PutFile("/a.html", []byte("alpha")); err != nil {
		t.Fatal(err)
	}
	if err := tg.PutFile("/b.html", []byte("bravo")); err != nil {
		t.Fatal(err)
	}
	k := tg.OpenKA()
	for i := 0; i < 2_000_000 && !k.Conn.Established; i++ {
		tg.stepH.Call(tg.Sys.Env)
		tg.Peer.Pump()
	}
	k.Request("/a.html")
	k.Request("/b.html")
	var got []*KAResponse
	for i := 0; i < 2_000_000 && len(got) < 2; i++ {
		tg.stepH.Call(tg.Sys.Env)
		tg.Peer.Pump()
		for {
			r, err := k.Next()
			if err != nil {
				t.Fatal(err)
			}
			if r == nil {
				break
			}
			got = append(got, r)
		}
	}
	if len(got) != 2 {
		t.Fatalf("got %d pipelined responses, want 2", len(got))
	}
	if string(got[0].Body) != "alpha" || string(got[1].Body) != "bravo" {
		t.Fatalf("pipelined bodies out of order: %q, %q", got[0].Body, got[1].Body)
	}
}

// TestKeepAliveRequestCap: the server forces Connection: close once a
// connection has served Governance.MaxConnRequests responses.
func TestKeepAliveRequestCap(t *testing.T) {
	tg, err := NewTargetOpts(Options{
		Mode:       cubicle.ModeFull,
		Governance: &httpd.Governance{MaxConnRequests: 3},
	})
	if err != nil {
		t.Fatal(err)
	}
	if err := tg.PutFile("/c.html", []byte("cap")); err != nil {
		t.Fatal(err)
	}
	k := tg.OpenKA()
	for i := 0; i < 3; i++ {
		r, err := tg.FetchKA(k, "/c.html")
		if err != nil {
			t.Fatalf("request %d: %v", i, err)
		}
		wantClose := i == 2
		if r.Status != 200 || r.Close != wantClose {
			t.Fatalf("request %d: status %d close %v, want 200 close=%v", i, r.Status, r.Close, wantClose)
		}
	}
	for i := 0; i < 2_000_000 && !k.Conn.FinRcvd; i++ {
		tg.stepH.Call(tg.Sys.Env)
		tg.Peer.Pump()
	}
	if !k.Conn.FinRcvd {
		t.Fatal("server did not close at the requests-per-conn cap")
	}
}

// TestHTTP10StaysByteIdentical: a plain HTTP/1.0 request must get the
// pre-keep-alive response bytes — no Connection header — and a close.
// The golden-figure determinism gates depend on this.
func TestHTTP10StaysByteIdentical(t *testing.T) {
	tg := MustNewTarget(cubicle.ModeFull)
	if err := tg.PutFile("/ten.html", []byte("ten")); err != nil {
		t.Fatal(err)
	}
	r, err := tg.Fetch("/ten.html")
	if err != nil {
		t.Fatal(err)
	}
	if r.Status != 200 {
		t.Fatalf("status %d", r.Status)
	}
	// Re-fetch raw to inspect the header bytes.
	conn := tg.Peer.Connect(80)
	sent := false
	for i := 0; i < 2_000_000 && !conn.FinRcvd; i++ {
		tg.stepH.Call(tg.Sys.Env)
		tg.Peer.Pump()
		if conn.Established && !sent {
			conn.Send([]byte("GET /ten.html HTTP/1.0\r\nHost: cubicle\r\n\r\n"))
			sent = true
		}
	}
	raw := string(conn.Received())
	want := "HTTP/1.0 200 OK\r\nServer: cubicle-nginx\r\nContent-Length: 3\r\n\r\nten"
	if raw != want {
		t.Fatalf("HTTP/1.0 response changed:\n got %q\nwant %q", raw, want)
	}
	// An HTTP/1.0 client may still opt in to keep-alive explicitly.
	conn2 := tg.Peer.Connect(80)
	sent = false
	var raw2 string
	for i := 0; i < 2_000_000; i++ {
		tg.stepH.Call(tg.Sys.Env)
		tg.Peer.Pump()
		if conn2.Established && !sent {
			conn2.Send([]byte("GET /ten.html HTTP/1.0\r\nConnection: keep-alive\r\n\r\n"))
			sent = true
		}
		raw2 = string(conn2.Received())
		if strings.Contains(raw2, "ten") {
			break
		}
	}
	if !strings.Contains(raw2, "Connection: keep-alive\r\n") {
		t.Fatalf("HTTP/1.0 keep-alive opt-in not honoured: %q", truncate(raw2, 120))
	}
	if conn2.FinRcvd {
		t.Fatal("server closed an HTTP/1.0 keep-alive connection")
	}
}

// TestKeepAliveChurnStaysBounded is the leak regression riding on the
// keep-alive path: thousands of requests over a churn of short keep-alive
// connections must not grow ALLOC's arena, because LwipReapClosed still
// reclaims each retired socket's ~1.1 MiB of buffers.
func TestKeepAliveChurnStaysBounded(t *testing.T) {
	tg, err := NewTargetOpts(Options{Mode: cubicle.ModeFull, ReapClosed: true})
	if err != nil {
		t.Fatal(err)
	}
	if err := tg.PutFile("/churn.html", []byte("churn")); err != nil {
		t.Fatal(err)
	}
	var after10 uint64
	for i := 0; i < 40; i++ {
		k := tg.OpenKA()
		for j := 0; j < 4; j++ {
			if _, err := tg.FetchKA(k, "/churn.html"); err != nil {
				t.Fatalf("conn %d request %d: %v", i, j, err)
			}
		}
		if _, err := tg.FetchKA(k, "/churn.html"); err != nil {
			t.Fatalf("conn %d close request: %v", i, err)
		}
		k.RequestClose("/churn.html")
		for s := 0; s < 2_000_000 && !k.Conn.FinRcvd; s++ {
			tg.stepH.Call(tg.Sys.Env)
			tg.Peer.Pump()
		}
		if !k.Conn.FinRcvd {
			t.Fatalf("conn %d never retired", i)
		}
		if i == 9 {
			after10 = tg.Sys.Alloc.TotalArenaBytes()
		}
	}
	after40 := tg.Sys.Alloc.TotalArenaBytes()
	if after40 > after10 {
		t.Fatalf("arena grew under keep-alive churn: %d B after 10 conns, %d B after 40", after10, after40)
	}
	if tg.Sys.Lwip.Reaped < 30 {
		t.Fatalf("only %d sockets reaped, want >= 30", tg.Sys.Lwip.Reaped)
	}
}
