package siege_test

import (
	"reflect"
	"testing"

	"cubicleos/internal/cubicle"
	"cubicleos/internal/faultinject"
	"cubicleos/internal/ramfs"
	"cubicleos/internal/siege"
)

// mkShard builds the shard boot function used by every parallel test:
// identical deployments with one 4 KiB file.
func mkShard(t *testing.T) func(core int) (*siege.Target, error) {
	t.Helper()
	return func(core int) (*siege.Target, error) {
		tgt, err := siege.NewTarget(cubicle.ModeFull)
		if err != nil {
			return nil, err
		}
		if err := tgt.PutFile("/index.html", make([]byte, 4096)); err != nil {
			return nil, err
		}
		return tgt, nil
	}
}

// virtualView strips the wall-clock fields from a parallel result so runs
// can be compared for virtual-time determinism.
func virtualView(ps *siege.ParallelStats) siege.ParallelStats {
	v := *ps
	v.WallSeconds, v.WallRPS = 0, 0
	return v
}

// TestParallelOpenLoopDeterministic is the siege-level determinism gate:
// the same configuration driven five times produces identical virtual-time
// results — counters, latency percentiles, per-shard stats, GVT and quantum
// count — regardless of how the host schedules the worker goroutines.
// Under -race it also gates the shard/barrier protocol.
func TestParallelOpenLoopDeterministic(t *testing.T) {
	opts := siege.OpenLoopOptions{Path: "/index.html", Rate: 2000, Requests: 48}
	run := func() siege.ParallelStats {
		ps, err := siege.ParallelOpenLoop(3, mkShard(t), opts)
		if err != nil {
			t.Fatal(err)
		}
		return virtualView(ps)
	}
	first := run()
	if first.OK == 0 {
		t.Fatalf("no completed requests: %+v", first.OpenLoopStats)
	}
	for i := 1; i < 5; i++ {
		if got := run(); !reflect.DeepEqual(got, first) {
			t.Fatalf("run %d diverged:\n got  %+v\n want %+v", i, got, first)
		}
	}
}

// TestParallelOpenLoopOneCoreMatchesSequential asserts the cores=1
// parallel driver is a pass-through: the merged figures equal a plain
// OpenLoop run of the same deployment, field for field. This is the
// siege half of the "cores=1 is byte-identical to the seed" guarantee.
func TestParallelOpenLoopOneCoreMatchesSequential(t *testing.T) {
	opts := siege.OpenLoopOptions{Path: "/index.html", Rate: 1500, Requests: 24}

	seq := bootOverloadTarget(t, siege.Options{Mode: cubicle.ModeFull})
	want, err := seq.OpenLoop(opts)
	if err != nil {
		t.Fatal(err)
	}

	ps, err := siege.ParallelOpenLoop(1, mkShard(t), opts)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(ps.OpenLoopStats, *want) {
		t.Fatalf("cores=1 merged stats differ from sequential:\n got  %+v\n want %+v", ps.OpenLoopStats, *want)
	}
	if len(ps.PerCore) != 1 || !reflect.DeepEqual(*ps.PerCore[0], *want) {
		t.Fatalf("per-core stats differ from sequential")
	}
}

// TestParallelOpenLoopShardsLoad asserts the request split: every arrival
// lands on some shard, the remainder goes to the low cores, and all
// shards complete their share.
func TestParallelOpenLoopShardsLoad(t *testing.T) {
	opts := siege.OpenLoopOptions{Path: "/index.html", Rate: 2000, Requests: 10}
	ps, err := siege.ParallelOpenLoop(4, mkShard(t), opts)
	if err != nil {
		t.Fatal(err)
	}
	if ps.Arrivals != 10 || ps.OK != 10 {
		t.Fatalf("arrivals=%d ok=%d, want 10/10 (stats %+v)", ps.Arrivals, ps.OK, ps.OpenLoopStats)
	}
	wantPerCore := []int{3, 3, 2, 2}
	if len(ps.PerCore) != 4 {
		t.Fatalf("got %d shard results, want 4", len(ps.PerCore))
	}
	for c, st := range ps.PerCore {
		if st.Arrivals != wantPerCore[c] {
			t.Fatalf("shard %d got %d arrivals, want %d", c, st.Arrivals, wantPerCore[c])
		}
	}
	if ps.Quanta == 0 || ps.GVT == 0 {
		t.Fatalf("expected barrier bookkeeping: quanta=%d gvt=%d", ps.Quanta, ps.GVT)
	}
}

// TestParallelOpenLoopUnderChaos is the chaos+SMP smoke: every shard runs
// under supervision with an armed deterministic fault injector aimed at
// RAMFS, and the sharded run must (a) terminate without a stall or an
// uncontained panic, (b) actually inject and contain faults, and (c)
// reproduce the same virtual-time figures and per-shard monitor stats on
// a second run — chaos schedules are part of the determinism contract.
func TestParallelOpenLoopUnderChaos(t *testing.T) {
	const cores = 2
	run := func() (siege.ParallelStats, []cubicle.Stats) {
		targets := make([]*siege.Target, cores)
		mk := func(core int) (*siege.Target, error) {
			policy := cubicle.DefaultRestartPolicy()
			policy.MaxRestarts = 1000
			policy.CrossingBudget = 200_000_000
			tgt, err := siege.NewTargetOpts(siege.Options{
				Mode:        cubicle.ModeFull,
				Supervision: &policy,
				Chaos: &faultinject.Config{
					Seed:           uint64(11 + core),
					Target:         ramfs.Name,
					ProtAtCrossing: 0.004,
					ProtAtWindowOp: 0.002,
					ProtAtRetag:    0.001,
				},
			})
			if err != nil {
				return nil, err
			}
			if err := tgt.PutFile("/index.html", make([]byte, 4096)); err != nil {
				return nil, err
			}
			tgt.Sys.Chaos.Arm()
			targets[core] = tgt
			return tgt, nil
		}
		opts := siege.OpenLoopOptions{Path: "/index.html", Rate: 2000, Requests: 60}
		ps, err := siege.ParallelOpenLoop(cores, mk, opts)
		if err != nil {
			t.Fatal(err)
		}
		stats := make([]cubicle.Stats, cores)
		for c, tgt := range targets {
			st := tgt.Sys.M.Stats
			st.Calls = nil // map iteration order irrelevant; edges checked via DeepEqual of counters
			stats[c] = st
		}
		return virtualView(ps), stats
	}
	first, stats0 := run()
	var injected, contained uint64
	for _, st := range stats0 {
		injected += st.InjectedFaults
		contained += st.ContainedFaults
	}
	if injected == 0 {
		t.Fatalf("chaos shards injected no faults; schedule or rate broken")
	}
	if contained == 0 {
		t.Fatalf("faults injected but none contained: %+v", stats0)
	}
	if first.OK == 0 {
		t.Fatalf("no request survived the chaos run: %+v", first.OpenLoopStats)
	}
	again, stats1 := run()
	if !reflect.DeepEqual(again, first) {
		t.Fatalf("chaos SMP run not reproducible:\n got  %+v\n want %+v", again, first)
	}
	if !reflect.DeepEqual(stats1, stats0) {
		t.Fatalf("per-shard chaos stats diverged:\n got  %+v\n want %+v", stats1, stats0)
	}
}
