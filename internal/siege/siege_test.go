package siege_test

import (
	"testing"

	"cubicleos/internal/cubicle"
	"cubicleos/internal/siege"
)

func TestFetchAccountsFloor(t *testing.T) {
	tgt := siege.MustNewTarget(cubicle.ModeUnikraft)
	if err := tgt.PutFile("/x", make([]byte, 512)); err != nil {
		t.Fatal(err)
	}
	res, err := tgt.Fetch("/x")
	if err != nil {
		t.Fatal(err)
	}
	// Latency = system cycles + the fixed client/network floor at 2.2 GHz.
	floorMs := float64(tgt.RequestFloor) / 2.2e6
	if got := float64(res.Latency.Microseconds()) / 1000; got < floorMs {
		t.Errorf("latency %.2f ms below the %.2f ms floor", got, floorMs)
	}
}

func TestFetchMissingIs404(t *testing.T) {
	tgt := siege.MustNewTarget(cubicle.ModeFull)
	if err := tgt.PutFile("/present", []byte("y")); err != nil {
		t.Fatal(err)
	}
	res, err := tgt.Fetch("/absent")
	if err != nil {
		t.Fatal(err)
	}
	if res.Status != 404 {
		t.Fatalf("status %d", res.Status)
	}
}

func TestEdgesReporting(t *testing.T) {
	tgt := siege.MustNewTarget(cubicle.ModeFull)
	if err := tgt.PutFile("/e", make([]byte, 1024)); err != nil {
		t.Fatal(err)
	}
	if _, err := tgt.Fetch("/e"); err != nil {
		t.Fatal(err)
	}
	edges := tgt.Edges()
	if len(edges) == 0 {
		t.Fatal("no call edges recorded")
	}
	for i := 1; i < len(edges); i++ {
		if edges[i].Count > edges[i-1].Count {
			t.Fatal("edges not sorted by count")
		}
	}
}

func TestFetchConcurrentSingle(t *testing.T) {
	tgt := siege.MustNewTarget(cubicle.ModeFull)
	if err := tgt.PutFile("/c", make([]byte, 2048)); err != nil {
		t.Fatal(err)
	}
	rs, err := tgt.FetchConcurrent([]string{"/c"})
	if err != nil {
		t.Fatal(err)
	}
	if len(rs) != 1 || rs[0].Status != 200 || len(rs[0].Body) != 2048 {
		t.Fatalf("concurrent single: %+v", rs[0])
	}
}
