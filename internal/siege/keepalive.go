package siege

import (
	"bytes"
	"fmt"
	"strconv"
	"strings"

	"cubicleos/internal/lwip"
)

// KAConn is a persistent (keep-alive) HTTP client connection. Unlike
// Fetch's HTTP/1.0 one-shot — where the server's close delimits the
// response — responses here are framed by Content-Length, so many
// requests ride one TCP connection, sequentially or pipelined. The
// cluster balancer reuses these connections per backend; keeping them
// warm is what makes hedged retries affordable.
type KAConn struct {
	Conn *lwip.PeerConn
	off  int // receive-buffer bytes consumed by already-parsed responses
	// Served counts responses parsed off this connection.
	Served int
	// SawClose latches once a response announced Connection: close (or
	// was HTTP/1.0 without keep-alive); no further requests should be
	// sent on the connection.
	SawClose bool
}

// OpenKA dials a keep-alive client connection to the server port. The
// TCP handshake completes asynchronously: drive the system and Pump the
// peer until Conn.Established before the first Request.
func (t *Target) OpenKA() *KAConn {
	return &KAConn{Conn: t.Peer.Connect(80)}
}

// Request sends GET path as HTTP/1.1 (keep-alive by default).
func (k *KAConn) Request(path string) {
	k.Conn.Send([]byte(fmt.Sprintf("GET %s HTTP/1.1\r\nHost: cubicle\r\nUser-Agent: siege-sim\r\n\r\n", path)))
}

// RequestClose sends GET path as HTTP/1.1 with Connection: close — the
// polite way to retire the connection after this response.
func (k *KAConn) RequestClose(path string) {
	k.Conn.Send([]byte(fmt.Sprintf("GET %s HTTP/1.1\r\nHost: cubicle\r\nConnection: close\r\n\r\n", path)))
}

// KAResponse is one response parsed off a keep-alive connection.
type KAResponse struct {
	Status int
	Body   []byte
	// Close reports that this response retires the connection.
	Close bool
}

// Next parses the next complete response out of the connection's receive
// buffer. It returns (nil, nil) when more bytes are needed — drive the
// system and Pump, then ask again.
func (k *KAConn) Next() (*KAResponse, error) {
	buf := k.Conn.Received()[k.off:]
	hdrEnd := bytes.Index(buf, []byte("\r\n\r\n"))
	if hdrEnd < 0 {
		return nil, nil
	}
	head := string(buf[:hdrEnd])
	lines := strings.Split(head, "\r\n")
	fields := strings.Fields(lines[0])
	if len(fields) < 2 {
		return nil, fmt.Errorf("siege: malformed status line %q", truncate(lines[0], 80))
	}
	status, err := strconv.Atoi(fields[1])
	if err != nil {
		return nil, fmt.Errorf("siege: bad status %q", fields[1])
	}
	clen, closing := -1, !strings.HasPrefix(fields[0], "HTTP/1.1")
	for _, l := range lines[1:] {
		key, val, ok := strings.Cut(l, ":")
		if !ok {
			continue
		}
		val = strings.TrimSpace(val)
		switch {
		case strings.EqualFold(key, "Content-Length"):
			if clen, err = strconv.Atoi(val); err != nil {
				return nil, fmt.Errorf("siege: bad Content-Length %q", val)
			}
		case strings.EqualFold(key, "Connection"):
			closing = !strings.EqualFold(val, "keep-alive")
		}
	}
	if clen < 0 {
		return nil, fmt.Errorf("siege: response without Content-Length: %q", truncate(head, 120))
	}
	total := hdrEnd + 4 + clen
	if len(buf) < total {
		return nil, nil
	}
	body := make([]byte, clen)
	copy(body, buf[hdrEnd+4:total])
	k.off += total
	k.Served++
	if closing {
		k.SawClose = true
	}
	return &KAResponse{Status: status, Body: body, Close: closing}, nil
}

// FetchKA issues GET path over the keep-alive connection and drives the
// system until the response completes. The first call on a fresh
// connection also waits out the TCP handshake.
func (t *Target) FetchKA(k *KAConn, path string) (*KAResponse, error) {
	sent := false
	for i := 0; i < 5_000_000; i++ {
		t.stepH.Call(t.Sys.Env)
		t.Peer.Pump()
		if k.Conn.Established && !sent {
			k.Request(path)
			sent = true
		}
		if sent {
			r, err := k.Next()
			if err != nil || r != nil {
				return r, err
			}
		}
		if k.Conn.FinRcvd {
			break
		}
	}
	// A final response may have raced the server's FIN onto the wire.
	if r, err := k.Next(); err != nil || r != nil {
		return r, err
	}
	return nil, fmt.Errorf("siege: keep-alive request for %s did not complete", path)
}
