package siege

import (
	"bytes"
	"errors"
	"reflect"
	"testing"

	"cubicleos/internal/cubicle"
	"cubicleos/internal/faultinject"
	"cubicleos/internal/ramfs"
	"cubicleos/internal/trace"
)

// chaosRamfs is the fault-injection schedule shared by the recovery
// tests: deterministic faults aimed at the RAMFS cubicle.
func chaosRamfs(seed uint64) *faultinject.Config {
	return &faultinject.Config{
		Seed:             seed,
		Target:           ramfs.Name,
		ProtAtCrossing:   0.010,
		CFIAtCrossing:    0.003,
		BudgetAtCrossing: 0.002,
		LeakAtCrossing:   0.005,
		ProtAtWindowOp:   0.003,
		ProtAtRetag:      0.002,
	}
}

// pattern returns n distinctive bytes so byte-identity after a warm
// restart is a real check, not an all-zero coincidence.
func pattern(n int) []byte {
	b := make([]byte, n)
	for i := range b {
		b[i] = byte(i*31 + 7)
	}
	return b
}

// TestWarmRestartRestoresRamfs is the headline robustness property: with
// checkpoints armed, a RAMFS restart restores the file system from the
// last checkpoint — the provisioned file is served byte-identically after
// recovery with NO operator re-provisioning, where a cold restart would
// 404 until PutFile ran again.
func TestWarmRestartRestoresRamfs(t *testing.T) {
	policy := cubicle.DefaultRestartPolicy()
	policy.MaxRestarts = 1000
	policy.CrossingBudget = 200_000_000
	tgt, err := NewTargetOpts(Options{
		Mode:               cubicle.ModeFull,
		TraceEvents:        1 << 15,
		Supervision:        &policy,
		CheckpointInterval: 300_000,
		Chaos:              chaosRamfs(7),
	})
	if err != nil {
		t.Fatal(err)
	}
	want := pattern(16 << 10)
	if err := tgt.PutFile("/f.bin", want); err != nil {
		t.Fatal(err)
	}
	m := tgt.Sys.M
	ramfsCub := tgt.Sys.Cubs[ramfs.Name]

	// Run unarmed until RAMFS has a checkpoint covering the file.
	for i := 0; i < 10; i++ {
		if _, ok := m.LastCheckpoint(ramfsCub.ID); ok {
			break
		}
		if _, err := tgt.Fetch("/f.bin"); err != nil {
			t.Fatal(err)
		}
	}
	if _, ok := m.LastCheckpoint(ramfsCub.ID); !ok {
		t.Fatal("no RAMFS checkpoint after warm-up traffic")
	}

	// Chaos until the supervisor warm-restarts RAMFS at least once. No
	// re-provisioning happens anywhere past this point.
	tgt.Sys.Chaos.Arm()
	for i := 0; i < 200 && m.Stats.WarmRestarts == 0; i++ {
		_, _ = tgt.Fetch("/f.bin")
	}
	tgt.Sys.Chaos.Disarm()
	if m.Stats.WarmRestarts == 0 {
		t.Fatalf("no warm restart over the chaos run: %+v", m.Stats)
	}

	// Recovery without operator action: wait out any remaining backoff and
	// the restored file system must serve the original bytes.
	var res *Result
	for i := 0; i < 50; i++ {
		res, err = tgt.Fetch("/f.bin")
		if err == nil && res.Status == 200 {
			break
		}
		m.Clock.Charge(policy.BackoffMax)
	}
	if err != nil {
		t.Fatalf("post-recovery fetch: %v", err)
	}
	if res.Status != 200 {
		t.Fatalf("post-recovery status = %d, want 200 with no re-provisioning", res.Status)
	}
	if !bytes.Equal(res.Body, want) {
		t.Fatalf("restored file diverges: got %d bytes, want %d byte-identical", len(res.Body), len(want))
	}
	if h := ramfsCub.Health(); h != cubicle.Healthy {
		t.Errorf("RAMFS health after recovery = %v, want Healthy", h)
	}

	// Trace/stats equality must hold across checkpoint and warm-restart
	// events like any other monitor activity.
	derived := cubicle.StatsFromTrace(m.Tracer())
	if !reflect.DeepEqual(derived, m.Stats) {
		t.Errorf("trace-derived stats diverge\n derived: %+v\n  legacy: %+v", derived, m.Stats)
	}
	if m.Stats.Restarts != m.Stats.WarmRestarts+m.Stats.ColdRestarts {
		t.Errorf("Restarts=%d != Warm %d + Cold %d",
			m.Stats.Restarts, m.Stats.WarmRestarts, m.Stats.ColdRestarts)
	}
}

// recoveryRun drives one chaos siege and reports the availability
// metrics the warm-vs-cold comparison is about.
type recoveryRun struct {
	stats    cubicle.Stats
	failed   int    // responses that were not 200 (shed, degraded, truncated)
	mttr     uint64 // virtual cycles spent in degraded spans (non-200 until the next 200)
	requests int
}

func driveRecovery(t *testing.T, checkpointInterval uint64) recoveryRun {
	t.Helper()
	policy := cubicle.DefaultRestartPolicy()
	policy.MaxRestarts = 1000
	policy.CrossingBudget = 200_000_000
	tgt, err := NewTargetOpts(Options{
		Mode:               cubicle.ModeFull,
		Supervision:        &policy,
		CheckpointInterval: checkpointInterval,
		Chaos:              chaosRamfs(7),
	})
	if err != nil {
		t.Fatal(err)
	}
	data := pattern(16 << 10)
	if err := tgt.PutFile("/f.bin", data); err != nil {
		t.Fatal(err)
	}
	m := tgt.Sys.M
	tgt.Sys.Chaos.Arm()
	out := recoveryRun{requests: 60}
	degradedSince := uint64(0)
	for i := 0; i < out.requests; i++ {
		before := m.Clock.Cycles()
		res, err := tgt.Fetch("/f.bin")
		ok := err == nil && res.Status == 200
		if ok {
			if degradedSince != 0 {
				out.mttr += m.Clock.Cycles() - degradedSince
				degradedSince = 0
			}
		} else {
			out.failed++
			if degradedSince == 0 {
				degradedSince = before
			}
			// Operator recovery action for the cold path: a 404 after a
			// restart means the file system came back empty. The warm path
			// never hits this; the cold path pays it on the virtual clock.
			if err == nil && res.Status == 404 {
				_ = tgt.PutFile("/f.bin", data)
			}
		}
	}
	if degradedSince != 0 {
		out.mttr += m.Clock.Cycles() - degradedSince
	}
	tgt.Sys.Chaos.Disarm()
	out.stats = m.Stats
	return out
}

// TestWarmVsColdSiege runs the same chaos schedule (same seed) with and
// without checkpoints: the warm run must restart warm, shed strictly
// fewer requests, and spend strictly fewer virtual cycles degraded.
func TestWarmVsColdSiege(t *testing.T) {
	warm := driveRecovery(t, 300_000)
	cold := driveRecovery(t, 0)

	if warm.stats.WarmRestarts == 0 {
		t.Fatalf("checkpointed run had no warm restarts: %+v", warm.stats)
	}
	if warm.stats.ColdRestarts != 0 {
		t.Errorf("checkpointed run fell back cold %d times", warm.stats.ColdRestarts)
	}
	if cold.stats.WarmRestarts != 0 || cold.stats.Checkpoints != 0 {
		t.Fatalf("uncheckpointed run warm-restarted: %+v", cold.stats)
	}
	if cold.stats.Restarts == 0 {
		t.Fatalf("uncheckpointed run never restarted; the comparison is vacuous: %+v", cold.stats)
	}
	if warm.failed >= cold.failed {
		t.Errorf("warm run shed %d of %d requests, cold shed %d — want strictly fewer warm",
			warm.failed, warm.requests, cold.failed)
	}
	if warm.mttr >= cold.mttr {
		t.Errorf("warm run spent %d virtual cycles degraded, cold %d — want strictly lower warm",
			warm.mttr, cold.mttr)
	}
	t.Logf("warm: %d/%d failed, %d cycles degraded, %d warm restarts, %d checkpoints",
		warm.failed, warm.requests, warm.mttr, warm.stats.WarmRestarts, warm.stats.Checkpoints)
	t.Logf("cold: %d/%d failed, %d cycles degraded, %d cold restarts",
		cold.failed, cold.requests, cold.mttr, cold.stats.ColdRestarts)
}

// TestRestartBudgetExhaustionUnderLoad: when RAMFS exhausts its restart
// budget and dies under sustained load, the server keeps answering — 503s
// for requests needing the dead file system — and the monitor never
// panics out of the siege loop.
func TestRestartBudgetExhaustionUnderLoad(t *testing.T) {
	policy := cubicle.DefaultRestartPolicy()
	policy.MaxRestarts = 2
	policy.RestartWindow = 1 << 62 // strikes never age out: death is certain
	policy.CrossingBudget = 200_000_000
	tgt, err := NewTargetOpts(Options{
		Mode:               cubicle.ModeFull,
		Supervision:        &policy,
		CheckpointInterval: 300_000,
		Chaos: &faultinject.Config{
			Seed:           11,
			Target:         ramfs.Name,
			ProtAtCrossing: 0.15, // hammer RAMFS so the budget drains fast
			LeakAtCrossing: 0.05,
		},
	})
	if err != nil {
		t.Fatal(err)
	}
	if err := tgt.PutFile("/f.bin", pattern(8<<10)); err != nil {
		t.Fatal(err)
	}
	m := tgt.Sys.M
	ramfsCub := tgt.Sys.Cubs[ramfs.Name]

	tgt.Sys.Chaos.Arm()
	statuses := map[int]int{}
	after503 := 0
	for i := 0; i < 80; i++ {
		if ramfsCub.Health() == cubicle.Dead {
			// Keep serving against a dead dependency: these must all come
			// back as clean 503s, never a crash.
			m.Clock.Charge(policy.BackoffMax)
		}
		res, err := tgt.Fetch("/f.bin")
		if err != nil {
			continue // truncated response: contained, not a crash
		}
		statuses[res.Status]++
		if ramfsCub.Health() == cubicle.Dead && res.Status == 503 {
			after503++
		}
	}
	tgt.Sys.Chaos.Disarm()

	if ramfsCub.Health() != cubicle.Dead {
		t.Fatalf("RAMFS health = %v after %d restarts, want Dead (budget %d)",
			ramfsCub.Health(), ramfsCub.Restarts(), policy.MaxRestarts)
	}
	if m.Supervisor().Deaths() != 1 {
		t.Errorf("Deaths() = %d, want 1", m.Supervisor().Deaths())
	}
	if after503 == 0 {
		t.Errorf("no 503 served after RAMFS died: statuses %v", statuses)
	}
	if m.Stats.Restarts != uint64(policy.MaxRestarts) {
		t.Errorf("Restarts = %d, want exactly the budget %d", m.Stats.Restarts, policy.MaxRestarts)
	}
	if m.Stats.Restarts != m.Stats.WarmRestarts+m.Stats.ColdRestarts {
		t.Errorf("Restarts=%d != Warm %d + Cold %d",
			m.Stats.Restarts, m.Stats.WarmRestarts, m.Stats.ColdRestarts)
	}
}

// replayEvents drives the chaos+checkpoint workload and returns the
// shard-merged trace events with Cycle <= stop (stop=0: the full run).
func replayEvents(t *testing.T, cores int, stop uint64) []trace.Event {
	t.Helper()
	policy := cubicle.DefaultRestartPolicy()
	policy.MaxRestarts = 1000
	policy.CrossingBudget = 200_000_000
	tgt, err := NewTargetOpts(Options{
		Mode:               cubicle.ModeFull,
		TraceEvents:        1 << 16,
		Supervision:        &policy,
		CheckpointInterval: 300_000,
		Chaos:              chaosRamfs(7),
		SMPCores:           cores,
	})
	if err != nil {
		t.Fatal(err)
	}
	if err := tgt.PutFile("/f.bin", pattern(8<<10)); err != nil {
		t.Fatal(err)
	}
	tgt.Sys.Chaos.Arm()
	for i := 0; i < 15; i++ {
		var res *Result
		var err error
		if stop != 0 {
			res, err = tgt.FetchUntil("/f.bin", stop)
			if errors.Is(err, ErrHalted) {
				break
			}
		} else {
			res, err = tgt.Fetch("/f.bin")
		}
		if err == nil && res.Status == 404 {
			_ = tgt.PutFile("/f.bin", pattern(8<<10))
		}
	}
	tgt.Sys.Chaos.Disarm()
	trc := tgt.Sys.M.Tracer()
	if d := trc.Dropped(); d != 0 {
		t.Fatalf("trace ring dropped %d events; prefix comparison unsound", d)
	}
	events := trc.Events()
	cutoff := stop
	if cutoff == 0 {
		cutoff = tgt.Sys.M.Clock.Cycles()
	}
	for i, ev := range events {
		if ev.Cycle > cutoff {
			return events[:i]
		}
	}
	return events
}

// TestReplayDeterminism: re-executing a recorded run with the same seed
// and halting the virtual clock mid-flight yields a bit-identical event
// prefix — at one core and at four.
func TestReplayDeterminism(t *testing.T) {
	for _, cores := range []int{1, 4} {
		full := replayEvents(t, cores, 0)
		if len(full) == 0 {
			t.Fatalf("cores=%d: recorded run produced no events", cores)
		}
		// Halt roughly mid-run at an exact cycle from the recorded stream.
		until := full[len(full)/2].Cycle
		replayed := replayEvents(t, cores, until)
		want := full
		for i, ev := range want {
			if ev.Cycle > until {
				want = want[:i]
				break
			}
		}
		if len(replayed) != len(want) {
			t.Fatalf("cores=%d: %d events with cycle <= %d recorded, %d replayed",
				cores, len(want), until, len(replayed))
		}
		for i := range want {
			if want[i] != replayed[i] {
				t.Fatalf("cores=%d: replay diverged at event %d:\n  recorded: %+v\n  replayed: %+v",
					cores, i, want[i], replayed[i])
			}
		}
		t.Logf("cores=%d: %d events bit-identical up to cycle %d (full run: %d events)",
			cores, len(replayed), until, len(full))
	}
}
