package siege

import (
	"reflect"
	"testing"

	"cubicleos/internal/cubicle"
	"cubicleos/internal/faultinject"
	"cubicleos/internal/ramfs"
)

// TestSiegeUnderChaos is the robustness acceptance test: a full NGINX
// deployment under supervision, with deterministic fault injection aimed at
// the RAMFS cubicle at a >1% rate per crossing, serving a siege workload.
// Every injected fault must be contained at a crossing (an uncontained
// panic fails the test immediately), the server must keep answering —
// degraded (503 or truncated) while its file system is down, 200 again
// after the supervisor restarts it — and the trace/stats invariants of the
// observability layer must hold over the whole chaotic run.
func TestSiegeUnderChaos(t *testing.T) {
	policy := cubicle.DefaultRestartPolicy()
	policy.MaxRestarts = 1000 // death is exercised in the supervisor tests
	policy.CrossingBudget = 200_000_000
	tgt, err := NewTargetOpts(Options{
		Mode:              cubicle.ModeFull,
		TraceEvents:       1 << 14,
		TraceSamplePeriod: 50_000,
		Supervision:       &policy,
		Chaos: &faultinject.Config{
			Seed:             7,
			Target:           ramfs.Name,
			ProtAtCrossing:   0.010,
			CFIAtCrossing:    0.003,
			BudgetAtCrossing: 0.002,
			LeakAtCrossing:   0.005,
			ProtAtWindowOp:   0.003,
			ProtAtRetag:      0.002,
		},
	})
	if err != nil {
		t.Fatal(err)
	}
	if err := tgt.PutFile("/f.bin", make([]byte, 16<<10)); err != nil {
		t.Fatal(err)
	}
	m := tgt.Sys.M
	ramfsCub := tgt.Sys.Cubs[ramfs.Name]

	tgt.Sys.Chaos.Arm()
	statuses := map[int]int{}
	truncated := 0
	for i := 0; i < 40; i++ {
		res, err := tgt.Fetch("/f.bin")
		if err != nil {
			// A connection the server had to abort mid-response (fault after
			// bytes hit the wire): HTTP/1.0 signals that by closing early.
			truncated++
			continue
		}
		statuses[res.Status]++
		if res.Status == 404 {
			// The restarted RAMFS incarnation boots empty; re-provisioning is
			// the operator's recovery action. It may itself be refused while
			// RAMFS is still in quarantine backoff — tolerate and retry later.
			_ = tgt.PutFile("/f.bin", make([]byte, 16<<10))
		}
	}
	tgt.Sys.Chaos.Disarm()

	st := m.Stats
	if st.InjectedFaults == 0 {
		t.Fatal("chaos run injected no faults; the schedule or rate is broken")
	}
	if st.ContainedFaults == 0 || st.Quarantines == 0 {
		t.Fatalf("faults were injected but not contained: %+v", st)
	}
	if st.Restarts == 0 {
		t.Fatalf("quarantined cubicle was never restarted: %+v", st)
	}
	if tgt.Srv.Errors503 == 0 {
		t.Error("no connection was degraded by the server despite contained faults")
	}
	if statuses[503] == 0 {
		t.Errorf("no 503 reached the client while the file system was down: %v (truncated %d)",
			statuses, truncated)
	}
	if statuses[200] == 0 {
		t.Errorf("no request succeeded across the whole chaos run: %v", statuses)
	}

	// Recovery: with injection off, re-provision (waiting out any remaining
	// quarantine backoff on the virtual clock) and the server must serve 200.
	provisioned := false
	for i := 0; i < 50; i++ {
		if err := tgt.PutFile("/f.bin", make([]byte, 16<<10)); err == nil {
			provisioned = true
			break
		}
		m.Clock.Charge(policy.BackoffMax)
	}
	if !provisioned {
		t.Fatalf("could not re-provision after chaos; RAMFS health = %v, last fault: %v",
			ramfsCub.Health(), ramfsCub.LastFault())
	}
	res, err := tgt.Fetch("/f.bin")
	if err != nil {
		t.Fatalf("post-recovery fetch: %v", err)
	}
	if res.Status != 200 {
		t.Fatalf("post-recovery status = %d, want 200", res.Status)
	}
	if len(res.Body) != 16<<10 {
		t.Errorf("post-recovery body = %d bytes, want %d", len(res.Body), 16<<10)
	}
	if h := ramfsCub.Health(); h != cubicle.Healthy {
		t.Errorf("RAMFS health after recovery = %v, want Healthy", h)
	}
	if ramfsCub.Restarts() == 0 {
		t.Error("RAMFS records no restarts after a chaos run that recovered")
	}

	// The observability invariants must survive the chaotic schedule: the
	// trace remains the single source of truth for every counter (including
	// the containment ones) and the profile still covers the whole clock.
	trc := m.Tracer()
	derived := cubicle.StatsFromTrace(trc)
	if !reflect.DeepEqual(derived, m.Stats) {
		t.Errorf("trace-derived stats diverge under chaos\n derived: %+v\n  legacy: %+v",
			derived, m.Stats)
	}
	prof := trc.Profile()
	cover := float64(prof.TotalCycles) / float64(m.Clock.Cycles())
	if cover < 0.99 || cover > 1.01 {
		t.Errorf("profile covers %.4f of the virtual clock under chaos", cover)
	}
	counts := trc.Counts()
	if counts.ContainedFaults != m.Stats.ContainedFaults ||
		counts.InjectedFaults != m.Stats.InjectedFaults ||
		counts.Quarantines != m.Stats.Quarantines ||
		counts.Restarts != m.Stats.Restarts {
		t.Errorf("streaming trace counters diverge from stats\n  trace: %+v\n  stats: %+v",
			counts, m.Stats)
	}
}

// TestChaosScheduleIsDeterministic pins reproducibility end to end: two
// targets booted with the same seed and driven through the same workload
// produce identical fault schedules and identical containment counters.
func TestChaosScheduleIsDeterministic(t *testing.T) {
	run := func() cubicle.Stats {
		policy := cubicle.DefaultRestartPolicy()
		policy.MaxRestarts = 1000
		tgt, err := NewTargetOpts(Options{
			Mode:        cubicle.ModeFull,
			Supervision: &policy,
			// The VFSCORE→RAMFS edge is only a few crossings per request, so
			// the rates here are much higher than the siege run's to get a
			// non-trivial schedule out of 12 requests.
			Chaos: &faultinject.Config{
				Seed:           21,
				Target:         ramfs.Name,
				ProtAtCrossing: 0.15,
				LeakAtCrossing: 0.05,
			},
		})
		if err != nil {
			t.Fatal(err)
		}
		if err := tgt.PutFile("/f.bin", make([]byte, 4<<10)); err != nil {
			t.Fatal(err)
		}
		tgt.Sys.Chaos.Arm()
		for i := 0; i < 12; i++ {
			if res, err := tgt.Fetch("/f.bin"); err == nil && res.Status == 404 {
				_ = tgt.PutFile("/f.bin", make([]byte, 4<<10))
			}
		}
		return tgt.Sys.M.Stats
	}
	a, b := run(), run()
	if !reflect.DeepEqual(a, b) {
		t.Errorf("identical seeds diverged:\n a: %+v\n b: %+v", a, b)
	}
	if a.InjectedFaults == 0 || a.ContainedFaults == 0 {
		t.Errorf("deterministic run injected/contained nothing: %+v", a)
	}
}
