package siege

import (
	"reflect"
	"testing"

	"cubicleos/internal/cubicle"
)

// TestTraceDerivedStatsMatchLegacy runs a full siege workload with the
// observability layer on and asserts the acceptance invariants of the
// tracing PR: the counters derived from the event stream equal the
// monitor's always-on Stats exactly (the trace is the single source of
// truth), and the per-cubicle cycle profile accounts for the whole
// virtual clock.
func TestTraceDerivedStatsMatchLegacy(t *testing.T) {
	tgt, err := NewTargetTraced(cubicle.ModeFull, 1<<14, 50_000)
	if err != nil {
		t.Fatal(err)
	}
	if err := tgt.PutFile("/f.bin", make([]byte, 16<<10)); err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 10; i++ {
		res, err := tgt.Fetch("/f.bin")
		if err != nil {
			t.Fatal(err)
		}
		if res.Status != 200 {
			t.Fatalf("request %d: status %d", i, res.Status)
		}
	}

	m := tgt.Sys.M
	trc := m.Tracer()
	if trc == nil {
		t.Fatal("traced target has no tracer")
	}
	if m.Stats.CallsTotal == 0 || m.Stats.Faults == 0 {
		t.Fatalf("workload did not exercise the isolation machinery: %+v", m.Stats)
	}

	derived := cubicle.StatsFromTrace(trc)
	if !reflect.DeepEqual(derived, m.Stats) {
		t.Errorf("trace-derived stats diverge from legacy stats\n derived: %+v\n  legacy: %+v",
			derived, m.Stats)
	}

	// Tracing starts at cycle 0, so the profile must cover the clock to
	// within 1% (the acceptance bound; exact span attribution makes it
	// exact in practice).
	prof := trc.Profile()
	clock := m.Clock.Cycles()
	if clock == 0 {
		t.Fatal("virtual clock did not advance")
	}
	cover := float64(prof.TotalCycles) / float64(clock)
	if cover < 0.99 || cover > 1.01 {
		t.Errorf("profile covers %.4f of the virtual clock, want within 1%%", cover)
	}
	if prof.Samples == 0 {
		t.Error("sampling profiler recorded no samples")
	}

	// The ring is sized below the event volume of ten requests only if
	// events were dropped; streaming counters must be immune either way.
	if trc.Recorded() == 0 {
		t.Fatal("no events recorded")
	}
}

// TestUntracedTargetHasNoTracer pins the default: tracing is strictly
// opt-in, so plain targets (the benchmark configuration) carry no tracer.
func TestUntracedTargetHasNoTracer(t *testing.T) {
	tgt, err := NewTarget(cubicle.ModeFull)
	if err != nil {
		t.Fatal(err)
	}
	if tgt.Sys.M.Tracer() != nil {
		t.Fatal("untraced target unexpectedly has a tracer attached")
	}
}
