package siege_test

import (
	"reflect"
	"testing"

	"cubicleos/internal/cubicle"
	"cubicleos/internal/httpd"
	"cubicleos/internal/siege"
	"cubicleos/internal/ualloc"
)

// supervisionOnly returns a restart policy with the watchdog disabled —
// overload runs exercise deadlines and quotas, not runaway crossings.
func supervisionOnly() *cubicle.RestartPolicy {
	p := cubicle.DefaultRestartPolicy()
	p.CrossingBudget = 0
	return &p
}

func bootOverloadTarget(t *testing.T, o siege.Options) *siege.Target {
	t.Helper()
	tgt, err := siege.NewTargetOpts(o)
	if err != nil {
		t.Fatal(err)
	}
	if err := tgt.PutFile("/index.html", make([]byte, 4096)); err != nil {
		t.Fatal(err)
	}
	return tgt
}

// TestOpenLoopGracefulDegradation is the overload acceptance test: an
// open-loop sweep across the saturation knee, governed vs ungoverned.
// Below the knee the two configurations are indistinguishable. Past it,
// the governed server sheds load explicitly (429 + Retry-After), keeps
// its connection count and tail latency bounded and its memory footprint
// a fraction of the ungoverned one — which silently queues everything,
// growing both without bound.
func TestOpenLoopGracefulDegradation(t *testing.T) {
	ungoverned := func() siege.Options { return siege.Options{Mode: cubicle.ModeFull} }
	governed := func() siege.Options {
		return siege.Options{
			Mode:        cubicle.ModeFull,
			TraceEvents: 1 << 14, TraceSamplePeriod: 50_000,
			Supervision: supervisionOnly(),
			Governance: &httpd.Governance{
				MaxConns: 16, RetryAfter: 1, Retry: cubicle.DefaultRetryPolicy(),
			},
			WireCap:    256,
			ReapClosed: true,
		}
	}
	run := func(o siege.Options, rate float64) (*siege.Target, *siege.OpenLoopStats) {
		tgt := bootOverloadTarget(t, o)
		st, err := tgt.OpenLoop(siege.OpenLoopOptions{Path: "/index.html", Rate: rate, Requests: 120})
		if err != nil {
			t.Fatal(err)
		}
		return tgt, st
	}

	// Below the saturation knee the governor must be invisible: same
	// completions, no sheds, equivalent goodput.
	_, uLow := run(ungoverned(), 1000)
	_, gLow := run(governed(), 1000)
	for name, st := range map[string]*siege.OpenLoopStats{"ungoverned": uLow, "governed": gLow} {
		if st.OK != 120 || st.Shed != 0 || st.Dropped != 0 {
			t.Fatalf("%s below knee: ok=%d shed=%d dropped=%d, want 120/0/0", name, st.OK, st.Shed, st.Dropped)
		}
	}
	if diff := gLow.GoodputRPS - uLow.GoodputRPS; diff > 0.1*uLow.GoodputRPS || diff < -0.1*uLow.GoodputRPS {
		t.Errorf("governor costs goodput below the knee: governed %.1f vs ungoverned %.1f rps",
			gLow.GoodputRPS, uLow.GoodputRPS)
	}

	// Past the knee (capacity is ~4000 rps): the ungoverned server
	// accepts everything and queues.
	_, uHi := run(ungoverned(), 8000)
	if uHi.Shed != 0 {
		t.Errorf("ungoverned server shed %d — it has no shedding to do that with", uHi.Shed)
	}
	if uHi.MaxConns <= 16 {
		t.Errorf("ungoverned MaxConns = %d under overload, expected an unbounded pile-up > 16", uHi.MaxConns)
	}

	// The governed server refuses what it cannot serve and stays bounded.
	gt, gHi := run(governed(), 8000)
	if gHi.Shed == 0 {
		t.Fatal("governed server shed nothing past the saturation knee")
	}
	if gHi.OK == 0 {
		t.Fatal("governed server completed nothing past the knee; shedding everything is an outage")
	}
	if gHi.Dropped != 0 {
		t.Errorf("governed run dropped %d connections; refusals must be explicit responses", gHi.Dropped)
	}
	if gHi.MaxConns > 16 {
		t.Errorf("admission control leaked: MaxConns = %d, limit 16", gHi.MaxConns)
	}
	if gHi.P99 >= uHi.P99 {
		t.Errorf("governed p99 %v not below ungoverned p99 %v", gHi.P99, uHi.P99)
	}
	if gHi.ArenaBytes >= uHi.ArenaBytes {
		t.Errorf("governed arena %d B not below ungoverned %d B", gHi.ArenaBytes, uHi.ArenaBytes)
	}
	if gHi.GoodputRPS < 1500 {
		t.Errorf("governed goodput collapsed to %.1f rps under overload", gHi.GoodputRPS)
	}

	// Every shed is accounted end to end: client-observed refusals match
	// the server's 429 counter, the monitor's stats, and the trace.
	m := gt.Sys.M
	if gt.Srv.Shed429 == 0 || uint64(gHi.Shed) != gt.Srv.Shed429+gt.Srv.Shed503 {
		t.Errorf("shed accounting: client saw %d, server counted 429=%d 503=%d",
			gHi.Shed, gt.Srv.Shed429, gt.Srv.Shed503)
	}
	if m.Stats.Sheds != gt.Srv.Shed429+gt.Srv.Shed503 {
		t.Errorf("Stats.Sheds = %d, server counted %d", m.Stats.Sheds, gt.Srv.Shed429+gt.Srv.Shed503)
	}
	if derived := cubicle.StatsFromTrace(m.Tracer()); !reflect.DeepEqual(derived, m.Stats) {
		t.Errorf("trace-derived stats diverge under shedding\n derived: %+v\n  legacy: %+v", derived, m.Stats)
	}
	prof := m.Tracer().Profile()
	if cover := float64(prof.TotalCycles) / float64(m.Clock.Cycles()); cover < 0.99 || cover > 1.01 {
		t.Errorf("profile covers %.4f of the virtual clock under shedding", cover)
	}
}

// TestOpenLoopDeadlineSheds: with a per-request deadline armed at accept
// time, connections the overloaded server cannot finish in budget are
// abandoned at their next crossing — rolled back, answered with 503, and
// never quarantine the cubicle that happened to be downstream.
func TestOpenLoopDeadlineSheds(t *testing.T) {
	tgt := bootOverloadTarget(t, siege.Options{
		Mode:        cubicle.ModeFull,
		TraceEvents: 1 << 14, TraceSamplePeriod: 50_000,
		Supervision: supervisionOnly(),
		Governance: &httpd.Governance{
			MaxConns: 64, RequestDeadline: 3_000_000, RetryAfter: 1,
			Retry: cubicle.DefaultRetryPolicy(),
		},
		WireCap:    256,
		ReapClosed: true,
	})
	st, err := tgt.OpenLoop(siege.OpenLoopOptions{Path: "/index.html", Rate: 9000, Requests: 200})
	if err != nil {
		t.Fatal(err)
	}
	m := tgt.Sys.M
	if m.Stats.DeadlineFaults == 0 {
		t.Fatal("no deadline ever fired at 9000 rps against a ~3000 rps deadline budget")
	}
	if tgt.Srv.Shed503 != m.Stats.DeadlineFaults {
		t.Errorf("Shed503 = %d, DeadlineFaults = %d — every miss must become exactly one 503",
			tgt.Srv.Shed503, m.Stats.DeadlineFaults)
	}
	if st.Shed == 0 || st.Dropped != 0 {
		t.Errorf("client saw shed=%d dropped=%d, want explicit refusals and no drops", st.Shed, st.Dropped)
	}
	if st.OK == 0 {
		t.Error("deadline shedding starved every request; fresh arrivals should still finish in budget")
	}
	if m.Stats.Quarantines != 0 {
		t.Errorf("deadline misses quarantined %d cubicles; they are transient by design", m.Stats.Quarantines)
	}
	for name, c := range tgt.Sys.Cubs {
		if c.Health() != cubicle.Healthy {
			t.Errorf("cubicle %s is %v after deadline shedding, want Healthy", name, c.Health())
		}
	}
	if derived := cubicle.StatsFromTrace(m.Tracer()); !reflect.DeepEqual(derived, m.Stats) {
		t.Errorf("trace-derived stats diverge under deadline shedding\n derived: %+v\n  legacy: %+v",
			derived, m.Stats)
	}
}

// TestOpenLoopQuotaContainsWithoutQuarantine: a page quota on ALLOC turns
// unbounded memory growth under overload into typed, contained
// QuotaFaults. The monitor stops granting pages at the cap, the server
// refuses what it cannot buffer — and ALLOC is never quarantined, so the
// system serves again the moment pressure clears.
func TestOpenLoopQuotaContainsWithoutQuarantine(t *testing.T) {
	const quota = 48 << 20
	tgt := bootOverloadTarget(t, siege.Options{
		Mode:        cubicle.ModeFull,
		Supervision: supervisionOnly(),
		Governance: &httpd.Governance{
			RetryAfter: 1, Retry: cubicle.DefaultRetryPolicy(),
		},
		MemQuotas:  map[string]uint64{ualloc.Name: quota},
		ReapClosed: true,
	})
	st, err := tgt.OpenLoop(siege.OpenLoopOptions{Path: "/index.html", Rate: 6000, Requests: 160})
	if err != nil {
		t.Fatal(err)
	}
	m := tgt.Sys.M
	alloc := tgt.Sys.Cubs[ualloc.Name]
	if m.Stats.QuotaFaults == 0 {
		t.Fatal("overload never hit the 48 MiB ALLOC quota")
	}
	if m.Stats.Quarantines != 0 || alloc.Health() != cubicle.Healthy {
		t.Fatalf("quota pressure quarantined ALLOC (health %v, %d quarantines); quota faults are transient",
			alloc.Health(), m.Stats.Quarantines)
	}
	if used := m.MemUsed(alloc.ID); used > quota {
		t.Errorf("ALLOC page footprint %d B exceeds its %d B quota", used, quota)
	}
	if st.OK == 0 {
		t.Error("no request completed before the quota bit; the cap should throttle, not kill")
	}
	// Recovery: once the storm passes, reaped connections free arena space
	// and the very same deployment serves again without any operator action.
	res, err := tgt.Fetch("/index.html")
	if err != nil {
		t.Fatalf("post-storm fetch failed: %v", err)
	}
	if res.Status != 200 || len(res.Body) != 4096 {
		t.Errorf("post-storm fetch: status %d, %d bytes, want 200/4096", res.Status, len(res.Body))
	}
}
