package siege_test

import (
	"reflect"
	"strings"
	"testing"

	"cubicleos/internal/cubicle"
	"cubicleos/internal/siege"
)

func bootMetricsTarget(t *testing.T) *siege.Target {
	t.Helper()
	tgt, err := siege.NewTargetOpts(siege.Options{
		Mode:        cubicle.ModeFull,
		TraceEvents: 1 << 14, TraceSamplePeriod: 50_000,
		MetricsInterval: 2_000_000, MetricsRing: 256,
	})
	if err != nil {
		t.Fatal(err)
	}
	if err := tgt.PutFile("/index.html", make([]byte, 8192)); err != nil {
		t.Fatal(err)
	}
	return tgt
}

// TestMetricsEndpointServesOpenMetrics is the dogfooding acceptance test:
// the monitor's exposition travels through the system's own isolation
// boundaries — staged into the server cubicle, copied across windows,
// framed by LWIP — and still parses as OpenMetrics on the wire.
func TestMetricsEndpointServesOpenMetrics(t *testing.T) {
	tgt := bootMetricsTarget(t)
	for i := 0; i < 5; i++ {
		res, err := tgt.Fetch("/index.html")
		if err != nil {
			t.Fatal(err)
		}
		if res.Status != 200 {
			t.Fatalf("request %d: status %d", i, res.Status)
		}
	}
	callsBefore := tgt.Sys.M.Stats.CallsTotal

	res, err := tgt.Fetch("/metrics")
	if err != nil {
		t.Fatal(err)
	}
	if res.Status != 200 {
		t.Fatalf("GET /metrics: status %d", res.Status)
	}
	series, err := cubicle.ParseOpenMetrics(strings.NewReader(string(res.Body)))
	if err != nil {
		t.Fatalf("/metrics body does not parse as OpenMetrics: %v\n%s", err, res.Body)
	}
	// The body was rendered while serving, so its counters sit between the
	// pre-request totals and the current ones.
	calls := series["cubicleos_calls_total"]
	if calls < float64(callsBefore) || calls > float64(tgt.Sys.M.Stats.CallsTotal) {
		t.Errorf("calls_total %v outside [%d, %d]", calls, callsBefore, tgt.Sys.M.Stats.CallsTotal)
	}
	for _, want := range []string{
		"cubicleos_faults_total", "cubicleos_virtual_seconds",
		"cubicleos_metrics_samples_total", "cubicleos_healthy_cubicles",
		`cubicleos_trace_shard_recorded_total{core="0"}`,
	} {
		if _, ok := series[want]; !ok {
			t.Errorf("/metrics missing series %s", want)
		}
	}
}

// TestMetricsSamplesDuringSiege checks the virtual-time pipeline fills its
// ring from real workload crossings with sane figures.
func TestMetricsSamplesDuringSiege(t *testing.T) {
	tgt := bootMetricsTarget(t)
	for i := 0; i < 8; i++ {
		if _, err := tgt.Fetch("/index.html"); err != nil {
			t.Fatal(err)
		}
	}
	m := tgt.Sys.M
	samples := m.MetricsSamples()
	if len(samples) < 2 {
		t.Fatalf("only %d samples after 8 requests at 2M-cycle interval", len(samples))
	}
	var sawCalls, sawP99 bool
	for i, s := range samples {
		if i > 0 && s.Cycle <= samples[i-1].Cycle {
			t.Fatalf("sample %d cycle not increasing", i)
		}
		if s.Calls > 0 && s.CallRate > 0 {
			sawCalls = true
		}
		if s.CallP99 >= s.CallP50 && s.CallP99 > 0 {
			sawP99 = true
		}
	}
	if !sawCalls {
		t.Error("no sample recorded a positive call rate")
	}
	if !sawP99 {
		t.Error("no sample carried crossing-latency percentiles despite tracing")
	}
}

// TestOpenLoopDriverMatchesOpenLoop pins the stepping driver to the
// monolithic loop: the same run stepped quantum-by-quantum (as cubicle-top
// drives it) must land on identical virtual-time statistics.
func TestOpenLoopDriverMatchesOpenLoop(t *testing.T) {
	opts := siege.OpenLoopOptions{Path: "/index.html", Rate: 2000, Requests: 60}
	boot := func() *siege.Target {
		tgt, err := siege.NewTarget(cubicle.ModeFull)
		if err != nil {
			t.Fatal(err)
		}
		if err := tgt.PutFile("/index.html", make([]byte, 4096)); err != nil {
			t.Fatal(err)
		}
		return tgt
	}

	ref, err := boot().OpenLoop(opts)
	if err != nil {
		t.Fatal(err)
	}

	d, err := boot().StartOpenLoop(opts)
	if err != nil {
		t.Fatal(err)
	}
	for d.Step(37) { // odd quantum to exercise mid-run boundaries
	}
	got := d.Finish()
	if !reflect.DeepEqual(ref, got) {
		t.Errorf("stepped run diverges from monolithic run\n ref: %+v\n got: %+v", ref, got)
	}
	if again := d.Finish(); !reflect.DeepEqual(got, again) {
		t.Error("Finish is not idempotent")
	}
	if d.Step(1) {
		t.Error("Step reports progress after Finish")
	}
	if d.Launched() != opts.Requests || d.InFlight() != 0 {
		t.Errorf("launched=%d inflight=%d after completion", d.Launched(), d.InFlight())
	}
}
