// Open-loop load generation: requests arrive on a fixed virtual-clock
// schedule regardless of whether earlier ones completed, the way real
// traffic behaves. Closed-loop drivers (Fetch, FetchConcurrent) can never
// push a server past saturation — the client waits, so the queue cannot
// grow; an open-loop sweep across offered rates is what exposes the
// saturation knee and how the system degrades beyond it.

package siege

import (
	"fmt"
	"sort"
	"strconv"
	"strings"
	"time"

	"cubicleos/internal/cycles"
	"cubicleos/internal/lwip"
)

// OpenLoopOptions configures one open-loop run.
type OpenLoopOptions struct {
	// Path is the file requested by every arrival.
	Path string
	// Rate is the offered load in requests per virtual second.
	Rate float64
	// Requests is the number of scheduled arrivals.
	Requests int
	// MaxSteps bounds driver iterations as a safety net (0 = default).
	MaxSteps int
	// IdleStepLimit breaks the drain phase when this many consecutive
	// steps make no progress; stragglers count as dropped (0 = default).
	IdleStepLimit int
}

// OpenLoopStats summarises one open-loop run at a fixed offered rate.
type OpenLoopStats struct {
	OfferedRPS float64
	Arrivals   int
	// OK counts 200 responses; Shed counts explicit refusals (429/503);
	// Errors counts other statuses; Dropped counts connections that never
	// completed (lost SYN, server never answered).
	OK, Shed, Errors, Dropped int
	// GoodputRPS is completed 200s per virtual second of the run.
	GoodputRPS float64
	// P50/P99/P999 are download latencies of the 200 responses.
	P50, P99, P999 time.Duration
	// MaxConns is the high-water mark of concurrent server connections.
	MaxConns int
	// ArenaBytes is ALLOC's total arena footprint at the end of the run —
	// the memory the overload left behind.
	ArenaBytes uint64
	// Elapsed is the virtual wall-clock span of the run.
	Elapsed time.Duration
}

type olFlight struct {
	conn    *lwip.PeerConn
	startAt uint64
	doneAt  uint64
	sent    bool
	done    bool
}

// openLoopRun is the open-loop driver unrolled into a resumable state
// machine: step() is exactly one iteration of the original driver loop,
// so a run stepped to completion is byte-identical (in virtual time and
// in every counter) to the monolithic loop it replaced — while the
// parallel driver can interleave quanta of many runs.
type openLoopRun struct {
	t     *Target
	o     OpenLoopOptions
	clock *cycles.Clock
	req   []byte

	interval  uint64
	start     uint64
	next      uint64
	flights   []*olFlight
	launched  int
	open      int
	idle      int
	maxConns  int
	steps     int
	maxSteps  int
	idleLimit int

	lats          []uint64 // filled by finish
	elapsedCycles uint64   // filled by finish
}

func (t *Target) newOpenLoopRun(o OpenLoopOptions) (*openLoopRun, error) {
	if o.Rate <= 0 || o.Requests <= 0 {
		return nil, fmt.Errorf("siege: open loop needs positive rate and request count")
	}
	r := &openLoopRun{
		t:         t,
		o:         o,
		clock:     t.Sys.M.Clock,
		req:       []byte(fmt.Sprintf("GET %s HTTP/1.0\r\nHost: cubicle\r\nUser-Agent: siege-sim\r\n\r\n", o.Path)),
		maxSteps:  o.MaxSteps,
		idleLimit: o.IdleStepLimit,
	}
	if r.maxSteps == 0 {
		r.maxSteps = 5_000_000
	}
	if r.idleLimit == 0 {
		r.idleLimit = 20_000
	}
	r.interval = uint64(float64(cycles.FrequencyHz) / o.Rate)
	if r.interval == 0 {
		r.interval = 1
	}
	r.start = r.clock.Cycles()
	r.next = r.start
	return r, nil
}

// step runs one driver iteration. It returns false once the run is over
// (all arrivals resolved, the drain phase gave up, or the step budget ran
// out).
func (r *openLoopRun) step() bool {
	if r.steps >= r.maxSteps {
		return false
	}
	r.steps++
	t, clock := r.t, r.clock
	for r.launched < r.o.Requests && clock.Cycles() >= r.next {
		r.flights = append(r.flights, &olFlight{conn: t.Peer.Connect(80), startAt: clock.Cycles()})
		r.launched++
		r.open++
		r.next += r.interval
	}
	t.stepH.Call(t.Sys.Env)
	t.Peer.Pump()
	progress := false
	for _, f := range r.flights {
		if f.done {
			continue
		}
		if f.conn.Established && !f.sent {
			f.conn.Send(r.req)
			f.sent = true
			progress = true
		}
		if f.conn.FinRcvd {
			f.done = true
			f.doneAt = clock.Cycles()
			// The response is complete: detach the connection so the peer's
			// pump stays O(in-flight) however many requests the run issues.
			// Received data stays readable for finish().
			f.conn.Release()
			r.open--
			progress = true
		}
	}
	if c := t.Srv.Conns(); c > r.maxConns {
		r.maxConns = c
	}
	if r.launched == r.o.Requests && r.open == 0 {
		return false
	}
	if r.open == 0 && r.launched < r.o.Requests {
		// Nothing in flight: idle until the next scheduled arrival.
		clock.AdvanceTo(r.next)
		return true
	}
	if r.launched == r.o.Requests && !progress {
		// Drain phase: give stalled connections a bounded chance.
		if r.idle++; r.idle > r.idleLimit {
			return false
		}
	} else {
		r.idle = 0
	}
	return true
}

// finish classifies every flight and computes the run's statistics.
func (r *openLoopRun) finish() *OpenLoopStats {
	st := &OpenLoopStats{
		OfferedRPS: r.o.Rate,
		Arrivals:   r.launched,
		MaxConns:   r.maxConns,
		ArenaBytes: r.t.Sys.Alloc.TotalArenaBytes(),
	}
	var lats []uint64
	for _, f := range r.flights {
		if !f.done {
			st.Dropped++
			continue
		}
		raw := string(f.conn.Received())
		head, _, ok := strings.Cut(raw, "\r\n\r\n")
		if !ok {
			st.Dropped++
			continue
		}
		fields := strings.Fields(strings.SplitN(head, "\r\n", 2)[0])
		if len(fields) < 2 {
			st.Dropped++
			continue
		}
		status, err := strconv.Atoi(fields[1])
		if err != nil {
			st.Dropped++
			continue
		}
		switch {
		case status == 200:
			st.OK++
			lats = append(lats, f.doneAt-f.startAt+r.t.RequestFloor)
		case status == 429 || status == 503:
			st.Shed++
		default:
			st.Errors++
		}
	}
	elapsed := r.clock.Cycles() - r.start
	r.elapsedCycles = elapsed
	st.Elapsed = cycles.Duration(elapsed)
	if elapsed > 0 {
		st.GoodputRPS = float64(st.OK) * float64(cycles.FrequencyHz) / float64(elapsed)
	}
	sort.Slice(lats, func(i, j int) bool { return lats[i] < lats[j] })
	st.P50 = percentile(lats, 0.50)
	st.P99 = percentile(lats, 0.99)
	st.P999 = percentile(lats, 0.999)
	r.lats = lats
	return st
}

// OpenLoop offers o.Requests arrivals at o.Rate requests per virtual
// second and drives the system until every arrival completes, is shed, or
// stalls. The clock jumps over idle gaps between arrivals, so a run below
// saturation measures unloaded latency and a run above it measures the
// queue the overload builds.
func (t *Target) OpenLoop(o OpenLoopOptions) (*OpenLoopStats, error) {
	r, err := t.newOpenLoopRun(o)
	if err != nil {
		return nil, err
	}
	for r.step() {
	}
	return r.finish(), nil
}

// percentile returns the p-quantile of sorted cycle latencies as a
// duration (nearest-rank; zero when empty).
// Percentile converts the p-th percentile of an ascending cycle-latency
// slice to a duration (nearest-rank). Exported for the cluster driver,
// which pools latencies across backends but classifies them itself.
func Percentile(sorted []uint64, p float64) time.Duration {
	return percentile(sorted, p)
}

func percentile(sorted []uint64, p float64) time.Duration {
	if len(sorted) == 0 {
		return 0
	}
	i := int(p * float64(len(sorted)))
	if i >= len(sorted) {
		i = len(sorted) - 1
	}
	return cycles.Duration(sorted[i])
}

// OpenLoopDriver is the open-loop run as a resumable state machine, for
// callers that interleave driving with observation — the cubicle-top
// dashboard steps the run one quantum at a time and renders the metrics
// ring between quanta. Step and Finish mirror the internal driver
// exactly, so a run stepped to completion produces the same virtual-time
// figures as OpenLoop.
type OpenLoopDriver struct {
	r        *openLoopRun
	finished *OpenLoopStats
}

// StartOpenLoop begins an open-loop run without driving it; call Step
// until it returns false, then Finish.
func (t *Target) StartOpenLoop(o OpenLoopOptions) (*OpenLoopDriver, error) {
	r, err := t.newOpenLoopRun(o)
	if err != nil {
		return nil, err
	}
	return &OpenLoopDriver{r: r}, nil
}

// Step runs up to n driver iterations (n <= 0 means 1). It returns false
// once the run is over.
func (d *OpenLoopDriver) Step(n int) bool {
	if d.finished != nil {
		return false
	}
	if n <= 0 {
		n = 1
	}
	for i := 0; i < n; i++ {
		if !d.r.step() {
			return false
		}
	}
	return true
}

// Launched returns how many arrivals have been issued so far.
func (d *OpenLoopDriver) Launched() int { return d.r.launched }

// InFlight returns how many requests are currently open.
func (d *OpenLoopDriver) InFlight() int { return d.r.open }

// Finish classifies every flight and returns the run's statistics
// (idempotent after the first call).
func (d *OpenLoopDriver) Finish() *OpenLoopStats {
	if d.finished == nil {
		d.finished = d.r.finish()
	}
	return d.finished
}

// OpenLoopSweep runs an offered-load sweep: one fresh target per rate
// (built by mk, which provisions the workload) so runs do not inherit each
// other's residue, each driven through OpenLoop with o.Rate overridden.
func OpenLoopSweep(rates []float64, mk func() (*Target, error), o OpenLoopOptions) ([]*OpenLoopStats, error) {
	out := make([]*OpenLoopStats, 0, len(rates))
	for _, r := range rates {
		t, err := mk()
		if err != nil {
			return nil, fmt.Errorf("siege: sweep boot at %.0f rps: %w", r, err)
		}
		ro := o
		ro.Rate = r
		st, err := t.OpenLoop(ro)
		if err != nil {
			return nil, err
		}
		out = append(out, st)
	}
	return out, nil
}
