// Open-loop load generation: requests arrive on a fixed virtual-clock
// schedule regardless of whether earlier ones completed, the way real
// traffic behaves. Closed-loop drivers (Fetch, FetchConcurrent) can never
// push a server past saturation — the client waits, so the queue cannot
// grow; an open-loop sweep across offered rates is what exposes the
// saturation knee and how the system degrades beyond it.

package siege

import (
	"fmt"
	"sort"
	"strconv"
	"strings"
	"time"

	"cubicleos/internal/cycles"
	"cubicleos/internal/lwip"
)

// OpenLoopOptions configures one open-loop run.
type OpenLoopOptions struct {
	// Path is the file requested by every arrival.
	Path string
	// Rate is the offered load in requests per virtual second.
	Rate float64
	// Requests is the number of scheduled arrivals.
	Requests int
	// MaxSteps bounds driver iterations as a safety net (0 = default).
	MaxSteps int
	// IdleStepLimit breaks the drain phase when this many consecutive
	// steps make no progress; stragglers count as dropped (0 = default).
	IdleStepLimit int
}

// OpenLoopStats summarises one open-loop run at a fixed offered rate.
type OpenLoopStats struct {
	OfferedRPS float64
	Arrivals   int
	// OK counts 200 responses; Shed counts explicit refusals (429/503);
	// Errors counts other statuses; Dropped counts connections that never
	// completed (lost SYN, server never answered).
	OK, Shed, Errors, Dropped int
	// GoodputRPS is completed 200s per virtual second of the run.
	GoodputRPS float64
	// P50/P99/P999 are download latencies of the 200 responses.
	P50, P99, P999 time.Duration
	// MaxConns is the high-water mark of concurrent server connections.
	MaxConns int
	// ArenaBytes is ALLOC's total arena footprint at the end of the run —
	// the memory the overload left behind.
	ArenaBytes uint64
	// Elapsed is the virtual wall-clock span of the run.
	Elapsed time.Duration
}

// OpenLoop offers o.Requests arrivals at o.Rate requests per virtual
// second and drives the system until every arrival completes, is shed, or
// stalls. The clock jumps over idle gaps between arrivals, so a run below
// saturation measures unloaded latency and a run above it measures the
// queue the overload builds.
func (t *Target) OpenLoop(o OpenLoopOptions) (*OpenLoopStats, error) {
	if o.Rate <= 0 || o.Requests <= 0 {
		return nil, fmt.Errorf("siege: open loop needs positive rate and request count")
	}
	maxSteps := o.MaxSteps
	if maxSteps == 0 {
		maxSteps = 5_000_000
	}
	idleLimit := o.IdleStepLimit
	if idleLimit == 0 {
		idleLimit = 20_000
	}
	clock := t.Sys.M.Clock
	interval := uint64(float64(cycles.FrequencyHz) / o.Rate)
	if interval == 0 {
		interval = 1
	}
	type flight struct {
		conn    *lwip.PeerConn
		startAt uint64
		doneAt  uint64
		sent    bool
		done    bool
	}
	req := []byte(fmt.Sprintf("GET %s HTTP/1.0\r\nHost: cubicle\r\nUser-Agent: siege-sim\r\n\r\n", o.Path))
	start := clock.Cycles()
	next := start
	var flights []*flight
	launched, open, idle, maxConns := 0, 0, 0, 0
	for step := 0; step < maxSteps; step++ {
		for launched < o.Requests && clock.Cycles() >= next {
			flights = append(flights, &flight{conn: t.Peer.Connect(80), startAt: clock.Cycles()})
			launched++
			open++
			next += interval
		}
		t.stepH.Call(t.Sys.Env)
		t.Peer.Pump()
		progress := false
		for _, f := range flights {
			if f.done {
				continue
			}
			if f.conn.Established && !f.sent {
				f.conn.Send(req)
				f.sent = true
				progress = true
			}
			if f.conn.FinRcvd {
				f.done = true
				f.doneAt = clock.Cycles()
				open--
				progress = true
			}
		}
		if c := t.Srv.Conns(); c > maxConns {
			maxConns = c
		}
		if launched == o.Requests && open == 0 {
			break
		}
		if open == 0 && launched < o.Requests {
			// Nothing in flight: idle until the next scheduled arrival.
			clock.AdvanceTo(next)
			continue
		}
		if launched == o.Requests && !progress {
			// Drain phase: give stalled connections a bounded chance.
			if idle++; idle > idleLimit {
				break
			}
		} else {
			idle = 0
		}
	}
	st := &OpenLoopStats{
		OfferedRPS: o.Rate,
		Arrivals:   launched,
		MaxConns:   maxConns,
		ArenaBytes: t.Sys.Alloc.TotalArenaBytes(),
	}
	var lats []uint64
	for _, f := range flights {
		if !f.done {
			st.Dropped++
			continue
		}
		raw := string(f.conn.Received())
		head, _, ok := strings.Cut(raw, "\r\n\r\n")
		if !ok {
			st.Dropped++
			continue
		}
		fields := strings.Fields(strings.SplitN(head, "\r\n", 2)[0])
		if len(fields) < 2 {
			st.Dropped++
			continue
		}
		status, err := strconv.Atoi(fields[1])
		if err != nil {
			st.Dropped++
			continue
		}
		switch {
		case status == 200:
			st.OK++
			lats = append(lats, f.doneAt-f.startAt+t.RequestFloor)
		case status == 429 || status == 503:
			st.Shed++
		default:
			st.Errors++
		}
	}
	elapsed := clock.Cycles() - start
	st.Elapsed = cycles.Duration(elapsed)
	if elapsed > 0 {
		st.GoodputRPS = float64(st.OK) * float64(cycles.FrequencyHz) / float64(elapsed)
	}
	sort.Slice(lats, func(i, j int) bool { return lats[i] < lats[j] })
	st.P50 = percentile(lats, 0.50)
	st.P99 = percentile(lats, 0.99)
	st.P999 = percentile(lats, 0.999)
	return st, nil
}

// percentile returns the p-quantile of sorted cycle latencies as a
// duration (nearest-rank; zero when empty).
func percentile(sorted []uint64, p float64) time.Duration {
	if len(sorted) == 0 {
		return 0
	}
	i := int(p * float64(len(sorted)))
	if i >= len(sorted) {
		i = len(sorted) - 1
	}
	return cycles.Duration(sorted[i])
}

// OpenLoopSweep runs an offered-load sweep: one fresh target per rate
// (built by mk, which provisions the workload) so runs do not inherit each
// other's residue, each driven through OpenLoop with o.Rate overridden.
func OpenLoopSweep(rates []float64, mk func() (*Target, error), o OpenLoopOptions) ([]*OpenLoopStats, error) {
	out := make([]*OpenLoopStats, 0, len(rates))
	for _, r := range rates {
		t, err := mk()
		if err != nil {
			return nil, fmt.Errorf("siege: sweep boot at %.0f rps: %w", r, err)
		}
		ro := o
		ro.Rate = r
		st, err := t.OpenLoop(ro)
		if err != nil {
			return nil, err
		}
		out = append(out, st)
	}
	return out, nil
}
