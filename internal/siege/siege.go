// Package siege is the load generator of the paper's NGINX evaluation
// (§6.3): it attaches a host-side TCP peer to the NETDEV wire, issues
// GET requests for static files, and measures per-request download
// latency on the virtual clock. Like the real siege utility it runs
// outside the system under test.
package siege

import (
	"errors"
	"fmt"
	"strconv"
	"strings"

	"cubicleos/internal/boot"
	"cubicleos/internal/cubicle"
	"cubicleos/internal/cycles"
	"cubicleos/internal/faultinject"
	"cubicleos/internal/httpd"
	"cubicleos/internal/lwip"
	"cubicleos/internal/plat"
	"cubicleos/internal/ramfs"
	"cubicleos/internal/ualloc"
	"cubicleos/internal/uktime"
	"cubicleos/internal/vfscore"
	"time"
)

// DefaultRequestFloor is the fixed client+network+connection cost per
// request in cycles (~5 ms at 2.2 GHz): the share of the paper's 5–6 ms
// small-file latency that belongs to siege, the kernel network path and
// the physical link rather than to the library OS under test. It is
// identical for the baseline and CubicleOS runs.
const DefaultRequestFloor = 11_000_000

// Target is a booted NGINX deployment plus an attached load generator.
type Target struct {
	Sys  *boot.System
	Srv  *httpd.Server
	Peer *lwip.Peer

	initH, stepH cubicle.Handle
	// RequestFloor is added to every request's measured cycles.
	RequestFloor uint64
}

// Options configures a target boot beyond the isolation mode.
type Options struct {
	Mode cubicle.Mode
	// TraceEvents/TraceSamplePeriod enable the observability layer (see
	// NewTargetTraced).
	TraceEvents       int
	TraceSamplePeriod uint64
	// MetricsInterval/MetricsRing enable the virtual-time metrics pipeline
	// (see boot.Config). When enabled, the server also answers
	// GET /metrics with the monitor's OpenMetrics exposition.
	MetricsInterval uint64
	MetricsRing     int
	// Supervision enables fault containment with the given restart policy.
	Supervision *cubicle.RestartPolicy
	// Chaos attaches a deterministic fault injector (disarmed; arm it via
	// Target.Sys.Chaos once provisioning is done).
	Chaos *faultinject.Config
	// Governance, when non-nil, arms the server's overload protection
	// (admission control, request deadlines, shed responses).
	Governance *httpd.Governance
	// MemQuotas / AllocClientQuota / WireCap / ReapClosed pass through to
	// boot.Config — the resource-governance side of overload protection.
	MemQuotas        map[string]uint64
	AllocClientQuota uint64
	WireCap          int
	ReapClosed       bool
	// SMPCores passes through to boot.Config: > 1 gives the deployment
	// per-core virtual clocks and per-core trace ring shards.
	SMPCores int
	// CheckpointInterval passes through to boot.Config: > 0 makes the
	// monitor checkpoint quiescent cubicles on that virtual-clock cadence,
	// so supervised restarts can restore warm state instead of rebuilding
	// from empty.
	CheckpointInterval uint64
	// Cluster passes through to boot.Config: this target's backend index
	// when it boots as one member of a virtual cluster, keying the
	// per-backend chaos decision streams. 0 for standalone targets.
	Cluster int
}

// NewTarget boots the Figure 5 deployment: eight isolated cubicles
// (NGINX, LWIP, NETDEV, VFSCORE, RAMFS, PLAT, ALLOC, TIME) with LIBC and
// RANDOM shared, every buffer allocated through ALLOC, in the given
// isolation mode.
func NewTarget(mode cubicle.Mode) (*Target, error) {
	return NewTargetOpts(Options{Mode: mode})
}

// NewTargetTraced boots the same deployment with the observability layer
// enabled from cycle 0: a trace ring of ringCap events plus, when
// samplePeriod is non-zero, the virtual-clock sampling profiler. Inspect
// the run through Target.Sys.M.Tracer().
func NewTargetTraced(mode cubicle.Mode, ringCap int, samplePeriod uint64) (*Target, error) {
	return NewTargetOpts(Options{Mode: mode, TraceEvents: ringCap, TraceSamplePeriod: samplePeriod})
}

// NewTargetOpts boots the deployment with the full option set, including
// supervision and chaos injection for robustness runs.
func NewTargetOpts(o Options) (*Target, error) {
	srv := httpd.New(80)
	sys, err := boot.NewFS(boot.Config{
		Mode:               o.Mode,
		Net:                true,
		RamfsViaAlloc:      true,
		LwipViaAlloc:       true,
		Extra:              []*cubicle.Component{srv.Component()},
		TraceEvents:        o.TraceEvents,
		TraceSamplePeriod:  o.TraceSamplePeriod,
		MetricsInterval:    o.MetricsInterval,
		MetricsRing:        o.MetricsRing,
		Supervision:        o.Supervision,
		Chaos:              o.Chaos,
		MemQuotas:          o.MemQuotas,
		AllocClientQuota:   o.AllocClientQuota,
		WireCap:            o.WireCap,
		LwipReapClosed:     o.ReapClosed,
		SMPCores:           o.SMPCores,
		CheckpointInterval: o.CheckpointInterval,
		Cluster:            o.Cluster,
	})
	if err != nil {
		return nil, err
	}
	// Both the baseline and CubicleOS runs execute Unikraft-based
	// component code (boot.UnikraftWorkScale models its efficiency gap
	// versus native kernels).
	sys.M.Clock.SetWorkScale(boot.UnikraftWorkScale)
	m := sys.M
	ngx := sys.Cubs[httpd.Name].ID
	srv.SetDeps(
		lwip.NewClient(m, ngx),
		vfscore.NewClient(m, ngx),
		uktime.NewClient(m, ngx),
		plat.NewClient(m, ngx),
		&ualloc.Remote{C: ualloc.NewClient(m, ngx)},
		sys.Cubs[lwip.Name].ID,
		sys.Cubs[vfscore.Name].ID,
		sys.Cubs[ramfs.Name].ID,
		sys.Cubs[plat.Name].ID,
	)
	t := &Target{
		Sys:          sys,
		Srv:          srv,
		Peer:         lwip.NewPeer(sys.Netdev.Wire()),
		initH:        m.MustResolve(cubicle.MonitorID, httpd.Name, "nginx_init"),
		stepH:        m.MustResolve(cubicle.MonitorID, httpd.Name, "nginx_step"),
		RequestFloor: DefaultRequestFloor,
	}
	if o.Governance != nil {
		srv.SetGovernance(*o.Governance)
	}
	if o.MetricsInterval > 0 {
		srv.SetMetricsSource(sys.M.OpenMetricsBody)
	}
	if errno := t.initH.Call(sys.Env)[0]; errno != 0 {
		return nil, fmt.Errorf("siege: nginx_init failed with errno %d", errno)
	}
	return t, nil
}

// MustNewTarget is NewTarget for tests and benchmarks.
func MustNewTarget(mode cubicle.Mode) *Target {
	t, err := NewTarget(mode)
	if err != nil {
		panic(err)
	}
	return t
}

// PutFile provisions a static file on the server. Chaos injection, if
// attached and armed, is suspended for the duration: provisioning is the
// operator's recovery action, not part of the workload under test.
func (t *Target) PutFile(path string, data []byte) error {
	if inj := t.Sys.Chaos; inj != nil && inj.Armed() {
		inj.Disarm()
		defer inj.Arm()
	}
	var errno uint64
	err := t.Sys.RunAs(httpd.Name, func(e *cubicle.Env) {
		errno = t.Srv.Provision(e, path, data)
	})
	if err != nil {
		return err
	}
	if errno != 0 {
		return fmt.Errorf("siege: provision %s: errno %d", path, errno)
	}
	return nil
}

// Result is one completed request.
type Result struct {
	Status int
	Body   []byte
	// Cycles is the virtual cycles the system spent on the request
	// (excluding the client/network floor).
	Cycles uint64
	// Latency is the modelled end-to-end download latency: system cycles
	// plus the request floor, at 2.20 GHz.
	Latency time.Duration
}

// Fetch issues GET path and drives the system until the response is
// complete (server closes after each response, HTTP/1.0 style).
func (t *Target) Fetch(path string) (*Result, error) {
	start := t.Sys.M.Clock.Cycles()
	conn := t.Peer.Connect(80)
	defer conn.Release()
	req := fmt.Sprintf("GET %s HTTP/1.0\r\nHost: cubicle\r\nUser-Agent: siege-sim\r\n\r\n", path)
	sentReq := false
	for i := 0; i < 5_000_000; i++ {
		t.stepH.Call(t.Sys.Env)
		t.Peer.Pump()
		if conn.Established && !sentReq {
			conn.Send([]byte(req))
			sentReq = true
		}
		if conn.FinRcvd {
			break
		}
	}
	if !conn.FinRcvd {
		return nil, fmt.Errorf("siege: request for %s did not complete", path)
	}
	raw := string(conn.Received())
	head, body, ok := strings.Cut(raw, "\r\n\r\n")
	if !ok {
		return nil, fmt.Errorf("siege: malformed response %q", truncate(raw, 80))
	}
	fields := strings.Fields(strings.SplitN(head, "\r\n", 2)[0])
	if len(fields) < 2 {
		return nil, fmt.Errorf("siege: malformed status line %q", truncate(head, 80))
	}
	status, err := strconv.Atoi(fields[1])
	if err != nil {
		return nil, fmt.Errorf("siege: bad status %q", fields[1])
	}
	used := t.Sys.M.Clock.Cycles() - start
	return &Result{
		Status:  status,
		Body:    []byte(body),
		Cycles:  used,
		Latency: cycles.Duration(used + t.RequestFloor),
	}, nil
}

// ErrHalted is returned by FetchUntil when the virtual clock reached the
// stop cycle before the response completed.
var ErrHalted = errors.New("siege: virtual clock reached the stop cycle")

// FetchUntil is Fetch with a replay halt: it stops driving the system as
// soon as the virtual clock reaches stop, returning ErrHalted. Virtual
// time advances in discrete charges inside each step, so the clock halts
// at the first step boundary at or after stop — every event with
// Cycle <= stop has been emitted by then, which is what makes the
// record/replay prefix comparison exact.
func (t *Target) FetchUntil(path string, stop uint64) (*Result, error) {
	clk := t.Sys.M.Clock
	if clk.Cycles() >= stop {
		return nil, ErrHalted
	}
	start := clk.Cycles()
	conn := t.Peer.Connect(80)
	defer conn.Release()
	req := fmt.Sprintf("GET %s HTTP/1.0\r\nHost: cubicle\r\nUser-Agent: siege-sim\r\n\r\n", path)
	sentReq := false
	for i := 0; i < 5_000_000; i++ {
		t.stepH.Call(t.Sys.Env)
		t.Peer.Pump()
		if clk.Cycles() >= stop {
			return nil, ErrHalted
		}
		if conn.Established && !sentReq {
			conn.Send([]byte(req))
			sentReq = true
		}
		if conn.FinRcvd {
			break
		}
	}
	if !conn.FinRcvd {
		return nil, fmt.Errorf("siege: request for %s did not complete", path)
	}
	raw := string(conn.Received())
	head, body, ok := strings.Cut(raw, "\r\n\r\n")
	if !ok {
		return nil, fmt.Errorf("siege: malformed response %q", truncate(raw, 80))
	}
	fields := strings.Fields(strings.SplitN(head, "\r\n", 2)[0])
	if len(fields) < 2 {
		return nil, fmt.Errorf("siege: malformed status line %q", truncate(head, 80))
	}
	status, err := strconv.Atoi(fields[1])
	if err != nil {
		return nil, fmt.Errorf("siege: bad status %q", fields[1])
	}
	used := clk.Cycles() - start
	return &Result{
		Status:  status,
		Body:    []byte(body),
		Cycles:  used,
		Latency: cycles.Duration(used + t.RequestFloor),
	}, nil
}

// Step drives one server iteration (nginx_step) without pumping the
// peer. The cluster driver uses it to advance each backend in lockstep
// with the cluster clock; callers own the CatchContained wrapping, since
// a quarantined NGINX refuses the crossing with a ContainedFault.
func (t *Target) Step() uint64 { return t.stepH.Call(t.Sys.Env)[0] }

func truncate(s string, n int) string {
	if len(s) <= n {
		return s
	}
	return s[:n] + "..."
}

// Edges returns the cross-cubicle call-count table of the run so far —
// the data behind Figure 5.
func (t *Target) Edges() []cubicle.EdgeCount { return t.Sys.M.Stats.SortedEdges() }

// FetchConcurrent issues all requests at once over separate connections
// (siege's -c concurrency) and drives the system until every response
// completes. Results are returned in request order; each latency covers
// the span from the batch start to that response's completion.
func (t *Target) FetchConcurrent(paths []string) ([]*Result, error) {
	start := t.Sys.M.Clock.Cycles()
	type pending struct {
		conn   *lwip.PeerConn
		path   string
		sent   bool
		done   bool
		cycles uint64
	}
	reqs := make([]*pending, len(paths))
	for i, p := range paths {
		reqs[i] = &pending{conn: t.Peer.Connect(80), path: p}
	}
	defer func() {
		for _, r := range reqs {
			r.conn.Release()
		}
	}()
	remaining := len(reqs)
	for iter := 0; iter < 5_000_000 && remaining > 0; iter++ {
		t.stepH.Call(t.Sys.Env)
		t.Peer.Pump()
		for _, r := range reqs {
			if r.conn.Established && !r.sent {
				r.conn.Send([]byte(fmt.Sprintf("GET %s HTTP/1.0\r\nHost: cubicle\r\n\r\n", r.path)))
				r.sent = true
			}
			if r.conn.FinRcvd && !r.done {
				r.done = true
				r.cycles = t.Sys.M.Clock.Cycles() - start
				remaining--
			}
		}
	}
	if remaining > 0 {
		return nil, fmt.Errorf("siege: %d of %d concurrent requests did not complete", remaining, len(paths))
	}
	out := make([]*Result, len(reqs))
	for i, r := range reqs {
		raw := string(r.conn.Received())
		head, body, ok := strings.Cut(raw, "\r\n\r\n")
		if !ok {
			return nil, fmt.Errorf("siege: malformed response for %s", r.path)
		}
		fields := strings.Fields(strings.SplitN(head, "\r\n", 2)[0])
		status, err := strconv.Atoi(fields[1])
		if err != nil {
			return nil, fmt.Errorf("siege: bad status for %s", r.path)
		}
		out[i] = &Result{
			Status:  status,
			Body:    []byte(body),
			Cycles:  r.cycles,
			Latency: cycles.Duration(r.cycles + t.RequestFloor),
		}
	}
	return out, nil
}
