package plat_test

import (
	"testing"

	"cubicleos/internal/boot"
	"cubicleos/internal/cubicle"
	"cubicleos/internal/plat"
)

func bootApp(t *testing.T) *boot.System {
	t.Helper()
	return boot.MustNewFS(boot.Config{Mode: cubicle.ModeFull, Extra: []*cubicle.Component{{
		Name: "APP", Kind: cubicle.KindIsolated,
		Exports: []cubicle.ExportDecl{{Name: "main", Fn: func(e *cubicle.Env, a []uint64) []uint64 { return nil }}},
	}}})
}

func TestConsoleWrite(t *testing.T) {
	s := bootApp(t)
	err := s.RunAs("APP", func(e *cubicle.Env) {
		c := plat.NewClient(s.M, s.Cubs["APP"].ID)
		msg := e.HeapAlloc(64)
		e.Write(msg, []byte("hello from cubicle\n"))
		// The console path reads the app's buffer from PLAT's cubicle:
		// the buffer needs a window.
		wid := e.WindowInit()
		e.WindowAdd(wid, msg, 64)
		e.WindowOpen(wid, e.CubicleOf(plat.Name))
		c.ConsoleWrite(e, msg, 19)
	})
	if err != nil {
		t.Fatal(err)
	}
	if got := s.Plat.ConsoleOutput(); got != "hello from cubicle\n" {
		t.Errorf("console output %q", got)
	}
}

func TestConsoleWithoutWindowFaults(t *testing.T) {
	s := bootApp(t)
	err := s.RunAs("APP", func(e *cubicle.Env) {
		c := plat.NewClient(s.M, s.Cubs["APP"].ID)
		msg := e.HeapAlloc(64)
		e.Write(msg, []byte("x"))
		if fault := cubicle.Catch(func() { c.ConsoleWrite(e, msg, 1) }); fault == nil {
			t.Error("PLAT read the buffer without a window")
		}
	})
	if err != nil {
		t.Fatal(err)
	}
}

func TestHaltAndProbe(t *testing.T) {
	s := bootApp(t)
	err := s.RunAs("APP", func(e *cubicle.Env) {
		c := plat.NewClient(s.M, s.Cubs["APP"].ID)
		c.BootProbe(e)
		if s.Plat.Halted() {
			t.Error("halted before halt")
		}
		c.Halt(e)
	})
	if err != nil {
		t.Fatal(err)
	}
	if !s.Plat.Halted() {
		t.Error("halt did not latch")
	}
}
