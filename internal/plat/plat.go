// Package plat is the PLAT component: the platform glue of the Unikraft
// deployments (Figures 5 and 8) — console output, boot bookkeeping, and
// the halt hook. On real Unikraft this is the KVM/linuxu platform layer;
// here it fronts the simulator's host.
package plat

import (
	"bytes"

	"cubicleos/internal/cubicle"
	"cubicleos/internal/vm"
)

// Name of the component in deployments.
const Name = "PLAT"

// consoleWork models the per-call cost of the console output path.
const consoleWork = 150

// Module is the PLAT component state.
type Module struct {
	console bytes.Buffer
	halted  bool
	bootMsg string
}

// New creates the platform module.
func New() *Module { return &Module{} }

// ConsoleOutput returns everything written to the console so far.
func (p *Module) ConsoleOutput() string { return p.console.String() }

// Halted reports whether plat_halt was called.
func (p *Module) Halted() bool { return p.halted }

// Component returns the PLAT component for the builder.
func (p *Module) Component() *cubicle.Component {
	return &cubicle.Component{
		Name: Name,
		Kind: cubicle.KindIsolated,
		Exports: []cubicle.ExportDecl{
			{Name: "console_write", RegArgs: 2, Fn: func(e *cubicle.Env, args []uint64) []uint64 {
				e.Work(consoleWork)
				data := e.ReadBytes(vm.Addr(args[0]), args[1])
				p.console.Write(data)
				return []uint64{args[1]}
			}},
			{Name: "plat_halt", Fn: func(e *cubicle.Env, args []uint64) []uint64 {
				p.halted = true
				return nil
			}},
			{Name: "plat_boot_probe", Fn: func(e *cubicle.Env, args []uint64) []uint64 {
				// Boot-time platform probe (one call per boot, visible in
				// the Figure 8 call counts as the BOOT edge).
				e.Work(500)
				return []uint64{1}
			}},
		},
	}
}

// Client is typed access to PLAT from another cubicle.
type Client struct {
	write, halt, probe cubicle.Handle
}

// NewClient resolves PLAT's entry points for a caller cubicle.
func NewClient(m *cubicle.Monitor, caller cubicle.ID) *Client {
	return &Client{
		write: m.MustResolve(caller, Name, "console_write"),
		halt:  m.MustResolve(caller, Name, "plat_halt"),
		probe: m.MustResolve(caller, Name, "plat_boot_probe"),
	}
}

// ConsoleWrite writes n bytes at addr to the console.
func (c *Client) ConsoleWrite(e *cubicle.Env, addr vm.Addr, n uint64) {
	c.write.Call(e, uint64(addr), n)
}

// Halt stops the platform.
func (c *Client) Halt(e *cubicle.Env) { c.halt.Call(e) }

// BootProbe performs the boot-time platform probe.
func (c *Client) BootProbe(e *cubicle.Env) { c.probe.Call(e) }
