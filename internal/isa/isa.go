// Package isa models the object-code side of CubicleOS: component images
// with code and data sections, export symbol tables (the equivalent of
// Unikraft's exportsyms.uk), and the load-time binary scan of §5.4 that
// refuses to load code containing instructions which could undermine the
// isolation mechanisms — system calls and wrpkru.
//
// Component logic itself executes as Go functions in the simulator, but
// every component still carries synthetic code bytes so that the loader's
// integrity scan, the execute-only page policy, and the guard-page layout
// of §5.5 operate on real byte streams, including forbidden sequences that
// span page boundaries.
package isa

import (
	"fmt"
	"math/rand"
)

// Forbidden x86-64 instruction encodings the loader scans for (§5.4).
var (
	// OpWRPKRU is the encoding of the wrpkru instruction (0F 01 EF).
	OpWRPKRU = []byte{0x0F, 0x01, 0xEF}
	// OpSYSCALL is the encoding of the syscall instruction (0F 05).
	OpSYSCALL = []byte{0x0F, 0x05}
	// OpINT80 is the legacy int $0x80 system-call encoding (CD 80).
	OpINT80 = []byte{0xCD, 0x80}
	// OpNOP is a one-byte no-op used to pad guard pages so that entering
	// them anywhere but the first instruction faults into padding.
	OpNOP = byte(0x90)
	// OpJMP marks the relative jump placed in a guard page.
	OpJMP = byte(0xE9)
	// OpRET terminates synthetic function bodies.
	OpRET = byte(0xC3)
)

// forbidden lists all instruction encodings the loader rejects.
var forbidden = [][]byte{OpWRPKRU, OpSYSCALL, OpINT80}

// ScanResult reports a forbidden instruction found in a code stream.
type ScanResult struct {
	Offset int    // byte offset of the first byte of the instruction
	Name   string // mnemonic of the forbidden instruction
}

func (r ScanResult) String() string {
	return fmt.Sprintf("forbidden instruction %s at offset %#x", r.Name, r.Offset)
}

// nameOf returns the mnemonic for a forbidden encoding.
func nameOf(seq []byte) string {
	switch {
	case len(seq) == 3 && seq[0] == 0x0F && seq[1] == 0x01 && seq[2] == 0xEF:
		return "wrpkru"
	case len(seq) == 2 && seq[0] == 0x0F && seq[1] == 0x05:
		return "syscall"
	case len(seq) == 2 && seq[0] == 0xCD && seq[1] == 0x80:
		return "int 0x80"
	}
	return "unknown"
}

// Scan searches code for forbidden instruction encodings and returns every
// match. The scan is a plain byte-sequence search, exactly as the loader
// of the paper does it ("scans code pages for binary sequences containing
// system call or wrpkru instructions"), so sequences spanning page
// boundaries are found as long as the whole section is scanned at once.
func Scan(code []byte) []ScanResult {
	var out []ScanResult
	for i := 0; i < len(code); i++ {
		for _, seq := range forbidden {
			if i+len(seq) <= len(code) && match(code[i:], seq) {
				out = append(out, ScanResult{Offset: i, Name: nameOf(seq)})
			}
		}
	}
	return out
}

func match(b, seq []byte) bool {
	for i, c := range seq {
		if b[i] != c {
			return false
		}
	}
	return true
}

// Symbol is an entry in a component's export table: a named function at an
// offset within the image's code section.
type Symbol struct {
	Name string
	Off  uint64 // offset within the code section
	Size uint64 // size of the function body in bytes
}

// SectionKind distinguishes image sections.
type SectionKind uint8

// Section kinds found in a component image.
const (
	SecCode SectionKind = iota // execute-only after loading
	SecRodata
	SecData
)

func (k SectionKind) String() string {
	switch k {
	case SecCode:
		return ".text"
	case SecRodata:
		return ".rodata"
	case SecData:
		return ".data"
	}
	return fmt.Sprintf("SectionKind(%d)", uint8(k))
}

// Section is one loadable section of a component image.
type Section struct {
	Kind SectionKind
	Data []byte
}

// Image is a loadable component image: sections plus the export symbol
// table. It corresponds to one Unikraft component compiled as a dynamic
// library by the CubicleOS builder (§5.2).
type Image struct {
	Name     string
	Sections []Section
	Exports  []Symbol
}

// CodeSection returns the image's code section, or nil if it has none.
func (im *Image) CodeSection() *Section {
	for i := range im.Sections {
		if im.Sections[i].Kind == SecCode {
			return &im.Sections[i]
		}
	}
	return nil
}

// FindExport returns the export with the given name, or nil.
func (im *Image) FindExport(name string) *Symbol {
	for i := range im.Exports {
		if im.Exports[i].Name == name {
			return &im.Exports[i]
		}
	}
	return nil
}

// SynthOptions controls synthetic image generation.
type SynthOptions struct {
	// FuncSize is the size in bytes of each generated function body
	// (minimum 16). Zero selects a default of 96.
	FuncSize int
	// DataSize is the size of the generated .data section. Zero selects
	// one page worth of data.
	DataSize int
	// InjectForbidden, when non-empty, splices the given instruction
	// encoding into the middle of the code section; used by tests and the
	// isolation-demo example to exercise the loader's scan.
	InjectForbidden []byte
	// InjectAt places the injected sequence at this code offset; -1 (or
	// an out-of-range value) centres it.
	InjectAt int
	// Seed makes generation deterministic.
	Seed int64
}

// Synthesize builds a synthetic component image exporting the given
// function names. Function bodies are filler bytes guaranteed not to
// contain forbidden encodings (every emitted byte has the high nibble
// masked away from the 0x0F/0xCD escape values) terminated by a RET.
func Synthesize(name string, exports []string, opt SynthOptions) *Image {
	fs := opt.FuncSize
	if fs < 16 {
		fs = 96
	}
	ds := opt.DataSize
	if ds <= 0 {
		ds = 4096
	}
	rng := rand.New(rand.NewSource(opt.Seed ^ int64(len(name))*7919))
	code := make([]byte, 0, fs*len(exports))
	syms := make([]Symbol, 0, len(exports))
	for _, fn := range exports {
		off := uint64(len(code))
		body := make([]byte, fs)
		for i := range body {
			b := byte(rng.Intn(256))
			// Avoid the escape bytes that begin forbidden encodings so
			// the filler can never contain one by accident.
			if b == 0x0F || b == 0xCD {
				b = OpNOP
			}
			body[i] = b
		}
		body[fs-1] = OpRET
		code = append(code, body...)
		syms = append(syms, Symbol{Name: fn, Off: off, Size: uint64(fs)})
	}
	if len(opt.InjectForbidden) > 0 {
		at := opt.InjectAt
		if at < 0 || at+len(opt.InjectForbidden) > len(code) {
			at = len(code) / 2
		}
		copy(code[at:], opt.InjectForbidden)
	}
	data := make([]byte, ds)
	for i := range data {
		data[i] = byte(rng.Intn(256))
	}
	return &Image{
		Name: name,
		Sections: []Section{
			{Kind: SecCode, Data: code},
			{Kind: SecData, Data: data},
		},
		Exports: syms,
	}
}

// GuardPageSize is the size of a cross-cubicle call guard page (§5.5).
const GuardPageSize = 4096

// BuildGuardPage lays out a trampoline guard page: a wrpkru instruction
// enabling execution of the trampoline in the monitor's cubicle, a jump to
// the trampoline, then no-ops so that starting execution anywhere but the
// first instruction faults (§5.5). The wrpkru here is legitimate: guard
// pages are generated by the trusted loader, not scanned component code.
func BuildGuardPage(trampolineID uint32) []byte {
	page := make([]byte, GuardPageSize)
	n := copy(page, OpWRPKRU)
	page[n] = OpJMP
	n++
	for i := 0; i < 4; i++ {
		page[n] = byte(trampolineID >> (8 * i))
		n++
	}
	for ; n < GuardPageSize; n++ {
		page[n] = OpNOP
	}
	return page
}

// GuardEntryOK reports whether a control transfer into a guard page at the
// given offset is the intended entry point (offset 0). Any other offset
// lands in the nop slide or mid-instruction and must fault.
func GuardEntryOK(off uint64) bool { return off == 0 }
