package isa

import (
	"bytes"
	"testing"
	"testing/quick"
)

func TestScanFindsWRPKRU(t *testing.T) {
	code := append(append([]byte{0x90, 0x90}, OpWRPKRU...), 0xC3)
	hits := Scan(code)
	if len(hits) != 1 || hits[0].Offset != 2 || hits[0].Name != "wrpkru" {
		t.Fatalf("Scan = %v", hits)
	}
}

func TestScanFindsSyscallVariants(t *testing.T) {
	code := append([]byte{}, OpSYSCALL...)
	code = append(code, 0x90)
	code = append(code, OpINT80...)
	hits := Scan(code)
	if len(hits) != 2 {
		t.Fatalf("Scan found %d hits, want 2: %v", len(hits), hits)
	}
	if hits[0].Name != "syscall" || hits[1].Name != "int 0x80" {
		t.Errorf("Scan names = %q, %q", hits[0].Name, hits[1].Name)
	}
}

// TestScanAcrossPageBoundary plants a wrpkru so that its bytes span a
// 4096-byte page boundary; the loader scans whole sections so it must
// still be found.
func TestScanAcrossPageBoundary(t *testing.T) {
	code := make([]byte, 2*4096)
	copy(code[4095:], OpWRPKRU) // bytes at 4095, 4096, 4097
	hits := Scan(code)
	if len(hits) != 1 || hits[0].Offset != 4095 {
		t.Fatalf("Scan across page boundary = %v", hits)
	}
}

func TestScanCleanCode(t *testing.T) {
	code := bytes.Repeat([]byte{0x90, 0x48, 0x89, 0xE5}, 1024)
	if hits := Scan(code); len(hits) != 0 {
		t.Fatalf("clean code flagged: %v", hits)
	}
}

func TestScanEmptyAndShort(t *testing.T) {
	if hits := Scan(nil); hits != nil {
		t.Error("Scan(nil) returned hits")
	}
	if hits := Scan([]byte{0x0F}); hits != nil {
		t.Error("Scan of truncated escape byte returned hits")
	}
}

// TestScanNeverMisses: property — splicing a forbidden sequence at any
// offset of any clean byte stream is always detected.
func TestScanNeverMisses(t *testing.T) {
	f := func(raw []byte, off uint16, which uint8) bool {
		code := make([]byte, len(raw)+8)
		for i, b := range raw {
			if b == 0x0F || b == 0xCD {
				b = 0x90
			}
			code[i] = b
		}
		seq := [][]byte{OpWRPKRU, OpSYSCALL, OpINT80}[which%3]
		at := int(off) % (len(code) - len(seq) + 1)
		copy(code[at:], seq)
		for _, h := range Scan(code) {
			if h.Offset == at {
				return true
			}
		}
		return false
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestSynthesizeExports(t *testing.T) {
	im := Synthesize("vfs", []string{"vfs_open", "vfs_write"}, SynthOptions{})
	if im.Name != "vfs" {
		t.Errorf("image name %q", im.Name)
	}
	if im.FindExport("vfs_open") == nil || im.FindExport("vfs_write") == nil {
		t.Fatal("exports missing")
	}
	if im.FindExport("vfs_close") != nil {
		t.Error("undeclared export present")
	}
	code := im.CodeSection()
	if code == nil || len(code.Data) == 0 {
		t.Fatal("no code section")
	}
	for _, ex := range im.Exports {
		if code.Data[ex.Off+ex.Size-1] != OpRET {
			t.Errorf("function %s does not end in RET", ex.Name)
		}
	}
}

func TestSynthesizedCodeIsClean(t *testing.T) {
	for seed := int64(0); seed < 20; seed++ {
		im := Synthesize("c", []string{"a", "b", "c"}, SynthOptions{Seed: seed, FuncSize: 256})
		if hits := Scan(im.CodeSection().Data); len(hits) != 0 {
			t.Fatalf("seed %d: synthesized code contains forbidden sequence %v", seed, hits)
		}
	}
}

func TestSynthesizeInjectForbidden(t *testing.T) {
	im := Synthesize("evil", []string{"f"}, SynthOptions{InjectForbidden: OpWRPKRU, InjectAt: -1})
	hits := Scan(im.CodeSection().Data)
	if len(hits) == 0 {
		t.Fatal("injected wrpkru not found by scan")
	}
	if hits[0].Name != "wrpkru" {
		t.Errorf("hit name %q", hits[0].Name)
	}
}

func TestSynthesizeDeterministic(t *testing.T) {
	a := Synthesize("x", []string{"f", "g"}, SynthOptions{Seed: 42})
	b := Synthesize("x", []string{"f", "g"}, SynthOptions{Seed: 42})
	if !bytes.Equal(a.CodeSection().Data, b.CodeSection().Data) {
		t.Error("same seed produced different code")
	}
}

func TestBuildGuardPage(t *testing.T) {
	page := BuildGuardPage(0xDEADBEEF)
	if len(page) != GuardPageSize {
		t.Fatalf("guard page size %d", len(page))
	}
	if !bytes.HasPrefix(page, OpWRPKRU) {
		t.Error("guard page does not start with wrpkru")
	}
	if page[3] != OpJMP {
		t.Error("guard page missing jump after wrpkru")
	}
	id := uint32(page[4]) | uint32(page[5])<<8 | uint32(page[6])<<16 | uint32(page[7])<<24
	if id != 0xDEADBEEF {
		t.Errorf("guard page jump target %#x", id)
	}
	for i := 8; i < GuardPageSize; i++ {
		if page[i] != OpNOP {
			t.Fatalf("guard page byte %d is %#x, want NOP", i, page[i])
		}
	}
}

func TestGuardEntryOK(t *testing.T) {
	if !GuardEntryOK(0) {
		t.Error("entry at offset 0 rejected")
	}
	for _, off := range []uint64{1, 2, 3, 8, 4095} {
		if GuardEntryOK(off) {
			t.Errorf("entry at offset %d accepted", off)
		}
	}
}

func TestSectionKindString(t *testing.T) {
	if SecCode.String() != ".text" || SecRodata.String() != ".rodata" || SecData.String() != ".data" {
		t.Error("SectionKind.String mismatch")
	}
}
