package cycles

import (
	"sync"
	"testing"
)

// TestMachineBarrierIsMaxOverCores pins the GVT rule: global virtual time
// at a barrier is the maximum over the per-core clocks.
func TestMachineBarrierIsMaxOverCores(t *testing.T) {
	m := NewMachine(4)
	m.Core(0).Charge(100)
	m.Core(1).Charge(700)
	m.Core(2).Charge(300)
	if got := m.Barrier(); got != 700 {
		t.Fatalf("Barrier() = %d, want 700 (max over cores)", got)
	}
	if got := m.GVT(); got != 700 {
		t.Fatalf("GVT() = %d, want 700", got)
	}
	m.Core(3).Charge(650) // still behind core 1
	if got := m.Barrier(); got != 700 {
		t.Fatalf("Barrier() = %d, want 700 (no core passed the old GVT)", got)
	}
	m.Core(0).Charge(1000)
	if got := m.Barrier(); got != 1100 {
		t.Fatalf("Barrier() = %d, want 1100", got)
	}
	if got := m.Barriers(); got != 3 {
		t.Fatalf("Barriers() = %d, want 3", got)
	}
}

// TestMachineGVTMonotone is the clock-monotonicity property test: per-core
// clocks never regress between barriers (they only ever Charge/AdvanceTo),
// and GVT is monotone across barriers even if a core's clock is reset.
func TestMachineGVTMonotone(t *testing.T) {
	m := NewMachine(3)
	var last uint64
	charges := []struct {
		core int
		n    uint64
	}{{0, 10}, {1, 500}, {2, 50}, {0, 900}, {1, 1}, {2, 2000}, {0, 3}}
	for i, ch := range charges {
		before := m.Core(ch.core).Cycles()
		m.Core(ch.core).Charge(ch.n)
		if after := m.Core(ch.core).Cycles(); after < before {
			t.Fatalf("step %d: core %d clock regressed %d -> %d", i, ch.core, before, after)
		}
		g := m.Barrier()
		if g < last {
			t.Fatalf("step %d: GVT regressed %d -> %d", i, last, g)
		}
		last = g
	}
	// A reset core must not drag global time backwards.
	m.Core(2).Reset()
	if g := m.Barrier(); g < last {
		t.Fatalf("GVT regressed after core reset: %d -> %d", last, g)
	}
}

// TestMachineDeterministicAcrossRuns runs the same per-core charge
// schedule on worker goroutines five times and requires the identical GVT
// sequence every run: between barriers each core touches only its own
// clock, so host scheduling cannot perturb virtual time.
func TestMachineDeterministicAcrossRuns(t *testing.T) {
	run := func() []uint64 {
		m := NewMachine(4)
		var gvts []uint64
		for quantum := 0; quantum < 8; quantum++ {
			var wg sync.WaitGroup
			for core := 0; core < m.NumCores(); core++ {
				wg.Add(1)
				go func(core int) {
					defer wg.Done()
					c := m.Core(core)
					for i := 0; i < 100; i++ {
						c.Charge(uint64(1 + (core+i*7)%13))
					}
				}(core)
			}
			wg.Wait()
			gvts = append(gvts, m.Barrier())
		}
		return gvts
	}
	want := run()
	for r := 1; r < 5; r++ {
		got := run()
		for i := range want {
			if got[i] != want[i] {
				t.Fatalf("run %d: GVT[%d] = %d, want %d", r, i, got[i], want[i])
			}
		}
	}
}

// TestMachineOverAdoptsClocks checks that MachineOver shares, not copies,
// the adopted clocks.
func TestMachineOverAdoptsClocks(t *testing.T) {
	a, b := &Clock{}, &Clock{}
	m := MachineOver(a, b)
	a.Charge(42)
	b.Charge(7)
	if got := m.Barrier(); got != 42 {
		t.Fatalf("Barrier() = %d, want 42", got)
	}
	if m.Core(0) != a || m.Core(1) != b {
		t.Fatal("MachineOver did not adopt the given clocks")
	}
}
