// Package cycles provides the virtual cycle clock and the cost model used
// by the CubicleOS simulator.
//
// The reproduction cannot run on real Intel MPK hardware (the Go runtime
// owns the process address space), so every architectural event — a wrpkru
// execution, a page retag through the host kernel, a protection trap, an
// IPC message — is charged a cycle cost on a virtual clock instead of being
// timed on silicon. The per-event costs come from the paper and the
// literature it cites (libmpk, ERIM): wrpkru ≈ 20 cycles, pkey_mprotect
// ≈ 1,100 cycles on Skylake-class hardware. Virtual cycles convert to
// seconds at the paper's 2.20 GHz (Intel Xeon Silver 4210).
package cycles

import (
	"sync/atomic"
	"time"
)

// FrequencyHz is the clock frequency of the paper's evaluation machine,
// an Intel Xeon Silver 4210 at 2.20 GHz.
const FrequencyHz = 2_200_000_000

// Clock accumulates virtual cycles. A clock has exactly one writer at any
// time — the boot thread of a single-core System, or the worker goroutine
// driving one core of a Machine — so advances need no compare-and-swap;
// the writer publishes each new value with an atomic store and cross-core
// observers (GVT computation, quarantine deadlines, the monitor's smpNow)
// read it with an atomic load. The single-writer discipline keeps the
// plain read-modify in Charge safe: nobody else ever stores.
type Clock struct {
	cycles uint64 // atomic: single writer, many readers
	// workNum/workDen scale modelled-compute charges (ChargeWork) to
	// represent implementation efficiency differences between runtimes
	// (e.g. Unikraft 0.4 vs native Linux). Architectural-event charges
	// (Charge) are never scaled — traps and wrpkru cost what the
	// hardware costs regardless of who runs on top.
	workNum, workDen uint64
	// onAdvance, when set, observes every clock advance with the new
	// cycle count. The tracing layer uses it to drive the virtual-clock
	// sampling profiler; when unset the cost is one nil check per charge.
	onAdvance func(now uint64)
}

// Charge adds n cycles to the clock (architectural events; unscaled).
func (c *Clock) Charge(n uint64) {
	now := c.cycles + n
	atomic.StoreUint64(&c.cycles, now)
	if c.onAdvance != nil {
		c.onAdvance(now)
	}
}

// ChargeWork adds n cycles of modelled compute, scaled by the work-scale
// factor.
func (c *Clock) ChargeWork(n uint64) {
	if c.workDen != 0 {
		n = n * c.workNum / c.workDen
	}
	now := c.cycles + n
	atomic.StoreUint64(&c.cycles, now)
	if c.onAdvance != nil {
		c.onAdvance(now)
	}
}

// SetOnAdvance installs (or with nil removes) the clock-advance observer.
func (c *Clock) SetOnAdvance(fn func(now uint64)) { c.onAdvance = fn }

// SetWorkScale sets the modelled-compute scale factor (1.0 = native).
func (c *Clock) SetWorkScale(f float64) {
	c.workNum = uint64(f * 1000)
	c.workDen = 1000
}

// Cycles returns the number of cycles charged so far. Safe to call from
// any goroutine; the owning core sees its own advances, remote observers
// see a value no newer than the clock's latest published store.
func (c *Clock) Cycles() uint64 { return atomic.LoadUint64(&c.cycles) }

// AdvanceTo moves the clock forward to target if it is behind it. Open-loop
// load generation uses it to model idle wall-clock time between scheduled
// arrivals; the clock never moves backwards.
func (c *Clock) AdvanceTo(target uint64) {
	if target <= c.cycles {
		return
	}
	c.Charge(target - c.cycles)
}

// Reset sets the clock back to zero.
func (c *Clock) Reset() { atomic.StoreUint64(&c.cycles, 0) }

// Duration converts the accumulated cycles to wall-clock time at
// FrequencyHz.
func (c *Clock) Duration() time.Duration {
	return Duration(c.Cycles())
}

// Duration converts a cycle count to wall-clock time at FrequencyHz.
func Duration(cycles uint64) time.Duration {
	secs := float64(cycles) / float64(FrequencyHz)
	return time.Duration(secs * float64(time.Second))
}

// Costs is the cost-model table: virtual cycles charged per architectural
// event. The zero value is unusable; start from DefaultCosts.
type Costs struct {
	// WRPKRU is the cost of one wrpkru instruction (user-level PKRU
	// write). The paper cites ~20 cycles (libmpk, USENIX ATC'19).
	WRPKRU uint64
	// PkeyMprotect is the cost of retagging a page's protection key via
	// the host kernel (pkey_mprotect). The paper cites >1,100 cycles.
	PkeyMprotect uint64
	// TrapEntry is the cost of delivering a protection fault to the
	// monitor's trap handler and returning: CubicleOS runs on a host
	// Linux kernel, so a fault is a SIGSEGV round trip (~3 us: kernel
	// fault path, signal frame setup, handler, sigreturn).
	TrapEntry uint64
	// PageMetaLookup is the O(1) lookup of the page metadata map that
	// identifies the owning cubicle and window-descriptor array (§5.3).
	PageMetaLookup uint64
	// WindowSearchEntry is the per-entry cost of the linear search over
	// a cubicle's window-descriptor array (§5.3 step ❸).
	WindowSearchEntry uint64
	// WindowOp is the cost of one window-management API call
	// (init/add/remove/open/close): a cross-cubicle call into the
	// trusted monitor plus descriptor bookkeeping.
	WindowOp uint64
	// TrampolineBase is the fixed cost of a cross-cubicle call trampoline
	// excluding the two wrpkru executions: guard-page entry, stack
	// switch, register spill/restore, and the wrpkru pipeline
	// serialisation and cache/TLB pollution it drags in (§5.5). Paper:
	// trampolines alone add ~2% on cache-friendly SQLite queries.
	TrampolineBase uint64
	// StackArgByte is the per-byte cost of copying in-stack arguments
	// across per-cubicle stacks inside a trampoline.
	StackArgByte uint64
	// CopyByte is the per-byte cost of a memcpy-style bulk copy
	// (roughly 16 B/cycle streaming on Skylake, expressed as cycles
	// per byte scaled by 16 in charge sites; kept ≥1 granularity by
	// charging per 16-byte chunk).
	CopyChunk16 uint64
	// SyscallLinux is the kernel entry/exit cost of one host-Linux
	// system call (the paper's Linux baseline).
	SyscallLinux uint64
	// Alloca is the cost of a stack-buffer allocation in component code.
	Alloca uint64
	// ShootdownIPI is the per-remote-core cost of synchronising a page
	// retag on a multi-core machine. libmpk (USENIX ATC'19) measures that
	// a safe mpk_mprotect must synchronise the key state of every other
	// thread — an IPI-like round trip per core, on the order of a few
	// thousand cycles — before the retag may take effect. A retag on an
	// n-core deployment charges ShootdownIPI*(n-1) on top of PkeyMprotect;
	// single-core runs charge nothing, keeping their figures byte-identical
	// to the pre-SMP cost model.
	ShootdownIPI uint64
}

// DefaultCosts returns the cost table used for all experiments. The values
// are taken from the paper's citations where available and otherwise set to
// Skylake-class figures; EXPERIMENTS.md records the calibration.
func DefaultCosts() Costs {
	return Costs{
		WRPKRU:            20,
		PkeyMprotect:      1100,
		TrapEntry:         7500,
		PageMetaLookup:    30,
		WindowSearchEntry: 8,
		WindowOp:          600,
		TrampolineBase:    260,
		StackArgByte:      1,
		CopyChunk16:       1,
		SyscallLinux:      700,
		Alloca:            4,
		ShootdownIPI:      2500,
	}
}
