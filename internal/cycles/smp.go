package cycles

// Machine is the multi-core view of virtual time: one Clock per simulated
// core, advanced independently between synchronisation points, plus the
// global-virtual-time (GVT) rule that makes multi-core figures
// deterministic.
//
// The rule is the quantum barrier: cores run private work — charging only
// their own clock — for one scheduling quantum, then all of them reach a
// barrier, and global time is defined as the maximum over the per-core
// clocks at that point. Because no core reads another core's clock between
// barriers, the interleaving of host goroutines cannot leak into virtual
// time: for a fixed seed and core count the per-core cycle sequences, and
// therefore every GVT sample, are identical run to run.
//
// Concurrency contract: Clock itself stays unsynchronised (each core's
// clock has exactly one writer — the worker driving that core). Barrier,
// GVT and the accessors must only be called from the coordinating
// goroutine while all workers are quiescent (e.g. after the scheduler's
// quantum WaitGroup join), which is precisely when a barrier is defined.
type Machine struct {
	clocks []*Clock
	gvt    uint64
	// barriers counts Barrier calls (observability; the uksched quantum
	// counter and this must agree when the scheduler drives the machine).
	barriers uint64
}

// NewMachine creates a machine with n fresh per-core clocks (n >= 1).
func NewMachine(n int) *Machine {
	if n < 1 {
		n = 1
	}
	clocks := make([]*Clock, n)
	for i := range clocks {
		clocks[i] = &Clock{}
	}
	return &Machine{clocks: clocks}
}

// MachineOver adopts existing clocks as the machine's cores, one core per
// clock. The sharded siege driver uses it to treat the boot clock of each
// per-core system shard as that core's clock.
func MachineOver(clocks ...*Clock) *Machine {
	m := &Machine{clocks: make([]*Clock, len(clocks))}
	copy(m.clocks, clocks)
	if len(m.clocks) == 0 {
		m.clocks = []*Clock{{}}
	}
	return m
}

// NumCores returns the number of cores.
func (m *Machine) NumCores() int { return len(m.clocks) }

// Core returns core i's clock.
func (m *Machine) Core(i int) *Clock { return m.clocks[i] }

// Barrier is the quantum barrier: it recomputes global virtual time as
// the maximum over the per-core clocks and returns it. GVT is clamped
// monotone — a Clock.Reset on one core can never move global time
// backwards, which is the property the monotonicity tests pin down.
func (m *Machine) Barrier() uint64 {
	m.barriers++
	max := m.gvt
	for _, c := range m.clocks {
		if v := c.Cycles(); v > max {
			max = v
		}
	}
	m.gvt = max
	return max
}

// GVT returns global virtual time as of the last barrier (0 before the
// first one).
func (m *Machine) GVT() uint64 { return m.gvt }

// Barriers returns how many quantum barriers have been taken.
func (m *Machine) Barriers() uint64 { return m.barriers }
