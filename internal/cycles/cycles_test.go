package cycles

import (
	"testing"
	"testing/quick"
	"time"
)

func TestChargeAccumulates(t *testing.T) {
	var c Clock
	c.Charge(100)
	c.Charge(250)
	if c.Cycles() != 350 {
		t.Errorf("Cycles = %d", c.Cycles())
	}
	c.Reset()
	if c.Cycles() != 0 {
		t.Error("Reset did not zero the clock")
	}
}

func TestDurationConversion(t *testing.T) {
	// 2.2e9 cycles at 2.2 GHz is exactly one second.
	if d := Duration(FrequencyHz); d != time.Second {
		t.Errorf("Duration(1s of cycles) = %v", d)
	}
	if d := Duration(2_200_000); d != time.Millisecond {
		t.Errorf("Duration(1ms of cycles) = %v", d)
	}
	var c Clock
	c.Charge(2_200)
	if d := c.Duration(); d != time.Microsecond {
		t.Errorf("Clock.Duration = %v", d)
	}
}

func TestWorkScale(t *testing.T) {
	var c Clock
	c.ChargeWork(1000) // unscaled by default
	if c.Cycles() != 1000 {
		t.Errorf("unscaled ChargeWork = %d", c.Cycles())
	}
	c.Reset()
	c.SetWorkScale(2.6)
	c.ChargeWork(1000)
	if c.Cycles() != 2600 {
		t.Errorf("scaled ChargeWork = %d", c.Cycles())
	}
	// Architectural charges never scale.
	c.Charge(100)
	if c.Cycles() != 2700 {
		t.Errorf("Charge scaled: %d", c.Cycles())
	}
}

// TestChargeLinear: charging in pieces equals charging at once.
func TestChargeLinear(t *testing.T) {
	f := func(parts []uint16) bool {
		var a, b Clock
		var sum uint64
		for _, p := range parts {
			a.Charge(uint64(p))
			sum += uint64(p)
		}
		b.Charge(sum)
		return a.Cycles() == b.Cycles()
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestDefaultCostsSane(t *testing.T) {
	c := DefaultCosts()
	// Invariants from the literature the paper cites: wrpkru is cheap,
	// kernel retags cost >1,100 cycles, traps dominate everything.
	if c.WRPKRU != 20 {
		t.Errorf("WRPKRU = %d, the paper cites ~20 cycles", c.WRPKRU)
	}
	if c.PkeyMprotect < 1100 {
		t.Errorf("PkeyMprotect = %d, the paper cites >1,100 cycles", c.PkeyMprotect)
	}
	if c.TrapEntry <= c.PkeyMprotect {
		t.Error("a SIGSEGV round trip must cost more than a pkey_mprotect")
	}
	if c.TrampolineBase >= c.TrapEntry {
		t.Error("a trampoline must be far cheaper than a trap (the design's whole point)")
	}
	if c.WindowOp >= c.TrapEntry {
		t.Error("window management must be cheaper than taking a fault")
	}
}
