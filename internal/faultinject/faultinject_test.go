package faultinject

import (
	"testing"

	"cubicleos/internal/cubicle"
)

func drive(j *Injector, n int, name string) []cubicle.InjectKind {
	out := make([]cubicle.InjectKind, n)
	for i := range out {
		out[i] = j.AtCrossing(0, name, "sym")
	}
	return out
}

func TestSameSeedSameSchedule(t *testing.T) {
	cfg := Config{Seed: 42, ProtAtCrossing: 0.1, CFIAtCrossing: 0.05,
		BudgetAtCrossing: 0.05, LeakAtCrossing: 0.05}
	a, b := New(cfg), New(cfg)
	a.Arm()
	b.Arm()
	ka, kb := drive(a, 5000, "RAMFS"), drive(b, 5000, "RAMFS")
	for i := range ka {
		if ka[i] != kb[i] {
			t.Fatalf("schedules diverge at decision %d: %v vs %v", i, ka[i], kb[i])
		}
	}
	if a.Fired == 0 {
		t.Fatal("nothing fired over 5000 decisions at 25% total probability")
	}
	cfg.Seed = 43
	c := New(cfg)
	c.Arm()
	kc := drive(c, 5000, "RAMFS")
	same := 0
	for i := range ka {
		if ka[i] == kc[i] {
			same++
		}
	}
	if same == len(ka) {
		t.Fatal("different seeds produced identical schedules")
	}
}

func TestCrossingLadderFrequencies(t *testing.T) {
	j := New(Config{Seed: 7, ProtAtCrossing: 0.1, CFIAtCrossing: 0.1,
		BudgetAtCrossing: 0.1, LeakAtCrossing: 0.1})
	j.Arm()
	const n = 40_000
	counts := map[cubicle.InjectKind]int{}
	for _, k := range drive(j, n, "X") {
		counts[k]++
	}
	for _, k := range []cubicle.InjectKind{cubicle.InjectProt, cubicle.InjectCFI,
		cubicle.InjectBudget, cubicle.InjectLeak} {
		got := counts[k]
		if got < n/10-n/50 || got > n/10+n/50 {
			t.Errorf("kind %d fired %d of %d times, want ~%d", k, got, n, n/10)
		}
	}
	if counts[cubicle.InjectNone] < n/2 {
		t.Errorf("none-rate %d of %d, want ~%d", counts[cubicle.InjectNone], n, n*6/10)
	}
	if j.Crossings != n {
		t.Errorf("Crossings = %d, want %d", j.Crossings, n)
	}
	if int(j.Fired) != n-counts[cubicle.InjectNone] {
		t.Errorf("Fired = %d, inconsistent with decisions", j.Fired)
	}
}

func TestDisarmedAndZeroConfigNeverFire(t *testing.T) {
	j := New(Config{Seed: 1, ProtAtCrossing: 1.0}) // not armed
	for _, k := range drive(j, 100, "X") {
		if k != cubicle.InjectNone {
			t.Fatal("disarmed injector fired")
		}
	}
	if j.Crossings != 0 {
		t.Errorf("disarmed injector consumed %d draws", j.Crossings)
	}
	z := New(Config{Seed: 1}) // armed, all probabilities zero
	z.Arm()
	for i := 0; i < 100; i++ {
		if z.AtCrossing(0, "X", "s") != cubicle.InjectNone ||
			z.AtWindowOp(0, "X", "op") != cubicle.InjectNone ||
			z.AtRetag(0, "X") != cubicle.InjectNone {
			t.Fatal("zero-probability injector fired")
		}
	}
	if z.Fired != 0 {
		t.Errorf("Fired = %d with zero probabilities", z.Fired)
	}
}

// TestTargetFilterDoesNotShiftStream: decisions for the targeted cubicle
// must be identical whether or not untargeted crossings are interleaved.
func TestTargetFilterDoesNotShiftStream(t *testing.T) {
	cfg := Config{Seed: 99, Target: "RAMFS", ProtAtCrossing: 0.2}
	pure, mixed := New(cfg), New(cfg)
	pure.Arm()
	mixed.Arm()
	want := drive(pure, 1000, "RAMFS")
	var got []cubicle.InjectKind
	for i := 0; i < 1000; i++ {
		if k := mixed.AtCrossing(0, "LWIP", "s"); k != cubicle.InjectNone {
			t.Fatal("injected into a cubicle outside the target filter")
		}
		got = append(got, mixed.AtCrossing(0, "RAMFS", "s"))
	}
	for i := range want {
		if want[i] != got[i] {
			t.Fatalf("interleaved untargeted crossings shifted the stream at %d", i)
		}
	}
}

// TestDisarmPreservesStreamPosition: provisioning pauses (Disarm/Arm) must
// not consume draws, so the post-pause schedule continues where it left off.
func TestDisarmPreservesStreamPosition(t *testing.T) {
	cfg := Config{Seed: 5, ProtAtCrossing: 0.3}
	ref, paused := New(cfg), New(cfg)
	ref.Arm()
	paused.Arm()
	want := drive(ref, 200, "X")
	got := drive(paused, 100, "X")
	paused.Disarm()
	drive(paused, 57, "X") // ignored, consumes nothing
	paused.Arm()
	got = append(got, drive(paused, 100, "X")...)
	for i := range want {
		if want[i] != got[i] {
			t.Fatalf("pause shifted the stream at decision %d", i)
		}
	}
}

func TestWindowOpAndRetagSites(t *testing.T) {
	j := New(Config{Seed: 11, ProtAtWindowOp: 0.5, ProtAtRetag: 0.5})
	j.Arm()
	firedW, firedR := 0, 0
	for i := 0; i < 1000; i++ {
		if j.AtWindowOp(0, "X", "window_open") == cubicle.InjectProt {
			firedW++
		}
		if j.AtRetag(0, "X") == cubicle.InjectProt {
			firedR++
		}
	}
	if firedW < 400 || firedW > 600 {
		t.Errorf("window-op fires = %d of 1000 at p=0.5", firedW)
	}
	if firedR < 400 || firedR > 600 {
		t.Errorf("retag fires = %d of 1000 at p=0.5", firedR)
	}
	if j.WindowOps != 1000 || j.Retags != 1000 {
		t.Errorf("site counters = %d/%d, want 1000/1000", j.WindowOps, j.Retags)
	}
}

// TestWireDropScheduleDeterministic: the wire-drop site must produce the
// same drop schedule for the same seed, and its per-key stream must be
// independent of the crossing streams — interleaving crossing decisions
// (whose count varies with workload timing) must not shift which frames
// are lost.
func TestWireDropScheduleDeterministic(t *testing.T) {
	cfg := Config{Seed: 42, DropAtWire: 0.1, ProtAtCrossing: 0.1}
	wire := func(j *Injector, n, key int) []bool {
		out := make([]bool, n)
		for i := range out {
			out[i] = j.AtWire(key)
		}
		return out
	}
	a, b := New(cfg), New(cfg)
	a.Arm()
	b.Arm()
	want := wire(a, 5000, 0)
	// Same seed, but crossing draws interleaved between wire draws.
	got := make([]bool, 0, 5000)
	for i := 0; i < 5000; i++ {
		if i%3 == 0 {
			b.AtCrossing(0, "RAMFS", "sym")
		}
		got = append(got, b.AtWire(0))
	}
	for i := range want {
		if want[i] != got[i] {
			t.Fatalf("crossing draws shifted the wire schedule at frame %d", i)
		}
	}
	if a.WireDraws != 5000 || a.Fired == 0 {
		t.Fatalf("WireDraws=%d Fired=%d over 5000 frames at p=0.1", a.WireDraws, a.Fired)
	}
	// Different backend keys get independent schedules.
	c := New(cfg)
	c.Arm()
	other := wire(c, 5000, 1)
	same := 0
	for i := range want {
		if want[i] == other[i] {
			same++
		}
	}
	if same == len(want) {
		t.Fatal("backend keys 0 and 1 produced identical drop schedules")
	}
	// Disarmed or unconfigured sites consume no draw.
	d := New(Config{Seed: 42})
	d.Arm()
	if d.AtWire(0) || d.WireDraws != 0 {
		t.Fatal("wire site drew with DropAtWire unset")
	}
}

// TestRouteChaosLadder: the per-route kill/slow ladder fires at roughly
// the configured rates, deterministically per backend key.
func TestRouteChaosLadder(t *testing.T) {
	cfg := Config{Seed: 9, KillAtRoute: 0.05, SlowAtRoute: 0.15}
	j, k := New(cfg), New(cfg)
	j.Arm()
	k.Arm()
	kills, slows := 0, 0
	for i := 0; i < 10000; i++ {
		d := j.AtRoute(2)
		if d != k.AtRoute(2) {
			t.Fatalf("route schedules diverge at decision %d", i)
		}
		switch d {
		case RouteKill:
			kills++
		case RouteSlow:
			slows++
		}
	}
	if kills < 350 || kills > 650 {
		t.Errorf("kills = %d of 10000 at p=0.05", kills)
	}
	if slows < 1200 || slows > 1800 {
		t.Errorf("slows = %d of 10000 at p=0.15", slows)
	}
	if j.Routes != 10000 {
		t.Errorf("route draws = %d, want 10000", j.Routes)
	}
}
