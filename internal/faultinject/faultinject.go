// Package faultinject provides deterministic, seeded fault injection for
// the cubicle runtime. An Injector implements cubicle.Injector: at each
// of the monitor's injection sites (crossing entry, window-management
// calls, trap-and-map retags) it draws one number from a splitmix64
// stream and compares it against the configured per-site probabilities.
// With a fixed seed and a deterministic workload, the exact sequence of
// injected faults is reproducible run to run — which is what lets the
// chaos siege test and the -chaos-seed CLI smoke assert hard invariants
// over a randomised failure schedule.
package faultinject

import (
	"strings"
	"sync"

	"cubicleos/internal/cubicle"
)

// Config selects the injection sites, their probabilities (each in
// [0, 1]) and the target filter. The crossing-site probabilities form a
// cumulative ladder over one draw, so their sum must stay ≤ 1.
type Config struct {
	// Seed initialises the PRNG stream.
	Seed uint64
	// Target restricts injection to cubicles whose name starts with this
	// prefix; empty targets every cubicle.
	Target string

	// Probabilities at cross-cubicle call entry.
	ProtAtCrossing   float64
	CFIAtCrossing    float64
	BudgetAtCrossing float64
	LeakAtCrossing   float64
	// Probability of a protection fault per window-management API call.
	ProtAtWindowOp float64
	// Probability of a protection fault per trap-and-map retag.
	ProtAtRetag float64

	// DropAtWire is the probability that a frame crossing the NETDEV wire
	// is lost in flight (consulted per frame, both directions — see
	// netdev.Wire.SetDropper). The Target filter does not apply: the wire
	// is hardware, not a cubicle.
	DropAtWire float64
	// KillAtRoute / SlowAtRoute are cluster failover sites, consulted by
	// the balancer per routing decision against the chosen backend: Kill
	// quarantines the backend's target cubicle (whole-backend crash from
	// the balancer's point of view), Slow degrades its compute for a
	// window. One draw decides via a cumulative ladder, so their sum must
	// stay ≤ 1.
	KillAtRoute float64
	SlowAtRoute float64
}

// RouteChaos is the decision of the per-route cluster site.
type RouteChaos uint8

const (
	// RouteNone fires nothing.
	RouteNone RouteChaos = iota
	// RouteKill crashes the routed-to backend (its target cubicle is
	// quarantined through the standard supervision ladder).
	RouteKill
	// RouteSlow degrades the routed-to backend's compute for a window.
	RouteSlow
)

// Injector is a deterministic cubicle.Injector. It starts disarmed so
// that boot wiring and provisioning run fault-free; call Arm when the
// workload under test begins. All methods are safe for concurrent use:
// SMP monitors consult the injector from worker goroutines (under the
// monitor lock, but injectors may be shared across monitors).
//
// Each simulated core draws from its own splitmix64 stream, seeded as
// Seed ⊕ mix64(core). Decisions on one core therefore never shift the
// stream of another — the property that makes chaos schedules
// reproducible when cores interleave nondeterministically in wall-clock
// time — and mix64(0) == 0, so core 0 reproduces the single-core stream
// bit for bit.
type Injector struct {
	mu     sync.Mutex
	cfg    Config
	states map[int]uint64
	armed  bool

	// Site counters: decisions drawn and injections fired, exposed for
	// tests and tooling.
	Crossings uint64
	WindowOps uint64
	Retags    uint64
	WireDraws uint64
	Routes    uint64
	Fired     uint64
}

// Stream-key bases for the non-crossing decision streams. Each site
// family draws from its own splitmix64 stream per key, offset far from
// any plausible core number, so wire and route decisions never shift the
// crossing streams (and vice versa) — chaos schedules stay reproducible
// when the sites interleave differently run to run.
const (
	wireKeyBase  = 1 << 20
	routeKeyBase = 2 << 20
)

// New returns a disarmed injector for the given config.
func New(cfg Config) *Injector {
	return &Injector{cfg: cfg, states: make(map[int]uint64)}
}

// mix64 is the splitmix64 output permutation, used to derive per-core
// stream seeds. mix64(0) == 0 by construction.
func mix64(z uint64) uint64 {
	z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9
	z = (z ^ (z >> 27)) * 0x94d049bb133111eb
	return z ^ (z >> 31)
}

// Arm enables injection.
func (j *Injector) Arm() {
	j.mu.Lock()
	j.armed = true
	j.mu.Unlock()
}

// Disarm disables injection without disturbing the PRNG stream position.
func (j *Injector) Disarm() {
	j.mu.Lock()
	j.armed = false
	j.mu.Unlock()
}

// Armed reports whether injection is enabled.
func (j *Injector) Armed() bool {
	j.mu.Lock()
	defer j.mu.Unlock()
	return j.armed
}

// next advances core's splitmix64 stream, creating it on first use.
func (j *Injector) next(core int) uint64 {
	st, ok := j.states[core]
	if !ok {
		st = (j.cfg.Seed ^ 0x9e3779b97f4a7c15) ^ mix64(uint64(core))
	}
	st += 0x9e3779b97f4a7c15
	j.states[core] = st
	return mix64(st)
}

// draw returns a uniform float64 in [0, 1) from core's stream.
func (j *Injector) draw(core int) float64 {
	return float64(j.next(core)>>11) / (1 << 53)
}

func (j *Injector) match(name string) bool {
	return j.cfg.Target == "" || strings.HasPrefix(name, j.cfg.Target)
}

// AtCrossing implements cubicle.Injector. One draw decides among the four
// crossing fault kinds via a cumulative probability ladder; sites that do
// not match the target filter consume no draw, so narrowing the target
// does not shift the decision stream of the targeted cubicle.
func (j *Injector) AtCrossing(core int, callee, symbol string) cubicle.InjectKind {
	j.mu.Lock()
	defer j.mu.Unlock()
	if !j.armed || !j.match(callee) {
		return cubicle.InjectNone
	}
	j.Crossings++
	u := j.draw(core)
	p := j.cfg.ProtAtCrossing
	if u < p {
		j.Fired++
		return cubicle.InjectProt
	}
	p += j.cfg.CFIAtCrossing
	if u < p {
		j.Fired++
		return cubicle.InjectCFI
	}
	p += j.cfg.BudgetAtCrossing
	if u < p {
		j.Fired++
		return cubicle.InjectBudget
	}
	p += j.cfg.LeakAtCrossing
	if u < p {
		j.Fired++
		return cubicle.InjectLeak
	}
	return cubicle.InjectNone
}

// AtWindowOp implements cubicle.Injector.
func (j *Injector) AtWindowOp(core int, owner, op string) cubicle.InjectKind {
	j.mu.Lock()
	defer j.mu.Unlock()
	if !j.armed || !j.match(owner) || j.cfg.ProtAtWindowOp <= 0 {
		return cubicle.InjectNone
	}
	j.WindowOps++
	if j.draw(core) < j.cfg.ProtAtWindowOp {
		j.Fired++
		return cubicle.InjectProt
	}
	return cubicle.InjectNone
}

// AtWire decides whether one frame crossing the NETDEV wire is lost in
// flight. key identifies the wire's decision stream — the backend index
// in a cluster, 0 for a standalone system — so each backend's drop
// schedule is independent of the others' traffic. Consumes no draw while
// disarmed or with DropAtWire unset, so arming packet loss never shifts
// the other sites' streams.
func (j *Injector) AtWire(key int) bool {
	j.mu.Lock()
	defer j.mu.Unlock()
	if !j.armed || j.cfg.DropAtWire <= 0 {
		return false
	}
	j.WireDraws++
	if j.draw(wireKeyBase+key) < j.cfg.DropAtWire {
		j.Fired++
		return true
	}
	return false
}

// AtRoute decides, per balancer routing decision, whether chaos strikes
// the chosen backend: one draw over the KillAtRoute/SlowAtRoute ladder.
// backend keys the decision stream, so each backend's kill/slow schedule
// depends only on how many requests were routed to it.
func (j *Injector) AtRoute(backend int) RouteChaos {
	j.mu.Lock()
	defer j.mu.Unlock()
	if !j.armed || (j.cfg.KillAtRoute <= 0 && j.cfg.SlowAtRoute <= 0) {
		return RouteNone
	}
	j.Routes++
	u := j.draw(routeKeyBase + backend)
	p := j.cfg.KillAtRoute
	if u < p {
		j.Fired++
		return RouteKill
	}
	p += j.cfg.SlowAtRoute
	if u < p {
		j.Fired++
		return RouteSlow
	}
	return RouteNone
}

// AtRetag implements cubicle.Injector.
func (j *Injector) AtRetag(core int, cub string) cubicle.InjectKind {
	j.mu.Lock()
	defer j.mu.Unlock()
	if !j.armed || !j.match(cub) || j.cfg.ProtAtRetag <= 0 {
		return cubicle.InjectNone
	}
	j.Retags++
	if j.draw(core) < j.cfg.ProtAtRetag {
		j.Fired++
		return cubicle.InjectProt
	}
	return cubicle.InjectNone
}
