// Package speedtest is the speedtest1 equivalent of the paper's SQLite
// evaluation (§6.4): a schedule of workloads keyed by the query
// identifiers on the x-axis of Figure 6. The paper splits the queries
// into two empirical groups: roughly two thirds "use the OS interface
// infrequently [and] benefit from caching" (low CubicleOS overhead,
// ~1.8×) and the rest "use the OS interface significantly more often"
// (high overhead, ~8×). The workloads reproduce that structure: group A
// operates on tables that fit the page cache inside batched
// transactions; group B works on a larger-than-cache table, commits per
// statement (journal + fsync traffic), or walks every page.
package speedtest

import (
	"fmt"
	"sort"

	"cubicleos/internal/sqldb"
)

// QueryIDs is the Figure 6 x-axis.
var QueryIDs = []int{
	100, 110, 120, 130, 140, 142, 145, 150, 160, 161, 170, 180, 190,
	210, 230, 240, 250, 260, 270, 280, 290, 300, 310, 320, 400, 410,
	500, 510, 520, 980, 990,
}

// groupA lists the paper's low-overhead queries ("100–120, 140–161, 180,
// 190, 230, 250, 300, 320, 400, 500, 520, 990").
var groupA = map[int]bool{
	100: true, 110: true, 120: true, 140: true, 142: true, 145: true,
	150: true, 160: true, 161: true, 180: true, 190: true, 230: true,
	250: true, 300: true, 320: true, 400: true, 500: true, 520: true,
	990: true,
}

// InGroupA reports whether the paper classifies the query as
// low-overhead (cache-friendly).
func InGroupA(id int) bool { return groupA[id] }

// Title returns the workload description for a query ID (mirroring the
// speedtest1 test names).
func Title(id int) string {
	titles := map[int]string{
		100: "INSERTs into unindexed table, one txn",
		110: "ordered INSERTs with INTEGER PRIMARY KEY, one txn",
		120: "unordered INSERTs with INTEGER PRIMARY KEY, one txn",
		130: "SELECTs, numeric BETWEEN, unindexed big table",
		140: "SELECTs, LIKE, unindexed cached table",
		142: "SELECTs with ORDER BY, cached table",
		145: "SELECTs with ORDER BY and LIMIT, cached table",
		150: "CREATE INDEX on cached tables",
		160: "SELECTs, numeric BETWEEN, indexed",
		161: "SELECTs, text equality, indexed",
		170: "UPDATEs, numeric BETWEEN, indexed, autocommit",
		180: "UPDATEs of individual rows, one txn",
		190: "one big UPDATE of the whole table",
		210: "ALTER TABLE ADD COLUMN and backfill on big table",
		230: "UPDATEs, numeric BETWEEN, PK, one txn",
		240: "UPDATEs of individual rows, autocommit",
		250: "one big UPDATE of the whole cached table",
		260: "SELECT on the column added to the big table",
		270: "DELETEs, numeric BETWEEN, autocommit on big table",
		280: "DELETEs of individual rows, autocommit",
		290: "refill the big table with REPLACE, autocommit batches",
		300: "refill a cached table, one txn",
		310: "four-way join",
		320: "subquery in result set",
		400: "REPLACE ops on an IPK table, one txn",
		410: "lookups of random rows on the big table",
		500: "LIKE with GROUP BY on cached table",
		510: "text comparison scan over the big table",
		520: "random() function scan on cached table",
		980: "PRAGMA integrity_check",
		990: "schema and count statistics (ANALYZE stand-in)",
	}
	return titles[id]
}

// Config scales the workload.
type Config struct {
	// Size is the speedtest1 --stat equivalent; 100 is the default scale.
	Size int
}

// Runner executes the workload schedule against one database.
type Runner struct {
	DB  *sqldb.DB
	cfg Config
	rng uint64

	n   int // rows in the cached tables
	big int // rows in the larger-than-cache table
}

// New creates a runner. Size 0 selects the default scale of 100.
func New(db *sqldb.DB, cfg Config) *Runner {
	if cfg.Size <= 0 {
		cfg.Size = 100
	}
	r := &Runner{DB: db, cfg: cfg, rng: 0xDEADBEEFCAFEF00D}
	r.n = cfg.Size * 20   // cached tables: fit the page cache
	r.big = cfg.Size * 40 // big table: several times the page cache
	return r
}

func (r *Runner) rand() uint64 {
	x := r.rng
	x ^= x >> 12
	x ^= x << 25
	x ^= x >> 27
	r.rng = x
	return x * 0x2545F4914F6CDD1D
}

func (r *Runner) randN(n int) int { return int(r.rand() % uint64(n)) }

// pad yields deterministic filler text.
func pad(i, width int) string {
	s := fmt.Sprintf("%0*d", width, i*2654435761%100000000)
	for len(s) < width {
		s += "x"
	}
	return s
}

// Setup creates and fills the schema every query runs against.
func (r *Runner) Setup() error {
	stmts := []string{
		"CREATE TABLE z1 (a INTEGER, b INTEGER, c TEXT)",
		"CREATE TABLE z2 (id INTEGER PRIMARY KEY, b INTEGER, c TEXT)",
		"CREATE TABLE z3 (id INTEGER PRIMARY KEY, b INTEGER, c TEXT)",
		"CREATE TABLE zbig (id INTEGER PRIMARY KEY, k INTEGER, pad TEXT)",
		"CREATE TABLE zj1 (id INTEGER PRIMARY KEY, ref INTEGER)",
		"CREATE TABLE zj2 (id INTEGER PRIMARY KEY, ref INTEGER)",
		"CREATE TABLE zj3 (id INTEGER PRIMARY KEY, ref INTEGER)",
		"CREATE TABLE zj4 (id INTEGER PRIMARY KEY, v INTEGER)",
	}
	for _, s := range stmts {
		if _, err := r.DB.Exec(s); err != nil {
			return err
		}
	}
	if _, err := r.DB.Exec("BEGIN"); err != nil {
		return err
	}
	for i := 1; i <= r.big; i++ {
		if _, err := r.DB.Exec(fmt.Sprintf(
			"INSERT INTO zbig VALUES (%d, %d, '%s')", i, i%997, pad(i, 180))); err != nil {
			return err
		}
	}
	join := r.n
	if join > 400 {
		join = 400
	}
	for i := 1; i <= join; i++ {
		for _, tbl := range []string{"zj1", "zj2", "zj3"} {
			if _, err := r.DB.Exec(fmt.Sprintf(
				"INSERT INTO %s VALUES (%d, %d)", tbl, i, (i%join)+1)); err != nil {
				return err
			}
		}
		if _, err := r.DB.Exec(fmt.Sprintf("INSERT INTO zj4 VALUES (%d, %d)", i, i*7)); err != nil {
			return err
		}
	}
	if _, err := r.DB.Exec("CREATE INDEX izbig ON zbig (k)"); err != nil {
		return err
	}
	if _, err := r.DB.Exec("COMMIT"); err != nil {
		return err
	}
	return nil
}

// Run executes one query workload by ID.
func (r *Runner) Run(id int) error {
	switch id {
	case 100:
		return r.inTxn(func() error {
			for i := 1; i <= r.n; i++ {
				if err := r.exec("INSERT INTO z1 VALUES (%d, %d, '%s')", i, r.randN(1000000), pad(i, 40)); err != nil {
					return err
				}
			}
			return nil
		})
	case 110:
		return r.inTxn(func() error {
			for i := 1; i <= r.n; i++ {
				if err := r.exec("INSERT INTO z2 VALUES (%d, %d, '%s')", i, r.randN(1000000), pad(i, 40)); err != nil {
					return err
				}
			}
			return nil
		})
	case 120:
		return r.inTxn(func() error {
			perm := make([]int, r.n)
			for i := range perm {
				perm[i] = i + 1
			}
			for i := len(perm) - 1; i > 0; i-- {
				j := r.randN(i + 1)
				perm[i], perm[j] = perm[j], perm[i]
			}
			for _, id := range perm {
				if err := r.exec("INSERT INTO z3 VALUES (%d, %d, '%s')", id, r.randN(1000000), pad(id, 40)); err != nil {
					return err
				}
			}
			return nil
		})
	case 130:
		// Unindexed scans over the big table: cache misses per scan.
		for i := 0; i < 12; i++ {
			lo := r.randN(r.big)
			if err := r.exec("SELECT count(*), avg(id) FROM zbig WHERE pad BETWEEN '0' AND '5' AND id BETWEEN %d AND %d", lo, lo+r.big/10); err != nil {
				return err
			}
		}
		return nil
	case 140:
		for i := 0; i < 10; i++ {
			if err := r.exec("SELECT count(*) FROM z1 WHERE c LIKE '%%%d%%'", r.randN(100)); err != nil {
				return err
			}
		}
		return nil
	case 142:
		for i := 0; i < 10; i++ {
			if err := r.exec("SELECT b, c FROM z1 WHERE a BETWEEN %d AND %d ORDER BY c", i*10, i*10+100); err != nil {
				return err
			}
		}
		return nil
	case 145:
		for i := 0; i < 10; i++ {
			if err := r.exec("SELECT b, c FROM z1 ORDER BY c LIMIT 10"); err != nil {
				return err
			}
		}
		return nil
	case 150:
		return r.inTxn(func() error {
			for _, s := range []string{
				"CREATE INDEX iz1b ON z1 (b)",
				"CREATE INDEX iz2b ON z2 (b)",
				"CREATE INDEX iz3b ON z3 (b)",
			} {
				if err := r.exec("%s", s); err != nil {
					return err
				}
			}
			return nil
		})
	case 160:
		for i := 0; i < 200; i++ {
			lo := r.randN(1000000)
			if err := r.exec("SELECT count(*) FROM z2 WHERE b BETWEEN %d AND %d", lo, lo+1000); err != nil {
				return err
			}
		}
		return nil
	case 161:
		for i := 0; i < 200; i++ {
			if err := r.exec("SELECT count(*) FROM z1 WHERE b = %d", r.randN(1000000)); err != nil {
				return err
			}
		}
		return nil
	case 170:
		// Autocommit indexed-range updates on the big table: one journal
		// commit (with fsyncs) per statement.
		for i := 0; i < 60; i++ {
			k := r.randN(997)
			if err := r.exec("UPDATE zbig SET k = %d WHERE k = %d", k, (k+1)%997); err != nil {
				return err
			}
		}
		return nil
	case 180:
		return r.inTxn(func() error {
			for i := 0; i < r.n; i++ {
				if err := r.exec("UPDATE z2 SET b = b + 1 WHERE id = %d", r.randN(r.n)+1); err != nil {
					return err
				}
			}
			return nil
		})
	case 190:
		return r.exec("UPDATE z2 SET b = b + 7")
	case 210:
		if err := r.exec("ALTER TABLE zbig ADD COLUMN extra INTEGER"); err != nil {
			return err
		}
		return r.exec("UPDATE zbig SET extra = id * 2 WHERE id %% 2 = 0")
	case 230:
		return r.inTxn(func() error {
			for i := 0; i < 100; i++ {
				lo := r.randN(r.n)
				if err := r.exec("UPDATE z2 SET b = b + 1 WHERE id BETWEEN %d AND %d", lo, lo+20); err != nil {
					return err
				}
			}
			return nil
		})
	case 240:
		for i := 0; i < 40; i++ {
			if err := r.exec("UPDATE zbig SET k = k + 1 WHERE id = %d", r.randN(r.big)+1); err != nil {
				return err
			}
		}
		return nil
	case 250:
		return r.exec("UPDATE z1 SET b = b + 1")
	case 260:
		for i := 0; i < 8; i++ {
			if err := r.exec("SELECT count(*), sum(extra) FROM zbig WHERE extra IS NOT NULL AND id BETWEEN %d AND %d", i*r.big/8, (i+1)*r.big/8); err != nil {
				return err
			}
		}
		return nil
	case 270:
		for i := 0; i < 30; i++ {
			lo := r.randN(r.big)
			if err := r.exec("DELETE FROM zbig WHERE id BETWEEN %d AND %d", lo, lo+3); err != nil {
				return err
			}
		}
		return nil
	case 280:
		for i := 0; i < 40; i++ {
			if err := r.exec("DELETE FROM zbig WHERE id = %d", r.randN(r.big)+1); err != nil {
				return err
			}
		}
		return nil
	case 290:
		// Refill the big table in autocommit batches of one REPLACE per
		// statement over a sample of rows.
		for i := 0; i < 40; i++ {
			id := r.randN(r.big) + 1
			if err := r.exec("REPLACE INTO zbig (id, k, pad) VALUES (%d, %d, '%s')", id, id%997, pad(id, 180)); err != nil {
				return err
			}
		}
		return nil
	case 300:
		return r.inTxn(func() error {
			if err := r.exec("DELETE FROM z1"); err != nil {
				return err
			}
			for i := 1; i <= r.n; i++ {
				if err := r.exec("INSERT INTO z1 VALUES (%d, %d, '%s')", i, r.randN(1000000), pad(i, 40)); err != nil {
					return err
				}
			}
			return nil
		})
	case 310:
		for i := 0; i < 4; i++ {
			if err := r.exec("SELECT count(*), max(zj4.v) FROM zj1, zj2, zj3, zj4 " +
				"WHERE zj2.id = zj1.ref AND zj3.id = zj2.ref AND zj4.id = zj3.ref"); err != nil {
				return err
			}
		}
		return nil
	case 320:
		for i := 0; i < 2; i++ {
			if err := r.exec("SELECT count(*) FROM z2 WHERE b > (SELECT avg(b) FROM z2)"); err != nil {
				return err
			}
		}
		return nil
	case 400:
		return r.inTxn(func() error {
			for i := 0; i < r.n*2; i++ {
				id := r.randN(r.n) + 1
				if err := r.exec("REPLACE INTO z2 (id, b, c) VALUES (%d, %d, '%s')", id, r.randN(1000000), pad(id, 40)); err != nil {
					return err
				}
			}
			return nil
		})
	case 410:
		// Random point lookups across the big table: cache-miss heavy.
		for i := 0; i < 400; i++ {
			if err := r.exec("SELECT k FROM zbig WHERE id = %d", r.randN(r.big)+1); err != nil {
				return err
			}
		}
		return nil
	case 500:
		for i := 0; i < 10; i++ {
			if err := r.exec("SELECT length(c), count(*) FROM z1 GROUP BY length(c) ORDER BY 1"); err != nil {
				return err
			}
		}
		return nil
	case 510:
		for i := 0; i < 6; i++ {
			if err := r.exec("SELECT count(*) FROM zbig WHERE pad < '%d'", r.randN(10)); err != nil {
				return err
			}
		}
		return nil
	case 520:
		for i := 0; i < 10; i++ {
			if err := r.exec("SELECT count(*) FROM z1 WHERE (b + random() %% 100) %% 7 = 0"); err != nil {
				return err
			}
		}
		return nil
	case 980:
		return r.exec("PRAGMA integrity_check")
	case 990:
		for _, tbl := range []string{"z1", "z2", "z3", "zj4"} {
			if err := r.exec("SELECT count(*) FROM %s", tbl); err != nil {
				return err
			}
		}
		return r.exec("PRAGMA page_count")
	}
	return fmt.Errorf("speedtest: unknown query ID %d", id)
}

func (r *Runner) exec(format string, args ...any) error {
	_, err := r.DB.Exec(fmt.Sprintf(format, args...))
	return err
}

func (r *Runner) inTxn(fn func() error) error {
	if err := r.exec("BEGIN"); err != nil {
		return err
	}
	if err := fn(); err != nil {
		r.exec("ROLLBACK")
		return err
	}
	return r.exec("COMMIT")
}

// Measurement is one query's cost.
type Measurement struct {
	ID     int
	Cycles uint64
	GroupA bool
}

// RunAll executes Setup plus every query in ID order, reporting per-query
// virtual cycles via the provided clock reader.
func (r *Runner) RunAll(cyclesNow func() uint64) ([]Measurement, error) {
	if err := r.Setup(); err != nil {
		return nil, err
	}
	out := make([]Measurement, 0, len(QueryIDs))
	ids := append([]int{}, QueryIDs...)
	sort.Ints(ids)
	for _, id := range ids {
		start := cyclesNow()
		if err := r.Run(id); err != nil {
			return nil, fmt.Errorf("query %d: %w", id, err)
		}
		out = append(out, Measurement{ID: id, Cycles: cyclesNow() - start, GroupA: InGroupA(id)})
	}
	return out, nil
}
