package speedtest_test

import (
	"testing"

	"cubicleos/internal/boot"
	"cubicleos/internal/cubicle"
	"cubicleos/internal/ramfs"
	"cubicleos/internal/speedtest"
	"cubicleos/internal/sqldb"
	"cubicleos/internal/vfscore"
)

// newRunner boots a minimal system and opens a database for the workload.
func newRunner(t *testing.T, size int) (*boot.System, *speedtest.Runner) {
	t.Helper()
	s := boot.MustNewFS(boot.Config{Mode: cubicle.ModeUnikraft, Extra: []*cubicle.Component{{
		Name: "SQLITE", Kind: cubicle.KindIsolated,
		Exports: []cubicle.ExportDecl{{Name: "sqlite_main", Fn: func(e *cubicle.Env, a []uint64) []uint64 { return nil }}},
	}}})
	var r *speedtest.Runner
	err := s.RunAs("SQLITE", func(e *cubicle.Env) {
		vfs := vfscore.NewClient(s.M, s.Cubs["SQLITE"].ID)
		vfs.InitBuffers(e, e.CubicleOf(ramfs.Name))
		ioBuf := e.HeapAlloc(sqldb.PageSize)
		db, err := sqldb.Open(e, vfs, "/st.db", ioBuf, 128)
		if err != nil {
			t.Fatal(err)
		}
		r = speedtest.New(db, speedtest.Config{Size: size})
	})
	if err != nil {
		t.Fatal(err)
	}
	return s, r
}

func TestEveryQueryRuns(t *testing.T) {
	s, r := newRunner(t, 5)
	err := s.RunAs("SQLITE", func(e *cubicle.Env) {
		if err := r.Setup(); err != nil {
			t.Fatal(err)
		}
		for _, id := range speedtest.QueryIDs {
			if err := r.Run(id); err != nil {
				t.Fatalf("query %d (%s): %v", id, speedtest.Title(id), err)
			}
		}
		// The database must still be structurally sound afterwards.
		res, err := r.DB.Exec("PRAGMA integrity_check")
		if err != nil {
			t.Fatal(err)
		}
		if res.Rows[0][0].S != "ok" {
			t.Fatalf("integrity after full schedule: %v", res.Rows)
		}
	})
	if err != nil {
		t.Fatal(err)
	}
}

func TestRunAllMeasures(t *testing.T) {
	s, r := newRunner(t, 5)
	err := s.RunAs("SQLITE", func(e *cubicle.Env) {
		ms, err := r.RunAll(s.M.Clock.Cycles)
		if err != nil {
			t.Fatal(err)
		}
		if len(ms) != len(speedtest.QueryIDs) {
			t.Fatalf("measured %d queries", len(ms))
		}
		for _, m := range ms {
			if m.Cycles == 0 {
				t.Errorf("query %d measured 0 cycles", m.ID)
			}
			if m.GroupA != speedtest.InGroupA(m.ID) {
				t.Errorf("query %d group flag wrong", m.ID)
			}
		}
	})
	if err != nil {
		t.Fatal(err)
	}
}

func TestGroupsMatchPaper(t *testing.T) {
	// The paper's group A list: 100–120, 140–161, 180, 190, 230, 250,
	// 300, 320, 400, 500, 520, 990.
	wantA := map[int]bool{100: true, 110: true, 120: true, 140: true, 142: true,
		145: true, 150: true, 160: true, 161: true, 180: true, 190: true,
		230: true, 250: true, 300: true, 320: true, 400: true, 500: true,
		520: true, 990: true}
	for _, id := range speedtest.QueryIDs {
		if speedtest.InGroupA(id) != wantA[id] {
			t.Errorf("query %d group classification disagrees with the paper", id)
		}
		if speedtest.Title(id) == "" {
			t.Errorf("query %d has no title", id)
		}
	}
	if len(speedtest.QueryIDs) != 31 {
		t.Errorf("Figure 6 has 31 query IDs, got %d", len(speedtest.QueryIDs))
	}
}

func TestUnknownQueryFails(t *testing.T) {
	s, r := newRunner(t, 5)
	err := s.RunAs("SQLITE", func(e *cubicle.Env) {
		if err := r.Setup(); err != nil {
			t.Fatal(err)
		}
		if err := r.Run(999); err == nil {
			t.Error("unknown query ID accepted")
		}
	})
	if err != nil {
		t.Fatal(err)
	}
}

func TestDeterministicAcrossRuns(t *testing.T) {
	run := func() uint64 {
		s, r := newRunner(t, 5)
		var cycles uint64
		err := s.RunAs("SQLITE", func(e *cubicle.Env) {
			ms, err := r.RunAll(s.M.Clock.Cycles)
			if err != nil {
				t.Fatal(err)
			}
			for _, m := range ms {
				cycles += m.Cycles
			}
		})
		if err != nil {
			t.Fatal(err)
		}
		return cycles
	}
	if a, b := run(), run(); a != b {
		t.Errorf("speedtest not deterministic: %d vs %d cycles", a, b)
	}
}
