package urandom_test

import (
	"testing"

	"cubicleos/internal/boot"
	"cubicleos/internal/cubicle"
	"cubicleos/internal/urandom"
)

func bootApp(t *testing.T, seed uint64) *boot.System {
	t.Helper()
	return boot.MustNewFS(boot.Config{Mode: cubicle.ModeFull, Seed: seed,
		Extra: []*cubicle.Component{{
			Name: "APP", Kind: cubicle.KindIsolated,
			Exports: []cubicle.ExportDecl{{Name: "main", Fn: func(e *cubicle.Env, a []uint64) []uint64 { return nil }}},
		}}})
}

func TestDeterministicSequence(t *testing.T) {
	collect := func() []uint64 {
		s := bootApp(t, 42)
		var out []uint64
		err := s.RunAs("APP", func(e *cubicle.Env) {
			c := urandom.NewClient(s.M, s.Cubs["APP"].ID)
			for i := 0; i < 8; i++ {
				out = append(out, c.U64(e))
			}
		})
		if err != nil {
			t.Fatal(err)
		}
		return out
	}
	a, b := collect(), collect()
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("sequences diverge at %d", i)
		}
	}
	varied := false
	for i := 1; i < len(a); i++ {
		if a[i] != a[0] {
			varied = true
		}
	}
	if !varied {
		t.Error("PRNG output constant")
	}
}

func TestFill(t *testing.T) {
	s := bootApp(t, 7)
	err := s.RunAs("APP", func(e *cubicle.Env) {
		c := urandom.NewClient(s.M, s.Cubs["APP"].ID)
		buf := e.HeapAlloc(1000)
		c.Fill(e, buf, 1000)
		data := e.ReadBytes(buf, 1000)
		zeros := 0
		for _, b := range data {
			if b == 0 {
				zeros++
			}
		}
		if zeros > 100 {
			t.Errorf("fill left %d zero bytes of 1000", zeros)
		}
	})
	if err != nil {
		t.Fatal(err)
	}
}

// TestSharedDeviceRunsAsCaller: RANDOM is a shared cubicle; filling a
// caller buffer needs no window and no TCB crossing.
func TestSharedDeviceRunsAsCaller(t *testing.T) {
	s := bootApp(t, 7)
	err := s.RunAs("APP", func(e *cubicle.Env) {
		c := urandom.NewClient(s.M, s.Cubs["APP"].ID)
		buf := e.HeapAlloc(64)
		cross := s.M.Stats.CallsTotal
		c.Fill(e, buf, 64)
		if s.M.Stats.CallsTotal != cross {
			t.Error("random fill crossed the TCB")
		}
	})
	if err != nil {
		t.Fatal(err)
	}
}
