// Package urandom is the shared random-device cubicle mentioned in the
// paper's NGINX deployment ("Shared cubicles ... are comprised of newlibc
// and the random device driver"). It is a deterministic xorshift PRNG so
// that experiments are reproducible.
package urandom

import (
	"cubicleos/internal/cubicle"
	"cubicleos/internal/vm"
)

// Name of the component in deployments.
const Name = "RANDOM"

// Device is the PRNG state. It lives in trusted bookkeeping (device
// registers); the data it produces is written into caller-provided
// buffers under the caller's privileges, as a shared cubicle.
type Device struct {
	state uint64
}

// New returns a device seeded deterministically.
func New(seed uint64) *Device {
	if seed == 0 {
		seed = 0x9E3779B97F4A7C15
	}
	return &Device{state: seed}
}

// next advances the xorshift64* generator.
func (d *Device) next() uint64 {
	x := d.state
	x ^= x >> 12
	x ^= x << 25
	x ^= x >> 27
	d.state = x
	return x * 0x2545F4914F6CDD1D
}

// Component returns the RANDOM component for the builder.
func (d *Device) Component() *cubicle.Component {
	return &cubicle.Component{
		Name: Name,
		Kind: cubicle.KindShared,
		Exports: []cubicle.ExportDecl{
			{Name: "rand_u64", Fn: func(e *cubicle.Env, args []uint64) []uint64 {
				return []uint64{d.next()}
			}},
			{Name: "rand_fill", RegArgs: 2, Fn: func(e *cubicle.Env, args []uint64) []uint64 {
				addr, n := vm.Addr(args[0]), args[1]
				buf := make([]byte, n)
				for i := uint64(0); i < n; i += 8 {
					v := d.next()
					for j := uint64(0); j < 8 && i+j < n; j++ {
						buf[i+j] = byte(v >> (8 * j))
					}
				}
				e.Write(addr, buf)
				return nil
			}},
		},
	}
}

// Client is typed access to the random device.
type Client struct {
	u64, fill cubicle.Handle
}

// NewClient resolves the device for a caller cubicle.
func NewClient(m *cubicle.Monitor, caller cubicle.ID) *Client {
	return &Client{
		u64:  m.MustResolve(caller, Name, "rand_u64"),
		fill: m.MustResolve(caller, Name, "rand_fill"),
	}
}

// U64 returns the next pseudo-random value.
func (c *Client) U64(e *cubicle.Env) uint64 { return c.u64.Call(e)[0] }

// Fill fills n bytes at addr with pseudo-random data.
func (c *Client) Fill(e *cubicle.Env, addr vm.Addr, n uint64) {
	c.fill.Call(e, uint64(addr), n)
}
