package netdev_test

import (
	"bytes"
	"testing"

	"cubicleos/internal/boot"
	"cubicleos/internal/cubicle"
	"cubicleos/internal/netdev"
	"cubicleos/internal/vm"
)

func bootNet(t *testing.T) (*boot.System, *netdev.Client) {
	t.Helper()
	s := boot.MustNewFS(boot.Config{Mode: cubicle.ModeFull, Net: true,
		Extra: []*cubicle.Component{{
			Name: "APP", Kind: cubicle.KindIsolated,
			Exports: []cubicle.ExportDecl{{Name: "main", Fn: func(e *cubicle.Env, a []uint64) []uint64 { return nil }}},
		}}})
	return s, netdev.NewClient(s.M, s.Cubs["APP"].ID)
}

func TestTxRxRoundTrip(t *testing.T) {
	s, c := bootNet(t)
	err := s.RunAs("APP", func(e *cubicle.Env) {
		buf := e.HeapAlloc(2 * vm.PageSize)
		wid := e.WindowInit()
		e.WindowAdd(wid, buf, 2*vm.PageSize)
		e.WindowOpen(wid, e.CubicleOf(netdev.Name))

		frame := []byte("ethernet frame payload")
		e.Write(buf, frame)
		n, errno := c.Tx(e, buf, uint64(len(frame)))
		if errno != 0 || n != uint64(len(frame)) {
			t.Fatalf("tx: n=%d errno=%d", n, errno)
		}
		got := s.Netdev.Wire().HostRecv()
		if !bytes.Equal(got, frame) {
			t.Fatalf("wire got %q", got)
		}

		// Host side injects a frame; the device delivers it.
		s.Netdev.Wire().HostSend([]byte("reply-frame"))
		if c.RxReady(e) != 1 {
			t.Fatal("rx_ready != 1")
		}
		n, errno = c.Rx(e, buf, 2*vm.PageSize)
		if errno != 0 || n != 11 {
			t.Fatalf("rx: n=%d errno=%d", n, errno)
		}
		if string(e.ReadBytes(buf, n)) != "reply-frame" {
			t.Fatal("rx payload mismatch")
		}
		// Empty queue: Rx returns zero length.
		if n, _ := c.Rx(e, buf, 2*vm.PageSize); n != 0 {
			t.Fatal("rx on empty queue returned data")
		}
	})
	if err != nil {
		t.Fatal(err)
	}
}

func TestTxValidation(t *testing.T) {
	s, c := bootNet(t)
	err := s.RunAs("APP", func(e *cubicle.Env) {
		buf := e.HeapAlloc(2 * vm.PageSize)
		wid := e.WindowInit()
		e.WindowAdd(wid, buf, 2*vm.PageSize)
		e.WindowOpen(wid, e.CubicleOf(netdev.Name))
		if _, errno := c.Tx(e, buf, 0); errno == 0 {
			t.Error("zero-length frame accepted")
		}
		if _, errno := c.Tx(e, buf, netdev.MTU+1); errno == 0 {
			t.Error("over-MTU frame accepted")
		}
	})
	if err != nil {
		t.Fatal(err)
	}
}

func TestTxWithoutWindowFaults(t *testing.T) {
	s, c := bootNet(t)
	err := s.RunAs("APP", func(e *cubicle.Env) {
		buf := e.HeapAlloc(vm.PageSize) // not windowed
		e.Write(buf, []byte("x"))
		if fault := cubicle.Catch(func() { c.Tx(e, buf, 1) }); fault == nil {
			t.Fatal("device DMA'd from an unwindowed buffer")
		}
	})
	if err != nil {
		t.Fatal(err)
	}
}

func TestWireCounters(t *testing.T) {
	s, c := bootNet(t)
	err := s.RunAs("APP", func(e *cubicle.Env) {
		buf := e.HeapAlloc(vm.PageSize)
		wid := e.WindowInit()
		e.WindowAdd(wid, buf, vm.PageSize)
		e.WindowOpen(wid, e.CubicleOf(netdev.Name))
		e.Write(buf, []byte("abcd"))
		for i := 0; i < 3; i++ {
			c.Tx(e, buf, 4)
		}
	})
	if err != nil {
		t.Fatal(err)
	}
	w := s.Netdev.Wire()
	if w.FramesOut != 3 || w.BytesOut != 12 {
		t.Errorf("wire out counters: %d frames, %d bytes", w.FramesOut, w.BytesOut)
	}
	if w.HostPending() != 3 {
		t.Errorf("host pending = %d", w.HostPending())
	}
}

// TestWireDropperLosesFramesInFlight: an injected drop on the transmit
// path must look like a successful send to the stack (the frame left the
// device) while never reaching the host, and a drop on the receive path
// must vanish before the device sees an arrival.
func TestWireDropperLosesFramesInFlight(t *testing.T) {
	s, c := bootNet(t)
	w := s.Netdev.Wire()
	drops := []bool{false, true, false, true, true, false}
	i := 0
	w.SetDropper(func() bool { d := drops[i%len(drops)]; i++; return d })
	err := s.RunAs("APP", func(e *cubicle.Env) {
		buf := e.HeapAlloc(vm.PageSize)
		wid := e.WindowInit()
		e.WindowAdd(wid, buf, vm.PageSize)
		e.WindowOpen(wid, e.CubicleOf(netdev.Name))
		e.Write(buf, []byte("abcd"))
		for j := 0; j < len(drops); j++ {
			n, errno := c.Tx(e, buf, 4)
			if errno != 0 || n != 4 {
				t.Fatalf("tx %d: n=%d errno=%d — wire loss must be invisible to the sender", j, n, errno)
			}
		}
	})
	if err != nil {
		t.Fatal(err)
	}
	if w.FramesOut != 6 || w.InjectedDropsOut != 3 || w.HostPending() != 3 {
		t.Fatalf("out: frames=%d injected=%d pending=%d, want 6/3/3",
			w.FramesOut, w.InjectedDropsOut, w.HostPending())
	}
	i = 0
	for j := 0; j < len(drops); j++ {
		w.HostSend([]byte("host frame"))
	}
	if w.InjectedDropsIn != 3 || w.FramesIn != 3 {
		t.Fatalf("in: injected=%d arrived=%d, want 3/3", w.InjectedDropsIn, w.FramesIn)
	}
}
