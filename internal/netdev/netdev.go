// Package netdev is the NETDEV component: the virtual network device
// driver of the NGINX deployment (Figure 5). The device moves Ethernet
// frames between component-visible simulated memory and the "wire" — a
// host-side frame queue representing the physical medium, which the load
// generator (siege) attaches to from outside the library OS, exactly like
// the external attacker-controlled input of the threat model.
package netdev

import (
	"cubicleos/internal/cubicle"
	"cubicleos/internal/vm"
)

// Name of the component in deployments.
const Name = "NETDEV"

// MTU is the maximum frame size on the wire (Ethernet payload).
const MTU = 1514

// driverWork models the per-frame driver path (descriptor ring handling,
// doorbell, interrupt coalescing share).
const driverWork = 1400

// Wire is the physical medium: frame queues between the device and the
// host-side peer. It is trusted-harness state (hardware), not cubicle
// memory.
type Wire struct {
	toHost   [][]byte
	toDevice [][]byte
	// Cap bounds each direction's queue in frames (0 = unbounded, the
	// seed behaviour). A full receive queue drops host frames like a NIC
	// ring overflow; a full transmit queue pushes EAGAIN back into the
	// stack.
	Cap int
	// FramesOut / FramesIn count frames for the experiment reports.
	FramesOut, FramesIn uint64
	// BytesOut / BytesIn count payload bytes.
	BytesOut, BytesIn uint64
	// DropsIn counts host frames dropped at a full receive queue;
	// DropsOut counts device transmits refused at a full send queue.
	DropsIn, DropsOut uint64
	// InjectedDropsIn / InjectedDropsOut count frames the dropper lost in
	// flight (seeded chaos, not queue pressure) per direction.
	InjectedDropsIn, InjectedDropsOut uint64

	// dropper, when set, is consulted once per frame in each direction;
	// true loses the frame in flight (see SetDropper).
	dropper func() bool
}

// SetDropper installs fn as the wire's in-flight loss decision: it is
// consulted once per frame in each direction (host→device before the
// frame reaches the receive queue, device→host after the device believes
// the transmit succeeded — real wire loss is invisible to the sender).
// Implementations are seeded injector streams (faultinject.AtWire) so the
// drop schedule is a deterministic function of the frame sequence. nil
// detaches.
func (w *Wire) SetDropper(fn func() bool) { w.dropper = fn }

// HostSend injects a frame from the host side (load generator). When the
// bounded receive queue is full the frame is dropped — the silicon has no
// flow control to the wire, exactly like a NIC ring overflow.
func (w *Wire) HostSend(frame []byte) {
	if w.dropper != nil && w.dropper() {
		// Lost in flight before reaching the NIC: the host-side sender has
		// no way to know (no wire-level flow control), the device never
		// sees an arrival.
		w.InjectedDropsIn++
		return
	}
	if w.Cap > 0 && len(w.toDevice) >= w.Cap {
		w.DropsIn++
		return
	}
	f := make([]byte, len(frame))
	copy(f, frame)
	w.toDevice = append(w.toDevice, f)
	w.FramesIn++
	w.BytesIn += uint64(len(frame))
}

// HostRecv pops a frame destined for the host side, or nil.
func (w *Wire) HostRecv() []byte {
	if len(w.toHost) == 0 {
		return nil
	}
	f := w.toHost[0]
	w.toHost = w.toHost[1:]
	return f
}

// HostPending returns the number of frames waiting for the host.
func (w *Wire) HostPending() int { return len(w.toHost) }

// Module is the NETDEV component state.
type Module struct {
	wire    *Wire
	staging vm.Addr // device-owned DMA bounce buffer (one MTU frame)
}

// New creates the device attached to a fresh wire.
func New() *Module { return &Module{wire: &Wire{}} }

// Wire returns the device's wire for host-side attachment.
func (d *Module) Wire() *Wire { return d.wire }

// ensureStaging allocates the device's DMA bounce buffer on first use
// (device-owned pages).
func (d *Module) ensureStaging(e *cubicle.Env) {
	if d.staging == 0 {
		d.staging = e.HeapAlloc(2 * vm.PageSize)
	}
}

// tx transmits a frame from caller memory: DMA-copies it through the
// device bounce buffer onto the wire. The caller must have opened a
// window over the frame buffer for NETDEV.
func (d *Module) tx(e *cubicle.Env, ptr, n uint64) []uint64 {
	e.Work(driverWork)
	if n == 0 || n > MTU {
		return []uint64{0, 22} // EINVAL
	}
	if d.wire.Cap > 0 && len(d.wire.toHost) >= d.wire.Cap {
		// Bounded transmit queue: explicit backpressure to the stack
		// instead of unbounded growth.
		d.wire.DropsOut++
		return []uint64{0, 11} // EAGAIN
	}
	d.ensureStaging(e)
	e.Memcpy(d.staging, vm.Addr(ptr), n)
	frame := make([]byte, n)
	e.Read(d.staging, frame)
	d.wire.FramesOut++
	d.wire.BytesOut += n
	if d.wire.dropper != nil && d.wire.dropper() {
		// Lost in flight after leaving the device: the transmit succeeded
		// as far as the stack can tell, the peer never sees the frame.
		d.wire.InjectedDropsOut++
		return []uint64{n, 0}
	}
	d.wire.toHost = append(d.wire.toHost, frame)
	return []uint64{n, 0}
}

// rx receives the next pending frame into caller memory; returns 0 bytes
// when no frame is pending.
func (d *Module) rx(e *cubicle.Env, ptr, maxLen uint64) []uint64 {
	e.Work(driverWork)
	if len(d.wire.toDevice) == 0 {
		return []uint64{0, 0}
	}
	frame := d.wire.toDevice[0]
	if uint64(len(frame)) > maxLen {
		return []uint64{0, 22}
	}
	d.wire.toDevice = d.wire.toDevice[1:]
	d.ensureStaging(e)
	e.Write(d.staging, frame)
	e.Memcpy(vm.Addr(ptr), d.staging, uint64(len(frame)))
	return []uint64{uint64(len(frame)), 0}
}

// Component returns the NETDEV component for the builder.
func (d *Module) Component() *cubicle.Component {
	return &cubicle.Component{
		Name: Name,
		Kind: cubicle.KindIsolated,
		Exports: []cubicle.ExportDecl{
			{Name: "netdev_tx", RegArgs: 2, Fn: func(e *cubicle.Env, a []uint64) []uint64 {
				return d.tx(e, a[0], a[1])
			}},
			{Name: "netdev_rx", RegArgs: 2, Fn: func(e *cubicle.Env, a []uint64) []uint64 {
				return d.rx(e, a[0], a[1])
			}},
			{Name: "netdev_rx_ready", Fn: func(e *cubicle.Env, a []uint64) []uint64 {
				e.Work(60)
				return []uint64{uint64(len(d.wire.toDevice)), 0}
			}},
		},
	}
}

// Client is typed access to NETDEV from another cubicle.
type Client struct {
	tx, rx, ready cubicle.Handle
}

// NewClient resolves NETDEV for a caller cubicle.
func NewClient(m *cubicle.Monitor, caller cubicle.ID) *Client {
	return &Client{
		tx:    m.MustResolve(caller, Name, "netdev_tx"),
		rx:    m.MustResolve(caller, Name, "netdev_rx"),
		ready: m.MustResolve(caller, Name, "netdev_rx_ready"),
	}
}

// Tx transmits n bytes at ptr; returns bytes sent and errno.
func (c *Client) Tx(e *cubicle.Env, ptr vm.Addr, n uint64) (uint64, uint64) {
	r := c.tx.Call(e, uint64(ptr), n)
	return r[0], r[1]
}

// Rx receives a frame into ptr; returns frame length (0 = none) and errno.
func (c *Client) Rx(e *cubicle.Env, ptr vm.Addr, maxLen uint64) (uint64, uint64) {
	r := c.rx.Call(e, uint64(ptr), maxLen)
	return r[0], r[1]
}

// RxReady returns the number of pending receive frames.
func (c *Client) RxReady(e *cubicle.Env) uint64 { return c.ready.Call(e)[0] }
