package ulibc_test

import (
	"testing"

	"cubicleos/internal/boot"
	"cubicleos/internal/cubicle"
	"cubicleos/internal/ulibc"
	"cubicleos/internal/vm"
)

func bootApp(t *testing.T) *boot.System {
	t.Helper()
	return boot.MustNewFS(boot.Config{Mode: cubicle.ModeFull, Extra: []*cubicle.Component{{
		Name: "APP", Kind: cubicle.KindIsolated,
		Exports: []cubicle.ExportDecl{{Name: "main", Fn: func(e *cubicle.Env, a []uint64) []uint64 { return nil }}},
	}}})
}

func TestMemcpyMemsetMemcmp(t *testing.T) {
	s := bootApp(t)
	err := s.RunAs("APP", func(e *cubicle.Env) {
		c := ulibc.NewClient(s.M, s.Cubs["APP"].ID)
		a := e.HeapAlloc(64)
		b := e.HeapAlloc(64)
		c.Memset(e, a, 0xAB, 64)
		c.Memcpy(e, b, a, 64)
		if got := c.Memcmp(e, a, b, 64); got != 0 {
			t.Errorf("memcmp equal = %d", got)
		}
		e.StoreByte(b.Add(10), 0xAC)
		if got := c.Memcmp(e, a, b, 64); got != -1 {
			t.Errorf("memcmp a<b = %d", got)
		}
		if got := c.Memcmp(e, b, a, 64); got != 1 {
			t.Errorf("memcmp b>a = %d", got)
		}
	})
	if err != nil {
		t.Fatal(err)
	}
}

func TestStrlenStrncmp(t *testing.T) {
	s := bootApp(t)
	err := s.RunAs("APP", func(e *cubicle.Env) {
		strlen := s.M.MustResolve(e.Cubicle(), ulibc.Name, "strlen")
		strncmp := s.M.MustResolve(e.Cubicle(), ulibc.Name, "strncmp")
		p := e.HeapAlloc(32)
		e.Write(p, []byte("cubicle\x00"))
		if n := strlen.Call(e, uint64(p))[0]; n != 7 {
			t.Errorf("strlen = %d", n)
		}
		q := e.HeapAlloc(32)
		e.Write(q, []byte("cubicle\x00"))
		if r := strncmp.Call(e, uint64(p), uint64(q), 16)[0]; r != 0 {
			t.Errorf("strncmp equal = %d", r)
		}
		e.Write(q, []byte("cubiclf\x00"))
		if r := strncmp.Call(e, uint64(p), uint64(q), 16)[0]; r != ^uint64(0) {
			t.Errorf("strncmp less = %d", r)
		}
		// Bounded comparison stops at n.
		if r := strncmp.Call(e, uint64(p), uint64(q), 6)[0]; r != 0 {
			t.Errorf("strncmp bounded = %d", r)
		}
	})
	if err != nil {
		t.Fatal(err)
	}
}

// TestSharedCubicleNoTCB: LIBC calls do not count as cross-cubicle calls
// and take no trampoline cost.
func TestSharedCubicleNoTCB(t *testing.T) {
	s := bootApp(t)
	err := s.RunAs("APP", func(e *cubicle.Env) {
		c := ulibc.NewClient(s.M, s.Cubs["APP"].ID)
		a := e.HeapAlloc(vm.PageSize)
		e.Memset(a, 1, vm.PageSize) // warm the page mapping
		cross := s.M.Stats.CallsTotal
		shared := s.M.Stats.SharedCalls
		wrp := s.M.Stats.WRPKRUs
		c.Memset(e, a, 2, 64)
		if s.M.Stats.CallsTotal != cross {
			t.Error("LIBC call crossed the TCB")
		}
		if s.M.Stats.SharedCalls != shared+1 {
			t.Error("LIBC call not counted as shared")
		}
		if s.M.Stats.WRPKRUs != wrp {
			t.Error("LIBC call executed wrpkru")
		}
	})
	if err != nil {
		t.Fatal(err)
	}
}
