// Package ulibc is the shared LIBC cubicle (the paper's newlibc
// equivalent): string and memory helpers that contain little state and are
// frequently used by every component. As a shared cubicle its code
// executes with the privileges, stack and heap of the calling cubicle
// (§3 ❹) — calls into it never involve the CubicleOS TCB.
package ulibc

import (
	"cubicleos/internal/cubicle"
	"cubicleos/internal/vm"
)

// Component name as it appears in deployments.
const Name = "LIBC"

// Component returns the LIBC component for the builder.
func Component() *cubicle.Component {
	return &cubicle.Component{
		Name: Name,
		Kind: cubicle.KindShared,
		Exports: []cubicle.ExportDecl{
			{Name: "memcpy", RegArgs: 3, Fn: memcpy},
			{Name: "memset", RegArgs: 3, Fn: memset},
			{Name: "memcmp", RegArgs: 3, Fn: memcmp},
			{Name: "strlen", RegArgs: 1, Fn: strlen},
			{Name: "strncmp", RegArgs: 3, Fn: strncmp},
		},
	}
}

// memcpy(dst, src, n) copies n bytes and returns dst.
func memcpy(e *cubicle.Env, args []uint64) []uint64 {
	e.Memcpy(vm.Addr(args[0]), vm.Addr(args[1]), args[2])
	return []uint64{args[0]}
}

// memset(dst, c, n) fills n bytes with c and returns dst.
func memset(e *cubicle.Env, args []uint64) []uint64 {
	e.Memset(vm.Addr(args[0]), byte(args[1]), args[2])
	return []uint64{args[0]}
}

// memcmp(a, b, n) returns 0/1/^0 like C memcmp (sign as two's complement
// in a uint64).
func memcmp(e *cubicle.Env, args []uint64) []uint64 {
	a := e.ReadBytes(vm.Addr(args[0]), args[2])
	b := e.ReadBytes(vm.Addr(args[1]), args[2])
	for i := range a {
		if a[i] != b[i] {
			if a[i] < b[i] {
				return []uint64{^uint64(0)}
			}
			return []uint64{1}
		}
	}
	return []uint64{0}
}

// strlen(p) returns the length of the NUL-terminated string at p.
func strlen(e *cubicle.Env, args []uint64) []uint64 {
	addr := vm.Addr(args[0])
	var n uint64
	for {
		if e.LoadByte(addr.Add(n)) == 0 {
			return []uint64{n}
		}
		n++
	}
}

// strncmp(a, b, n) compares at most n bytes of two NUL-terminated strings.
func strncmp(e *cubicle.Env, args []uint64) []uint64 {
	a, b := vm.Addr(args[0]), vm.Addr(args[1])
	for i := uint64(0); i < args[2]; i++ {
		ca, cb := e.LoadByte(a.Add(i)), e.LoadByte(b.Add(i))
		if ca != cb {
			if ca < cb {
				return []uint64{^uint64(0)}
			}
			return []uint64{1}
		}
		if ca == 0 {
			break
		}
	}
	return []uint64{0}
}

// Client provides typed access to LIBC from another component.
type Client struct {
	memcpy, memset, memcmp cubicle.Handle
}

// NewClient resolves LIBC's entry points for the given caller cubicle.
func NewClient(m *cubicle.Monitor, caller cubicle.ID) *Client {
	return &Client{
		memcpy: m.MustResolve(caller, Name, "memcpy"),
		memset: m.MustResolve(caller, Name, "memset"),
		memcmp: m.MustResolve(caller, Name, "memcmp"),
	}
}

// Memcpy calls LIBC memcpy.
func (c *Client) Memcpy(e *cubicle.Env, dst, src vm.Addr, n uint64) {
	c.memcpy.Call(e, uint64(dst), uint64(src), n)
}

// Memset calls LIBC memset.
func (c *Client) Memset(e *cubicle.Env, dst vm.Addr, v byte, n uint64) {
	c.memset.Call(e, uint64(dst), uint64(v), n)
}

// Memcmp calls LIBC memcmp; returns -1, 0 or 1.
func (c *Client) Memcmp(e *cubicle.Env, a, b vm.Addr, n uint64) int {
	r := c.memcmp.Call(e, uint64(a), uint64(b), n)[0]
	switch r {
	case 0:
		return 0
	case 1:
		return 1
	default:
		return -1
	}
}
