// Package ulibc is the shared LIBC cubicle (the paper's newlibc
// equivalent): string and memory helpers that contain little state and are
// frequently used by every component. As a shared cubicle its code
// executes with the privileges, stack and heap of the calling cubicle
// (§3 ❹) — calls into it never involve the CubicleOS TCB.
package ulibc

import (
	"bytes"

	"cubicleos/internal/cubicle"
	"cubicleos/internal/vm"
)

// Component name as it appears in deployments.
const Name = "LIBC"

// Component returns the LIBC component for the builder.
func Component() *cubicle.Component {
	return &cubicle.Component{
		Name: Name,
		Kind: cubicle.KindShared,
		Exports: []cubicle.ExportDecl{
			{Name: "memcpy", RegArgs: 3, Fn: memcpy},
			{Name: "memset", RegArgs: 3, Fn: memset},
			{Name: "memcmp", RegArgs: 3, Fn: memcmp},
			{Name: "strlen", RegArgs: 1, Fn: strlen},
			{Name: "strncmp", RegArgs: 3, Fn: strncmp},
		},
	}
}

// memcpy(dst, src, n) copies n bytes and returns dst.
func memcpy(e *cubicle.Env, args []uint64) []uint64 {
	cubicle.GuardArgs(e, "memcpy", args, 3)
	e.Memcpy(vm.Addr(args[0]), vm.Addr(args[1]), args[2])
	return []uint64{args[0]}
}

// memset(dst, c, n) fills n bytes with c and returns dst.
func memset(e *cubicle.Env, args []uint64) []uint64 {
	cubicle.GuardArgs(e, "memset", args, 3)
	e.Memset(vm.Addr(args[0]), byte(args[1]), args[2])
	return []uint64{args[0]}
}

// memcmp(a, b, n) returns 0/1/^0 like C memcmp (sign as two's complement
// in a uint64). It compares paired zero-copy views page chunk by page
// chunk instead of materialising both ranges.
func memcmp(e *cubicle.Env, args []uint64) []uint64 {
	cubicle.GuardArgs(e, "memcmp", args, 3)
	a, b, n := vm.Addr(args[0]), vm.Addr(args[1]), args[2]
	r := 0
	// No early exit on a difference: C memcmp may stop, but the legacy
	// implementation access-checked both full ranges, and keeping that
	// behaviour keeps the trap accounting identical.
	for done := uint64(0); done < n; {
		k := chunkLen(a.Add(done), b.Add(done), n-done)
		e.View(a.Add(done), k, func(_ uint64, ca []byte) {
			e.View(b.Add(done), k, func(_ uint64, cb []byte) {
				if r == 0 {
					r = bytes.Compare(ca, cb)
				}
			})
		})
		done += k
	}
	switch {
	case r < 0:
		return []uint64{^uint64(0)}
	case r > 0:
		return []uint64{1}
	}
	return []uint64{0}
}

// chunkLen clamps n so that [a, a+n) and [b, b+n) each stay on one page.
func chunkLen(a, b vm.Addr, n uint64) uint64 {
	if r := vm.PageSize - a.PageOff(); n > r {
		n = r
	}
	if r := vm.PageSize - b.PageOff(); n > r {
		n = r
	}
	return n
}

// strlen(p) returns the length of the NUL-terminated string at p. The scan
// runs a page-sized zero-copy view at a time — access checks are
// page-granular, so it touches exactly the pages the byte-wise scan would.
func strlen(e *cubicle.Env, args []uint64) []uint64 {
	cubicle.GuardArgs(e, "strlen", args, 1)
	addr := vm.Addr(args[0])
	var n uint64
	for {
		a := addr.Add(n)
		k := vm.PageSize - a.PageOff()
		found := -1
		e.View(a, k, func(_ uint64, chunk []byte) {
			found = bytes.IndexByte(chunk, 0)
		})
		if found >= 0 {
			return []uint64{n + uint64(found)}
		}
		n += k
	}
}

// strncmp(a, b, n) compares at most n bytes of two NUL-terminated strings,
// chunked over paired views like memcmp.
func strncmp(e *cubicle.Env, args []uint64) []uint64 {
	cubicle.GuardArgs(e, "strncmp", args, 3)
	a, b := vm.Addr(args[0]), vm.Addr(args[1])
	r := 0
	for done := uint64(0); done < args[2] && r == 0; {
		k := chunkLen(a.Add(done), b.Add(done), args[2]-done)
		stop := false
		e.View(a.Add(done), k, func(_ uint64, ca []byte) {
			e.View(b.Add(done), k, func(_ uint64, cb []byte) {
				for i := range ca {
					if ca[i] != cb[i] {
						if ca[i] < cb[i] {
							r = -1
						} else {
							r = 1
						}
						return
					}
					if ca[i] == 0 {
						stop = true
						return
					}
				}
			})
		})
		if stop {
			break
		}
		done += k
	}
	switch {
	case r < 0:
		return []uint64{^uint64(0)}
	case r > 0:
		return []uint64{1}
	}
	return []uint64{0}
}

// Client provides typed access to LIBC from another component.
type Client struct {
	memcpy, memset, memcmp cubicle.Handle
}

// NewClient resolves LIBC's entry points for the given caller cubicle.
func NewClient(m *cubicle.Monitor, caller cubicle.ID) *Client {
	return &Client{
		memcpy: m.MustResolve(caller, Name, "memcpy"),
		memset: m.MustResolve(caller, Name, "memset"),
		memcmp: m.MustResolve(caller, Name, "memcmp"),
	}
}

// Memcpy calls LIBC memcpy.
func (c *Client) Memcpy(e *cubicle.Env, dst, src vm.Addr, n uint64) {
	c.memcpy.Call(e, uint64(dst), uint64(src), n)
}

// Memset calls LIBC memset.
func (c *Client) Memset(e *cubicle.Env, dst vm.Addr, v byte, n uint64) {
	c.memset.Call(e, uint64(dst), uint64(v), n)
}

// Memcmp calls LIBC memcmp; returns -1, 0 or 1.
func (c *Client) Memcmp(e *cubicle.Env, a, b vm.Addr, n uint64) int {
	r := c.memcmp.Call(e, uint64(a), uint64(b), n)[0]
	switch r {
	case 0:
		return 0
	case 1:
		return 1
	default:
		return -1
	}
}
