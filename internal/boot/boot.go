// Package boot assembles CubicleOS deployments: it runs the builder over
// a component set, loads the resulting system image, and performs the
// load-time wiring (callback-table interposition, allocator strategy
// injection) that the paper's loader does for Unikraft systems.
package boot

import (
	"fmt"

	"cubicleos/internal/cubicle"
	"cubicleos/internal/cycles"
	"cubicleos/internal/faultinject"
	"cubicleos/internal/lwip"
	"cubicleos/internal/netdev"
	"cubicleos/internal/plat"
	"cubicleos/internal/ramfs"
	"cubicleos/internal/ualloc"
	"cubicleos/internal/uktime"
	"cubicleos/internal/ulibc"
	"cubicleos/internal/urandom"
	"cubicleos/internal/vfscore"
)

// UnikraftWorkScale models the compute-efficiency gap between Unikraft
// 0.4 and native Linux that the paper measures (speedtest1 on plain
// Unikraft runs ≈2.8× slower than on Linux even without any isolation):
// immature allocators, unoptimised libc routines and a single-threaded
// runtime make the same modelled computation cost more cycles. Set it
// with Monitor.Clock.SetWorkScale on Unikraft-based deployments
// (including CubicleOS, which builds on Unikraft); Linux- and
// Genode-hosted baselines use 1.0.
const UnikraftWorkScale = 3.4

// Config describes a deployment.
type Config struct {
	// Mode is the isolation mode (Figure 6 ablation ladder).
	Mode cubicle.Mode
	// Costs overrides the cost table; nil selects cycles.DefaultCosts.
	Costs *cycles.Costs
	// Groups fuses components into shared cubicles (component -> group
	// name), e.g. {"VFSCORE": "CORE", "RAMFS": "CORE"} for CubicleOS-3.
	Groups map[string]string
	// Net adds the network stack (NETDEV and LWIP) to the deployment.
	Net bool
	// RamfsViaAlloc makes RAMFS obtain file pages from the ALLOC
	// component (NGINX deployment) instead of its own sub-allocator
	// (SQLite deployment).
	RamfsViaAlloc bool
	// LwipViaAlloc makes LWIP obtain socket buffers from the ALLOC
	// component (NGINX deployment).
	LwipViaAlloc bool
	// SendBuf overrides LWIP's send-buffer capacity (0 = default 1 MiB).
	SendBuf uint64
	// Extra components joined into the build (applications).
	Extra []*cubicle.Component
	// Seed for the shared random device.
	Seed uint64
	// TraceEvents, when non-zero, enables the observability layer with a
	// ring of that many events, attached before any component loads so
	// the per-cubicle cycle profile covers the whole virtual clock.
	TraceEvents int
	// TraceSamplePeriod, when non-zero with TraceEvents, starts the
	// virtual-clock sampling profiler with that period in cycles.
	TraceSamplePeriod uint64
	// MetricsInterval, when non-zero, enables the virtual-time metrics
	// pipeline: every that many virtual cycles the monitor snapshots its
	// counters, rates and health ladder into a bounded time-series ring
	// (see Monitor.EnableMetrics). Independent of TraceEvents, though the
	// crossing-latency percentiles in each sample need tracing on.
	MetricsInterval uint64
	// MetricsRing bounds the sample ring (0 = default 256 samples).
	MetricsRing int
	// Supervision, when non-nil, enables fault containment with this
	// restart policy: faults in a callee cubicle unwind only to the
	// crossing, the cubicle is quarantined and later restarted.
	Supervision *cubicle.RestartPolicy
	// Chaos, when non-nil, attaches a deterministic fault injector after
	// boot wiring completes. The injector starts disarmed; arm it via
	// System.Chaos once provisioning is done.
	Chaos *faultinject.Config
	// MemQuotas caps named cubicles' monitor page footprints in bytes;
	// a cubicle exceeding its cap gets a contained QuotaFault instead of
	// more pages. Group names are valid keys when Groups fuses cubicles.
	MemQuotas map[string]uint64
	// AllocClientQuota caps each ALLOC client's arena footprint in bytes
	// (0 = unbounded, the seed behaviour).
	AllocClientQuota uint64
	// WireCap bounds the NETDEV wire queues in frames per direction
	// (0 = unbounded). A full queue drops or backpressures explicitly.
	WireCap int
	// LwipReapClosed enables reclamation of fully closed LWIP sockets,
	// bounding the stack's memory under connection churn.
	LwipReapClosed bool
	// CheckpointInterval, when non-zero, arms warm recovery: every that
	// many virtual cycles the monitor captures a checkpoint of each
	// quiescent checkpointable cubicle, and the supervisor's restart path
	// restores the last good checkpoint instead of rebuilding from empty.
	// Meaningful with Supervision set; harmless without it (checkpoints
	// are taken but never consumed).
	CheckpointInterval uint64
	// SMPCores, when > 1, gives the simulated machine that many cores:
	// per-core virtual clocks, a GVT machine over them, and libmpk-style
	// TLB shootdowns on every retag. The default (0 or 1) keeps the
	// single-core monitor, whose figures are byte-identical to the seed.
	SMPCores int
	// Cluster is this system's backend index when it boots as one member
	// of a virtual cluster (internal/cluster); 0 for standalone systems.
	// It keys the per-backend chaos decision streams — most importantly
	// the wire-drop schedule, which is wired here when Chaos sets
	// DropAtWire — so every backend loses different frames under the same
	// cluster seed.
	Cluster int
}

// System is a booted deployment.
type System struct {
	M    *cubicle.Monitor
	Env  *cubicle.Env
	Cubs map[string]*cubicle.Cubicle

	Plat   *plat.Module
	Time   *uktime.Module
	Alloc  *ualloc.Module
	VFS    *vfscore.Module
	Ramfs  *ramfs.Module
	Rand   *urandom.Device
	Netdev *netdev.Module // nil unless Config.Net
	Lwip   *lwip.Module   // nil unless Config.Net

	// Sup is the fault-containment supervisor (nil unless
	// Config.Supervision was set).
	Sup *cubicle.Supervisor
	// Chaos is the deterministic fault injector (nil unless Config.Chaos
	// was set). It boots disarmed.
	Chaos *faultinject.Injector
}

// NewFS boots the file-system stack: PLAT, TIME, ALLOC, LIBC, RANDOM,
// VFSCORE and RAMFS, plus any extra application components, in the given
// mode. The VFSCORE→RAMFS callback table is interposed with cross-cubicle
// handles, and RAMFS gets its allocator strategy.
func NewFS(cfg Config) (*System, error) {
	costs := cycles.DefaultCosts()
	if cfg.Costs != nil {
		costs = *cfg.Costs
	}
	s := &System{
		Plat:  plat.New(),
		Alloc: ualloc.New(),
		VFS:   vfscore.New(),
		Ramfs: ramfs.New(),
		Rand:  urandom.New(cfg.Seed),
	}
	m := cubicle.NewMonitor(cfg.Mode, costs)
	if cfg.SMPCores > 1 {
		m.EnableSMP(cfg.SMPCores)
	}
	if cfg.TraceEvents > 0 {
		trc := m.EnableTracing(cfg.TraceEvents)
		if cfg.TraceSamplePeriod > 0 {
			trc.EnableSampling(cfg.TraceSamplePeriod)
		}
	}
	if cfg.MetricsInterval > 0 {
		ring := cfg.MetricsRing
		if ring == 0 {
			ring = 256
		}
		m.EnableMetrics(cfg.MetricsInterval, ring)
	}
	if cfg.Supervision != nil {
		s.Sup = m.EnableContainment(*cfg.Supervision)
	}
	if cfg.CheckpointInterval > 0 {
		m.EnableCheckpoints(cfg.CheckpointInterval)
	}
	s.M = m
	s.Time = uktime.New(m.Clock)

	b := cubicle.NewBuilder()
	for _, c := range []*cubicle.Component{
		s.Plat.Component(),
		s.Time.Component(),
		s.Alloc.Component(),
		ulibc.Component(),
		s.Rand.Component(),
		s.VFS.Component(),
		s.Ramfs.Component(),
	} {
		if err := b.Add(c); err != nil {
			return nil, err
		}
	}
	if cfg.Net {
		s.Netdev = netdev.New()
		s.Lwip = lwip.New()
		if cfg.SendBuf != 0 {
			s.Lwip.SendBufCap = cfg.SendBuf
		}
		if err := b.Add(s.Netdev.Component()); err != nil {
			return nil, err
		}
		if err := b.Add(s.Lwip.Component()); err != nil {
			return nil, err
		}
	}
	for _, c := range cfg.Extra {
		if err := b.Add(c); err != nil {
			return nil, err
		}
	}
	si, err := b.Build()
	if err != nil {
		return nil, err
	}
	cubs, err := cubicle.NewLoader(m).LoadSystem(si, cfg.Groups)
	if err != nil {
		return nil, err
	}
	s.Cubs = cubs
	s.Env = m.NewEnv(m.NewThread())

	// Load-time wiring: the VFS backend callback table is resolved as
	// dynamic symbols on behalf of the VFSCORE cubicle (§5.2), and RAMFS
	// receives its allocator strategy and LIBC client.
	s.VFS.SetBackend(ramfs.BackendTable(m, cubs[vfscore.Name].ID))
	ramfsID := cubs[ramfs.Name].ID
	var alloc ualloc.Allocator
	if cfg.RamfsViaAlloc {
		alloc = &ualloc.Remote{C: ualloc.NewClient(m, ramfsID)}
	} else {
		alloc = ualloc.NewLocal()
	}
	s.Ramfs.SetDeps(alloc, ulibc.NewClient(m, ramfsID))
	if cfg.Net {
		lwipID := cubs[lwip.Name].ID
		var lalloc ualloc.Allocator
		if cfg.LwipViaAlloc {
			lalloc = &ualloc.Remote{C: ualloc.NewClient(m, lwipID)}
		} else {
			lalloc = ualloc.NewLocal()
		}
		s.Lwip.SetDeps(netdev.NewClient(m, lwipID), lalloc, cubs[netdev.Name].ID)
	}
	// Resource governance: applied after load so quotas see the booted
	// cubicle IDs but before any workload pages are mapped.
	for name, q := range cfg.MemQuotas {
		c, ok := cubs[name]
		if !ok {
			return nil, fmt.Errorf("boot: MemQuotas names unknown cubicle %q", name)
		}
		m.SetMemQuota(c.ID, q)
	}
	s.Alloc.ClientQuota = cfg.AllocClientQuota
	if cfg.Net {
		s.Netdev.Wire().Cap = cfg.WireCap
		s.Lwip.ReapClosed = cfg.LwipReapClosed
	}
	if cfg.Chaos != nil {
		// Attached last so no boot wiring draws from the PRNG stream; it
		// still boots disarmed so provisioning also runs fault-free.
		s.Chaos = faultinject.New(*cfg.Chaos)
		m.SetInjector(s.Chaos)
		if cfg.Net && cfg.Chaos.DropAtWire > 0 {
			inj, key := s.Chaos, cfg.Cluster
			s.Netdev.Wire().SetDropper(func() bool { return inj.AtWire(key) })
		}
	}
	return s, nil
}

// MustNewFS is NewFS for tests and examples where failure is fatal.
func MustNewFS(cfg Config) *System {
	s, err := NewFS(cfg)
	if err != nil {
		panic(err)
	}
	return s
}

// RunAs executes fn with the default thread switched into the named
// component's cubicle — the way an application main is entered.
func (s *System) RunAs(component string, fn func(e *cubicle.Env)) error {
	return s.M.RunAs(s.Env, s.Cubs[component].ID, fn)
}
