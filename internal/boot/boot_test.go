package boot

import (
	"bytes"
	"testing"

	"cubicleos/internal/cubicle"
	"cubicleos/internal/ramfs"
	"cubicleos/internal/uksched"
	"cubicleos/internal/vfscore"
	"cubicleos/internal/vm"
)

// appComponent returns a minimal application component (public main).
func appComponent() *cubicle.Component {
	return &cubicle.Component{
		Name: "APP",
		Kind: cubicle.KindIsolated,
		Exports: []cubicle.ExportDecl{
			{Name: "main", Fn: func(e *cubicle.Env, args []uint64) []uint64 { return nil }},
		},
	}
}

// appIO is the application-side I/O state: a page-aligned buffer windowed
// to VFSCORE and RAMFS ahead of time (the nested-call rule).
type appIO struct {
	vfs *vfscore.Client
	buf vm.Addr
	n   uint64
}

func newAppIO(t *testing.T, s *System, e *cubicle.Env, size uint64) *appIO {
	t.Helper()
	io := &appIO{vfs: vfscore.NewClient(s.M, s.Cubs["APP"].ID), n: size}
	io.buf = e.HeapAlloc(size)
	wid := e.WindowInit()
	e.WindowAdd(wid, io.buf, size)
	e.WindowOpen(wid, e.CubicleOf(vfscore.Name))
	e.WindowOpen(wid, e.CubicleOf(ramfs.Name))
	io.vfs.InitBuffers(e, e.CubicleOf(ramfs.Name))
	return io
}

func pattern(n int, seed byte) []byte {
	b := make([]byte, n)
	for i := range b {
		b[i] = byte(i)*7 + seed
	}
	return b
}

func TestFSStackAllModes(t *testing.T) {
	for _, mode := range []cubicle.Mode{
		cubicle.ModeUnikraft, cubicle.ModeTrampoline, cubicle.ModeNoACL, cubicle.ModeFull,
	} {
		t.Run(mode.String(), func(t *testing.T) {
			s := MustNewFS(Config{Mode: mode, Extra: []*cubicle.Component{appComponent()}})
			err := s.RunAs("APP", func(e *cubicle.Env) {
				io := newAppIO(t, s, e, 64*1024)
				vfs := io.vfs

				if errno := vfs.Mkdir(e, "/data"); errno != vfscore.EOK {
					t.Fatalf("mkdir: errno %d", errno)
				}
				fd, errno := vfs.Open(e, "/data/file.bin", vfscore.OCreat|vfscore.ORdwr)
				if errno != vfscore.EOK {
					t.Fatalf("open: errno %d", errno)
				}
				want := pattern(10000, 3)
				e.Write(io.buf, want)
				n, errno := vfs.Write(e, fd, io.buf, uint64(len(want)))
				if errno != vfscore.EOK || n != uint64(len(want)) {
					t.Fatalf("write: n=%d errno=%d", n, errno)
				}
				vfs.Close(e, fd)

				size, errno := vfs.Stat(e, "/data/file.bin")
				if errno != vfscore.EOK || size != uint64(len(want)) {
					t.Fatalf("stat: size=%d errno=%d", size, errno)
				}

				fd, errno = vfs.Open(e, "/data/file.bin", vfscore.ORdonly)
				if errno != vfscore.EOK {
					t.Fatalf("reopen: errno %d", errno)
				}
				e.Memset(io.buf, 0, uint64(len(want)))
				n, errno = vfs.Read(e, fd, io.buf, uint64(len(want)))
				if errno != vfscore.EOK || n != uint64(len(want)) {
					t.Fatalf("read: n=%d errno=%d", n, errno)
				}
				if got := e.ReadBytes(io.buf, n); !bytes.Equal(got, want) {
					t.Fatal("read-back mismatch")
				}
				// Reads past EOF return 0.
				n, errno = vfs.Read(e, fd, io.buf, 100)
				if errno != vfscore.EOK || n != 0 {
					t.Fatalf("read at EOF: n=%d errno=%d", n, errno)
				}
				// Seek + partial read.
				off, errno := vfs.Lseek(e, fd, 5000, vfscore.SeekSet)
				if errno != vfscore.EOK || off != 5000 {
					t.Fatalf("lseek: off=%d errno=%d", off, errno)
				}
				n, _ = vfs.Read(e, fd, io.buf, 16)
				if n != 16 || !bytes.Equal(e.ReadBytes(io.buf, 16), want[5000:5016]) {
					t.Fatal("seek read mismatch")
				}
				vfs.Close(e, fd)

				// pwrite/pread at offsets.
				fd, _ = vfs.Open(e, "/data/file.bin", vfscore.ORdwr)
				e.Write(io.buf, []byte("OVERLAY"))
				if n, errno := vfs.PWrite(e, fd, io.buf, 7, 100); errno != vfscore.EOK || n != 7 {
					t.Fatalf("pwrite: n=%d errno=%d", n, errno)
				}
				if n, errno := vfs.PRead(e, fd, io.buf.Add(100), 7, 100); errno != vfscore.EOK || n != 7 {
					t.Fatalf("pread: n=%d errno=%d", n, errno)
				} else if string(e.ReadBytes(io.buf.Add(100), 7)) != "OVERLAY" {
					t.Fatal("pread mismatch")
				}
				// Truncate.
				if errno := vfs.FTruncate(e, fd, 123); errno != vfscore.EOK {
					t.Fatalf("ftruncate: errno %d", errno)
				}
				if size, _ := vfs.FStat(e, fd); size != 123 {
					t.Fatalf("size after truncate = %d", size)
				}
				if errno := vfs.FSync(e, fd); errno != vfscore.EOK {
					t.Fatalf("fsync: errno %d", errno)
				}
				vfs.Close(e, fd)

				// Append mode.
				fd, _ = vfs.Open(e, "/data/file.bin", vfscore.OWronly|vfscore.OAppend)
				e.Write(io.buf, []byte("TAIL"))
				vfs.Write(e, fd, io.buf, 4)
				if size, _ := vfs.FStat(e, fd); size != 127 {
					t.Fatalf("size after append = %d", size)
				}
				vfs.Close(e, fd)

				// Readdir.
				fd2, _ := vfs.Open(e, "/data/two.bin", vfscore.OCreat|vfscore.ORdwr)
				vfs.Close(e, fd2)
				name0, errno := vfs.Readdir(e, "/data", 0)
				if errno != vfscore.EOK || name0 != "file.bin" {
					t.Fatalf("readdir[0] = %q errno=%d", name0, errno)
				}
				name1, _ := vfs.Readdir(e, "/data", 1)
				if name1 != "two.bin" {
					t.Fatalf("readdir[1] = %q", name1)
				}
				if _, errno := vfs.Readdir(e, "/data", 2); errno != vfscore.ENOENT {
					t.Fatalf("readdir past end: errno %d", errno)
				}

				// Rename.
				if errno := vfs.Rename(e, "/data/two.bin", "/data/three.bin"); errno != vfscore.EOK {
					t.Fatalf("rename: errno %d", errno)
				}
				if _, errno := vfs.Stat(e, "/data/two.bin"); errno != vfscore.ENOENT {
					t.Fatal("renamed file still present")
				}

				// Unlink.
				if errno := vfs.Unlink(e, "/data/three.bin"); errno != vfscore.EOK {
					t.Fatalf("unlink: errno %d", errno)
				}
				if _, errno := vfs.Stat(e, "/data/three.bin"); errno != vfscore.ENOENT {
					t.Fatal("unlinked file still present")
				}

				// Error paths.
				if _, errno := vfs.Open(e, "/nope", vfscore.ORdonly); errno != vfscore.ENOENT {
					t.Errorf("open missing: errno %d", errno)
				}
				if _, errno := vfs.Read(e, 999, io.buf, 1); errno != vfscore.EBADF {
					t.Errorf("read bad fd: errno %d", errno)
				}
				if errno := vfs.Mkdir(e, "/data"); errno != vfscore.EEXIST {
					t.Errorf("mkdir existing: errno %d", errno)
				}
				if _, errno := vfs.Open(e, "/nodir/x", vfscore.OCreat); errno != vfscore.ENOENT {
					t.Errorf("create in missing dir: errno %d", errno)
				}
			})
			if err != nil {
				t.Fatalf("mode %v: %v", mode, err)
			}

			// Structural checks.
			appID := s.Cubs["APP"].ID
			vfsID := s.Cubs[vfscore.Name].ID
			ramfsID := s.Cubs[ramfs.Name].ID
			if s.M.Stats.Calls[cubicle.Edge{From: appID, To: vfsID}] == 0 {
				t.Error("no APP->VFSCORE calls recorded")
			}
			if s.M.Stats.Calls[cubicle.Edge{From: vfsID, To: ramfsID}] == 0 {
				t.Error("no VFSCORE->RAMFS calls recorded")
			}
			if mode.MPKEnabled() && s.M.Stats.Faults == 0 {
				t.Error("MPK mode took no faults")
			}
			if !mode.MPKEnabled() && s.M.Stats.Faults != 0 {
				t.Error("non-MPK mode took faults")
			}
		})
	}
}

// TestFSStackIsolationHolds: without the app window, RAMFS cannot reach
// the app's buffer — the write call faults rather than corrupting.
func TestFSStackIsolationHolds(t *testing.T) {
	s := MustNewFS(Config{Mode: cubicle.ModeFull, Extra: []*cubicle.Component{appComponent()}})
	err := s.RunAs("APP", func(e *cubicle.Env) {
		vfs := vfscore.NewClient(s.M, s.Cubs["APP"].ID)
		vfs.InitBuffers(e, e.CubicleOf(ramfs.Name))
		buf := e.HeapAlloc(4096) // NOT windowed
		fd, errno := vfs.Open(e, "/f", vfscore.OCreat|vfscore.ORdwr)
		if errno != vfscore.EOK {
			t.Fatalf("open: %d", errno)
		}
		e.Write(buf, []byte("secret"))
		fault := cubicle.Catch(func() { vfs.Write(e, fd, buf, 6) })
		if fault == nil {
			t.Fatal("RAMFS read the app buffer without a window")
		}
		if _, ok := fault.(*cubicle.ProtectionFault); !ok {
			t.Fatalf("got %T, want *ProtectionFault", fault)
		}
	})
	if err != nil {
		t.Fatal(err)
	}
}

// TestFSStackGrouped boots the CubicleOS-3 style deployment (VFSCORE and
// RAMFS fused) and checks the fused calls are no longer crossings.
func TestFSStackGrouped(t *testing.T) {
	s := MustNewFS(Config{
		Mode:   cubicle.ModeFull,
		Groups: map[string]string{vfscore.Name: "CORE", ramfs.Name: "CORE"},
		Extra:  []*cubicle.Component{appComponent()},
	})
	if s.Cubs[vfscore.Name] != s.Cubs[ramfs.Name] {
		t.Fatal("grouping did not fuse VFSCORE and RAMFS")
	}
	err := s.RunAs("APP", func(e *cubicle.Env) {
		io := newAppIOGrouped(t, s, e)
		fd, errno := io.vfs.Open(e, "/g", vfscore.OCreat|vfscore.ORdwr)
		if errno != vfscore.EOK {
			t.Fatalf("open: %d", errno)
		}
		e.Write(io.buf, []byte("grouped"))
		if n, errno := io.vfs.Write(e, fd, io.buf, 7); errno != vfscore.EOK || n != 7 {
			t.Fatalf("write: n=%d errno=%d", n, errno)
		}
	})
	if err != nil {
		t.Fatal(err)
	}
	core := s.Cubs[vfscore.Name].ID
	for edge := range s.M.Stats.Calls {
		if edge.From == core && edge.To == core {
			t.Error("intra-group call recorded as crossing")
		}
	}
}

func newAppIOGrouped(t *testing.T, s *System, e *cubicle.Env) *appIO {
	t.Helper()
	io := &appIO{vfs: vfscore.NewClient(s.M, s.Cubs["APP"].ID), n: 4096}
	io.buf = e.HeapAlloc(4096)
	wid := e.WindowInit()
	e.WindowAdd(wid, io.buf, 4096)
	e.WindowOpen(wid, e.CubicleOf(vfscore.Name))
	io.vfs.InitBuffers(e, e.CubicleOf(ramfs.Name))
	return io
}

// TestFSStackViaAlloc boots the NGINX-style deployment where RAMFS gets
// file pages from the ALLOC component.
func TestFSStackViaAlloc(t *testing.T) {
	s := MustNewFS(Config{Mode: cubicle.ModeFull, RamfsViaAlloc: true,
		Extra: []*cubicle.Component{appComponent()}})
	err := s.RunAs("APP", func(e *cubicle.Env) {
		io := newAppIO(t, s, e, 16*1024)
		fd, errno := io.vfs.Open(e, "/a", vfscore.OCreat|vfscore.ORdwr)
		if errno != vfscore.EOK {
			t.Fatalf("open: %d", errno)
		}
		want := pattern(9000, 9)
		e.Write(io.buf, want)
		if n, errno := io.vfs.Write(e, fd, io.buf, uint64(len(want))); errno != vfscore.EOK || n != uint64(len(want)) {
			t.Fatalf("write: n=%d errno=%d", n, errno)
		}
		e.Memset(io.buf, 0, uint64(len(want)))
		io.vfs.Lseek(e, fd, 0, vfscore.SeekSet)
		if n, errno := io.vfs.Read(e, fd, io.buf, uint64(len(want))); errno != vfscore.EOK || n != uint64(len(want)) {
			t.Fatalf("read: n=%d errno=%d", n, errno)
		}
		if !bytes.Equal(e.ReadBytes(io.buf, uint64(len(want))), want) {
			t.Fatal("alloc-backed read-back mismatch")
		}
	})
	if err != nil {
		t.Fatal(err)
	}
	ramfsID := s.Cubs[ramfs.Name].ID
	allocID := s.Cubs["ALLOC"].ID
	if s.M.Stats.Calls[cubicle.Edge{From: ramfsID, To: allocID}] == 0 {
		t.Error("RAMFS never called ALLOC in via-alloc deployment")
	}
}

// TestModeLadderFS: identical FS workload gets monotonically more
// expensive up the isolation ladder (the structure behind Figure 6).
func TestModeLadderFS(t *testing.T) {
	var costs [4]uint64
	modes := []cubicle.Mode{cubicle.ModeUnikraft, cubicle.ModeTrampoline, cubicle.ModeNoACL, cubicle.ModeFull}
	for i, mode := range modes {
		s := MustNewFS(Config{Mode: mode, Extra: []*cubicle.Component{appComponent()}})
		err := s.RunAs("APP", func(e *cubicle.Env) {
			io := newAppIO(t, s, e, 8192)
			fd, _ := io.vfs.Open(e, "/w", vfscore.OCreat|vfscore.ORdwr)
			for r := 0; r < 50; r++ {
				e.Write(io.buf, pattern(4096, byte(r)))
				io.vfs.PWrite(e, fd, io.buf, 4096, uint64(r)*4096)
			}
			io.vfs.Close(e, fd)
		})
		if err != nil {
			t.Fatal(err)
		}
		costs[i] = s.M.Clock.Cycles()
	}
	for i := 1; i < len(costs); i++ {
		if costs[i] <= costs[i-1] {
			t.Errorf("mode %v (%d cycles) not more expensive than %v (%d)",
				modes[i], costs[i], modes[i-1], costs[i-1])
		}
	}
}

// TestCooperativeTasksInterleaved runs two application tasks on the
// uksched cooperative scheduler (the Unikraft threading model): a writer
// streaming records into a file and a reader polling for them, both
// crossing the isolated FS stack, interleaved step by step.
func TestCooperativeTasksInterleaved(t *testing.T) {
	s := MustNewFS(Config{Mode: cubicle.ModeFull, Extra: []*cubicle.Component{appComponent()}})
	var io *appIO
	if err := s.RunAs("APP", func(e *cubicle.Env) {
		io = newAppIO(t, s, e, 8192)
	}); err != nil {
		t.Fatal(err)
	}

	const rounds = 20
	written, read := 0, 0
	sched := uksched.New()
	sched.AddFunc("writer", func() uksched.Status {
		if written >= rounds {
			return uksched.Done
		}
		err := s.RunAs("APP", func(e *cubicle.Env) {
			fd, errno := io.vfs.Open(e, "/stream", vfscore.OCreat|vfscore.OWronly|vfscore.OAppend)
			if errno != vfscore.EOK {
				t.Fatalf("open for append: %d", errno)
			}
			e.Write(io.buf, []byte{byte(written)})
			io.vfs.Write(e, fd, io.buf, 1)
			io.vfs.Close(e, fd)
		})
		if err != nil {
			t.Fatal(err)
		}
		written++
		return uksched.Yield
	})
	sched.AddFunc("reader", func() uksched.Status {
		var size uint64
		err := s.RunAs("APP", func(e *cubicle.Env) {
			size, _ = io.vfs.Stat(e, "/stream")
		})
		if err != nil {
			t.Fatal(err)
		}
		read = int(size)
		if written >= rounds && read >= rounds {
			return uksched.Done
		}
		if read == 0 {
			return uksched.Block
		}
		return uksched.Yield
	})
	if !sched.Run(100) {
		t.Fatalf("scheduler stalled: blocked=%v written=%d read=%d", sched.Blocked(), written, read)
	}
	// Verify the stream contents survived the interleaving.
	if err := s.RunAs("APP", func(e *cubicle.Env) {
		fd, _ := io.vfs.Open(e, "/stream", vfscore.ORdonly)
		n, _ := io.vfs.Read(e, fd, io.buf, 8192)
		if n != rounds {
			t.Fatalf("stream has %d bytes, want %d", n, rounds)
		}
		data := e.ReadBytes(io.buf, n)
		for i := range data {
			if data[i] != byte(i) {
				t.Fatalf("stream[%d] = %d", i, data[i])
			}
		}
	}); err != nil {
		t.Fatal(err)
	}
}
