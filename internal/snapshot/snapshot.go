// Package snapshot defines the versioned, deterministic byte image of one
// cubicle's architectural state: its heap pages (contents and per-page MPK
// metadata), its sub-allocator free lists, its window layout, its journal
// position and the opaque per-component state blobs. The image is what the
// checkpoint manager captures at quiescent points and what a warm
// supervised restart restores instead of rebuilding from empty.
//
// The encoding is deliberately boring: a fixed magic, a version word, and
// length-prefixed little-endian records in a canonical order (pages sorted
// by page number, extents by address, components in registration order).
// Two captures of identical state are bit-identical, so images can be
// compared, hashed and replayed. Decode is strict — every length is
// bounds-checked, order is validated, trailing bytes are an error — so a
// corrupted or adversarial image fails with a typed *DecodeError instead
// of corrupting the restore path.
package snapshot

import (
	"encoding/binary"
	"fmt"

	"cubicleos/internal/vm"
)

// Magic identifies a cubicle snapshot image; Version is bumped on any
// layout change (decode rejects versions it does not know).
const (
	Magic   = "CBOSNAP1"
	Version = 1
)

// Decode hard limits: an image claiming more than these is corrupt by
// definition (they are far above anything the simulated machine produces)
// and is rejected before any allocation is sized from attacker-controlled
// counts.
const (
	MaxPages      = 1 << 20
	MaxExtents    = 1 << 22
	MaxWindows    = 1 << 16
	MaxComponents = 1 << 10
	MaxBlob       = 1 << 28
	MaxName       = 1 << 12
)

// PageImage is one checkpointed page: its page number and the full
// architectural state the simulated MMU keeps per page.
type PageImage struct {
	PN   uint64
	Key  uint8 // MPK key the page was tagged with at capture
	Perm uint8
	Type uint8
	Data [vm.PageSize]byte
}

// Extent is an (address, size) pair: a free-list block or an allocation.
type Extent struct {
	Addr uint64
	Size uint64
}

// HeapImage is the sub-allocator's bookkeeping: the sorted free list, the
// live allocation sizes (sorted by address), and the arena/live byte
// counters the quota accounting derives from.
type HeapImage struct {
	Free       []Extent
	Sizes      []Extent
	ArenaBytes uint64
	LiveBytes  uint64
}

// WindowImage is one window owned by the cubicle at capture time. The
// quiescence rule guarantees captured windows are closed (no grantee bit
// set) and unpinned, so only the identity and ranges need recording.
type WindowImage struct {
	WID    uint32
	Ranges []Extent
}

// ComponentImage is one component's opaque state blob, produced by its
// Snapshot hook and fed back to its Restore hook.
type ComponentImage struct {
	Name string
	Data []byte
}

// Image is the complete checkpoint of one cubicle.
type Image struct {
	Cubicle uint32
	Cycle   uint64 // virtual clock at capture
	Journal uint64 // containment-journal position at capture (0 when quiescent)
	Pages   []PageImage
	Heap    HeapImage
	Windows []WindowImage
	Comps   []ComponentImage
}

// DecodeError reports why an image failed to decode, with the byte offset
// at which decoding stopped.
type DecodeError struct {
	Off    int
	Reason string
}

func (e *DecodeError) Error() string {
	return fmt.Sprintf("snapshot: corrupt image at byte %d: %s", e.Off, e.Reason)
}

// Encode serializes the image. The output is a pure function of the
// image's contents: no maps are iterated, no timestamps are stamped.
func Encode(img *Image) []byte {
	b := make([]byte, 0, encodedSize(img))
	b = append(b, Magic...)
	b = le16(b, Version)
	b = le32(b, img.Cubicle)
	b = le64(b, img.Cycle)
	b = le64(b, img.Journal)

	b = le32(b, uint32(len(img.Pages)))
	for i := range img.Pages {
		p := &img.Pages[i]
		b = le64(b, p.PN)
		b = append(b, p.Key, p.Perm, p.Type)
		b = append(b, p.Data[:]...)
	}

	b = extents(b, img.Heap.Free)
	b = extents(b, img.Heap.Sizes)
	b = le64(b, img.Heap.ArenaBytes)
	b = le64(b, img.Heap.LiveBytes)

	b = le32(b, uint32(len(img.Windows)))
	for i := range img.Windows {
		w := &img.Windows[i]
		b = le32(b, w.WID)
		b = extents(b, w.Ranges)
	}

	b = le32(b, uint32(len(img.Comps)))
	for i := range img.Comps {
		c := &img.Comps[i]
		b = le32(b, uint32(len(c.Name)))
		b = append(b, c.Name...)
		b = le32(b, uint32(len(c.Data)))
		b = append(b, c.Data...)
	}
	return b
}

func encodedSize(img *Image) int {
	n := len(Magic) + 2 + 4 + 8 + 8
	n += 4 + len(img.Pages)*(8+3+vm.PageSize)
	n += 4 + len(img.Heap.Free)*16
	n += 4 + len(img.Heap.Sizes)*16
	n += 16
	n += 4
	for i := range img.Windows {
		n += 4 + 4 + len(img.Windows[i].Ranges)*16
	}
	n += 4
	for i := range img.Comps {
		n += 4 + len(img.Comps[i].Name) + 4 + len(img.Comps[i].Data)
	}
	return n
}

// Decode parses and validates an image. It never panics on malformed
// input; any structural violation returns a *DecodeError.
func Decode(b []byte) (*Image, error) {
	d := &decoder{b: b}
	if string(d.take(len(Magic))) != Magic {
		return nil, d.fail("bad magic")
	}
	if v := d.u16(); v != Version {
		return nil, d.failf("unsupported version %d", v)
	}
	img := &Image{}
	img.Cubicle = d.u32()
	img.Cycle = d.u64()
	img.Journal = d.u64()

	np := d.count(MaxPages, "pages")
	img.Pages = make([]PageImage, 0, min(int(np), 4096))
	var lastPN uint64
	for i := uint32(0); i < np && d.err == nil; i++ {
		var p PageImage
		p.PN = d.u64()
		meta := d.take(3)
		if d.err == nil {
			p.Key, p.Perm, p.Type = meta[0], meta[1], meta[2]
		}
		data := d.take(vm.PageSize)
		if d.err == nil {
			copy(p.Data[:], data)
		}
		if i > 0 && d.err == nil && p.PN <= lastPN {
			return nil, d.fail("pages out of order")
		}
		lastPN = p.PN
		img.Pages = append(img.Pages, p)
	}

	img.Heap.Free = d.extents("heap free list")
	img.Heap.Sizes = d.extents("heap size table")
	img.Heap.ArenaBytes = d.u64()
	img.Heap.LiveBytes = d.u64()

	nw := d.count(MaxWindows, "windows")
	img.Windows = make([]WindowImage, 0, min(int(nw), 64))
	for i := uint32(0); i < nw && d.err == nil; i++ {
		var w WindowImage
		w.WID = d.u32()
		w.Ranges = d.extents("window ranges")
		img.Windows = append(img.Windows, w)
	}

	nc := d.count(MaxComponents, "components")
	img.Comps = make([]ComponentImage, 0, min(int(nc), 16))
	for i := uint32(0); i < nc && d.err == nil; i++ {
		var c ComponentImage
		nn := d.count(MaxName, "component name")
		c.Name = string(d.take(int(nn)))
		nd := d.count(MaxBlob, "component blob")
		c.Data = append([]byte(nil), d.take(int(nd))...)
		img.Comps = append(img.Comps, c)
	}

	if d.err != nil {
		return nil, d.err
	}
	if d.off != len(d.b) {
		return nil, d.fail("trailing bytes")
	}
	return img, nil
}

// decoder is a cursor over the image bytes; the first structural violation
// latches err and turns every further read into a no-op.
type decoder struct {
	b   []byte
	off int
	err error
}

func (d *decoder) fail(reason string) error {
	if d.err == nil {
		d.err = &DecodeError{Off: d.off, Reason: reason}
	}
	return d.err
}

func (d *decoder) failf(format string, args ...any) error {
	return d.fail(fmt.Sprintf(format, args...))
}

func (d *decoder) take(n int) []byte {
	if d.err != nil {
		return nil
	}
	if n < 0 || d.off+n > len(d.b) || d.off+n < d.off {
		d.fail("truncated")
		return nil
	}
	v := d.b[d.off : d.off+n]
	d.off += n
	return v
}

func (d *decoder) u16() uint16 {
	v := d.take(2)
	if v == nil {
		return 0
	}
	return binary.LittleEndian.Uint16(v)
}

func (d *decoder) u32() uint32 {
	v := d.take(4)
	if v == nil {
		return 0
	}
	return binary.LittleEndian.Uint32(v)
}

func (d *decoder) u64() uint64 {
	v := d.take(8)
	if v == nil {
		return 0
	}
	return binary.LittleEndian.Uint64(v)
}

// count reads a u32 element count and rejects values past the hard limit
// before any slice is sized from it.
func (d *decoder) count(limit uint32, what string) uint32 {
	n := d.u32()
	if d.err == nil && n > limit {
		d.failf("%s count %d exceeds limit %d", what, n, limit)
		return 0
	}
	return n
}

// extents reads a length-prefixed extent list, validating address order.
func (d *decoder) extents(what string) []Extent {
	n := d.count(MaxExtents, what)
	out := make([]Extent, 0, min(int(n), 64))
	var last uint64
	for i := uint32(0); i < n && d.err == nil; i++ {
		e := Extent{Addr: d.u64(), Size: d.u64()}
		if i > 0 && d.err == nil && e.Addr <= last {
			d.failf("%s out of order", what)
			return nil
		}
		last = e.Addr
		out = append(out, e)
	}
	return out
}

func le16(b []byte, v uint16) []byte { return binary.LittleEndian.AppendUint16(b, v) }
func le32(b []byte, v uint32) []byte { return binary.LittleEndian.AppendUint32(b, v) }
func le64(b []byte, v uint64) []byte { return binary.LittleEndian.AppendUint64(b, v) }

func extents(b []byte, es []Extent) []byte {
	b = le32(b, uint32(len(es)))
	for _, e := range es {
		b = le64(b, e.Addr)
		b = le64(b, e.Size)
	}
	return b
}

func min(a, b int) int {
	if a < b {
		return a
	}
	return b
}
