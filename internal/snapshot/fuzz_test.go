package snapshot

import (
	"bytes"
	"testing"
)

// FuzzSnapshotDecode throws arbitrary bytes at the strict decoder: it must
// never panic, and any image it accepts must re-encode bit-identically
// (Decode and Encode are exact inverses on the set of valid images).
func FuzzSnapshotDecode(f *testing.F) {
	f.Add([]byte{})
	f.Add([]byte(Magic))
	f.Add(Encode(&Image{}))
	f.Add(Encode(sample()))
	trunc := Encode(sample())
	f.Add(trunc[:len(trunc)/2])
	f.Fuzz(func(t *testing.T, data []byte) {
		img, err := Decode(data)
		if err != nil {
			return
		}
		if !bytes.Equal(Encode(img), data) {
			t.Fatalf("accepted image does not re-encode to its input (%d bytes)", len(data))
		}
	})
}
