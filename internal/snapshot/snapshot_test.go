package snapshot

import (
	"bytes"
	"reflect"
	"testing"
)

// sample builds a representative image exercising every record type.
func sample() *Image {
	img := &Image{
		Cubicle: 5,
		Cycle:   123_456_789,
		Journal: 0,
		Heap: HeapImage{
			Free:       []Extent{{Addr: 0x1000, Size: 0x2000}, {Addr: 0x8000, Size: 0x1000}},
			Sizes:      []Extent{{Addr: 0x3000, Size: 64}, {Addr: 0x3040, Size: 4096}},
			ArenaBytes: 64 * 4096,
			LiveBytes:  4160,
		},
		Windows: []WindowImage{
			{WID: 1, Ranges: []Extent{{Addr: 0x3000, Size: 4096}}},
			{WID: 3, Ranges: nil},
		},
		Comps: []ComponentImage{
			{Name: "RAMFS", Data: []byte{1, 2, 3, 4}},
			{Name: "EMPTY", Data: nil},
		},
	}
	for i, pn := range []uint64{3, 4, 9} {
		p := PageImage{PN: pn, Key: uint8(i + 1), Perm: 3, Type: 1}
		for j := range p.Data {
			p.Data[j] = byte(pn + uint64(j))
		}
		img.Pages = append(img.Pages, p)
	}
	return img
}

func TestRoundTrip(t *testing.T) {
	img := sample()
	enc := Encode(img)
	got, err := Decode(enc)
	if err != nil {
		t.Fatalf("Decode: %v", err)
	}
	// Normalise nil-vs-empty slices the decoder materialises.
	if !equivalent(img, got) {
		t.Fatalf("round trip mismatch:\n  in:  %+v\n  out: %+v", img, got)
	}
	// Deterministic: encoding the decoded image reproduces the bytes.
	if !bytes.Equal(enc, Encode(got)) {
		t.Fatal("re-encode is not bit-identical")
	}
}

func TestEncodeDeterministic(t *testing.T) {
	a, b := Encode(sample()), Encode(sample())
	if !bytes.Equal(a, b) {
		t.Fatal("two encodings of the same image differ")
	}
}

func TestDecodeRejectsCorruption(t *testing.T) {
	enc := Encode(sample())
	cases := map[string][]byte{
		"empty":     {},
		"bad magic": append([]byte("XXXXXXXX"), enc[8:]...),
		"truncated": enc[:len(enc)-3],
		"trailing":  append(append([]byte{}, enc...), 0xFF),
		"version":   append(append([]byte{}, enc[:8]...), append([]byte{0xFF, 0x7F}, enc[10:]...)...),
		// The page count lives right after the 30-byte header.
		"huge count": func() []byte { b := append([]byte{}, enc...); copy(b[30:], []byte{0xFF, 0xFF, 0xFF, 0xFF}); return b }(),
	}
	for name, b := range cases {
		if _, err := Decode(b); err == nil {
			t.Errorf("%s: decode accepted corrupt image", name)
		}
	}
}

func TestDecodeRejectsUnorderedPages(t *testing.T) {
	img := sample()
	img.Pages[0].PN, img.Pages[1].PN = img.Pages[1].PN, img.Pages[0].PN
	if _, err := Decode(Encode(img)); err == nil {
		t.Fatal("decode accepted pages out of order")
	}
}

func equivalent(a, b *Image) bool {
	return reflect.DeepEqual(norm(a), norm(b))
}

// norm maps nil slices to empty ones so DeepEqual compares structure.
func norm(img *Image) *Image {
	c := *img
	if c.Pages == nil {
		c.Pages = []PageImage{}
	}
	if c.Heap.Free == nil {
		c.Heap.Free = []Extent{}
	}
	if c.Heap.Sizes == nil {
		c.Heap.Sizes = []Extent{}
	}
	if c.Windows == nil {
		c.Windows = []WindowImage{}
	}
	for i := range c.Windows {
		if c.Windows[i].Ranges == nil {
			c.Windows[i].Ranges = []Extent{}
		}
	}
	if c.Comps == nil {
		c.Comps = []ComponentImage{}
	}
	for i := range c.Comps {
		if c.Comps[i].Data == nil {
			c.Comps[i].Data = []byte{}
		}
	}
	return &c
}
