package cubicle

import (
	"bufio"
	"fmt"
	"io"
	"sort"
	"strconv"
	"strings"

	"cubicleos/internal/cycles"
	"cubicleos/internal/trace"
)

// This file is the virtual-time metrics pipeline: every MetricsInterval
// virtual cycles the monitor snapshots its architectural counters, the
// health ladder and the tracer's latency digests into a bounded
// time-series ring. The samples drive the live cubicle-top dashboard and
// the OpenMetrics exposition the simulated httpd serves from /metrics —
// the observability layer dogfooding the isolation boundaries it
// measures. Like the trace rings, the sample ring is bounded and counts
// every overwrite: overload can age out history but never lies about it.

// MetricsSample is one interval's snapshot of the running system.
type MetricsSample struct {
	// Seq is the sample's position in the stream (survives ring wrap).
	Seq uint64 `json:"seq"`
	// Cycle is the sampling core's virtual clock at snapshot time.
	Cycle uint64 `json:"cycle"`
	// Interval is the virtual cycles since the previous sample (the
	// configured interval, or more if crossings were sparse).
	Interval uint64 `json:"interval_cycles"`

	// Per-interval deltas of the monitor's architectural counters.
	Calls           uint64 `json:"calls"`
	SharedCalls     uint64 `json:"shared_calls"`
	Faults          uint64 `json:"faults"`
	Retags          uint64 `json:"retags"`
	WRPKRUs         uint64 `json:"wrpkrus"`
	Sheds           uint64 `json:"sheds"`
	QuotaFaults     uint64 `json:"quota_faults"`
	DeadlineFaults  uint64 `json:"deadline_faults"`
	Retries         uint64 `json:"retries"`
	ContainedFaults uint64 `json:"contained_faults"`
	Restarts        uint64 `json:"restarts"`
	TLBHits         uint64 `json:"tlb_hits"`
	TLBMisses       uint64 `json:"tlb_misses"`
	TLBShootdowns   uint64 `json:"tlb_shootdowns"`

	// Rates over the interval, in events per virtual second.
	CallRate  float64 `json:"call_rate_per_s"`
	FaultRate float64 `json:"fault_rate_per_s"`
	ShedRate  float64 `json:"shed_rate_per_s"`

	// Health-ladder population at snapshot time.
	Healthy     int `json:"healthy"`
	Quarantined int `json:"quarantined"`
	Dead        int `json:"dead"`

	// Crossing-latency digest in cycles, from the tracer's cumulative
	// call-exit histogram (zero when tracing is off).
	CallP50 uint64 `json:"call_p50_cycles"`
	CallP99 uint64 `json:"call_p99_cycles"`
}

// metricsTotals is the scalar counter set deltas are computed over.
type metricsTotals struct {
	calls, shared, faults, retags, wrpkrus      uint64
	sheds, quota, deadline, retries, contained  uint64
	restarts, tlbHits, tlbMisses, tlbShootdowns uint64
}

func (m *Monitor) metricsTotalsNow() metricsTotals {
	s := &m.Stats
	return metricsTotals{
		calls: s.CallsTotal, shared: s.SharedCalls, faults: s.Faults,
		retags: s.Retags, wrpkrus: s.WRPKRUs, sheds: s.Sheds,
		quota: s.QuotaFaults, deadline: s.DeadlineFaults, retries: s.Retries,
		contained: s.ContainedFaults, restarts: s.Restarts,
		tlbHits: s.TLBHits, tlbMisses: s.TLBMisses, tlbShootdowns: s.TLBShootdowns,
	}
}

// metricsCollector is the bounded time-series ring behind the pipeline.
type metricsCollector struct {
	interval uint64
	next     uint64 // next sampling threshold on the virtual clock
	ring     []MetricsSample
	n        uint64 // samples taken (ring index n & mask)
	prev     metricsTotals
	prevCyc  uint64
}

// EnableMetrics starts the virtual-time metrics pipeline: every interval
// virtual cycles (sampled at crossing granularity — the first crossing at
// or past each threshold takes the snapshot) the monitor records one
// MetricsSample into a bounded ring of ringCap samples (rounded up to a
// power of two, minimum 16). Safe to call once, before workers run.
func (m *Monitor) EnableMetrics(interval uint64, ringCap int) {
	if interval == 0 {
		interval = 1
	}
	if ringCap < 16 {
		ringCap = 16
	}
	capa := 16
	for capa < ringCap {
		capa <<= 1
	}
	now := m.Clock.Cycles()
	m.met = &metricsCollector{
		interval: interval,
		next:     now + interval,
		ring:     make([]MetricsSample, capa),
		prev:     m.metricsTotalsNow(),
		prevCyc:  now,
	}
	m.recomputeFastCross()
}

// maybeSampleMetrics takes a snapshot when the crossing clock has passed
// the next sampling threshold. Callers gate on m.met != nil so the
// disabled state costs one nil check.
func (m *Monitor) maybeSampleMetrics(now uint64) {
	mc := m.met
	if now < mc.next {
		return
	}
	mc.sample(m, now)
	for mc.next <= now {
		mc.next += mc.interval
	}
}

func (mc *metricsCollector) sample(m *Monitor, now uint64) {
	cur := m.metricsTotalsNow()
	span := now - mc.prevCyc
	if span == 0 {
		span = 1
	}
	secs := float64(span) / float64(cycles.FrequencyHz)
	s := MetricsSample{
		Seq:             mc.n,
		Cycle:           now,
		Interval:        span,
		Calls:           cur.calls - mc.prev.calls,
		SharedCalls:     cur.shared - mc.prev.shared,
		Faults:          cur.faults - mc.prev.faults,
		Retags:          cur.retags - mc.prev.retags,
		WRPKRUs:         cur.wrpkrus - mc.prev.wrpkrus,
		Sheds:           cur.sheds - mc.prev.sheds,
		QuotaFaults:     cur.quota - mc.prev.quota,
		DeadlineFaults:  cur.deadline - mc.prev.deadline,
		Retries:         cur.retries - mc.prev.retries,
		ContainedFaults: cur.contained - mc.prev.contained,
		Restarts:        cur.restarts - mc.prev.restarts,
		TLBHits:         cur.tlbHits - mc.prev.tlbHits,
		TLBMisses:       cur.tlbMisses - mc.prev.tlbMisses,
		TLBShootdowns:   cur.tlbShootdowns - mc.prev.tlbShootdowns,
	}
	s.CallRate = float64(s.Calls) / secs
	s.FaultRate = float64(s.Faults) / secs
	s.ShedRate = float64(s.Sheds) / secs
	for _, c := range m.cubicles {
		switch c.health {
		case Healthy:
			s.Healthy++
		case Quarantined:
			s.Quarantined++
		case Dead:
			s.Dead++
		}
	}
	if m.trc != nil {
		if h := m.trc.ClassHist(trace.EvCallExit); h != nil {
			s.CallP50 = h.Quantile(0.50)
			s.CallP99 = h.Quantile(0.99)
		}
	}
	mc.ring[mc.n&uint64(len(mc.ring)-1)] = s
	mc.n++
	mc.prev = cur
	mc.prevCyc = now
}

// MetricsEnabled reports whether the metrics pipeline is running.
func (m *Monitor) MetricsEnabled() bool { return m.met != nil }

// MetricsInterval returns the configured sampling interval (0 = disabled).
func (m *Monitor) MetricsInterval() uint64 {
	if m.met == nil {
		return 0
	}
	return m.met.interval
}

// MetricsSamples returns the surviving samples in chronological order.
func (m *Monitor) MetricsSamples() []MetricsSample {
	mc := m.met
	if mc == nil {
		return nil
	}
	capa := uint64(len(mc.ring))
	n := mc.n
	if n <= capa {
		out := make([]MetricsSample, n)
		copy(out, mc.ring[:n])
		return out
	}
	out := make([]MetricsSample, capa)
	start := n & (capa - 1)
	copy(out, mc.ring[start:])
	copy(out[capa-start:], mc.ring[:start])
	return out
}

// LastMetricsSample returns the most recent sample (zero, false if none).
func (m *Monitor) LastMetricsSample() (MetricsSample, bool) {
	mc := m.met
	if mc == nil || mc.n == 0 {
		return MetricsSample{}, false
	}
	return mc.ring[(mc.n-1)&uint64(len(mc.ring)-1)], true
}

// MetricsRecorded returns how many samples have been taken in total.
func (m *Monitor) MetricsRecorded() uint64 {
	if m.met == nil {
		return 0
	}
	return m.met.n
}

// MetricsDropped returns how many samples ring wrap has overwritten. The
// bounded ring never loses history silently.
func (m *Monitor) MetricsDropped() uint64 {
	mc := m.met
	if mc == nil {
		return 0
	}
	if capa := uint64(len(mc.ring)); mc.n > capa {
		return mc.n - capa
	}
	return 0
}

// --- OpenMetrics exposition ---------------------------------------------------

// WriteOpenMetrics writes the monitor's counters, the latest metrics
// sample's rate gauges, and the trace ring-shard accounting in OpenMetrics
// text exposition format, terminated by the mandatory "# EOF" marker. This
// is the body the simulated httpd serves from /metrics.
func (m *Monitor) WriteOpenMetrics(w io.Writer) error {
	bw := bufio.NewWriter(w)
	counter := func(name, help string, v uint64) {
		fmt.Fprintf(bw, "# HELP cubicleos_%s %s\n", name, help)
		fmt.Fprintf(bw, "# TYPE cubicleos_%s counter\n", name)
		fmt.Fprintf(bw, "cubicleos_%s_total %d\n", name, v)
	}
	gauge := func(name, help string, v float64) {
		fmt.Fprintf(bw, "# HELP cubicleos_%s %s\n", name, help)
		fmt.Fprintf(bw, "# TYPE cubicleos_%s gauge\n", name)
		fmt.Fprintf(bw, "cubicleos_%s %g\n", name, v)
	}
	s := &m.Stats
	counter("calls", "Cross-cubicle calls", s.CallsTotal)
	counter("shared_calls", "Calls into shared cubicles", s.SharedCalls)
	counter("faults", "Protection traps served by trap-and-map", s.Faults)
	counter("retags", "Pages retagged", s.Retags)
	counter("wrpkrus", "Executed wrpkru instructions", s.WRPKRUs)
	counter("sheds", "Requests refused by admission control", s.Sheds)
	counter("quota_faults", "Memory-quota refusals", s.QuotaFaults)
	counter("deadline_faults", "Crossings abandoned past deadline", s.DeadlineFaults)
	counter("retries", "Bounded-retry attempts", s.Retries)
	counter("contained_faults", "Faults contained at crossings", s.ContainedFaults)
	counter("restarts", "Supervisor restarts", s.Restarts)
	counter("tlb_hits", "Span-TLB hits", s.TLBHits)
	counter("tlb_misses", "Span-TLB misses", s.TLBMisses)
	counter("tlb_shootdowns", "Cross-core TLB shootdowns", s.TLBShootdowns)
	gauge("virtual_seconds", "Virtual time elapsed", float64(m.smpNow())/float64(cycles.FrequencyHz))
	if mc := m.met; mc != nil {
		counter("metrics_samples", "Metrics snapshots taken", m.MetricsRecorded())
		counter("metrics_samples_dropped", "Metrics snapshots aged out of the ring", m.MetricsDropped())
		if last, ok := m.LastMetricsSample(); ok {
			gauge("call_rate", "Crossings per virtual second over the last interval", last.CallRate)
			gauge("fault_rate", "Faults per virtual second over the last interval", last.FaultRate)
			gauge("shed_rate", "Sheds per virtual second over the last interval", last.ShedRate)
			gauge("healthy_cubicles", "Cubicles in the Healthy state", float64(last.Healthy))
			gauge("quarantined_cubicles", "Cubicles in the Quarantined state", float64(last.Quarantined))
			gauge("dead_cubicles", "Cubicles in the Dead state", float64(last.Dead))
			gauge("call_p50_cycles", "Median crossing latency in cycles", float64(last.CallP50))
			gauge("call_p99_cycles", "P99 crossing latency in cycles", float64(last.CallP99))
		}
	}
	if trc := m.trc; trc != nil {
		fmt.Fprintf(bw, "# HELP cubicleos_trace_shard_recorded Events recorded per trace ring shard\n")
		fmt.Fprintf(bw, "# TYPE cubicleos_trace_shard_recorded counter\n")
		for c := 0; c < trc.Cores(); c++ {
			fmt.Fprintf(bw, "cubicleos_trace_shard_recorded_total{core=\"%d\"} %d\n", c, trc.ShardRecorded(c))
		}
		fmt.Fprintf(bw, "# HELP cubicleos_trace_shard_dropped Events overwritten by ring wrap per shard\n")
		fmt.Fprintf(bw, "# TYPE cubicleos_trace_shard_dropped counter\n")
		for c := 0; c < trc.Cores(); c++ {
			fmt.Fprintf(bw, "cubicleos_trace_shard_dropped_total{core=\"%d\"} %d\n", c, trc.ShardDropped(c))
		}
	}
	fmt.Fprint(bw, "# EOF\n")
	return bw.Flush()
}

// OpenMetricsBody renders WriteOpenMetrics into a byte slice, the form the
// httpd metrics endpoint consumes.
func (m *Monitor) OpenMetricsBody() []byte {
	var sb strings.Builder
	m.WriteOpenMetrics(&sb)
	return []byte(sb.String())
}

// ParseOpenMetrics is a minimal parser for the exposition WriteOpenMetrics
// produces: it returns the sample values keyed by series name (labels
// included verbatim, e.g. `cubicleos_trace_shard_dropped_total{core="1"}`)
// and verifies the mandatory trailing "# EOF". It exists so tests and the
// dashboard can round-trip the endpoint without external dependencies.
func ParseOpenMetrics(r io.Reader) (map[string]float64, error) {
	out := make(map[string]float64)
	sc := bufio.NewScanner(r)
	sawEOF := false
	for sc.Scan() {
		line := strings.TrimSpace(sc.Text())
		if line == "" {
			continue
		}
		if sawEOF {
			return nil, fmt.Errorf("openmetrics: content after # EOF")
		}
		if strings.HasPrefix(line, "#") {
			if line == "# EOF" {
				sawEOF = true
				continue
			}
			if !strings.HasPrefix(line, "# HELP ") && !strings.HasPrefix(line, "# TYPE ") {
				return nil, fmt.Errorf("openmetrics: bad comment line %q", line)
			}
			continue
		}
		idx := strings.LastIndexByte(line, ' ')
		if idx <= 0 {
			return nil, fmt.Errorf("openmetrics: bad sample line %q", line)
		}
		name := line[:idx]
		v, err := strconv.ParseFloat(line[idx+1:], 64)
		if err != nil {
			return nil, fmt.Errorf("openmetrics: bad value in %q: %v", line, err)
		}
		if _, dup := out[name]; dup {
			return nil, fmt.Errorf("openmetrics: duplicate series %q", name)
		}
		out[name] = v
	}
	if err := sc.Err(); err != nil {
		return nil, err
	}
	if !sawEOF {
		return nil, fmt.Errorf("openmetrics: missing # EOF terminator")
	}
	return out, nil
}

// SortedSeries returns the series names of a parsed exposition in sorted
// order, for deterministic reports.
func SortedSeries(m map[string]float64) []string {
	out := make([]string, 0, len(m))
	for k := range m {
		out = append(out, k)
	}
	sort.Strings(out)
	return out
}
