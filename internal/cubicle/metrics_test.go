package cubicle

import (
	"strings"
	"testing"
)

// metricsWorkload drives enough FOO→BAR crossings to advance the virtual
// clock well past n sampling intervals.
func metricsWorkload(t *testing.T, ts *testSystem, calls int) {
	t.Helper()
	h := ts.m.MustResolve(ts.cubs["FOO"].ID, "BAR", "bar")
	buf := ts.heapIn(t, "BAR", 64)
	ts.enter(t, "FOO", func(e *Env) {
		for i := 0; i < calls; i++ {
			h.Call(e, uint64(buf), 0)
		}
	})
}

func TestMetricsSamplesStrictlyOrdered(t *testing.T) {
	ts := bootPair(t, ModeFull)
	ts.m.EnableMetrics(50_000, 1<<10)
	metricsWorkload(t, ts, 400)

	samples := ts.m.MetricsSamples()
	if len(samples) == 0 {
		t.Fatal("no metrics samples taken")
	}
	if ts.m.MetricsDropped() != 0 {
		t.Fatalf("ring of 1024 dropped %d samples over %d", ts.m.MetricsDropped(), ts.m.MetricsRecorded())
	}
	var sumCalls uint64
	for i, s := range samples {
		if s.Seq != uint64(i) {
			t.Fatalf("sample %d has seq %d", i, s.Seq)
		}
		if i > 0 && s.Cycle <= samples[i-1].Cycle {
			t.Fatalf("sample %d cycle %d not after predecessor %d", i, s.Cycle, samples[i-1].Cycle)
		}
		if s.Interval == 0 {
			t.Fatalf("sample %d has zero interval", i)
		}
		if s.CallRate < 0 || s.FaultRate < 0 || s.ShedRate < 0 {
			t.Fatalf("sample %d has negative rate: %+v", i, s)
		}
		sumCalls += s.Calls
	}
	// Deltas partition the counter stream: with no drops their sum is the
	// total at the last snapshot, which the workload has since passed.
	if sumCalls == 0 || sumCalls > ts.m.Stats.CallsTotal {
		t.Fatalf("delta sum %d inconsistent with CallsTotal %d", sumCalls, ts.m.Stats.CallsTotal)
	}
	last, ok := ts.m.LastMetricsSample()
	if !ok || last.Seq != samples[len(samples)-1].Seq {
		t.Fatalf("LastMetricsSample disagrees with MetricsSamples tail")
	}
	if last.Healthy == 0 {
		t.Fatal("health ladder shows no healthy cubicles")
	}
}

func TestMetricsRingWrapCountsDrops(t *testing.T) {
	ts := bootPair(t, ModeFull)
	ts.m.EnableMetrics(20_000, 16)
	metricsWorkload(t, ts, 1200)

	rec, drop := ts.m.MetricsRecorded(), ts.m.MetricsDropped()
	if rec <= 16 {
		t.Fatalf("workload took only %d samples, cannot exercise wrap", rec)
	}
	if drop != rec-16 {
		t.Fatalf("dropped %d, want recorded-cap = %d", drop, rec-16)
	}
	samples := ts.m.MetricsSamples()
	if len(samples) != 16 {
		t.Fatalf("surviving samples %d, want 16", len(samples))
	}
	// Survivors are the newest window, still in order.
	if samples[0].Seq != drop {
		t.Fatalf("oldest survivor seq %d, want %d", samples[0].Seq, drop)
	}
	for i := 1; i < len(samples); i++ {
		if samples[i].Seq != samples[i-1].Seq+1 {
			t.Fatalf("survivor seqs not contiguous at %d", i)
		}
	}
}

func TestMetricsDisabledIsInert(t *testing.T) {
	ts := bootPair(t, ModeFull)
	metricsWorkload(t, ts, 10)
	if ts.m.MetricsEnabled() || ts.m.MetricsRecorded() != 0 || ts.m.MetricsSamples() != nil {
		t.Fatal("metrics pipeline active without EnableMetrics")
	}
	if _, ok := ts.m.LastMetricsSample(); ok {
		t.Fatal("LastMetricsSample reports a sample while disabled")
	}
}

func TestOpenMetricsRoundTrip(t *testing.T) {
	ts := bootPair(t, ModeFull)
	ts.m.EnableTracing(1 << 12)
	ts.m.EnableMetrics(50_000, 64)
	metricsWorkload(t, ts, 200)

	body := ts.m.OpenMetricsBody()
	series, err := ParseOpenMetrics(strings.NewReader(string(body)))
	if err != nil {
		t.Fatalf("exposition does not parse: %v\n%s", err, body)
	}
	if got := series["cubicleos_calls_total"]; got != float64(ts.m.Stats.CallsTotal) {
		t.Errorf("calls_total = %v, want %d", got, ts.m.Stats.CallsTotal)
	}
	for _, want := range []string{
		"cubicleos_faults_total", "cubicleos_retags_total", "cubicleos_wrpkrus_total",
		"cubicleos_virtual_seconds", "cubicleos_metrics_samples_total",
		"cubicleos_call_rate", "cubicleos_healthy_cubicles",
		"cubicleos_call_p50_cycles",
		`cubicleos_trace_shard_recorded_total{core="0"}`,
		`cubicleos_trace_shard_dropped_total{core="0"}`,
	} {
		if _, ok := series[want]; !ok {
			t.Errorf("exposition missing series %s", want)
		}
	}
	if series["cubicleos_call_p50_cycles"] <= 0 {
		t.Error("tracing is on but call_p50_cycles is zero")
	}
}

func TestParseOpenMetricsRejectsMalformed(t *testing.T) {
	cases := map[string]string{
		"missing EOF":      "cubicleos_calls_total 1\n",
		"content after":    "# EOF\ncubicleos_calls_total 1\n",
		"bad comment":      "# NOPE cubicleos_calls\n# EOF\n",
		"duplicate":        "a_total 1\na_total 2\n# EOF\n",
		"unparsable value": "a_total xyz\n# EOF\n",
	}
	for name, in := range cases {
		if _, err := ParseOpenMetrics(strings.NewReader(in)); err == nil {
			t.Errorf("%s: parser accepted %q", name, in)
		}
	}
}
