package cubicle

import (
	"fmt"
	"runtime"
	"sync/atomic"

	"cubicleos/internal/cycles"
	"cubicleos/internal/mpk"
	"cubicleos/internal/vm"
)

// StackPages is the size of one per-cubicle stack in pages.
const StackPages = 16

// stack is a thread's stack inside one cubicle: trampolines switch
// between per-cubicle stacks on every cross-cubicle call (§5.5).
type stack struct {
	base vm.Addr // lowest address of the region
	size uint64
	sp   vm.Addr // current stack pointer (grows down)
	// gen is the owning cubicle's restart generation at allocation time.
	// A mismatch in stackFor means a supervisor restart reclaimed the
	// pages; the cached entry is replaced instead of dereferenced.
	gen uint64
}

// frame records state saved by a call so that the return path can restore
// it. entrySP is the stack pointer of the stack the callee executes on at
// call entry: restoring it at return releases everything the callee
// alloca'd, giving stack variables function-call lifetime.
type frame struct {
	caller    ID
	exec      ID // cubicle whose stack/privileges the callee runs with
	entrySP   vm.Addr
	savedPKRU mpk.PKRU
	crossing  bool // true if the call crossed cubicles via a trampoline
	// jmark is the length of the thread's containment journal at call
	// entry: entries past it were made by this call and are rolled back if
	// it faults under supervision.
	jmark int
	// entryCycles is the virtual clock at call entry, for the watchdog.
	entryCycles uint64
}

// Thread is one execution context. Each thread carries its own PKRU value
// and per-cubicle stacks, as MPK permissions are per-thread (the PKRU is a
// per-thread register, §8). On a single-core deployment threads are
// cooperative and never run concurrently, following Unikraft's model; on
// an SMP deployment (EnableSMP) threads placed on different cores execute
// on real goroutine workers concurrently, synchronised inside the monitor
// by the lock hierarchy of smp.go (lock-free on the read-mostly hot
// paths). A Thread itself must still be driven by at most one goroutine at
// a time.
type Thread struct {
	m      *Monitor
	id     int // dense thread index, stamped into trace events
	cur    ID  // cubicle whose privileges the thread currently runs with
	pkru   mpk.PKRU
	stacks map[ID]*stack
	frames []frame
	// core/clk place the thread on a simulated core (SetThreadCore): all
	// virtual-time charges the thread causes go to clk. On a single-core
	// monitor clk aliases m.Clock and core is 0, preserving the legacy
	// behaviour exactly.
	core int
	clk  *cycles.Clock
	// parallel marks a thread driven by its own goroutine worker
	// (SetThreadCore). Parallel threads stage Stats in their own shard,
	// maintain the per-cubicle active-crossing counters and take the real
	// locks of smp.go; non-parallel threads (all production deployments)
	// keep the lock-free single-threaded behaviour byte-identical to the
	// legacy monitor.
	parallel bool
	// stats is the thread's staged counter shard in parallel mode, merged
	// into Monitor.Stats by FoldStats at quiescence. Only the owning
	// goroutine writes it.
	stats Stats
	// held is the thread's lock-order bookkeeping under EnableLockCheck
	// (smp.go): the stack of lock slots currently held, owner-written only.
	held []int32
	// journal records window-state changes for containment rollback; it is
	// only appended to while a supervisor is attached and is truncated when
	// the thread unwinds to depth zero (everything below is committed).
	journal []undoEntry
	// deadline is the armed request deadline in virtual cycles (0 = none);
	// deadlineFrame is the frame depth at arming time — only crossings
	// below it fault, so the arming cubicle always regains control.
	deadline      uint64
	deadlineFrame int
	// tlb is the thread's direct-mapped span TLB (see tlb.go). Each slot is
	// an atomic pointer to an immutable entry caching only the pn→page
	// translation, validated against the address-space epoch; permissions
	// are re-checked against the live (PKRU, key, perm) state on every
	// lookup, so no explicit flush exists. MPK permissions being per-thread
	// (the PKRU is a per-thread register) is exactly why the cache is
	// per-thread too. The atomic slots are what let a cross-core shootdown
	// clear a remote thread's entry without stopping that thread.
	tlb [tlbSize]atomic.Pointer[tlbEntry]

	// tlbBuf backs the slots outside parallel mode: fills rewrite the
	// slot's entry in place instead of allocating, which keeps the
	// single-threaded hot path (every production deployment) free of
	// per-miss garbage. Parallel mode never touches it — concurrent
	// shootdown readers require published entries to stay immutable.
	tlbBuf [tlbSize]tlbEntry
}

// NewThread creates a thread that starts executing in the monitor cubicle
// (boot context).
func (m *Monitor) NewThread() *Thread {
	t := &Thread{
		m:      m,
		id:     len(m.threads),
		cur:    MonitorID,
		pkru:   mpk.AllAllowed,
		stacks: make(map[ID]*stack),
		stats:  newStats(),
		clk:    m.Clock,
	}
	t.pkru = m.pkruFor(MonitorID)
	m.threads = append(m.threads, t)
	return t
}

// TID returns the thread's dense index (the "tid" of its trace track).
func (t *Thread) TID() int { return t.id }

// Core returns the simulated core the thread is placed on.
func (t *Thread) Core() int { return t.core }

// Current returns the cubicle whose privileges the thread is running with.
func (t *Thread) Current() ID { return t.cur }

// Caller returns the cubicle that performed the innermost cross-cubicle
// call, or MonitorID at the outermost level. Shared-cubicle and
// same-cubicle calls are transparent: they do not change the caller.
func (t *Thread) Caller() ID {
	for i := len(t.frames) - 1; i >= 0; i-- {
		if t.frames[i].crossing {
			return t.frames[i].caller
		}
	}
	return MonitorID
}

// Depth returns the current call depth (frames pushed).
func (t *Thread) Depth() int { return len(t.frames) }

// stackFor returns the thread's stack in cubicle id, allocating it on
// first use (the loader "allocates the necessary per-cubicle stacks for
// the current thread", §5.4).
func (t *Thread) stackFor(id ID) *stack {
	gen := t.m.cubicle(id).gen.Load()
	if s, ok := t.stacks[id]; ok && s.gen == gen {
		return s
	}
	base := t.m.mapOwnedFor(t, id, StackPages, vm.PageStack, vm.PermRead|vm.PermWrite)
	s := &stack{base: base, size: StackPages * vm.PageSize, gen: gen}
	s.sp = base.Add(s.size)
	t.stacks[id] = s
	return s
}

// alloca carves n bytes (16-byte aligned) from the current cubicle's
// stack and returns the address. Frames are popped wholesale when the
// enclosing call returns.
func (t *Thread) alloca(n uint64) vm.Addr {
	s := t.stackFor(t.cur)
	n = (n + 15) &^ 15
	if uint64(s.sp-s.base) < n {
		panic(&APIError{Cubicle: t.cur, Op: "alloca",
			Reason: fmt.Sprintf("stack overflow allocating %d bytes", n)})
	}
	s.sp -= vm.Addr(n)
	return s.sp
}

// pushFrame records call state and, for cross-cubicle calls, switches the
// thread into the callee cubicle (per-cubicle stack included). Calls into
// shared cubicles and within a cubicle keep the caller's cubicle, stack
// and privileges (crossing=false), matching §3 ❹.
func (t *Thread) pushFrame(callee ID, crossing bool) {
	caller := t.cur
	if crossing {
		t.cur = callee
		if t.parallel {
			// Parallel threads maintain the per-cubicle active-crossing
			// counter so restart and checkpoint quiescence checks need not
			// scan other workers' live frame slices. The increment pairs
			// with the supervisor's restarting flag, Dekker-style: the
			// restarter publishes restarting before loading active, we
			// publish the increment before loading restarting, so either
			// the restart aborts (it saw our crossing) or we back off and
			// wait out the reclaim (we saw its flag) — a crossing can never
			// run on a stack whose pages a concurrent restart is unmapping.
			// Callers hold no monitor locks here (the restarter owns gmu
			// for the whole reclaim), so the spin cannot deadlock.
			cub := t.m.cubicle(callee)
			for {
				cub.active.Add(1)
				if !cub.restarting.Load() {
					break
				}
				cub.active.Add(-1)
				for cub.restarting.Load() {
					runtime.Gosched()
				}
			}
		}
		// The profiler attributes elapsed cycles to the executing
		// cubicle; a crossing frame is exactly a cubicle switch.
		if trc := t.m.trc; trc != nil {
			trc.SwitchCubicle(t.id, int(callee))
		}
	}
	s := t.stackFor(t.cur)
	t.frames = append(t.frames, frame{
		caller:      caller,
		exec:        t.cur,
		entrySP:     s.sp,
		savedPKRU:   t.pkru,
		crossing:    crossing,
		jmark:       len(t.journal),
		entryCycles: t.clk.Cycles(),
	})
}

// popFrame restores the state saved by the matching pushFrame: the
// callee's stack pointer (releasing its stack variables), the caller's
// cubicle for crossing calls, and the saved PKRU value.
func (t *Thread) popFrame() {
	if len(t.frames) == 0 {
		panic("cubicle: frame underflow")
	}
	f := t.frames[len(t.frames)-1]
	t.frames = t.frames[:len(t.frames)-1]
	if s, ok := t.stacks[f.exec]; ok {
		s.sp = f.entrySP
	}
	if f.crossing {
		t.cur = f.caller
		if t.parallel {
			t.m.cubicle(f.exec).active.Add(-1)
		}
		if trc := t.m.trc; trc != nil {
			trc.SwitchCubicle(t.id, int(f.caller))
		}
	}
	t.pkru = f.savedPKRU
	if len(t.frames) == 0 && len(t.journal) > 0 {
		// Unwound to the outermost level: everything journalled below is
		// committed, nothing can roll it back anymore.
		t.journal = t.journal[:0]
	}
}
