package cubicle

import (
	"errors"
	"fmt"
	"strings"
	"testing"

	"cubicleos/internal/vm"
)

// tlbDeltas snapshots the TLB counters so tests can assert on increments
// rather than absolute values (boot itself warms and misses the TLB).
type tlbDeltas struct {
	m                          *Monitor
	hits, misses, invalidation uint64
}

func snapTLB(m *Monitor) tlbDeltas {
	return tlbDeltas{m: m, hits: m.Stats.TLBHits, misses: m.Stats.TLBMisses,
		invalidation: m.Stats.TLBInvalidations}
}

func (d tlbDeltas) dHits() uint64   { return d.m.Stats.TLBHits - d.hits }
func (d tlbDeltas) dMisses() uint64 { return d.m.Stats.TLBMisses - d.misses }
func (d tlbDeltas) dInval() uint64  { return d.m.Stats.TLBInvalidations - d.invalidation }

// TestTLBHitAndMissCounters checks the basic caching contract: the first
// access to a page misses and fills, repeated accesses under an unchanged
// (PKRU, epoch) hit without re-walking.
func TestTLBHitAndMissCounters(t *testing.T) {
	ts := bootPair(t, ModeFull)
	buf := ts.heapIn(t, "FOO", 64)
	d := snapTLB(ts.m)
	ts.enter(t, "FOO", func(e *Env) {
		e.StoreByte(buf, 0x41) // first touch: miss + fill
		for i := 0; i < 10; i++ {
			if got := e.LoadByte(buf); got != 0x41 {
				t.Fatalf("LoadByte = %#x, want 0x41", got)
			}
		}
	})
	if d.dMisses() == 0 {
		t.Error("expected at least one TLB miss on first touch")
	}
	if d.dHits() < 10 {
		t.Errorf("TLB hits = %d, want >= 10 (repeated loads should hit)", d.dHits())
	}
}

// TestTLBDisabledTakesSlowPath checks the oracle switch: with the TLB off
// every access walks the page table and the hit counter stays flat.
func TestTLBDisabledTakesSlowPath(t *testing.T) {
	ts := bootPair(t, ModeFull)
	ts.m.SetTLBEnabled(false)
	buf := ts.heapIn(t, "FOO", 64)
	d := snapTLB(ts.m)
	ts.enter(t, "FOO", func(e *Env) {
		for i := 0; i < 5; i++ {
			e.StoreByte(buf.Add(uint64(i)), byte(i))
			if got := e.LoadByte(buf.Add(uint64(i))); got != byte(i) {
				t.Fatalf("LoadByte = %#x, want %#x", got, byte(i))
			}
		}
	})
	if d.dHits() != 0 {
		t.Errorf("TLB hits = %d with TLB disabled, want 0", d.dHits())
	}
}

// TestAccessRangeWrapFaults is the width regression test: an access whose
// addr+n wraps the 64-bit address space must raise a typed ProtectionFault
// up front. Before access lengths were carried as uint64 end to end, the
// page-range walk saw last < first, checked nothing, and the copy path
// then tried to materialise the range.
func TestAccessRangeWrapFaults(t *testing.T) {
	ts := bootPair(t, ModeFull)
	buf := ts.heapIn(t, "FOO", 4096)
	src := ts.heapIn(t, "FOO", 4096)
	for _, tc := range []struct {
		name string
		fn   func(e *Env)
	}{
		{"memset-wrap", func(e *Env) { e.Memset(buf, 0, ^uint64(0)) }},
		{"memcpy-wrap", func(e *Env) { e.Memcpy(buf, src, ^uint64(0)-16) }},
		{"read-wrap", func(e *Env) { e.View(buf, ^uint64(0)-uint64(buf)+1, func(uint64, []byte) {}) }},
	} {
		t.Run(tc.name, func(t *testing.T) {
			var err error
			ts.enter(t, "FOO", func(e *Env) {
				err = Catch(func() { tc.fn(e) })
			})
			var pf *ProtectionFault
			if !errors.As(err, &pf) {
				t.Fatalf("got %v, want *ProtectionFault", err)
			}
			if !strings.Contains(pf.Reason, "wraps") {
				t.Errorf("fault reason %q, want mention of address-space wrap", pf.Reason)
			}
		})
	}
	// A huge but non-wrapping length must fault on the first unmapped page,
	// not attempt to materialise the range.
	ts.enter(t, "FOO", func(e *Env) {
		err := Catch(func() { e.Memset(buf, 0, 1<<40) })
		var pf *ProtectionFault
		if !errors.As(err, &pf) {
			t.Fatalf("huge memset: got %v, want *ProtectionFault", err)
		}
	})
}

// TestTLBInvalidationOnRetag checks that trap-and-map retagging under an
// open window drops stale entries: after BAR's lazy retag moves FOO's
// buffer to BAR's key, FOO's next access must re-walk (and trap the page
// back), not be served from a cached decision.
func TestTLBInvalidationOnRetag(t *testing.T) {
	ts := bootPair(t, ModeFull)
	buf := ts.heapIn(t, "FOO", 64)
	barID := ts.cubs["BAR"].ID
	ts.enter(t, "FOO", func(e *Env) {
		e.StoreByte(buf, 0x5A) // warm FOO's entry for the page
		wid := e.WindowInit()
		e.WindowAdd(wid, buf, 64)
		e.WindowOpen(wid, barID)
		h := ts.m.MustResolve(e.Cubicle(), "BAR", "bar_read")
		if got := h.Call(e, uint64(buf), 0)[0]; got != 0x5A {
			t.Fatalf("bar_read = %#x, want 0x5A", got)
		}
		// BAR's trap-and-map retagged the page; the epoch bump must force
		// FOO's cached entry to revalidate and re-trap the page back.
		d := snapTLB(ts.m)
		if got := e.LoadByte(buf); got != 0x5A {
			t.Fatalf("LoadByte after retag = %#x, want 0x5A", got)
		}
		if d.dInval() == 0 {
			t.Error("expected a TLB invalidation after trap-and-map retag")
		}
	})
}

// TestTLBInvalidationOnPKRUSwitch checks that a trampoline return (which
// restores the caller's PKRU directly, without a wrpkru through the
// monitor's bookkeeping) cannot leak the callee's cached decisions: the
// per-entry PKRU comparison must reject them.
func TestTLBInvalidationOnPKRUSwitch(t *testing.T) {
	ts := bootPair(t, ModeFull)
	buf := ts.heapIn(t, "FOO", 64)
	barID := ts.cubs["BAR"].ID
	ts.enter(t, "FOO", func(e *Env) {
		e.StoreByte(buf, 0x7E)
		wid := e.WindowInit()
		e.WindowAdd(wid, buf, 64)
		e.WindowOpen(wid, barID)
		h := ts.m.MustResolve(e.Cubicle(), "BAR", "bar_read")
		h.Call(e, uint64(buf), 0) // BAR fills the slot under BAR's PKRU
		// Reclaim the page for FOO: epoch + PKRU both differ now.
		if got := e.LoadByte(buf); got != 0x7E {
			t.Fatalf("LoadByte = %#x, want 0x7E", got)
		}
		// Second crossing: the slot holds FOO's fresh entry; BAR's lookup
		// under BAR's PKRU must invalidate it even though the page number
		// matches — this is the pure PKRU-switch case.
		d := snapTLB(ts.m)
		h.Call(e, uint64(buf), 0)
		if d.dInval() == 0 {
			t.Error("expected a TLB invalidation on PKRU switch at the crossing")
		}
	})
}

// TestTLBRollbackRevokesCachedAccess checks containment rollback
// mid-crossing: the callee warms a TLB entry for a buffer it then shares
// through a pinned window, and faults. The journal unpins and closes the
// window (retagging the buffer back), and the caller — running on the
// same thread, whose TLB still holds the translation — must be denied:
// the live permission check rejects the cached page, and the slow-path
// trap finds no window.
func TestTLBRollbackRevokesCachedAccess(t *testing.T) {
	ts := bootFaulty(t, DefaultRestartPolicy(), nil)
	appBuf := ts.heapIn(t, "APP", 8)
	var svcBuf vm.Addr
	ts.enter(t, "APP", func(e *Env) {
		h := ts.m.MustResolve(e.Cubicle(), "SVC", "svc_leak")
		// svc_leak allocates a buffer, opens and pins a window on it for
		// APP, then faults; capture the buffer address via svc_alloc run
		// first so the allocator state is observable.
		alloc := ts.m.MustResolve(e.Cubicle(), "SVC", "svc_alloc")
		svcBuf = vm.Addr(alloc.Call(e, 64)[0])
		cf := CatchContained(func() { h.Call(e, uint64(appBuf)) })
		if cf == nil {
			t.Fatal("svc_leak fault was not contained")
		}
		// The rollback revoked the window svc_leak had opened for APP.
		// Whatever translations the crossing left in this thread's TLB,
		// APP must not reach SVC's heap through them.
		d := snapTLB(ts.m)
		err := Catch(func() { e.LoadByte(svcBuf) })
		var pf *ProtectionFault
		if !errors.As(err, &pf) {
			t.Fatalf("APP read of SVC heap after rollback: got %v, want *ProtectionFault", err)
		}
		if d.dHits() != 0 {
			t.Error("revoked access was served from the TLB")
		}
	})
}

// TestTLBInvalidationOnRestartReclaim checks the nastiest staleness case:
// a cubicle restart unmaps (reclaims) its heap pages, and those page
// frames may be re-mapped for something else. A TLB entry filled before
// the restart holds a direct pointer into the old page — it must never be
// served afterwards.
func TestTLBInvalidationOnRestartReclaim(t *testing.T) {
	policy := DefaultRestartPolicy()
	ts := bootFaulty(t, policy, nil)
	appBuf := ts.heapIn(t, "APP", 8)

	// SVC allocates heap and touches it, warming a TLB entry for the page.
	var svcBuf vm.Addr
	ts.enter(t, "APP", func(e *Env) {
		h := ts.m.MustResolve(e.Cubicle(), "SVC", "svc_alloc")
		svcBuf = vm.Addr(h.Call(e, 64)[0])
		touch := ts.m.MustResolve(e.Cubicle(), "SVC", "svc_touch")
		touch.Call(e, uint64(svcBuf))
	})

	// Fault SVC (it touches APP's unshared buffer), wait out the backoff,
	// and let the next call restart it — reclaiming the old heap.
	faultSVC(t, ts, appBuf)
	ts.m.Clock.Charge(policy.BackoffMax)
	if _, cf := callSVCOk(t, ts); cf != nil {
		t.Fatalf("restart call failed: %v", cf)
	}
	if ts.cubs["SVC"].Restarts() != 1 {
		t.Fatalf("Restarts = %d, want 1", ts.cubs["SVC"].Restarts())
	}

	// White-box: the thread's cached entry for the reclaimed page must be
	// stale (epoch mismatch) — a lookup can never return its dangling
	// data pointer.
	pn := svcBuf.PageNum()
	if e := ts.env.T.tlb[pn&tlbMask].Load(); e != nil && e.pn == pn && e.epoch == ts.m.AS.Epoch() {
		t.Fatal("TLB entry for reclaimed page still validates against the current epoch")
	}

	// Black-box: SVC touching its old heap address must re-walk, not hit.
	d := snapTLB(ts.m)
	ts.enter(t, "APP", func(e *Env) {
		h := ts.m.MustResolve(e.Cubicle(), "SVC", "svc_touch")
		CatchContained(func() { h.Call(e, uint64(svcBuf)) })
	})
	if d.dMisses() == 0 && d.dInval() == 0 {
		t.Error("post-restart access to reclaimed page was served from the TLB")
	}
}

// TestViewChunking checks the zero-copy views: chunks tile the range in
// order, stay page-bounded, and MutableView writes land in memory.
func TestViewChunking(t *testing.T) {
	ts := bootPair(t, ModeFull)
	const n = 3*vm.PageSize + 123
	buf := ts.heapIn(t, "FOO", n)
	ts.enter(t, "FOO", func(e *Env) {
		e.Memset(buf, 0xCD, n)
		var total uint64
		chunks := 0
		e.View(buf, n, func(off uint64, chunk []byte) {
			if off != total {
				t.Fatalf("chunk off = %d, want %d", off, total)
			}
			if len(chunk) > vm.PageSize {
				t.Fatalf("chunk len %d exceeds a page", len(chunk))
			}
			for _, b := range chunk {
				if b != 0xCD {
					t.Fatalf("chunk byte %#x, want 0xCD", b)
				}
			}
			total += uint64(len(chunk))
			chunks++
		})
		if total != n {
			t.Fatalf("views covered %d bytes, want %d", total, n)
		}
		if chunks < 4 {
			t.Fatalf("range crossing 3 page boundaries yielded %d chunks", chunks)
		}
		e.MutableView(buf, n, func(off uint64, chunk []byte) {
			for i := range chunk {
				chunk[i] = byte(off + uint64(i))
			}
		})
		for _, off := range []uint64{0, 1, vm.PageSize - 1, vm.PageSize, n - 1} {
			if got := e.LoadByte(buf.Add(off)); got != byte(off) {
				t.Fatalf("byte at +%d = %#x, want %#x", off, got, byte(off))
			}
		}
	})
}

// opTrace runs a byte-coded op sequence against a booted system and
// returns a textual trace of every observable outcome: values returned,
// fault identity (the full fault string), and the virtual clock after
// each op. Two systems differing only in SetTLBEnabled must produce
// byte-identical traces.
func opTrace(t *testing.T, ts *testSystem, data []byte) []string {
	t.Helper()
	var log []string
	addrs := []vm.Addr{ts.heapIn(t, "FOO", 2*vm.PageSize)}
	barID := ts.cubs["BAR"].ID
	i := 0
	next := func() uint64 {
		if i >= len(data) {
			return 0
		}
		b := data[i]
		i++
		return uint64(b)
	}
	rec := func(format string, args ...any) {
		log = append(log, fmt.Sprintf(format, args...))
	}
	for step := 0; i < len(data) && step < 64; step++ {
		op := next()
		ts.enter(t, "FOO", func(e *Env) {
			switch op % 8 {
			case 0: // alloc another buffer
				if len(addrs) < 8 {
					n := next()*64 + 1
					a := e.HeapAlloc(n)
					addrs = append(addrs, a)
					rec("alloc %d -> %#x", n, uint64(a))
				}
			case 1: // store byte, possibly off the end of the buffer
				a := addrs[int(next())%len(addrs)].Add(next() * 37)
				err := Catch(func() { e.StoreByte(a, byte(op)) })
				rec("store %#x: %v", uint64(a), err)
			case 2: // load byte
				a := addrs[int(next())%len(addrs)].Add(next() * 37)
				var v byte
				err := Catch(func() { v = e.LoadByte(a) })
				rec("load %#x = %#x: %v", uint64(a), v, err)
			case 3: // memset crossing page boundaries
				a := addrs[int(next())%len(addrs)].Add(next())
				n := next() * 19
				err := Catch(func() { e.Memset(a, byte(op), n) })
				rec("memset %#x+%d: %v", uint64(a), n, err)
			case 4: // memcpy between tracked buffers
				dst := addrs[int(next())%len(addrs)].Add(next())
				src := addrs[int(next())%len(addrs)].Add(next())
				n := next() * 11
				err := Catch(func() { e.Memcpy(dst, src, n) })
				rec("memcpy %#x<-%#x+%d: %v", uint64(dst), uint64(src), n, err)
			case 5: // cross-cubicle call: BAR stores through a pointer
				a := addrs[int(next())%len(addrs)]
				h := ts.m.MustResolve(e.Cubicle(), "BAR", "bar")
				err := Catch(func() { h.Call(e, uint64(a), next()%64) })
				rec("bar(%#x): %v", uint64(a), err)
			case 6: // open a window, let BAR read through it, close it
				a := addrs[int(next())%len(addrs)]
				err := Catch(func() {
					wid := e.WindowInit()
					e.WindowAdd(wid, a, 64)
					e.WindowOpen(wid, barID)
					h := ts.m.MustResolve(e.Cubicle(), "BAR", "bar_read")
					v := h.Call(e, uint64(a), next()%64)[0]
					rec("window read %#x = %#x", uint64(a), v)
					e.WindowClose(wid, barID)
					e.WindowDestroy(wid)
				})
				rec("window op %#x: %v", uint64(a), err)
			case 7: // wrapping / huge length
				a := addrs[int(next())%len(addrs)]
				err := Catch(func() { e.Memset(a, 0, ^uint64(0)-next()) })
				rec("memset-wrap %#x: %v", uint64(a), err)
			}
		})
		rec("cycles=%d", ts.m.Clock.Cycles())
	}
	return log
}

// FuzzSpanTLBDifferential drives identical op sequences through two
// freshly booted systems — one with the span TLB enabled, one forced onto
// the legacy per-page walk — and requires byte-identical observable
// behaviour: same values, same faults (full fault strings), and the same
// virtual-clock reading after every op. This is the Figure-7 determinism
// claim stated as an executable property.
func FuzzSpanTLBDifferential(f *testing.F) {
	f.Add([]byte{2, 0, 0, 1, 0, 0, 2, 0, 0})
	f.Add([]byte{0, 3, 1, 1, 5, 3, 0, 2, 200, 4, 0, 1, 1, 2, 100})
	f.Add([]byte{6, 0, 5, 5, 0, 6, 0, 9, 1, 0, 120, 2, 0, 120})
	f.Add([]byte{7, 0, 3, 0, 255, 255, 7, 1, 16})
	f.Add([]byte{5, 0, 6, 0, 1, 1, 0, 90, 2, 0, 90, 3, 0, 4, 40, 4, 1, 0, 0, 3, 30})
	f.Fuzz(func(t *testing.T, data []byte) {
		fast := bootPair(t, ModeFull)
		slow := bootPair(t, ModeFull)
		slow.m.SetTLBEnabled(false)
		fastLog := opTrace(t, fast, data)
		slowLog := opTrace(t, slow, data)
		if len(fastLog) != len(slowLog) {
			t.Fatalf("trace lengths differ: TLB=%d oracle=%d", len(fastLog), len(slowLog))
		}
		for i := range fastLog {
			if fastLog[i] != slowLog[i] {
				t.Fatalf("divergence at step %d:\n  TLB:    %s\n  oracle: %s",
					i, fastLog[i], slowLog[i])
			}
		}
		// The oracle must also agree on every non-TLB counter.
		a, b := fast.m.Stats, slow.m.Stats
		a.TLBHits, a.TLBMisses, a.TLBInvalidations = 0, 0, 0
		b.TLBHits, b.TLBMisses, b.TLBInvalidations = 0, 0, 0
		if a.Faults != b.Faults || a.DeniedFaults != b.DeniedFaults ||
			a.Retags != b.Retags || a.WRPKRUs != b.WRPKRUs ||
			a.BulkBytesCopied != b.BulkBytesCopied || a.CallsTotal != b.CallsTotal {
			t.Fatalf("counter divergence:\n  TLB:    %+v\n  oracle: %+v", a, b)
		}
	})
}
