package cubicle

import (
	"errors"
	"testing"
)

func TestAsFaultRecognisesAllFaultTypes(t *testing.T) {
	for name, v := range map[string]any{
		"protection": &ProtectionFault{Reason: "x"},
		"cfi":        &CFIFault{Reason: "x"},
		"api":        &APIError{Reason: "x"},
		"budget":     &BudgetFault{Reason: "x"},
		"contained":  &ContainedFault{Cause: ErrQuarantined},
	} {
		err, ok := AsFault(v)
		if !ok || err == nil {
			t.Errorf("AsFault(%s) = (%v, %v), want fault", name, err, ok)
		}
	}
	for name, v := range map[string]any{
		"string":  "boom",
		"error":   errors.New("boom"),
		"int":     42,
		"nil-ish": (*ProtectionFault)(nil), // still a fault pointer, typed
	} {
		if name == "nil-ish" {
			continue // typed nil is a fault value by design
		}
		if _, ok := AsFault(v); ok {
			t.Errorf("AsFault(%s) accepted a foreign panic value", name)
		}
	}
}

func TestCatchReturnsEachFaultType(t *testing.T) {
	for _, v := range []error{
		&ProtectionFault{Reason: "x"},
		&CFIFault{Reason: "x"},
		&APIError{Reason: "x"},
		&BudgetFault{Reason: "x"},
		&ContainedFault{Cause: ErrDead},
	} {
		v := v
		err := Catch(func() { panic(v) })
		if err != v {
			t.Errorf("Catch returned %v, want the panicked fault %v", err, v)
		}
	}
}

// TestCatchForeignPanicIdentity asserts the satellite fix: a foreign panic
// must cross Catch with its original value, not wrapped or restringified,
// so the runtime's chained-panic report keeps the faulting stack.
func TestCatchForeignPanicIdentity(t *testing.T) {
	type bug struct{ msg string }
	sentinel := &bug{msg: "application bug"}
	defer func() {
		r := recover()
		if r != any(sentinel) {
			t.Fatalf("foreign panic value changed identity: got %#v", r)
		}
	}()
	Catch(func() { panic(sentinel) })
	t.Fatal("foreign panic did not propagate")
}

func TestTrapForeignPanicRepanics(t *testing.T) {
	sentinel := errors.New("not a fault")
	defer func() {
		if r := recover(); r != any(sentinel) {
			t.Fatalf("Trap re-panicked with %v, want original value", r)
		}
	}()
	func() {
		defer func() { _ = Trap(recover()) }()
		panic(sentinel)
	}()
	t.Fatal("Trap swallowed a foreign panic")
}

// TestCatchNesting asserts a fault raised while handling another fault is
// caught by its own Catch and does not disturb the outer one.
func TestCatchNesting(t *testing.T) {
	inner := &APIError{Op: "inner", Reason: "first"}
	outer := &ProtectionFault{Reason: "second"}
	err := Catch(func() {
		if got := Catch(func() { panic(inner) }); got != inner {
			t.Errorf("inner Catch returned %v", got)
		}
		panic(outer)
	})
	if err != outer {
		t.Errorf("outer Catch returned %v, want %v", err, outer)
	}
	// And the pathological shape: a fault raised inside the deferred path
	// of a function that already faulted reaches the enclosing Catch.
	err = Catch(func() {
		defer panic(outer)
		panic(inner)
	})
	if err != outer {
		t.Errorf("fault-during-fault: Catch returned %v, want the later fault", err)
	}
}
