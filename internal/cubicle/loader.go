package cubicle

import (
	"fmt"

	"cubicleos/internal/isa"
	"cubicleos/internal/vm"
)

// Loader is the trusted cubicle loader of §4/§5.4. Code can only enter
// the system through it: it scans code pages for instructions that would
// affect the integrity of the isolation mechanisms, maps code pages
// execute-only and data pages read(-write), populates the per-cubicle page
// metadata, verifies builder signatures, and installs the cross-cubicle
// call trampolines for every public symbol.
type Loader struct {
	m *Monitor
}

// NewLoader returns a loader bound to the monitor.
func NewLoader(m *Monitor) *Loader { return &Loader{m: m} }

// LoadError reports why the loader refused a component.
type LoadError struct {
	Component string
	Reason    string
}

func (e *LoadError) Error() string {
	return fmt.Sprintf("loader: refusing component %q: %s", e.Component, e.Reason)
}

// LoadSystem loads every component of the system image. groups optionally
// fuses components into one cubicle (component name -> group name): the
// deployment knob behind the paper's CubicleOS-3 vs CubicleOS-4
// configurations (Figure 9). Components fused into a group must agree on
// their kind. Returns the cubicle hosting each component.
func (ld *Loader) LoadSystem(si *SystemImage, groups map[string]string) (map[string]*Cubicle, error) {
	out := make(map[string]*Cubicle, len(si.Components))
	for _, c := range si.Components {
		cub, err := ld.Load(si, c, groups[c.Name])
		if err != nil {
			return nil, err
		}
		out[c.Name] = cub
	}
	return out, nil
}

// Load loads one component into the cubicle named group (defaulting to
// the component's own name), creating the cubicle if needed.
func (ld *Loader) Load(si *SystemImage, c *Component, group string) (*Cubicle, error) {
	m := ld.m
	if group == "" {
		group = c.Name
	}
	if _, dup := m.compOf[c.Name]; dup {
		return nil, &LoadError{Component: c.Name, Reason: "already loaded"}
	}
	if c.Image == nil {
		return nil, &LoadError{Component: c.Name, Reason: "no object image (not built)"}
	}

	// §5.4: scan code pages for binary sequences containing system call
	// or wrpkru instructions before making the pages executable, and
	// refuse to load the code if any such sequence is found.
	if code := c.Image.CodeSection(); code != nil {
		if hits := isa.Scan(code.Data); len(hits) > 0 {
			return nil, &LoadError{Component: c.Name,
				Reason: fmt.Sprintf("code section contains %s", hits[0])}
		}
	}

	cub := m.byName[group]
	if cub == nil {
		var err error
		cub, err = m.addCubicle(group, c.Kind)
		if err != nil {
			return nil, &LoadError{Component: c.Name, Reason: err.Error()}
		}
	} else if cub.Kind != c.Kind {
		return nil, &LoadError{Component: c.Name,
			Reason: fmt.Sprintf("group %q is %v but component is %v", group, cub.Kind, c.Kind)}
	}

	// Map the image sections. Rule 1 of §5.4: code pages get execute-only
	// permissions, data pages read or read-write as specified by the
	// binary; cubicles can never change execution permissions.
	codeBase := vm.Addr(0)
	for _, sec := range c.Image.Sections {
		if len(sec.Data) == 0 {
			continue
		}
		var perm vm.Perm
		var typ vm.PageType
		switch sec.Kind {
		case isa.SecCode:
			perm, typ = vm.PermExec, vm.PageCode
		case isa.SecRodata:
			perm, typ = vm.PermRead, vm.PageGlobal
		case isa.SecData:
			perm, typ = vm.PermRead|vm.PermWrite, vm.PageGlobal
		default:
			return nil, &LoadError{Component: c.Name, Reason: fmt.Sprintf("unknown section kind %v", sec.Kind)}
		}
		pages := vm.PagesFor(uint64(len(sec.Data)))
		addr := m.MapOwned(cub.ID, pages, typ, perm)
		// The loader writes the section bytes with monitor privileges
		// (before permissions take effect, as mmap+mprotect would).
		for i, pn := 0, addr.PageNum(); i < pages; i++ {
			p := m.AS.Page(vm.PageAddr(pn + uint64(i)))
			lo := i * vm.PageSize
			hi := lo + vm.PageSize
			if hi > len(sec.Data) {
				hi = len(sec.Data)
			}
			copy(p.Data[:], sec.Data[lo:hi])
		}
		if sec.Kind == isa.SecCode {
			codeBase = addr
		}
	}

	// Install trampolines for each public symbol after verifying the
	// builder's signature on the descriptor (the trampoline is
	// security-sensitive and "must be generated and signed by the
	// trusted builder", §5.2).
	for _, ex := range c.Exports {
		if !si.verify(c.Name, ex.Name, ex.RegArgs, ex.StackBytes) {
			return nil, &LoadError{Component: c.Name,
				Reason: fmt.Sprintf("trampoline descriptor for %q has a missing or invalid builder signature", ex.Name)}
		}
		if _, dup := cub.exports[ex.Name]; dup {
			return nil, &LoadError{Component: c.Name,
				Reason: fmt.Sprintf("symbol %q already exported by cubicle %q", ex.Name, group)}
		}
		tr := &Trampoline{
			id:         uint32(len(m.trampolines) + 1),
			callee:     cub.ID,
			component:  c.Name,
			sym:        ex.Name,
			symbol:     c.Name + "." + ex.Name,
			fn:         ld.wrapEntry(cub, ex.Fn, c.Name+"."+ex.Name),
			regArgs:    ex.RegArgs,
			stackBytes: ex.StackBytes,
			guards:     make(map[ID]vm.Addr),
		}
		// The trampoline code thunk lives in the monitor's cubicle
		// (§5.5); cubicles reach it only through guard pages.
		tr.thunkAddr = m.MapOwned(MonitorID, 1, vm.PageCode, vm.PermExec)
		thunk := m.AS.Page(tr.thunkAddr)
		copy(thunk.Data[:], isa.BuildGuardPage(tr.id)) // thunk body placeholder bytes
		m.guardPages[tr.thunkAddr.PageNum()] = guardInfo{tramp: tr, caller: MonitorID, isThunk: true}
		m.trampolines = append(m.trampolines, tr)
		cub.exports[ex.Name] = tr
	}

	cub.components = append(cub.components, c.Name)
	m.compOf[c.Name] = cub
	if c.OnRestart != nil {
		m.restartHooks[cub.ID] = append(m.restartHooks[cub.ID], c.OnRestart)
	}
	if c.Snapshot != nil && c.Restore == nil {
		return nil, &LoadError{Component: c.Name, Reason: "Snapshot without Restore"}
	}
	// Snapshot/Restore hooks are registered in load order, which is the
	// (deterministic) order checkpoints serialise and restores replay them.
	m.snapHooks[cub.ID] = append(m.snapHooks[cub.ID], snapHook{
		name: c.Name, snap: c.Snapshot, restore: c.Restore,
	})
	_ = codeBase
	return cub, nil
}

// wrapEntry adds the callee-side CFI prologue: component functions may
// only ever run with their own cubicle's privileges (or, for shared
// cubicles, any caller's). Reaching the function body without the
// trampoline having switched cubicles means control flow bypassed the
// intended entry sequence.
func (ld *Loader) wrapEntry(cub *Cubicle, fn Fn, sym string) Fn {
	if cub.Kind == KindShared {
		return fn
	}
	return func(e *Env, args []uint64) []uint64 {
		if e.T.cur != cub.ID {
			panic(&CFIFault{Cubicle: e.T.cur, Target: sym,
				Reason: "entry reached without a cubicle switch (trampoline bypassed)"})
		}
		return fn(e, args)
	}
}

// Trampolines returns all installed trampolines (inspector/tests).
func (m *Monitor) Trampolines() []*Trampoline {
	out := make([]*Trampoline, len(m.trampolines))
	copy(out, m.trampolines)
	return out
}
