package cubicle

import (
	"strings"
	"testing"

	"cubicleos/internal/cycles"
	"cubicleos/internal/mpk"
	"cubicleos/internal/vm"
)

func TestBootAssignsDistinctKeys(t *testing.T) {
	ts := bootPair(t, ModeFull)
	foo, bar, libc := ts.cubs["FOO"], ts.cubs["BAR"], ts.cubs["LIBC"]
	if foo.ID == bar.ID {
		t.Fatal("FOO and BAR share a cubicle")
	}
	if foo.Key == bar.Key {
		t.Error("isolated cubicles share an MPK key")
	}
	if foo.Key == monitorKey || bar.Key == monitorKey {
		t.Error("isolated cubicle uses the monitor key")
	}
	if libc.Key != sharedKey {
		t.Errorf("shared cubicle key = %d, want %d", libc.Key, sharedKey)
	}
	if libc.Kind != KindShared || foo.Kind != KindIsolated {
		t.Error("cubicle kinds wrong")
	}
}

func TestComponentBookkeeping(t *testing.T) {
	ts := bootPair(t, ModeFull)
	bar := ts.cubs["BAR"]
	if !bar.HasComponent("BAR") || bar.HasComponent("FOO") {
		t.Error("HasComponent wrong")
	}
	if got := bar.Components(); len(got) != 1 || got[0] != "BAR" {
		t.Errorf("Components() = %v", got)
	}
	exp := bar.Exports()
	if len(exp) != 3 {
		t.Errorf("BAR exports %v", exp)
	}
	if ts.m.CubicleByName("BAR") != bar {
		t.Error("CubicleByName mismatch")
	}
	if ts.m.CubicleByName("NOPE") != nil {
		t.Error("CubicleByName returned ghost")
	}
}

// TestFigure1DirectCallFaults reproduces the motivating example: BAR
// dereferencing a pointer into FOO's memory without a window is a
// protection fault once components are isolated.
func TestFigure1DirectCallFaults(t *testing.T) {
	ts := bootPair(t, ModeFull)
	buf := ts.heapIn(t, "FOO", 10)
	ts.enter(t, "FOO", func(e *Env) {
		h := ts.m.MustResolve(e.Cubicle(), "BAR", "bar")
		err := mustFault(t, func() { h.Call(e, uint64(buf), 5) })
		pf, ok := err.(*ProtectionFault)
		if !ok {
			t.Fatalf("got %T (%v), want *ProtectionFault", err, err)
		}
		if pf.Owner != ts.cubs["FOO"].ID {
			t.Errorf("fault owner = %d, want FOO", pf.Owner)
		}
		if pf.Access != mpk.AccessWrite {
			t.Errorf("fault access = %v, want write", pf.Access)
		}
	})
	if ts.m.Stats.DeniedFaults == 0 {
		t.Error("denied fault not counted")
	}
}

// TestFigure1WithWindow is the paper's Figure 1c: opening a window before
// the call makes the very same pointer-passing call work, zero-copy.
func TestFigure1WithWindow(t *testing.T) {
	ts := bootPair(t, ModeFull)
	buf := ts.heapIn(t, "FOO", 10)
	ts.enter(t, "FOO", func(e *Env) {
		barID := e.CubicleOf("BAR")
		wid := e.WindowInit()
		e.WindowAdd(wid, buf, 10)
		e.WindowOpen(wid, barID)
		h := ts.m.MustResolve(e.Cubicle(), "BAR", "bar")
		rets := h.Call(e, uint64(buf), 5)
		if len(rets) != 1 || rets[0] != 1 {
			t.Errorf("bar returned %v", rets)
		}
		e.WindowClose(wid, barID)
		// FOO reads its own array: implicit window 0 maps it back.
		if got := e.LoadByte(buf.Add(5)); got != 0xAA {
			t.Errorf("array[5] = %#x, want 0xAA", got)
		}
	})
	if ts.m.Stats.Faults < 2 {
		t.Errorf("expected at least 2 trap-and-map faults, got %d", ts.m.Stats.Faults)
	}
	if ts.m.Stats.Retags < 2 {
		t.Errorf("expected at least 2 retags, got %d", ts.m.Stats.Retags)
	}
}

// TestTrapAndMapRetagsOnlyOnce: after the first fault maps the page, later
// accesses by the same cubicle are fault-free.
func TestTrapAndMapRetagsOnlyOnce(t *testing.T) {
	ts := bootPair(t, ModeFull)
	buf := ts.heapIn(t, "FOO", 64)
	ts.enter(t, "FOO", func(e *Env) {
		barID := e.CubicleOf("BAR")
		wid := e.WindowInit()
		e.WindowAdd(wid, buf, 64)
		e.WindowOpen(wid, barID)
		h := ts.m.MustResolve(e.Cubicle(), "BAR", "bar")
		h.Call(e, uint64(buf), 0)
		faults := ts.m.Stats.Faults
		h.Call(e, uint64(buf), 1)
		h.Call(e, uint64(buf), 2)
		if ts.m.Stats.Faults != faults {
			t.Errorf("repeat accesses re-faulted: %d -> %d", faults, ts.m.Stats.Faults)
		}
	})
}

// TestCausalTagConsistency follows §5.6: closing a window does not revoke
// access until another cubicle touches the page.
func TestCausalTagConsistency(t *testing.T) {
	ts := bootPair(t, ModeFull)
	buf := ts.heapIn(t, "FOO", 16)
	barH := Handle{}
	readH := Handle{}
	ts.enter(t, "FOO", func(e *Env) {
		barID := e.CubicleOf("BAR")
		barH = ts.m.MustResolve(e.Cubicle(), "BAR", "bar")
		readH = ts.m.MustResolve(e.Cubicle(), "BAR", "bar_read")
		wid := e.WindowInit()
		e.WindowAdd(wid, buf, 16)
		e.WindowOpen(wid, barID)
		barH.Call(e, uint64(buf), 3) // page now tagged for BAR
		e.WindowClose(wid, barID)
		// Window closed, but the page still carries BAR's tag: BAR can
		// still read it (causally consistent — BAR could have read it
		// just before closing).
		if got := readH.Call(e, uint64(buf), 3); got[0] != 0xAA {
			t.Errorf("post-close read = %#x", got[0])
		}
		// Now FOO touches its page: implicit window 0 retags it to FOO...
		if got := e.LoadByte(buf.Add(3)); got != 0xAA {
			t.Errorf("owner read = %#x", got)
		}
		// ...and from this point BAR's access must fault for real.
		err := mustFault(t, func() { readH.Call(e, uint64(buf), 3) })
		if _, ok := err.(*ProtectionFault); !ok {
			t.Fatalf("got %T, want *ProtectionFault", err)
		}
	})
}

func TestWindowPageGranularity(t *testing.T) {
	ts := bootPair(t, ModeFull)
	// Two 16-byte buffers; careless co-location on one page means a
	// window to the first also exposes the second (§5.3 alignment note).
	var a, b vm.Addr
	ts.enter(t, "FOO", func(e *Env) {
		a = e.HeapAlloc(16)
		b = e.HeapAlloc(16)
	})
	if a.PageNum() != b.PageNum() {
		t.Skip("allocator did not co-locate the buffers")
	}
	ts.enter(t, "FOO", func(e *Env) {
		barID := e.CubicleOf("BAR")
		wid := e.WindowInit()
		e.WindowAdd(wid, a, 16)
		e.WindowOpen(wid, barID)
		h := ts.m.MustResolve(e.Cubicle(), "BAR", "bar")
		// BAR can write b through a's window: same page.
		h.Call(e, uint64(b), 0)
	})
}

func TestSharedCubicleRunsWithCallerPrivileges(t *testing.T) {
	ts := bootPair(t, ModeFull)
	src := ts.heapIn(t, "FOO", 32)
	dst := ts.heapIn(t, "BAR", 32)
	ts.enter(t, "FOO", func(e *Env) {
		e.Write(src, []byte("hello, cubicles and windows!"))
	})
	ts.enter(t, "BAR", func(e *Env) {
		// BAR calls LIBC memcpy; LIBC executes with BAR's privileges, so
		// reading FOO's src must fault without a window...
		memcpy := ts.m.MustResolve(e.Cubicle(), "LIBC", "memcpy")
		err := mustFault(t, func() { memcpy.Call(e, uint64(dst), uint64(src), 28) })
		if pf, ok := err.(*ProtectionFault); !ok || pf.Cubicle != ts.cubs["BAR"].ID {
			t.Fatalf("fault = %v; want protection fault attributed to BAR", err)
		}
	})
	ts.enter(t, "FOO", func(e *Env) {
		wid := e.WindowInit()
		e.WindowAdd(wid, src, 32)
		e.WindowOpen(wid, e.CubicleOf("BAR"))
	})
	sharedBefore := ts.m.Stats.SharedCalls
	crossBefore := ts.m.Stats.CallsTotal
	ts.enter(t, "BAR", func(e *Env) {
		memcpy := ts.m.MustResolve(e.Cubicle(), "LIBC", "memcpy")
		memcpy.Call(e, uint64(dst), uint64(src), 28)
		got := e.ReadBytes(dst, 28)
		if string(got) != "hello, cubicles and windows!" {
			t.Errorf("memcpy result %q", got)
		}
	})
	if ts.m.Stats.SharedCalls != sharedBefore+1 {
		t.Error("shared call not counted as shared")
	}
	if ts.m.Stats.CallsTotal != crossBefore {
		t.Error("shared call counted as a cross-cubicle call (it must bypass the TCB)")
	}
}

func TestCallStatsEdges(t *testing.T) {
	ts := bootPair(t, ModeFull)
	buf := ts.heapIn(t, "FOO", 8)
	ts.enter(t, "FOO", func(e *Env) {
		wid := e.WindowInit()
		e.WindowAdd(wid, buf, 8)
		e.WindowOpen(wid, e.CubicleOf("BAR"))
		h := ts.m.MustResolve(e.Cubicle(), "BAR", "bar")
		for i := 0; i < 5; i++ {
			h.Call(e, uint64(buf), 0)
		}
	})
	edge := Edge{From: ts.cubs["FOO"].ID, To: ts.cubs["BAR"].ID}
	if ts.m.Stats.Calls[edge] != 5 {
		t.Errorf("edge count = %d, want 5", ts.m.Stats.Calls[edge])
	}
	edges := ts.m.Stats.SortedEdges()
	if len(edges) == 0 || edges[0].Count < 5 {
		t.Errorf("SortedEdges = %v", edges)
	}
}

func TestModeLadderCosts(t *testing.T) {
	// The same workload must get monotonically more expensive as
	// isolation mechanisms are enabled: Figure 6's ablation structure.
	var costs [4]uint64
	var faults [4]uint64
	var wrpkrus [4]uint64
	for i, mode := range []Mode{ModeUnikraft, ModeTrampoline, ModeNoACL, ModeFull} {
		ts := bootPair(t, mode)
		buf := ts.heapIn(t, "FOO", 8)
		start := ts.m.Clock.Cycles()
		ts.enter(t, "FOO", func(e *Env) {
			wid := e.WindowInit()
			e.WindowAdd(wid, buf, 8)
			e.WindowOpen(wid, e.CubicleOf("BAR"))
			h := ts.m.MustResolve(e.Cubicle(), "BAR", "bar")
			for j := 0; j < 10; j++ {
				h.Call(e, uint64(buf), 0)
			}
			e.WindowCloseAll(wid)
		})
		costs[i] = ts.m.Clock.Cycles() - start
		faults[i] = ts.m.Stats.Faults
		wrpkrus[i] = ts.m.Stats.WRPKRUs
	}
	if costs[0] != 0 {
		t.Errorf("Unikraft mode charged %d cycles, want 0", costs[0])
	}
	if !(costs[1] > costs[0] && costs[2] > costs[1] && costs[3] > costs[2]) {
		t.Errorf("mode costs not increasing: %v", costs)
	}
	if faults[0] != 0 || faults[1] != 0 {
		t.Errorf("non-MPK modes took faults: %v", faults)
	}
	if faults[2] == 0 || faults[3] == 0 {
		t.Errorf("MPK modes took no faults: %v", faults)
	}
	if wrpkrus[1] != 0 || wrpkrus[2] == 0 {
		t.Errorf("wrpkru counts wrong: %v", wrpkrus)
	}
}

func TestNoACLModeGrantsWithoutWindows(t *testing.T) {
	ts := bootPair(t, ModeNoACL)
	buf := ts.heapIn(t, "FOO", 8)
	ts.enter(t, "FOO", func(e *Env) {
		h := ts.m.MustResolve(e.Cubicle(), "BAR", "bar")
		// No window opened — ModeNoACL still grants (windows "open for
		// any access") but pays the trap and retag.
		h.Call(e, uint64(buf), 0)
	})
	if ts.m.Stats.Faults == 0 || ts.m.Stats.Retags == 0 {
		t.Error("no-ACL mode skipped the trap-and-map path")
	}
	if ts.m.Stats.WindowSearchSteps != 0 {
		t.Error("no-ACL mode searched window descriptors")
	}
}

func TestUnikraftModeIsFree(t *testing.T) {
	ts := bootPair(t, ModeUnikraft)
	buf := ts.heapIn(t, "FOO", 8)
	ts.enter(t, "FOO", func(e *Env) {
		h := ts.m.MustResolve(e.Cubicle(), "BAR", "bar")
		before := ts.m.Clock.Cycles()
		h.Call(e, uint64(buf), 0)
		if ts.m.Clock.Cycles() != before {
			t.Error("direct call charged cycles in Unikraft mode")
		}
	})
	if ts.m.Stats.Faults != 0 || ts.m.Stats.WRPKRUs != 0 {
		t.Error("Unikraft mode exercised MPK")
	}
}

func TestStackArgCopyCost(t *testing.T) {
	for _, mode := range []Mode{ModeTrampoline, ModeFull} {
		b := NewBuilder()
		b.MustAdd(&Component{Name: "A", Kind: KindIsolated, Exports: []ExportDecl{
			{Name: "a_main", Fn: func(e *Env, args []uint64) []uint64 { return nil }},
		}})
		b.MustAdd(&Component{Name: "B", Kind: KindIsolated, Exports: []ExportDecl{
			{Name: "light", RegArgs: 2, Fn: func(e *Env, args []uint64) []uint64 { return nil }},
			{Name: "heavy", RegArgs: 6, StackBytes: 256, Fn: func(e *Env, args []uint64) []uint64 { return nil }},
		}})
		si, err := b.Build()
		if err != nil {
			t.Fatal(err)
		}
		m := NewMonitor(mode, testCosts())
		if _, err := NewLoader(m).LoadSystem(si, nil); err != nil {
			t.Fatal(err)
		}
		env := m.NewEnv(m.NewThread())
		a := m.CubicleByName("A")
		env.T.pushFrame(a.ID, true)
		light := m.MustResolve(a.ID, "B", "light")
		heavy := m.MustResolve(a.ID, "B", "heavy")
		c0 := m.Clock.Cycles()
		light.Call(env, 1, 2)
		cLight := m.Clock.Cycles() - c0
		c0 = m.Clock.Cycles()
		heavy.Call(env, 1, 2, 3, 4, 5, 6)
		cHeavy := m.Clock.Cycles() - c0
		if cHeavy <= cLight {
			t.Errorf("mode %v: stack-heavy call (%d cycles) not more expensive than register call (%d)", mode, cHeavy, cLight)
		}
		if m.Stats.StackBytesCopied != 256 {
			t.Errorf("mode %v: stack bytes copied = %d, want 256", mode, m.Stats.StackBytesCopied)
		}
		env.T.popFrame()
	}
}

func TestAllocaLifetime(t *testing.T) {
	ts := bootPair(t, ModeFull)
	var first vm.Addr
	ts.enter(t, "FOO", func(e *Env) { first = e.Alloca(64) })
	var second vm.Addr
	ts.enter(t, "FOO", func(e *Env) { second = e.Alloca(64) })
	if first != second {
		t.Errorf("stack not released after return: %#x vs %#x", uint64(first), uint64(second))
	}
}

func TestAllocaPageAlignment(t *testing.T) {
	ts := bootPair(t, ModeFull)
	ts.enter(t, "FOO", func(e *Env) {
		a := e.AllocaPage(10)
		if a.PageOff() != 0 {
			t.Errorf("AllocaPage returned unaligned %#x", uint64(a))
		}
		p := ts.m.AS.Page(a)
		if p.Type != vm.PageStack || p.Owner != int(ts.cubs["FOO"].ID) {
			t.Error("stack buffer page metadata wrong")
		}
		e.Write(a, make([]byte, 10))
	})
}

func TestStackOverflowFaults(t *testing.T) {
	ts := bootPair(t, ModeFull)
	ts.enter(t, "FOO", func(e *Env) {
		err := mustFault(t, func() {
			for i := 0; i < 100000; i++ {
				e.Alloca(4096)
			}
		})
		if !strings.Contains(err.Error(), "stack overflow") {
			t.Errorf("got %v", err)
		}
	})
}

func TestCubicleOfUnknownComponent(t *testing.T) {
	ts := bootPair(t, ModeFull)
	ts.enter(t, "FOO", func(e *Env) {
		err := mustFault(t, func() { e.CubicleOf("GHOST") })
		if _, ok := err.(*APIError); !ok {
			t.Errorf("got %T, want *APIError", err)
		}
	})
}

func TestCallerTracking(t *testing.T) {
	ts := bootPair(t, ModeFull)
	ts.enter(t, "FOO", func(e *Env) {
		if e.Caller() != MonitorID {
			t.Errorf("outer caller = %d", e.Caller())
		}
		h := ts.m.MustResolve(e.Cubicle(), "BAR", "bar_alloc")
		fooID := e.Cubicle()
		// Within BAR, the caller must be FOO. Checked via a nested probe.
		probe := ts.m.MustResolve(e.Cubicle(), "BAR", "bar_read")
		_ = probe
		inner := func() {
			rets := h.Call(e, 16)
			if rets[0] == 0 {
				t.Error("bar_alloc returned null")
			}
			p := ts.m.AS.Page(vm.Addr(rets[0]))
			if p.Owner != int(ts.cubs["BAR"].ID) {
				t.Error("BAR's heap allocation not owned by BAR")
			}
		}
		inner()
		if e.Cubicle() != fooID {
			t.Error("cubicle not restored after call")
		}
	})
}

// testCosts returns the default cost table (indirection point for
// cost-sensitive tests).
func testCosts() cycles.Costs { return cycles.DefaultCosts() }
