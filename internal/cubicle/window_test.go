package cubicle

import (
	"testing"
	"testing/quick"

	"cubicleos/internal/vm"
)

func TestWindowOnlyOwnerManages(t *testing.T) {
	ts := bootPair(t, ModeFull)
	buf := ts.heapIn(t, "FOO", 8)
	var wid WID
	ts.enter(t, "FOO", func(e *Env) {
		wid = e.WindowInit()
		e.WindowAdd(wid, buf, 8)
	})
	// BAR trying to manage FOO's window must be denied: "windows are
	// assigned to the calling cubicle, and can only be managed by it".
	ts.enter(t, "BAR", func(e *Env) {
		for name, op := range map[string]func(){
			"open":      func() { e.WindowOpen(wid, e.CubicleOf("BAR")) },
			"close":     func() { e.WindowClose(wid, e.CubicleOf("BAR")) },
			"close_all": func() { e.WindowCloseAll(wid) },
			"destroy":   func() { e.WindowDestroy(wid) },
			"add":       func() { e.WindowAdd(wid, buf, 8) },
			"remove":    func() { e.WindowRemove(wid, buf) },
		} {
			err := mustFault(t, op)
			if _, ok := err.(*APIError); !ok {
				t.Errorf("%s by non-owner: got %T, want *APIError", name, err)
			}
		}
	})
}

func TestWindowAddRejectsForeignMemory(t *testing.T) {
	ts := bootPair(t, ModeFull)
	barBuf := ts.heapIn(t, "BAR", 8)
	ts.enter(t, "FOO", func(e *Env) {
		wid := e.WindowInit()
		// The nested-call rule (§5.6): a cubicle cannot open a window on
		// data owned by another cubicle, even if shared with it.
		err := mustFault(t, func() { e.WindowAdd(wid, barBuf, 8) })
		if _, ok := err.(*APIError); !ok {
			t.Errorf("got %T, want *APIError", err)
		}
	})
}

func TestWindowAddRejectsCodeAndUnmapped(t *testing.T) {
	ts := bootPair(t, ModeFull)
	// Find one of FOO's code pages.
	var codeAddr vm.Addr
	ts.m.AS.ForEachPage(func(pn uint64, p *vm.Page) {
		if p.Owner == int(ts.cubs["FOO"].ID) && p.Type == vm.PageCode && codeAddr == 0 {
			codeAddr = vm.PageAddr(pn)
		}
	})
	if codeAddr == 0 {
		t.Fatal("FOO has no code page")
	}
	ts.enter(t, "FOO", func(e *Env) {
		wid := e.WindowInit()
		if err := mustFault(t, func() { e.WindowAdd(wid, codeAddr, 8) }); err == nil {
			t.Error("windowing a code page allowed")
		}
		if err := mustFault(t, func() { e.WindowAdd(wid, vm.Addr(0xFFFF0000), 8) }); err == nil {
			t.Error("windowing unmapped memory allowed")
		}
		if err := mustFault(t, func() { e.WindowAdd(wid, codeAddr, 0) }); err == nil {
			t.Error("empty range allowed")
		}
	})
}

func TestWindowRemoveRestoresIsolation(t *testing.T) {
	ts := bootPair(t, ModeFull)
	buf := ts.heapIn(t, "FOO", 8)
	buf2 := ts.heapIn(t, "FOO", vm.PageSize) // page-aligned, separate page
	ts.enter(t, "FOO", func(e *Env) {
		barID := e.CubicleOf("BAR")
		wid := e.WindowInit()
		e.WindowAdd(wid, buf, 8)
		e.WindowAdd(wid, buf2, 8)
		e.WindowOpen(wid, barID)
		h := ts.m.MustResolve(e.Cubicle(), "BAR", "bar")
		h.Call(e, uint64(buf2), 0)
		e.WindowRemove(wid, buf2)
		// Touch by owner to retag, then BAR must fault on buf2 but still
		// reach buf.
		_ = e.LoadByte(buf2)
		mustFault(t, func() { h.Call(e, uint64(buf2), 1) })
		h.Call(e, uint64(buf), 0)
		// Removing a range that was never added fails.
		err := mustFault(t, func() { e.WindowRemove(wid, buf2) })
		if _, ok := err.(*APIError); !ok {
			t.Errorf("double remove: got %T", err)
		}
	})
}

func TestWindowCloseAllAndDestroy(t *testing.T) {
	ts := bootPair(t, ModeFull)
	buf := ts.heapIn(t, "FOO", 8)
	ts.enter(t, "FOO", func(e *Env) {
		barID := e.CubicleOf("BAR")
		wid := e.WindowInit()
		e.WindowAdd(wid, buf, 8)
		e.WindowOpen(wid, barID)
		e.WindowCloseAll(wid)
		_ = e.LoadByte(buf) // owner touch retags to FOO
		h := ts.m.MustResolve(e.Cubicle(), "BAR", "bar")
		mustFault(t, func() { h.Call(e, uint64(buf), 0) })
		if n := ts.m.WindowCount(e.Cubicle()); n != 1 {
			t.Errorf("window count = %d, want 1", n)
		}
		e.WindowDestroy(wid)
		if n := ts.m.WindowCount(e.Cubicle()); n != 0 {
			t.Errorf("window count after destroy = %d, want 0", n)
		}
		// Operations on a destroyed window fail.
		err := mustFault(t, func() { e.WindowOpen(wid, barID) })
		if _, ok := err.(*APIError); !ok {
			t.Errorf("open destroyed: got %T", err)
		}
		// A new init reuses the freed slot.
		wid2 := e.WindowInit()
		if wid2 != wid {
			t.Errorf("destroyed slot not reused: %d vs %d", wid2, wid)
		}
	})
}

func TestWindowOpenUnknownCubicle(t *testing.T) {
	ts := bootPair(t, ModeFull)
	buf := ts.heapIn(t, "FOO", 8)
	ts.enter(t, "FOO", func(e *Env) {
		wid := e.WindowInit()
		e.WindowAdd(wid, buf, 8)
		err := mustFault(t, func() { e.WindowOpen(wid, ID(55)) })
		if _, ok := err.(*APIError); !ok {
			t.Errorf("got %T", err)
		}
	})
}

func TestWindowOpenIsPerCubicle(t *testing.T) {
	// Window opened for BAR must not admit a third cubicle.
	b := NewBuilder()
	store := func(e *Env, args []uint64) []uint64 {
		e.StoreByte(vm.Addr(args[0]), 0x55)
		return nil
	}
	b.MustAdd(&Component{Name: "OWNER", Kind: KindIsolated, Exports: []ExportDecl{
		{Name: "o_main", Fn: func(e *Env, args []uint64) []uint64 { return nil }}}})
	b.MustAdd(&Component{Name: "GOOD", Kind: KindIsolated, Exports: []ExportDecl{
		{Name: "g_store", RegArgs: 1, Fn: store}}})
	b.MustAdd(&Component{Name: "EVIL", Kind: KindIsolated, Exports: []ExportDecl{
		{Name: "e_store", RegArgs: 1, Fn: store}}})
	si, _ := b.Build()
	m := NewMonitor(ModeFull, testCosts())
	if _, err := NewLoader(m).LoadSystem(si, nil); err != nil {
		t.Fatal(err)
	}
	env := m.NewEnv(m.NewThread())
	owner := m.CubicleByName("OWNER")
	env.T.pushFrame(owner.ID, true)
	m.wrpkru(env.T, m.pkruFor(owner.ID))
	buf := env.HeapAlloc(8)
	wid := env.WindowInit()
	env.WindowAdd(wid, buf, 8)
	env.WindowOpen(wid, env.CubicleOf("GOOD"))
	good := m.MustResolve(owner.ID, "GOOD", "g_store")
	evil := m.MustResolve(owner.ID, "EVIL", "e_store")
	good.Call(env, uint64(buf))
	_ = env.LoadByte(buf) // owner retags back
	err := Catch(func() { evil.Call(env, uint64(buf)) })
	if err == nil {
		t.Fatal("third cubicle accessed a window opened only for GOOD")
	}
	env.T.popFrame()
}

// TestWindowACLBitmaskProperty: open/close for random subsets of cubicles
// always yields exactly the allowed set.
func TestWindowACLBitmaskProperty(t *testing.T) {
	f := func(ops []uint16) bool {
		w := &Window{ID: 0, Owner: 1}
		allowed := make(map[ID]bool)
		for _, op := range ops {
			cid := ID(op % MaxCubicles)
			if op&0x8000 != 0 {
				w.Open |= 1 << uint(cid)
				allowed[cid] = true
			} else {
				w.Open &^= 1 << uint(cid)
				delete(allowed, cid)
			}
		}
		for cid := ID(0); cid < MaxCubicles; cid++ {
			if w.IsOpenFor(cid) != allowed[cid] {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestRangeContainsPageGranularity(t *testing.T) {
	r := Range{Addr: vm.Addr(vm.PageSize + 100), Size: 10}
	if !r.Contains(vm.Addr(vm.PageSize)) {
		t.Error("range does not cover the start of its own page")
	}
	if !r.Contains(vm.Addr(2*vm.PageSize - 1)) {
		t.Error("range does not cover the end of its own page")
	}
	if r.Contains(vm.Addr(2 * vm.PageSize)) {
		t.Error("range covers the next page")
	}
	if r.Contains(vm.Addr(vm.PageSize - 1)) {
		t.Error("range covers the previous page")
	}
}

func TestWindowSearchChargedPerEntry(t *testing.T) {
	ts := bootPair(t, ModeFull)
	// Create many windows so the linear search has to walk them.
	bufs := make([]vm.Addr, 12)
	for i := range bufs {
		bufs[i] = ts.heapIn(t, "FOO", vm.PageSize)
	}
	ts.enter(t, "FOO", func(e *Env) {
		barID := e.CubicleOf("BAR")
		for _, b := range bufs {
			wid := e.WindowInit()
			e.WindowAdd(wid, b, vm.PageSize)
			e.WindowOpen(wid, barID)
		}
		h := ts.m.MustResolve(e.Cubicle(), "BAR", "bar")
		h.Call(e, uint64(bufs[len(bufs)-1]), 0)
	})
	if ts.m.Stats.WindowSearchSteps < uint64(len(bufs)) {
		t.Errorf("search steps = %d, want >= %d (linear search)", ts.m.Stats.WindowSearchSteps, len(bufs))
	}
}

func TestStackWindowFigure4(t *testing.T) {
	// The paper's Figure 4: a page-aligned stack buffer windowed to
	// another cubicle.
	ts := bootPair(t, ModeFull)
	ts.enter(t, "FOO", func(e *Env) {
		barID := e.CubicleOf("BAR")
		buf := e.AllocaPage(10) // char BUF[10] + pad to page
		wid := e.WindowInit()
		e.WindowAdd(wid, buf, 10)
		e.WindowOpen(wid, barID)
		h := ts.m.MustResolve(e.Cubicle(), "BAR", "bar")
		h.Call(e, uint64(buf), 7)
		e.WindowClose(wid, barID)
		if got := e.LoadByte(buf.Add(7)); got != 0xAA {
			t.Errorf("stack BUF[7] = %#x", got)
		}
	})
	if ts.m.Stats.Faults == 0 {
		t.Error("stack window access did not go through trap-and-map")
	}
}

func TestWindowStatsWindowOpsOnlyInFullMode(t *testing.T) {
	for _, mode := range []Mode{ModeUnikraft, ModeNoACL} {
		ts := bootPair(t, mode)
		buf := ts.heapIn(t, "FOO", 8)
		ts.enter(t, "FOO", func(e *Env) {
			wid := e.WindowInit()
			e.WindowAdd(wid, buf, 8)
			e.WindowOpen(wid, e.CubicleOf("BAR"))
		})
		if ts.m.Stats.WindowOps != 0 {
			t.Errorf("mode %v charged window ops", mode)
		}
	}
	ts := bootPair(t, ModeFull)
	buf := ts.heapIn(t, "FOO", 8)
	ts.enter(t, "FOO", func(e *Env) {
		wid := e.WindowInit()
		e.WindowAdd(wid, buf, 8)
	})
	if ts.m.Stats.WindowOps != 2 {
		t.Errorf("full mode window ops = %d, want 2", ts.m.Stats.WindowOps)
	}
}
