package cubicle

import "cubicleos/internal/trace"

// StatsFromTrace reconstructs the legacy Stats counters from a tracer's
// streaming event counts. Every Stats field the monitor maintains has a
// defining event (or event weight) in the trace, so for a run traced from
// boot the two views must agree exactly — the event stream is the single
// source of truth and Stats is a derived, always-on summary of it. Tests
// assert the equivalence over full workload runs.
//
// DeniedFaults is the only subtle mapping: a denied trap records both an
// EvFault (the trap was taken and paid for) and an EvDeniedFault, exactly
// mirroring how the monitor counts Stats.Faults on trap entry and
// Stats.DeniedFaults on rejection.
func StatsFromTrace(trc *trace.Tracer) Stats {
	c := trc.Counts()
	s := newStats()
	s.CallsTotal = c.CallsTotal
	s.SharedCalls = c.SharedCalls
	s.Faults = c.Faults
	s.DeniedFaults = c.DeniedFaults
	s.Retags = c.Retags
	s.WRPKRUs = c.WRPKRUs
	s.WindowOps = c.WindowOps
	s.WindowSearchSteps = c.WindowSearchSteps
	s.StackBytesCopied = c.StackBytesCopied
	s.BulkBytesCopied = c.BulkBytesCopied
	s.KeyEvictions = c.KeyEvictions
	s.ContainedFaults = c.ContainedFaults
	s.Quarantines = c.Quarantines
	s.Restarts = c.Restarts
	s.InjectedFaults = c.InjectedFaults
	s.Sheds = c.Sheds
	s.DeadlineFaults = c.DeadlineFaults
	s.QuotaFaults = c.QuotaFaults
	s.Retries = c.Retries
	// The TLB counters are wall-clock diagnostics mirrored from the
	// monitor's live gauges (see trace.Counts): too frequent to be events,
	// still part of the cross-checked view.
	s.TLBHits = c.TLBHits
	s.TLBMisses = c.TLBMisses
	s.TLBInvalidations = c.TLBInvalidations
	s.TLBShootdowns = c.TLBShootdowns
	s.TLBShootdownInvalidations = c.TLBShootdownInvalidations
	s.Checkpoints = c.Checkpoints
	s.CheckpointBytes = c.CheckpointBytes
	s.WarmRestarts = c.WarmRestarts
	s.ColdRestarts = c.ColdRestarts
	s.Routes = c.Routes
	s.Drains = c.Drains
	s.Failovers = c.Failovers
	for e, n := range c.Calls {
		s.Calls[Edge{From: ID(e.From), To: ID(e.To)}] = n
	}
	return s
}
