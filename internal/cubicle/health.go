package cubicle

import (
	"errors"
	"fmt"
)

// Health is the supervision state of a cubicle. Cubicles boot Healthy;
// a contained fault moves the faulting cubicle to Quarantined (calls into
// it fail fast until the supervisor restarts it); exhausting the restart
// budget moves it to Dead permanently.
type Health uint8

const (
	// Healthy cubicles accept calls normally.
	Healthy Health = iota
	// Quarantined cubicles refuse calls until their backoff expires and
	// the supervisor restarts them.
	Quarantined
	// Dead cubicles exhausted their restart budget and never run again.
	Dead
)

func (h Health) String() string {
	switch h {
	case Healthy:
		return "healthy"
	case Quarantined:
		return "quarantined"
	case Dead:
		return "dead"
	}
	return fmt.Sprintf("Health(%d)", uint8(h))
}

// ErrQuarantined is the cause of a ContainedFault refusing a call into a
// quarantined cubicle whose restart backoff has not yet expired.
var ErrQuarantined = errors.New("cubicle is quarantined")

// ErrDead is the cause of a ContainedFault refusing a call into a cubicle
// that exhausted its restart budget.
var ErrDead = errors.New("cubicle is dead")

// ContainedFault is the typed error a caller receives when a callee
// cubicle faults (or is refused) under containment: the crossing unwound
// only to the trampoline frame, the caller's stack pointer and PKRU were
// restored, and windows opened by the aborted call were closed. The fault
// is attributable — Cubicle names the component at fault, never the
// caller.
type ContainedFault struct {
	Cubicle ID     // the faulted (or refused) callee
	Symbol  string // trampoline symbol of the aborted call
	Cause   error  // underlying fault, or ErrQuarantined/ErrDead
}

func (f *ContainedFault) Error() string {
	return fmt.Sprintf("contained fault: cubicle %d (%s): %v", f.Cubicle, f.Symbol, f.Cause)
}

// Unwrap exposes the underlying fault to errors.Is/errors.As.
func (f *ContainedFault) Unwrap() error { return f.Cause }

// BudgetFault is raised by the supervisor's watchdog when a crossing
// exceeds its virtual-cycle budget — the simulator's analogue of a
// component spinning without returning.
type BudgetFault struct {
	Cubicle ID
	Used    uint64
	Budget  uint64
	Reason  string
}

func (f *BudgetFault) Error() string {
	return fmt.Sprintf("budget fault: cubicle %d used %d of %d cycles: %s",
		f.Cubicle, f.Used, f.Budget, f.Reason)
}

// CatchContained runs fn and returns the ContainedFault it raised, or nil
// if it completed. Any other panic — including raw isolation faults, which
// only become ContainedFaults at a supervised crossing — propagates
// unchanged. Components use it to degrade gracefully when a dependency
// cubicle is down.
func CatchContained(fn func()) (cf *ContainedFault) {
	defer func() {
		if r := recover(); r != nil {
			f, ok := r.(*ContainedFault)
			if !ok {
				panic(r)
			}
			cf = f
		}
	}()
	fn()
	return nil
}

// faultClass maps a contained cause to a constant class label used in
// trace events and supervisor counters.
func faultClass(err error) string {
	switch err.(type) {
	case *ProtectionFault:
		return "protection"
	case *CFIFault:
		return "cfi"
	case *APIError:
		return "api"
	case *BudgetFault:
		return "budget"
	case *QuotaFault:
		return "quota"
	case *DeadlineFault:
		return "deadline"
	}
	switch err {
	case ErrQuarantined:
		return "quarantined"
	case ErrDead:
		return "dead"
	}
	return "unknown"
}
