package cubicle

// InjectKind is a deterministic fault-injection decision returned by an
// Injector at one of the monitor's injection sites.
type InjectKind uint8

const (
	// InjectNone fires nothing.
	InjectNone InjectKind = iota
	// InjectProt raises a ProtectionFault in the target cubicle.
	InjectProt
	// InjectCFI raises a CFIFault in the target cubicle.
	InjectCFI
	// InjectBudget raises a BudgetFault in the target cubicle.
	InjectBudget
	// InjectLeak models a callee that creates a window and crashes before
	// destroying it: the containment journal must clean it up.
	InjectLeak
)

// Injector decides, per site, whether to inject a fault. Implementations
// (see internal/faultinject) are seeded PRNGs so the decision stream is
// deterministic for a given workload. The monitor consults the injector
// at three sites: cross-cubicle call entry, window-management API calls,
// and trap-and-map retags. Methods take component/cubicle names so the
// implementation needs no dependency on this package's ID space, plus the
// simulated core of the acting thread so SMP deployments can draw from
// per-core decision streams (core 0 reproduces the single-core stream).
type Injector interface {
	// AtCrossing is consulted after the crossing switched into the callee;
	// the injected fault is attributed to — and contained against — the
	// callee cubicle.
	AtCrossing(core int, callee, symbol string) InjectKind
	// AtWindowOp is consulted on window-management calls by cubicle owner.
	AtWindowOp(core int, owner, op string) InjectKind
	// AtRetag is consulted when the trap-and-map handler is about to retag
	// a page for the named cubicle.
	AtRetag(core int, cubicle string) InjectKind
}

// SetInjector attaches (or, with nil, detaches) a deterministic fault
// injector. Injection only makes sense under containment, but the monitor
// does not enforce that: an unsupervised injected fault simply unwinds to
// the outermost Catch like any real fault. Boot wiring: an attached
// injector disables the trusted-crossing fast path.
func (m *Monitor) SetInjector(inj Injector) {
	m.inj = inj
	m.recomputeFastCross()
}

// noteInjected records one injection firing against cubicle id at the
// named site (site must be a constant string).
func (m *Monitor) noteInjected(t *Thread, id ID, site string) {
	m.st(t).InjectedFaults++
	if m.trc != nil {
		m.trc.Injected(int(id), site)
	}
}

// injectAtCrossing fires an injected fault inside a freshly entered
// crossing. It runs with the callee's frame pushed, so containment
// attributes the fault to the callee exactly as a real one.
func (m *Monitor) injectAtCrossing(t *Thread, tr *Trampoline) {
	kind := m.inj.AtCrossing(t.core, m.cubicle(tr.callee).Name, tr.sym)
	if kind == InjectNone {
		return
	}
	m.noteInjected(t, tr.callee, "crossing")
	switch kind {
	case InjectCFI:
		panic(&CFIFault{Cubicle: tr.callee, Target: tr.Symbol(),
			Reason: "injected CFI fault"})
	case InjectBudget:
		b := uint64(0)
		if m.sup != nil {
			b = m.sup.policy.CrossingBudget
		}
		panic(&BudgetFault{Cubicle: tr.callee, Used: b + 1, Budget: b,
			Reason: "injected budget overrun"})
	case InjectLeak:
		// The callee "creates" a window and crashes before destroying it;
		// windowInit journals the creation, and the regression tests assert
		// that rollback leaves no extra window behind.
		wid := m.windowInit(t, tr.callee)
		if m.sup != nil {
			t.journal = append(t.journal, undoEntry{kind: undoDestroyWindow,
				owner: tr.callee, wid: wid})
		}
		panic(&ProtectionFault{Cubicle: tr.callee, Owner: tr.callee,
			Reason: "injected fault after window leak"})
	default: // InjectProt
		panic(&ProtectionFault{Cubicle: tr.callee, Owner: tr.callee,
			Reason: "injected protection fault"})
	}
}
