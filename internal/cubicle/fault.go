package cubicle

import (
	"fmt"

	"cubicleos/internal/mpk"
	"cubicleos/internal/vm"
)

// ProtectionFault is raised when a memory access violates the cubicle
// isolation policy: the access was denied by the page-table permissions or
// by MPK, and the monitor's trap-and-map handler found no open window
// authorising it. In hardware this is a fatal page fault delivered to the
// faulting component; in the simulator it is a panic with this value,
// recovered and converted to an error at the system boundary.
type ProtectionFault struct {
	Addr     vm.Addr
	Access   mpk.AccessKind
	Cubicle  ID // cubicle whose privileges the faulting code ran with
	Owner    ID // owner of the faulting page (vm.NoOwner if runtime)
	PageType vm.PageType
	Reason   string
}

func (f *ProtectionFault) Error() string {
	return fmt.Sprintf("protection fault: cubicle %d %s at %#x (page owner %d, type %s): %s",
		f.Cubicle, f.Access, uint64(f.Addr), f.Owner, f.PageType, f.Reason)
}

// CFIFault is raised when control-flow integrity is violated: a call or
// return across cubicles that does not go through the intended trampoline
// entry point (§5.5).
type CFIFault struct {
	Cubicle ID
	Target  string
	Reason  string
}

func (f *CFIFault) Error() string {
	return fmt.Sprintf("CFI fault: cubicle %d calling %q: %s", f.Cubicle, f.Target, f.Reason)
}

// APIError reports misuse of the monitor API by a cubicle — for example
// manipulating a window it does not own. These are denied requests, not
// hardware faults, but component code has no sensible way to continue, so
// they also unwind as panics recovered at the system boundary.
type APIError struct {
	Cubicle ID
	Op      string
	Reason  string
}

func (e *APIError) Error() string {
	return fmt.Sprintf("monitor API error: cubicle %d %s: %s", e.Cubicle, e.Op, e.Reason)
}

// GuardArgs validates the argument word count of a component entry point
// at the crossing boundary. The trampoline ABI delivers a caller-chosen
// slice of argument words; an export indexing past its end would be a raw
// Go index panic — a simulator crash, not a component fault. Guarding
// turns a short argument vector into a typed APIError raised in the
// executing cubicle, which the supervisor contains at the crossing like
// any other isolation fault.
func GuardArgs(e *Env, op string, a []uint64, n int) {
	if len(a) < n {
		panic(&APIError{Cubicle: e.T.cur, Op: op,
			Reason: fmt.Sprintf("entry point needs %d argument words, got %d", n, len(a))})
	}
}

// AsFault reports whether a recovered panic value is one of the isolation
// fault types and returns it as an error. Foreign panic values (runtime
// errors, application panics) are not faults and yield ok=false.
func AsFault(r any) (err error, ok bool) {
	switch f := r.(type) {
	case *ProtectionFault:
		return f, true
	case *CFIFault:
		return f, true
	case *APIError:
		return f, true
	case *BudgetFault:
		return f, true
	case *QuotaFault:
		return f, true
	case *DeadlineFault:
		return f, true
	case *ContainedFault:
		return f, true
	}
	return nil, false
}

// Trap converts a recovered panic value back into the fault error it
// carries, re-panicking for any foreign panic. It is used by the system
// boundary (and tests) to observe faults. The re-panic passes the original
// value through unwrapped so the runtime's chained-panic report preserves
// the foreign panic's identity and stack.
func Trap(r any) error {
	if err, ok := AsFault(r); ok {
		return err
	}
	panic(r)
}

// Catch runs fn and returns the isolation fault it raised, or nil if it
// completed. Foreign panics propagate with their original value: the
// re-panic happens directly inside the deferred recovery, so the runtime
// prints the original panic chained with "[recovered]" and the faulting
// stack is preserved.
func Catch(fn func()) (err error) {
	defer func() {
		r := recover()
		if r == nil {
			return
		}
		fault, ok := AsFault(r)
		if !ok {
			panic(r)
		}
		err = fault
	}()
	fn()
	return nil
}
