package cubicle

import "fmt"

// Mode selects how much of the CubicleOS machinery is active. The modes
// form the ablation ladder of Figure 6: baseline Unikraft, CubicleOS
// without MPK, CubicleOS with MPK but without ACLs, and full CubicleOS.
type Mode uint8

const (
	// ModeUnikraft is the baseline library OS: all components share one
	// unprotected address space and calls across them are direct function
	// calls with no overhead.
	ModeUnikraft Mode = iota
	// ModeTrampoline enables cross-cubicle call trampolines (per-cubicle
	// stacks, stack-argument copies, CFI bookkeeping) but leaves MPK off:
	// every access succeeds.
	ModeTrampoline
	// ModeNoACL additionally enables MPK: cubicles run with only their
	// own key enabled, accesses to other cubicles' pages trap into the
	// monitor, and the trap-and-map handler retags pages — but the
	// window ACLs are "open for any access": the handler grants every
	// request without consulting window descriptors.
	ModeNoACL
	// ModeFull is complete CubicleOS: trampolines, MPK, and enforced
	// window ACLs.
	ModeFull
)

func (m Mode) String() string {
	switch m {
	case ModeUnikraft:
		return "unikraft"
	case ModeTrampoline:
		return "cubicleos-no-mpk"
	case ModeNoACL:
		return "cubicleos-no-acl"
	case ModeFull:
		return "cubicleos"
	}
	return fmt.Sprintf("Mode(%d)", uint8(m))
}

// MPKEnabled reports whether the mode programs real key permissions into
// thread PKRU registers (and therefore takes protection traps).
func (m Mode) MPKEnabled() bool { return m >= ModeNoACL }

// ACLEnabled reports whether the trap-and-map handler consults window
// descriptors before granting access.
func (m Mode) ACLEnabled() bool { return m == ModeFull }

// TrampolinesEnabled reports whether cross-cubicle calls go through
// trampolines at all.
func (m Mode) TrampolinesEnabled() bool { return m >= ModeTrampoline }
