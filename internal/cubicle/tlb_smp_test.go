package cubicle

import (
	"sync"
	"testing"

	"cubicleos/internal/vm"
)

// FuzzSpanTLBConcurrent is the SMP extension of FuzzSpanTLBDifferential:
// one worker performs fuzz-chosen retag-inducing operations on core 0
// (cross-cubicle writes that trap pages to BAR, owner stores that trap
// them back, window churn, warm restarts of BAR) while a second worker on
// core 1 reads the same pages through its span TLB the whole time. The
// property under test is that a concurrent retag or restart never leaves
// a *stale grant* behind:
//
//   - every read core 1 completes returns a byte from the live page the
//     translation claims to cache (never garbage through a dangling
//     translation into a reclaimed frame); the reader sticks to offset
//     32, which no store ever touches, so any nonzero byte is proof of
//     a stale grant — and the reader/writer bytes stay disjoint, which
//     is what real cores require of racing guests anyway;
//   - after the workers join, every surviving TLB entry still translates
//     to the live page of the address space (shootdowns and epoch checks
//     did their job);
//   - the final read agrees exactly with the last write, since the join
//     orders it after the writer.
//
// Run under -race this doubles as the data-race gate for the
// shootdown/TLB protocol, and with the lock-order checker armed every
// interleaving also proves the documented lock hierarchy (global before
// cubicle, cubicles in ID order) is respected.
func FuzzSpanTLBConcurrent(f *testing.F) {
	f.Add([]byte{0, 1, 2, 3, 0, 1, 2, 3})
	f.Add([]byte{3, 3, 3, 0, 0, 1, 1, 2, 2, 9, 9, 9})
	f.Add([]byte{2, 0, 2, 0, 2, 0, 1, 3, 1, 3})
	f.Add([]byte{7, 6, 5, 4, 3, 2, 1, 0, 255, 128, 64, 32})
	// Cross-core retag while the reader is mid-translation: alternate
	// BAR-call retags (op 0) with owner stores that trap the page back
	// (op 1) so ownership ping-pongs every step.
	f.Add([]byte{0, 1, 0, 1, 0, 1, 0, 1, 0, 1, 0, 1, 0, 1, 0, 1})
	// Restart-during-read: warm restarts of BAR (op 4) interleaved with
	// retags and loads, so page reclaim + generation bumps race the
	// reader's lock-free lookups.
	f.Add([]byte{4, 0, 4, 1, 4, 3, 4, 0, 4, 2, 4, 1, 4, 3})
	f.Fuzz(func(t *testing.T, data []byte) {
		if len(data) == 0 {
			t.Skip()
		}
		ts := bootPair(t, ModeFull)
		m := ts.m
		m.EnableSMP(2)
		m.EnableLockCheck()
		m.EnableContainment(DefaultRestartPolicy())
		reader := newWorker(m, 1)
		barID := ts.cubs["BAR"].ID

		const pages = 2
		var addrs [pages]vm.Addr
		for i := range addrs {
			addrs[i] = ts.heapIn(t, "FOO", 64)
		}

		var wg sync.WaitGroup
		stop := make(chan struct{})
		var last [pages]byte

		wg.Add(1)
		go func() { // writer, core 0
			defer wg.Done()
			defer close(stop)
			e := workerEnterFOO(ts)
			defer leaveOn(ts, e)
			barH := m.MustResolve(ts.cubs["FOO"].ID, "BAR", "bar")
			var wids [pages]WID
			for i := range addrs {
				wids[i] = e.WindowInit()
				e.WindowAdd(wids[i], addrs[i], 64)
				e.WindowOpen(wids[i], barID)
			}
			for i, b := range data {
				p := i % pages
				switch b % 5 {
				case 0: // BAR stores 0xAA at offset 0: retag to BAR + shootdown
					barH.Call(e, uint64(addrs[p]), 0)
					last[p] = 0xAA
				case 1: // owner store traps the page back: retag + shootdown
					e.StoreByte(addrs[p], b)
					last[p] = b
				case 2: // window churn around a store
					e.WindowClose(wids[p], barID)
					e.WindowOpen(wids[p], barID)
					e.StoreByte(addrs[p], b)
					last[p] = b
				case 4: // warm restart of BAR: reclaims its pages and bumps
					// the restart generation while core 1 keeps reading.
					m.lockGlobal(e.T)
					m.sup.restart(e.T, ts.cubs["BAR"])
					m.unlockGlobal(e.T)
				default: // plain owner read keeps the page hot
					_ = e.LoadByte(addrs[p])
				}
			}
		}()

		wg.Add(1)
		go func() { // reader, core 1 (monitor privileges: always authorised)
			defer wg.Done()
			for {
				select {
				case <-stop:
					return
				default:
				}
				for p := 0; p < pages; p++ {
					// Offset 32 is never stored to: the writer and BAR both
					// write offset 0 only, so the bytes the two cores touch
					// are disjoint and any nonzero read means the TLB served
					// a dangling translation into a reclaimed frame.
					if v := reader.LoadByte(addrs[p].Add(32)); v != 0 {
						panic("stale TLB grant: read a byte no store ever wrote")
					}
				}
			}
		}()
		wg.Wait()

		// Surviving translations must still be live: same epoch implies the
		// cached page is the address space's current page for that pn.
		for _, th := range []*Thread{ts.env.T, reader.T} {
			for s := range th.tlb {
				e := th.tlb[s].Load()
				if e == nil || e.epoch != m.AS.Epoch() {
					continue
				}
				if live := m.AS.Page(vm.PageAddr(e.pn)); live != e.p {
					t.Fatalf("TLB slot %d of thread %d holds a dangling translation for pn %d",
						s, th.id, e.pn)
				}
			}
		}
		// The join orders these reads after every write.
		for p := 0; p < pages; p++ {
			if got := reader.LoadByte(addrs[p]); got != last[p] {
				t.Fatalf("final read of page %d = %#x, want last write %#x", p, got, last[p])
			}
		}
	})
}

// workerEnterFOO switches the boot thread into FOO under the lock and
// returns its env (the boot thread sits on core 0).
func workerEnterFOO(ts *testSystem) *Env {
	enterOn(ts, ts.env, "FOO")
	return ts.env
}
