// Package cubicle implements the paper's primary contribution: the trusted
// CubicleOS runtime. It provides the three core abstractions of §3 —
// cubicles (spatial memory isolation), windows (user-managed temporal
// memory isolation) and cross-cubicle calls (control-flow integrity) — on
// top of the simulated MPK hardware, together with the four trusted
// components of §4: the component builder, the cross-cubicle call
// trampolines, the memory monitor, and the cubicle loader.
package cubicle

import (
	"fmt"

	"cubicleos/internal/mpk"
	"cubicleos/internal/vm"
)

// ID identifies a cubicle. The monitor is cubicle 0; all cubicle IDs are
// known at link time (§5.3 step ❹), which makes the window ACL bitmask
// check O(1).
type ID int

// MonitorID is the cubicle ID of the trusted memory monitor. The monitor
// executes with access to all keys on the system (§5.3).
const MonitorID ID = 0

// MaxCubicles bounds the number of cubicles so that window ACLs fit in one
// 64-bit bitmask, fixed at deployment time (§5.3).
const MaxCubicles = 64

// Kind classifies a cubicle.
type Kind uint8

const (
	// KindIsolated is a normal, mutually-isolated cubicle with its own
	// MPK key, stacks, heap and window tables.
	KindIsolated Kind = iota
	// KindShared is a shared cubicle (§3 ❹) such as LIBC: little state,
	// frequently used. Its static data is shared among all cubicles and
	// calls into it never involve the runtime TCB — its code executes
	// with the privileges, stack and heap of the calling cubicle.
	KindShared
	// KindTrusted marks trusted runtime cubicles (the monitor itself and
	// trampoline code pages).
	KindTrusted
)

func (k Kind) String() string {
	switch k {
	case KindIsolated:
		return "isolated"
	case KindShared:
		return "shared"
	case KindTrusted:
		return "trusted"
	}
	return fmt.Sprintf("Kind(%d)", uint8(k))
}

// windowClass narrows the monitor's linear window search: each cubicle
// keeps separate window-descriptor lists for global, stack and heap data
// (§5.3), selected by the faulting page's type.
type windowClass uint8

const (
	classGlobal windowClass = iota
	classStack
	classHeap
	numWindowClasses
	classNone windowClass = 0xFF
)

// classOf maps a page type to its window-descriptor class. Code pages are
// never windowed.
func classOf(t vm.PageType) windowClass {
	switch t {
	case vm.PageGlobal:
		return classGlobal
	case vm.PageStack:
		return classStack
	case vm.PageHeap:
		return classHeap
	}
	return classNone
}

// Cubicle is one isolation compartment: the unit of spatial memory
// isolation. It owns code, data, heap and stack pages, all tagged with its
// MPK key, plus its window-descriptor arrays.
type Cubicle struct {
	ID   ID
	Name string
	Kind Kind
	Key  mpk.Key

	// windows holds the cubicle's window descriptors, indexed by window
	// ID. Destroyed windows leave nil holes so IDs stay stable.
	windows []*Window
	// search lists window indices per class so the trap handler's linear
	// search only visits descriptors that can match the faulting page.
	search [numWindowClasses][]int

	// heap is the cubicle's private memory sub-allocator (§4: "each
	// isolated cubicle has its own memory sub-allocator").
	heap *subAllocator

	// exports maps symbol name to the trampoline (or direct function for
	// shared cubicles) registered by the loader.
	exports map[string]*Trampoline

	// components lists the component names fused into this cubicle (more
	// than one when a deployment groups components, e.g. CubicleOS-3).
	components []string

	// Supervision state. Without a supervisor these stay at their zero
	// values (Healthy, no restarts).
	health       Health
	restarts     uint64   // lifetime restart count
	lastFault    error    // cause of the most recent contained fault
	consecFaults int      // contained faults since the last healthy return
	restartAt    uint64   // cycle at which a quarantined cubicle may restart
	restartLog   []uint64 // cycles of recent restarts, pruned to the policy window
}

// HasComponent reports whether the named component was loaded into this
// cubicle.
func (c *Cubicle) HasComponent(name string) bool {
	for _, n := range c.components {
		if n == name {
			return true
		}
	}
	return false
}

// Components returns the names of the components fused into the cubicle.
func (c *Cubicle) Components() []string {
	out := make([]string, len(c.components))
	copy(out, c.components)
	return out
}

// Exports returns the names of the cubicle's exported entry points.
func (c *Cubicle) Exports() []string {
	out := make([]string, 0, len(c.exports))
	for name := range c.exports {
		out = append(out, name)
	}
	return out
}

// Health returns the cubicle's supervision state.
func (c *Cubicle) Health() Health { return c.health }

// Restarts returns how many times the supervisor restarted the cubicle.
func (c *Cubicle) Restarts() uint64 { return c.restarts }

// LastFault returns the cause of the cubicle's most recent contained
// fault, or nil if it never faulted.
func (c *Cubicle) LastFault() error { return c.lastFault }
