// Package cubicle implements the paper's primary contribution: the trusted
// CubicleOS runtime. It provides the three core abstractions of §3 —
// cubicles (spatial memory isolation), windows (user-managed temporal
// memory isolation) and cross-cubicle calls (control-flow integrity) — on
// top of the simulated MPK hardware, together with the four trusted
// components of §4: the component builder, the cross-cubicle call
// trampolines, the memory monitor, and the cubicle loader.
package cubicle

import (
	"fmt"
	"sync"
	"sync/atomic"

	"cubicleos/internal/mpk"
	"cubicleos/internal/vm"
)

// ID identifies a cubicle. The monitor is cubicle 0; all cubicle IDs are
// known at link time (§5.3 step ❹), which makes the window ACL bitmask
// check O(1).
type ID int

// MonitorID is the cubicle ID of the trusted memory monitor. The monitor
// executes with access to all keys on the system (§5.3).
const MonitorID ID = 0

// MaxCubicles bounds the number of cubicles so that window ACLs fit in one
// 64-bit bitmask, fixed at deployment time (§5.3).
const MaxCubicles = 64

// Kind classifies a cubicle.
type Kind uint8

const (
	// KindIsolated is a normal, mutually-isolated cubicle with its own
	// MPK key, stacks, heap and window tables.
	KindIsolated Kind = iota
	// KindShared is a shared cubicle (§3 ❹) such as LIBC: little state,
	// frequently used. Its static data is shared among all cubicles and
	// calls into it never involve the runtime TCB — its code executes
	// with the privileges, stack and heap of the calling cubicle.
	KindShared
	// KindTrusted marks trusted runtime cubicles (the monitor itself and
	// trampoline code pages).
	KindTrusted
)

func (k Kind) String() string {
	switch k {
	case KindIsolated:
		return "isolated"
	case KindShared:
		return "shared"
	case KindTrusted:
		return "trusted"
	}
	return fmt.Sprintf("Kind(%d)", uint8(k))
}

// windowClass narrows the monitor's linear window search: each cubicle
// keeps separate window-descriptor lists for global, stack and heap data
// (§5.3), selected by the faulting page's type.
type windowClass uint8

const (
	classGlobal windowClass = iota
	classStack
	classHeap
	numWindowClasses
	classNone windowClass = 0xFF
)

// classOf maps a page type to its window-descriptor class. Code pages are
// never windowed.
func classOf(t vm.PageType) windowClass {
	switch t {
	case vm.PageGlobal:
		return classGlobal
	case vm.PageStack:
		return classStack
	case vm.PageHeap:
		return classHeap
	}
	return classNone
}

// Cubicle is one isolation compartment: the unit of spatial memory
// isolation. It owns code, data, heap and stack pages, all tagged with its
// MPK key, plus its window-descriptor arrays.
type Cubicle struct {
	ID   ID
	Name string
	Kind Kind
	Key  mpk.Key

	// mu is the cubicle's inner lock in the hierarchy of smp.go: it guards
	// cubicle-local mutable state (the heap sub-allocator's free lists and
	// the window descriptor slots) against concurrent parallel workers.
	// Order: the global monitor lock, if needed, is taken BEFORE mu, and
	// multiple cubicle locks are taken in ascending ID order. Outside
	// parallel mode the lock helpers never touch it.
	mu sync.Mutex

	// unhealthy mirrors health != Healthy as one atomic bit so the crossing
	// fast path can admit calls into a healthy cubicle without any lock.
	// The supervisor flips it under the global lock exactly when health
	// changes; the zero value (false) matches the Healthy boot state.
	unhealthy atomic.Bool

	// active counts crossings currently executing inside the cubicle,
	// maintained by parallel threads in pushFrame/popFrame. Restart and
	// checkpoint quiescence checks read it instead of scanning other
	// workers' live frame slices.
	active atomic.Int64

	// restarting is the supervisor's half of the Dekker pair with active:
	// it is published before restart reads the active counter, and a
	// parallel crossing re-checks it after incrementing active, so at
	// least one side always observes the other. Crossings that lose the
	// race back off until the reclaim finishes.
	restarting atomic.Bool

	// pkruCache caches the cubicle's computed PKRU value for parallel-mode
	// crossings: the high 32 bits hold the monitor's pkruEpoch at fill
	// time, the low 32 the PKRU bits. Any event that changes key
	// assignments or pinned grants bumps the epoch, invalidating every
	// cubicle's cache at once. Zero means empty (the epoch starts at 1).
	pkruCache atomic.Uint64

	// windows holds the cubicle's window descriptors, indexed by window
	// ID. Destroyed windows leave nil holes so IDs stay stable.
	windows []*Window
	// search lists window indices per class so the trap handler's linear
	// search only visits descriptors that can match the faulting page.
	search [numWindowClasses][]int

	// heap is the cubicle's private memory sub-allocator (§4: "each
	// isolated cubicle has its own memory sub-allocator").
	heap *subAllocator

	// exports maps symbol name to the trampoline (or direct function for
	// shared cubicles) registered by the loader.
	exports map[string]*Trampoline

	// components lists the component names fused into this cubicle (more
	// than one when a deployment groups components, e.g. CubicleOS-3).
	components []string

	// gen is the cubicle's restart generation. The supervisor bumps it when
	// it reclaims the cubicle's pages, and stackFor re-validates cached
	// per-thread stacks against it — restart cannot reach into a parallel
	// worker's private stacks map, so stale entries invalidate lazily.
	gen atomic.Uint64

	// Supervision state. Without a supervisor these stay at their zero
	// values (Healthy, no restarts).
	health    Health
	restarts  uint64 // lifetime restart count
	lastFault error  // cause of the most recent contained fault
	// consecFaults counts contained faults since the last healthy return.
	// It is atomic because the supervisor's healthy-return path reads and
	// clears it without taking the global lock.
	consecFaults atomic.Int32
	restartAt    uint64   // cycle at which a quarantined cubicle may restart
	restartLog   []uint64 // cycles of recent restarts, pruned to the policy window
}

// HasComponent reports whether the named component was loaded into this
// cubicle.
func (c *Cubicle) HasComponent(name string) bool {
	for _, n := range c.components {
		if n == name {
			return true
		}
	}
	return false
}

// Components returns the names of the components fused into the cubicle.
func (c *Cubicle) Components() []string {
	out := make([]string, len(c.components))
	copy(out, c.components)
	return out
}

// Exports returns the names of the cubicle's exported entry points.
func (c *Cubicle) Exports() []string {
	out := make([]string, 0, len(c.exports))
	for name := range c.exports {
		out = append(out, name)
	}
	return out
}

// Health returns the cubicle's supervision state.
func (c *Cubicle) Health() Health { return c.health }

// Restarts returns how many times the supervisor restarted the cubicle.
func (c *Cubicle) Restarts() uint64 { return c.restarts }

// LastFault returns the cause of the cubicle's most recent contained
// fault, or nil if it never faulted.
func (c *Cubicle) LastFault() error { return c.lastFault }
