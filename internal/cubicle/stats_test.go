package cubicle

import (
	"testing"
	"time"
)

func TestSortedEdgesTieBreaking(t *testing.T) {
	s := newStats()
	// Two pairs tied on count plus one dominant edge; ties must order by
	// From, then To, so reports are stable run to run.
	s.Calls[Edge{From: 5, To: 1}] = 3
	s.Calls[Edge{From: 2, To: 7}] = 3
	s.Calls[Edge{From: 2, To: 4}] = 3
	s.Calls[Edge{From: 9, To: 9}] = 100
	got := s.SortedEdges()
	want := []EdgeCount{
		{From: 9, To: 9, Count: 100},
		{From: 2, To: 4, Count: 3},
		{From: 2, To: 7, Count: 3},
		{From: 5, To: 1, Count: 3},
	}
	if len(got) != len(want) {
		t.Fatalf("got %d edges, want %d", len(got), len(want))
	}
	for i := range want {
		if got[i] != want[i] {
			t.Errorf("edge %d = %+v, want %+v", i, got[i], want[i])
		}
	}
}

func TestStatsResetGivesFreshMap(t *testing.T) {
	s := newStats()
	s.Calls[Edge{From: 1, To: 2}] = 9
	s.CallsTotal = 9
	s.Faults = 4
	old := s.Calls

	s.Reset()
	if s.CallsTotal != 0 || s.Faults != 0 {
		t.Fatalf("scalar counters survived reset: %+v", s)
	}
	if len(s.Calls) != 0 {
		t.Fatalf("edge map survived reset: %v", s.Calls)
	}
	// The reset map must not alias the old one: writes through a stale
	// reference (e.g. a report held across a reset) must not reappear.
	old[Edge{From: 3, To: 4}] = 1
	if len(s.Calls) != 0 {
		t.Fatal("Reset left the stats aliasing the old Calls map")
	}
}

// TestTracingDisabledAddsNoAllocations is the benchmark guard in test
// form: with no tracer attached, the cross-cubicle call path must not
// allocate, so ModeFull measurements are unaffected by the existence of
// the observability layer.
func TestTracingDisabledAddsNoAllocations(t *testing.T) {
	ts := bootPair(t, ModeFull)
	h := ts.m.MustResolve(ts.cubs["BAR"].ID, "FOO", "foo_noop")
	ts.enter(t, "BAR", func(e *Env) {
		// Warm up: first calls populate the per-edge stats map and any
		// lazily-built thread state.
		for i := 0; i < 16; i++ {
			h.Call(e)
		}
		allocs := testing.AllocsPerRun(200, func() { h.Call(e) })
		// Generous margin: the call path itself is allocation-free; allow
		// a stray allocation for runtime noise but fail on a per-call
		// event or label allocation sneaking in.
		if allocs > 0.5 {
			t.Fatalf("tracing-disabled call allocates %.2f objects/op, want 0", allocs)
		}
	})
}

// benchCall measures one FOO←BAR noop cross-cubicle call in ModeFull.
func benchCall(b *testing.B, traced bool) {
	var tt testing.T
	ts := bootPair(&tt, ModeFull)
	if tt.Failed() {
		b.Fatal("boot failed")
	}
	if traced {
		ts.m.EnableTracing(1 << 12)
	}
	h := ts.m.MustResolve(ts.cubs["BAR"].ID, "FOO", "foo_noop")
	cub := ts.cubs["BAR"]
	e := ts.env
	e.T.pushFrame(cub.ID, true)
	defer e.T.popFrame()
	ts.m.wrpkru(e.T, ts.m.pkruFor(cub.ID))
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		h.Call(e)
	}
}

func BenchmarkCallTracingDisabled(b *testing.B) { benchCall(b, false) }
func BenchmarkCallTracingEnabled(b *testing.B)  { benchCall(b, true) }

// BenchmarkCallTracingPaired measures the tracing-overhead ratio with
// traced and untraced batches interleaved at ~10 µs granularity, so host
// noise (CPU contention on a shared machine) hits both sides equally and
// cancels in the quotient. The "ratio" metric is what
// scripts/bench.sh -assert gates; the two plain benchmarks above report
// the absolute ns/op.
func BenchmarkCallTracingPaired(b *testing.B) {
	var tt testing.T
	boot := func(traced bool) (Handle, *Env) {
		ts := bootPair(&tt, ModeFull)
		if tt.Failed() {
			b.Fatal("boot failed")
		}
		if traced {
			ts.m.EnableTracing(1 << 12)
		}
		h := ts.m.MustResolve(ts.cubs["BAR"].ID, "FOO", "foo_noop")
		e := ts.env
		e.T.pushFrame(ts.cubs["BAR"].ID, true)
		ts.m.wrpkru(e.T, ts.m.pkruFor(ts.cubs["BAR"].ID))
		return h, e
	}
	hDis, eDis := boot(false)
	hEn, eEn := boot(true)

	const batch = 512
	var tDis, tEn time.Duration
	b.ResetTimer()
	for n := 0; n < b.N; n += batch {
		k := batch
		if rem := b.N - n; rem < k {
			k = rem
		}
		t0 := time.Now()
		for i := 0; i < k; i++ {
			hDis.Call(eDis)
		}
		t1 := time.Now()
		for i := 0; i < k; i++ {
			hEn.Call(eEn)
		}
		tDis += t1.Sub(t0)
		tEn += time.Since(t1)
	}
	b.StopTimer()
	if tDis > 0 {
		b.ReportMetric(float64(tEn)/float64(tDis), "ratio")
	}
}
