package cubicle

import (
	"testing"

	"cubicleos/internal/cycles"
	"cubicleos/internal/vm"
)

// testSystem is the booted FOO/BAR/LIBC world of the paper's running
// examples (Figures 1, 2 and 4), used across the core tests.
type testSystem struct {
	m    *Monitor
	si   *SystemImage
	cubs map[string]*Cubicle
	env  *Env

	// barBuf receives the pointer argument bar() was last called with.
	barLastPtr vm.Addr
	barLastIdx uint64
}

// bootPair boots a system with two isolated components FOO and BAR and a
// shared LIBC, in the given mode.
//
//	BAR exports "bar(ptr, idx)" which stores 0xAA at ptr[idx] (Figure 1).
//	LIBC exports "memcpy(dst, src, n)".
func bootPair(t testing.TB, mode Mode) *testSystem {
	t.Helper()
	ts := &testSystem{}
	b := NewBuilder()
	b.MustAdd(&Component{Name: "FOO", Kind: KindIsolated, Exports: []ExportDecl{
		{Name: "foo_noop", Fn: func(e *Env, args []uint64) []uint64 { return nil }},
	}})
	b.MustAdd(&Component{Name: "BAR", Kind: KindIsolated, Exports: []ExportDecl{
		{Name: "bar", RegArgs: 2, Fn: func(e *Env, args []uint64) []uint64 {
			ts.barLastPtr = vm.Addr(args[0])
			ts.barLastIdx = args[1]
			e.StoreByte(vm.Addr(args[0]).Add(args[1]), 0xAA)
			return []uint64{1}
		}},
		{Name: "bar_read", RegArgs: 2, Fn: func(e *Env, args []uint64) []uint64 {
			return []uint64{uint64(e.LoadByte(vm.Addr(args[0]).Add(args[1])))}
		}},
		{Name: "bar_alloc", RegArgs: 1, Fn: func(e *Env, args []uint64) []uint64 {
			return []uint64{uint64(e.HeapAlloc(args[0]))}
		}},
	}})
	b.MustAdd(&Component{Name: "BAZ", Kind: KindIsolated, Exports: []ExportDecl{
		{Name: "baz_noop", Fn: func(e *Env, args []uint64) []uint64 { return nil }},
	}})
	b.MustAdd(&Component{Name: "LIBC", Kind: KindShared, Exports: []ExportDecl{
		{Name: "memcpy", RegArgs: 3, Fn: func(e *Env, args []uint64) []uint64 {
			e.Memcpy(vm.Addr(args[0]), vm.Addr(args[1]), args[2])
			return []uint64{args[0]}
		}},
	}})
	si, err := b.Build()
	if err != nil {
		t.Fatal(err)
	}
	m := NewMonitor(mode, cycles.DefaultCosts())
	cubs, err := NewLoader(m).LoadSystem(si, nil)
	if err != nil {
		t.Fatal(err)
	}
	ts.m, ts.si, ts.cubs = m, si, cubs
	ts.env = m.NewEnv(m.NewThread())
	return ts
}

// enter runs fn with the thread switched into the named cubicle via a
// synthetic entry trampoline, the way application main functions are
// entered at boot.
func (ts *testSystem) enter(t testing.TB, name string, fn func(e *Env)) {
	t.Helper()
	cub := ts.cubs[name]
	if cub == nil {
		cub = ts.m.CubicleByName(name)
	}
	if cub == nil {
		t.Fatalf("no cubicle %q", name)
	}
	ts.env.T.pushFrame(cub.ID, true)
	defer ts.env.T.popFrame()
	if ts.m.Mode.MPKEnabled() {
		ts.m.wrpkru(ts.env.T, ts.m.pkruFor(cub.ID))
	}
	fn(ts.env)
}

// mustFault asserts that fn raises an isolation fault and returns it.
func mustFault(t testing.TB, fn func()) error {
	t.Helper()
	err := Catch(fn)
	if err == nil {
		t.Fatal("expected an isolation fault, got none")
	}
	return err
}

// heapIn allocates n bytes on the named cubicle's heap and returns the
// address (running as that cubicle).
func (ts *testSystem) heapIn(t testing.TB, name string, n uint64) vm.Addr {
	t.Helper()
	var addr vm.Addr
	ts.enter(t, name, func(e *Env) { addr = e.HeapAlloc(n) })
	return addr
}
