package cubicle

import (
	"math/rand"
	"testing"

	"cubicleos/internal/vm"
)

func TestHeapAllocOwnership(t *testing.T) {
	ts := bootPair(t, ModeFull)
	addr := ts.heapIn(t, "FOO", 100)
	p := ts.m.AS.Page(addr)
	if p.Owner != int(ts.cubs["FOO"].ID) {
		t.Errorf("heap page owner = %d, want FOO", p.Owner)
	}
	if p.Type != vm.PageHeap {
		t.Errorf("heap page type = %v", p.Type)
	}
	if p.Key() != uint8(ts.cubs["FOO"].Key) {
		t.Errorf("heap page key = %d, want %d", p.Key(), ts.cubs["FOO"].Key)
	}
}

func TestHeapAllocAlignment(t *testing.T) {
	ts := bootPair(t, ModeFull)
	ts.enter(t, "FOO", func(e *Env) {
		small := e.HeapAlloc(24)
		if uint64(small)%16 != 0 {
			t.Errorf("small allocation not 16-aligned: %#x", uint64(small))
		}
		big := e.HeapAlloc(vm.PageSize)
		if big.PageOff() != 0 {
			t.Errorf("page-sized allocation not page-aligned: %#x", uint64(big))
		}
	})
}

func TestHeapFreeAndReuse(t *testing.T) {
	ts := bootPair(t, ModeFull)
	ts.enter(t, "FOO", func(e *Env) {
		a := e.HeapAlloc(64)
		e.HeapFree(a)
		b := e.HeapAlloc(64)
		if a != b {
			t.Errorf("freed block not reused: %#x vs %#x", uint64(a), uint64(b))
		}
	})
}

func TestHeapDoubleFreeFaults(t *testing.T) {
	ts := bootPair(t, ModeFull)
	ts.enter(t, "FOO", func(e *Env) {
		a := e.HeapAlloc(64)
		e.HeapFree(a)
		err := mustFault(t, func() { e.HeapFree(a) })
		if _, ok := err.(*APIError); !ok {
			t.Errorf("double free: got %T", err)
		}
		err = mustFault(t, func() { e.HeapFree(vm.Addr(0x123456)) })
		if _, ok := err.(*APIError); !ok {
			t.Errorf("wild free: got %T", err)
		}
	})
}

func TestHeapCoalescing(t *testing.T) {
	ts := bootPair(t, ModeFull)
	ts.enter(t, "FOO", func(e *Env) {
		a := e.HeapAlloc(1024)
		b := e.HeapAlloc(1024)
		c := e.HeapAlloc(1024)
		_ = c
		e.HeapFree(a)
		e.HeapFree(b) // must coalesce with a
		d := e.HeapAlloc(2048)
		if d != a {
			t.Errorf("coalesced block not reused: got %#x, want %#x", uint64(d), uint64(a))
		}
	})
}

func TestHeapZeroSize(t *testing.T) {
	ts := bootPair(t, ModeFull)
	ts.enter(t, "FOO", func(e *Env) {
		a := e.HeapAlloc(0)
		if a == 0 {
			t.Error("zero-size allocation returned null")
		}
		e.HeapFree(a)
	})
}

func TestHeapIsolatedBetweenCubicles(t *testing.T) {
	ts := bootPair(t, ModeFull)
	fooBuf := ts.heapIn(t, "FOO", 128)
	ts.enter(t, "BAR", func(e *Env) {
		// BAR freeing FOO's allocation: BAR's allocator has no record.
		err := mustFault(t, func() { e.HeapFree(fooBuf) })
		if _, ok := err.(*APIError); !ok {
			t.Errorf("cross-cubicle free: got %T", err)
		}
	})
}

// TestHeapAllocProperty exercises random alloc/free sequences: blocks
// never overlap, content written is preserved, accounting balances.
func TestHeapAllocProperty(t *testing.T) {
	ts := bootPair(t, ModeFull)
	rng := rand.New(rand.NewSource(7))
	type blk struct {
		addr vm.Addr
		size uint64
		tag  byte
	}
	var live []blk
	ts.enter(t, "FOO", func(e *Env) {
		for i := 0; i < 500; i++ {
			if len(live) > 0 && rng.Intn(3) == 0 {
				j := rng.Intn(len(live))
				b := live[j]
				got := e.ReadBytes(b.addr, b.size)
				for k, c := range got {
					if c != b.tag {
						t.Fatalf("block %#x corrupted at %d", uint64(b.addr), k)
					}
				}
				e.HeapFree(b.addr)
				live = append(live[:j], live[j+1:]...)
				continue
			}
			size := uint64(rng.Intn(3000) + 1)
			addr := e.HeapAlloc(size)
			tag := byte(i)
			e.Memset(addr, tag, size)
			for _, b := range live {
				if uint64(addr) < uint64(b.addr)+b.size && uint64(b.addr) < uint64(addr)+size {
					t.Fatalf("overlap: new [%#x,%d) with live [%#x,%d)", uint64(addr), size, uint64(b.addr), b.size)
				}
			}
			live = append(live, blk{addr, size, tag})
		}
		for _, b := range live {
			e.HeapFree(b.addr)
		}
	})
	if got := ts.m.LiveBytes(ts.cubs["FOO"].ID); got != 0 {
		t.Errorf("live bytes after freeing everything = %d", got)
	}
	if ts.m.ArenaBytes(ts.cubs["FOO"].ID) == 0 {
		t.Error("arena accounting empty")
	}
}

// TestTagVirtualisation boots more isolated cubicles than there are MPK
// keys and checks the system still isolates correctly, recycling keys
// (§8 / libmpk-style virtualisation).
func TestTagVirtualisation(t *testing.T) {
	b := NewBuilder()
	const n = 20 // > 14 isolated keys
	for i := 0; i < n; i++ {
		name := string(rune('A'+i/10)) + string(rune('0'+i%10))
		b.MustAdd(&Component{Name: name, Kind: KindIsolated, Exports: []ExportDecl{
			{Name: "touch_" + name, RegArgs: 1, Fn: func(e *Env, args []uint64) []uint64 {
				buf := e.HeapAlloc(32)
				e.Memset(buf, byte(args[0]), 32)
				return []uint64{uint64(e.LoadByte(buf))}
			}},
		}})
	}
	si, err := b.Build()
	if err != nil {
		t.Fatal(err)
	}
	m := NewMonitor(ModeFull, testCosts())
	cubs, err := NewLoader(m).LoadSystem(si, nil)
	if err != nil {
		t.Fatal(err)
	}
	if len(cubs) != n {
		t.Fatalf("loaded %d cubicles", len(cubs))
	}
	env := m.NewEnv(m.NewThread())
	// Round-robin calls across all cubicles force key recycling.
	for round := 0; round < 3; round++ {
		for i := 0; i < n; i++ {
			name := string(rune('A'+i/10)) + string(rune('0'+i%10))
			env.T.pushFrame(MonitorID, true)
			h := m.MustResolve(MonitorID, name, "touch_"+name)
			rets := h.Call(env, uint64(i+round))
			if rets[0] != uint64(byte(i+round)) {
				t.Fatalf("cubicle %s round %d: got %d", name, round, rets[0])
			}
			env.T.popFrame()
		}
	}
	if m.Stats.KeyEvictions == 0 {
		t.Error("no key evictions despite 20 isolated cubicles")
	}
	// Isolation still holds across virtualised keys.
	bufA := vm.Addr(0)
	env.T.pushFrame(cubs["A0"].ID, true)
	m.wrpkru(env.T, m.pkruFor(cubs["A0"].ID))
	bufA = env.HeapAlloc(16)
	env.T.popFrame()
	env.T.pushFrame(cubs["B9"].ID, true)
	m.wrpkru(env.T, m.pkruFor(cubs["B9"].ID))
	if err := Catch(func() { env.LoadByte(bufA) }); err == nil {
		t.Error("cross-cubicle read allowed under tag virtualisation")
	}
	env.T.popFrame()
}

func TestMaxCubiclesEnforced(t *testing.T) {
	b := NewBuilder()
	noop := func(e *Env, a []uint64) []uint64 { return nil }
	for i := 0; i < MaxCubicles; i++ {
		b.MustAdd(&Component{Name: string(rune('a'+i/26)) + string(rune('a'+i%26)) + "x", Kind: KindIsolated,
			Exports: []ExportDecl{{Name: "f" + string(rune('a'+i/26)) + string(rune('a'+i%26)), Fn: noop}}})
	}
	si, err := b.Build()
	if err != nil {
		t.Fatal(err)
	}
	m := NewMonitor(ModeUnikraft, testCosts())
	if _, err := NewLoader(m).LoadSystem(si, nil); err == nil {
		t.Fatal("exceeding MaxCubicles accepted (monitor occupies slot 0)")
	}
}
