package cubicle

import (
	"sort"

	"cubicleos/internal/vm"
)

// RestartPolicy parameterises the supervisor. All durations are virtual
// cycles; on SMP machines health timestamps use global virtual time as
// observed at monitor entry (smpNow), so supervision decisions are
// consistent across cores and deterministic for a given workload.
type RestartPolicy struct {
	// MaxRestarts is how many restarts a cubicle may consume within
	// RestartWindow before it is declared Dead (0 = unlimited).
	MaxRestarts int
	// RestartWindow is the sliding virtual-time window the restart budget
	// applies to.
	RestartWindow uint64
	// BackoffBase is the quarantine backoff after a first fault; each
	// consecutive fault multiplies it by BackoffFactor up to BackoffMax.
	BackoffBase   uint64
	BackoffFactor uint64
	BackoffMax    uint64
	// RestartCost is charged to the virtual clock per restart: tearing
	// down and re-mapping a cubicle's heap, stacks and windows is not free.
	RestartCost uint64
	// CrossingBudget, when non-zero, is the watchdog's per-crossing cycle
	// budget: a callee that consumes more virtual cycles than this inside
	// one crossing raises a BudgetFault.
	CrossingBudget uint64
}

// DefaultRestartPolicy returns a policy tuned for the siege workload:
// short backoffs relative to a request (~6M cycles), a one-virtual-second
// restart window, and the watchdog disabled.
func DefaultRestartPolicy() RestartPolicy {
	return RestartPolicy{
		MaxRestarts:    8,
		RestartWindow:  2_200_000_000, // one virtual second at 2.2 GHz
		BackoffBase:    100_000,
		BackoffFactor:  2,
		BackoffMax:     50_000_000,
		RestartCost:    1_000_000,
		CrossingBudget: 0,
	}
}

// undoKind says how to undo one journalled window-state change.
type undoKind uint8

const (
	undoDestroyWindow undoKind = iota // window was created: destroy it
	undoCloseWindow                   // window was opened for grantee: close it
	undoUnpinWindow                   // window was pinned: release its key
)

// undoEntry is one entry of a thread's containment journal: a window-state
// change made since the innermost supervised crossing, to be rolled back
// if the crossing faults. Entries are recorded only while a supervisor is
// attached.
type undoEntry struct {
	kind    undoKind
	owner   ID
	wid     WID
	grantee ID
}

// Supervisor is the per-monitor fault-domain manager: it contains faults
// at crossings, quarantines and restarts faulting cubicles, and enforces
// the watchdog budget. Attach one with Monitor.EnableContainment.
type Supervisor struct {
	m      *Monitor
	policy RestartPolicy

	// deaths counts cubicles permanently disabled after exhausting their
	// restart budget.
	deaths uint64
	// containedByClass counts contained faults per fault class label.
	containedByClass map[string]uint64
}

// EnableContainment attaches a supervisor with the given restart policy.
// Like tracing, containment is opt-in: without it the monitor keeps the
// seed behaviour of unwinding every fault to the outermost Catch.
func (m *Monitor) EnableContainment(policy RestartPolicy) *Supervisor {
	s := &Supervisor{m: m, policy: policy, containedByClass: make(map[string]uint64)}
	m.sup = s
	return s
}

// Supervisor returns the attached supervisor, or nil when containment is
// disabled.
func (m *Monitor) Supervisor() *Supervisor { return m.sup }

// Policy returns the supervisor's restart policy.
func (s *Supervisor) Policy() RestartPolicy { return s.policy }

// Deaths returns how many cubicles were declared Dead.
func (s *Supervisor) Deaths() uint64 { return s.deaths }

// ContainedByClass returns the contained-fault counts per fault class,
// as stable sorted (class, count) pairs.
func (s *Supervisor) ContainedByClass() []ClassCount {
	out := make([]ClassCount, 0, len(s.containedByClass))
	for cls, n := range s.containedByClass {
		out = append(out, ClassCount{Class: cls, Count: n})
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Class < out[j].Class })
	return out
}

// ClassCount is one row of the per-class contained-fault report.
type ClassCount struct {
	Class string
	Count uint64
}

// admit gates a cross-cubicle call on the callee's health before any call
// accounting happens. Quarantined cubicles whose backoff expired are
// restarted in place; otherwise the call is refused with a fail-fast
// ContainedFault.
func (s *Supervisor) admit(t *Thread, tr *Trampoline) {
	s.watchdog(t) // the caller itself may have overrun its crossing budget
	c := s.m.cubicle(tr.callee)
	// Fast path: one lock-free atomic bit. The supervisor flips the mirror
	// under the global lock exactly when health leaves or re-enters
	// Healthy, so a clear bit admits the call with no shared lock — this
	// is what keeps supervised crossings scalable across cores.
	if !c.unhealthy.Load() {
		return
	}
	m := s.m
	m.lockGlobal(t)
	defer m.unlockGlobal(t)
	switch c.health {
	case Healthy:
		// Lost a race with a concurrent restart that already healed it.
		return
	case Quarantined:
		if m.smpNow() >= c.restartAt && s.restart(t, c) {
			return
		}
		if c.health == Dead { // the refused restart exhausted the budget
			s.refuse(t, tr, ErrDead)
		}
		s.refuse(t, tr, ErrQuarantined)
	case Dead:
		s.refuse(t, tr, ErrDead)
	}
}

// refuse fails a call fast with a ContainedFault before it crosses into
// the unhealthy callee.
// Callers hold the global lock (containedByClass is a shared map).
func (s *Supervisor) refuse(t *Thread, tr *Trampoline, cause error) {
	m := s.m
	m.st(t).ContainedFaults++
	s.containedByClass[faultClass(cause)]++
	if m.trc != nil {
		m.trc.Contained(t.id, int(tr.callee), int(t.cur), faultClass(cause))
	}
	panic(&ContainedFault{Cubicle: tr.callee, Symbol: tr.Symbol(), Cause: cause})
}

// contain is deferred around the callee invocation of every supervised
// crossing, after the frame-restoring popFrame defer (so it runs first,
// while the crossing frame is still live). It recovers isolation faults
// raised by the callee, rolls back the faulted call's window-state
// changes, quarantines the faulting cubicle, and converts the panic into
// a typed ContainedFault delivered to the caller. Foreign panics (plain
// Go bugs) pass through untouched.
func (s *Supervisor) contain(t *Thread, tr *Trampoline) {
	r := recover()
	if r == nil {
		// A healthy return clears the callee's consecutive-fault streak so
		// backoff escalation only tracks back-to-back failures. The streak
		// counter is atomic and the health read is the lock-free mirror, so
		// the (overwhelmingly common) fault-free return takes no lock.
		if c := s.m.cubicle(tr.callee); c.consecFaults.Load() != 0 && !c.unhealthy.Load() {
			c.consecFaults.Store(0)
		}
		return
	}
	m := s.m
	f := &t.frames[len(t.frames)-1]
	jmark := f.jmark
	if cf, ok := r.(*ContainedFault); ok {
		// A deeper supervised crossing already contained this fault.
		// Journal entries recorded during the aborted span are discarded
		// without undoing: they belong to cubicles whose execution was
		// aborted along with the callee, and windows are persistent state
		// those cubicles reconcile on their next entry.
		t.journal = t.journal[:jmark]
		if m.trc != nil {
			m.trc.CallExit(t.id, int(f.caller), int(tr.callee), tr.Symbol())
		}
		panic(cf)
	}
	cause, ok := AsFault(r)
	if !ok {
		panic(r) // not an isolation fault; do not contain Go bugs
	}
	// Quota and deadline faults are transient overload conditions, not
	// component bugs: the crossing is rolled back and the typed error
	// delivered, but the callee stays Healthy — quarantining ALLOC because
	// a client hit its arena cap would turn load shedding into an outage.
	victim := tr.callee
	transient := false
	switch q := cause.(type) {
	case *QuotaFault:
		victim = q.Cubicle // attribute to the cubicle whose quota ran out
		transient = true
	case *DeadlineFault:
		transient = true
	}
	// Rollback mutates window state and quarantine the health ladder —
	// both global-lock territory. No defer: the function ends in a panic,
	// so the unlock is explicit before the fault is re-delivered.
	m.lockGlobal(t)
	s.rollback(t, jmark, tr.callee)
	if !transient {
		s.quarantine(t, victim, cause)
	}
	m.st(t).ContainedFaults++
	s.containedByClass[faultClass(cause)]++
	m.unlockGlobal(t)
	if m.trc != nil {
		m.trc.Contained(t.id, int(victim), int(f.caller), faultClass(cause))
		// Close the call span the aborted crossing left open so B/E events
		// stay balanced and elapsed attribution survives the unwind.
		m.trc.CallExit(t.id, int(f.caller), int(victim), tr.Symbol())
	}
	panic(&ContainedFault{Cubicle: victim, Symbol: tr.Symbol(), Cause: cause})
}

// rollback undoes, newest first, every journalled window-state change the
// faulted crossing made on behalf of the victim cubicle. Changes owned by
// other cubicles within the span are committed state and stay.
func (s *Supervisor) rollback(t *Thread, jmark int, victim ID) {
	m := s.m
	for i := len(t.journal) - 1; i >= jmark; i-- {
		u := t.journal[i]
		if u.owner != victim {
			continue
		}
		cub := m.cubicleIfValid(u.owner)
		if cub == nil || int(u.wid) >= len(cub.windows) || cub.windows[u.wid] == nil {
			continue
		}
		w := cub.windows[u.wid]
		switch u.kind {
		case undoCloseWindow:
			w.Open &^= 1 << uint(u.grantee)
			if w.pinned != noPin {
				m.refreshThreadPKRUs(t)
			}
		case undoUnpinWindow:
			if w.pinned != noPin {
				s.releasePin(w)
			}
		case undoDestroyWindow:
			s.destroyWindow(cub, w)
		}
	}
	t.journal = t.journal[:jmark]
}

// destroyWindow removes a window without going through the chargeable
// untrusted API: the supervisor acts as the monitor here, so no window-op
// cost or event is recorded (retags of pinned pages still are).
func (s *Supervisor) destroyWindow(cub *Cubicle, w *Window) {
	if w.pinned != noPin {
		s.releasePin(w)
	}
	if w.Class != classNone {
		lst := cub.search[w.Class]
		for i, idx := range lst {
			if idx == int(w.ID) {
				cub.search[w.Class] = append(lst[:i], lst[i+1:]...)
				break
			}
		}
	}
	cub.windows[w.ID] = nil
}

// releasePin strips a window's dedicated key, returning its pages to the
// owner's key.
func (s *Supervisor) releasePin(w *Window) {
	m := s.m
	m.retagWindow(nil, w, m.keyFor(w.Owner))
	m.releasePinKey(w.pinned)
	w.pinned = noPin
	for i, pw := range m.pinned {
		if pw == w {
			m.pinned = append(m.pinned[:i], m.pinned[i+1:]...)
			break
		}
	}
	m.refreshThreadPKRUs(nil)
}

// quarantine moves an isolated cubicle into the Quarantined state with an
// exponential backoff on the virtual clock. Shared and trusted cubicles
// are never quarantined: shared code executes as its caller, and a
// trusted-cubicle fault is a runtime bug. Callers hold the global lock.
func (s *Supervisor) quarantine(t *Thread, id ID, cause error) {
	c := s.m.cubicleIfValid(id)
	if c == nil || c.Kind != KindIsolated {
		return
	}
	c.lastFault = cause
	c.consecFaults.Add(1)
	if c.health == Dead {
		return
	}
	backoff := s.backoffFor(int(c.consecFaults.Load()))
	old := c.health
	c.health = Quarantined
	c.unhealthy.Store(true)
	c.restartAt = s.m.smpNow() + backoff
	s.m.st(t).Quarantines++
	if s.m.trc != nil {
		s.m.trc.Quarantine(int(id), backoff)
	}
	s.m.notifyHealth(c, old, Quarantined)
}

// backoffFor computes the quarantine backoff for the n-th consecutive
// fault (n >= 1): BackoffBase * BackoffFactor^(n-1), capped at BackoffMax.
func (s *Supervisor) backoffFor(n int) uint64 {
	b := s.policy.BackoffBase
	if s.policy.BackoffFactor > 1 {
		for i := 1; i < n; i++ {
			if b >= s.policy.BackoffMax/s.policy.BackoffFactor {
				b = s.policy.BackoffMax
				break
			}
			b *= s.policy.BackoffFactor
		}
	}
	if s.policy.BackoffMax > 0 && b > s.policy.BackoffMax {
		b = s.policy.BackoffMax
	}
	return b
}

// restart reinitialises a quarantined cubicle: its restart budget is
// checked against the policy window, its windows are destroyed, its heap
// and stack pages unmapped and the sub-allocator replaced (the loader's
// lazy per-cubicle setup re-runs on next use), and its components'
// OnRestart hooks rebuild their Go-side state. Returns false — leaving
// the cubicle Quarantined or moving it to Dead — when the restart cannot
// or may not happen.
func (s *Supervisor) restart(t *Thread, c *Cubicle) bool {
	m := s.m
	// Never yank state from under a live frame still executing inside the
	// victim (e.g. the victim called out and the callee is re-entering).
	// Parallel workers are accounted by the cubicle's active-crossing
	// counter — their live frame slices must not be scanned from here.
	// The restarting flag must be visible before the active counter is
	// read (Dekker pairing with pushFrame): a crossing racing this check
	// either bumps active in time to abort the restart, or sees the flag
	// and backs off until the reclaim is over.
	c.restarting.Store(true)
	defer c.restarting.Store(false)
	if c.active.Load() != 0 {
		return false
	}
	for _, th := range m.threads {
		if th.parallel {
			continue
		}
		for i := range th.frames {
			if th.frames[i].exec == c.ID {
				return false
			}
		}
	}
	now := m.smpNow()
	keep := c.restartLog[:0]
	for _, ts := range c.restartLog {
		if now-ts < s.policy.RestartWindow {
			keep = append(keep, ts)
		}
	}
	c.restartLog = keep
	if s.policy.MaxRestarts > 0 && len(c.restartLog) >= s.policy.MaxRestarts {
		old := c.health
		c.health = Dead
		c.unhealthy.Store(true)
		s.deaths++
		s.m.notifyHealth(c, old, Dead)
		return false
	}

	// clkOf(nil) keeps the legacy charge target (the monitor clock) in all
	// non-parallel deployments and routes to the lock-protected monitor
	// shadow clock when workers run in parallel.
	m.clkOf(nil).Charge(s.policy.RestartCost)
	// Tear down every window the cubicle owns (releasing pinned keys) and
	// reset the descriptor arrays.
	for _, w := range c.windows {
		if w != nil {
			s.destroyWindow(c, w)
		}
	}
	c.windows = c.windows[:0]
	for cls := range c.search {
		c.search[cls] = nil
	}
	// Release the cubicle's heap and stack pages and give it a fresh
	// sub-allocator; threads re-create their per-cubicle stacks lazily.
	// Parallel workers own their stacks maps, so their stale entries are
	// invalidated by the restart-generation bump instead of deleted here.
	s.reclaimPages(c)
	c.heap = newSubAllocator(m, c.ID)
	c.gen.Add(1)
	for _, th := range m.threads {
		if !th.parallel {
			delete(th.stacks, c.ID)
		}
	}
	// Warm path: restore the last good checkpoint instead of rebuilding
	// from empty. A decode/restore failure tears the partial restore back
	// down, drops the poisoned checkpoint, and falls through to the cold
	// OnRestart rebuild — warm recovery must never make a restart fail
	// that would have succeeded cold.
	warm := false
	failedRestore := uint64(0)
	if ck := m.ckpts[c.ID]; ck != nil {
		if err := m.restoreCheckpoint(c, ck); err == nil {
			warm = true
		} else {
			delete(m.ckpts, c.ID)
			failedRestore = 1
		}
	}
	if !warm {
		// Component re-initialisation hooks registered at load time.
		for _, fn := range m.restartHooks[c.ID] {
			fn()
		}
	}
	old := c.health
	c.health = Healthy
	c.unhealthy.Store(false)
	c.restarts++
	c.restartAt = 0
	c.restartLog = append(c.restartLog, now)
	st := m.st(t)
	st.Restarts++
	if warm {
		st.WarmRestarts++
	} else {
		st.ColdRestarts++
	}
	if m.trc != nil {
		m.trc.Restart(int(c.ID), c.restarts)
		if warm {
			m.trc.WarmRestart(int(c.ID), m.ckpts[c.ID].pages)
		} else {
			m.trc.ColdRestart(int(c.ID), failedRestore)
		}
	}
	m.notifyHealth(c, old, Healthy)
	return true
}

// reclaimPages unmaps every heap and stack page owned by the cubicle.
// Code and global pages survive a restart: the image is immutable and
// re-verified state, exactly as after the original load.
func (s *Supervisor) reclaimPages(c *Cubicle) {
	m := s.m
	var addrs []vm.Addr
	charged := uint64(0) // stack pages are never charged to the quota
	m.AS.ForEachPage(func(pn uint64, p *vm.Page) {
		if ID(p.Owner) == c.ID && (p.Type == vm.PageHeap || p.Type == vm.PageStack) {
			addrs = append(addrs, vm.PageAddr(pn))
			if p.Type != vm.PageStack {
				charged += vm.PageSize
			}
		}
	})
	for _, a := range addrs {
		if err := m.AS.Unmap(a, 1); err != nil {
			panic("cubicle: restart unmap failed: " + err.Error())
		}
	}
	// Credit the reclaimed pages back to the cubicle's memory quota.
	if m.memUsed[c.ID] >= charged {
		m.memUsed[c.ID] -= charged
	} else {
		m.memUsed[c.ID] = 0
	}
}

// watchdog raises a BudgetFault when the innermost crossing on thread t
// has consumed more virtual cycles than the policy's CrossingBudget. It
// runs at monitor entries (traps, explicit work, new crossings), which is
// where the simulator's monitor regains control from component code.
func (s *Supervisor) watchdog(t *Thread) {
	b := s.policy.CrossingBudget
	if b == 0 {
		return
	}
	for i := len(t.frames) - 1; i >= 0; i-- {
		f := &t.frames[i]
		if !f.crossing {
			continue
		}
		if used := t.clk.Cycles() - f.entryCycles; used > b {
			panic(&BudgetFault{Cubicle: f.exec, Used: used, Budget: b,
				Reason: "crossing exceeded its watchdog cycle budget"})
		}
		return
	}
}
