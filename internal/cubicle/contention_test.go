package cubicle

import (
	"sync"
	"testing"
	"time"

	"cubicleos/internal/vm"
)

// This file is the contention stress suite for the monitor's lock
// hierarchy (DESIGN.md §14): N worker goroutines on distinct simulated
// cores hammer crossings, window operations, trap-and-map retags with
// shootdowns, and the per-cubicle heap allocator, all with the lock-order
// checker armed. Run under -race it is the data-race gate for the
// post-big-lock monitor. The assertions are the three properties the old
// big kernel lock gave for free and the new design must prove:
//
//   - no deadlock: every workload joins within the watchdog budget;
//   - no lost stats: folded counters balance exactly against the known
//     per-worker operation counts — a torn or dropped increment anywhere
//     in the staged-shard scheme shows up as an off-by-N here;
//   - per-core clocks never regress: a sampler goroutine watches every
//     core clock concurrently and fails on any backwards step.

// joinWithin waits for the group and panics if it does not finish — a
// deadlock in the lock hierarchy must fail loudly with full stacks rather
// than eat the whole go-test timeout.
func joinWithin(t *testing.T, wg *sync.WaitGroup, d time.Duration, what string) {
	t.Helper()
	done := make(chan struct{})
	go func() { wg.Wait(); close(done) }()
	select {
	case <-done:
	case <-time.After(d):
		panic("contention: " + what + " did not finish: deadlock?")
	}
}

// watchClocks starts a goroutine that polls every core clock until stop is
// closed, failing the test if any clock ever moves backwards. Returns a
// join func.
func watchClocks(t *testing.T, m *Monitor, cores int, stop chan struct{}) func() {
	t.Helper()
	done := make(chan struct{})
	go func() {
		defer close(done)
		last := make([]uint64, cores)
		for {
			for c := 0; c < cores; c++ {
				if v := m.CoreClock(c).Cycles(); v < last[c] {
					t.Errorf("core %d clock regressed: %d -> %d", c, last[c], v)
					return
				} else {
					last[c] = v
				}
			}
			select {
			case <-stop:
				return
			default:
			}
		}
	}()
	return func() { <-done }
}

// TestContentionCrossingsWindowsRetags is the main stress: four workers on
// four cores each ping-pong ownership of their own page with BAR (every
// iteration crosses, traps, retags and shoots down), churn their window,
// and churn the shared FOO heap allocator. Counter conservation is exact:
// each iteration contributes precisely one crossing, two faults, two
// retags, two shootdowns and two window ops.
func TestContentionCrossingsWindowsRetags(t *testing.T) {
	const cores, iters = 4, 200
	ts := bootPair(t, ModeFull)
	m := ts.m
	m.EnableSMP(cores)
	m.EnableLockCheck()
	barID := ts.cubs["BAR"].ID
	barH := m.MustResolve(ts.cubs["FOO"].ID, "BAR", "bar")

	workers := make([]*Env, cores)
	addrs := make([]vm.Addr, cores)
	for c := range workers {
		workers[c] = newWorker(m, c)
		// Page-sized buffers: each worker retags its own page, so the
		// expected retag count is exact and workers contend on the lock
		// protocol, not on each other's pages.
		addrs[c] = ts.heapIn(t, "FOO", 4096)
	}
	base := *m.FoldStats() // boot-time counters; Calls map not asserted

	var before [cores]uint64
	for c := 0; c < cores; c++ {
		before[c] = m.CoreClock(c).Cycles()
	}
	stop := make(chan struct{})
	joinSampler := watchClocks(t, m, cores, stop)

	var wg sync.WaitGroup
	for c := 0; c < cores; c++ {
		wg.Add(1)
		go func(c int) {
			defer wg.Done()
			e := workers[c]
			enterOn(ts, e, "FOO")
			defer leaveOn(ts, e)
			wid := e.WindowInit()
			e.WindowAdd(wid, addrs[c], 64)
			e.WindowOpen(wid, barID)
			for i := 0; i < iters; i++ {
				// Crossing + trap: BAR's store retags the page to BAR.
				barH.Call(e, uint64(addrs[c]), uint64(i%64))
				// Owner store traps the page back: second retag + shootdown.
				e.StoreByte(addrs[c], byte(i))
				// Window churn under the global lock.
				e.WindowClose(wid, barID)
				e.WindowOpen(wid, barID)
				// Allocator churn under FOO's cubicle lock: the block must
				// come back intact (overlapping handouts would corrupt it).
				blk := e.HeapAlloc(96)
				e.StoreByte(blk, byte(c+1))
				if got := e.LoadByte(blk); got != byte(c+1) {
					t.Errorf("worker %d: allocator handed out an overlapping block", c)
				}
				e.HeapFree(blk)
			}
		}(c)
	}
	joinWithin(t, &wg, 2*time.Minute, "crossing workload")
	close(stop)
	joinSampler()

	got := *m.FoldStats()
	want := func(name string, got, want uint64) {
		if got != want {
			t.Errorf("%s delta = %d, want %d (lost or duplicated updates)", name, got, want)
		}
	}
	want("CallsTotal", got.CallsTotal-base.CallsTotal, cores*iters)
	want("Faults", got.Faults-base.Faults, 2*cores*iters)
	want("Retags", got.Retags-base.Retags, 2*cores*iters)
	want("TLBShootdowns", got.TLBShootdowns-base.TLBShootdowns, 2*cores*iters)
	// Per worker: WindowInit+Add+Open at setup, Close+Open per iteration.
	want("WindowOps", got.WindowOps-base.WindowOps, cores*(3+2*iters))
	for c := 0; c < cores; c++ {
		if m.CoreClock(c).Cycles() <= before[c] {
			t.Errorf("core %d clock did not advance under load", c)
		}
	}
}

// TestContentionAllocator hammers one cubicle's sub-allocator from four
// cores at once: the free-list fast path runs under the cubicle lock, the
// grow path escalates to the global lock, and the accounting must balance
// to the byte when everything is freed.
func TestContentionAllocator(t *testing.T) {
	const cores, iters = 4, 300
	ts := bootPair(t, ModeFull)
	m := ts.m
	m.EnableSMP(cores)
	m.EnableLockCheck()

	workers := make([]*Env, cores)
	for c := range workers {
		workers[c] = newWorker(m, c)
	}
	liveBase := m.LiveBytes(ts.cubs["FOO"].ID)

	var wg sync.WaitGroup
	for c := 0; c < cores; c++ {
		wg.Add(1)
		go func(c int) {
			defer wg.Done()
			e := workers[c]
			enterOn(ts, e, "FOO")
			defer leaveOn(ts, e)
			tag := byte(c + 1)
			var blocks []vm.Addr
			for i := 0; i < iters; i++ {
				// Mixed sizes force both the small free lists and the
				// page-grow slow path (gmu nested inside the escalation,
				// never inside cub.mu — the order checker is watching).
				size := uint64(16 + (i%40)*67)
				a := e.HeapAlloc(size)
				e.Memset(a, tag, size)
				blocks = append(blocks, a)
				if i%3 == 2 {
					// Free the oldest live block, verifying the tag first:
					// an overlapping handout to another worker would have
					// scribbled over it.
					b := blocks[0]
					blocks = blocks[1:]
					if got := e.LoadByte(b); got != tag {
						t.Errorf("worker %d: block %#x corrupted (tag %#x)", c, uint64(b), got)
					}
					e.HeapFree(b)
				}
			}
			for _, b := range blocks {
				if got := e.LoadByte(b); got != tag {
					t.Errorf("worker %d: block %#x corrupted at teardown", c, uint64(b))
				}
				e.HeapFree(b)
			}
		}(c)
	}
	joinWithin(t, &wg, 2*time.Minute, "allocator workload")
	if got := m.LiveBytes(ts.cubs["FOO"].ID); got != liveBase {
		t.Errorf("allocator accounting off after concurrent churn: live %d, want %d", got, liveBase)
	}
}

// TestContentionRestartStorm restarts BAR under fire: three workers cross
// into BAR continuously while the boot thread forces warm restarts. The
// Dekker gate between the restarting flag and the active-crossing counter
// must never let a reclaim yank a stack out from under a live crossing,
// and every call must complete and be counted exactly once.
func TestContentionRestartStorm(t *testing.T) {
	const workersN, iters = 3, 150
	ts := bootPair(t, ModeFull)
	m := ts.m
	m.EnableSMP(workersN + 1)
	m.EnableLockCheck()
	policy := DefaultRestartPolicy()
	policy.MaxRestarts = 0 // unlimited: the storm must not exhaust the budget
	m.EnableContainment(policy)
	bar := ts.cubs["BAR"]
	barID := bar.ID
	barH := m.MustResolve(ts.cubs["FOO"].ID, "BAR", "bar")
	t0 := ts.env.T

	workers := make([]*Env, workersN)
	addrs := make([]vm.Addr, workersN)
	for c := range workers {
		workers[c] = newWorker(m, c+1) // boot thread keeps core 0
		addrs[c] = ts.heapIn(t, "FOO", 4096)
	}
	base := *m.FoldStats()

	var wg sync.WaitGroup
	done := make(chan struct{})
	for c := 0; c < workersN; c++ {
		wg.Add(1)
		go func(c int) {
			defer wg.Done()
			e := workers[c]
			enterOn(ts, e, "FOO")
			defer leaveOn(ts, e)
			wid := e.WindowInit()
			e.WindowAdd(wid, addrs[c], 64)
			e.WindowOpen(wid, barID)
			for i := 0; i < iters; i++ {
				barH.Call(e, uint64(addrs[c]), uint64(i%64))
				e.StoreByte(addrs[c], byte(i))
			}
		}(c)
	}
	go func() { wg.Wait(); close(done) }()

	// Keep forcing restarts until the workers finish; attempts that catch
	// BAR mid-crossing are refused by the quiescence check and retried.
	restarts := 0
	for storm := true; storm; {
		select {
		case <-done:
			storm = false
		default:
			m.lockGlobal(t0)
			if m.sup.restart(t0, bar) {
				restarts++
			}
			m.unlockGlobal(t0)
		}
	}
	joinWithin(t, &wg, 2*time.Minute, "restart storm workload")

	// Quiescent now: one more restart must succeed, so the test always
	// proves at least one full reclaim interleaved with the workload type.
	m.lockGlobal(t0)
	if !m.sup.restart(t0, bar) {
		t.Error("restart refused at quiescence")
	}
	m.unlockGlobal(t0)
	restarts++

	got := *m.FoldStats()
	if delta := got.CallsTotal - base.CallsTotal; delta != workersN*iters {
		t.Errorf("CallsTotal delta = %d, want %d: restarts lost or duplicated crossings",
			delta, workersN*iters)
	}
	if got.Restarts-base.Restarts != uint64(restarts) {
		t.Errorf("Restarts = %d, want %d", got.Restarts-base.Restarts, restarts)
	}
	if h := bar.Health(); h != Healthy {
		t.Errorf("BAR health after storm = %v, want Healthy", h)
	}
	// BAR must still serve calls after the storm.
	ts.enter(t, "FOO", func(e *Env) {
		wid := e.WindowInit()
		e.WindowAdd(wid, addrs[0], 64)
		e.WindowOpen(wid, barID)
		if rets := barH.Call(e, uint64(addrs[0]), 7); rets[0] != 1 {
			t.Errorf("post-storm call returned %v", rets)
		}
	})
}

// TestLockOrderCheckerPanics pins the checker itself: acquiring the global
// lock while holding a cubicle lock, taking a cubicle lock twice, and
// taking cubicle locks against ID order must all panic with the
// documented message — in or out of parallel mode.
func TestLockOrderCheckerPanics(t *testing.T) {
	mustPanic := func(name string, fn func()) {
		t.Helper()
		defer func() {
			if recover() == nil {
				t.Errorf("%s: lock-order violation did not panic", name)
			}
		}()
		fn()
	}
	ts := bootPair(t, ModeFull)
	m := ts.m
	m.EnableLockCheck()
	foo, bar := ts.cubs["FOO"], ts.cubs["BAR"]
	lo, hi := foo, bar
	if lo.ID > hi.ID {
		lo, hi = hi, lo
	}

	mustPanic("global-after-cubicle", func() {
		m.lockCub(nil, lo)
		defer m.unlockCub(nil, lo)
		m.lockGlobal(nil)
	})
	mustPanic("cubicle-twice", func() {
		m.lockCub(nil, lo)
		defer m.unlockCub(nil, lo)
		m.lockCub(nil, lo)
	})
	mustPanic("descending-id-order", func() {
		m.lockCub(nil, hi)
		defer m.unlockCub(nil, hi)
		m.lockCub(nil, lo)
	})
}
