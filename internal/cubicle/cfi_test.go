package cubicle

import (
	"strings"
	"testing"

	"cubicleos/internal/isa"
	"cubicleos/internal/vm"
)

func TestResolveUnexportedSymbolFails(t *testing.T) {
	ts := bootPair(t, ModeFull)
	if _, err := ts.m.Resolve(ts.cubs["FOO"].ID, "BAR", "bar_internal_secret"); err == nil {
		t.Fatal("resolved a symbol that is not a public entry point")
	}
	if _, err := ts.m.Resolve(ts.cubs["FOO"].ID, "NOSUCH", "x"); err == nil {
		t.Fatal("resolved against unknown component")
	}
}

func TestHandleBoundToResolvingCubicle(t *testing.T) {
	ts := bootPair(t, ModeFull)
	buf := ts.heapIn(t, "FOO", 8)
	// Handle resolved for FOO, used from BAZ: models BAZ jumping through
	// a guard page that lives in FOO's cubicle.
	h := ts.m.MustResolve(ts.cubs["FOO"].ID, "BAR", "bar")
	ts.enter(t, "BAZ", func(e *Env) {
		err := mustFault(t, func() { h.Call(e, uint64(buf), 0) })
		if _, ok := err.(*CFIFault); !ok {
			t.Fatalf("got %T (%v), want *CFIFault", err, err)
		}
	})
}

func TestUnresolvedHandleFaults(t *testing.T) {
	ts := bootPair(t, ModeFull)
	ts.enter(t, "FOO", func(e *Env) {
		var h Handle
		if h.Valid() {
			t.Error("zero handle claims validity")
		}
		err := mustFault(t, func() { h.Call(e) })
		if _, ok := err.(*CFIFault); !ok {
			t.Fatalf("got %T, want *CFIFault", err)
		}
	})
}

func TestGuardPagePlacement(t *testing.T) {
	ts := bootPair(t, ModeFull)
	fooID := ts.cubs["FOO"].ID
	h := ts.m.MustResolve(fooID, "BAR", "bar")
	guard := h.tr.GuardAddr(fooID)
	if guard == 0 {
		t.Fatal("no guard page installed for FOO")
	}
	p := ts.m.AS.Page(guard)
	if p.Owner != int(fooID) {
		t.Errorf("guard page owned by %d, want FOO (%d)", p.Owner, fooID)
	}
	if p.Perm() != vm.PermExec {
		t.Errorf("guard page perm %v, want execute-only", p.Perm())
	}
	// Guard page content: wrpkru, jmp, then nop slide.
	if p.Data[0] != isa.OpWRPKRU[0] || p.Data[1] != isa.OpWRPKRU[1] || p.Data[2] != isa.OpWRPKRU[2] {
		t.Error("guard page does not start with wrpkru")
	}
}

func TestGuardPageMidEntryFaults(t *testing.T) {
	ts := bootPair(t, ModeFull)
	fooID := ts.cubs["FOO"].ID
	h := ts.m.MustResolve(fooID, "BAR", "bar")
	guard := h.tr.GuardAddr(fooID)
	ts.enter(t, "FOO", func(e *Env) {
		// Entry at offset 0 is the intended entry point.
		if err := Catch(func() { ts.m.ExecuteAt(e.T, guard) }); err != nil {
			t.Errorf("legitimate guard entry faulted: %v", err)
		}
		// Entry anywhere else must fault (nop-slide / mid-instruction).
		err := mustFault(t, func() { ts.m.ExecuteAt(e.T, guard.Add(1)) })
		if cf, ok := err.(*CFIFault); !ok || !strings.Contains(cf.Reason, "offset") {
			t.Fatalf("mid-guard entry: got %v", err)
		}
	})
}

func TestGuardPageOfOtherCubicleFaults(t *testing.T) {
	ts := bootPair(t, ModeFull)
	fooID := ts.cubs["FOO"].ID
	h := ts.m.MustResolve(fooID, "BAR", "bar")
	guard := h.tr.GuardAddr(fooID)
	ts.enter(t, "BAR", func(e *Env) {
		err := mustFault(t, func() { ts.m.ExecuteAt(e.T, guard) })
		if _, ok := err.(*CFIFault); !ok {
			t.Fatalf("got %T, want *CFIFault", err)
		}
	})
}

func TestTrampolineThunkNotDirectlyExecutable(t *testing.T) {
	ts := bootPair(t, ModeFull)
	h := ts.m.MustResolve(ts.cubs["FOO"].ID, "BAR", "bar")
	ts.enter(t, "FOO", func(e *Env) {
		err := mustFault(t, func() { ts.m.ExecuteAt(e.T, h.tr.thunkAddr) })
		cf, ok := err.(*CFIFault)
		if !ok || !strings.Contains(cf.Reason, "thunk") {
			t.Fatalf("got %v", err)
		}
	})
}

func TestExecDataPageFaults(t *testing.T) {
	ts := bootPair(t, ModeFull)
	buf := ts.heapIn(t, "FOO", 16)
	ts.enter(t, "FOO", func(e *Env) {
		err := mustFault(t, func() { ts.m.ExecuteAt(e.T, buf) })
		pf, ok := err.(*ProtectionFault)
		if !ok {
			t.Fatalf("got %T, want *ProtectionFault", err)
		}
		if !strings.Contains(pf.Reason, "page-table") {
			t.Errorf("reason %q", pf.Reason)
		}
	})
}

// TestExecForeignCodeFaults checks the paper's hardware modification: a
// cubicle cannot execute another cubicle's code pages because its PKRU
// denies both read and write on that key, which now disables execution.
func TestExecForeignCodeFaults(t *testing.T) {
	ts := bootPair(t, ModeFull)
	var barCode vm.Addr
	ts.m.AS.ForEachPage(func(pn uint64, p *vm.Page) {
		if p.Owner == int(ts.cubs["BAR"].ID) && p.Type == vm.PageCode && barCode == 0 {
			barCode = vm.PageAddr(pn)
		}
	})
	ts.enter(t, "FOO", func(e *Env) {
		err := mustFault(t, func() { ts.m.ExecuteAt(e.T, barCode) })
		if _, ok := err.(*ProtectionFault); !ok {
			t.Fatalf("got %T, want *ProtectionFault", err)
		}
	})
	// Own code pages execute fine (execute-only, key accessible).
	var fooCode vm.Addr
	ts.m.AS.ForEachPage(func(pn uint64, p *vm.Page) {
		if p.Owner == int(ts.cubs["FOO"].ID) && p.Type == vm.PageCode && fooCode == 0 {
			fooCode = vm.PageAddr(pn)
		}
	})
	ts.enter(t, "FOO", func(e *Env) {
		if err := Catch(func() { ts.m.ExecuteAt(e.T, fooCode) }); err != nil {
			t.Errorf("own code page not executable: %v", err)
		}
	})
}

func TestCodePagesAreExecuteOnly(t *testing.T) {
	ts := bootPair(t, ModeFull)
	var fooCode vm.Addr
	ts.m.AS.ForEachPage(func(pn uint64, p *vm.Page) {
		if p.Owner == int(ts.cubs["FOO"].ID) && p.Type == vm.PageCode && fooCode == 0 {
			fooCode = vm.PageAddr(pn)
		}
	})
	ts.enter(t, "FOO", func(e *Env) {
		// Even the owning cubicle cannot read or write its own code:
		// loader rule 1 of §5.4 (execute-only code pages).
		if err := Catch(func() { e.LoadByte(fooCode) }); err == nil {
			t.Error("code page readable")
		}
		if err := Catch(func() { e.StoreByte(fooCode, 0x90) }); err == nil {
			t.Error("code page writable")
		}
	})
}

func TestLoaderRejectsForbiddenInstructions(t *testing.T) {
	for _, seq := range [][]byte{isa.OpWRPKRU, isa.OpSYSCALL, isa.OpINT80} {
		b := NewBuilder()
		b.MustAdd(&Component{
			Name: "EVIL", Kind: KindIsolated,
			Exports: []ExportDecl{{Name: "f", Fn: func(e *Env, a []uint64) []uint64 { return nil }}},
			Image:   isa.Synthesize("EVIL", []string{"f"}, isa.SynthOptions{InjectForbidden: seq, InjectAt: -1}),
		})
		si, err := b.Build()
		if err != nil {
			t.Fatal(err)
		}
		m := NewMonitor(ModeFull, testCosts())
		_, err = NewLoader(m).LoadSystem(si, nil)
		le, ok := err.(*LoadError)
		if !ok {
			t.Fatalf("seq %x: got %v, want *LoadError", seq, err)
		}
		if !strings.Contains(le.Reason, "forbidden") {
			t.Errorf("seq %x: reason %q", seq, le.Reason)
		}
	}
}

// TestLoaderRejectsPageSpanningForbidden plants a wrpkru across a page
// boundary of the code section.
func TestLoaderRejectsPageSpanningForbidden(t *testing.T) {
	im := isa.Synthesize("EVIL", []string{"f"}, isa.SynthOptions{FuncSize: 3 * vm.PageSize, InjectForbidden: isa.OpWRPKRU, InjectAt: vm.PageSize - 1})
	b := NewBuilder()
	b.MustAdd(&Component{Name: "EVIL", Kind: KindIsolated,
		Exports: []ExportDecl{{Name: "f", Fn: func(e *Env, a []uint64) []uint64 { return nil }}},
		Image:   im})
	si, _ := b.Build()
	m := NewMonitor(ModeFull, testCosts())
	if _, err := NewLoader(m).LoadSystem(si, nil); err == nil {
		t.Fatal("loader accepted page-spanning wrpkru")
	}
}

func TestLoaderRejectsTamperedSignature(t *testing.T) {
	ts := bootPair(t, ModeFull) // builds a valid image first
	_ = ts
	b := NewBuilder()
	b.MustAdd(&Component{Name: "X", Kind: KindIsolated, Exports: []ExportDecl{
		{Name: "x", Fn: func(e *Env, a []uint64) []uint64 { return nil }}}})
	si, err := b.Build()
	if err != nil {
		t.Fatal(err)
	}
	si.TamperSignature("X", "x")
	m := NewMonitor(ModeFull, testCosts())
	_, err = NewLoader(m).LoadSystem(si, nil)
	if err == nil || !strings.Contains(err.Error(), "signature") {
		t.Fatalf("tampered descriptor loaded: %v", err)
	}
}

func TestLoaderRejectsUnbuiltComponent(t *testing.T) {
	m := NewMonitor(ModeFull, testCosts())
	b := NewBuilder()
	b.MustAdd(&Component{Name: "A", Kind: KindIsolated, Exports: []ExportDecl{
		{Name: "a", Fn: func(e *Env, a []uint64) []uint64 { return nil }}}})
	si, _ := b.Build()
	// A component never seen by the builder has no signature.
	rogue := &Component{Name: "R", Kind: KindIsolated,
		Exports: []ExportDecl{{Name: "r", Fn: func(e *Env, a []uint64) []uint64 { return nil }}},
		Image:   isa.Synthesize("R", []string{"r"}, isa.SynthOptions{})}
	if _, err := NewLoader(m).Load(si, rogue, ""); err == nil {
		t.Fatal("loader accepted component without builder signature")
	}
}

func TestLoaderGrouping(t *testing.T) {
	b := NewBuilder()
	noop := func(e *Env, a []uint64) []uint64 { return nil }
	b.MustAdd(&Component{Name: "VFSCORE", Kind: KindIsolated, Exports: []ExportDecl{{Name: "vfs_x", Fn: noop}}})
	b.MustAdd(&Component{Name: "RAMFS", Kind: KindIsolated, Exports: []ExportDecl{{Name: "ramfs_x", Fn: noop}}})
	b.MustAdd(&Component{Name: "APP", Kind: KindIsolated, Exports: []ExportDecl{{Name: "main", Fn: noop}}})
	si, _ := b.Build()
	m := NewMonitor(ModeFull, testCosts())
	cubs, err := NewLoader(m).LoadSystem(si, map[string]string{"VFSCORE": "CORE", "RAMFS": "CORE"})
	if err != nil {
		t.Fatal(err)
	}
	if cubs["VFSCORE"] != cubs["RAMFS"] {
		t.Fatal("grouped components in different cubicles")
	}
	if cubs["VFSCORE"] == cubs["APP"] {
		t.Fatal("ungrouped component fused")
	}
	core := cubs["VFSCORE"]
	if !core.HasComponent("VFSCORE") || !core.HasComponent("RAMFS") {
		t.Error("group cubicle component list wrong")
	}
	// Calls between fused components are same-cubicle: no cross edges.
	env := m.NewEnv(m.NewThread())
	env.T.pushFrame(core.ID, true)
	h := m.MustResolve(core.ID, "RAMFS", "ramfs_x")
	h.Call(env)
	env.T.popFrame()
	if m.Stats.CallsTotal != 0 {
		t.Error("same-cubicle call counted as crossing")
	}
}

func TestLoaderRejectsMixedKindGroup(t *testing.T) {
	b := NewBuilder()
	noop := func(e *Env, a []uint64) []uint64 { return nil }
	b.MustAdd(&Component{Name: "A", Kind: KindIsolated, Exports: []ExportDecl{{Name: "a", Fn: noop}}})
	b.MustAdd(&Component{Name: "B", Kind: KindShared, Exports: []ExportDecl{{Name: "b", Fn: noop}}})
	si, _ := b.Build()
	m := NewMonitor(ModeFull, testCosts())
	if _, err := NewLoader(m).LoadSystem(si, map[string]string{"A": "G", "B": "G"}); err == nil {
		t.Fatal("mixed-kind group loaded")
	}
}

func TestLoaderRejectsDuplicateLoadAndSymbols(t *testing.T) {
	b := NewBuilder()
	noop := func(e *Env, a []uint64) []uint64 { return nil }
	b.MustAdd(&Component{Name: "A", Kind: KindIsolated, Exports: []ExportDecl{{Name: "f", Fn: noop}}})
	b.MustAdd(&Component{Name: "B", Kind: KindIsolated, Exports: []ExportDecl{{Name: "f", Fn: noop}}})
	si, _ := b.Build()
	m := NewMonitor(ModeFull, testCosts())
	ld := NewLoader(m)
	if _, err := ld.Load(si, si.Components[0], ""); err != nil {
		t.Fatal(err)
	}
	if _, err := ld.Load(si, si.Components[0], ""); err == nil {
		t.Fatal("double load accepted")
	}
	// Same symbol in the same group cubicle collides.
	if _, err := ld.Load(si, si.Components[1], "A"); err == nil {
		t.Fatal("duplicate symbol in one cubicle accepted")
	}
}

func TestBuilderValidation(t *testing.T) {
	noop := func(e *Env, a []uint64) []uint64 { return nil }
	cases := []*Component{
		{Name: "", Kind: KindIsolated},
		{Name: "A", Exports: []ExportDecl{{Name: "f", Fn: nil}}},
		{Name: "B", Exports: []ExportDecl{{Name: "f", Fn: noop, RegArgs: 7}}},
		{Name: "C", Exports: []ExportDecl{{Name: "f", Fn: noop, StackBytes: -1}}},
		{Name: "D", Exports: []ExportDecl{{Name: "f", Fn: noop}, {Name: "f", Fn: noop}}},
	}
	for _, c := range cases {
		b := NewBuilder()
		if err := b.Add(c); err == nil {
			t.Errorf("builder accepted invalid component %+v", c)
		}
	}
	b := NewBuilder()
	if _, err := b.Build(); err == nil {
		t.Error("empty build succeeded")
	}
	b2 := NewBuilder()
	b2.MustAdd(&Component{Name: "A", Kind: KindIsolated, Exports: []ExportDecl{{Name: "f", Fn: noop}}})
	if err := b2.Add(&Component{Name: "A", Kind: KindIsolated}); err == nil {
		t.Error("duplicate component accepted")
	}
}

func TestBuilderSignatures(t *testing.T) {
	b := NewBuilder()
	noop := func(e *Env, a []uint64) []uint64 { return nil }
	b.MustAdd(&Component{Name: "A", Kind: KindIsolated, Exports: []ExportDecl{{Name: "f", RegArgs: 2, StackBytes: 8, Fn: noop}}})
	si, err := b.Build()
	if err != nil {
		t.Fatal(err)
	}
	if _, ok := si.Signature("A", "f"); !ok {
		t.Fatal("no signature recorded")
	}
	if !si.verify("A", "f", 2, 8) {
		t.Error("valid descriptor does not verify")
	}
	// Changing any field of the descriptor invalidates the signature.
	if si.verify("A", "f", 3, 8) || si.verify("A", "f", 2, 9) || si.verify("A", "g", 2, 8) {
		t.Error("modified descriptor verifies")
	}
}

func TestEntryWithoutSwitchIsCFIFault(t *testing.T) {
	// Grab the raw registered Fn (as if a component smuggled a function
	// pointer) and invoke it while running as FOO: the callee-side
	// prologue must detect the bypassed trampoline.
	ts := bootPair(t, ModeFull)
	tr := ts.cubs["BAR"].exports["bar"]
	ts.enter(t, "FOO", func(e *Env) {
		err := mustFault(t, func() { tr.fn(e, []uint64{0, 0}) })
		cf, ok := err.(*CFIFault)
		if !ok || !strings.Contains(cf.Reason, "bypassed") {
			t.Fatalf("got %v", err)
		}
	})
}
