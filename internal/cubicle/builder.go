package cubicle

import (
	"crypto/hmac"
	"crypto/rand"
	"crypto/sha256"
	"encoding/binary"
	"fmt"

	"cubicleos/internal/isa"
)

// ExportDecl declares one public entry point of a component: its symbol
// name, binary interface (register words and in-stack argument bytes, the
// information the builder extracts from the function signature in §5.2),
// and the implementing function.
type ExportDecl struct {
	Name       string
	RegArgs    int
	StackBytes int
	Fn         Fn
}

// Component describes one library OS or application component, the unit
// that Unikraft compiles as a separate dynamic library (§5.2 task 1). The
// developer specifies whether it becomes an isolated or a shared cubicle.
type Component struct {
	Name    string
	Kind    Kind
	Exports []ExportDecl
	// Image is the component's object image. If nil, the builder
	// synthesises one whose code section exports the declared symbols.
	Image *isa.Image
	// OnRestart, when set, rebuilds the component's Go-side state after
	// the supervisor restarts its cubicle (the simulator's analogue of the
	// component's initialiser re-running on the fresh image).
	OnRestart func()
	// Snapshot, when set, serialises the component's Go-side state into a
	// deterministic blob for warm recovery. It runs at quiescent points
	// (no open windows, no in-flight crossing into the cubicle); returning
	// an error vetoes the checkpoint round — the component is mid-state
	// (live connections, non-idle sockets) and the previous checkpoint
	// stays good. The SnapCtx grants monitor-privileged access to simulated
	// memory so content held in foreign pages (e.g. ALLOC-owned file pages)
	// can be captured too.
	Snapshot func(*SnapCtx) ([]byte, error)
	// Restore rebuilds the component's Go-side state from a Snapshot blob
	// after the supervisor warm-restarts its cubicle. Returning an error
	// aborts the warm restore; the supervisor falls back to the cold
	// OnRestart path. A component providing Snapshot must provide Restore.
	Restore func(*SnapCtx, []byte) error
}

// descriptor is the canonical byte encoding of a trampoline descriptor,
// the data the builder signs (§5.2 task 3: the generated trampoline "must
// be generated and signed by the trusted builder").
func descriptor(comp, sym string, regArgs, stackBytes int) []byte {
	b := make([]byte, 0, len(comp)+len(sym)+20)
	b = append(b, comp...)
	b = append(b, 0)
	b = append(b, sym...)
	b = append(b, 0)
	b = binary.LittleEndian.AppendUint32(b, uint32(regArgs))
	b = binary.LittleEndian.AppendUint32(b, uint32(stackBytes))
	return b
}

// SystemImage is the builder's output: the component set plus the signed
// trampoline descriptors the loader verifies before installing them.
type SystemImage struct {
	Components []*Component
	sigs       map[string][32]byte // "comp.sym" -> HMAC of descriptor
	secret     [32]byte
}

// Signature returns the builder signature for comp.sym (tests use this to
// verify tampering detection).
func (si *SystemImage) Signature(comp, sym string) ([32]byte, bool) {
	s, ok := si.sigs[comp+"."+sym]
	return s, ok
}

// TamperSignature corrupts the stored signature for comp.sym; used by
// tests to prove the loader rejects unsigned trampolines.
func (si *SystemImage) TamperSignature(comp, sym string) {
	s := si.sigs[comp+"."+sym]
	s[0] ^= 0xFF
	si.sigs[comp+"."+sym] = s
}

// verify recomputes and checks a descriptor signature.
func (si *SystemImage) verify(comp, sym string, regArgs, stackBytes int) bool {
	mac := hmac.New(sha256.New, si.secret[:])
	mac.Write(descriptor(comp, sym, regArgs, stackBytes))
	var want [32]byte
	copy(want[:], mac.Sum(nil))
	got, ok := si.sigs[comp+"."+sym]
	return ok && hmac.Equal(got[:], want[:])
}

// Builder is the trusted component builder of §4/§5.2. It piggy-backs on
// the component structure (one component per Unikraft library), identifies
// the public symbols of each component, and generates a signed trampoline
// descriptor for each.
type Builder struct {
	comps  []*Component
	byName map[string]*Component
	secret [32]byte
}

// NewBuilder creates a builder with a fresh signing secret.
func NewBuilder() *Builder {
	b := &Builder{byName: make(map[string]*Component)}
	if _, err := rand.Read(b.secret[:]); err != nil {
		panic(err)
	}
	return b
}

// Add registers a component with the builder. Returns an error for a
// duplicate name or an export without an implementation.
func (b *Builder) Add(c *Component) error {
	if c.Name == "" {
		return fmt.Errorf("builder: component with empty name")
	}
	if _, dup := b.byName[c.Name]; dup {
		return fmt.Errorf("builder: duplicate component %q", c.Name)
	}
	seen := make(map[string]bool)
	for _, ex := range c.Exports {
		if ex.Fn == nil {
			return fmt.Errorf("builder: component %q export %q has no implementation", c.Name, ex.Name)
		}
		if ex.RegArgs < 0 || ex.RegArgs > 6 {
			return fmt.Errorf("builder: component %q export %q: register args must be 0..6 (SysV)", c.Name, ex.Name)
		}
		if ex.StackBytes < 0 {
			return fmt.Errorf("builder: component %q export %q: negative stack bytes", c.Name, ex.Name)
		}
		if seen[ex.Name] {
			return fmt.Errorf("builder: component %q exports %q twice", c.Name, ex.Name)
		}
		seen[ex.Name] = true
	}
	b.comps = append(b.comps, c)
	b.byName[c.Name] = c
	return nil
}

// MustAdd is Add for static deployment descriptions.
func (b *Builder) MustAdd(c *Component) {
	if err := b.Add(c); err != nil {
		panic(err)
	}
}

// Build produces the system image: it synthesises object images for
// components that lack one (exporting exactly the declared public
// symbols, the equivalent of exportsyms.uk) and signs every trampoline
// descriptor.
func (b *Builder) Build() (*SystemImage, error) {
	if len(b.comps) == 0 {
		return nil, fmt.Errorf("builder: no components")
	}
	si := &SystemImage{
		Components: b.comps,
		sigs:       make(map[string][32]byte),
		secret:     b.secret,
	}
	for _, c := range b.comps {
		if c.Image == nil {
			names := make([]string, len(c.Exports))
			for i, ex := range c.Exports {
				names[i] = ex.Name
			}
			c.Image = isa.Synthesize(c.Name, names, isa.SynthOptions{Seed: int64(len(c.Name)) * 1315423911})
		}
		for _, ex := range c.Exports {
			if c.Image.FindExport(ex.Name) == nil {
				return nil, fmt.Errorf("builder: component %q image does not define exported symbol %q", c.Name, ex.Name)
			}
			mac := hmac.New(sha256.New, b.secret[:])
			mac.Write(descriptor(c.Name, ex.Name, ex.RegArgs, ex.StackBytes))
			var sig [32]byte
			copy(sig[:], mac.Sum(nil))
			si.sigs[c.Name+"."+ex.Name] = sig
		}
	}
	return si, nil
}
