package cubicle

import (
	"errors"
	"testing"

	"cubicleos/internal/cycles"
	"cubicleos/internal/vm"
)

// bootFaulty boots a supervised three-cubicle world for containment tests:
//
//	APP — the caller driving the tests.
//	SVC — a service with exports that fault in controlled ways.
//	MID — a middleman that opens a window of its own, then calls SVC.
//
// restarts, if non-nil, is incremented by SVC's OnRestart hook.
func bootFaulty(t testing.TB, policy RestartPolicy, restarts *int) *testSystem {
	t.Helper()
	ts := &testSystem{}
	b := NewBuilder()
	b.MustAdd(&Component{Name: "APP", Kind: KindIsolated, Exports: []ExportDecl{
		{Name: "app_noop", Fn: func(e *Env, args []uint64) []uint64 { return nil }},
	}})
	svc := &Component{Name: "SVC", Kind: KindIsolated, Exports: []ExportDecl{
		{Name: "svc_ok", Fn: func(e *Env, args []uint64) []uint64 { return []uint64{7} }},
		// svc_touch stores one byte at the given address: a foreign address
		// raises a protection fault inside SVC.
		{Name: "svc_touch", RegArgs: 1, Fn: func(e *Env, args []uint64) []uint64 {
			e.StoreByte(vm.Addr(args[0]), 1)
			return nil
		}},
		// svc_leak creates, opens and pins a window on its own heap, then
		// faults — the containment journal must clean all of it up.
		{Name: "svc_leak", RegArgs: 1, Fn: func(e *Env, args []uint64) []uint64 {
			buf := e.HeapAlloc(64)
			wid := e.WindowInit()
			e.WindowAdd(wid, buf, 64)
			e.WindowOpen(wid, e.Caller())
			e.WindowPin(wid)
			e.StoreByte(vm.Addr(args[0]), 1)
			return nil
		}},
		{Name: "svc_alloc", RegArgs: 1, Fn: func(e *Env, args []uint64) []uint64 {
			return []uint64{uint64(e.HeapAlloc(args[0]))}
		}},
		{Name: "svc_spin", RegArgs: 1, Fn: func(e *Env, args []uint64) []uint64 {
			for i := uint64(0); i < args[0]; i++ {
				e.Work(1_000)
			}
			return nil
		}},
		{Name: "svc_bug", Fn: func(e *Env, args []uint64) []uint64 {
			panic("svc application bug")
		}},
	}}
	if restarts != nil {
		svc.OnRestart = func() { *restarts++ }
	}
	b.MustAdd(svc)
	b.MustAdd(&Component{Name: "MID", Kind: KindIsolated, Exports: []ExportDecl{
		{Name: "mid_call", RegArgs: 1, Fn: func(e *Env, args []uint64) []uint64 {
			buf := e.HeapAlloc(32)
			wid := e.WindowInit()
			e.WindowAdd(wid, buf, 32)
			h := e.M.MustResolve(e.Cubicle(), "SVC", "svc_touch")
			h.Call(e, args[0])
			return nil
		}},
	}})
	si, err := b.Build()
	if err != nil {
		t.Fatal(err)
	}
	m := NewMonitor(ModeFull, cycles.DefaultCosts())
	m.EnableContainment(policy)
	cubs, err := NewLoader(m).LoadSystem(si, nil)
	if err != nil {
		t.Fatal(err)
	}
	ts.m, ts.si, ts.cubs = m, si, cubs
	ts.env = m.NewEnv(m.NewThread())
	return ts
}

// pinnedKeyCount counts MPK keys currently reserved for pinned windows.
func pinnedKeyCount(m *Monitor) int {
	n := 0
	for _, h := range m.keyHolder {
		if h == -3 {
			n++
		}
	}
	return n
}

func TestContainedFaultUnwindsToCrossing(t *testing.T) {
	ts := bootFaulty(t, DefaultRestartPolicy(), nil)
	appBuf := ts.heapIn(t, "APP", 8)
	svcID := ts.cubs["SVC"].ID
	ts.enter(t, "APP", func(e *Env) {
		h := ts.m.MustResolve(e.Cubicle(), "SVC", "svc_touch")
		cf := CatchContained(func() { h.Call(e, uint64(appBuf)) })
		if cf == nil {
			t.Fatal("fault in SVC was not contained")
		}
		if cf.Cubicle != svcID {
			t.Errorf("fault attributed to cubicle %d, want SVC %d", cf.Cubicle, svcID)
		}
		var pf *ProtectionFault
		if !errors.As(cf, &pf) {
			t.Errorf("cause = %v, want a *ProtectionFault", cf.Cause)
		}
		// The unwind stopped at the crossing: the thread is back in APP with
		// its original frame depth, and APP can keep computing.
		if e.Cubicle() != ts.cubs["APP"].ID {
			t.Errorf("thread left in cubicle %d after containment", e.Cubicle())
		}
		if got := len(e.T.frames); got != 1 {
			t.Errorf("frame depth after containment = %d, want 1", got)
		}
		e.StoreByte(appBuf, 0x55) // APP's own memory still accessible
	})
	if h := ts.cubs["SVC"].Health(); h != Quarantined {
		t.Errorf("SVC health = %v, want Quarantined", h)
	}
	// Calls into the quarantined cubicle fail fast, attributably.
	ts.enter(t, "APP", func(e *Env) {
		h := ts.m.MustResolve(e.Cubicle(), "SVC", "svc_ok")
		cf := CatchContained(func() { h.Call(e) })
		if cf == nil || !errors.Is(cf, ErrQuarantined) {
			t.Fatalf("call into quarantined cubicle: got %v, want ErrQuarantined", cf)
		}
	})
	st := ts.m.Stats
	if st.ContainedFaults != 2 || st.Quarantines != 1 {
		t.Errorf("ContainedFaults=%d Quarantines=%d, want 2 and 1",
			st.ContainedFaults, st.Quarantines)
	}
	if st.Restarts != 0 {
		t.Errorf("Restarts=%d before any backoff expiry", st.Restarts)
	}
}

// TestContainmentRollsBackWindowLeaks is the fault-path leak satellite: a
// callee that created, opened and pinned windows before faulting must leave
// no window descriptors and no reserved pin keys behind.
func TestContainmentRollsBackWindowLeaks(t *testing.T) {
	ts := bootFaulty(t, DefaultRestartPolicy(), nil)
	appBuf := ts.heapIn(t, "APP", 8)
	svcID := ts.cubs["SVC"].ID
	winBefore := ts.m.WindowCount(svcID)
	keysBefore := pinnedKeyCount(ts.m)
	pinsBefore := len(ts.m.pinned)
	ts.enter(t, "APP", func(e *Env) {
		h := ts.m.MustResolve(e.Cubicle(), "SVC", "svc_leak")
		if cf := CatchContained(func() { h.Call(e, uint64(appBuf)) }); cf == nil {
			t.Fatal("svc_leak did not fault")
		}
	})
	if got := ts.m.WindowCount(svcID); got != winBefore {
		t.Errorf("window count after contained fault = %d, want %d (leak)", got, winBefore)
	}
	if got := pinnedKeyCount(ts.m); got != keysBefore {
		t.Errorf("reserved pin keys after contained fault = %d, want %d (leak)", got, keysBefore)
	}
	if got := len(ts.m.pinned); got != pinsBefore {
		t.Errorf("pinned window list length = %d, want %d (leak)", got, pinsBefore)
	}
	if got := len(ts.env.T.journal); got != 0 {
		t.Errorf("containment journal holds %d entries after full unwind", got)
	}
}

// TestContainmentPreservesOtherOwnersState: when SVC faults under MID, the
// fault is attributed to SVC at the innermost crossing and MID's own
// window-state changes survive — only the culprit's span is rolled back.
func TestContainmentPreservesOtherOwnersState(t *testing.T) {
	ts := bootFaulty(t, DefaultRestartPolicy(), nil)
	appBuf := ts.heapIn(t, "APP", 8)
	svcID, midID := ts.cubs["SVC"].ID, ts.cubs["MID"].ID
	ts.enter(t, "APP", func(e *Env) {
		h := ts.m.MustResolve(e.Cubicle(), "MID", "mid_call")
		cf := CatchContained(func() { h.Call(e, uint64(appBuf)) })
		if cf == nil {
			t.Fatal("nested fault was not contained")
		}
		if cf.Cubicle != svcID {
			t.Errorf("nested fault attributed to %d, want the actual culprit SVC %d",
				cf.Cubicle, svcID)
		}
	})
	if h := ts.cubs["MID"].Health(); h != Healthy {
		t.Errorf("MID health = %v, want Healthy (it did not fault)", h)
	}
	if h := ts.cubs["SVC"].Health(); h != Quarantined {
		t.Errorf("SVC health = %v, want Quarantined", h)
	}
	if got := ts.m.WindowCount(midID); got != 1 {
		t.Errorf("MID window count = %d, want its own window preserved", got)
	}
	if got := ts.m.WindowCount(svcID); got != 0 {
		t.Errorf("SVC window count = %d, want 0", got)
	}
}

// TestForeignPanicNotContained: plain Go bugs are not isolation faults and
// must pass through supervised crossings untouched.
func TestForeignPanicNotContained(t *testing.T) {
	ts := bootFaulty(t, DefaultRestartPolicy(), nil)
	var recovered any
	func() {
		defer func() { recovered = recover() }()
		ts.enter(t, "APP", func(e *Env) {
			h := ts.m.MustResolve(e.Cubicle(), "SVC", "svc_bug")
			h.Call(e)
		})
	}()
	if recovered != any("svc application bug") {
		t.Fatalf("foreign panic arrived as %#v, want the original value", recovered)
	}
	if h := ts.cubs["SVC"].Health(); h != Healthy {
		t.Errorf("SVC quarantined for a foreign panic: health = %v", h)
	}
	if ts.m.Stats.ContainedFaults != 0 {
		t.Errorf("ContainedFaults = %d for a foreign panic", ts.m.Stats.ContainedFaults)
	}
}
