package cubicle

import (
	"encoding/binary"

	"cubicleos/internal/mpk"
	"cubicleos/internal/vm"
)

// Env is the execution environment handed to component code: every memory
// access, allocation and window operation a component performs goes
// through it, which is where the simulated MPK permission checks (and the
// trap-and-map handler behind them) are applied.
//
// Env plays the role of the CPU executing untrusted component code: loads
// and stores are checked against the thread's PKRU register exactly as the
// memory-management unit would check them.
//
// No Env method takes a shared lock on its own behalf: the checked
// accessors run the lock-free TLB/page-walk fast path and only a trap
// locks (monitor.go); allocation takes the owning cubicle's inner lock;
// window calls lock inside the monitor's window layer. This is what lets
// component code on different cores proceed independently.
type Env struct {
	M *Monitor
	T *Thread
}

// NewEnv pairs a monitor with a thread.
func (m *Monitor) NewEnv(t *Thread) *Env { return &Env{M: m, T: t} }

// RunAs switches the thread into cubicle id — the way an application's
// public main is entered at boot — runs fn with that cubicle's
// privileges, and returns any isolation fault fn raised as an error.
func (m *Monitor) RunAs(e *Env, id ID, fn func(e *Env)) error {
	e.T.pushFrame(id, true)
	defer e.T.popFrame()
	if m.Mode.MPKEnabled() {
		m.wrpkru(e.T, m.pkruForFast(e.T, id))
	}
	return Catch(func() { fn(e) })
}

// Cubicle returns the cubicle whose privileges the code is running with.
func (e *Env) Cubicle() ID { return e.T.cur }

// Caller returns the cubicle that performed the innermost cross-cubicle
// call into the current one.
func (e *Env) Caller() ID { return e.T.Caller() }

// CubicleOf returns the cubicle hosting the named component. All cubicle
// IDs are known at link time, so components legitimately embed them in
// window-open calls (Figure 2: "open_window(BUF, RAMFS)"). The component
// table is immutable after loading, so the lookup needs no lock.
func (e *Env) CubicleOf(component string) ID {
	c, ok := e.M.compOf[component]
	if !ok {
		panic(&APIError{Cubicle: e.T.cur, Op: "cubicle_of", Reason: "unknown component " + component})
	}
	return c.ID
}

// Work charges n cycles of modelled CPU work (computation that is
// identical across all isolation modes, scaled by the deployment's
// runtime-efficiency factor).
func (e *Env) Work(n uint64) {
	e.T.clk.ChargeWork(n)
	if e.M.sup != nil {
		// Modelled work is a watchdog checkpoint: it is how a runaway
		// callee burns cycles without otherwise entering the monitor.
		e.M.sup.watchdog(e.T)
	}
	if e.T.deadline != 0 {
		// Deadline checkpoint: delegated work past the request deadline is
		// abandoned here rather than computed for nobody.
		e.M.checkDeadline(e.T)
	}
}

// --- Checked memory access -------------------------------------------------
//
// Every accessor below resolves the span through the per-thread TLB
// (tlb.go): the common case — a span within one already-validated page — is
// a single cache probe plus a direct copy from the backing array, with zero
// virtual-time side effects, exactly like the walk it replaces.

// Read copies len(b) bytes at addr into b, after access checks.
func (e *Env) Read(addr vm.Addr, b []byte) {
	n := uint64(len(b))
	if n == 0 {
		return
	}
	if v, ok := e.M.fastView(e.T, mpk.AccessRead, addr, n); ok {
		copy(b, v)
		return
	}
	e.M.resolveSpan(e.T, mpk.AccessRead, addr, n)
	if err := e.M.AS.ReadAt(addr, b); err != nil {
		panic(&ProtectionFault{Addr: addr, Access: mpk.AccessRead, Cubicle: e.T.cur,
			Owner: vm.NoOwner, Reason: err.Error()})
	}
}

// Write copies b to memory at addr, after access checks.
func (e *Env) Write(addr vm.Addr, b []byte) {
	n := uint64(len(b))
	if n == 0 {
		return
	}
	if v, ok := e.M.fastView(e.T, mpk.AccessWrite, addr, n); ok {
		copy(v, b)
		return
	}
	e.M.resolveSpan(e.T, mpk.AccessWrite, addr, n)
	if err := e.M.AS.WriteAt(addr, b); err != nil {
		panic(&ProtectionFault{Addr: addr, Access: mpk.AccessWrite, Cubicle: e.T.cur,
			Owner: vm.NoOwner, Reason: err.Error()})
	}
}

// View checks read access to [addr, addr+n) and passes fn zero-copy views
// of its bytes, one chunk per page crossed, in address order (off is the
// chunk's offset from addr). The slices alias simulated memory: they are
// valid only for the duration of the call and must not be written or
// retained. This is the bulk read primitive for component hot loops — no
// intermediate buffer, no per-byte walk.
func (e *Env) View(addr vm.Addr, n uint64, fn func(off uint64, chunk []byte)) {
	if n == 0 {
		return
	}
	if v, ok := e.M.fastView(e.T, mpk.AccessRead, addr, n); ok {
		fn(0, v)
		return
	}
	e.M.resolveSpan(e.T, mpk.AccessRead, addr, n)
	if err := e.M.AS.Span(addr, n, fn); err != nil {
		panic(&ProtectionFault{Addr: addr, Access: mpk.AccessRead, Cubicle: e.T.cur,
			Owner: vm.NoOwner, Reason: err.Error()})
	}
}

// MutableView is View for writing: fn receives writable zero-copy chunks
// of [addr, addr+n) after a write access check.
func (e *Env) MutableView(addr vm.Addr, n uint64, fn func(off uint64, chunk []byte)) {
	if n == 0 {
		return
	}
	if v, ok := e.M.fastView(e.T, mpk.AccessWrite, addr, n); ok {
		fn(0, v)
		return
	}
	e.M.resolveSpan(e.T, mpk.AccessWrite, addr, n)
	if err := e.M.AS.Span(addr, n, fn); err != nil {
		panic(&ProtectionFault{Addr: addr, Access: mpk.AccessWrite, Cubicle: e.T.cur,
			Owner: vm.NoOwner, Reason: err.Error()})
	}
}

// ReadBytes returns a fresh copy of n bytes at addr.
func (e *Env) ReadBytes(addr vm.Addr, n uint64) []byte {
	b := make([]byte, n)
	e.Read(addr, b)
	return b
}

// ReadU64 reads a 64-bit little-endian word.
func (e *Env) ReadU64(addr vm.Addr) uint64 {
	if v, ok := e.M.fastView(e.T, mpk.AccessRead, addr, 8); ok {
		return binary.LittleEndian.Uint64(v)
	}
	e.M.resolveSpan(e.T, mpk.AccessRead, addr, 8)
	v, err := e.M.AS.ReadU64(addr)
	if err != nil {
		panic(&ProtectionFault{Addr: addr, Access: mpk.AccessRead, Cubicle: e.T.cur,
			Owner: vm.NoOwner, Reason: err.Error()})
	}
	return v
}

// WriteU64 writes a 64-bit little-endian word.
func (e *Env) WriteU64(addr vm.Addr, v uint64) {
	if b, ok := e.M.fastView(e.T, mpk.AccessWrite, addr, 8); ok {
		binary.LittleEndian.PutUint64(b, v)
		return
	}
	e.M.resolveSpan(e.T, mpk.AccessWrite, addr, 8)
	if err := e.M.AS.WriteU64(addr, v); err != nil {
		panic(&ProtectionFault{Addr: addr, Access: mpk.AccessWrite, Cubicle: e.T.cur,
			Owner: vm.NoOwner, Reason: err.Error()})
	}
}

// LoadByte reads one byte.
func (e *Env) LoadByte(addr vm.Addr) byte {
	if v, ok := e.M.fastView(e.T, mpk.AccessRead, addr, 1); ok {
		return v[0]
	}
	var b [1]byte
	e.Read(addr, b[:])
	return b[0]
}

// StoreByte writes one byte.
func (e *Env) StoreByte(addr vm.Addr, v byte) {
	if b, ok := e.M.fastView(e.T, mpk.AccessWrite, addr, 1); ok {
		b[0] = v
		return
	}
	b := [1]byte{v}
	e.Write(addr, b[:])
}

// chargeCopy charges the streaming cost of moving n bytes.
func (e *Env) chargeCopy(n uint64) {
	e.T.clk.Charge(((n + 15) / 16) * e.M.Costs.CopyChunk16)
	e.M.st(e.T).BulkBytesCopied += n
	if e.M.trc != nil {
		e.M.trc.Copy(e.T.id, int(e.T.cur), n)
	}
}

// Tracing reports whether the deployment records trace events.
func (e *Env) Tracing() bool { return e.M.trc != nil }

// TraceMark records an application-level trace marker (a no-op when
// tracing is disabled). Pass constant labels so the hot path stays
// allocation-free.
func (e *Env) TraceMark(label string) {
	if e.M.trc != nil {
		e.M.trc.Mark(e.T.id, int(e.T.cur), label)
	}
}

// Memcpy copies n bytes from src to dst with access checks on both sides
// and streaming cost accounting. This is the LIBC memcpy of Figure 2 ❹:
// when called from another cubicle it executes with that cubicle's
// privileges, so the checks run against the caller's PKRU. The whole source
// span is checked before the whole destination span, then the bytes move
// page-chunk by page-chunk between the backing arrays — no intermediate
// buffer. Overlapping ranges keep the old copy-through-a-buffer semantics
// (memmove).
func (e *Env) Memcpy(dst, src vm.Addr, n uint64) {
	if n == 0 {
		return
	}
	e.M.resolveSpan(e.T, mpk.AccessRead, src, n)
	e.M.resolveSpan(e.T, mpk.AccessWrite, dst, n)
	e.chargeCopy(n)
	if uint64(src) < uint64(dst)+n && uint64(dst) < uint64(src)+n {
		buf := make([]byte, n)
		if err := e.M.AS.ReadAt(src, buf); err != nil {
			panic(err)
		}
		if err := e.M.AS.WriteAt(dst, buf); err != nil {
			panic(err)
		}
		return
	}
	for done := uint64(0); done < n; {
		sa, da := src.Add(done), dst.Add(done)
		sp, dp := e.M.AS.Page(sa), e.M.AS.Page(da)
		so, do := sa.PageOff(), da.PageOff()
		k := n - done
		if r := vm.PageSize - so; k > r {
			k = r
		}
		if r := vm.PageSize - do; k > r {
			k = r
		}
		copy(dp.Data[do:do+k], sp.Data[so:so+k])
		done += k
	}
}

// Memset fills n bytes at dst with c.
func (e *Env) Memset(dst vm.Addr, c byte, n uint64) {
	if n == 0 {
		return
	}
	e.M.resolveSpan(e.T, mpk.AccessWrite, dst, n)
	e.chargeCopy(n)
	for done := uint64(0); done < n; {
		da := dst.Add(done)
		p := e.M.AS.Page(da)
		off := da.PageOff()
		k := n - done
		if r := vm.PageSize - off; k > r {
			k = r
		}
		chunk := p.Data[off : off+k]
		for i := range chunk {
			chunk[i] = c
		}
		done += k
	}
}

// --- Allocation -------------------------------------------------------------

// HeapAlloc allocates n bytes from the current cubicle's private
// sub-allocator; the pages backing it are owned by and tagged for the
// current cubicle. The sub-allocator serialises concurrent workers with
// the cubicle's inner lock; growing the arena additionally takes the
// global lock in the documented order (alloc.go).
func (e *Env) HeapAlloc(n uint64) vm.Addr {
	return e.M.cubicle(e.T.cur).heap.alloc(e.T, n)
}

// HeapFree releases an allocation made by HeapAlloc in the same cubicle.
func (e *Env) HeapFree(addr vm.Addr) {
	e.M.cubicle(e.T.cur).heap.free_(e.T, addr)
}

// Alloca allocates n bytes on the current cubicle's stack; the space is
// released when the current cross-cubicle call returns. Stack buffers are
// what functions pass by pointer in the paper's running example (Figure 4:
// "char BUF[10]; char pad[4086]" — padding to a page boundary to prevent
// unintended sharing).
func (e *Env) Alloca(n uint64) vm.Addr {
	e.T.clk.Charge(e.M.Costs.Alloca)
	return e.T.alloca(n)
}

// AllocaPage allocates a page-aligned stack buffer of n bytes (padding the
// allocation to whole pages), the alignment discipline §5.3 requires of
// component developers for windowed stack data.
func (e *Env) AllocaPage(n uint64) vm.Addr {
	e.T.clk.Charge(e.M.Costs.Alloca)
	pages := vm.PagesFor(n)
	// Carve enough to guarantee page alignment within the stack region.
	raw := e.T.alloca(uint64(pages)*vm.PageSize + vm.PageSize - 16)
	aligned := (uint64(raw) + vm.PageSize - 1) &^ (vm.PageSize - 1)
	return vm.Addr(aligned)
}

// --- Window API (Table 1) ----------------------------------------------------
//
// The window wrappers take no lock here: each monitor window operation
// locks internally (global lock, then the owner cubicle's inner lock),
// so the journal appends below run outside any lock, on thread-local
// state.

// WindowInit initialises an empty window owned by the current cubicle
// (cubicle_window_init).
func (e *Env) WindowInit() WID {
	wid := e.M.windowInit(e.T, e.T.cur)
	if e.M.sup != nil {
		e.T.journal = append(e.T.journal, undoEntry{kind: undoDestroyWindow,
			owner: e.T.cur, wid: wid})
	}
	return wid
}

// WindowAdd associates the memory range [ptr, ptr+size) with window wid
// (cubicle_window_add). The memory must be owned by the current cubicle.
func (e *Env) WindowAdd(wid WID, ptr vm.Addr, size uint64) {
	e.M.windowAdd(e.T, e.T.cur, wid, ptr, size)
}

// WindowRemove removes the range starting at ptr from window wid
// (cubicle_window_remove).
func (e *Env) WindowRemove(wid WID, ptr vm.Addr) {
	e.M.windowRemove(e.T, e.T.cur, wid, ptr)
}

// WindowOpen allows cubicle cid to access the contents of window wid
// (cubicle_window_open).
func (e *Env) WindowOpen(wid WID, cid ID) {
	if e.M.windowOpen(e.T, e.T.cur, wid, cid) && e.M.sup != nil {
		e.T.journal = append(e.T.journal, undoEntry{kind: undoCloseWindow,
			owner: e.T.cur, wid: wid, grantee: cid})
	}
}

// WindowClose disallows cubicle cid from accessing window wid
// (cubicle_window_close). Pages are not retagged eagerly: causal tag
// consistency (§5.6).
func (e *Env) WindowClose(wid WID, cid ID) {
	e.M.windowClose(e.T, e.T.cur, wid, cid)
}

// WindowCloseAll disallows all accesses to wid from other cubicles
// (cubicle_window_close_all).
func (e *Env) WindowCloseAll(wid WID) {
	e.M.windowCloseAll(e.T, e.T.cur, wid)
}

// WindowDestroy destroys window wid (cubicle_window_destroy).
func (e *Env) WindowDestroy(wid WID) {
	e.M.windowDestroy(e.T, e.T.cur, wid)
}
