// Wall-clock microbenchmarks for the span-resolving access fast path.
// Each bench runs twice: "tlb" with the per-thread software TLB on (the
// default) and "naive" with SetTLBEnabled(false), which forces every
// access through the legacy per-page walk. The pair makes the fast-path
// win directly visible in one `go test -bench Fastpath` run; the virtual
// clock is untouched either way, so these are simulator-speed numbers,
// not modelled CubicleOS numbers.
package cubicle

import (
	"testing"

	"cubicleos/internal/vm"
)

var fastpathVariants = []struct {
	name string
	tlb  bool
}{
	{"tlb", true},
	{"naive", false},
}

// benchWorld boots the FOO/BAR/LIBC pair in full-isolation mode with the
// TLB toggled and a warm 4-page buffer in FOO's heap.
func benchWorld(b *testing.B, tlb bool) (*testSystem, vm.Addr) {
	b.Helper()
	ts := bootPair(b, ModeFull)
	ts.m.SetTLBEnabled(tlb)
	buf := ts.heapIn(b, "FOO", 4*vm.PageSize)
	return ts, buf
}

// BenchmarkFastpathLoadByte is the per-byte checked read loop — the
// hottest pattern in ulibc-style code before the view migration.
func BenchmarkFastpathLoadByte(b *testing.B) {
	for _, v := range fastpathVariants {
		b.Run(v.name, func(b *testing.B) {
			ts, buf := benchWorld(b, v.tlb)
			ts.enter(b, "FOO", func(e *Env) {
				e.StoreByte(buf, 1) // warm the walk/fill
				b.ResetTimer()
				for i := 0; i < b.N; i++ {
					e.LoadByte(buf.Add(uint64(i) & (vm.PageSize - 1)))
				}
			})
		})
	}
}

// BenchmarkFastpathStoreByte is the per-byte checked write loop.
func BenchmarkFastpathStoreByte(b *testing.B) {
	for _, v := range fastpathVariants {
		b.Run(v.name, func(b *testing.B) {
			ts, buf := benchWorld(b, v.tlb)
			ts.enter(b, "FOO", func(e *Env) {
				e.StoreByte(buf, 1)
				b.ResetTimer()
				for i := 0; i < b.N; i++ {
					e.StoreByte(buf.Add(uint64(i)&(vm.PageSize-1)), byte(i))
				}
			})
		})
	}
}

// BenchmarkFastpathReadU64 is the word-granular variant (lwip/httpd
// header parsing).
func BenchmarkFastpathReadU64(b *testing.B) {
	for _, v := range fastpathVariants {
		b.Run(v.name, func(b *testing.B) {
			ts, buf := benchWorld(b, v.tlb)
			ts.enter(b, "FOO", func(e *Env) {
				e.WriteU64(buf, 0xDEADBEEF)
				b.ResetTimer()
				for i := 0; i < b.N; i++ {
					e.ReadU64(buf.Add(uint64(i) & (vm.PageSize - 8)))
				}
			})
		})
	}
}

// BenchmarkFastpathMemcpy4K copies one page between two resident buffers
// — the span check plus the direct page-chunk copy, no staging buffer.
func BenchmarkFastpathMemcpy4K(b *testing.B) {
	for _, v := range fastpathVariants {
		b.Run(v.name, func(b *testing.B) {
			ts, buf := benchWorld(b, v.tlb)
			src, dst := buf, buf.Add(2*vm.PageSize)
			ts.enter(b, "FOO", func(e *Env) {
				e.Memset(src, 0x3C, vm.PageSize)
				b.ResetTimer()
				for i := 0; i < b.N; i++ {
					e.Memcpy(dst, src, vm.PageSize)
				}
				b.StopTimer()
				b.SetBytes(vm.PageSize)
			})
		})
	}
}

// BenchmarkFastpathMemset4K fills one page through the span path.
func BenchmarkFastpathMemset4K(b *testing.B) {
	for _, v := range fastpathVariants {
		b.Run(v.name, func(b *testing.B) {
			ts, buf := benchWorld(b, v.tlb)
			ts.enter(b, "FOO", func(e *Env) {
				b.ResetTimer()
				for i := 0; i < b.N; i++ {
					e.Memset(buf, byte(i), vm.PageSize)
				}
				b.StopTimer()
				b.SetBytes(vm.PageSize)
			})
		})
	}
}
