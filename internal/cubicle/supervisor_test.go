package cubicle

import (
	"errors"
	"testing"

	"cubicleos/internal/vm"
)

// faultSVC makes one contained call into SVC with a foreign address and
// asserts it was contained.
func faultSVC(t *testing.T, ts *testSystem, appBuf vm.Addr) *ContainedFault {
	t.Helper()
	var cf *ContainedFault
	ts.enter(t, "APP", func(e *Env) {
		h := ts.m.MustResolve(e.Cubicle(), "SVC", "svc_touch")
		cf = CatchContained(func() { h.Call(e, uint64(appBuf)) })
	})
	if cf == nil {
		t.Fatal("fault in SVC was not contained")
	}
	return cf
}

// callSVCOk calls svc_ok and returns the contained fault, if any.
func callSVCOk(t *testing.T, ts *testSystem) (ret uint64, cf *ContainedFault) {
	t.Helper()
	ts.enter(t, "APP", func(e *Env) {
		h := ts.m.MustResolve(e.Cubicle(), "SVC", "svc_ok")
		cf = CatchContained(func() { ret = h.Call(e)[0] })
	})
	return ret, cf
}

func TestSupervisorRestartAfterBackoff(t *testing.T) {
	policy := DefaultRestartPolicy()
	hookRuns := 0
	ts := bootFaulty(t, policy, &hookRuns)
	appBuf := ts.heapIn(t, "APP", 8)
	svc := ts.cubs["SVC"]

	// Put some heap state into SVC so the restart has pages to reclaim.
	ts.enter(t, "APP", func(e *Env) {
		h := ts.m.MustResolve(e.Cubicle(), "SVC", "svc_alloc")
		if addr := h.Call(e, 4*vm.PageSize)[0]; addr == 0 {
			t.Fatal("svc_alloc failed")
		}
	})
	faultSVC(t, ts, appBuf)

	// Before the backoff expires, calls are refused without a restart.
	if _, cf := callSVCOk(t, ts); cf == nil || !errors.Is(cf, ErrQuarantined) {
		t.Fatalf("call before backoff expiry: got %v, want ErrQuarantined", cf)
	}
	if svc.Restarts() != 0 {
		t.Fatalf("restarted before backoff expiry")
	}

	// Advance the virtual clock past the backoff: the next call restarts
	// SVC in place and succeeds.
	ts.m.Clock.Charge(policy.BackoffMax)
	before := ts.m.Clock.Cycles()
	ret, cf := callSVCOk(t, ts)
	if cf != nil {
		t.Fatalf("call after backoff expiry failed: %v", cf)
	}
	if ret != 7 {
		t.Errorf("svc_ok returned %d after restart, want 7", ret)
	}
	if svc.Health() != Healthy || svc.Restarts() != 1 {
		t.Errorf("health=%v restarts=%d, want Healthy/1", svc.Health(), svc.Restarts())
	}
	if hookRuns != 1 {
		t.Errorf("OnRestart hook ran %d times, want 1", hookRuns)
	}
	if got := ts.m.Clock.Cycles() - before; got < policy.RestartCost {
		t.Errorf("restart charged %d cycles, want >= RestartCost %d", got, policy.RestartCost)
	}
	if ts.m.Stats.Restarts != 1 {
		t.Errorf("Stats.Restarts = %d, want 1", ts.m.Stats.Restarts)
	}
	// The faulted incarnation's heap pages were reclaimed: only the pages
	// the new incarnation touched (fresh stack) may be owned by SVC.
	heapPages := 0
	ts.m.AS.ForEachPage(func(pn uint64, p *vm.Page) {
		if ID(p.Owner) == svc.ID && p.Type == vm.PageHeap {
			heapPages++
		}
	})
	if heapPages != 0 {
		t.Errorf("%d heap pages still owned by SVC after restart", heapPages)
	}
	if err := errors.Unwrap(svc.LastFault()); err != nil {
		_ = err // LastFault is informational; just ensure it is set
	}
	if svc.LastFault() == nil {
		t.Error("LastFault not recorded")
	}
}

func TestSupervisorDeathAfterRestartExhaustion(t *testing.T) {
	policy := DefaultRestartPolicy()
	policy.MaxRestarts = 2
	policy.RestartWindow = 1 << 62 // nothing ever ages out
	ts := bootFaulty(t, policy, nil)
	appBuf := ts.heapIn(t, "APP", 8)
	svc := ts.cubs["SVC"]

	for i := 0; i < 2; i++ {
		faultSVC(t, ts, appBuf)
		ts.m.Clock.Charge(policy.BackoffMax)
		if _, cf := callSVCOk(t, ts); cf != nil {
			t.Fatalf("restart %d refused: %v", i+1, cf)
		}
	}
	// Third fault: the budget is exhausted, the refused restart kills it.
	faultSVC(t, ts, appBuf)
	ts.m.Clock.Charge(policy.BackoffMax)
	if _, cf := callSVCOk(t, ts); cf == nil || !errors.Is(cf, ErrDead) {
		t.Fatalf("call after exhaustion: got %v, want ErrDead", cf)
	}
	if svc.Health() != Dead {
		t.Errorf("health = %v, want Dead", svc.Health())
	}
	sup := ts.m.Supervisor()
	if sup.Deaths() != 1 {
		t.Errorf("Deaths() = %d, want 1", sup.Deaths())
	}
	// Dead is permanent: even after more virtual time, still refused.
	ts.m.Clock.Charge(1 << 40)
	if _, cf := callSVCOk(t, ts); cf == nil || !errors.Is(cf, ErrDead) {
		t.Fatalf("dead cubicle answered: %v", cf)
	}
	if svc.Restarts() != 2 {
		t.Errorf("Restarts() = %d, want 2", svc.Restarts())
	}
}

// TestSupervisorDeathHappensExactlyOnce: exhausting the restart budget
// transitions Quarantined→Dead exactly once — further faults, calls and
// virtual time must neither resurrect the cubicle nor record more deaths,
// so the health surfaced by cubicle-inspect stays consistent forever.
func TestSupervisorDeathHappensExactlyOnce(t *testing.T) {
	policy := DefaultRestartPolicy()
	policy.MaxRestarts = 1
	policy.RestartWindow = 1 << 62
	ts := bootFaulty(t, policy, nil)
	appBuf := ts.heapIn(t, "APP", 8)
	svc := ts.cubs["SVC"]

	faultSVC(t, ts, appBuf)
	ts.m.Clock.Charge(policy.BackoffMax)
	if _, cf := callSVCOk(t, ts); cf != nil {
		t.Fatalf("first restart refused: %v", cf)
	}
	faultSVC(t, ts, appBuf)
	ts.m.Clock.Charge(policy.BackoffMax)
	if _, cf := callSVCOk(t, ts); cf == nil || !errors.Is(cf, ErrDead) {
		t.Fatalf("call after exhaustion: got %v, want ErrDead", cf)
	}
	sup := ts.m.Supervisor()
	if svc.Health() != Dead || sup.Deaths() != 1 {
		t.Fatalf("health=%v deaths=%d, want Dead/1", svc.Health(), sup.Deaths())
	}
	// Hammer the corpse: every poke is refused with ErrDead, the death
	// counter never moves again, and health never leaves Dead.
	for i := 0; i < 5; i++ {
		ts.m.Clock.Charge(policy.BackoffMax * 10)
		if _, cf := callSVCOk(t, ts); cf == nil || !errors.Is(cf, ErrDead) {
			t.Fatalf("poke %d: got %v, want ErrDead", i, cf)
		}
	}
	if sup.Deaths() != 1 {
		t.Errorf("Deaths() = %d after repeated pokes, want still 1", sup.Deaths())
	}
	if svc.Health() != Dead {
		t.Errorf("health = %v after repeated pokes, want still Dead", svc.Health())
	}
	if svc.Restarts() != 1 {
		t.Errorf("Restarts() = %d, want 1 (the single consumed budget)", svc.Restarts())
	}
}

// TestSupervisorRestartWindowSlides: restarts age out of the sliding
// window, so a cubicle that faults rarely never accumulates enough
// strikes to die, no matter how long the system runs.
func TestSupervisorRestartWindowSlides(t *testing.T) {
	policy := DefaultRestartPolicy()
	policy.MaxRestarts = 2
	policy.RestartWindow = 1_000_000
	ts := bootFaulty(t, policy, nil)
	appBuf := ts.heapIn(t, "APP", 8)
	svc := ts.cubs["SVC"]

	for i := 0; i < 5; i++ {
		faultSVC(t, ts, appBuf)
		ts.m.Clock.Charge(policy.BackoffMax)
		if _, cf := callSVCOk(t, ts); cf != nil {
			t.Fatalf("restart %d refused: %v", i+1, cf)
		}
		// Let the strike age past the window before the next fault.
		ts.m.Clock.Charge(policy.RestartWindow * 2)
	}
	if svc.Health() != Healthy {
		t.Errorf("health = %v after spaced faults, want Healthy", svc.Health())
	}
	if svc.Restarts() != 5 {
		t.Errorf("Restarts() = %d, want 5", svc.Restarts())
	}
	if ts.m.Supervisor().Deaths() != 0 {
		t.Errorf("Deaths() = %d, want 0 — spaced faults must never kill", ts.m.Supervisor().Deaths())
	}
}

func TestSupervisorBackoffEscalatesOnVirtualClock(t *testing.T) {
	policy := DefaultRestartPolicy()
	ts := bootFaulty(t, policy, nil)
	appBuf := ts.heapIn(t, "APP", 8)
	svc := ts.cubs["SVC"]

	faultSVC(t, ts, appBuf)
	first := svc.restartAt - ts.m.Clock.Cycles()
	if first != policy.BackoffBase {
		t.Fatalf("first backoff = %d, want BackoffBase %d", first, policy.BackoffBase)
	}
	// Expire the backoff; the next svc_touch call restarts SVC and then
	// faults again immediately — a consecutive fault, so the backoff doubles.
	ts.m.Clock.Charge(policy.BackoffMax)
	faultSVC(t, ts, appBuf)
	second := svc.restartAt - ts.m.Clock.Cycles()
	if second != policy.BackoffBase*policy.BackoffFactor {
		t.Fatalf("second consecutive backoff = %d, want %d",
			second, policy.BackoffBase*policy.BackoffFactor)
	}
	// A healthy call in between resets the streak.
	ts.m.Clock.Charge(policy.BackoffMax)
	if _, cf := callSVCOk(t, ts); cf != nil {
		t.Fatalf("recovery call failed: %v", cf)
	}
	faultSVC(t, ts, appBuf)
	third := svc.restartAt - ts.m.Clock.Cycles()
	if third != policy.BackoffBase {
		t.Errorf("backoff after healthy call = %d, want reset to BackoffBase %d",
			third, policy.BackoffBase)
	}
}

func TestSupervisorBackoffCap(t *testing.T) {
	s := &Supervisor{policy: RestartPolicy{
		BackoffBase: 100, BackoffFactor: 2, BackoffMax: 1000,
	}}
	for n, want := range map[int]uint64{1: 100, 2: 200, 3: 400, 4: 800, 5: 1000, 50: 1000} {
		if got := s.backoffFor(n); got != want {
			t.Errorf("backoffFor(%d) = %d, want %d", n, got, want)
		}
	}
	// Overflow-safe for absurd consecutive-fault counts.
	s.policy.BackoffMax = 1 << 63
	if got := s.backoffFor(500); got != 1<<63 {
		t.Errorf("backoffFor(500) = %d, want the cap", got)
	}
}

// TestSupervisorRefusesRestartUnderLiveFrame: a cubicle with a frame still
// on any thread's stack must not be reinitialised out from under it.
func TestSupervisorRefusesRestartUnderLiveFrame(t *testing.T) {
	ts := bootFaulty(t, DefaultRestartPolicy(), nil)
	svc := ts.cubs["SVC"]
	svc.health = Quarantined
	svc.restartAt = 0
	ts.enter(t, "SVC", func(e *Env) {
		if ts.m.sup.restart(nil, svc) {
			t.Error("restart succeeded while SVC had a live frame")
		}
	})
	if svc.Health() != Quarantined {
		t.Errorf("health = %v, want still Quarantined", svc.Health())
	}
	// With the frame gone the same restart goes through.
	if !ts.m.sup.restart(nil, svc) {
		t.Error("restart refused with no live frames")
	}
	if svc.Health() != Healthy {
		t.Errorf("health = %v, want Healthy", svc.Health())
	}
}

func TestWatchdogRaisesBudgetFault(t *testing.T) {
	policy := DefaultRestartPolicy()
	policy.CrossingBudget = 100_000
	ts := bootFaulty(t, policy, nil)
	svc := ts.cubs["SVC"]
	ts.enter(t, "APP", func(e *Env) {
		h := ts.m.MustResolve(e.Cubicle(), "SVC", "svc_spin")
		cf := CatchContained(func() { h.Call(e, 1_000_000) })
		if cf == nil {
			t.Fatal("runaway crossing was not contained")
		}
		var bf *BudgetFault
		if !errors.As(cf, &bf) {
			t.Fatalf("cause = %v, want a *BudgetFault", cf.Cause)
		}
		if bf.Used <= bf.Budget || bf.Budget != policy.CrossingBudget {
			t.Errorf("budget fault used=%d budget=%d", bf.Used, bf.Budget)
		}
	})
	if svc.Health() != Quarantined {
		t.Errorf("runaway cubicle health = %v, want Quarantined", svc.Health())
	}
	found := false
	for _, cc := range ts.m.Supervisor().ContainedByClass() {
		if cc.Class == "budget" && cc.Count == 1 {
			found = true
		}
	}
	if !found {
		t.Errorf("ContainedByClass() = %v, want budget:1", ts.m.Supervisor().ContainedByClass())
	}
}
