package cubicle

import (
	"reflect"
	"sync"
	"testing"

	"cubicleos/internal/trace"
	"cubicleos/internal/vm"
)

// newWorker creates a thread placed on the given core with its own Env.
func newWorker(m *Monitor, core int) *Env {
	t := m.NewThread()
	m.SetThreadCore(t, core)
	return m.NewEnv(t)
}

// enterOn switches a worker thread into the named cubicle the way the
// boot loader enters application mains. The PKRU computation touches the
// key registry, so it runs under the global lock.
func enterOn(ts *testSystem, e *Env, name string) {
	cub := ts.cubs[name]
	m := ts.m
	e.T.pushFrame(cub.ID, true)
	if m.Mode.MPKEnabled() {
		m.lockGlobal(e.T)
		p := m.pkruFor(cub.ID)
		m.unlockGlobal(e.T)
		m.wrpkru(e.T, p)
	}
}

func leaveOn(ts *testSystem, e *Env) {
	e.T.popFrame()
}

// TestShootdownInvalidatesRemoteTLBs is the unit contract of the
// libmpk-style retag sync: on a 2-core monitor a shootdown clears the
// page's translation in every OTHER thread's span TLB, charges
// ShootdownIPI per remote core to the retagging thread, and records one
// shootdown event; the retagging thread's own entry stays (it is
// revalidated against live state on its next lookup).
func TestShootdownInvalidatesRemoteTLBs(t *testing.T) {
	ts := bootPair(t, ModeFull)
	m := ts.m
	m.EnableSMP(2)
	e1 := newWorker(m, 1)
	t0 := ts.env.T // boot thread stays on core 0

	addr := ts.heapIn(t, "FOO", 64)
	pn := addr.PageNum()

	// Fill both threads' TLBs (both run as the monitor here, which may
	// read anything).
	_ = ts.env.LoadByte(addr)
	_ = e1.LoadByte(addr)
	if !e1.T.tlbHolds(pn) {
		t.Fatalf("remote TLB not primed for pn %d", pn)
	}

	before := t0.clk.Cycles()
	m.lockGlobal(t0)
	m.shootdown(t0, ts.cubs["FOO"].ID, pn)
	m.unlockGlobal(t0)

	if e1.T.tlbHolds(pn) {
		t.Fatalf("remote TLB entry survived the shootdown")
	}
	if !t0.tlbHolds(pn) {
		t.Fatalf("shootdown cleared the retagging thread's own entry")
	}
	wantCost := m.Costs.ShootdownIPI // one remote core
	if got := t0.clk.Cycles() - before; got != wantCost {
		t.Fatalf("shootdown charged %d cycles, want %d", got, wantCost)
	}
	m.FoldStats()
	if m.Stats.TLBShootdowns != 1 || m.Stats.TLBShootdownInvalidations != 1 {
		t.Fatalf("shootdown counters = %d/%d, want 1/1",
			m.Stats.TLBShootdowns, m.Stats.TLBShootdownInvalidations)
	}
}

// TestShootdownSingleCoreIsFree pins the byte-identity guarantee: without
// EnableSMP a shootdown charges nothing, clears nothing and counts
// nothing — the pre-SMP cost model is untouched.
func TestShootdownSingleCoreIsFree(t *testing.T) {
	ts := bootPair(t, ModeFull)
	m := ts.m
	addr := ts.heapIn(t, "FOO", 64)
	_ = ts.env.LoadByte(addr)
	before := m.Clock.Cycles()
	m.shootdown(ts.env.T, ts.cubs["FOO"].ID, addr.PageNum())
	if m.Clock.Cycles() != before {
		t.Fatalf("single-core shootdown charged cycles")
	}
	if m.Stats.TLBShootdowns != 0 || m.Stats.TLBShootdownInvalidations != 0 {
		t.Fatalf("single-core shootdown counted: %d/%d",
			m.Stats.TLBShootdowns, m.Stats.TLBShootdownInvalidations)
	}
	if !ts.env.T.tlbHolds(addr.PageNum()) {
		t.Fatalf("single-core shootdown cleared the local entry")
	}
}

// TestSMPRetagShootsDownEndToEnd drives a real trap-and-map retag on core
// 0 while core 1 holds the page's translation, and asserts the retag
// carried a shootdown: the remote entry is gone, the counters moved, and
// the trace recorded the shootdown with the retagging thread's core.
func TestSMPRetagShootsDownEndToEnd(t *testing.T) {
	ts := bootPair(t, ModeFull)
	m := ts.m
	trc := m.EnableTracing(1 << 12)
	m.EnableSMP(2)
	e1 := newWorker(m, 1)

	addr := ts.heapIn(t, "FOO", 64)
	pn := addr.PageNum()
	_ = e1.LoadByte(addr) // prime the remote translation
	// A crossing on core 1, so the trace holds events from both cores.
	m.MustResolve(MonitorID, "FOO", "foo_noop").Call(e1)

	barID := ts.cubs["BAR"].ID
	ts.enter(t, "FOO", func(e *Env) {
		wid := e.WindowInit()
		e.WindowAdd(wid, addr, 64)
		e.WindowOpen(wid, barID)
		h := m.MustResolve(e.Cubicle(), "BAR", "bar")
		h.Call(e, uint64(addr), 3) // BAR's store traps and retags the page
	})

	m.FoldStats()
	if m.Stats.Retags == 0 {
		t.Fatalf("workload performed no retag")
	}
	if m.Stats.TLBShootdowns == 0 {
		t.Fatalf("SMP retag recorded no shootdown")
	}
	if e1.T.tlbHolds(pn) {
		t.Fatalf("remote translation survived the retag")
	}
	// The trace view and the live counters must agree, shootdowns included.
	if got := StatsFromTrace(trc); !reflect.DeepEqual(got, m.Stats) {
		t.Fatalf("StatsFromTrace diverged:\n got  %+v\n want %+v", got, m.Stats)
	}
	// Events carry the recording thread's core.
	core1 := false
	for _, ev := range trc.Events() {
		if ev.Core == 1 {
			core1 = true
			break
		}
	}
	if !core1 {
		t.Fatalf("no trace event stamped with core 1")
	}
}

// smpCrossingWorkload runs the two-worker retag ping-pong and returns the
// per-core clock readings plus final stats. Worker c enters FOO, opens a
// window on its own page to BAR, and alternates BAR-writes (retag to BAR)
// with its own stores (retag back to FOO) — every iteration crosses
// cubicles, traps, retags and shoots down.
func smpCrossingWorkload(t *testing.T, iters int) ([2]uint64, Stats, Stats) {
	t.Helper()
	ts := bootPair(t, ModeFull)
	m := ts.m
	trc := m.EnableTracing(1 << 14)
	m.EnableSMP(2)
	workers := [2]*Env{newWorker(m, 0), newWorker(m, 1)}
	barID := ts.cubs["BAR"].ID

	// Per-worker pages, allocated before the goroutines start.
	addrs := [2]vm.Addr{ts.heapIn(t, "FOO", 64), ts.heapIn(t, "FOO", 64)}
	barH := m.MustResolve(ts.cubs["FOO"].ID, "BAR", "bar")

	var wg sync.WaitGroup
	for c := 0; c < 2; c++ {
		wg.Add(1)
		go func(c int) {
			defer wg.Done()
			e := workers[c]
			enterOn(ts, e, "FOO")
			defer leaveOn(ts, e)
			wid := e.WindowInit()
			e.WindowAdd(wid, addrs[c], 64)
			e.WindowOpen(wid, barID)
			for i := 0; i < iters; i++ {
				barH.Call(e, uint64(addrs[c]), uint64(i%64))
				e.StoreByte(addrs[c], byte(i))
			}
		}(c)
	}
	wg.Wait()
	m.FoldStats() // merge the workers' staged counter shards

	var clocks [2]uint64
	for c := 0; c < 2; c++ {
		clocks[c] = m.CoreClock(c).Cycles()
	}
	return clocks, m.Stats, StatsFromTrace(trc)
}

// TestSMPParallelRetagsDeterministic is the monitor-level determinism and
// race gate: two worker goroutines hammer cross-cubicle calls and
// trap-and-map retags concurrently, and five runs must produce identical
// per-core clocks and identical stats — the goroutine interleaving is not
// allowed to leak into virtual time. StatsFromTrace equality over the
// multi-core trace rides along, and -race checks the big-lock protocol.
func TestSMPParallelRetagsDeterministic(t *testing.T) {
	const iters = 40
	clocks0, stats0, fromTrace0 := smpCrossingWorkload(t, iters)
	if stats0.TLBShootdowns == 0 {
		t.Fatalf("workload produced no shootdowns")
	}
	if stats0.CallsTotal == 0 || stats0.Retags == 0 {
		t.Fatalf("workload too idle: %+v", stats0)
	}
	if !reflect.DeepEqual(fromTrace0, stats0) {
		t.Fatalf("StatsFromTrace diverged on SMP run:\n got  %+v\n want %+v", fromTrace0, stats0)
	}
	for run := 1; run < 5; run++ {
		clocks, stats, fromTrace := smpCrossingWorkload(t, iters)
		if clocks != clocks0 {
			t.Fatalf("run %d per-core clocks diverged: %v vs %v", run, clocks, clocks0)
		}
		if !reflect.DeepEqual(stats, stats0) {
			t.Fatalf("run %d stats diverged:\n got  %+v\n want %+v", run, stats, stats0)
		}
		if !reflect.DeepEqual(fromTrace, stats) {
			t.Fatalf("run %d trace view diverged", run)
		}
	}
}

// smpMergedStream runs the crossing ping-pong on the given number of
// cores — one worker goroutine per core, each with its own page — and
// returns the merged (Cycle, Core, Seq)-ordered trace stream plus both
// stats views.
func smpMergedStream(t *testing.T, cores, iters int) ([]trace.Event, Stats, Stats) {
	t.Helper()
	ts := bootPair(t, ModeFull)
	m := ts.m
	trc := m.EnableTracing(1 << 14)
	m.EnableSMP(cores)
	barID := ts.cubs["BAR"].ID
	barH := m.MustResolve(ts.cubs["FOO"].ID, "BAR", "bar")

	workers := make([]*Env, cores)
	addrs := make([]vm.Addr, cores)
	// Page-sized buffers so every worker retags its own page: 64-byte
	// allocations would share one heap page, and concurrent retags of a
	// shared page have interleaving-dependent invalidation counts.
	for c := range workers {
		workers[c] = newWorker(m, c)
		addrs[c] = ts.heapIn(t, "FOO", 4096)
	}

	// Window setup runs sequentially in core order: window ids come from a
	// shared counter, so concurrent setup would leak the goroutine
	// interleaving into the window_op events' payloads. The crossing loop
	// itself touches only per-worker pages and is interleaving-proof.
	for c := 0; c < cores; c++ {
		e := workers[c]
		enterOn(ts, e, "FOO")
		wid := e.WindowInit()
		e.WindowAdd(wid, addrs[c], 64)
		e.WindowOpen(wid, barID)
	}

	var wg sync.WaitGroup
	for c := 0; c < cores; c++ {
		wg.Add(1)
		go func(c int) {
			defer wg.Done()
			e := workers[c]
			for i := 0; i < iters; i++ {
				barH.Call(e, uint64(addrs[c]), uint64(i%64))
				e.StoreByte(addrs[c], byte(i))
			}
		}(c)
	}
	wg.Wait()
	for c := 0; c < cores; c++ {
		leaveOn(ts, workers[c])
	}
	m.FoldStats()
	return trc.Events(), m.Stats, StatsFromTrace(trc)
}

// TestSMPMergedStreamDeterministic is the observability determinism gate
// at cores=4: five runs of the four-worker crossing workload must merge
// to byte-identical event streams — not just matching counters, the full
// (Cycle, Core, Seq)-ordered sequence with symbols and payloads. Any
// goroutine-interleaving leak into event ordering or cycle stamps fails
// DeepEqual immediately.
func TestSMPMergedStreamDeterministic(t *testing.T) {
	const cores, iters = 4, 25
	evs0, stats0, fromTrace0 := smpMergedStream(t, cores, iters)
	if len(evs0) == 0 {
		t.Fatalf("workload recorded no events")
	}
	seen := make(map[int16]bool)
	for _, ev := range evs0 {
		seen[ev.Core] = true
	}
	for c := int16(0); c < cores; c++ {
		if !seen[c] {
			t.Fatalf("no events from core %d in the merged stream", c)
		}
	}
	if !reflect.DeepEqual(fromTrace0, stats0) {
		t.Fatalf("StatsFromTrace diverged at cores=%d:\n got  %+v\n want %+v",
			cores, fromTrace0, stats0)
	}
	for run := 1; run < 5; run++ {
		evs, stats, _ := smpMergedStream(t, cores, iters)
		if !reflect.DeepEqual(stats, stats0) {
			t.Fatalf("run %d stats diverged:\n got  %+v\n want %+v", run, stats, stats0)
		}
		if len(evs) != len(evs0) {
			t.Fatalf("run %d merged %d events, run 0 merged %d", run, len(evs), len(evs0))
		}
		if !reflect.DeepEqual(evs, evs0) {
			for i := range evs {
				if evs[i] != evs0[i] {
					t.Fatalf("run %d merged stream diverged at event %d:\n got  %+v\n want %+v",
						run, i, evs[i], evs0[i])
				}
			}
			t.Fatalf("run %d merged stream diverged", run)
		}
	}
}

// TestSMPLockReentrancy pins the global lock's reentrancy: nested
// acquisition by the owning thread must not deadlock, and the lock must
// hand over cleanly between threads.
func TestSMPLockReentrancy(t *testing.T) {
	ts := bootPair(t, ModeFull)
	m := ts.m
	m.EnableSMP(2)
	t0, e1 := ts.env.T, newWorker(m, 1)

	m.lockGlobal(t0)
	m.lockGlobal(t0) // reentrant: depth bump, no deadlock
	m.unlockGlobal(t0)

	released := make(chan struct{})
	go func() {
		m.lockGlobal(e1.T)
		m.unlockGlobal(e1.T)
		close(released)
	}()
	m.unlockGlobal(t0)
	<-released
}

// TestSMPCoreClocksIndependent asserts threads charge their own core's
// clock: work on core 1 must not advance core 0.
func TestSMPCoreClocksIndependent(t *testing.T) {
	ts := bootPair(t, ModeFull)
	m := ts.m
	m.EnableSMP(2)
	e1 := newWorker(m, 1)
	before0, before1 := m.CoreClock(0).Cycles(), m.CoreClock(1).Cycles()
	e1.Work(10_000)
	if got := m.CoreClock(0).Cycles(); got != before0 {
		t.Fatalf("core 0 clock moved by core 1 work: %d -> %d", before0, got)
	}
	if got := m.CoreClock(1).Cycles(); got <= before1 {
		t.Fatalf("core 1 clock did not advance")
	}
	if now := m.smpNow(); now < m.CoreClock(1).Cycles() {
		t.Fatalf("smpNow %d below core 1 clock", now)
	}
}
