package cubicle

import (
	"testing"

	"cubicleos/internal/vm"
)

func TestPinnedWindowEliminatesFaults(t *testing.T) {
	ts := bootPair(t, ModeFull)
	buf := ts.heapIn(t, "FOO", vm.PageSize)
	ts.enter(t, "FOO", func(e *Env) {
		barID := e.CubicleOf("BAR")
		wid := e.WindowInit()
		e.WindowAdd(wid, buf, vm.PageSize)
		e.WindowOpen(wid, barID)
		e.WindowPin(wid)
		h := ts.m.MustResolve(e.Cubicle(), "BAR", "bar")
		faults := ts.m.Stats.Faults
		for i := 0; i < 10; i++ {
			h.Call(e, uint64(buf), uint64(i))  // BAR writes
			_ = e.LoadByte(buf.Add(uint64(i))) // FOO reads back
		}
		if ts.m.Stats.Faults != faults {
			t.Errorf("pinned window still faulted %d times", ts.m.Stats.Faults-faults)
		}
	})
}

func TestPinnedWindowRevokesEagerly(t *testing.T) {
	ts := bootPair(t, ModeFull)
	buf := ts.heapIn(t, "FOO", vm.PageSize)
	ts.enter(t, "FOO", func(e *Env) {
		barID := e.CubicleOf("BAR")
		wid := e.WindowInit()
		e.WindowAdd(wid, buf, vm.PageSize)
		e.WindowOpen(wid, barID)
		e.WindowPin(wid)
		h := ts.m.MustResolve(e.Cubicle(), "BAR", "bar")
		h.Call(e, uint64(buf), 0)
		// Closing a pinned window revokes without the owner having to
		// touch the page first (unlike causal trap-and-map).
		e.WindowClose(wid, barID)
		err := mustFault(t, func() { h.Call(e, uint64(buf), 1) })
		if _, ok := err.(*ProtectionFault); !ok {
			t.Fatalf("got %T, want *ProtectionFault", err)
		}
	})
}

func TestPinnedWindowAddRetags(t *testing.T) {
	ts := bootPair(t, ModeFull)
	buf1 := ts.heapIn(t, "FOO", vm.PageSize)
	buf2 := ts.heapIn(t, "FOO", vm.PageSize)
	ts.enter(t, "FOO", func(e *Env) {
		barID := e.CubicleOf("BAR")
		wid := e.WindowInit()
		e.WindowAdd(wid, buf1, vm.PageSize)
		e.WindowOpen(wid, barID)
		e.WindowPin(wid)
		e.WindowAdd(wid, buf2, vm.PageSize) // added after pinning
		h := ts.m.MustResolve(e.Cubicle(), "BAR", "bar")
		faults := ts.m.Stats.Faults
		h.Call(e, uint64(buf2), 3)
		if ts.m.Stats.Faults != faults {
			t.Error("range added to pinned window still faults")
		}
	})
}

func TestUnpinRestoresTrapAndMap(t *testing.T) {
	ts := bootPair(t, ModeFull)
	buf := ts.heapIn(t, "FOO", vm.PageSize)
	ts.enter(t, "FOO", func(e *Env) {
		barID := e.CubicleOf("BAR")
		wid := e.WindowInit()
		e.WindowAdd(wid, buf, vm.PageSize)
		e.WindowOpen(wid, barID)
		e.WindowPin(wid)
		e.WindowUnpin(wid)
		h := ts.m.MustResolve(e.Cubicle(), "BAR", "bar")
		faults := ts.m.Stats.Faults
		h.Call(e, uint64(buf), 0)
		if ts.m.Stats.Faults == faults {
			t.Error("unpinned window did not fall back to trap-and-map")
		}
		// And the pin key must be reusable.
		wid2 := e.WindowInit()
		buf2 := e.HeapAlloc(vm.PageSize)
		e.WindowAdd(wid2, buf2, vm.PageSize)
		e.WindowPin(wid2)
		e.WindowDestroy(wid2) // destroy unpins too
	})
}

func TestPinnedWindowThirdPartyStillDenied(t *testing.T) {
	ts := bootPair(t, ModeFull)
	buf := ts.heapIn(t, "FOO", vm.PageSize)
	ts.enter(t, "FOO", func(e *Env) {
		barID := e.CubicleOf("BAR")
		wid := e.WindowInit()
		e.WindowAdd(wid, buf, vm.PageSize)
		e.WindowOpen(wid, barID)
		e.WindowPin(wid)
	})
	// BAZ is not a grantee: its PKRU must not include the pin key.
	ts.enter(t, "BAZ", func(e *Env) {
		if err := Catch(func() { e.LoadByte(buf) }); err == nil {
			t.Fatal("third cubicle read a pinned window")
		}
	})
}

func TestPinKeyExhaustion(t *testing.T) {
	ts := bootPair(t, ModeFull)
	// 4 isolated cubicles (FOO/BAR/BAZ + app-less LIBC is shared) hold
	// keys; pin windows until the pool runs dry.
	ts.enter(t, "FOO", func(e *Env) {
		var lastErr error
		for i := 0; i < 20; i++ {
			buf := e.HeapAlloc(vm.PageSize)
			wid := e.WindowInit()
			e.WindowAdd(wid, buf, vm.PageSize)
			if err := Catch(func() { e.WindowPin(wid) }); err != nil {
				lastErr = err
				break
			}
		}
		if lastErr == nil {
			t.Fatal("pin-key pool never ran out (16-key hardware limit not modelled)")
		}
		if _, ok := lastErr.(*APIError); !ok {
			t.Fatalf("got %T, want *APIError", lastErr)
		}
	})
}

func TestPinOnlyByOwner(t *testing.T) {
	ts := bootPair(t, ModeFull)
	buf := ts.heapIn(t, "FOO", vm.PageSize)
	var wid WID
	ts.enter(t, "FOO", func(e *Env) {
		wid = e.WindowInit()
		e.WindowAdd(wid, buf, vm.PageSize)
	})
	ts.enter(t, "BAR", func(e *Env) {
		err := mustFault(t, func() { e.WindowPin(wid) })
		if _, ok := err.(*APIError); !ok {
			t.Fatalf("got %T, want *APIError", err)
		}
	})
}
