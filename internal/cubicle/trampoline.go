package cubicle

import (
	"fmt"

	"cubicleos/internal/isa"
	"cubicleos/internal/mpk"
	"cubicleos/internal/vm"
)

// Fn is the uniform binary interface of component entry points: argument
// and result words are 64-bit values in which pointers are simulated
// virtual addresses. The first RegArgs words travel in registers; any
// additional StackBytes of argument data travel on the stack and are
// copied across per-cubicle stacks by the trampoline (§5.5).
type Fn func(e *Env, args []uint64) []uint64

// Trampoline is a cross-cubicle call thunk generated and signed by the
// trusted builder (§5.2/§5.5). It switches memory access permissions
// between the caller's and callee's MPK keys with wrpkru, switches
// per-cubicle stacks, and copies in-stack arguments across them.
type Trampoline struct {
	id         uint32
	callee     ID
	component  string
	sym        string
	symbol     string // cached "component.symbol", so hot paths never concatenate
	fn         Fn
	regArgs    int
	stackBytes int
	sig        [32]byte // builder signature verified by the loader

	// thunkAddr is the trampoline code thunk's page in the monitor's
	// cubicle; guards maps caller cubicles to their guard pages (§5.5).
	thunkAddr vm.Addr
	guards    map[ID]vm.Addr
}

// Symbol returns the trampoline's "component.symbol" name.
func (tr *Trampoline) Symbol() string {
	if tr.symbol == "" {
		tr.symbol = tr.component + "." + tr.sym
	}
	return tr.symbol
}

// Handle is a resolved cross-cubicle call target: the dynamic-symbol
// binding the loader installs so that calls "go through the appropriate
// trampolines" (§5.4). A handle is bound to the cubicle it was resolved
// for; using it from any other cubicle is a control-flow-integrity
// violation (it would mean executing another cubicle's guard page).
type Handle struct {
	m      *Monitor
	tr     *Trampoline
	caller ID
}

// Valid reports whether the handle is bound.
func (h Handle) Valid() bool { return h.tr != nil }

// Symbol returns the symbol the handle is bound to.
func (h Handle) Symbol() string {
	if h.tr == nil {
		return "<nil>"
	}
	return h.tr.Symbol()
}

// guardInfo lets the monitor recognise control transfers into guard and
// thunk pages for CFI checks.
type guardInfo struct {
	tramp   *Trampoline
	caller  ID // cubicle the guard page belongs to
	isThunk bool
}

// Resolve binds caller to the exported symbol sym of component comp,
// installing the guard page for this caller if it does not exist yet.
// Resolution fails if the symbol is not a public entry point — this is
// the CFI property that "untrusted components only interact via their
// intended interfaces" (§3).
func (m *Monitor) Resolve(caller ID, comp, sym string) (Handle, error) {
	cub, ok := m.compOf[comp]
	if !ok {
		return Handle{}, fmt.Errorf("cubicle: unknown component %q", comp)
	}
	tr, ok := cub.exports[sym]
	if !ok {
		return Handle{}, fmt.Errorf("cubicle: %q is not a public entry point of component %q", sym, comp)
	}
	m.installGuard(tr, caller)
	return Handle{m: m, tr: tr, caller: caller}, nil
}

// MustResolve is Resolve for boot-time wiring, where failure is a
// deployment bug.
func (m *Monitor) MustResolve(caller ID, comp, sym string) Handle {
	h, err := m.Resolve(caller, comp, sym)
	if err != nil {
		panic(err)
	}
	return h
}

// installGuard materialises the guard page for (trampoline, caller) in the
// caller's cubicle: execute-only, containing wrpkru + jmp + nop slide
// (§5.5 hardware support).
func (m *Monitor) installGuard(tr *Trampoline, caller ID) {
	if tr.callee == caller {
		return // same-cubicle call needs no guard
	}
	if m.cubicle(tr.callee).Kind == KindShared {
		return // shared cubicles are entered directly, no TCB involved
	}
	if _, ok := tr.guards[caller]; ok {
		return
	}
	addr := m.MapOwned(caller, 1, vm.PageCode, vm.PermExec)
	code := isa.BuildGuardPage(tr.id)
	p := m.AS.Page(addr)
	copy(p.Data[:], code)
	tr.guards[caller] = addr
	m.guardPages[addr.PageNum()] = guardInfo{tramp: tr, caller: caller}
}

// GuardAddr returns the guard page address installed for caller, or 0.
func (tr *Trampoline) GuardAddr(caller ID) vm.Addr { return tr.guards[caller] }

// Call invokes the handle's target with the given argument words,
// performing the full cross-cubicle call sequence of §5.5 under the
// system's isolation mode. It returns the callee's result words.
func (h Handle) Call(e *Env, args ...uint64) []uint64 {
	if h.tr == nil {
		panic(&CFIFault{Cubicle: e.T.cur, Target: "<nil>", Reason: "call through unresolved handle"})
	}
	m, t, tr := h.m, e.T, h.tr
	// No lock is taken for the call sequence itself: admission reads the
	// callee's atomic health bit, accounting goes to the thread's stats
	// shard, charges go to the thread's own clock and the PKRU values come
	// from the lock-free epoch cache. Only genuinely global slow paths —
	// a trap inside the callee, a restart, a heap grow — lock, inside the
	// operations that need it (see smp.go).
	if m.ckptInterval != 0 && len(t.frames) == 0 && !t.parallel {
		// Checkpoint cadence: outermost call entries of the cooperative
		// boot thread are the monitor's quiescent points. Parallel workers
		// never sweep — their outermost entry says nothing about other
		// cores being mid-crossing.
		m.maybeCheckpoint(t)
	}
	callee := m.cubicle(tr.callee)

	// Same-cubicle call: a plain function call, no TCB involvement.
	if tr.callee == t.cur {
		t.pushFrame(tr.callee, false)
		defer t.popFrame()
		return tr.fn(e, args)
	}

	// Shared cubicle: executes with the privileges, stack and heap of the
	// calling cubicle; never involves the runtime TCB (§3 ❹).
	if callee.Kind == KindShared {
		m.st(t).SharedCalls++
		if m.trc != nil {
			m.trc.SharedCall(t.id, int(t.cur), int(tr.callee), tr.Symbol())
		}
		t.pushFrame(tr.callee, false)
		defer t.popFrame()
		return tr.fn(e, args)
	}

	// Cross-cubicle call. The handle must be used from the cubicle it was
	// resolved for: a handle leaking to another cubicle models a jump
	// into a guard page that lives in someone else's cubicle, which MPK
	// exec permissions forbid.
	if h.caller != t.cur {
		panic(&CFIFault{Cubicle: t.cur, Target: tr.Symbol(),
			Reason: fmt.Sprintf("handle was resolved for cubicle %d", h.caller)})
	}
	if m.sup != nil {
		// Health gate: quarantined/dead callees fail fast before any call
		// accounting; an expired quarantine restarts the callee in place.
		m.sup.admit(t, tr)
	}
	st := m.st(t)
	st.CallsTotal++
	st.Calls[Edge{From: t.cur, To: tr.callee}]++

	if m.fastCross {
		// Trusted-crossing fast path: no tracer, injector, metrics
		// sampling or checkpoint cadence is attached (one precomputed
		// flag), and admission above already proved the callee healthy.
		// What remains is exactly the architectural call sequence — the
		// charges, the frame switch, the two wrpkru executions — with the
		// slow-path setup (trace event assembly, sampling cadence checks,
		// injection draws) skipped entirely. Charge order is identical to
		// the full path below, so virtual time is unaffected.
		if m.Mode.TrampolinesEnabled() {
			t.clk.Charge(m.Costs.TrampolineBase)
			if tr.stackBytes > 0 {
				t.clk.Charge(uint64(tr.stackBytes) * m.Costs.StackArgByte)
				st.StackBytesCopied += uint64(tr.stackBytes)
			}
		}
		t.pushFrame(tr.callee, true)
		defer t.popFrame()
		if m.sup != nil {
			defer m.sup.contain(t, tr)
		}
		if t.deadline != 0 {
			m.checkDeadline(t)
		}
		if tr.stackBytes > 0 {
			t.alloca(uint64(tr.stackBytes))
		}
		if m.Mode.MPKEnabled() {
			m.wrpkru(t, m.pkruForFast(t, tr.callee))
		}
		rets := tr.fn(e, args)
		if m.Mode.TrampolinesEnabled() {
			t.clk.Charge(m.Costs.TrampolineBase)
		}
		if m.Mode.MPKEnabled() {
			m.wrpkru(t, m.pkruForFast(t, h.caller))
		}
		return rets
	}

	if m.met != nil {
		// Metrics sampling rides the crossing rate: the first crossing at
		// or past each interval threshold takes the snapshot.
		m.maybeSampleMetrics(t.clk.Cycles())
	}

	var copied uint64
	if m.Mode.TrampolinesEnabled() && tr.stackBytes > 0 {
		copied = uint64(tr.stackBytes)
	}
	if m.trc != nil {
		m.trc.CallEnter(t.id, int(t.cur), int(tr.callee), tr.Symbol(), copied)
	}
	if m.Mode.TrampolinesEnabled() {
		t.clk.Charge(m.Costs.TrampolineBase)
		if tr.stackBytes > 0 {
			t.clk.Charge(uint64(tr.stackBytes) * m.Costs.StackArgByte)
			st.StackBytesCopied += uint64(tr.stackBytes)
		}
	}
	t.pushFrame(tr.callee, true)
	defer t.popFrame()
	if m.sup != nil {
		// Registered after popFrame so it runs first (LIFO), while the
		// crossing frame is still live for rollback and attribution.
		defer m.sup.contain(t, tr)
	}
	if t.deadline != 0 {
		// Deadline gate: an expired request is abandoned at the crossing it
		// would next cross, inside the contain defer so the fault rolls back
		// and is delivered to the caller as a typed ContainedFault.
		m.checkDeadline(t)
	}
	if tr.stackBytes > 0 {
		// The trampoline reserves space for in-stack arguments on the
		// callee stack (the copy itself is charged above).
		t.alloca(uint64(tr.stackBytes))
	}
	if m.Mode.MPKEnabled() {
		m.wrpkru(t, m.pkruForFast(t, tr.callee))
	}
	if m.inj != nil {
		m.injectAtCrossing(t, tr)
	}

	rets := tr.fn(e, args)

	// Return path: switch permissions and stacks back (§5.5 "function
	// returns across cubicles are handled in a similar way").
	if m.Mode.TrampolinesEnabled() {
		t.clk.Charge(m.Costs.TrampolineBase)
	}
	if m.Mode.MPKEnabled() {
		m.wrpkru(t, m.pkruForFast(t, h.caller))
	}
	if m.trc != nil {
		m.trc.CallExit(t.id, int(h.caller), int(tr.callee), tr.Symbol())
	}
	return rets
}

// ExecuteAt models an attempted control transfer to an arbitrary address,
// used to demonstrate the CFI guarantees: execution must be permitted by
// the page table and MPK (including the paper's exec-follows-access
// modification), guard pages may only be entered at offset 0, and
// trampoline thunks in the monitor's cubicle are never directly
// executable by cubicles.
// Lock-free: the page lookup is atomic and guardPages is immutable after
// boot-time resolution; the final resolveSpan locks only if it traps.
func (m *Monitor) ExecuteAt(t *Thread, addr vm.Addr) {
	p := m.AS.Page(addr)
	if p == nil {
		panic(&ProtectionFault{Addr: addr, Access: mpk.AccessExec, Cubicle: t.cur,
			Owner: vm.NoOwner, Reason: "unmapped page"})
	}
	if gi, ok := m.guardPages[addr.PageNum()]; ok {
		if gi.isThunk {
			panic(&CFIFault{Cubicle: t.cur, Target: gi.tramp.Symbol(),
				Reason: "direct execution of a trampoline code thunk"})
		}
		if !isa.GuardEntryOK(addr.PageOff()) {
			panic(&CFIFault{Cubicle: t.cur, Target: gi.tramp.Symbol(),
				Reason: fmt.Sprintf("guard page entered at offset %#x", addr.PageOff())})
		}
		if gi.caller != t.cur {
			panic(&CFIFault{Cubicle: t.cur, Target: gi.tramp.Symbol(),
				Reason: fmt.Sprintf("guard page belongs to cubicle %d", gi.caller)})
		}
	}
	m.resolveSpan(t, mpk.AccessExec, addr, 1)
}
