package cubicle

import "sort"

// Edge identifies a directed cross-cubicle call edge, used to reproduce
// the call-count graphs of Figures 5 and 8.
type Edge struct {
	From, To ID
}

// Stats collects the architectural event counts that drive the cost model
// and the paper's figures.
type Stats struct {
	// Calls counts cross-cubicle calls per directed edge (only calls that
	// actually cross cubicle boundaries; calls within a cubicle or into
	// shared cubicles are counted separately).
	Calls map[Edge]uint64
	// CallsTotal is the total number of cross-cubicle calls.
	CallsTotal uint64
	// SharedCalls counts calls into shared cubicles (never involve the
	// TCB, §3 ❹).
	SharedCalls uint64
	// Faults counts protection traps taken into the monitor.
	Faults uint64
	// Retags counts pages retagged by the trap-and-map handler.
	Retags uint64
	// WRPKRUs counts executed wrpkru instructions.
	WRPKRUs uint64
	// WindowOps counts window-management API calls.
	WindowOps uint64
	// WindowSearchSteps counts descriptor entries visited by the linear
	// window search.
	WindowSearchSteps uint64
	// StackBytesCopied counts in-stack argument bytes copied across
	// per-cubicle stacks by trampolines.
	StackBytesCopied uint64
	// BulkBytesCopied counts bytes moved by checked memcpy operations.
	BulkBytesCopied uint64
	// DeniedFaults counts protection faults that were not authorised by
	// any window (i.e. real isolation violations).
	DeniedFaults uint64
	// KeyEvictions counts MPK keys recycled by tag virtualisation.
	KeyEvictions uint64
	// ContainedFaults counts faults contained at a crossing, including
	// fail-fast refusals of calls into quarantined or dead cubicles.
	ContainedFaults uint64
	// Quarantines counts health transitions into the Quarantined state.
	Quarantines uint64
	// Restarts counts supervisor restarts of quarantined cubicles.
	Restarts uint64
	// InjectedFaults counts deterministic fault injections that fired.
	InjectedFaults uint64
	// Sheds counts requests refused by admission control (429/503).
	Sheds uint64
	// DeadlineFaults counts crossings or work quanta abandoned because the
	// request deadline had passed.
	DeadlineFaults uint64
	// QuotaFaults counts memory-quota refusals.
	QuotaFaults uint64
	// Retries counts bounded-retry attempts after transient contained
	// faults.
	Retries uint64
	// TLBHits counts checked accesses served from the per-thread span TLB
	// without a page walk. Unlike the counters above these three are
	// wall-clock diagnostics of the simulator itself, not architectural
	// events: they are maintained directly by the monitor (a hit is far too
	// frequent to record as a trace event) and mirrored into the
	// trace-derived view by StatsFromTrace.
	TLBHits uint64
	// TLBMisses counts page checks that ran the full walk (cold, conflict
	// or invalidated TLB slot).
	TLBMisses uint64
	// TLBInvalidations counts TLB entries observed stale at lookup — the
	// slot held the right page but its (PKRU, epoch) validation tuple no
	// longer matched after a wrpkru, retag, map/unmap or restart.
	TLBInvalidations uint64
	// TLBShootdowns counts cross-core retag synchronisation rounds: on an
	// SMP machine every trap-and-map or pin retag pays one IPI round trip
	// per remote core (libmpk's per-thread sync). Always 0 on single-core
	// deployments.
	TLBShootdowns uint64
	// TLBShootdownInvalidations counts remote span-TLB entries cleared by
	// shootdowns (at most threads-1 per shootdown).
	TLBShootdownInvalidations uint64
	// Checkpoints counts cubicle checkpoints captured at quiescent points;
	// CheckpointBytes sums their encoded image sizes.
	Checkpoints     uint64
	CheckpointBytes uint64
	// WarmRestarts counts supervisor restarts that restored the cubicle's
	// last good checkpoint; ColdRestarts counts restarts that rebuilt from
	// empty. Restarts == WarmRestarts + ColdRestarts.
	WarmRestarts uint64
	ColdRestarts uint64
	// Routes counts cluster balancer decisions that routed a request to
	// this system; Drains counts balancer health-ladder transitions for it
	// (drain + readmit, see Monitor.NoteDrain); Failovers counts requests
	// the balancer re-issued away from it (retry/hedge/drain).
	Routes    uint64
	Drains    uint64
	Failovers uint64
}

// newStats returns an initialised Stats.
func newStats() Stats {
	return Stats{Calls: make(map[Edge]uint64)}
}

// NewStats returns an empty, mergeable Stats (initialised maps) —
// accumulator seed for callers that Merge many monitors' counters, like
// the cluster driver's fleet-wide roll-up.
func NewStats() Stats { return newStats() }

// Reset zeroes all counters.
func (s *Stats) Reset() {
	*s = newStats()
}

// Merge adds every counter of o into s, merging the per-edge call map.
// The sharded siege driver uses it to combine the per-core monitors'
// figures into one machine-wide view.
func (s *Stats) Merge(o *Stats) {
	for e, n := range o.Calls {
		s.Calls[e] += n
	}
	s.CallsTotal += o.CallsTotal
	s.SharedCalls += o.SharedCalls
	s.Faults += o.Faults
	s.Retags += o.Retags
	s.WRPKRUs += o.WRPKRUs
	s.WindowOps += o.WindowOps
	s.WindowSearchSteps += o.WindowSearchSteps
	s.StackBytesCopied += o.StackBytesCopied
	s.BulkBytesCopied += o.BulkBytesCopied
	s.DeniedFaults += o.DeniedFaults
	s.KeyEvictions += o.KeyEvictions
	s.ContainedFaults += o.ContainedFaults
	s.Quarantines += o.Quarantines
	s.Restarts += o.Restarts
	s.InjectedFaults += o.InjectedFaults
	s.Sheds += o.Sheds
	s.DeadlineFaults += o.DeadlineFaults
	s.QuotaFaults += o.QuotaFaults
	s.Retries += o.Retries
	s.TLBHits += o.TLBHits
	s.TLBMisses += o.TLBMisses
	s.TLBInvalidations += o.TLBInvalidations
	s.TLBShootdowns += o.TLBShootdowns
	s.TLBShootdownInvalidations += o.TLBShootdownInvalidations
	s.Checkpoints += o.Checkpoints
	s.CheckpointBytes += o.CheckpointBytes
	s.WarmRestarts += o.WarmRestarts
	s.ColdRestarts += o.ColdRestarts
	s.Routes += o.Routes
	s.Drains += o.Drains
	s.Failovers += o.Failovers
}

// EdgeCount is one row of a call-count report.
type EdgeCount struct {
	From, To ID
	Count    uint64
}

// SortedEdges returns the call edges sorted by descending count (ties by
// edge), for stable Figure 5/8 reports.
func (s *Stats) SortedEdges() []EdgeCount {
	out := make([]EdgeCount, 0, len(s.Calls))
	for e, n := range s.Calls {
		out = append(out, EdgeCount{From: e.From, To: e.To, Count: n})
	}
	sort.Slice(out, func(i, j int) bool {
		if out[i].Count != out[j].Count {
			return out[i].Count > out[j].Count
		}
		if out[i].From != out[j].From {
			return out[i].From < out[j].From
		}
		return out[i].To < out[j].To
	})
	return out
}
