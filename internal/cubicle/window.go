package cubicle

import (
	"fmt"

	"cubicleos/internal/mpk"
	"cubicleos/internal/vm"
)

// WID identifies a window within its owning cubicle. Windows are assigned
// to the calling cubicle and can only be managed by it (§4).
type WID int

// Range is one memory range associated with a window.
type Range struct {
	Addr vm.Addr
	Size uint64
}

// Contains reports whether the range covers addr. Windows work at page
// granularity (§5.3): a range covers every page it touches, so the check
// is against the page span, not the byte span — the paper notes that a
// component developer must align structures to prevent unintended sharing.
func (r Range) Contains(addr vm.Addr) bool {
	first, last := vm.PagesIn(r.Addr, r.Size)
	pn := addr.PageNum()
	return pn >= first && pn <= last
}

// Window is a user-managed, discretionary access-control list for memory
// (§5.3): a set of memory ranges in the owning cubicle plus a bitmask of
// the cubicles for which the window is currently open. The bitmask size is
// fixed at deployment time since all cubicle IDs are known at link time.
type Window struct {
	ID     WID
	Owner  ID
	Class  windowClass // set by the first Add; ranges share a class
	Ranges []Range
	Open   uint64 // bitmask: bit i set = open for cubicle i
	// pinned is the window-specific MPK key of the §8 extension, or
	// noPin for the default trap-and-map behaviour.
	pinned mpk.Key
}

// IsOpenFor reports whether the window is open for cubicle cid.
func (w *Window) IsOpenFor(cid ID) bool {
	return cid >= 0 && cid < MaxCubicles && w.Open&(1<<uint(cid)) != 0
}

// covers reports whether any range of the window covers addr.
func (w *Window) covers(addr vm.Addr) bool {
	for _, r := range w.Ranges {
		if r.Contains(addr) {
			return true
		}
	}
	return false
}

func (w *Window) String() string {
	return fmt.Sprintf("window %d (owner %d, %d ranges, open %#x)", w.ID, w.Owner, len(w.Ranges), w.Open)
}

// chargeWindowOp charges and records the cost of one window-management
// API call. Window bookkeeping only costs anything when ACLs are
// enforced; in the no-ACL ablation the calls are retained in component
// code but compile to no-ops, which is how Figure 6 separates the
// "windows" overhead from the "MPK" overhead. op and wid label the trace
// event (wid -1 when the window is not yet allocated).
func (m *Monitor) chargeWindowOp(t *Thread, c ID, op string, wid WID) {
	if m.Mode.ACLEnabled() {
		m.clkOf(t).Charge(m.Costs.WindowOp)
		m.st(t).WindowOps++
		if m.trc != nil {
			m.trc.WindowOp(tidOf(t), int(c), op, int(wid))
		}
	}
	if m.inj != nil {
		if k := m.inj.AtWindowOp(coreOfThread(t), m.cubicle(c).Name, op); k != InjectNone {
			m.noteInjected(t, c, "window_op")
			panic(&ProtectionFault{Cubicle: c, Owner: c,
				Reason: "injected fault at window op"})
		}
	}
}

// Window operations serialise on the monitor's global lock, not the
// per-cubicle lock: opening, closing or pinning a window touches global
// state — the key registry, every thread's PKRU rights, and the window
// descriptors the trap-and-map handler walks under the same lock. The
// per-cubicle lock covers only state that never escapes the cubicle (the
// heap sub-allocator). In non-parallel deployments the lock calls are
// no-ops and the code path is byte-identical to the legacy monitor.

// windowInit implements cubicle_window_init for cubicle c.
func (m *Monitor) windowInit(t *Thread, c ID) WID {
	m.lockGlobal(t)
	defer m.unlockGlobal(t)
	cub := m.cubicle(c)
	// Reuse a destroyed slot if one exists; otherwise the cubicle asks
	// the monitor to extend the descriptor array (§5.3).
	for i, w := range cub.windows {
		if w == nil {
			cub.windows[i] = &Window{ID: WID(i), Owner: c, Class: classNone, pinned: noPin}
			m.chargeWindowOp(t, c, "init", WID(i))
			return WID(i)
		}
	}
	wid := WID(len(cub.windows))
	cub.windows = append(cub.windows, &Window{ID: wid, Owner: c, Class: classNone, pinned: noPin})
	m.chargeWindowOp(t, c, "init", wid)
	return wid
}

// window fetches window wid of cubicle c, failing the calling component if
// the window does not exist or is not owned by c.
func (m *Monitor) window(c ID, wid WID, op string) *Window {
	cub := m.cubicle(c)
	if wid < 0 || int(wid) >= len(cub.windows) || cub.windows[wid] == nil {
		panic(&APIError{Cubicle: c, Op: op, Reason: fmt.Sprintf("no such window %d", wid)})
	}
	w := cub.windows[wid]
	if w.Owner != c {
		panic(&APIError{Cubicle: c, Op: op, Reason: fmt.Sprintf("window %d owned by cubicle %d", wid, w.Owner)})
	}
	return w
}

// windowAdd implements cubicle_window_add: associate [ptr, ptr+size) with
// window wid. The memory must be owned by the calling cubicle — a cubicle
// cannot open a window onto data shared with it by another cubicle (the
// nested-call rule of §5.6).
func (m *Monitor) windowAdd(t *Thread, c ID, wid WID, ptr vm.Addr, size uint64) {
	m.lockGlobal(t)
	defer m.unlockGlobal(t)
	m.chargeWindowOp(t, c, "add", wid)
	w := m.window(c, wid, "window_add")
	if size == 0 {
		panic(&APIError{Cubicle: c, Op: "window_add", Reason: "empty range"})
	}
	first, last := vm.PagesIn(ptr, size)
	var cls windowClass
	for pn := first; pn <= last; pn++ {
		p := m.AS.Page(vm.PageAddr(pn))
		if p == nil {
			panic(&APIError{Cubicle: c, Op: "window_add", Reason: fmt.Sprintf("unmapped page %#x", pn<<vm.PageShift)})
		}
		if p.Owner != int(c) {
			panic(&APIError{Cubicle: c, Op: "window_add",
				Reason: fmt.Sprintf("page %#x owned by cubicle %d, not by caller", pn<<vm.PageShift, p.Owner)})
		}
		pc := classOf(p.Type)
		if pc == classNone {
			panic(&APIError{Cubicle: c, Op: "window_add", Reason: "code pages cannot be windowed"})
		}
		if pn == first {
			cls = pc
		} else if pc != cls {
			panic(&APIError{Cubicle: c, Op: "window_add", Reason: "range spans pages of different types"})
		}
	}
	cub := m.cubicle(c)
	if w.Class == classNone {
		w.Class = cls
		cub.search[cls] = append(cub.search[cls], int(w.ID))
	} else if w.Class != cls {
		panic(&APIError{Cubicle: c, Op: "window_add",
			Reason: fmt.Sprintf("window holds %v ranges; cannot mix with %v", w.Class, cls)})
	}
	w.Ranges = append(w.Ranges, Range{Addr: ptr, Size: size})
	if w.pinned != noPin {
		// Ranges added to a pinned window take its dedicated key at once.
		first, last := vm.PagesIn(ptr, size)
		for pn := first; pn <= last; pn++ {
			m.AS.Page(vm.PageAddr(pn)).SetKey(uint8(w.pinned))
			m.noteRetag(t, c, vm.PageAddr(pn), w.pinned)
		}
	}
}

// windowRemove implements cubicle_window_remove: drop the range previously
// associated with wid that starts at ptr.
func (m *Monitor) windowRemove(t *Thread, c ID, wid WID, ptr vm.Addr) {
	m.lockGlobal(t)
	defer m.unlockGlobal(t)
	m.chargeWindowOp(t, c, "remove", wid)
	w := m.window(c, wid, "window_remove")
	for i, r := range w.Ranges {
		if r.Addr == ptr {
			w.Ranges = append(w.Ranges[:i], w.Ranges[i+1:]...)
			return
		}
	}
	panic(&APIError{Cubicle: c, Op: "window_remove", Reason: fmt.Sprintf("no range at %#x", uint64(ptr))})
}

// windowOpen implements cubicle_window_open: allow cubicle cid to access
// the window's contents. It reports whether the grant is new, so the
// containment journal only records transitions it must undo.
func (m *Monitor) windowOpen(t *Thread, c ID, wid WID, cid ID) bool {
	m.lockGlobal(t)
	defer m.unlockGlobal(t)
	m.chargeWindowOp(t, c, "open", wid)
	w := m.window(c, wid, "window_open")
	if cid < 0 || cid >= MaxCubicles || int(cid) >= len(m.cubicles) {
		panic(&APIError{Cubicle: c, Op: "window_open", Reason: fmt.Sprintf("no such cubicle %d", cid)})
	}
	newGrant := w.Open&(1<<uint(cid)) == 0
	w.Open |= 1 << uint(cid)
	if w.pinned != noPin {
		m.refreshThreadPKRUs(t)
	}
	return newGrant
}

// windowClose implements cubicle_window_close. Closing does not retag any
// pages: the monitor maintains causal tag consistency (§5.6), lazily
// reassigning tags only when a page is next accessed.
func (m *Monitor) windowClose(t *Thread, c ID, wid WID, cid ID) {
	m.lockGlobal(t)
	defer m.unlockGlobal(t)
	m.chargeWindowOp(t, c, "close", wid)
	w := m.window(c, wid, "window_close")
	if cid >= 0 && cid < MaxCubicles {
		w.Open &^= 1 << uint(cid)
	}
	if w.pinned != noPin {
		// Pinned windows revoke eagerly: the grantee's PKRU loses the
		// window key immediately (no causal laziness to fall back on).
		m.refreshThreadPKRUs(t)
	}
}

// windowCloseAll implements cubicle_window_close_all.
func (m *Monitor) windowCloseAll(t *Thread, c ID, wid WID) {
	m.lockGlobal(t)
	defer m.unlockGlobal(t)
	m.chargeWindowOp(t, c, "close_all", wid)
	w := m.window(c, wid, "window_close_all")
	w.Open = 0
	if w.pinned != noPin {
		m.refreshThreadPKRUs(t)
	}
}

// windowDestroy implements cubicle_window_destroy.
func (m *Monitor) windowDestroy(t *Thread, c ID, wid WID) {
	// Reentrant: unpinWindow below re-acquires the global lock.
	m.lockGlobal(t)
	defer m.unlockGlobal(t)
	m.chargeWindowOp(t, c, "destroy", wid)
	w := m.window(c, wid, "window_destroy")
	if w.pinned != noPin {
		m.unpinWindow(t, c, wid)
	}
	cub := m.cubicle(c)
	if w.Class != classNone {
		lst := cub.search[w.Class]
		for i, idx := range lst {
			if idx == int(w.ID) {
				cub.search[w.Class] = append(lst[:i], lst[i+1:]...)
				break
			}
		}
	}
	cub.windows[wid] = nil
}

// WindowCount returns the number of live windows owned by cubicle c;
// used by tests and the inspector.
func (m *Monitor) WindowCount(c ID) int {
	n := 0
	for _, w := range m.cubicle(c).windows {
		if w != nil {
			n++
		}
	}
	return n
}
