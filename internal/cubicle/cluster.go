package cubicle

// This file is the monitor's cluster-facing surface: the hooks a
// load-balancer tier sitting *outside* the booted system uses to observe
// and account for whole-system health. A virtual cluster (internal/
// cluster) runs N independent single-core monitors; the balancer routes
// requests between them, drains a backend whose supervisor ladder turns
// unhealthy, and re-admits it once a restart brings it back. The
// balancer-side events (route, drain/readmit, failover) are recorded
// against the backend's own monitor so every backend keeps the
// StatsFromTrace equality — the trace stream stays the single source of
// truth for the merged fleet view too.
//
// All entry points here are harness context: the cluster driver drives
// each backend from a single goroutine, exactly like the siege drivers,
// so they follow the boot-wiring locking discipline (no monitor lock).

// HealthHook observes cubicle health-ladder transitions. It is invoked
// synchronously from inside the supervisor — while the monitor is mid-
// operation — so implementations must only record the transition (set
// flags, append to a queue) and never call back into the monitor.
type HealthHook func(name string, id ID, from, to Health)

// SetHealthHook installs fn to be called on every supervisor health
// transition (Healthy→Quarantined, Quarantined→Healthy on restart,
// Quarantined→Dead on budget exhaustion). A cluster balancer uses it to
// learn that a backend needs draining — or is ready for re-admission —
// without polling every cubicle each quantum. nil detaches.
func (m *Monitor) SetHealthHook(fn HealthHook) { m.healthHook = fn }

// notifyHealth fires the health hook for cubicle c's transition from old
// to new. Callers already updated c.health.
func (m *Monitor) notifyHealth(c *Cubicle, old, new Health) {
	if m.healthHook != nil && old != new {
		m.healthHook(c.Name, c.ID, old, new)
	}
}

// NoteRoute records one balancer routing decision that selected this
// system as the backend; policy is the balancer policy label (a constant
// string), backend this system's index in the cluster, and attempt the
// request attempt number (0 = first try).
func (m *Monitor) NoteRoute(policy string, backend int, attempt uint64) {
	m.Stats.Routes++
	if m.trc != nil {
		m.trc.Route(policy, backend, attempt)
	}
}

// NoteDrain records a balancer health-ladder transition for this system:
// phase is "drain" when the balancer takes it out of rotation, "readmit"
// when it returns; deadline is the virtual-cycle drain deadline (0 on
// readmit). Drains counts both phases — the trace Name distinguishes
// them, and a drained backend that never comes back is visible as an odd
// count.
func (m *Monitor) NoteDrain(phase string, backend int, deadline uint64) {
	m.Stats.Drains++
	if m.trc != nil {
		m.trc.Drain(phase, backend, deadline)
	}
}

// NoteFailover records a request the balancer re-issued away from this
// system; reason is the constant label (retry/hedge/drain), attempt the
// attempt number of the re-issue.
func (m *Monitor) NoteFailover(reason string, backend int, attempt uint64) {
	m.Stats.Failovers++
	if m.trc != nil {
		m.trc.Failover(reason, backend, attempt)
	}
}

// Kill quarantines the named cubicle as if it had just faulted — the
// harness-level backend-kill used by cluster failover scenarios. The
// cubicle takes the standard supervision path from there: exponential
// backoff, then a supervised restart (warm when a checkpoint exists) on
// the next admitted call. Returns false when the cubicle is unknown, not
// isolated, or the monitor is unsupervised.
func (s *Supervisor) Kill(name string, cause error) bool {
	c := s.m.byName[name]
	if c == nil || c.Kind != KindIsolated {
		return false
	}
	if cause == nil {
		cause = ErrQuarantined
	}
	s.m.lockGlobal(nil)
	s.quarantine(nil, c.ID, cause)
	s.m.unlockGlobal(nil)
	return true
}
