package cubicle

import "fmt"

// This file is the resource-governance layer: per-cubicle memory quotas
// enforced at the monitor's page-granting primitive, virtual-clock request
// deadlines propagated across trampoline crossings, and a bounded-retry
// helper for transient overload faults. Like tracing and containment the
// whole layer is opt-in: with no quota set and no deadline armed every
// hot path pays one comparison against zero.

// QuotaFault is raised when a memory allocation would push a cubicle past
// its configured quota. It is a transient overload condition, not a bug:
// under supervision it is contained at the crossing (with rollback) but
// does not quarantine the cubicle — the caller is expected to shed load
// or retry after freeing memory.
type QuotaFault struct {
	Cubicle  ID     // cubicle whose quota was exhausted
	Resource string // "pages" (monitor quota) or "arena" (ualloc client quota)
	Used     uint64 // usage the refused allocation would have reached
	Limit    uint64
}

func (f *QuotaFault) Error() string {
	return fmt.Sprintf("quota fault: cubicle %d %s quota exhausted (%d of %d bytes)",
		f.Cubicle, f.Resource, f.Used, f.Limit)
}

// DeadlineFault is raised when a thread crosses a cubicle boundary (or
// charges modelled work) after its request deadline already passed: the
// remaining work is abandoned because no one is waiting for the answer.
// Like QuotaFault it is transient — contained with rollback, never
// quarantined.
type DeadlineFault struct {
	Cubicle  ID // cubicle where the expiry was detected
	Deadline uint64
	Now      uint64
}

func (f *DeadlineFault) Error() string {
	return fmt.Sprintf("deadline fault: cubicle %d at cycle %d, deadline was %d (%d over)",
		f.Cubicle, f.Now, f.Deadline, f.Now-f.Deadline)
}

// --- Per-cubicle memory quotas ----------------------------------------------

// SetMemQuota caps the bytes of pages the monitor will grant cubicle id
// (0 = unlimited). The cap applies to MapOwned — heap arenas, stacks and
// window pins all draw from it; pages reclaimed by a supervisor restart
// are credited back.
func (m *Monitor) SetMemQuota(id ID, bytes uint64) {
	if bytes == 0 {
		delete(m.memQuota, id)
		return
	}
	m.memQuota[id] = bytes
}

// MemQuota returns cubicle id's page quota in bytes (0 = unlimited).
func (m *Monitor) MemQuota(id ID) uint64 { return m.memQuota[id] }

// MemUsed returns the bytes of pages currently granted to cubicle id
// through MapOwned.
func (m *Monitor) MemUsed(id ID) uint64 { return m.memUsed[id] }

// --- Deadlines ---------------------------------------------------------------

// SetDeadline arms a virtual-clock deadline for the current request on
// this thread: crossings made below the current frame after the clock
// passes d raise a *DeadlineFault. The frame gate means the cubicle that
// set the deadline always regains control to send its error response.
func (e *Env) SetDeadline(d uint64) {
	e.T.deadline = d
	e.T.deadlineFrame = len(e.T.frames)
}

// ClearDeadline disarms the thread's deadline.
func (e *Env) ClearDeadline() {
	e.T.deadline = 0
	e.T.deadlineFrame = 0
}

// Deadline returns the armed deadline, or 0.
func (e *Env) Deadline() uint64 { return e.T.deadline }

// Now returns the virtual clock of the thread's core.
func (e *Env) Now() uint64 { return e.T.clk.Cycles() }

// checkDeadline raises a DeadlineFault when thread t's armed deadline has
// passed. It only fires below the frame that armed the deadline, so the
// arming cubicle itself is never interrupted — only work it delegated.
func (m *Monitor) checkDeadline(t *Thread) {
	if t.deadline == 0 || len(t.frames) <= t.deadlineFrame {
		return
	}
	now := t.clk.Cycles()
	if now < t.deadline {
		return
	}
	f := &DeadlineFault{Cubicle: t.cur, Deadline: t.deadline, Now: now}
	t.deadline = 0 // one fault per armed deadline; the caller re-arms per request
	m.noteDeadline(t, f.Deadline, now)
	panic(f)
}

// --- Admission-control and governance accounting -----------------------------

// NoteShed records one request refused by admission control in the current
// cubicle; reason is a constant label, status the HTTP status sent back.
func (e *Env) NoteShed(reason string, status uint64) {
	e.M.noteShed(e.T, e.T.cur, reason, status)
}

// RaiseQuota records a quota refusal attributed to cubicle victim and
// raises the typed fault. Components enforcing their own resource caps
// (e.g. the ALLOC per-client arena quota) use it so the fault carries the
// client at fault, not the enforcing component.
func (e *Env) RaiseQuota(victim ID, resource string, used, limit uint64) {
	e.M.noteQuota(e.T, victim, resource, used, limit)
	panic(&QuotaFault{Cubicle: victim, Resource: resource, Used: used, Limit: limit})
}

func (m *Monitor) noteShed(t *Thread, cub ID, reason string, status uint64) {
	m.st(t).Sheds++
	if m.trc != nil {
		m.trc.Shed(tidOf(t), int(cub), reason, status)
	}
}

func (m *Monitor) noteDeadline(t *Thread, deadline, now uint64) {
	m.st(t).DeadlineFaults++
	if m.trc != nil {
		m.trc.DeadlineMiss(t.id, int(t.cur), deadline, now)
	}
}

func (m *Monitor) noteQuota(t *Thread, cub ID, resource string, used, limit uint64) {
	m.st(t).QuotaFaults++
	if m.trc != nil {
		m.trc.QuotaHit(tidOf(t), int(cub), resource, used, limit)
	}
}

func (m *Monitor) noteRetry(t *Thread, cub ID, attempt int, backoff uint64) {
	m.st(t).Retries++
	if m.trc != nil {
		m.trc.Retry(tidOf(t), int(cub), uint64(attempt), backoff)
	}
}

// --- Bounded retry -----------------------------------------------------------

// RetryPolicy bounds RetryContained. All durations are virtual cycles.
type RetryPolicy struct {
	// MaxAttempts is the total number of tries (first call included).
	MaxAttempts int
	// BackoffBase is charged to the virtual clock before the first retry;
	// each further retry multiplies it by BackoffFactor up to BackoffMax.
	BackoffBase   uint64
	BackoffFactor uint64
	BackoffMax    uint64
}

// DefaultRetryPolicy returns a policy matched to the default supervision
// backoffs: three tries with backoff long enough that a quarantined
// dependency's first restart window has expired by the second attempt.
func DefaultRetryPolicy() RetryPolicy {
	return RetryPolicy{MaxAttempts: 3, BackoffBase: 200_000, BackoffFactor: 4, BackoffMax: 60_000_000}
}

// retryable reports whether a contained fault is a transient overload
// condition worth retrying: a quota refusal (memory may be freed), or a
// quarantined dependency (the supervisor restarts it once the backoff on
// the virtual clock expires). Protection/CFI/API faults and dead cubicles
// are deterministic failures — retrying cannot help.
func retryable(cf *ContainedFault) bool {
	if cf.Cause == ErrQuarantined {
		return true
	}
	_, quota := cf.Cause.(*QuotaFault)
	return quota
}

// IsTransient reports whether a contained fault is an overload condition
// (quota refusal or deadline expiry) rather than a component failure.
// Callers use it to pick a shed response (429/503 + Retry-After) over an
// error path, since the callee was not quarantined and will serve again.
func IsTransient(cf *ContainedFault) bool {
	switch cf.Cause.(type) {
	case *QuotaFault, *DeadlineFault:
		return true
	}
	return false
}

// RetryContained runs fn, retrying transient contained faults up to the
// policy's attempt budget with exponential backoff charged to the virtual
// clock. It returns nil on success, or the last ContainedFault.
func RetryContained(e *Env, p RetryPolicy, fn func()) *ContainedFault {
	if p.MaxAttempts < 1 {
		p.MaxAttempts = 1
	}
	backoff := p.BackoffBase
	for attempt := 1; ; attempt++ {
		cf := CatchContained(fn)
		if cf == nil {
			return nil
		}
		if attempt >= p.MaxAttempts || !retryable(cf) {
			return cf
		}
		if p.BackoffMax > 0 && backoff > p.BackoffMax {
			backoff = p.BackoffMax
		}
		e.T.clk.Charge(backoff)
		e.M.noteRetry(e.T, e.T.cur, attempt, backoff)
		if p.BackoffFactor > 1 {
			backoff *= p.BackoffFactor
		}
	}
}
