package cubicle

import (
	"errors"
	"testing"

	"cubicleos/internal/vm"
)

// TestMemQuotaFaultIsTypedAndTransient: a cubicle exceeding its page quota
// gets a typed, attributed *QuotaFault contained at the crossing — and is
// NOT quarantined, because running out of budget is an overload condition,
// not a broken component. Lifting the quota makes the same call succeed.
func TestMemQuotaFaultIsTypedAndTransient(t *testing.T) {
	ts := bootFaulty(t, DefaultRestartPolicy(), nil)
	svc := ts.cubs["SVC"]
	ts.m.SetMemQuota(svc.ID, ts.m.MemUsed(svc.ID)+2*vm.PageSize)

	var cf *ContainedFault
	ts.enter(t, "APP", func(e *Env) {
		h := ts.m.MustResolve(e.Cubicle(), "SVC", "svc_alloc")
		cf = CatchContained(func() { h.Call(e, 64*vm.PageSize) })
	})
	if cf == nil {
		t.Fatal("over-quota allocation was not contained")
	}
	var qf *QuotaFault
	if !errors.As(cf, &qf) {
		t.Fatalf("cause = %v, want a *QuotaFault", cf.Cause)
	}
	if qf.Cubicle != svc.ID || qf.Resource != "pages" || qf.Used <= qf.Limit {
		t.Errorf("quota fault misattributed: %+v", qf)
	}
	if cf.Cubicle != svc.ID {
		t.Errorf("ContainedFault.Cubicle = %d, want SVC %d", cf.Cubicle, svc.ID)
	}
	if svc.Health() != Healthy {
		t.Errorf("health after quota fault = %v, want Healthy (transient, no quarantine)", svc.Health())
	}
	if ts.m.Stats.QuotaFaults != 1 || ts.m.Stats.Quarantines != 0 {
		t.Errorf("stats = %+v, want QuotaFaults=1 Quarantines=0", ts.m.Stats)
	}

	// Lifting the quota (the operator's recovery action) unblocks the
	// very same call — nothing was poisoned by the refusal.
	ts.m.SetMemQuota(svc.ID, 0)
	ts.enter(t, "APP", func(e *Env) {
		h := ts.m.MustResolve(e.Cubicle(), "SVC", "svc_alloc")
		if cf := CatchContained(func() { h.Call(e, 64*vm.PageSize) }); cf != nil {
			t.Errorf("allocation after quota lift still refused: %v", cf)
		}
	})
}

// TestMemQuotaCreditsOnRestart: pages reclaimed by a supervisor restart
// are credited back against the quota, so a restarted cubicle starts with
// its full budget rather than the dead incarnation's bill.
func TestMemQuotaCreditsOnRestart(t *testing.T) {
	ts := bootFaulty(t, DefaultRestartPolicy(), nil)
	svc := ts.cubs["SVC"]
	ts.enter(t, "APP", func(e *Env) {
		h := ts.m.MustResolve(e.Cubicle(), "SVC", "svc_alloc")
		h.Call(e, 64*vm.PageSize)
	})
	used := ts.m.MemUsed(svc.ID)
	if used == 0 {
		t.Fatal("SVC shows no page footprint after allocating")
	}
	appBuf := ts.heapIn(t, "APP", 8)
	faultSVC(t, ts, appBuf)
	ts.m.Clock.Charge(DefaultRestartPolicy().BackoffMax)
	if _, cf := callSVCOk(t, ts); cf != nil {
		t.Fatalf("restart failed: %v", cf)
	}
	if after := ts.m.MemUsed(svc.ID); after >= used {
		t.Errorf("MemUsed after restart = %d, want < %d (reclaimed pages credited back)", after, used)
	}
}

// TestDeadlineFiresOnlyBelowArmingFrame: an expired deadline aborts work
// the arming cubicle delegated (crossings below it), never the arming
// cubicle itself — it must regain control to answer the client. The fault
// is one-shot: the deadline disarms as it fires.
func TestDeadlineFiresOnlyBelowArmingFrame(t *testing.T) {
	ts := bootFaulty(t, DefaultRestartPolicy(), nil)
	svc := ts.cubs["SVC"]
	ts.enter(t, "APP", func(e *Env) {
		e.SetDeadline(e.Now() + 10_000)
		e.M.Clock.Charge(20_000) // the deadline is now in the past
		// The arming frame itself keeps running: Work here must not panic.
		e.Work(1_000)
		h := ts.m.MustResolve(e.Cubicle(), "SVC", "svc_ok")
		cf := CatchContained(func() { h.Call(e) })
		if cf == nil {
			t.Fatal("crossing past the deadline was not aborted")
		}
		var df *DeadlineFault
		if !errors.As(cf, &df) {
			t.Fatalf("cause = %v, want a *DeadlineFault", cf.Cause)
		}
		if df.Now < df.Deadline {
			t.Errorf("deadline fault with Now %d < Deadline %d", df.Now, df.Deadline)
		}
		if e.Deadline() != 0 {
			t.Error("deadline still armed after firing; must be one-shot")
		}
		// With the deadline consumed, the same call goes straight through.
		if cf := CatchContained(func() { h.Call(e) }); cf != nil {
			t.Errorf("call after one-shot deadline fault refused: %v", cf)
		}
		e.ClearDeadline()
	})
	if svc.Health() != Healthy {
		t.Errorf("callee health after deadline miss = %v, want Healthy (transient)", svc.Health())
	}
	if ts.m.Stats.DeadlineFaults != 1 || ts.m.Stats.Quarantines != 0 {
		t.Errorf("stats = %+v, want DeadlineFaults=1 Quarantines=0", ts.m.Stats)
	}
}

// TestDeadlineAbortsLongCrossing: a deadline armed before a crossing that
// overruns it mid-flight fires from Env.Work inside the callee, and the
// journal rolls the crossing back like any other contained fault.
func TestDeadlineAbortsLongCrossing(t *testing.T) {
	ts := bootFaulty(t, DefaultRestartPolicy(), nil)
	ts.enter(t, "APP", func(e *Env) {
		e.SetDeadline(e.Now() + 50_000)
		h := ts.m.MustResolve(e.Cubicle(), "SVC", "svc_spin")
		cf := CatchContained(func() { h.Call(e, 1_000) })
		e.ClearDeadline()
		if cf == nil {
			t.Fatal("overrunning crossing was not aborted")
		}
		var df *DeadlineFault
		if !errors.As(cf, &df) {
			t.Fatalf("cause = %v, want a *DeadlineFault", cf.Cause)
		}
	})
}

// TestRetryContainedRecoversTransientFault: a quota refusal that clears
// while RetryContained backs off ends in success, with the backoff charged
// to the virtual clock and each retry traced.
func TestRetryContainedRecoversTransientFault(t *testing.T) {
	ts := bootFaulty(t, DefaultRestartPolicy(), nil)
	svc := ts.cubs["SVC"]
	ts.m.SetMemQuota(svc.ID, 1) // everything refused
	policy := RetryPolicy{MaxAttempts: 3, BackoffBase: 1_000, BackoffFactor: 2, BackoffMax: 10_000}
	attempts := 0
	ts.enter(t, "APP", func(e *Env) {
		h := ts.m.MustResolve(e.Cubicle(), "SVC", "svc_alloc")
		before := e.Now()
		cf := RetryContained(e, policy, func() {
			attempts++
			if attempts == 3 {
				ts.m.SetMemQuota(svc.ID, 0) // pressure clears before the last try
			}
			h.Call(e, 64*vm.PageSize)
		})
		if cf != nil {
			t.Fatalf("retry did not recover: %v", cf)
		}
		if attempts != 3 {
			t.Errorf("fn ran %d times, want 3", attempts)
		}
		if elapsed := e.Now() - before; elapsed < 1_000+2_000 {
			t.Errorf("backoff charged %d cycles, want >= 3000", elapsed)
		}
	})
	if ts.m.Stats.Retries != 2 {
		t.Errorf("Stats.Retries = %d, want 2", ts.m.Stats.Retries)
	}
}

// TestRetryContainedGivesUpAndStopsOnDeterministicFault: attempts are
// bounded for transient causes, and a deterministic fault (protection
// violation) is not retried at all — retrying cannot unbreak it.
func TestRetryContainedGivesUpAndStopsOnDeterministicFault(t *testing.T) {
	ts := bootFaulty(t, DefaultRestartPolicy(), nil)
	svc := ts.cubs["SVC"]
	ts.m.SetMemQuota(svc.ID, 1)
	policy := RetryPolicy{MaxAttempts: 3, BackoffBase: 1_000, BackoffFactor: 2, BackoffMax: 10_000}
	attempts := 0
	ts.enter(t, "APP", func(e *Env) {
		h := ts.m.MustResolve(e.Cubicle(), "SVC", "svc_alloc")
		cf := RetryContained(e, policy, func() {
			attempts++
			h.Call(e, 64*vm.PageSize)
		})
		if cf == nil {
			t.Fatal("exhausted retries still reported success")
		}
		if attempts != 3 {
			t.Errorf("fn ran %d times, want MaxAttempts=3", attempts)
		}
	})
	ts.m.SetMemQuota(svc.ID, 0)
	// Deterministic fault: quarantines SVC, and because a quarantined
	// callee IS retryable (the supervisor may restart it), use a foreign
	// touch through a policy with one attempt to observe no retry charge.
	appBuf := ts.heapIn(t, "APP", 8)
	deterministic := 0
	ts.enter(t, "APP", func(e *Env) {
		h := ts.m.MustResolve(e.Cubicle(), "SVC", "svc_touch")
		retriesBefore := ts.m.Stats.Retries
		cf := RetryContained(e, policy, func() {
			deterministic++
			h.Call(e, uint64(appBuf))
		})
		if cf == nil {
			t.Fatal("protection fault reported as success")
		}
		// First attempt faults (protection), SVC is quarantined; the
		// remaining attempts hit ErrQuarantined which IS transient, so
		// they are consumed — but the total stays bounded by the policy.
		if deterministic > policy.MaxAttempts {
			t.Errorf("fn ran %d times, want <= %d", deterministic, policy.MaxAttempts)
		}
		if ts.m.Stats.Retries-retriesBefore > uint64(policy.MaxAttempts-1) {
			t.Errorf("unbounded retries recorded: %d", ts.m.Stats.Retries-retriesBefore)
		}
	})
	if svc.Health() == Healthy {
		t.Error("protection fault left SVC healthy; quarantine expected")
	}
}
