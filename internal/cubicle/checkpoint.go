package cubicle

import (
	"fmt"
	"sort"

	"cubicleos/internal/snapshot"
	"cubicleos/internal/vm"
)

// This file is the monitor's warm-recovery layer: periodic cubicle
// checkpoints taken at quiescent points, and the checkpoint-restore path
// the supervisor uses to warm-restart a quarantined cubicle instead of
// rebuilding it from empty.
//
// A checkpoint is a deterministic, versioned byte image (package snapshot)
// of everything a restart would otherwise destroy: the cubicle's heap
// pages with their metadata, the sub-allocator's free list and live-block
// table, the window descriptors, and one opaque blob per component
// (Component.Snapshot). Code, global and stack pages are deliberately
// absent — code and globals survive restarts untouched (immutable,
// re-verified state, exactly as after the original load) and stacks are
// recreated lazily by the next crossing.
//
// Quiescence rule: a cubicle may only be checkpointed when no thread has a
// frame executing inside it (so no crossing is in flight) and every window
// it owns is closed and unpinned (so no temporal grant is half-made). The
// cadence hook sits at trampoline Call entry at frame depth zero, driven
// only by non-parallel threads: cooperative threads never run concurrently,
// so at that point no cooperative thread is mid-crossing anywhere, and any
// parallel worker mid-crossing shows up in the cubicle's active-crossing
// counter, which quiescent() consults first.

// snapHook is one component's snapshot/restore callback pair, registered
// by the loader in load order.
type snapHook struct {
	name    string
	snap    func(*SnapCtx) ([]byte, error)
	restore func(*SnapCtx, []byte) error
}

// checkpointRecord is the monitor's last good checkpoint of one cubicle.
type checkpointRecord struct {
	img   []byte // encoded snapshot.Image
	cycle uint64 // virtual time of capture
	pages uint64 // heap pages captured
}

// SnapCtx is the capability handed to component Snapshot/Restore hooks:
// monitor-privileged access to simulated memory, bypassing MPK and window
// checks (the monitor executes with access to all keys, §5.3). Component
// state frequently lives in pages owned by another cubicle — NGINX-style
// deployments keep RAMFS file pages in ALLOC's arenas — and a snapshot
// must capture that content regardless of the current tag state.
type SnapCtx struct {
	m *Monitor
	// Cubicle is the cubicle being checkpointed or restored.
	Cubicle ID
}

// ReadMem copies n bytes of simulated memory at addr. It fails the hook
// (by returning an error) rather than faulting: a snapshot hook reading a
// stale address means the component's bookkeeping drifted from the page
// state, which vetoes the checkpoint instead of killing the run.
func (sc *SnapCtx) ReadMem(addr vm.Addr, n uint64) ([]byte, error) {
	b := make([]byte, n)
	if err := sc.m.AS.ReadAt(addr, b); err != nil {
		return nil, err
	}
	return b, nil
}

// WriteMem writes b to simulated memory at addr with monitor privileges.
func (sc *SnapCtx) WriteMem(addr vm.Addr, b []byte) error {
	return sc.m.AS.WriteAt(addr, b)
}

// EnableCheckpoints arms the checkpoint manager with a virtual-clock
// cadence: at the first trampoline call entry at or past each interval
// threshold, every quiescent checkpointable cubicle is captured. Zero
// disables. Like tracing and containment this is boot wiring; the hot
// path guards on a single integer check.
func (m *Monitor) EnableCheckpoints(interval uint64) {
	m.ckptInterval = interval
	m.ckptNext = interval
	m.recomputeFastCross()
}

// CheckpointInterval returns the armed cadence (0 = disabled).
func (m *Monitor) CheckpointInterval() uint64 { return m.ckptInterval }

// CheckpointInfo describes a cubicle's last good checkpoint for the
// inspector and tests.
type CheckpointInfo struct {
	Cubicle ID
	Cycle   uint64 // virtual time the checkpoint was captured at
	Bytes   uint64 // encoded image size
	Pages   uint64 // heap pages captured
}

// LastCheckpoint returns the last good checkpoint of cubicle id, if any.
func (m *Monitor) LastCheckpoint(id ID) (CheckpointInfo, bool) {
	ck := m.ckpts[id]
	if ck == nil {
		return CheckpointInfo{}, false
	}
	return CheckpointInfo{Cubicle: id, Cycle: ck.cycle, Bytes: uint64(len(ck.img)), Pages: ck.pages}, true
}

// maybeCheckpoint is the cadence gate, called at trampoline entry at frame
// depth zero with the monitor lock held. It fires at most one sweep per
// interval threshold, stamped against global virtual time so SMP cores
// agree on the schedule.
func (m *Monitor) maybeCheckpoint(t *Thread) {
	m.lockGlobal(t)
	defer m.unlockGlobal(t)
	now := m.smpNow()
	if now < m.ckptNext {
		return
	}
	for m.ckptNext <= now {
		m.ckptNext += m.ckptInterval
	}
	m.checkpointSweep(t, now)
}

// checkpointSweep captures every checkpointable, quiescent cubicle, in ID
// order for determinism. Cubicles that veto (a Snapshot hook returned an
// error) or are not quiescent keep their previous checkpoint.
func (m *Monitor) checkpointSweep(t *Thread, now uint64) {
	for _, c := range m.cubicles {
		if !m.checkpointable(c) {
			continue
		}
		m.checkpointOne(t, c, now)
	}
}

// checkpointable reports whether the cubicle can be warm-recovered at all:
// isolated, healthy, and every component fused into it registered both
// Snapshot and Restore (a partial set would restore pages under a
// component whose Go-side state was rebuilt from empty).
func (m *Monitor) checkpointable(c *Cubicle) bool {
	if c.Kind != KindIsolated || c.health != Healthy {
		return false
	}
	hooks := m.snapHooks[c.ID]
	if len(hooks) == 0 {
		return false
	}
	for _, h := range hooks {
		if h.snap == nil || h.restore == nil {
			return false
		}
	}
	return true
}

// quiescent applies the quiescence rule: no thread frame executing inside
// the cubicle, and all owned windows closed and unpinned.
func (m *Monitor) quiescent(c *Cubicle) bool {
	// Parallel workers are accounted by the active-crossing counter; their
	// frame slices belong to their own goroutines and are never scanned.
	if c.active.Load() != 0 {
		return false
	}
	for _, th := range m.threads {
		if th.parallel {
			continue
		}
		for i := range th.frames {
			if th.frames[i].exec == c.ID {
				return false
			}
		}
	}
	for _, w := range c.windows {
		if w == nil {
			continue
		}
		if w.Open != 0 || w.pinned != noPin {
			return false
		}
	}
	return true
}

// checkpointOne captures one cubicle into an encoded image and installs it
// as the last good checkpoint. The capture cost — a bulk copy of the image
// through the monitor — is charged to the calling thread's clock at the
// checked-memcpy rate, so checkpoint cadence shows up honestly in the
// virtual-time figures.
func (m *Monitor) checkpointOne(t *Thread, c *Cubicle, now uint64) {
	if !m.quiescent(c) {
		return
	}
	img := &snapshot.Image{Cubicle: uint32(c.ID), Cycle: now}

	// Component blobs first: a Snapshot error vetoes the round before any
	// page copying is paid for.
	sc := &SnapCtx{m: m, Cubicle: c.ID}
	for _, h := range m.snapHooks[c.ID] {
		data, err := h.snap(sc)
		if err != nil {
			return // veto: keep the previous checkpoint
		}
		img.Comps = append(img.Comps, snapshot.ComponentImage{Name: h.name, Data: data})
	}

	// Heap pages, in page-number order (ForEachPage iterates ascending).
	m.AS.ForEachPage(func(pn uint64, p *vm.Page) {
		if ID(p.Owner) != c.ID || p.Type != vm.PageHeap {
			return
		}
		perm, key := p.Meta()
		pi := snapshot.PageImage{PN: pn, Key: key, Perm: uint8(perm), Type: uint8(p.Type)}
		pi.Data = p.Data
		img.Pages = append(img.Pages, pi)
	})

	// Sub-allocator state: the free list is kept sorted by address; the
	// live-block table is a map and must be sorted for determinism.
	img.Heap.ArenaBytes = c.heap.arenaBytes
	img.Heap.LiveBytes = c.heap.liveBytes
	for _, b := range c.heap.free {
		img.Heap.Free = append(img.Heap.Free, snapshot.Extent{Addr: uint64(b.addr), Size: b.size})
	}
	for a, n := range c.heap.sizes {
		img.Heap.Sizes = append(img.Heap.Sizes, snapshot.Extent{Addr: uint64(a), Size: n})
	}
	sort.Slice(img.Heap.Sizes, func(i, j int) bool { return img.Heap.Sizes[i].Addr < img.Heap.Sizes[j].Addr })

	// Window descriptors, rebuilt closed on restore (quiescence guarantees
	// they are closed now). Destroyed slots are skipped; their IDs stay
	// free-listed exactly as windowInit would reuse them.
	for _, w := range c.windows {
		if w == nil {
			continue
		}
		wi := snapshot.WindowImage{WID: uint32(w.ID)}
		for _, r := range w.Ranges {
			wi.Ranges = append(wi.Ranges, snapshot.Extent{Addr: uint64(r.Addr), Size: r.Size})
		}
		img.Windows = append(img.Windows, wi)
	}

	enc := snapshot.Encode(img)
	size := uint64(len(enc))
	cost := (size + 15) / 16 * m.Costs.CopyChunk16
	m.clkOf(t).Charge(cost)
	m.ckpts[c.ID] = &checkpointRecord{img: enc, cycle: now, pages: uint64(len(img.Pages))}
	st := m.st(t)
	st.Checkpoints++
	st.CheckpointBytes += size
	if m.trc != nil {
		m.trc.Checkpoint(int(c.ID), size, cost)
	}
}

// restoreCheckpoint rebuilds cubicle c from its last good checkpoint. It
// is called by the supervisor's restart path after teardown (windows
// destroyed, pages reclaimed, fresh sub-allocator, stacks dropped), so on
// entry the cubicle is exactly in the cold-rebuild state. On any error the
// partial restore is torn back down to that state and the caller falls
// back to the cold OnRestart path.
func (m *Monitor) restoreCheckpoint(c *Cubicle, ck *checkpointRecord) error {
	img, err := snapshot.Decode(ck.img)
	if err != nil {
		return err
	}
	if ID(img.Cubicle) != c.ID {
		return fmt.Errorf("checkpoint belongs to cubicle %d", img.Cubicle)
	}
	bytes := uint64(len(img.Pages)) * vm.PageSize
	if q := m.memQuota[c.ID]; q != 0 && m.memUsed[c.ID]+bytes > q {
		return &QuotaFault{Cubicle: c.ID, Resource: "pages", Used: m.memUsed[c.ID] + bytes, Limit: q}
	}

	undo := func() {
		m.sup.reclaimPages(c)
		c.heap = newSubAllocator(m, c.ID)
		for _, w := range c.windows {
			if w != nil {
				m.sup.destroyWindow(c, w)
			}
		}
		c.windows = c.windows[:0]
		for cls := range c.search {
			c.search[cls] = nil
		}
	}

	// Re-map every captured heap page at its original page number and
	// restore its contents. Pages take the cubicle's CURRENT key, not the
	// snapshot's — the key may have been recycled by tag virtualisation
	// since capture. MapAt bumps the address-space epoch, which invalidates
	// every thread's span TLB; on SMP one summary shootdown round below
	// pays the cross-core synchronisation.
	key := m.keyFor(c.ID)
	for i := range img.Pages {
		pi := &img.Pages[i]
		p, err := m.AS.MapAt(pi.PN, int(c.ID), vm.PageType(pi.Type), vm.Perm(pi.Perm), uint8(key))
		if err != nil {
			undo()
			return err
		}
		p.Data = pi.Data
	}
	m.memUsed[c.ID] += bytes

	// Rebuild the sub-allocator around the restored arenas.
	h := newSubAllocator(m, c.ID)
	h.arenaBytes = img.Heap.ArenaBytes
	h.liveBytes = img.Heap.LiveBytes
	for _, e := range img.Heap.Free {
		h.free = append(h.free, block{addr: vm.Addr(e.Addr), size: e.Size})
	}
	for _, e := range img.Heap.Sizes {
		h.sizes[vm.Addr(e.Addr)] = e.Size
	}
	c.heap = h

	// Rebuild window descriptors, closed and unpinned; the class and the
	// search lists are recomputed from the restored pages exactly as
	// windowAdd assigned them.
	for _, wi := range img.Windows {
		for int(wi.WID) >= len(c.windows) {
			c.windows = append(c.windows, nil)
		}
		w := &Window{ID: WID(wi.WID), Owner: c.ID, Class: classNone, pinned: noPin}
		for _, e := range wi.Ranges {
			w.Ranges = append(w.Ranges, Range{Addr: vm.Addr(e.Addr), Size: e.Size})
			if w.Class == classNone {
				if p := m.AS.Page(vm.Addr(e.Addr)); p != nil {
					w.Class = classOf(p.Type)
				}
			}
		}
		if w.Class != classNone {
			c.search[w.Class] = append(c.search[w.Class], int(w.ID))
		}
		c.windows[wi.WID] = w
	}

	// Component Go-side state last, when pages and allocator are live so
	// Restore hooks can touch simulated memory through the SnapCtx.
	sc := &SnapCtx{m: m, Cubicle: c.ID}
	blobs := make(map[string][]byte, len(img.Comps))
	for _, ci := range img.Comps {
		blobs[ci.Name] = ci.Data
	}
	for _, h := range m.snapHooks[c.ID] {
		data, ok := blobs[h.name]
		if !ok {
			undo()
			return fmt.Errorf("checkpoint missing component %q", h.name)
		}
		if err := h.restore(sc, data); err != nil {
			undo()
			return err
		}
	}

	// The restore itself is a bulk copy of the image back through the
	// monitor; charged at the same checked-memcpy rate as capture.
	// clkOf(nil) is the legacy monitor clock in non-parallel deployments
	// and the lock-protected shadow clock under parallel workers.
	m.clkOf(nil).Charge((uint64(len(ck.img)) + 15) / 16 * m.Costs.CopyChunk16)
	if len(img.Pages) > 0 {
		// One summary shootdown round synchronises the re-tagged pages
		// across cores (single-core machines charge nothing).
		m.shootdown(nil, c.ID, img.Pages[0].PN)
	}
	return nil
}
