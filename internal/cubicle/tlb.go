package cubicle

import (
	"cubicleos/internal/mpk"
	"cubicleos/internal/vm"
)

// This file implements the per-thread software TLB behind resolveSpan, in
// the spirit of the userspace permission caches that libmpk (key
// virtualisation) and ERIM (inlined PKRU gates) use to keep the
// common-case MPK check to a handful of instructions. The cache
// accelerates the simulator's wall clock only — a hit performs the exact
// zero-charge fast path that the full walk would have taken, so the
// virtual clock, Stats events and trace stream are unaffected by its
// presence.
//
// Like a hardware TLB, an entry caches only the *translation*: page
// number pn resolves to this vm.Page. The permission decision is
// recomputed on every access from live state — the thread's current PKRU
// register and the page's current (Perm, Key) — exactly as the MPK
// hardware re-evaluates PKRU against the page's tag on every load and
// store. That split is what makes the cache sound and fast at once:
//
//   - wrpkru, the trampoline-return PKRU restore (popFrame) and pinned
//     windows rewriting thread PKRUs all take effect immediately, because
//     t.pkru is read at lookup time, never cached;
//   - trap-and-map retags, tag-virtualisation evictions, pinned-range
//     retags and containment rollback's unpin retags take effect
//     immediately, because p.Key and p.Perm are read at lookup time (one
//     atomic metadata word). A retag therefore does NOT flush the cache —
//     the hot ping-pong pages of a cross-cubicle workload keep their
//     translations;
//   - only a change to the translation itself — vm.Map and vm.Unmap, as
//     on cubicle-restart page reclaim — invalidates, via the address
//     space epoch stamped into the entry at fill time. A stale epoch
//     means the pn→page binding may have been torn down or the page
//     frame recycled, so the dangling pointer is never dereferenced.
//
// Concurrency: each slot is an atomic pointer to an immutable entry, so
// the owning thread's lookups and fills never race with a cross-core
// shootdown clearing the slot (smp.go CASes it to nil). The hit path —
// one atomic slot load, one atomic epoch load, one atomic metadata load
// and a register compare against the thread's own PKRU — takes no shared
// lock, which is what lets crossings on different cores scale.
//
// A lookup whose translation is stale, or whose live permission check
// denies the access (the cached page was retagged away, or the PKRU
// changed), counts as a TLB invalidation observed and falls back to the
// full walk — which may trap-and-map, after which the translation is
// typically still valid and the very next access hits. Denials are never
// served from the cache.
const (
	tlbBits = 6
	tlbSize = 1 << tlbBits // entries per thread
	tlbMask = tlbSize - 1
)

// tlbEntry caches one page translation. In parallel mode entries are
// immutable once published to a slot — invalidation replaces the pointer,
// and the GC provides the grace period for concurrent readers. Outside
// parallel mode nothing reads a slot but its owning thread (cooperative
// shootdowns clear slots between accesses, never during one), so fills
// recycle a per-slot backing entry in place and the hot path allocates
// nothing. The zero page number never appears: page number 0 is reserved
// by the address space.
type tlbEntry struct {
	pn    uint64 // page number
	epoch uint64 // address-space epoch at fill time
	p     *vm.Page
}

// tlbLookup returns the cached page for pn if the thread's TLB holds a
// current translation and the live permission check allows the access,
// counting the hit. On a miss it counts why (a matching entry that is
// stale or no longer grants the access is an invalidation observed) and
// returns nil.
func (m *Monitor) tlbLookup(t *Thread, pn uint64, kind mpk.AccessKind) *vm.Page {
	st := m.st(t)
	if e := t.tlb[pn&tlbMask].Load(); e != nil && e.pn == pn {
		perm, key := e.p.Meta()
		if e.epoch == m.AS.Epoch() && t.pkru.Check(kind, perm, mpk.Key(key)) {
			st.TLBHits++
			return e.p
		}
		st.TLBInvalidations++
	}
	st.TLBMisses++
	return nil
}

// tlbFill caches page pn's translation after a successful slow-path
// check. The epoch is read fresh: the slow path may just have mapped a
// stack or heap arena. Parallel mode publishes a fresh immutable entry
// (cross-core shootdowns may be reading the old one); single-threaded
// mode rewrites the slot's backing entry in place, allocation-free.
func (m *Monitor) tlbFill(t *Thread, pn uint64, p *vm.Page) {
	slot := &t.tlb[pn&tlbMask]
	if m.parallel {
		slot.Store(&tlbEntry{pn: pn, epoch: m.AS.Epoch(), p: p})
		return
	}
	e := &t.tlbBuf[pn&tlbMask]
	e.pn, e.epoch, e.p = pn, m.AS.Epoch(), p
	slot.Store(e)
}

// tlbHolds reports whether thread t's TLB currently caches a translation
// for page pn. Test accessor: the contention and shootdown suites assert
// invalidation effects through it instead of poking the atomic slots.
func (t *Thread) tlbHolds(pn uint64) bool {
	e := t.tlb[pn&tlbMask].Load()
	return e != nil && e.pn == pn
}

// SetTLBEnabled turns the span TLB on or off. It defaults to on; tests and
// the differential fuzz oracle disable it to force every access through the
// naive page walk. Virtual time, Stats events and trace output are
// identical either way — only wall-clock speed and the TLB counters differ.
func (m *Monitor) SetTLBEnabled(on bool) { m.tlbOn = on }

// fastView returns a direct view of [addr, addr+n) when the whole span lies
// on a single page with a current translation whose live permission check
// allows the access. It is the one-lookup fast path of the checked
// accessors; ok=false sends the caller to resolveSpan. Like resolveSpan's
// no-trap path it has zero virtual-time side effects, and like tlbLookup
// it takes no shared lock.
func (m *Monitor) fastView(t *Thread, kind mpk.AccessKind, addr vm.Addr, n uint64) ([]byte, bool) {
	off := addr.PageOff()
	if addr == 0 || !m.tlbOn || off+n > vm.PageSize || n == 0 {
		return nil, false
	}
	pn := addr.PageNum()
	e := t.tlb[pn&tlbMask].Load()
	if e == nil || e.pn != pn || e.epoch != m.AS.Epoch() {
		return nil, false
	}
	perm, key := e.p.Meta()
	if !t.pkru.Check(kind, perm, mpk.Key(key)) {
		return nil, false
	}
	m.st(t).TLBHits++
	return e.p.Data[off : off+n], true
}
