package cubicle

import (
	"fmt"
	"sync/atomic"

	"cubicleos/internal/cycles"
	"cubicleos/internal/mpk"
	"cubicleos/internal/trace"
	"cubicleos/internal/vm"
)

// sharedKey is the MPK key carried by every shared cubicle's pages. It is
// enabled in every thread's PKRU, which is what makes a shared cubicle's
// static data "shared among all cubicles" (§3 ❹).
const sharedKey = mpk.Key(15)

// monitorKey tags the monitor's own pages and trampoline code thunks.
const monitorKey = mpk.Key(0)

// numIsolatedKeys is how many physical keys remain for isolated cubicles
// once the monitor and shared keys are reserved.
const numIsolatedKeys = int(mpk.NumKeys) - 2 // keys 1..14

// Monitor is the trusted memory monitor of §4/§5.3: it bootstraps the
// system, owns the page metadata, enforces cubicle isolation and window
// permissions via the lazy trap-and-map scheme, and hosts the
// cross-cubicle call trampolines. It is itself a trusted cubicle that
// executes with access to all keys.
type Monitor struct {
	AS    *vm.AddrSpace
	Clock *cycles.Clock
	Costs cycles.Costs
	Mode  Mode
	Stats Stats

	// trc is the optional tracing layer. It is nil unless EnableTracing
	// was called; every hot-path instrumentation site guards on that nil
	// check, which keeps ModeFull benchmarks with tracing off unaffected.
	trc *trace.Tracer

	// sup is the optional fault-containment supervisor (nil unless
	// EnableContainment was called). Like tracing, containment is strictly
	// opt-in and every hot-path hook guards on the nil check.
	sup *Supervisor
	// met is the optional virtual-time metrics pipeline (nil unless
	// EnableMetrics was called); see metrics.go. Guarded like trc/sup.
	met *metricsCollector
	// inj is the optional deterministic fault injector.
	inj Injector
	// restartHooks are per-cubicle component re-initialisation callbacks
	// the loader registers from Component.OnRestart.
	restartHooks map[ID][]func()
	// snapHooks are per-cubicle component snapshot/restore callbacks the
	// loader registers from Component.Snapshot/Restore, in load order. A
	// cubicle is only checkpointable when every component fused into it
	// registered both hooks (see checkpoint.go).
	snapHooks map[ID][]snapHook
	// ckptInterval, when non-zero, is the virtual-clock checkpoint cadence
	// (EnableCheckpoints); ckptNext is the next threshold; ckpts holds the
	// last good encoded checkpoint per cubicle.
	ckptInterval uint64
	ckptNext     uint64
	ckpts        map[ID]*checkpointRecord
	// memQuota caps the page bytes MapOwned will grant per cubicle
	// (absent = unlimited); memUsed tracks the bytes currently granted.
	memQuota map[ID]uint64
	memUsed  map[ID]uint64

	// tlbOn gates the per-thread span TLB (see tlb.go). On by default;
	// tests and the differential-fuzz oracle disable it to force the naive
	// page walk on every access.
	tlbOn bool

	// SMP state (see smp.go). smpN is the simulated core count (0/1 =
	// single-core, every SMP hook a no-op); coreClks[0] aliases Clock;
	// machine is the GVT view over the core clocks.
	smpN     int
	coreClks []*cycles.Clock
	machine  *cycles.Machine
	// gmu is the global monitor lock of the smp.go hierarchy, guarding
	// monitor-wide mutation (page table, key registry, windows/pins seen
	// by trap-and-map, health transitions, restart/checkpoint machinery).
	// parallel arms the hierarchy: it is set by the first SetThreadCore
	// and never cleared; while false every lock helper is a no-op.
	gmu      gLock
	parallel bool
	// lockCheck arms the lock-order checker (EnableLockCheck); heldBoot is
	// the checker's held-lock stack for monitor-context callers (t == nil).
	lockCheck bool
	heldBoot  []int32
	// monClk absorbs monitor-context (t == nil) virtual-time charges in
	// parallel mode, where m.Clock belongs to whichever worker runs core 0
	// and must keep its single-writer discipline. Serialised by gmu (all
	// monitor-context charges happen under it). Never used outside
	// parallel mode, so production accounting is untouched.
	monClk cycles.Clock
	// pkruEpoch (atomic, starts at 1) versions everything a cubicle's PKRU
	// value derives from: key assignments and pinned-window grants. Any
	// change bumps it, invalidating every cubicle's pkruCache at once;
	// parallel-mode crossings recompute the PKRU under gmu on a stale
	// epoch and otherwise read the cached value lock-free.
	pkruEpoch uint64
	// fastCross caches "no optional subsystem wants a hook at crossings":
	// tracing, fault injection, metrics sampling and checkpoint cadence
	// all disabled. The trampoline's trusted fast path tests this one flag
	// instead of walking the individual slow-path setup checks.
	fastCross bool

	// healthHook, when set, observes supervisor health-ladder transitions
	// (see SetHealthHook) — the cluster balancer's drain/re-admit signal.
	healthHook HealthHook

	cubicles    []*Cubicle
	byName      map[string]*Cubicle
	compOf      map[string]*Cubicle // component name -> hosting cubicle
	trampolines []*Trampoline
	guardPages  map[uint64]guardInfo // page number -> guard/thunk metadata
	threads     []*Thread
	// pinned lists windows carrying a window-specific tag (§8 extension).
	pinned []*Window

	// Physical-key allocation. With at most 14 isolated cubicles the
	// assignment is static; beyond that the monitor virtualises keys in
	// the style the paper points to (libmpk, §8), recycling the least
	// recently used key and retagging the evicted cubicle's pages.
	keyHolder [mpk.NumKeys]ID // which cubicle holds each physical key (-1 free)
	keyOf     map[ID]mpk.Key  // current physical key per isolated cubicle
	keyClock  uint64          // LRU tick
	keyUsed   [mpk.NumKeys]uint64
}

// NewMonitor creates a monitor for a system running in the given mode.
func NewMonitor(mode Mode, costs cycles.Costs) *Monitor {
	m := &Monitor{
		AS:           vm.NewAddrSpace(),
		Clock:        &cycles.Clock{},
		Costs:        costs,
		Mode:         mode,
		Stats:        newStats(),
		byName:       make(map[string]*Cubicle),
		compOf:       make(map[string]*Cubicle),
		guardPages:   make(map[uint64]guardInfo),
		keyOf:        make(map[ID]mpk.Key),
		restartHooks: make(map[ID][]func()),
		snapHooks:    make(map[ID][]snapHook),
		ckpts:        make(map[ID]*checkpointRecord),
		memQuota:     make(map[ID]uint64),
		memUsed:      make(map[ID]uint64),
		tlbOn:        true,
		pkruEpoch:    1,
	}
	m.recomputeFastCross()
	for i := range m.keyHolder {
		m.keyHolder[i] = -1
	}
	mon := &Cubicle{ID: MonitorID, Name: "MONITOR", Kind: KindTrusted, Key: monitorKey,
		exports: make(map[string]*Trampoline)}
	mon.heap = newSubAllocator(m, MonitorID)
	m.cubicles = []*Cubicle{mon}
	m.byName["MONITOR"] = mon
	m.keyHolder[monitorKey] = MonitorID
	m.keyHolder[sharedKey] = -2 // reserved for shared cubicles
	return m
}

// EnableTracing attaches a tracer with a ring of ringCap events to the
// monitor. Enable it before loading components so the per-cubicle cycle
// profile covers the whole virtual clock. The returned tracer is also
// available through Tracer.
func (m *Monitor) EnableTracing(ringCap int) *trace.Tracer {
	m.trc = trace.New(m.Clock, ringCap)
	m.trc.SetNamer(func(id int) string {
		if c := m.cubicleIfValid(ID(id)); c != nil {
			return c.Name
		}
		return ""
	})
	m.trc.SetTLBCounters(func() (uint64, uint64, uint64) {
		return m.Stats.TLBHits, m.Stats.TLBMisses, m.Stats.TLBInvalidations
	})
	if m.smpN > 1 {
		m.installCoreResolver()
	}
	m.recomputeFastCross()
	return m.trc
}

// recomputeFastCross refreshes the trusted-crossing fast-path flag after
// an optional subsystem was attached or detached (boot-time wiring).
func (m *Monitor) recomputeFastCross() {
	m.fastCross = m.trc == nil && m.inj == nil && m.met == nil && m.ckptInterval == 0
}

// bumpPKRUEpoch invalidates every cubicle's cached PKRU value. Called
// under gmu whenever key assignments or pinned grants change; a no-op
// outside parallel mode, where thread PKRUs are rewritten eagerly and no
// cache exists.
func (m *Monitor) bumpPKRUEpoch() {
	if m.parallel {
		atomic.AddUint64(&m.pkruEpoch, 1)
	}
}

// pkruForFast returns pkruFor(id), serving parallel-mode crossings from
// the cubicle's lock-free epoch-validated cache. Outside parallel mode it
// is exactly pkruFor, LRU key ticks included; in parallel mode a cache
// hit skips the tick (key-use recency degrades to per-epoch granularity,
// which only matters once 14 isolated cubicles contend for keys).
func (m *Monitor) pkruForFast(t *Thread, id ID) mpk.PKRU {
	if t == nil || !t.parallel {
		return m.pkruFor(id)
	}
	c := m.cubicle(id)
	ep := atomic.LoadUint64(&m.pkruEpoch)
	if v := c.pkruCache.Load(); v != 0 && uint32(v>>32) == uint32(ep) {
		return mpk.PKRU(uint32(v))
	}
	m.lockGlobal(t)
	p := m.pkruFor(id)
	c.pkruCache.Store(uint64(uint32(ep))<<32 | uint64(uint32(p)))
	m.unlockGlobal(t)
	return p
}

// Tracer returns the attached tracer, or nil when tracing is disabled.
func (m *Monitor) Tracer() *trace.Tracer { return m.trc }

// cubicle returns the cubicle with the given ID, panicking on a runtime
// bug (IDs are link-time constants; an unknown ID cannot come from
// untrusted code).
func (m *Monitor) cubicle(id ID) *Cubicle {
	if id < 0 || int(id) >= len(m.cubicles) {
		panic(fmt.Sprintf("cubicle: unknown cubicle ID %d", id))
	}
	return m.cubicles[id]
}

// Cubicles returns all cubicles in the system, monitor first.
func (m *Monitor) Cubicles() []*Cubicle {
	out := make([]*Cubicle, len(m.cubicles))
	copy(out, m.cubicles)
	return out
}

// CubicleByName returns the named cubicle, or nil.
func (m *Monitor) CubicleByName(name string) *Cubicle { return m.byName[name] }

// addCubicle registers a new cubicle. Only the loader calls this.
func (m *Monitor) addCubicle(name string, kind Kind) (*Cubicle, error) {
	if _, dup := m.byName[name]; dup {
		return nil, fmt.Errorf("cubicle: duplicate cubicle name %q", name)
	}
	if len(m.cubicles) >= MaxCubicles {
		return nil, fmt.Errorf("cubicle: deployment exceeds %d cubicles", MaxCubicles)
	}
	c := &Cubicle{
		ID:      ID(len(m.cubicles)),
		Name:    name,
		Kind:    kind,
		exports: make(map[string]*Trampoline),
	}
	switch kind {
	case KindShared, KindTrusted:
		if kind == KindShared {
			c.Key = sharedKey
		} else {
			c.Key = monitorKey
		}
	default:
		c.Key = m.acquireKey(c.ID)
	}
	c.heap = newSubAllocator(m, c.ID)
	m.cubicles = append(m.cubicles, c)
	m.byName[name] = c
	return c, nil
}

// acquireKey hands cubicle id a physical MPK key, evicting the least
// recently used holder if all 14 isolated keys are taken (tag
// virtualisation, §8). Eviction retags every page carrying the victim's
// key to the monitor key so that the victim's next access simply traps and
// remaps, preserving isolation throughout.
func (m *Monitor) acquireKey(id ID) mpk.Key {
	if k, ok := m.keyOf[id]; ok {
		m.keyClock++
		m.keyUsed[k] = m.keyClock
		return k
	}
	// Free key?
	for k := 1; k <= numIsolatedKeys; k++ {
		if m.keyHolder[k] == -1 {
			return m.assignKey(id, mpk.Key(k))
		}
	}
	// Evict the LRU holder.
	victim := mpk.Key(0)
	var oldest uint64 = ^uint64(0)
	for k := 1; k <= numIsolatedKeys; k++ {
		if m.keyUsed[k] < oldest {
			oldest = m.keyUsed[k]
			victim = mpk.Key(k)
		}
	}
	victimID := m.keyHolder[victim]
	delete(m.keyOf, victimID)
	m.Stats.KeyEvictions++
	if m.trc != nil {
		m.trc.KeyEviction(int(victimID), uint8(victim))
	}
	// Retag the victim's pages to the monitor key; each retag is a
	// pkey_mprotect through the host kernel — the price of key recycling
	// that libmpk measures and the paper's design mostly avoids.
	m.AS.ForEachPage(func(pn uint64, p *vm.Page) {
		if mpk.Key(p.Key()) == victim {
			p.SetKey(uint8(monitorKey))
			m.noteRetag(nil, victimID, vm.PageAddr(pn), monitorKey)
		}
	})
	if c := m.cubicleIfValid(victimID); c != nil {
		c.Key = 0xFF // no physical key until re-acquired
	}
	return m.assignKey(id, victim)
}

func (m *Monitor) cubicleIfValid(id ID) *Cubicle {
	if id < 0 || int(id) >= len(m.cubicles) {
		return nil
	}
	return m.cubicles[id]
}

func (m *Monitor) assignKey(id ID, k mpk.Key) mpk.Key {
	m.keyHolder[k] = id
	m.keyOf[id] = k
	m.keyClock++
	m.keyUsed[k] = m.keyClock
	if c := m.cubicleIfValid(id); c != nil {
		c.Key = k
	}
	m.bumpPKRUEpoch()
	return k
}

// keyFor returns the physical key of cubicle id, acquiring one if it was
// evicted. Shared and trusted cubicles have fixed keys.
func (m *Monitor) keyFor(id ID) mpk.Key {
	c := m.cubicle(id)
	switch c.Kind {
	case KindShared:
		return sharedKey
	case KindTrusted:
		return monitorKey
	}
	if c.Key == 0xFF {
		return m.acquireKey(id)
	}
	m.keyClock++
	m.keyUsed[c.Key] = m.keyClock
	return c.Key
}

// pkruFor computes the PKRU register value for a thread executing in
// cubicle id: its own key plus the shared key, everything else denied
// (Figure 3). When MPK is disabled (ablation modes) every thread runs
// with all keys allowed.
func (m *Monitor) pkruFor(id ID) mpk.PKRU {
	if !m.Mode.MPKEnabled() {
		return mpk.AllAllowed
	}
	c := m.cubicle(id)
	if c.Kind == KindTrusted {
		return mpk.AllAllowed
	}
	p := mpk.AllDenied
	p = p.Allow(m.keyFor(id))
	p = p.Allow(sharedKey)
	// Window-specific tags (§8 extension): keys of pinned windows the
	// cubicle owns or is granted.
	for _, k := range m.pinnedKeysFor(id) {
		p = p.Allow(k)
	}
	return p
}

// resolveSpan validates an n-byte access of the given kind at addr by
// thread t and leaves the thread's software TLB primed with the touched
// pages. A TLB hit skips the page walk entirely; a miss runs the full
// legacy logic — page lookup, page-table permission check, PKRU check and,
// on denial, the watchdog checkpoint and the trap-and-map protocol of §5.3
// / Figure 4 — before filling the entry. It panics with a ProtectionFault
// if the access is not authorised. The length is a full 64-bit byte count
// (n = 0 checks one byte); ranges that would wrap the address space fault
// instead of silently truncating.
func (m *Monitor) resolveSpan(t *Thread, kind mpk.AccessKind, addr vm.Addr, n uint64) {
	if n == 0 {
		n = 1
	}
	if addr == 0 {
		panic(&ProtectionFault{Addr: addr, Access: kind, Cubicle: t.cur, Owner: vm.NoOwner,
			Reason: "null pointer dereference"})
	}
	if uint64(addr)+n < uint64(addr) {
		panic(&ProtectionFault{Addr: addr, Access: kind, Cubicle: t.cur, Owner: vm.NoOwner,
			Reason: "access range wraps the address space"})
	}
	first, last := vm.PagesIn(addr, n)
	for pn := first; pn <= last; pn++ {
		if m.tlbOn {
			if m.tlbLookup(t, pn, kind) != nil {
				continue // TLB hit: the walk below would charge nothing anyway
			}
			p := m.checkPageSlow(t, kind, pn)
			m.tlbFill(t, pn, p)
			continue
		}
		m.checkPageSlow(t, kind, pn)
	}
}

// checkPageSlow is the TLB-miss path of resolveSpan: the legacy per-page
// access check, byte-for-byte identical in its virtual-time behaviour (the
// allowed path charges nothing; denial pays the watchdog checkpoint and
// trap-and-map). It returns the page, whose metadata reflects any retag the
// trap performed.
//
// The prefix up to and including the PKRU check is lock-free: the page
// lookup is an atomic page-table read, (perm, key) is one atomic metadata
// word, and t.pkru belongs to the calling thread. Only a denied access —
// the trap — takes the global lock, under which the window search and the
// retag run exclusively. The permission check is deliberately NOT repeated
// under the lock: if a concurrent retag granted the access between check
// and trap, the trap simply re-retags to the same key, an interleaving the
// old big lock merely hid by picking one order.
func (m *Monitor) checkPageSlow(t *Thread, kind mpk.AccessKind, pn uint64) *vm.Page {
	pa := vm.PageAddr(pn)
	p := m.AS.Page(pa)
	if p == nil {
		panic(&ProtectionFault{Addr: pa, Access: kind, Cubicle: t.cur, Owner: vm.NoOwner,
			Reason: "unmapped page"})
	}
	perm, key := p.Meta()
	// Page-table permissions are checked regardless of MPK; the
	// trap-and-map handler never changes page permissions, only keys.
	if !pageTablePerm(kind, perm) {
		panic(&ProtectionFault{Addr: pa, Access: kind, Cubicle: t.cur, Owner: ID(p.Owner),
			PageType: p.Type, Reason: fmt.Sprintf("page-table permission %s denies %s", perm, kind)})
	}
	if t.pkru.Check(kind, perm, mpk.Key(key)) {
		return p // fast path: no trap
	}
	if m.sup != nil {
		// Monitor entry is a watchdog checkpoint: a runaway callee that
		// keeps touching memory is caught here.
		m.sup.watchdog(t)
	}
	m.lockGlobal(t)
	defer m.unlockGlobal(t)
	m.trapAndMap(t, kind, pa, p)
	return p
}

func pageTablePerm(kind mpk.AccessKind, perm vm.Perm) bool {
	switch kind {
	case mpk.AccessRead:
		return perm.Has(vm.PermRead)
	case mpk.AccessWrite:
		return perm.Has(vm.PermWrite)
	case mpk.AccessExec:
		return perm.Has(vm.PermExec)
	}
	return false
}

// trapAndMap is the monitor's protection-fault handler (Figure 4):
//
//	❶ the faulting access raised a page fault captured by the monitor;
//	❷ locate the page's owner and window-descriptor array via the O(1)
//	   page metadata map;
//	❸ linearly search the owner's window descriptors of the page's class;
//	❹ index the window's cubicle bitmask with the faulting cubicle, O(1);
//	❺ if allowed, retag the page's MPK key to the faulting cubicle.
//
// Runs under the global lock (taken by checkPageSlow): the window search
// reads owner window state and the retag mutates the key registry and
// page metadata, both gmu-guarded.
func (m *Monitor) trapAndMap(t *Thread, kind mpk.AccessKind, pa vm.Addr, p *vm.Page) {
	m.st(t).Faults++
	clk := m.clkOf(t)
	trapStart := clk.Cycles()
	clk.Charge(m.Costs.TrapEntry + m.Costs.PageMetaLookup)

	cur := t.cur
	owner := ID(p.Owner)
	deny := func(reason string) {
		m.st(t).DeniedFaults++
		if m.trc != nil {
			m.trc.Fault(t.id, int(cur), int(owner), uint64(pa), clk.Cycles()-trapStart)
			m.trc.DeniedFault(t.id, int(cur), int(owner), uint64(pa))
		}
		panic(&ProtectionFault{Addr: pa, Access: kind, Cubicle: cur, Owner: owner,
			PageType: p.Type, Reason: reason})
	}
	if p.Owner == vm.NoOwner {
		deny("page belongs to the trusted runtime")
	}
	allowed := false
	var searchSteps uint64
	switch {
	case owner == cur:
		// Implicit window 0: a cubicle always has access to the pages it
		// owns (Figure 2), even when a previous window access left them
		// tagged with another cubicle's key (causal tag consistency).
		allowed = true
	case !m.Mode.ACLEnabled():
		// Ablation: windows are "open for any access" — the trap and the
		// retag are paid, the ACL check is not.
		allowed = true
	default:
		ownerCub := m.cubicle(owner)
		cls := classOf(p.Type)
		if cls != classNone {
			for _, idx := range ownerCub.search[cls] {
				w := ownerCub.windows[idx]
				if w == nil {
					continue
				}
				searchSteps++
				clk.Charge(m.Costs.WindowSearchEntry)
				if w.covers(pa) && w.IsOpenFor(cur) {
					allowed = true
					break
				}
			}
		}
	}
	if searchSteps > 0 {
		m.st(t).WindowSearchSteps += searchSteps
		if m.trc != nil {
			m.trc.WindowSearch(t.id, int(cur), searchSteps)
		}
	}
	if !allowed {
		deny("no open window authorises the access")
	}
	if m.inj != nil {
		if k := m.inj.AtRetag(t.core, m.cubicle(cur).Name); k != InjectNone {
			// An injected retag failure presents as a denied trap so the
			// fault/denial accounting stays consistent with real denials.
			m.noteInjected(t, cur, "retag")
			deny("injected fault at retag")
		}
	}
	// ❺ Retag the page to the accessing cubicle's key. Writable access
	// is granted as a whole: windows are read/write grants in CubicleOS.
	key := m.keyFor(cur)
	if err := mpk.PkeyMprotect(m.AS, pa, 1, key); err != nil {
		panic(fmt.Sprintf("cubicle: retag failed: %v", err))
	}
	m.noteRetag(t, cur, pa, key)
	if m.trc != nil {
		m.trc.Fault(t.id, int(cur), int(owner), uint64(pa), clk.Cycles()-trapStart)
	}
}

// noteRetag charges and records one page retag (the caller has already
// changed the page's key), on behalf of thread t (nil for monitor-context
// retags). On an SMP machine the retag additionally pays the per-core
// shootdown synchronisation (smp.go).
func (m *Monitor) noteRetag(t *Thread, cub ID, addr vm.Addr, key mpk.Key) {
	m.clkOf(t).Charge(m.Costs.PkeyMprotect)
	m.st(t).Retags++
	if m.trc != nil {
		m.trc.Retag(tidOf(t), int(cub), uint64(addr), uint8(key))
	}
	m.shootdown(t, cub, addr.PageNum())
}

// wrpkru models one execution of the wrpkru instruction on thread t.
func (m *Monitor) wrpkru(t *Thread, v mpk.PKRU) {
	t.pkru = v
	if m.Mode.MPKEnabled() {
		t.clk.Charge(m.Costs.WRPKRU)
		m.st(t).WRPKRUs++
		if m.trc != nil {
			m.trc.WRPKRU(t.id, int(t.cur), uint64(v))
		}
	}
}

// MapOwned maps npages pages owned by cubicle id with the given type and
// permissions, tagged with the cubicle's current key. It is the monitor's
// page-granting primitive used by the loader and the sub-allocators;
// pages are strictly assigned an owner and type at allocation time (§5.3).
func (m *Monitor) MapOwned(id ID, npages int, typ vm.PageType, perm vm.Perm) vm.Addr {
	return m.mapOwnedFor(nil, id, npages, typ, perm)
}

// mapOwnedFor is MapOwned on behalf of thread t, which identifies the
// locker (lazy stack allocation runs inside a crossing; the lock must be
// attributed to the crossing thread, not monitor context).
func (m *Monitor) mapOwnedFor(t *Thread, id ID, npages int, typ vm.PageType, perm vm.Perm) vm.Addr {
	m.lockGlobal(t)
	defer m.unlockGlobal(t)
	return m.mapOwnedLocked(t, id, npages, typ, perm)
}

// mapOwnedLocked is MapOwned under an already-held global lock, on behalf
// of thread t (nil for monitor context). Internal callers that hold gmu —
// the heap grow path, restart reclamation — use it directly.
func (m *Monitor) mapOwnedLocked(t *Thread, id ID, npages int, typ vm.PageType, perm vm.Perm) vm.Addr {
	bytes := uint64(npages) * vm.PageSize
	// Stack pages are exempt from the quota: they are crossing
	// infrastructure allocated lazily in pushFrame, BEFORE the crossing's
	// containment is armed — a fault there could not be attributed or
	// rolled back. The overload vector the quota exists for is heap and
	// buffer growth; per-thread stacks are small and bounded.
	if typ != vm.PageStack {
		if q := m.memQuota[id]; q != 0 && m.memUsed[id]+bytes > q {
			m.noteQuota(t, id, "pages", m.memUsed[id]+bytes, q)
			panic(&QuotaFault{Cubicle: id, Resource: "pages", Used: m.memUsed[id] + bytes, Limit: q})
		}
	}
	key := m.keyFor(id)
	addr, err := m.AS.Map(npages, int(id), typ, perm, uint8(key))
	if err != nil {
		panic(&APIError{Cubicle: id, Op: "map", Reason: err.Error()})
	}
	if typ != vm.PageStack {
		m.memUsed[id] += bytes
	}
	return addr
}

// SetPagePerm is deliberately absent from the untrusted API: CubicleOS
// does not allow cubicles to change the execution permissions of any page
// (§4). The monitor-internal variant exists for the loader only.
func (m *Monitor) setPagePermInternal(addr vm.Addr, npages int, perm vm.Perm) {
	for i := 0; i < npages; i++ {
		p := m.AS.Page(addr.Add(uint64(i) * vm.PageSize))
		if p == nil {
			panic("cubicle: setPagePermInternal on unmapped page")
		}
		p.SetPerm(perm)
	}
}
