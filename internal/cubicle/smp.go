package cubicle

import (
	"sync"
	"sync/atomic"

	"cubicleos/internal/cycles"
)

// This file is the monitor's SMP layer. A multi-core deployment gives the
// monitor one virtual clock per simulated core; each Thread is placed on a
// core and charges that core's clock, so threads running on real goroutine
// workers advance virtual time independently between synchronisation
// points (the quantum-barrier GVT rule of cycles.Machine).
//
// The monitor itself stays a single trusted instance, protected by one
// reentrant lock in the style of a big kernel lock: every monitor entry —
// checked memory access, trampoline crossing, window call, allocation —
// takes it for the duration of the operation. That serialises monitor-side
// work (correctness first; parallel wall-clock speedups come from the
// sharded siege driver, where each core runs an independent single-core
// monitor and the lock compiles to one integer compare). On a single-core
// monitor every lock operation is a no-op, keeping the pre-SMP fast path
// and its figures byte-identical.
//
// Cross-core clock reads (smpNow, used for supervision timestamps) and
// cross-thread TLB shootdowns only happen while holding the monitor lock,
// which provides the happens-before edges the per-core clocks and
// per-thread TLBs themselves do not.

// smpLock is the monitor's reentrant big lock. Reentrancy is by thread:
// the owning Thread may re-enter (trampolines nest arbitrarily deep), and
// the depth counter is only ever touched by the current owner.
type smpLock struct {
	mu    sync.Mutex
	owner atomic.Int64 // thread id + 1; 0 = unowned
	depth int32
}

// enter takes the monitor lock on behalf of thread t. No-op on
// single-core deployments. A Thread must only ever be driven by one
// goroutine at a time; the owner test relies on it.
func (m *Monitor) enter(t *Thread) {
	if m.smpN <= 1 {
		return
	}
	me := int64(t.id) + 1
	if m.lk.owner.Load() == me {
		m.lk.depth++
		return
	}
	m.lk.mu.Lock()
	m.lk.owner.Store(me)
}

// exit releases one level of the monitor lock taken by enter.
func (m *Monitor) exit(t *Thread) {
	if m.smpN <= 1 {
		return
	}
	if m.lk.depth > 0 {
		m.lk.depth--
		return
	}
	m.lk.owner.Store(0)
	m.lk.mu.Unlock()
}

// EnableSMP gives the simulated machine n cores: core 0 keeps the boot
// clock (m.Clock), cores 1..n-1 get fresh clocks. Call it at boot, before
// any worker goroutine runs — like EnableTracing it is wiring, not a
// runtime operation. With n == 1 (the default) every SMP hook is a no-op
// and behaviour is byte-identical to a pre-SMP monitor.
func (m *Monitor) EnableSMP(n int) {
	if n < 1 {
		n = 1
	}
	m.smpN = n
	m.coreClks = make([]*cycles.Clock, n)
	m.coreClks[0] = m.Clock
	for i := 1; i < n; i++ {
		m.coreClks[i] = &cycles.Clock{}
	}
	m.machine = cycles.MachineOver(m.coreClks...)
	if m.trc != nil {
		m.installCoreResolver()
	}
}

// Cores returns the number of simulated cores (1 unless EnableSMP ran).
func (m *Monitor) Cores() int {
	if m.smpN < 1 {
		return 1
	}
	return m.smpN
}

// CoreClock returns core i's virtual clock.
func (m *Monitor) CoreClock(i int) *cycles.Clock {
	if m.coreClks == nil {
		if i == 0 {
			return m.Clock
		}
		panic("cubicle: CoreClock on a single-core monitor")
	}
	return m.coreClks[i]
}

// Machine returns the cycles.Machine over the monitor's core clocks (a
// single-core machine over the boot clock unless EnableSMP ran). The
// scheduler drives its quantum barriers.
func (m *Monitor) Machine() *cycles.Machine {
	if m.machine == nil {
		m.machine = cycles.MachineOver(m.Clock)
	}
	return m.machine
}

// SetThreadCore places thread t on the given core: from now on the thread
// charges that core's clock. Boot-time wiring, before workers run.
func (m *Monitor) SetThreadCore(t *Thread, core int) {
	if core < 0 || core >= m.Cores() {
		panic("cubicle: SetThreadCore core out of range")
	}
	t.core = core
	t.clk = m.CoreClock(core)
}

// clkOf returns the clock a monitor operation on behalf of thread t
// charges: the thread's core clock, or the boot clock for monitor-context
// work (t == nil — supervisor reclamation, key evictions at boot).
func (m *Monitor) clkOf(t *Thread) *cycles.Clock {
	if t == nil || t.clk == nil {
		return m.Clock
	}
	return t.clk
}

// coreOfThread is the simulated core t runs on (0 for monitor context).
func coreOfThread(t *Thread) int {
	if t == nil {
		return 0
	}
	return t.core
}

// tidOf is the trace thread ID of t (-1 for monitor context).
func tidOf(t *Thread) int {
	if t == nil {
		return -1
	}
	return t.id
}

// smpNow is global virtual time as observed from inside the monitor: the
// boot clock on a single-core machine, the maximum over core clocks on an
// SMP one (the monitor lock is a synchronisation point, so the max is
// exactly the GVT rule applied at monitor entry). Supervision timestamps
// (quarantine backoffs, restart windows) use it so that health decisions
// are consistent across cores. Callers hold the monitor lock.
func (m *Monitor) smpNow() uint64 {
	if m.smpN <= 1 {
		return m.Clock.Cycles()
	}
	max := uint64(0)
	for _, c := range m.coreClks {
		if v := c.Cycles(); v > max {
			max = v
		}
	}
	return max
}

// shootdown synchronises a page retag across cores, libmpk-style: a safe
// multi-threaded pkey_mprotect must update every other thread's view of
// the key state before the retag takes effect, an IPI-like round trip per
// remote core. The simulator models it by charging ShootdownIPI per
// remote core to the retagging thread and invalidating the page's entry
// in every OTHER thread's span TLB (the retagging thread's own entry is
// revalidated against live state at its next lookup, exactly as before).
// Single-core machines charge and invalidate nothing, keeping their
// figures byte-identical to the pre-SMP cost model. Callers hold the
// monitor lock.
func (m *Monitor) shootdown(t *Thread, cub ID, pn uint64) {
	if m.smpN <= 1 {
		return
	}
	var cleared uint64
	for _, th := range m.threads {
		if th == t {
			continue
		}
		if e := &th.tlb[pn&tlbMask]; e.pn == pn {
			*e = tlbEntry{}
			cleared++
		}
	}
	cost := m.Costs.ShootdownIPI * uint64(m.smpN-1)
	m.clkOf(t).Charge(cost)
	m.Stats.TLBShootdowns++
	m.Stats.TLBShootdownInvalidations += cleared
	if m.trc != nil {
		m.trc.Shootdown(tidOf(t), int(cub), cleared, cost)
	}
}

// installCoreResolver reshards the tracer over the per-core clocks and
// points it at the monitor's thread placement, so events route to the
// recording core's lock-free ring shard and are stamped with that core's
// clock.
func (m *Monitor) installCoreResolver() {
	m.trc.SetCores(m.coreClks, func(tid int) int {
		if tid >= 0 && tid < len(m.threads) {
			return m.threads[tid].core
		}
		return 0
	})
}
