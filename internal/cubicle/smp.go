package cubicle

import (
	"fmt"
	"sync"
	"sync/atomic"

	"cubicleos/internal/cycles"
)

// This file is the monitor's SMP layer. A multi-core deployment gives the
// monitor one virtual clock per simulated core; each Thread is placed on a
// core and charges that core's clock, so threads running on real goroutine
// workers advance virtual time independently between synchronisation
// points (the quantum-barrier GVT rule of cycles.Machine).
//
// The monitor used to serialise every entry — checked memory access,
// trampoline crossing, window call, allocation — behind one reentrant big
// kernel lock. That lock is gone. The replacement is a lock hierarchy
// (documented in DESIGN.md §14) sized to what each path actually mutates:
//
//   - gmu, the global monitor lock, guards monitor-wide mutation: the page
//     table (Map/Unmap/MapAt), the key registry and LRU state, window and
//     pin state reachable from the trap-and-map search, supervisor health
//     transitions, restart and checkpoint machinery, and PKRU recomputation.
//     It is reentrant by thread because slow paths nest (a restart hook may
//     allocate, which may grow, which maps pages).
//   - each Cubicle carries an inner mu guarding cubicle-local mutable
//     state: its heap sub-allocator free lists and window descriptor
//     slots. The order is gmu BEFORE cub.mu, and multiple cubicle locks
//     in ascending ID order; taking gmu while holding any cubicle lock is
//     a deadlock waiting to happen and panics under EnableLockCheck.
//   - read-mostly metadata is epoch/RCU-published and read without any
//     lock: the page table is an atomic pointer to a table of atomic page
//     pointers, page (perm, key) metadata is one packed atomic word, the
//     address-space epoch and per-core clocks are atomic words, and the
//     per-thread span TLB holds immutable entries in atomic slots. The
//     crossing fast path, the Env accessors and the TLB hit path therefore
//     take no shared lock at all.
//
// Everything above only arms itself in PARALLEL mode: SetThreadCore marks
// a thread as driven by its own goroutine worker, and the first such call
// flips the monitor into parallel mode. Outside parallel mode (all
// production deployments — the boot thread drives every core's work
// cooperatively) the lock helpers compile down to a single flag test and
// acquire nothing, which keeps the pre-SMP single-threaded fast path and
// its figures byte-identical, exactly as the old big lock's no-op path
// did — except that now multi-core production runs pay no mutex either.

// gLock is the monitor's global lock, reentrant by thread: the owning
// Thread may re-enter (restart hooks and trap handlers nest arbitrarily
// deep through the public API), and the depth counter is only ever touched
// by the current owner.
type gLock struct {
	mu    sync.Mutex
	owner atomic.Int64 // thread id + 1; -1 = monitor context (t == nil); 0 = unowned
	depth int32
}

// lockOwnerID returns the gLock identity of t. Monitor-context callers
// (t == nil: the loader, boot wiring, fold points) share one identity —
// at most one such goroutine may use the monitor at a time, which the
// single boot goroutine satisfies by construction.
func lockOwnerID(t *Thread) int64 {
	if t == nil {
		return -1
	}
	return int64(t.id) + 1
}

// lockGlobal takes the global monitor lock on behalf of thread t (nil for
// monitor context). Reentrant; a no-op outside parallel mode apart from
// the order bookkeeping EnableLockCheck asks for.
func (m *Monitor) lockGlobal(t *Thread) {
	if m.lockCheck {
		m.noteAcquire(t, lockSlotGlobal)
	}
	if !m.parallel {
		return
	}
	me := lockOwnerID(t)
	if m.gmu.owner.Load() == me {
		m.gmu.depth++
		return
	}
	m.gmu.mu.Lock()
	m.gmu.owner.Store(me)
}

// unlockGlobal releases one level of the global lock taken by lockGlobal.
func (m *Monitor) unlockGlobal(t *Thread) {
	if m.lockCheck {
		m.noteRelease(t, lockSlotGlobal)
	}
	if !m.parallel {
		return
	}
	if m.gmu.depth > 0 {
		m.gmu.depth--
		return
	}
	m.gmu.owner.Store(0)
	m.gmu.mu.Unlock()
}

// lockCub takes cubicle c's inner lock on behalf of t. Not reentrant; the
// documented order (gmu before any cub.mu, cubicle locks in ascending ID
// order) is enforced by EnableLockCheck.
func (m *Monitor) lockCub(t *Thread, c *Cubicle) {
	if m.lockCheck {
		m.noteAcquire(t, int32(c.ID))
	}
	if !m.parallel {
		return
	}
	c.mu.Lock()
}

// unlockCub releases cubicle c's inner lock.
func (m *Monitor) unlockCub(t *Thread, c *Cubicle) {
	if m.lockCheck {
		m.noteRelease(t, int32(c.ID))
	}
	if !m.parallel {
		return
	}
	c.mu.Unlock()
}

// lockSlotGlobal is the held-lock tag of the global lock in the order
// checker; cubicle locks use their non-negative cubicle ID.
const lockSlotGlobal int32 = -1

// EnableLockCheck arms the lock-order checker: every lockGlobal/lockCub
// acquisition is recorded per thread and a violation of the documented
// hierarchy panics immediately with both lock names. The checker works in
// and out of parallel mode (the order bookkeeping runs even where the
// mutexes compile to no-ops), so single-threaded fuzzing exercises the
// same discipline the contention suite runs under race. Boot-time wiring.
func (m *Monitor) EnableLockCheck() { m.lockCheck = true }

// noteAcquire records thread t acquiring the given lock slot and panics on
// a hierarchy violation. Monitor-context acquisitions (t == nil) are
// tracked on a dedicated shelf; only one monitor-context goroutine exists.
func (m *Monitor) noteAcquire(t *Thread, slot int32) {
	held := &m.heldBoot
	if t != nil {
		held = &t.held
	}
	if slot == lockSlotGlobal {
		for _, h := range *held {
			if h != lockSlotGlobal {
				panic(fmt.Sprintf(
					"cubicle: lock-order violation: global lock acquired while holding cubicle %d lock", h))
			}
		}
	} else {
		for _, h := range *held {
			if h == slot {
				panic(fmt.Sprintf("cubicle: lock-order violation: cubicle %d lock acquired twice", slot))
			}
			if h != lockSlotGlobal && h >= slot {
				panic(fmt.Sprintf(
					"cubicle: lock-order violation: cubicle %d lock acquired while holding cubicle %d lock", slot, h))
			}
		}
	}
	*held = append(*held, slot)
}

// noteRelease records thread t releasing the given lock slot (innermost
// first; releasing a lock that is not the most recent acquisition of that
// slot kind is itself a discipline violation and panics).
func (m *Monitor) noteRelease(t *Thread, slot int32) {
	held := &m.heldBoot
	if t != nil {
		held = &t.held
	}
	for i := len(*held) - 1; i >= 0; i-- {
		if (*held)[i] == slot {
			*held = append((*held)[:i], (*held)[i+1:]...)
			return
		}
	}
	panic(fmt.Sprintf("cubicle: lock-order violation: released lock %d that is not held", slot))
}

// st routes a Stats update made on behalf of thread t. Parallel threads
// stage counters in their own Stats shard (merged by FoldStats at a GVT
// barrier or test quiescence); everything else — production deployments,
// boot wiring, monitor-context work — writes m.Stats directly, exactly as
// before, so no reader of m.Stats changes behaviour outside parallel mode.
func (m *Monitor) st(t *Thread) *Stats {
	if t != nil && t.parallel {
		return &t.stats
	}
	return &m.Stats
}

// FoldStats merges every parallel thread's staged counter shard into
// m.Stats and zeroes the shards, returning m.Stats. Call it only at a
// quiescent point (a GVT barrier, or after all worker goroutines joined):
// folding mid-flight would race with the shards' owners. Outside parallel
// mode there is nothing staged and the call is a cheap no-op.
func (m *Monitor) FoldStats() *Stats {
	m.lockGlobal(nil)
	for _, t := range m.threads {
		if t.parallel {
			m.Stats.Merge(&t.stats)
			t.stats.Reset()
		}
	}
	m.unlockGlobal(nil)
	return &m.Stats
}

// EnableSMP gives the simulated machine n cores: core 0 keeps the boot
// clock (m.Clock), cores 1..n-1 get fresh clocks. Call it at boot, before
// any worker goroutine runs — like EnableTracing it is wiring, not a
// runtime operation. With n == 1 (the default) every SMP hook is a no-op
// and behaviour is byte-identical to a pre-SMP monitor.
func (m *Monitor) EnableSMP(n int) {
	if n < 1 {
		n = 1
	}
	m.smpN = n
	m.coreClks = make([]*cycles.Clock, n)
	m.coreClks[0] = m.Clock
	for i := 1; i < n; i++ {
		m.coreClks[i] = &cycles.Clock{}
	}
	m.machine = cycles.MachineOver(m.coreClks...)
	if m.trc != nil {
		m.installCoreResolver()
	}
}

// Cores returns the number of simulated cores (1 unless EnableSMP ran).
func (m *Monitor) Cores() int {
	if m.smpN < 1 {
		return 1
	}
	return m.smpN
}

// CoreClock returns core i's virtual clock.
func (m *Monitor) CoreClock(i int) *cycles.Clock {
	if m.coreClks == nil {
		if i == 0 {
			return m.Clock
		}
		panic("cubicle: CoreClock on a single-core monitor")
	}
	return m.coreClks[i]
}

// Machine returns the cycles.Machine over the monitor's core clocks (a
// single-core machine over the boot clock unless EnableSMP ran). The
// scheduler drives its quantum barriers.
func (m *Monitor) Machine() *cycles.Machine {
	if m.machine == nil {
		m.machine = cycles.MachineOver(m.Clock)
	}
	return m.machine
}

// SetThreadCore places thread t on the given core: from now on the thread
// charges that core's clock. It also marks the thread as PARALLEL — driven
// by its own goroutine worker — and flips the monitor into parallel mode,
// arming the lock hierarchy, the staged stats shards and the epoch-based
// PKRU scheme for every monitor operation from here on. Boot-time wiring,
// strictly before workers run: the parallel flag is published by the
// happens-before edge of starting the worker goroutines.
//
// Production deployments never call this — the boot thread drives all
// cores' work cooperatively — so they never enter parallel mode and keep
// the lock-free single-threaded behaviour bit-identical to the legacy
// monitor.
func (m *Monitor) SetThreadCore(t *Thread, core int) {
	if core < 0 || core >= m.Cores() {
		panic("cubicle: SetThreadCore core out of range")
	}
	t.core = core
	t.clk = m.CoreClock(core)
	t.parallel = true
	if !m.parallel {
		m.parallel = true
		// Page frames must not be recycled while lock-free readers may
		// still hold pointers to them: let the GC provide the RCU grace
		// period instead of the allocator pool.
		m.AS.SetPooling(false)
	}
}

// clkOf returns the clock a monitor operation on behalf of thread t
// charges: the thread's core clock, or the boot clock for monitor-context
// work (t == nil — supervisor reclamation, key evictions at boot). In
// parallel mode monitor-context charges go to a dedicated monitor clock
// instead: m.Clock belongs to whichever worker owns core 0, and the
// single-writer discipline of cycles.Clock must hold. All such charges
// happen under gmu, which serialises the monitor clock's writers.
func (m *Monitor) clkOf(t *Thread) *cycles.Clock {
	if t == nil || t.clk == nil {
		if m.parallel {
			return &m.monClk
		}
		return m.Clock
	}
	return t.clk
}

// coreOfThread is the simulated core t runs on (0 for monitor context).
func coreOfThread(t *Thread) int {
	if t == nil {
		return 0
	}
	return t.core
}

// tidOf is the trace thread ID of t (-1 for monitor context).
func tidOf(t *Thread) int {
	if t == nil {
		return -1
	}
	return t.id
}

// smpNow is global virtual time as observed from inside the monitor: the
// boot clock on a single-core machine, the maximum over core clocks on an
// SMP one. Per-core clocks publish every advance with an atomic store and
// smpNow reads them with atomic loads, so the max is safe from any thread
// without a lock; it is a conservative (never ahead of any core's own
// view) GVT estimate, which is exactly what supervision timestamps
// (quarantine backoffs, restart windows) need to stay consistent across
// cores.
func (m *Monitor) smpNow() uint64 {
	if m.smpN <= 1 {
		return m.Clock.Cycles()
	}
	max := uint64(0)
	for _, c := range m.coreClks {
		if v := c.Cycles(); v > max {
			max = v
		}
	}
	return max
}

// shootdown synchronises a page retag across cores, libmpk-style: a safe
// multi-threaded pkey_mprotect must update every other thread's view of
// the key state before the retag takes effect, an IPI-like round trip per
// remote core. The simulator models it by charging ShootdownIPI per
// remote core to the retagging thread and invalidating the page's entry
// in every OTHER thread's span TLB (the retagging thread's own entry is
// revalidated against live state at its next lookup, exactly as before).
// Remote entries are cleared by CAS on the atomic slot, so a shootdown
// races safely with the victim thread's own lookups and fills; only
// entries actually cleared are counted. Single-core machines charge and
// invalidate nothing, keeping their figures byte-identical to the pre-SMP
// cost model. Callers hold gmu (retags only happen under it), which keeps
// m.threads stable.
func (m *Monitor) shootdown(t *Thread, cub ID, pn uint64) {
	if m.smpN <= 1 {
		return
	}
	var cleared uint64
	for _, th := range m.threads {
		if th == t {
			continue
		}
		slot := &th.tlb[pn&tlbMask]
		if e := slot.Load(); e != nil && e.pn == pn {
			if slot.CompareAndSwap(e, nil) {
				cleared++
			}
		}
	}
	cost := m.Costs.ShootdownIPI * uint64(m.smpN-1)
	m.clkOf(t).Charge(cost)
	st := m.st(t)
	st.TLBShootdowns++
	st.TLBShootdownInvalidations += cleared
	if m.trc != nil {
		m.trc.Shootdown(tidOf(t), int(cub), cleared, cost)
	}
}

// installCoreResolver reshards the tracer over the per-core clocks and
// points it at the monitor's thread placement, so events route to the
// recording core's lock-free ring shard and are stamped with that core's
// clock.
func (m *Monitor) installCoreResolver() {
	m.trc.SetCores(m.coreClks, func(tid int) int {
		if tid >= 0 && tid < len(m.threads) {
			return m.threads[tid].core
		}
		return 0
	})
}
