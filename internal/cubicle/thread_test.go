package cubicle

import (
	"testing"

	"cubicleos/internal/vm"
)

// TestPerThreadPKRU: MPK access rights are per-thread — two threads
// executing in different cubicles simultaneously hold different PKRU
// values, and each sees only its own cubicle's memory.
func TestPerThreadPKRU(t *testing.T) {
	ts := bootPair(t, ModeFull)
	fooBuf := ts.heapIn(t, "FOO", 16)
	barBuf := ts.heapIn(t, "BAR", 16)

	t1 := ts.m.NewThread()
	t2 := ts.m.NewThread()
	e1 := ts.m.NewEnv(t1)
	e2 := ts.m.NewEnv(t2)

	err1 := ts.m.RunAs(e1, ts.cubs["FOO"].ID, func(e *Env) {
		e.StoreByte(fooBuf, 1) // own memory: fine
		// Interleave: while t1 is inside FOO, t2 enters BAR.
		err2 := ts.m.RunAs(e2, ts.cubs["BAR"].ID, func(e2i *Env) {
			e2i.StoreByte(barBuf, 2) // own memory: fine
			// t2 (in BAR) cannot see FOO's buffer...
			if fault := Catch(func() { e2i.LoadByte(fooBuf) }); fault == nil {
				t.Error("thread 2 in BAR read FOO memory")
			}
			// ...while t1 (in FOO) still can, at the same moment.
			if got := e.LoadByte(fooBuf); got != 1 {
				t.Errorf("thread 1 lost access to its own cubicle: %d", got)
			}
		})
		if err2 != nil {
			t.Error(err2)
		}
		// And t1 cannot see BAR's buffer.
		if fault := Catch(func() { e.LoadByte(barBuf) }); fault == nil {
			t.Error("thread 1 in FOO read BAR memory")
		}
	})
	if err1 != nil {
		t.Fatal(err1)
	}
}

// TestPerThreadStacks: each thread gets its own per-cubicle stacks.
func TestPerThreadStacks(t *testing.T) {
	ts := bootPair(t, ModeFull)
	t1 := ts.m.NewThread()
	t2 := ts.m.NewThread()
	e1 := ts.m.NewEnv(t1)
	e2 := ts.m.NewEnv(t2)
	var a1, a2 vm.Addr
	if err := ts.m.RunAs(e1, ts.cubs["FOO"].ID, func(e *Env) { a1 = e.Alloca(64) }); err != nil {
		t.Fatal(err)
	}
	if err := ts.m.RunAs(e2, ts.cubs["FOO"].ID, func(e *Env) { a2 = e.Alloca(64) }); err != nil {
		t.Fatal(err)
	}
	if a1 == a2 {
		t.Error("two threads share one stack")
	}
	p1, p2 := ts.m.AS.Page(a1), ts.m.AS.Page(a2)
	if p1.Type != vm.PageStack || p2.Type != vm.PageStack {
		t.Error("stack allocations not on stack pages")
	}
}

// TestThreadDepthAndCaller exercises the frame bookkeeping.
func TestThreadDepthAndCaller(t *testing.T) {
	ts := bootPair(t, ModeFull)
	if ts.env.T.Depth() != 0 {
		t.Fatalf("initial depth %d", ts.env.T.Depth())
	}
	ts.enter(t, "FOO", func(e *Env) {
		if e.T.Depth() != 1 {
			t.Errorf("depth in FOO = %d", e.T.Depth())
		}
		probe := func(inner *Env, args []uint64) []uint64 { return nil }
		_ = probe
		h := ts.m.MustResolve(e.Cubicle(), "BAR", "bar_alloc")
		h.Call(e, 8)
		if e.T.Depth() != 1 {
			t.Errorf("depth after call returned = %d", e.T.Depth())
		}
	})
	if ts.env.T.Depth() != 0 {
		t.Errorf("final depth %d", ts.env.T.Depth())
	}
}
