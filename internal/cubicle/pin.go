package cubicle

import (
	"fmt"

	"cubicleos/internal/mpk"
	"cubicleos/internal/vm"
)

// Window pinning implements the design extension the paper sketches in
// §8: "it would be interesting to explore new designs that combine
// CubicleOS's trap-and-map approach with window-specific tags that reduce
// overhead for frequently-used windows."
//
// A pinned window holds a dedicated MPK key of its own: its pages are
// retagged to that key once, and the key is enabled in the PKRU of the
// owner and of every cubicle the window is open for. Accesses to the
// window then never fault — the producer/consumer tag ping-pong of
// trap-and-map disappears — at the price of consuming one of the 16
// hardware keys per pinned window (the very exhaustion problem
// trap-and-map avoids, §5.6).

// noPin marks an unpinned window.
const noPin = mpk.Key(0xFF)

// pinWindow assigns window wid of cubicle c a dedicated key. It reports
// whether the window was newly pinned (for the containment journal).
func (m *Monitor) pinWindow(t *Thread, c ID, wid WID) bool {
	m.lockGlobal(t)
	defer m.unlockGlobal(t)
	m.chargeWindowOp(t, c, "pin", wid)
	w := m.window(c, wid, "window_pin")
	if w.pinned != noPin {
		return false
	}
	key, ok := m.allocPinKey()
	if !ok {
		panic(&APIError{Cubicle: c, Op: "window_pin",
			Reason: "no free MPK keys for a window-specific tag"})
	}
	w.pinned = key
	m.pinned = append(m.pinned, w)
	// Retag every page of the window to the dedicated key — each one a
	// kernel pkey_mprotect, paid once.
	m.retagWindow(t, w, key)
	m.refreshThreadPKRUs(t)
	return true
}

// unpinWindow releases the window's dedicated key; its pages revert to
// the owner's key and subsequent cross-cubicle accesses go back to
// trap-and-map.
func (m *Monitor) unpinWindow(t *Thread, c ID, wid WID) {
	m.lockGlobal(t)
	defer m.unlockGlobal(t)
	m.chargeWindowOp(t, c, "unpin", wid)
	w := m.window(c, wid, "window_unpin")
	if w.pinned == noPin {
		return
	}
	m.retagWindow(t, w, m.keyFor(w.Owner))
	m.releasePinKey(w.pinned)
	w.pinned = noPin
	for i, pw := range m.pinned {
		if pw == w {
			m.pinned = append(m.pinned[:i], m.pinned[i+1:]...)
			break
		}
	}
	m.refreshThreadPKRUs(t)
}

// retagWindow sets every page of the window to key.
func (m *Monitor) retagWindow(t *Thread, w *Window, key mpk.Key) {
	for _, r := range w.Ranges {
		first, last := vm.PagesIn(r.Addr, r.Size)
		for pn := first; pn <= last; pn++ {
			if err := mpk.PkeyMprotect(m.AS, vm.PageAddr(pn), 1, key); err != nil {
				panic(fmt.Sprintf("cubicle: pin retag failed: %v", err))
			}
			m.noteRetag(t, w.Owner, vm.PageAddr(pn), key)
		}
	}
}

// allocPinKey takes a key from the isolated pool for a pinned window.
func (m *Monitor) allocPinKey() (mpk.Key, bool) {
	for k := 1; k <= numIsolatedKeys; k++ {
		if m.keyHolder[k] == -1 {
			m.keyHolder[k] = -3 // reserved for a pinned window
			return mpk.Key(k), true
		}
	}
	return 0, false
}

// releasePinKey returns a pinned window's key to the pool.
func (m *Monitor) releasePinKey(k mpk.Key) {
	if m.keyHolder[k] == -3 {
		m.keyHolder[k] = -1
	}
}

// pinnedKeysFor returns the window-specific keys cubicle id may use: keys
// of pinned windows it owns or that are open for it.
func (m *Monitor) pinnedKeysFor(id ID) []mpk.Key {
	var out []mpk.Key
	for _, w := range m.pinned {
		if w.Owner == id || w.IsOpenFor(id) {
			out = append(out, w.pinned)
		}
	}
	return out
}

// refreshThreadPKRUs reapplies the PKRU of every live thread whose
// current cubicle's rights may have changed (pin/unpin/open/close of a
// pinned window must take effect immediately — revocation cannot wait
// for the next cubicle switch). Callers hold the global lock; act is the
// acting thread (nil in monitor context, e.g. supervisor rollback).
//
// In parallel mode a cross-thread PKRU rewrite would race with the worker
// that owns the register, so other workers are not touched: the PKRU-epoch
// bump invalidates every per-cubicle PKRU cache, and each worker picks up
// the new rights at its next crossing — revocation is at most one crossing
// lazy, exactly like the causal tag reassignment of §5.6. The acting
// thread's own register is still refreshed eagerly. A remote worker's
// in-flight access to a newly pinned page also stays correct without the
// eager rewrite: its TLB permission check re-reads the page's live key on
// every lookup, and a key miss falls back to the slow path under the lock.
func (m *Monitor) refreshThreadPKRUs(act *Thread) {
	if !m.Mode.MPKEnabled() {
		return
	}
	if m.parallel {
		m.bumpPKRUEpoch()
		if act != nil {
			act.pkru = m.pkruFor(act.cur)
		}
		return
	}
	for _, t := range m.threads {
		t.pkru = m.pkruFor(t.cur)
	}
}

// WindowPin assigns window wid a dedicated MPK key (§8 extension): its
// contents stop trap-and-mapping for the owner and every grantee.
func (e *Env) WindowPin(wid WID) {
	if e.M.pinWindow(e.T, e.T.cur, wid) && e.M.sup != nil {
		e.T.journal = append(e.T.journal, undoEntry{kind: undoUnpinWindow,
			owner: e.T.cur, wid: wid})
	}
}

// WindowUnpin reverts wid to the default lazy trap-and-map behaviour.
func (e *Env) WindowUnpin(wid WID) {
	e.M.unpinWindow(e.T, e.T.cur, wid)
}
