package cubicle

import (
	"encoding/binary"
	"errors"
	"fmt"
	"reflect"
	"strings"
	"testing"

	"cubicleos/internal/cycles"
	"cubicleos/internal/vm"
)

// ckptWorld is a supervised APP/SVC world where SVC is checkpointable:
// it keeps a Go-side counter plus a heap buffer whose first byte mirrors
// the counter, and snapshots both.
type ckptWorld struct {
	*testSystem
	policy RestartPolicy

	counter uint64
	buf     vm.Addr

	vetoSnap    bool
	failRestore bool
	coldRuns    int
}

// bootCkpt boots the world with containment and a checkpoint cadence.
func bootCkpt(t testing.TB, interval uint64) *ckptWorld {
	t.Helper()
	w := &ckptWorld{testSystem: &testSystem{}, policy: DefaultRestartPolicy()}
	b := NewBuilder()
	b.MustAdd(&Component{Name: "APP", Kind: KindIsolated, Exports: []ExportDecl{
		{Name: "app_noop", Fn: func(e *Env, args []uint64) []uint64 { return nil }},
	}})
	svc := &Component{Name: "SVC", Kind: KindIsolated, Exports: []ExportDecl{
		{Name: "svc_set", RegArgs: 1, Fn: func(e *Env, args []uint64) []uint64 {
			if w.buf == 0 {
				w.buf = e.HeapAlloc(64)
			}
			w.counter = args[0]
			e.StoreByte(w.buf, byte(args[0]))
			return nil
		}},
		{Name: "svc_get", Fn: func(e *Env, args []uint64) []uint64 {
			if w.buf == 0 {
				return []uint64{w.counter, 0}
			}
			return []uint64{w.counter, uint64(e.LoadByte(w.buf))}
		}},
		{Name: "svc_touch", RegArgs: 1, Fn: func(e *Env, args []uint64) []uint64 {
			e.StoreByte(vm.Addr(args[0]), 1)
			return nil
		}},
		// svc_window opens a window on its heap for APP and leaves it open:
		// the cubicle stops being quiescent until svc_unwindow.
		{Name: "svc_window", Fn: func(e *Env, args []uint64) []uint64 {
			if w.buf == 0 {
				w.buf = e.HeapAlloc(64)
			}
			wid := e.WindowInit()
			e.WindowAdd(wid, w.buf, 64)
			e.WindowOpen(wid, e.M.CubicleByName("APP").ID)
			return []uint64{uint64(wid)}
		}},
		{Name: "svc_unwindow", RegArgs: 1, Fn: func(e *Env, args []uint64) []uint64 {
			e.WindowCloseAll(WID(args[0]))
			return nil
		}},
	}}
	svc.OnRestart = func() {
		w.coldRuns++
		w.counter = 0
		w.buf = 0
	}
	svc.Snapshot = func(sc *SnapCtx) ([]byte, error) {
		if w.vetoSnap {
			return nil, fmt.Errorf("svc: not ready")
		}
		b := make([]byte, 16)
		binary.LittleEndian.PutUint64(b, w.counter)
		binary.LittleEndian.PutUint64(b[8:], uint64(w.buf))
		return b, nil
	}
	svc.Restore = func(sc *SnapCtx, b []byte) error {
		if w.failRestore {
			return fmt.Errorf("svc: restore refused")
		}
		if len(b) != 16 {
			return fmt.Errorf("svc: blob is %d bytes", len(b))
		}
		w.counter = binary.LittleEndian.Uint64(b)
		w.buf = vm.Addr(binary.LittleEndian.Uint64(b[8:]))
		return nil
	}
	b.MustAdd(svc)
	si, err := b.Build()
	if err != nil {
		t.Fatal(err)
	}
	m := NewMonitor(ModeFull, cycles.DefaultCosts())
	m.EnableContainment(w.policy)
	m.EnableCheckpoints(interval)
	cubs, err := NewLoader(m).LoadSystem(si, nil)
	if err != nil {
		t.Fatal(err)
	}
	w.m, w.si, w.cubs = m, si, cubs
	w.env = m.NewEnv(m.NewThread())
	return w
}

// call invokes an SVC entry point from the monitor context at frame depth
// zero — the quiescent point where the checkpoint cadence fires.
func (w *ckptWorld) call(t testing.TB, name string, args ...uint64) ([]uint64, *ContainedFault) {
	t.Helper()
	h := w.m.MustResolve(MonitorID, "SVC", name)
	var ret []uint64
	cf := CatchContained(func() { ret = h.Call(w.env, args...) })
	return ret, cf
}

// faultAndExpire faults SVC via a foreign address and waits out the
// quarantine backoff on the virtual clock.
func (w *ckptWorld) faultAndExpire(t testing.TB) {
	t.Helper()
	appBuf := w.heapIn(t, "APP", 8)
	if _, cf := w.call(t, "svc_touch", uint64(appBuf)); cf == nil {
		t.Fatal("fault in SVC was not contained")
	}
	if h := w.cubs["SVC"].Health(); h != Quarantined {
		t.Fatalf("SVC health = %v, want Quarantined", h)
	}
	w.m.Clock.Charge(w.policy.BackoffMax)
}

const ckptTestInterval = 50_000

func TestWarmRestartRestoresCheckpointedState(t *testing.T) {
	w := bootCkpt(t, ckptTestInterval)
	trc := w.m.EnableTracing(1 << 14)
	svc := w.cubs["SVC"]

	if _, cf := w.call(t, "svc_set", 42); cf != nil {
		t.Fatal(cf)
	}
	// Cross the cadence threshold; the next depth-zero call sweeps.
	w.m.Clock.Charge(ckptTestInterval)
	if _, cf := w.call(t, "svc_get"); cf != nil {
		t.Fatal(cf)
	}
	info, ok := w.m.LastCheckpoint(svc.ID)
	if !ok {
		t.Fatal("no checkpoint after crossing the cadence threshold")
	}
	if info.Pages == 0 || info.Bytes == 0 {
		t.Fatalf("checkpoint info = %+v, want pages and bytes captured", info)
	}
	if w.m.Stats.Checkpoints == 0 || w.m.Stats.CheckpointBytes != info.Bytes {
		t.Errorf("Stats: Checkpoints=%d CheckpointBytes=%d, want >0 and %d",
			w.m.Stats.Checkpoints, w.m.Stats.CheckpointBytes, info.Bytes)
	}

	// Diverge after the checkpoint, then fault: the warm restart must
	// rewind to the captured state, not the latest and not empty.
	if _, cf := w.call(t, "svc_set", 99); cf != nil {
		t.Fatal(cf)
	}
	w.faultAndExpire(t)
	ret, cf := w.call(t, "svc_get")
	if cf != nil {
		t.Fatalf("call after backoff expiry failed: %v", cf)
	}
	if ret[0] != 42 || ret[1] != 42 {
		t.Errorf("post-restart state = counter %d, heap byte %d; want 42/42 (checkpointed)", ret[0], ret[1])
	}
	if w.coldRuns != 0 {
		t.Errorf("OnRestart ran %d times on a warm restart, want 0", w.coldRuns)
	}
	st := w.m.Stats
	if st.Restarts != 1 || st.WarmRestarts != 1 || st.ColdRestarts != 0 {
		t.Errorf("Restarts=%d Warm=%d Cold=%d, want 1/1/0", st.Restarts, st.WarmRestarts, st.ColdRestarts)
	}
	// The trace stays the single source of truth for the new counters.
	derived := StatsFromTrace(trc)
	if !reflect.DeepEqual(derived, w.m.Stats) {
		t.Errorf("trace-derived stats diverge\n derived: %+v\n  legacy: %+v", derived, w.m.Stats)
	}
	// APP registered no hooks: it must never be checkpointed.
	if _, ok := w.m.LastCheckpoint(w.cubs["APP"].ID); ok {
		t.Error("APP was checkpointed despite having no Snapshot/Restore hooks")
	}
}

func TestSnapshotVetoKeepsNoCheckpoint(t *testing.T) {
	w := bootCkpt(t, ckptTestInterval)
	svc := w.cubs["SVC"]
	w.vetoSnap = true

	if _, cf := w.call(t, "svc_set", 7); cf != nil {
		t.Fatal(cf)
	}
	w.m.Clock.Charge(ckptTestInterval)
	if _, cf := w.call(t, "svc_get"); cf != nil {
		t.Fatal(cf)
	}
	if _, ok := w.m.LastCheckpoint(svc.ID); ok {
		t.Fatal("checkpoint recorded despite the Snapshot veto")
	}
	if w.m.Stats.Checkpoints != 0 {
		t.Errorf("Stats.Checkpoints = %d after a vetoed round, want 0", w.m.Stats.Checkpoints)
	}

	// With no checkpoint the restart is cold: OnRestart rebuilds from empty.
	w.faultAndExpire(t)
	ret, cf := w.call(t, "svc_get")
	if cf != nil {
		t.Fatalf("call after backoff expiry failed: %v", cf)
	}
	if ret[0] != 0 {
		t.Errorf("post-cold-restart counter = %d, want 0", ret[0])
	}
	if w.coldRuns != 1 {
		t.Errorf("OnRestart ran %d times, want 1", w.coldRuns)
	}
	st := w.m.Stats
	if st.Restarts != 1 || st.WarmRestarts != 0 || st.ColdRestarts != 1 {
		t.Errorf("Restarts=%d Warm=%d Cold=%d, want 1/0/1", st.Restarts, st.WarmRestarts, st.ColdRestarts)
	}
}

func TestRestoreFailureFallsBackCold(t *testing.T) {
	w := bootCkpt(t, ckptTestInterval)
	svc := w.cubs["SVC"]

	if _, cf := w.call(t, "svc_set", 42); cf != nil {
		t.Fatal(cf)
	}
	w.m.Clock.Charge(ckptTestInterval)
	if _, cf := w.call(t, "svc_get"); cf != nil {
		t.Fatal(cf)
	}
	if _, ok := w.m.LastCheckpoint(svc.ID); !ok {
		t.Fatal("no checkpoint taken")
	}

	w.failRestore = true
	w.faultAndExpire(t)
	ret, cf := w.call(t, "svc_get")
	if cf != nil {
		t.Fatalf("call after backoff expiry failed: %v", cf)
	}
	if ret[0] != 0 {
		t.Errorf("state after failed restore = %d, want 0 (cold rebuild)", ret[0])
	}
	if w.coldRuns != 1 {
		t.Errorf("OnRestart ran %d times, want 1 (cold fallback)", w.coldRuns)
	}
	st := w.m.Stats
	if st.Restarts != 1 || st.WarmRestarts != 0 || st.ColdRestarts != 1 {
		t.Errorf("Restarts=%d Warm=%d Cold=%d, want 1/0/1", st.Restarts, st.WarmRestarts, st.ColdRestarts)
	}
	// The unusable checkpoint was dropped: the next restart cannot loop on it.
	if _, ok := w.m.LastCheckpoint(svc.ID); ok {
		t.Error("failed checkpoint still recorded as last good")
	}
	// The failed restore left no half-restored residue: SVC owns no heap
	// pages after the cold rebuild reset its allocator.
	heapPages := 0
	w.m.AS.ForEachPage(func(pn uint64, p *vm.Page) {
		if ID(p.Owner) == svc.ID && p.Type == vm.PageHeap {
			heapPages++
		}
	})
	if heapPages != 0 {
		t.Errorf("%d heap pages owned by SVC after failed restore + cold rebuild", heapPages)
	}
}

func TestCheckpointSkipsNonQuiescentCubicle(t *testing.T) {
	w := bootCkpt(t, ckptTestInterval)
	svc := w.cubs["SVC"]

	ret, cf := w.call(t, "svc_window")
	if cf != nil {
		t.Fatal(cf)
	}
	wid := ret[0]
	w.m.Clock.Charge(ckptTestInterval)
	if _, cf := w.call(t, "svc_get"); cf != nil {
		t.Fatal(cf)
	}
	if _, ok := w.m.LastCheckpoint(svc.ID); ok {
		t.Fatal("cubicle with an open window was checkpointed (quiescence rule violated)")
	}

	// Close the window: the next cadence round captures it.
	if _, cf := w.call(t, "svc_unwindow", wid); cf != nil {
		t.Fatal(cf)
	}
	w.m.Clock.Charge(ckptTestInterval)
	if _, cf := w.call(t, "svc_get"); cf != nil {
		t.Fatal(cf)
	}
	if _, ok := w.m.LastCheckpoint(svc.ID); !ok {
		t.Fatal("no checkpoint after the window closed")
	}
}

// TestSnapshotWithoutRestoreIsALoadError: the all-or-nothing rule is
// enforced at load time, not discovered at restore time.
func TestSnapshotWithoutRestoreIsALoadError(t *testing.T) {
	b := NewBuilder()
	c := &Component{Name: "BAD", Kind: KindIsolated, Exports: []ExportDecl{
		{Name: "bad_noop", Fn: func(e *Env, args []uint64) []uint64 { return nil }},
	}}
	c.Snapshot = func(sc *SnapCtx) ([]byte, error) { return nil, nil }
	b.MustAdd(c)
	si, err := b.Build()
	if err != nil {
		t.Fatal(err)
	}
	m := NewMonitor(ModeFull, cycles.DefaultCosts())
	_, err = NewLoader(m).LoadSystem(si, nil)
	if err == nil {
		t.Fatal("loading a component with Snapshot but no Restore succeeded")
	}
	if !strings.Contains(err.Error(), "Snapshot without Restore") {
		t.Errorf("load error = %v, want it to name the missing Restore", err)
	}
}

// TestWarmRestartCountsAgainstBudget: warm restarts are still restarts —
// the budget and death path are unchanged, so warm recovery cannot mask a
// crash loop forever.
func TestWarmRestartCountsAgainstBudget(t *testing.T) {
	w := bootCkpt(t, ckptTestInterval)
	w.policy.MaxRestarts = 2
	w.policy.RestartWindow = 1 << 62
	// Re-arm the supervisor with the tightened policy.
	w.m.EnableContainment(w.policy)
	svc := w.cubs["SVC"]

	if _, cf := w.call(t, "svc_set", 5); cf != nil {
		t.Fatal(cf)
	}
	w.m.Clock.Charge(ckptTestInterval)
	if _, cf := w.call(t, "svc_get"); cf != nil {
		t.Fatal(cf)
	}

	for i := 0; i < 2; i++ {
		w.faultAndExpire(t)
		if _, cf := w.call(t, "svc_get"); cf != nil {
			t.Fatalf("restart %d refused: %v", i+1, cf)
		}
	}
	w.faultAndExpire(t)
	if _, cf := w.call(t, "svc_get"); cf == nil || !errors.Is(cf, ErrDead) {
		t.Fatalf("call after exhaustion: got %v, want ErrDead", cf)
	}
	if svc.Health() != Dead {
		t.Errorf("health = %v, want Dead", svc.Health())
	}
	if w.m.Stats.WarmRestarts != 2 {
		t.Errorf("WarmRestarts = %d, want 2 (both budgeted restarts were warm)", w.m.Stats.WarmRestarts)
	}
}
