package cubicle

import (
	"fmt"

	"cubicleos/internal/vm"
)

// arenaPages is how many pages a sub-allocator grabs from the monitor at a
// time when it runs out of space.
const arenaPages = 64

// subAllocator is a cubicle's private heap allocator (§4: "each isolated
// cubicle has its own memory sub-allocator"). It is a first-fit free-list
// allocator over page arenas granted by the monitor; all pages it manages
// are owned by — and tagged with the key of — its cubicle.
type subAllocator struct {
	m     *Monitor
	owner ID
	free  []block            // sorted by address
	sizes map[vm.Addr]uint64 // live allocation sizes
	// Accounting for the inspector and tests.
	arenaBytes uint64
	liveBytes  uint64
}

type block struct {
	addr vm.Addr
	size uint64
}

func newSubAllocator(m *Monitor, owner ID) *subAllocator {
	return &subAllocator{m: m, owner: owner, sizes: make(map[vm.Addr]uint64)}
}

// grow asks the monitor for a fresh arena of at least n bytes. The caller
// holds both the global lock and the cubicle lock (in that order), so the
// page grant goes through mapOwnedLocked directly.
func (a *subAllocator) grow(t *Thread, n uint64) {
	pages := vm.PagesFor(n)
	if pages < arenaPages {
		pages = arenaPages
	}
	addr := a.m.mapOwnedLocked(t, a.owner, pages, vm.PageHeap, vm.PermRead|vm.PermWrite)
	a.arenaBytes += uint64(pages) * vm.PageSize
	a.insertFree(block{addr: addr, size: uint64(pages) * vm.PageSize})
}

// insertFree adds a block to the free list, coalescing with neighbours.
func (a *subAllocator) insertFree(b block) {
	i := 0
	for i < len(a.free) && a.free[i].addr < b.addr {
		i++
	}
	a.free = append(a.free, block{})
	copy(a.free[i+1:], a.free[i:])
	a.free[i] = b
	// Coalesce with successor, then predecessor.
	if i+1 < len(a.free) && a.free[i].addr.Add(a.free[i].size) == a.free[i+1].addr {
		a.free[i].size += a.free[i+1].size
		a.free = append(a.free[:i+1], a.free[i+2:]...)
	}
	if i > 0 && a.free[i-1].addr.Add(a.free[i-1].size) == a.free[i].addr {
		a.free[i-1].size += a.free[i].size
		a.free = append(a.free[:i], a.free[i+1:]...)
	}
}

// fit carves a 16-byte-aligned block of n (already rounded) bytes out of
// the free list, or reports failure. The caller holds the cubicle lock.
func (a *subAllocator) fit(n, align uint64) (vm.Addr, bool) {
	for i := range a.free {
		b := a.free[i]
		start := (uint64(b.addr) + align - 1) &^ (align - 1)
		pad := start - uint64(b.addr)
		if b.size < pad+n {
			continue
		}
		// Split: [b.addr, start) stays free, [start, start+n) is
		// allocated, remainder stays free.
		a.free = append(a.free[:i], a.free[i+1:]...)
		if pad > 0 {
			a.insertFree(block{addr: b.addr, size: pad})
		}
		if rem := b.size - pad - n; rem > 0 {
			a.insertFree(block{addr: vm.Addr(start + n), size: rem})
		}
		a.sizes[vm.Addr(start)] = n
		a.liveBytes += n
		return vm.Addr(start), true
	}
	return 0, false
}

// alloc returns a 16-byte-aligned block of n bytes. Allocations of a page
// or more are page-aligned so that callers can window them without
// unintended sharing (§5.3 note on structure alignment).
//
// Locking: the fast path takes only the owning cubicle's lock — two
// cubicles allocating on different cores never contend. Growing the arena
// mutates the page table, which is global-lock territory; the hierarchy
// forbids taking the global lock while holding a cubicle lock, so the slow
// path drops the cubicle lock, reacquires both in order, and re-tries the
// fit first (another worker may have grown the arena in the gap). In
// non-parallel deployments every lock call is a no-op and the control flow
// reduces to the legacy fit-grow-fit sequence.
func (a *subAllocator) alloc(t *Thread, n uint64) vm.Addr {
	if n == 0 {
		n = 1
	}
	align := uint64(16)
	if n >= vm.PageSize {
		align = vm.PageSize
	}
	n = (n + 15) &^ 15
	m := a.m
	cub := m.cubicle(a.owner)
	m.lockCub(t, cub)
	if addr, ok := a.fit(n, align); ok {
		m.unlockCub(t, cub)
		return addr
	}
	m.unlockCub(t, cub)

	m.lockGlobal(t)
	m.lockCub(t, cub)
	addr, ok := a.fit(n, align)
	if !ok {
		a.grow(t, n+align)
		addr, ok = a.fit(n, align)
	}
	m.unlockCub(t, cub)
	m.unlockGlobal(t)
	if !ok {
		panic(&APIError{Cubicle: a.owner, Op: "heap_alloc",
			Reason: fmt.Sprintf("allocator failed to satisfy %d bytes after growing", n)})
	}
	return addr
}

// free releases a block previously returned by alloc.
func (a *subAllocator) free_(t *Thread, addr vm.Addr) {
	m := a.m
	cub := m.cubicle(a.owner)
	m.lockCub(t, cub)
	n, ok := a.sizes[addr]
	if !ok {
		m.unlockCub(t, cub)
		panic(&APIError{Cubicle: a.owner, Op: "free",
			Reason: fmt.Sprintf("free of unallocated address %#x", uint64(addr))})
	}
	delete(a.sizes, addr)
	a.liveBytes -= n
	a.insertFree(block{addr: addr, size: n})
	m.unlockCub(t, cub)
}

// LiveBytes returns the number of live heap bytes in cubicle id.
func (m *Monitor) LiveBytes(id ID) uint64 { return m.cubicle(id).heap.liveBytes }

// ArenaBytes returns the heap arena size of cubicle id.
func (m *Monitor) ArenaBytes(id ID) uint64 { return m.cubicle(id).heap.arenaBytes }
