package vfscore_test

import (
	"testing"

	"cubicleos/internal/boot"
	"cubicleos/internal/cubicle"
	"cubicleos/internal/ramfs"
	"cubicleos/internal/vfscore"
	"cubicleos/internal/vm"
)

// harness boots the FS stack and hands fn an app-side client with a
// windowed I/O buffer.
func harness(t *testing.T, fn func(e *cubicle.Env, vfs *vfscore.Client, buf vm.Addr)) {
	t.Helper()
	s := boot.MustNewFS(boot.Config{Mode: cubicle.ModeFull, Extra: []*cubicle.Component{{
		Name: "APP", Kind: cubicle.KindIsolated,
		Exports: []cubicle.ExportDecl{{Name: "main", Fn: func(e *cubicle.Env, a []uint64) []uint64 { return nil }}},
	}}})
	err := s.RunAs("APP", func(e *cubicle.Env) {
		vfs := vfscore.NewClient(s.M, s.Cubs["APP"].ID)
		vfs.InitBuffers(e, e.CubicleOf(ramfs.Name))
		buf := e.HeapAlloc(vm.PageSize)
		wid := e.WindowInit()
		e.WindowAdd(wid, buf, vm.PageSize)
		e.WindowOpen(wid, e.CubicleOf(vfscore.Name))
		e.WindowOpen(wid, e.CubicleOf(ramfs.Name))
		fn(e, vfs, buf)
	})
	if err != nil {
		t.Fatal(err)
	}
}

func TestLseekWhence(t *testing.T) {
	harness(t, func(e *cubicle.Env, vfs *vfscore.Client, buf vm.Addr) {
		fd, _ := vfs.Open(e, "/f", vfscore.OCreat|vfscore.ORdwr)
		e.Write(buf, []byte("0123456789"))
		vfs.Write(e, fd, buf, 10)
		if off, errno := vfs.Lseek(e, fd, 2, vfscore.SeekSet); errno != vfscore.EOK || off != 2 {
			t.Fatalf("SeekSet: off=%d errno=%d", off, errno)
		}
		if off, _ := vfs.Lseek(e, fd, 3, vfscore.SeekCur); off != 5 {
			t.Fatalf("SeekCur: off=%d", off)
		}
		// Negative relative seek via two's complement.
		if off, _ := vfs.Lseek(e, fd, ^uint64(0), vfscore.SeekCur); off != 4 {
			t.Fatalf("SeekCur -1: off=%d", off)
		}
		if off, _ := vfs.Lseek(e, fd, 0, vfscore.SeekEnd); off != 10 {
			t.Fatalf("SeekEnd: off=%d", off)
		}
		if _, errno := vfs.Lseek(e, fd, 0, 9); errno != vfscore.EINVAL {
			t.Fatalf("bad whence: errno=%d", errno)
		}
	})
}

func TestCloseInvalidatesFD(t *testing.T) {
	harness(t, func(e *cubicle.Env, vfs *vfscore.Client, buf vm.Addr) {
		fd, _ := vfs.Open(e, "/f", vfscore.OCreat|vfscore.ORdwr)
		if errno := vfs.Close(e, fd); errno != vfscore.EOK {
			t.Fatalf("close: %d", errno)
		}
		if errno := vfs.Close(e, fd); errno != vfscore.EBADF {
			t.Fatalf("double close: %d", errno)
		}
		if _, errno := vfs.Read(e, fd, buf, 1); errno != vfscore.EBADF {
			t.Fatalf("read closed fd: %d", errno)
		}
	})
}

func TestOpenTruncResets(t *testing.T) {
	harness(t, func(e *cubicle.Env, vfs *vfscore.Client, buf vm.Addr) {
		fd, _ := vfs.Open(e, "/f", vfscore.OCreat|vfscore.OWronly)
		e.Write(buf, []byte("longcontent"))
		vfs.Write(e, fd, buf, 11)
		vfs.Close(e, fd)
		fd, _ = vfs.Open(e, "/f", vfscore.OWronly|vfscore.OTrunc)
		if size, _ := vfs.FStat(e, fd); size != 0 {
			t.Fatalf("O_TRUNC left %d bytes", size)
		}
	})
}

func TestStatMissingAndFstatBad(t *testing.T) {
	harness(t, func(e *cubicle.Env, vfs *vfscore.Client, buf vm.Addr) {
		if _, errno := vfs.Stat(e, "/ghost"); errno != vfscore.ENOENT {
			t.Fatalf("stat missing: %d", errno)
		}
		if _, errno := vfs.FStat(e, 12345); errno != vfscore.EBADF {
			t.Fatalf("fstat bad fd: %d", errno)
		}
	})
}

// TestWrapInterposition verifies the microkernel-baseline seam: a wrapped
// client routes every call through the wrapper.
func TestWrapInterposition(t *testing.T) {
	harness(t, func(e *cubicle.Env, vfs *vfscore.Client, buf vm.Addr) {
		count := 0
		vfs.Wrap(func(name string, inner vfscore.Caller) vfscore.Caller {
			return countingCaller{inner: inner, n: &count}
		})
		fd, _ := vfs.Open(e, "/w", vfscore.OCreat|vfscore.ORdwr)
		e.Write(buf, []byte("x"))
		vfs.Write(e, fd, buf, 1)
		vfs.Close(e, fd)
		if count != 3 {
			t.Fatalf("wrapper saw %d calls, want 3", count)
		}
	})
}

type countingCaller struct {
	inner vfscore.Caller
	n     *int
}

func (c countingCaller) Call(e *cubicle.Env, args ...uint64) []uint64 {
	*c.n++
	return c.inner.Call(e, args...)
}
