// Package vfscore is the VFSCORE component: Unikraft's virtual file
// system layer. It owns the file-descriptor table and forwards operations
// to a file-system backend through a callback table — exactly the
// interposition point the paper's builder rewrites so that backend calls
// become cross-cubicle calls (§5.2: "in the case of callback tables, we
// modify the source code of a component to ensure that the pointer on
// each callback is resolved as a dynamic symbol at load time").
//
// Data buffers are passed through to the backend by pointer, zero-copy:
// a caller that wants VFS and the backend to touch its buffer must open
// its window for both cubicles ahead of time (the nested-call rule,
// §5.6).
package vfscore

import (
	"cubicleos/internal/cubicle"
	"cubicleos/internal/vm"
)

// Name of the component in deployments.
const Name = "VFSCORE"

// Errno values returned in the second result word of every VFS and
// backend operation (0 = success).
const (
	EOK     = 0
	ENOENT  = 2
	EBADF   = 9
	EEXIST  = 17
	ENOTDIR = 20
	EISDIR  = 21
	EINVAL  = 22
	ENOSPC  = 28
	ENOTSUP = 95
)

// Open flags (subset of POSIX).
const (
	ORdonly = 0x0
	OWronly = 0x1
	ORdwr   = 0x2
	OCreat  = 0x40
	OTrunc  = 0x200
	OAppend = 0x400
)

// Whence values for lseek.
const (
	SeekSet = 0
	SeekCur = 1
	SeekEnd = 2
)

// DefaultOpWork models the vfscore path length per operation (vnode
// lookup, fd table, locking) — part of the library OS inefficiency the
// paper measures against Linux. Deployments may override it via SetOpWork
// to model differently optimised kernels.
const DefaultOpWork = 150

// Caller abstracts an invocable cross-component entry point. Resolved
// cubicle handles satisfy it directly; the microkernel baseline wraps
// them with message-passing IPC costs.
type Caller interface {
	Call(e *cubicle.Env, args ...uint64) []uint64
}

// Backend is the callback table filled in by the file-system backend at
// initialisation time. Every entry is a resolved cross-cubicle handle (or
// an IPC-wrapped equivalent), so invoking a callback transparently
// crosses into the backend's compartment.
type Backend struct {
	Lookup  Caller // (pathPtr, pathLen) -> (ino, errno)
	Create  Caller // (pathPtr, pathLen) -> (ino, errno)
	Read    Caller // (ino, off, buf, n) -> (n', errno)
	Write   Caller // (ino, off, buf, n) -> (n', errno)
	GetSize Caller // (ino) -> (size, errno)
	SetSize Caller // (ino, size) -> (_, errno)
	Unlink  Caller // (pathPtr, pathLen) -> (_, errno)
	Mkdir   Caller // (pathPtr, pathLen) -> (_, errno)
	Readdir Caller // (ino, idx, buf, bufLen) -> (nameLen, errno)
	Fsync   Caller // (ino) -> (_, errno)
	Rename  Caller // (p1, l1, p2, l2) -> (_, errno)
}

// WrapBackend returns a copy of b with every callback replaced by
// w(name, original) — the VFS→backend seam of the microkernel baseline's
// 4-component configuration.
func WrapBackend(b Backend, w func(name string, inner Caller) Caller) Backend {
	return Backend{
		Lookup:  w("lookup", b.Lookup),
		Create:  w("create", b.Create),
		Read:    w("read", b.Read),
		Write:   w("write", b.Write),
		GetSize: w("getsize", b.GetSize),
		SetSize: w("setsize", b.SetSize),
		Unlink:  w("unlink", b.Unlink),
		Mkdir:   w("mkdir", b.Mkdir),
		Readdir: w("readdir", b.Readdir),
		Fsync:   w("fsync", b.Fsync),
		Rename:  w("rename", b.Rename),
	}
}

// file is one open file description.
type file struct {
	ino    uint64
	off    uint64
	flags  uint64
	append bool
}

// Module is the VFSCORE component state.
type Module struct {
	backend Backend
	fds     map[uint64]*file
	nextFD  uint64
	opWork  uint64
	// OpCount counts VFS operations (observability for experiments).
	OpCount uint64
}

// New creates the VFS with an empty backend table; call SetBackend before
// use (the loader-time callback interposition).
func New() *Module {
	return &Module{fds: make(map[uint64]*file), nextFD: 3, opWork: DefaultOpWork} // fds 0-2 reserved
}

// SetOpWork overrides the per-operation path cost.
func (v *Module) SetOpWork(c uint64) { v.opWork = c }

// SetBackend installs the backend callback table.
func (v *Module) SetBackend(b Backend) { v.backend = b }

// touchPath reads the caller's path buffer: the vnode-cache lookup of a
// real VFS. Under MPK this is VFSCORE's first access to a caller-owned
// page and trap-and-maps against the caller's window.
func (v *Module) touchPath(e *cubicle.Env, ptr, n uint64) {
	if n > 0 {
		_ = e.ReadBytes(vm.Addr(ptr), n)
	}
}

// touchBuf sets up the uio for a data buffer (address validation, first
// page probe) — one access per page the operation covers, as vfscore's
// uio iteration does. Under MPK these accesses trap-and-map the buffer
// pages onto VFSCORE's key before the backend retags them again, which
// is precisely the extra cost Figure 10 attributes to separating the
// backend from the VFS.
func (v *Module) touchBuf(e *cubicle.Env, ptr, n uint64) {
	for off := uint64(0); off < n; off += vm.PageSize {
		_ = e.LoadByte(vm.Addr(ptr + off))
	}
}

func errRet(errno uint64) []uint64 { return []uint64{0, errno} }
func okRet(val uint64) []uint64    { return []uint64{val, EOK} }

func (v *Module) open(e *cubicle.Env, pathPtr, pathLen, flags uint64) []uint64 {
	e.Work(v.opWork)
	v.OpCount++
	v.touchPath(e, pathPtr, pathLen)
	rets := v.backend.Lookup.Call(e, pathPtr, pathLen)
	ino, errno := rets[0], rets[1]
	switch {
	case errno == ENOENT && flags&OCreat != 0:
		rets = v.backend.Create.Call(e, pathPtr, pathLen)
		ino, errno = rets[0], rets[1]
		if errno != EOK {
			return errRet(errno)
		}
	case errno != EOK:
		return errRet(errno)
	}
	if flags&OTrunc != 0 {
		if r := v.backend.SetSize.Call(e, ino, 0); r[1] != EOK {
			return errRet(r[1])
		}
	}
	fd := v.nextFD
	v.nextFD++
	f := &file{ino: ino, flags: flags, append: flags&OAppend != 0}
	if f.append {
		if r := v.backend.GetSize.Call(e, ino); r[1] == EOK {
			f.off = r[0]
		}
	}
	v.fds[fd] = f
	return okRet(fd)
}

func (v *Module) file(fd uint64) (*file, uint64) {
	f, ok := v.fds[fd]
	if !ok {
		return nil, EBADF
	}
	return f, EOK
}

func (v *Module) read(e *cubicle.Env, fd, buf, n uint64) []uint64 {
	e.Work(v.opWork)
	v.OpCount++
	f, errno := v.file(fd)
	if errno != EOK {
		return errRet(errno)
	}
	v.touchBuf(e, buf, n)
	r := v.backend.Read.Call(e, f.ino, f.off, buf, n)
	if r[1] == EOK {
		f.off += r[0]
	}
	return r
}

func (v *Module) write(e *cubicle.Env, fd, buf, n uint64) []uint64 {
	e.Work(v.opWork)
	v.OpCount++
	f, errno := v.file(fd)
	if errno != EOK {
		return errRet(errno)
	}
	v.touchBuf(e, buf, n)
	if f.append {
		if r := v.backend.GetSize.Call(e, f.ino); r[1] == EOK {
			f.off = r[0]
		}
	}
	r := v.backend.Write.Call(e, f.ino, f.off, buf, n)
	if r[1] == EOK {
		f.off += r[0]
	}
	return r
}

func (v *Module) pread(e *cubicle.Env, fd, buf, n, off uint64) []uint64 {
	e.Work(v.opWork)
	v.OpCount++
	f, errno := v.file(fd)
	if errno != EOK {
		return errRet(errno)
	}
	v.touchBuf(e, buf, n)
	return v.backend.Read.Call(e, f.ino, off, buf, n)
}

func (v *Module) pwrite(e *cubicle.Env, fd, buf, n, off uint64) []uint64 {
	e.Work(v.opWork)
	v.OpCount++
	f, errno := v.file(fd)
	if errno != EOK {
		return errRet(errno)
	}
	v.touchBuf(e, buf, n)
	return v.backend.Write.Call(e, f.ino, off, buf, n)
}

func (v *Module) lseek(e *cubicle.Env, fd, off, whence uint64) []uint64 {
	e.Work(v.opWork)
	v.OpCount++
	f, errno := v.file(fd)
	if errno != EOK {
		return errRet(errno)
	}
	switch whence {
	case SeekSet:
		f.off = off
	case SeekCur:
		f.off += off // off is two's-complement; wraparound implements negative seeks
	case SeekEnd:
		r := v.backend.GetSize.Call(e, f.ino)
		if r[1] != EOK {
			return errRet(r[1])
		}
		f.off = r[0] + off
	default:
		return errRet(EINVAL)
	}
	return okRet(f.off)
}

// Component returns the VFSCORE component for the builder.
func (v *Module) Component() *cubicle.Component {
	return &cubicle.Component{
		Name: Name,
		Kind: cubicle.KindIsolated,
		Exports: []cubicle.ExportDecl{
			{Name: "vfs_open", RegArgs: 3, Fn: func(e *cubicle.Env, a []uint64) []uint64 {
				return v.open(e, a[0], a[1], a[2])
			}},
			{Name: "vfs_close", RegArgs: 1, Fn: func(e *cubicle.Env, a []uint64) []uint64 {
				e.Work(v.opWork)
				v.OpCount++
				if _, errno := v.file(a[0]); errno != EOK {
					return errRet(errno)
				}
				delete(v.fds, a[0])
				return okRet(0)
			}},
			{Name: "vfs_read", RegArgs: 3, Fn: func(e *cubicle.Env, a []uint64) []uint64 {
				return v.read(e, a[0], a[1], a[2])
			}},
			{Name: "vfs_write", RegArgs: 3, Fn: func(e *cubicle.Env, a []uint64) []uint64 {
				return v.write(e, a[0], a[1], a[2])
			}},
			{Name: "vfs_pread", RegArgs: 4, Fn: func(e *cubicle.Env, a []uint64) []uint64 {
				return v.pread(e, a[0], a[1], a[2], a[3])
			}},
			{Name: "vfs_pwrite", RegArgs: 4, Fn: func(e *cubicle.Env, a []uint64) []uint64 {
				return v.pwrite(e, a[0], a[1], a[2], a[3])
			}},
			{Name: "vfs_lseek", RegArgs: 3, Fn: func(e *cubicle.Env, a []uint64) []uint64 {
				return v.lseek(e, a[0], a[1], a[2])
			}},
			{Name: "vfs_stat", RegArgs: 2, Fn: func(e *cubicle.Env, a []uint64) []uint64 {
				e.Work(v.opWork)
				v.OpCount++
				r := v.backend.Lookup.Call(e, a[0], a[1])
				if r[1] != EOK {
					return errRet(r[1])
				}
				return v.backend.GetSize.Call(e, r[0])
			}},
			{Name: "vfs_fstat", RegArgs: 1, Fn: func(e *cubicle.Env, a []uint64) []uint64 {
				e.Work(v.opWork)
				v.OpCount++
				f, errno := v.file(a[0])
				if errno != EOK {
					return errRet(errno)
				}
				return v.backend.GetSize.Call(e, f.ino)
			}},
			{Name: "vfs_ftruncate", RegArgs: 2, Fn: func(e *cubicle.Env, a []uint64) []uint64 {
				e.Work(v.opWork)
				v.OpCount++
				f, errno := v.file(a[0])
				if errno != EOK {
					return errRet(errno)
				}
				return v.backend.SetSize.Call(e, f.ino, a[1])
			}},
			{Name: "vfs_fsync", RegArgs: 1, Fn: func(e *cubicle.Env, a []uint64) []uint64 {
				e.Work(v.opWork)
				v.OpCount++
				f, errno := v.file(a[0])
				if errno != EOK {
					return errRet(errno)
				}
				return v.backend.Fsync.Call(e, f.ino)
			}},
			{Name: "vfs_unlink", RegArgs: 2, Fn: func(e *cubicle.Env, a []uint64) []uint64 {
				e.Work(v.opWork)
				v.OpCount++
				return v.backend.Unlink.Call(e, a[0], a[1])
			}},
			{Name: "vfs_mkdir", RegArgs: 2, Fn: func(e *cubicle.Env, a []uint64) []uint64 {
				e.Work(v.opWork)
				v.OpCount++
				return v.backend.Mkdir.Call(e, a[0], a[1])
			}},
			{Name: "vfs_readdir", RegArgs: 5, Fn: func(e *cubicle.Env, a []uint64) []uint64 {
				// (pathPtr, pathLen, idx, nameBuf, nameBufLen)
				e.Work(v.opWork)
				v.OpCount++
				r := v.backend.Lookup.Call(e, a[0], a[1])
				if r[1] != EOK {
					return errRet(r[1])
				}
				return v.backend.Readdir.Call(e, r[0], a[2], a[3], a[4])
			}},
			{Name: "vfs_rename", RegArgs: 4, Fn: func(e *cubicle.Env, a []uint64) []uint64 {
				e.Work(v.opWork)
				v.OpCount++
				return v.backend.Rename.Call(e, a[0], a[1], a[2], a[3])
			}},
		},
	}
}

// Client is typed, ergonomic access to VFSCORE from another cubicle. The
// path helpers stage path strings in a caller-owned transfer buffer whose
// window is opened for VFSCORE and the backend ahead of time — this is
// the bulk of the "porting effort" the paper quantifies for NGINX and
// SQLite (§6.2).
type Client struct {
	open, close_, read, write, pread, pwrite Caller
	lseek, stat, fstat, ftruncate, fsync     Caller
	unlink, mkdir, readdir, rename           Caller
	pathBuf                                  vm.Addr
	pathBufSize                              uint64
}

// Wrap replaces every entry point with w(name, original); the
// microkernel baseline uses this to interpose message-passing costs on
// the application→VFS boundary.
func (c *Client) Wrap(w func(name string, inner Caller) Caller) {
	c.open = w("vfs_open", c.open)
	c.close_ = w("vfs_close", c.close_)
	c.read = w("vfs_read", c.read)
	c.write = w("vfs_write", c.write)
	c.pread = w("vfs_pread", c.pread)
	c.pwrite = w("vfs_pwrite", c.pwrite)
	c.lseek = w("vfs_lseek", c.lseek)
	c.stat = w("vfs_stat", c.stat)
	c.fstat = w("vfs_fstat", c.fstat)
	c.ftruncate = w("vfs_ftruncate", c.ftruncate)
	c.fsync = w("vfs_fsync", c.fsync)
	c.unlink = w("vfs_unlink", c.unlink)
	c.mkdir = w("vfs_mkdir", c.mkdir)
	c.readdir = w("vfs_readdir", c.readdir)
	c.rename = w("vfs_rename", c.rename)
}

// PathBufSize is the size of the client's path transfer buffer.
const PathBufSize = vm.PageSize

// NewClient resolves VFSCORE for the caller cubicle. The caller must
// invoke InitBuffers from inside its own cubicle before using the path
// helpers.
func NewClient(m *cubicle.Monitor, caller cubicle.ID) *Client {
	return &Client{
		open:      m.MustResolve(caller, Name, "vfs_open"),
		close_:    m.MustResolve(caller, Name, "vfs_close"),
		read:      m.MustResolve(caller, Name, "vfs_read"),
		write:     m.MustResolve(caller, Name, "vfs_write"),
		pread:     m.MustResolve(caller, Name, "vfs_pread"),
		pwrite:    m.MustResolve(caller, Name, "vfs_pwrite"),
		lseek:     m.MustResolve(caller, Name, "vfs_lseek"),
		stat:      m.MustResolve(caller, Name, "vfs_stat"),
		fstat:     m.MustResolve(caller, Name, "vfs_fstat"),
		ftruncate: m.MustResolve(caller, Name, "vfs_ftruncate"),
		fsync:     m.MustResolve(caller, Name, "vfs_fsync"),
		unlink:    m.MustResolve(caller, Name, "vfs_unlink"),
		mkdir:     m.MustResolve(caller, Name, "vfs_mkdir"),
		readdir:   m.MustResolve(caller, Name, "vfs_readdir"),
		rename:    m.MustResolve(caller, Name, "vfs_rename"),
	}
}

// InitBuffers allocates the page-aligned path transfer buffer and opens
// its window for VFSCORE and the backend cubicles. Must run with the
// caller cubicle's privileges.
func (c *Client) InitBuffers(e *cubicle.Env, backendCubicles ...cubicle.ID) {
	c.pathBuf = e.HeapAlloc(PathBufSize)
	c.pathBufSize = PathBufSize
	wid := e.WindowInit()
	e.WindowAdd(wid, c.pathBuf, c.pathBufSize)
	e.WindowOpen(wid, e.CubicleOf(Name))
	for _, cid := range backendCubicles {
		e.WindowOpen(wid, cid)
	}
}

// stagePath writes the path into the transfer buffer.
func (c *Client) stagePath(e *cubicle.Env, path string) (vm.Addr, uint64) {
	if c.pathBuf == 0 {
		panic("vfscore.Client: InitBuffers not called")
	}
	if uint64(len(path)) > c.pathBufSize {
		panic("vfscore.Client: path too long")
	}
	e.Write(c.pathBuf, []byte(path))
	return c.pathBuf, uint64(len(path))
}

// Open opens path with flags; returns the fd and errno.
func (c *Client) Open(e *cubicle.Env, path string, flags uint64) (uint64, uint64) {
	p, n := c.stagePath(e, path)
	r := c.open.Call(e, uint64(p), n, flags)
	return r[0], r[1]
}

// Close closes fd.
func (c *Client) Close(e *cubicle.Env, fd uint64) uint64 {
	return c.close_.Call(e, fd)[1]
}

// Read reads up to n bytes into buf; returns bytes read and errno.
func (c *Client) Read(e *cubicle.Env, fd uint64, buf vm.Addr, n uint64) (uint64, uint64) {
	r := c.read.Call(e, fd, uint64(buf), n)
	return r[0], r[1]
}

// Write writes n bytes from buf; returns bytes written and errno.
func (c *Client) Write(e *cubicle.Env, fd uint64, buf vm.Addr, n uint64) (uint64, uint64) {
	r := c.write.Call(e, fd, uint64(buf), n)
	return r[0], r[1]
}

// PRead reads at an explicit offset without moving the file position.
func (c *Client) PRead(e *cubicle.Env, fd uint64, buf vm.Addr, n, off uint64) (uint64, uint64) {
	r := c.pread.Call(e, fd, uint64(buf), n, off)
	return r[0], r[1]
}

// PWrite writes at an explicit offset without moving the file position.
func (c *Client) PWrite(e *cubicle.Env, fd uint64, buf vm.Addr, n, off uint64) (uint64, uint64) {
	r := c.pwrite.Call(e, fd, uint64(buf), n, off)
	return r[0], r[1]
}

// Lseek repositions fd; returns the new offset and errno.
func (c *Client) Lseek(e *cubicle.Env, fd, off, whence uint64) (uint64, uint64) {
	r := c.lseek.Call(e, fd, off, whence)
	return r[0], r[1]
}

// Stat returns the size of the file at path and errno.
func (c *Client) Stat(e *cubicle.Env, path string) (uint64, uint64) {
	p, n := c.stagePath(e, path)
	r := c.stat.Call(e, uint64(p), n)
	return r[0], r[1]
}

// FStat returns the size of the open file and errno.
func (c *Client) FStat(e *cubicle.Env, fd uint64) (uint64, uint64) {
	r := c.fstat.Call(e, fd)
	return r[0], r[1]
}

// FTruncate sets the file size.
func (c *Client) FTruncate(e *cubicle.Env, fd, size uint64) uint64 {
	return c.ftruncate.Call(e, fd, size)[1]
}

// FSync flushes the file.
func (c *Client) FSync(e *cubicle.Env, fd uint64) uint64 {
	return c.fsync.Call(e, fd)[1]
}

// Unlink removes the file at path.
func (c *Client) Unlink(e *cubicle.Env, path string) uint64 {
	p, n := c.stagePath(e, path)
	return c.unlink.Call(e, uint64(p), n)[1]
}

// Mkdir creates a directory at path.
func (c *Client) Mkdir(e *cubicle.Env, path string) uint64 {
	p, n := c.stagePath(e, path)
	return c.mkdir.Call(e, uint64(p), n)[1]
}

// Readdir returns the idx-th entry name of the directory at path, or
// errno ENOENT past the end. The name is staged through the path buffer.
func (c *Client) Readdir(e *cubicle.Env, path string, idx uint64) (string, uint64) {
	p, n := c.stagePath(e, path)
	// The name is written into the second half of the transfer buffer.
	nameBuf := p.Add(c.pathBufSize / 2)
	r := c.readdir.Call(e, uint64(p), n, idx, uint64(nameBuf), c.pathBufSize/2)
	if r[1] != EOK {
		return "", r[1]
	}
	return string(e.ReadBytes(nameBuf, r[0])), EOK
}

// Rename moves a file from to to.
func (c *Client) Rename(e *cubicle.Env, from, to string) uint64 {
	if c.pathBuf == 0 {
		panic("vfscore.Client: InitBuffers not called")
	}
	half := c.pathBufSize / 2
	if uint64(len(from)) > half || uint64(len(to)) > half {
		panic("vfscore.Client: path too long")
	}
	e.Write(c.pathBuf, []byte(from))
	e.Write(c.pathBuf.Add(half), []byte(to))
	return c.rename.Call(e, uint64(c.pathBuf), uint64(len(from)), uint64(c.pathBuf.Add(half)), uint64(len(to)))[1]
}
