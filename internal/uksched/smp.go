package uksched

import (
	"sync"

	"cubicleos/internal/cycles"
)

// SMP is the sharded multi-core scheduler: one run queue per simulated
// core, each quantum executed by a real goroutine worker per core, with a
// barrier between quanta and deterministic work stealing decided at the
// barrier.
//
// Determinism contract: within a quantum a worker touches only its own
// core's queue and state, so the host's goroutine interleaving cannot
// change what any core executes. All cross-core decisions — the GVT
// barrier on the attached Machine and the rebalance pass — happen on the
// coordinating goroutine between quanta, from state that is itself
// deterministic. For a fixed task set and core count, every run executes
// the identical per-core step sequences (the determinism tests pin five
// runs to identical counters).
type SMP struct {
	queues [][]namedTask

	// StepsPerQuantum is how many round-robin passes each core makes over
	// its queue per quantum (default 1).
	StepsPerQuantum int
	// Steal enables work stealing: at each barrier, cores with empty
	// queues take the tail task of the longest remaining queue.
	Steal bool
	// Machine, when set, gets a GVT barrier after every quantum.
	Machine *cycles.Machine

	// Steps counts task steps executed per core (observability).
	Steps []uint64
	// Stolen counts tasks migrated by the rebalance pass.
	Stolen uint64
	// Quanta counts completed quanta.
	Quanta uint64
}

type namedTask struct {
	name string
	t    Task
}

// NewSMP returns an empty scheduler over n cores (n >= 1).
func NewSMP(n int) *SMP {
	if n < 1 {
		n = 1
	}
	return &SMP{
		queues:          make([][]namedTask, n),
		StepsPerQuantum: 1,
		Steps:           make([]uint64, n),
	}
}

// NumCores returns the number of cores.
func (s *SMP) NumCores() int { return len(s.queues) }

// Add queues a task on the given core under a diagnostic name.
func (s *SMP) Add(core int, name string, t Task) {
	s.queues[core] = append(s.queues[core], namedTask{name: name, t: t})
}

// AddFunc queues a function task on the given core.
func (s *SMP) AddFunc(core int, name string, f func() Status) {
	s.Add(core, name, TaskFunc(f))
}

// Len returns the number of live tasks across all cores.
func (s *SMP) Len() int {
	n := 0
	for _, q := range s.queues {
		n += len(q)
	}
	return n
}

// runCore makes this core's passes for one quantum. It is the only code
// that touches queues[core] while workers run; the coordinator's
// WaitGroup join publishes the result before any cross-core access.
func (s *SMP) runCore(core int) bool {
	passes := s.StepsPerQuantum
	if passes < 1 {
		passes = 1
	}
	progress := false
	for p := 0; p < passes; p++ {
		q := s.queues[core]
		if len(q) == 0 {
			break
		}
		for i := 0; i < len(q); {
			s.Steps[core]++
			switch q[i].t.Step() {
			case Done:
				q = append(q[:i], q[i+1:]...)
				progress = true
			case Yield:
				progress = true
				i++
			default: // Block
				i++
			}
		}
		s.queues[core] = q
	}
	return progress
}

// RunQuantum runs one quantum: every core with queued tasks executes its
// passes on its own goroutine, the coordinator joins them, takes the GVT
// barrier, and rebalances queues if stealing is enabled. It reports
// whether any core made progress.
func (s *SMP) RunQuantum() bool {
	progress := make([]bool, len(s.queues))
	var wg sync.WaitGroup
	for core := range s.queues {
		if len(s.queues[core]) == 0 {
			continue
		}
		wg.Add(1)
		go func(core int) {
			defer wg.Done()
			progress[core] = s.runCore(core)
		}(core)
	}
	wg.Wait()
	s.Quanta++
	if s.Machine != nil {
		s.Machine.Barrier()
	}
	if s.Steal {
		s.rebalance()
	}
	for _, p := range progress {
		if p {
			return true
		}
	}
	return false
}

// rebalance is the deterministic stealing pass: idle cores (ascending
// index) each take the tail task of the longest queue (lowest index on
// ties) as long as some queue holds more than one task. Taking the tail
// leaves the victim's round-robin order — and therefore its step
// sequence — unchanged.
func (s *SMP) rebalance() {
	for core := range s.queues {
		if len(s.queues[core]) != 0 {
			continue
		}
		victim, best := -1, 1
		for v := range s.queues {
			if len(s.queues[v]) > best {
				victim, best = v, len(s.queues[v])
			}
		}
		if victim < 0 {
			return
		}
		q := s.queues[victim]
		s.queues[core] = append(s.queues[core], q[len(q)-1])
		s.queues[victim] = q[:len(q)-1]
		s.Stolen++
	}
}

// Run drives quanta until all tasks are done, or until maxIdle
// consecutive quanta make no progress. It reports whether all tasks
// completed.
func (s *SMP) Run(maxIdle int) bool {
	idle := 0
	for s.Len() > 0 {
		if s.RunQuantum() {
			idle = 0
		} else {
			idle++
			if idle >= maxIdle {
				return false
			}
		}
	}
	return true
}

// Blocked returns the names of tasks still queued, core-major
// (diagnostics after a failed Run).
func (s *SMP) Blocked() []string {
	var out []string
	for _, q := range s.queues {
		for _, nt := range q {
			out = append(out, nt.name)
		}
	}
	return out
}
