// Package uksched is the cooperative user-level scheduler of the Unikraft
// model: user-level threads multiplexed onto a single host thread (§8 of
// the paper). Tasks are step functions driven round-robin — there is no
// preemption and no host-thread concurrency, which keeps the virtual
// cycle clock globally consistent.
package uksched

// Status is what a task step reports back to the scheduler.
type Status int

const (
	// Yield means the task has more work and wants to run again.
	Yield Status = iota
	// Block means the task is waiting for an external event; it will be
	// polled again after other tasks have run.
	Block
	// Done means the task has finished and is removed.
	Done
)

// Task is one cooperative task: Step runs a slice of work.
type Task interface {
	Step() Status
}

// TaskFunc adapts a function to the Task interface.
type TaskFunc func() Status

// Step runs the function.
func (f TaskFunc) Step() Status { return f() }

// Scheduler runs tasks round-robin until all are done or progress stops.
type Scheduler struct {
	tasks []Task
	names []string
	// Steps counts task steps executed (observability).
	Steps uint64
}

// New returns an empty scheduler.
func New() *Scheduler { return &Scheduler{} }

// Add queues a task under a diagnostic name.
func (s *Scheduler) Add(name string, t Task) {
	s.tasks = append(s.tasks, t)
	s.names = append(s.names, name)
}

// AddFunc queues a function task.
func (s *Scheduler) AddFunc(name string, f func() Status) { s.Add(name, TaskFunc(f)) }

// Len returns the number of live tasks.
func (s *Scheduler) Len() int { return len(s.tasks) }

// remove drops task i.
func (s *Scheduler) remove(i int) {
	s.tasks = append(s.tasks[:i], s.tasks[i+1:]...)
	s.names = append(s.names[:i], s.names[i+1:]...)
}

// RunOnce makes one round-robin pass. It reports whether any task made
// progress (returned Yield or Done).
func (s *Scheduler) RunOnce() bool {
	progress := false
	for i := 0; i < len(s.tasks); {
		s.Steps++
		switch s.tasks[i].Step() {
		case Done:
			s.remove(i)
			progress = true
		case Yield:
			progress = true
			i++
		default: // Block
			i++
		}
	}
	return progress
}

// Run drives the scheduler until all tasks are done, or until maxIdle
// consecutive passes make no progress (deadlock/starvation guard).
// It reports whether all tasks completed.
func (s *Scheduler) Run(maxIdle int) bool {
	idle := 0
	for len(s.tasks) > 0 {
		if s.RunOnce() {
			idle = 0
		} else {
			idle++
			if idle >= maxIdle {
				return false
			}
		}
	}
	return true
}

// Blocked returns the names of tasks still queued (diagnostics after a
// failed Run).
func (s *Scheduler) Blocked() []string {
	out := make([]string, len(s.names))
	copy(out, s.names)
	return out
}
