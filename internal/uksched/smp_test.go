package uksched

import (
	"reflect"
	"testing"

	"cubicleos/internal/cycles"
)

// countTask steps a fixed number of times, charging its core clock, then
// reports Done.
type countTask struct {
	left int
	cost uint64
	clk  *cycles.Clock
}

func (t *countTask) Step() Status {
	if t.left <= 0 {
		return Done
	}
	t.left--
	if t.clk != nil {
		t.clk.Charge(t.cost)
	}
	if t.left == 0 {
		return Done
	}
	return Yield
}

// run builds a fixed 4-core workload over a fresh machine and returns the
// observable counters after it completes.
func runSMPWorkload(t *testing.T) ([]uint64, uint64, uint64, []uint64, uint64) {
	t.Helper()
	const cores = 4
	m := cycles.NewMachine(cores)
	s := NewSMP(cores)
	s.Machine = m
	s.Steal = true
	for c := 0; c < cores; c++ {
		// Deliberately unbalanced: core 0 gets most of the tasks so the
		// stealing pass has something to move. Steal-eligible tasks carry no
		// clock — a migrated task would otherwise charge its birth core's
		// clock from another worker (callers that charge clocks either pin
		// their tasks or re-home the clock at the barrier, as the monitor's
		// SetThreadCore does).
		n := 1
		clk := m.Core(c)
		if c == 0 {
			n = 5
			clk = nil
		}
		for i := 0; i < n; i++ {
			s.Add(c, "w", &countTask{left: 3 + (c+i*7)%5, cost: uint64(10 + c), clk: clk})
		}
	}
	if !s.Run(4) {
		t.Fatalf("workload did not complete; blocked: %v", s.Blocked())
	}
	clocks := make([]uint64, cores)
	for c := 0; c < cores; c++ {
		clocks[c] = m.Core(c).Cycles()
	}
	return append([]uint64(nil), s.Steps...), s.Stolen, s.Quanta, clocks, m.GVT()
}

// TestSMPDeterministicAcrossRuns pins the determinism contract: for a
// fixed task set and core count, five runs produce identical per-core
// step counts, steal counts, quanta, per-core clocks and GVT — no matter
// how the host scheduler interleaves the worker goroutines. Run under
// -race this is also the data-race gate for the quantum/barrier protocol.
func TestSMPDeterministicAcrossRuns(t *testing.T) {
	steps0, stolen0, quanta0, clocks0, gvt0 := runSMPWorkload(t)
	for run := 1; run < 5; run++ {
		steps, stolen, quanta, clocks, gvt := runSMPWorkload(t)
		if !reflect.DeepEqual(steps, steps0) || stolen != stolen0 || quanta != quanta0 ||
			!reflect.DeepEqual(clocks, clocks0) || gvt != gvt0 {
			t.Fatalf("run %d diverged:\n got steps=%v stolen=%d quanta=%d clocks=%v gvt=%d\nwant steps=%v stolen=%d quanta=%d clocks=%v gvt=%d",
				run, steps, stolen, quanta, clocks, gvt, steps0, stolen0, quanta0, clocks0, gvt0)
		}
	}
}

// TestSMPWorkStealing asserts idle cores actually take over queued work:
// every task lands on core 0, stealing is on, and the run must finish
// with steps recorded on other cores too.
func TestSMPWorkStealing(t *testing.T) {
	s := NewSMP(4)
	s.Steal = true
	for i := 0; i < 12; i++ {
		s.Add(0, "w", &countTask{left: 6})
	}
	if !s.Run(4) {
		t.Fatalf("did not complete; blocked: %v", s.Blocked())
	}
	if s.Stolen == 0 {
		t.Fatalf("expected the rebalance pass to migrate tasks, Stolen == 0")
	}
	other := uint64(0)
	for c := 1; c < 4; c++ {
		other += s.Steps[c]
	}
	if other == 0 {
		t.Fatalf("no steps executed off core 0: steps=%v", s.Steps)
	}
}

// TestSMPSingleCoreMatchesScheduler asserts a 1-core SMP scheduler steps
// the same task sequence as the legacy round-robin Scheduler.
func TestSMPSingleCoreMatchesScheduler(t *testing.T) {
	mk := func(add func(name string, task Task)) {
		for i := 0; i < 4; i++ {
			add("w", &countTask{left: 2 + i})
		}
	}
	legacy := New()
	mk(func(n string, task Task) { legacy.Add(n, task) })
	for legacy.Len() > 0 {
		if !legacy.RunOnce() {
			t.Fatalf("legacy scheduler stalled")
		}
	}

	s := NewSMP(1)
	mk(func(n string, task Task) { s.Add(0, n, task) })
	if !s.Run(2) {
		t.Fatalf("SMP(1) did not complete")
	}
	if s.Steps[0] != legacy.Steps {
		t.Fatalf("SMP(1) steps = %d, legacy = %d", s.Steps[0], legacy.Steps)
	}
}

// TestSMPBlockedTasksStopRun asserts the idle cut-off fires when every
// task blocks forever, and Blocked names them.
func TestSMPBlockedTasksStopRun(t *testing.T) {
	s := NewSMP(2)
	s.AddFunc(0, "stuck-a", func() Status { return Block })
	s.AddFunc(1, "stuck-b", func() Status { return Block })
	if s.Run(3) {
		t.Fatalf("Run reported completion with blocked tasks")
	}
	if got := s.Blocked(); len(got) != 2 {
		t.Fatalf("Blocked() = %v, want both stuck tasks", got)
	}
}

// TestSMPPerCoreClocksAndGVTMonotone drives quanta by hand and asserts
// the property the cost model depends on: no core clock ever regresses,
// and GVT is non-decreasing across barriers and always >= every
// observation made at a barrier.
func TestSMPPerCoreClocksAndGVTMonotone(t *testing.T) {
	const cores = 3
	m := cycles.NewMachine(cores)
	s := NewSMP(cores)
	s.Machine = m
	for c := 0; c < cores; c++ {
		s.Add(c, "w", &countTask{left: 8, cost: uint64(100 * (c + 1)), clk: m.Core(c)})
	}
	prevClocks := make([]uint64, cores)
	prevGVT := uint64(0)
	for s.Len() > 0 {
		s.RunQuantum()
		for c := 0; c < cores; c++ {
			now := m.Core(c).Cycles()
			if now < prevClocks[c] {
				t.Fatalf("core %d clock regressed: %d -> %d", c, prevClocks[c], now)
			}
			prevClocks[c] = now
		}
		gvt := m.GVT()
		if gvt < prevGVT {
			t.Fatalf("GVT regressed: %d -> %d", prevGVT, gvt)
		}
		for c := 0; c < cores; c++ {
			if gvt < prevClocks[c] {
				t.Fatalf("GVT %d below core %d clock %d at barrier", gvt, c, prevClocks[c])
			}
		}
		prevGVT = gvt
	}
}
