package uksched

import "testing"

func TestRunToCompletion(t *testing.T) {
	s := New()
	var order []string
	count := 0
	s.AddFunc("a", func() Status {
		order = append(order, "a")
		count++
		if count >= 3 {
			return Done
		}
		return Yield
	})
	s.AddFunc("b", func() Status {
		order = append(order, "b")
		return Done
	})
	if !s.Run(10) {
		t.Fatal("Run did not complete")
	}
	if s.Len() != 0 {
		t.Errorf("tasks remaining: %d", s.Len())
	}
	want := []string{"a", "b", "a", "a"}
	if len(order) != len(want) {
		t.Fatalf("order = %v", order)
	}
	for i := range want {
		if order[i] != want[i] {
			t.Fatalf("order = %v, want %v", order, want)
		}
	}
}

func TestBlockedTasksDetected(t *testing.T) {
	s := New()
	s.AddFunc("stuck", func() Status { return Block })
	s.AddFunc("ok", func() Status { return Done })
	if s.Run(5) {
		t.Fatal("Run reported completion with a blocked task")
	}
	blocked := s.Blocked()
	if len(blocked) != 1 || blocked[0] != "stuck" {
		t.Errorf("Blocked() = %v", blocked)
	}
}

func TestBlockedTaskWakesUp(t *testing.T) {
	s := New()
	ready := false
	s.AddFunc("producer", func() Status {
		ready = true
		return Done
	})
	s.AddFunc("consumer", func() Status {
		if !ready {
			return Block
		}
		return Done
	})
	if !s.Run(10) {
		t.Fatal("consumer never woke up")
	}
}

func TestStepsCounted(t *testing.T) {
	s := New()
	s.AddFunc("t", func() Status { return Done })
	s.RunOnce()
	if s.Steps != 1 {
		t.Errorf("Steps = %d", s.Steps)
	}
}

func TestEmptySchedulerCompletes(t *testing.T) {
	if !New().Run(1) {
		t.Error("empty scheduler did not complete")
	}
}
