// The cluster driver: a deterministic open-loop load generator over the
// fleet. Cluster time advances in fixed quanta; each quantum the driver
// fires scripted chaos, launches due arrivals, steps every backend
// until its virtual clock catches up with the cluster clock, reconciles
// the fleet's health view (drains, probes, re-admissions), and polls
// every in-flight request for responses, timeouts, hedges and retries.
// One goroutine, no wall-clock reads: the same seed replays the same
// run bit for bit.

package cluster

import (
	"fmt"
	"sort"
	"time"

	"cubicleos/internal/cubicle"
	"cubicleos/internal/cycles"
	"cubicleos/internal/siege"
)

// Quantum is the cluster-clock step in cycles: small enough to resolve
// request latencies (~5 ms floor), large enough that backend stepping
// amortises.
const Quantum = 500_000

// maxStepsPerQuantum bounds how many server iterations one backend may
// take inside a quantum before its clock is force-advanced — a guard
// against steps that stop charging virtual time.
const maxStepsPerQuantum = 4096

// cyclesPerSecond is the modelled CPU frequency (2.2 GHz), matching the
// cycles package's latency conversion.
const cyclesPerSecond = 2_200_000_000

// RunOptions configures one open-loop cluster run.
type RunOptions struct {
	// Path is the file requested by every arrival.
	Path string
	// Rate is the offered load in requests per virtual second,
	// cluster-wide.
	Rate float64
	// Requests is the number of scheduled arrivals.
	Requests int
	// MaxQuanta bounds driver iterations as a safety net (0 = derived
	// from the arrival schedule plus a generous drain margin).
	MaxQuanta int
}

// BackendStats is one backend's row of the cluster report.
type BackendStats struct {
	Index  int
	Health string
	// Balancer-side counters.
	Routed, OK, Shed, Errors, Dropped uint64
	Drains, Readmits                  uint64
	// Sys is the backend monitor's full counter set (crossings, faults,
	// quarantines, restarts, route/drain/failover events, ...).
	Sys cubicle.Stats
}

// Stats summarises one cluster run.
type Stats struct {
	Backends   int
	OfferedRPS float64
	Arrivals   int
	// OK counts 200s; Shed counts refusals (429/503) still standing
	// after retries; Errors counts other statuses and routing failures;
	// Dropped counts requests that never completed.
	OK, Shed, Errors, Dropped int
	// GoodputRPS is completed 200s per virtual second of the run.
	GoodputRPS float64
	// P50/P99/P999 are end-to-end latencies of the 200s, queueing and
	// retries included.
	P50, P99, P999 time.Duration
	// Elapsed is the cluster-clock span of the run.
	Elapsed time.Duration
	// Balancer mechanics.
	Retries, Hedges, HedgeWins, Failovers uint64
	Drains, Readmits, RouteFaults         uint64
	PerBackend                            []BackendStats
	// Sys is every backend monitor's counters merged (Stats.Merge).
	Sys cubicle.Stats
}

// leg is one attempt of a request on one backend.
type leg struct {
	backend   int
	conn      *siege.KAConn
	sent      bool
	abandoned bool
}

// flight is one open-loop arrival, across all its retry/hedge legs.
type flight struct {
	id      uint64
	arrival uint64 // scheduled cluster cycle
	// attempts counts legs issued so far (first try included).
	attempts int
	legs     []*leg
	deadline uint64
	hedgeAt  uint64
	// retryAt > 0 parks the flight until its backoff elapses;
	// retryExclude is the backend the failed leg ran on.
	retryAt      uint64
	retryExclude int
	done         bool
}

// run is the driver state for one RunOpenLoop call.
type run struct {
	c  *Cluster
	o  RunOptions
	st *Stats

	flights   []*flight
	lat       []uint64
	launched  int
	completed int
}

// RunOpenLoop drives an open-loop flood at the given rate across the
// fleet and returns the merged report. It may be called repeatedly; the
// cluster clock keeps advancing across calls.
func (c *Cluster) RunOpenLoop(o RunOptions) (*Stats, error) {
	if o.Rate <= 0 || o.Requests <= 0 {
		return nil, fmt.Errorf("cluster: open loop needs Rate > 0 and Requests > 0")
	}
	interval := uint64(cyclesPerSecond / o.Rate)
	if interval == 0 {
		interval = 1
	}
	maxQ := o.MaxQuanta
	if maxQ == 0 {
		maxQ = int((uint64(o.Requests)*interval)/Quantum) + 400_000
	}
	r := &run{c: c, o: o, st: &Stats{Backends: len(c.Backends), OfferedRPS: o.Rate, Arrivals: o.Requests}}
	start := c.now
	nextAt := c.now + interval
	scriptFired := 0
	for q := 0; r.completed < o.Requests && q < maxQ; q++ {
		c.now += Quantum
		for r.launched < o.Requests && nextAt <= c.now {
			f := &flight{id: uint64(r.launched), arrival: nextAt, retryExclude: -1}
			r.launched++
			r.flights = append(r.flights, f)
			r.dispatch(f, -1)
			nextAt += interval
		}
		// Chaos fires after dispatch, before the backends run: a kill
		// lands on requests already routed but not yet served, exactly
		// the in-flight work a real crash takes down.
		c.processScript(&scriptFired)
		for _, b := range c.Backends {
			c.stepBackend(b)
		}
		c.reconcileHealth(o.Path)
		r.pollFlights()
	}
	// Stragglers at the quanta cap never completed.
	for _, f := range r.flights {
		if !f.done {
			r.finish(f, "dropped", nil, -1)
		}
	}
	r.assemble(start)
	return r.st, nil
}

// stepBackend advances one backend's virtual clock to the cluster
// clock, driving its server loop and pumping its wire peer.
func (c *Cluster) stepBackend(b *Backend) {
	clk := b.T.Sys.M.Clock
	for i := 0; clk.Cycles() < c.now; i++ {
		if i >= maxStepsPerQuantum {
			clk.AdvanceTo(c.now)
			break
		}
		before := clk.Cycles()
		if cf := cubicle.CatchContained(func() { b.T.Step() }); cf != nil {
			// NGINX itself is quarantined: nothing to drive until the
			// supervisor lets it back in. Burn the rest of the quantum.
			clk.AdvanceTo(c.now)
			break
		}
		b.T.Peer.Pump()
		if clk.Cycles() == before {
			// The step charged nothing (fully idle server): virtual time
			// would stall, so advance it explicitly.
			clk.AdvanceTo(c.now)
			break
		}
	}
	b.T.Peer.Pump()
}

// reconcileHealth turns the health hooks' raw cubicle transitions into
// balancer decisions: newly sick backends start draining, recovered
// ones are re-admitted, and drained backends past their deadline get a
// re-admission probe (which is also what triggers the supervisor's
// lazy in-place restart).
func (c *Cluster) reconcileHealth(probePath string) {
	for _, b := range c.Backends {
		sick := len(b.sick) > 0
		if sick && !b.draining {
			b.draining = true
			b.drainUntil = c.now + c.O.DrainDeadline
			b.Drains++
			c.Drains++
			b.T.Sys.M.NoteDrain("drain", b.Index, b.drainUntil)
		}
		if b.draining && !sick {
			b.draining = false
			b.Readmits++
			c.Readmits++
			b.T.Sys.M.NoteDrain("readmit", b.Index, 0)
			if b.probe != nil && !b.probe.abandoned {
				// Let a still-pending probe response drain on the floor.
				b.probe.conn.Conn.Close()
				b.probe = nil
			}
		}
		if b.draining && sick && !b.dead() {
			c.probeStep(b, probePath)
		}
	}
}

// probeStep starts or advances a drained backend's re-admission probe:
// one synthetic request past its drain deadline. A 200 means the
// supervisor restarted the sick cubicle on the way (warm when a
// checkpoint exists) — the health hook has already cleared the sick
// set, and the next reconcile pass re-admits the backend.
func (c *Cluster) probeStep(b *Backend, path string) {
	if b.probe == nil {
		if c.now < b.drainUntil {
			return
		}
		b.probe = &leg{backend: b.Index, conn: b.T.OpenKA()}
		b.T.Sys.M.NoteRoute("probe", b.Index, 0)
		return
	}
	p := b.probe
	if !p.sent && p.conn.Conn.Established {
		p.conn.Request(path)
		p.sent = true
		return
	}
	resp, err := p.conn.Next()
	switch {
	case err == nil && resp == nil && !p.conn.Conn.FinRcvd && c.now < b.drainUntil+c.O.DrainDeadline:
		return // still waiting
	case resp != nil && resp.Status == 200:
		// Recovery confirmed; re-admission happens on the next pass.
		b.release(p.conn)
	default:
		// Refused, closed on, or timed out: try again a deadline later.
		p.conn.Conn.Close()
		b.drainUntil = c.now + c.O.DrainDeadline
	}
	b.probe = nil
}

// dispatch routes a flight's next leg. Routing failure (no eligible
// backend) finishes the flight as an error carrying the *RouteFault.
func (r *run) dispatch(f *flight, exclude int) {
	f.attempts++
	idx, err := r.c.Route(f.id, f.attempts, exclude)
	if err != nil {
		r.finish(f, "error", nil, -1)
		return
	}
	b := r.c.Backends[idx]
	b.inflight++
	f.legs = append(f.legs, &leg{backend: idx, conn: b.acquire()})
	f.deadline = r.c.now + r.c.O.RequestTimeout
	f.hedgeAt = 0
	if r.c.O.HedgeAfter > 0 {
		f.hedgeAt = r.c.now + r.c.O.HedgeAfter
	}
}

// abandon retires a leg without an answer: its connection is closed
// (poisoned framing cannot be pooled) and the backend's load gauge
// drops.
func (r *run) abandon(l *leg) {
	if l.abandoned {
		return
	}
	l.abandoned = true
	l.conn.Conn.Close()
	r.c.Backends[l.backend].inflight--
}

// budgetOK checks the retry budget: retries and hedges together may not
// exceed the configured fraction of arrivals so far.
func (r *run) budgetOK() bool {
	return float64(r.c.Retries+r.c.Hedges) < r.c.O.RetryBudget*float64(r.launched)
}

// backoff is the exponential retry backoff before attempt n+1.
func (r *run) backoff(attempts int) uint64 {
	b := r.c.O.BackoffBase
	for i := 1; i < attempts; i++ {
		if b >= r.c.O.BackoffMax/r.c.O.BackoffFactor {
			return r.c.O.BackoffMax
		}
		b *= r.c.O.BackoffFactor
	}
	if b > r.c.O.BackoffMax {
		b = r.c.O.BackoffMax
	}
	return b
}

// scheduleRetry parks a flight for its backoff after a failed leg on
// backend failed. The failover is recorded on the failed backend's
// monitor with the reason the balancer acted for.
func (r *run) scheduleRetry(f *flight, failed int) {
	for _, l := range f.legs {
		r.abandon(l)
	}
	f.legs = f.legs[:0]
	b := r.c.Backends[failed]
	reason := "retry"
	if b.draining || len(b.sick) > 0 {
		reason = "drain"
	}
	r.c.Retries++
	r.c.Failovers++
	b.T.Sys.M.NoteFailover(reason, failed, uint64(f.attempts))
	f.retryAt = r.c.now + r.backoff(f.attempts)
	f.retryExclude = failed
	f.hedgeAt = 0
}

// finish settles a flight into its terminal class. leg < 0 attributes
// nothing to a backend (routing failures, stragglers with no live leg).
func (r *run) finish(f *flight, kind string, resp *siege.KAResponse, backend int) {
	for _, l := range f.legs {
		r.abandon(l)
	}
	f.done = true
	r.completed++
	var b *Backend
	if backend >= 0 {
		b = r.c.Backends[backend]
	}
	switch kind {
	case "ok":
		r.st.OK++
		if b != nil {
			b.OK++
		}
		r.lat = append(r.lat, r.c.now-f.arrival+r.c.Backends[backend].T.RequestFloor)
	case "shed":
		r.st.Shed++
		if b != nil {
			b.Shed++
		}
	case "dropped":
		r.st.Dropped++
		if b != nil {
			b.Dropped++
		}
	default:
		r.st.Errors++
		if b != nil {
			b.Errors++
		}
	}
	_ = resp
}

// settle classifies a completed response, retrying refusals when the
// budget allows.
func (r *run) settle(f *flight, win *leg, resp *siege.KAResponse) {
	// The winner's connection goes back to the pool; every other live
	// leg is abandoned.
	b := r.c.Backends[win.backend]
	b.inflight--
	win.abandoned = true // keeps finish/abandon from double-closing
	if resp.Close || win.conn.Conn.FinRcvd {
		// Server retired the connection.
	} else {
		b.release(win.conn)
	}
	if win != f.legs[0] {
		r.c.HedgeWins++
	}
	switch {
	case resp.Status == 200:
		r.finish(f, "ok", resp, win.backend)
	case resp.Status == 429 || resp.Status == 503:
		if f.attempts < r.c.O.MaxAttempts && r.budgetOK() {
			r.scheduleRetry(f, win.backend)
			return
		}
		r.finish(f, "shed", resp, win.backend)
	default:
		r.finish(f, "error", resp, win.backend)
	}
}

// pollFlights advances every live flight: sends on freshly-established
// connections, reaps responses, fires hedges, and enforces timeouts and
// retry backoffs.
func (r *run) pollFlights() {
	for _, f := range r.flights {
		if f.done {
			continue
		}
		// Parked for backoff?
		if f.retryAt > 0 {
			if r.c.now >= f.retryAt {
				f.retryAt = 0
				r.dispatch(f, f.retryExclude)
			}
			continue
		}
		live := 0
		var lastBackend = -1
		for _, l := range f.legs {
			if l.abandoned {
				continue
			}
			lastBackend = l.backend
			if !l.sent && l.conn.Conn.Established {
				l.conn.Request(r.o.Path)
				l.sent = true
			}
			resp, err := l.conn.Next()
			if err != nil {
				r.abandon(l)
				continue
			}
			if resp != nil {
				r.settle(f, l, resp)
				break
			}
			if l.conn.Conn.FinRcvd {
				// Closed on without an answer (truncated response).
				r.abandon(l)
				continue
			}
			live++
		}
		if f.done || f.retryAt > 0 {
			continue
		}
		if live == 0 {
			// Every leg died without a response.
			if lastBackend >= 0 && f.attempts < r.c.O.MaxAttempts && r.budgetOK() {
				r.scheduleRetry(f, lastBackend)
			} else {
				r.finish(f, "dropped", nil, lastBackend)
			}
			continue
		}
		if r.c.now >= f.deadline {
			// Unanswered past the request timeout.
			if f.attempts < r.c.O.MaxAttempts && r.budgetOK() {
				r.scheduleRetry(f, lastBackend)
			} else {
				r.finish(f, "dropped", nil, lastBackend)
			}
			continue
		}
		if f.hedgeAt > 0 && r.c.now >= f.hedgeAt && live == 1 &&
			f.attempts < r.c.O.MaxAttempts && r.budgetOK() {
			// Hedge: a duplicate leg on a different backend; first answer
			// wins. Recorded as a failover (reason hedge) on the backend
			// receiving the duplicate.
			f.hedgeAt = 0
			f.attempts++
			idx, err := r.c.Route(f.id, f.attempts, lastBackend)
			if err == nil {
				r.c.Hedges++
				r.c.Failovers++
				hb := r.c.Backends[idx]
				hb.T.Sys.M.NoteFailover("hedge", idx, uint64(f.attempts))
				hb.inflight++
				f.legs = append(f.legs, &leg{backend: idx, conn: hb.acquire()})
			}
		}
	}
}

// assemble finalises the report: latency percentiles, goodput, and the
// per-backend and merged system counters.
func (r *run) assemble(start uint64) {
	st := r.st
	sort.Slice(r.lat, func(i, j int) bool { return r.lat[i] < r.lat[j] })
	st.P50 = siege.Percentile(r.lat, 0.50)
	st.P99 = siege.Percentile(r.lat, 0.99)
	st.P999 = siege.Percentile(r.lat, 0.999)
	span := r.c.now - start
	st.Elapsed = cycles.Duration(span)
	if span > 0 {
		st.GoodputRPS = float64(st.OK) * cyclesPerSecond / float64(span)
	}
	st.Retries = r.c.Retries
	st.Hedges = r.c.Hedges
	st.HedgeWins = r.c.HedgeWins
	st.Failovers = r.c.Failovers
	st.Drains = r.c.Drains
	st.Readmits = r.c.Readmits
	st.RouteFaults = r.c.RouteFaults
	st.Sys = cubicle.NewStats()
	for _, b := range r.c.Backends {
		st.Sys.Merge(&b.T.Sys.M.Stats)
		st.PerBackend = append(st.PerBackend, BackendStats{
			Index:   b.Index,
			Health:  b.Health(),
			Routed:  b.Routed,
			OK:      b.OK,
			Shed:    b.Shed,
			Errors:  b.Errors,
			Dropped: b.Dropped,
			Drains:  b.Drains,
			Readmits: b.Readmits,
			Sys:     b.T.Sys.M.Stats,
		})
	}
}
