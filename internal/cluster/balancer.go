// The balancer: routing policies over the fleet's health view. Both
// policies are pure functions of (key, inflight counts, health), so a
// run's routing decisions are deterministic for a fixed seed.

package cluster

import (
	"sort"

	"cubicleos/internal/faultinject"
)

// vnodesPerBackend is the consistent-hash ring density. More virtual
// nodes smooth the key distribution at the cost of a bigger ring walk.
const vnodesPerBackend = 64

type ringSlot struct {
	hash    uint64
	backend int
}

// mix64 is the splitmix64 output permutation — the same mixing the
// fault injector uses, duplicated here so the balancer's hashing never
// couples to injector stream state.
func mix64(z uint64) uint64 {
	z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9
	z = (z ^ (z >> 27)) * 0x94d049bb133111eb
	return z ^ (z >> 31)
}

// buildRing lays out vnodesPerBackend virtual nodes per backend, hashed
// from (seed, backend, vnode).
func (c *Cluster) buildRing() {
	c.ring = c.ring[:0]
	for i := range c.Backends {
		for v := 0; v < vnodesPerBackend; v++ {
			h := mix64(c.O.Seed ^ mix64(uint64(i)<<20|uint64(v)+1))
			c.ring = append(c.ring, ringSlot{hash: h, backend: i})
		}
	}
	sort.Slice(c.ring, func(a, b int) bool {
		if c.ring[a].hash != c.ring[b].hash {
			return c.ring[a].hash < c.ring[b].hash
		}
		return c.ring[a].backend < c.ring[b].backend
	})
}

// routeFault builds the typed no-eligible-backend error from the
// fleet's current health census.
func (c *Cluster) routeFault() *RouteFault {
	f := &RouteFault{Policy: c.O.Policy.String()}
	for _, b := range c.Backends {
		switch {
		case b.dead():
			f.Dead++
		case b.eligible():
			f.Healthy++
		default:
			f.Draining++
		}
	}
	return f
}

// route picks a backend for the request key among eligible backends,
// excluding one index (a failed or already-hedged backend; -1 excludes
// none). When only the excluded backend is eligible it is used anyway —
// a degraded answer beats none.
func (c *Cluster) route(key uint64, exclude int) (int, *RouteFault) {
	pick := -1
	switch c.O.Policy {
	case PolicyHash:
		if len(c.ring) == 0 {
			c.buildRing()
		}
		h := mix64(key ^ c.O.Seed)
		start := sort.Search(len(c.ring), func(i int) bool { return c.ring[i].hash >= h })
		fallback := -1
		for i := 0; i < len(c.ring); i++ {
			s := c.ring[(start+i)%len(c.ring)]
			if !c.Backends[s.backend].eligible() {
				continue
			}
			if s.backend == exclude {
				if fallback < 0 {
					fallback = s.backend
				}
				continue
			}
			pick = s.backend
			break
		}
		if pick < 0 {
			pick = fallback
		}
	default: // PolicyLeastLoaded
		fallback := -1
		for i, b := range c.Backends {
			if !b.eligible() {
				continue
			}
			if i == exclude {
				fallback = i
				continue
			}
			if pick < 0 || b.inflight < c.Backends[pick].inflight {
				pick = i
			}
		}
		if pick < 0 {
			pick = fallback
		}
	}
	if pick < 0 {
		c.RouteFaults++
		return -1, c.routeFault()
	}
	return pick, nil
}

// Route is the public routing decision: it picks a backend for the key,
// records the decision on the chosen backend's monitor (EvRoute), fires
// the route-chaos site against it, and bumps the balancer gauges. The
// attempt number distinguishes first tries from retry/hedge legs.
func (c *Cluster) Route(key uint64, attempt int, exclude int) (int, error) {
	idx, rf := c.route(key, exclude)
	if rf != nil {
		return -1, rf
	}
	b := c.Backends[idx]
	b.Routed++
	b.T.Sys.M.NoteRoute(c.O.Policy.String(), idx, uint64(attempt))
	if c.chaos != nil {
		switch c.chaos.AtRoute(idx) {
		case faultinject.RouteKill:
			c.Kill(idx)
		case faultinject.RouteSlow:
			c.Slow(idx, 4, c.O.DrainDeadline)
		}
	}
	return idx, nil
}
