package cluster

import (
	"errors"
	"reflect"
	"testing"

	"cubicleos/internal/cubicle"
	"cubicleos/internal/faultinject"
	"cubicleos/internal/httpd"
)

const testBody = "cluster-test-body cluster-test-body cluster-test-body\n"

func bootCluster(t *testing.T, o Options) *Cluster {
	t.Helper()
	c, err := New(o)
	if err != nil {
		t.Fatal(err)
	}
	if err := c.PutFile("/index.html", []byte(testBody)); err != nil {
		t.Fatal(err)
	}
	return c
}

func checkConservation(t *testing.T, st *Stats) {
	t.Helper()
	if st.OK+st.Shed+st.Errors+st.Dropped != st.Arrivals {
		t.Fatalf("request conservation broken: OK %d + Shed %d + Errors %d + Dropped %d != Arrivals %d",
			st.OK, st.Shed, st.Errors, st.Dropped, st.Arrivals)
	}
}

// TestClusterGoodputScales: N backends at N× the single-backend offered
// rate complete (nearly) everything — goodput scales with fleet size.
func TestClusterGoodputScales(t *testing.T) {
	goodput := map[int]float64{}
	for _, n := range []int{1, 2, 4} {
		c := bootCluster(t, Options{Backends: n, Mode: cubicle.ModeFull})
		st, err := c.RunOpenLoop(RunOptions{Path: "/index.html", Rate: 1500 * float64(n), Requests: 40 * n})
		if err != nil {
			t.Fatal(err)
		}
		checkConservation(t, st)
		if st.OK < st.Arrivals*9/10 {
			t.Fatalf("backends=%d: only %d/%d OK", n, st.OK, st.Arrivals)
		}
		goodput[n] = st.GoodputRPS
		t.Logf("backends=%d goodput=%.0f rps p50=%v p99=%v", n, st.GoodputRPS, st.P50, st.P99)
	}
	if goodput[2] < 1.5*goodput[1] || goodput[4] < 2.5*goodput[1] {
		t.Fatalf("goodput does not scale: 1→%.0f 2→%.0f 4→%.0f rps",
			goodput[1], goodput[2], goodput[4])
	}
}

// TestClusterFailover is the acceptance scenario: killing one of four
// backends mid-flood drains it, fails its traffic over, keeps goodput
// at ≥ 60% of the undisturbed run, and re-admits the backend after a
// warm (checkpoint-restored) restart.
func TestClusterFailover(t *testing.T) {
	opts := Options{
		Backends:           4,
		Mode:               cubicle.ModeFull,
		Seed:               7,
		CheckpointInterval: 5_000_000,
	}
	run := RunOptions{Path: "/index.html", Rate: 6000, Requests: 360}

	base := bootCluster(t, opts)
	baseSt, err := base.RunOpenLoop(run)
	if err != nil {
		t.Fatal(err)
	}
	checkConservation(t, baseSt)

	opts.Script = []Event{{AtCycle: 25_000_000, Backend: 1, Action: ActKill}}
	chaos := bootCluster(t, opts)
	st, err := chaos.RunOpenLoop(run)
	if err != nil {
		t.Fatal(err)
	}
	checkConservation(t, st)
	t.Logf("baseline goodput %.0f rps, kill-one goodput %.0f rps (drains %d readmits %d failovers %d)",
		baseSt.GoodputRPS, st.GoodputRPS, st.Drains, st.Readmits, st.Failovers)
	if st.GoodputRPS < 0.6*baseSt.GoodputRPS {
		t.Fatalf("goodput under failover %.0f rps < 60%% of steady-state %.0f rps",
			st.GoodputRPS, baseSt.GoodputRPS)
	}
	if st.Drains < 1 || st.Readmits < 1 {
		t.Fatalf("killed backend was not drained+readmitted: drains %d readmits %d", st.Drains, st.Readmits)
	}
	killed := st.PerBackend[1]
	if killed.Health != "healthy" {
		t.Fatalf("killed backend ended %q, want healthy after re-admission", killed.Health)
	}
	if killed.Sys.WarmRestarts < 1 {
		t.Fatalf("killed backend restarted cold (%d warm, %d cold restarts) — checkpoint restore did not run",
			killed.Sys.WarmRestarts, killed.Sys.ColdRestarts)
	}
	if st.Failovers < 1 {
		t.Fatal("no failovers recorded despite a mid-flood kill")
	}
}

// chaosOptions is the shared chaos configuration of the determinism and
// trace-equality tests: wire drops, route chaos, a scripted kill, and
// hedging all active at once.
func chaosOptions(trace int) Options {
	return Options{
		Backends:           4,
		Mode:               cubicle.ModeFull,
		Seed:               11,
		CheckpointInterval: 5_000_000,
		HedgeAfter:         20_000_000,
		RetryBudget:        0.25,
		TraceEvents:        trace,
		Chaos: &faultinject.Config{
			Seed:       11,
			DropAtWire: 0.015,
		},
		Script: []Event{
			{AtCycle: 20_000_000, Backend: 2, Action: ActKill},
			{AtCycle: 30_000_000, Backend: 0, Action: ActSlow, Factor: 3, Window: 20_000_000},
		},
	}
}

func runChaos(t *testing.T, trace int) (*Cluster, *Stats) {
	t.Helper()
	c := bootCluster(t, chaosOptions(trace))
	c.Arm()
	st, err := c.RunOpenLoop(RunOptions{Path: "/index.html", Rate: 5000, Requests: 300})
	if err != nil {
		t.Fatal(err)
	}
	checkConservation(t, st)
	return c, st
}

// TestClusterDeterministicUnderChaos: five fresh clusters with the same
// seed, chaos schedule and kill script produce byte-identical reports —
// the whole failover run is a pure function of the seed.
func TestClusterDeterministicUnderChaos(t *testing.T) {
	c, first := runChaos(t, 0)
	var drops uint64
	for _, b := range c.Backends {
		drops += b.T.Sys.Chaos.Fired
	}
	if first.Failovers == 0 || first.Hedges == 0 || drops == 0 {
		t.Fatalf("chaos run too tame to gate determinism on: failovers %d hedges %d wire drops %d",
			first.Failovers, first.Hedges, drops)
	}
	for i := 1; i < 5; i++ {
		_, st := runChaos(t, 0)
		if !reflect.DeepEqual(st, first) {
			t.Fatalf("run %d diverged:\n got  %+v\n want %+v", i, st, first)
		}
	}
}

// TestClusterStatsFromTraceEquality: after a chaos run with tracing on,
// every backend's monitor counters — including the new route, drain and
// failover counters — are reconstructible from its trace ring.
func TestClusterStatsFromTraceEquality(t *testing.T) {
	c, st := runChaos(t, 4096)
	if st.Drains == 0 || st.Failovers == 0 {
		t.Fatalf("chaos run recorded no drains (%d) or failovers (%d)", st.Drains, st.Failovers)
	}
	for _, b := range c.Backends {
		m := b.T.Sys.M
		got := cubicle.StatsFromTrace(m.Tracer())
		if !reflect.DeepEqual(got, m.Stats) {
			t.Fatalf("backend %d: StatsFromTrace diverged:\n got  %+v\n want %+v", b.Index, got, m.Stats)
		}
	}
}

// TestClusterStatsMergeAssociative: merging the per-backend monitor
// stats is order- and grouping-independent, so fleet roll-ups never
// depend on which backend reports first.
func TestClusterStatsMergeAssociative(t *testing.T) {
	c, _ := runChaos(t, 0)
	s := make([]*cubicle.Stats, len(c.Backends))
	for i, b := range c.Backends {
		s[i] = &b.T.Sys.M.Stats
	}
	// ((0+1)+(2+3)) vs (((0+1)+2)+3) vs reverse order.
	left := cubicle.NewStats()
	left.Merge(s[0])
	left.Merge(s[1])
	right := cubicle.NewStats()
	right.Merge(s[2])
	right.Merge(s[3])
	grouped := cubicle.NewStats()
	grouped.Merge(&left)
	grouped.Merge(&right)
	linear := cubicle.NewStats()
	for i := 0; i < 4; i++ {
		linear.Merge(s[i])
	}
	reversed := cubicle.NewStats()
	for i := 3; i >= 0; i-- {
		reversed.Merge(s[i])
	}
	if !reflect.DeepEqual(grouped, linear) || !reflect.DeepEqual(linear, reversed) {
		t.Fatalf("Stats.Merge is not associative/commutative:\n grouped %+v\n linear  %+v\n reversed %+v",
			grouped, linear, reversed)
	}
}

// TestClusterRetryBudget: a fleet held at admission limits sheds loudly
// but the balancer never amplifies — retries plus hedges stay within
// the configured fraction of arrivals.
func TestClusterRetryBudget(t *testing.T) {
	c := bootCluster(t, Options{
		Backends:    2,
		Mode:        cubicle.ModeFull,
		HedgeAfter:  10_000_000,
		RetryBudget: 0.1,
		Governance:  &httpd.Governance{MaxConns: 2, RetryAfter: 1},
	})
	st, err := c.RunOpenLoop(RunOptions{Path: "/index.html", Rate: 12_000, Requests: 240})
	if err != nil {
		t.Fatal(err)
	}
	checkConservation(t, st)
	if st.Shed == 0 {
		t.Fatal("overload run shed nothing — admission control never engaged")
	}
	budget := uint64(0.1*float64(st.Arrivals)) + 1
	if st.Retries+st.Hedges > budget {
		t.Fatalf("balancer amplified load: %d retries + %d hedges > budget %d over %d arrivals",
			st.Retries, st.Hedges, budget, st.Arrivals)
	}
}

// TestRouteFaultTyped: with every backend sick the balancer returns the
// typed *RouteFault carrying the fleet health census.
func TestRouteFaultTyped(t *testing.T) {
	c := bootCluster(t, Options{Backends: 2, Mode: cubicle.ModeFull})
	if !c.Kill(0) || !c.Kill(1) {
		t.Fatal("Kill did not reach the supervisors")
	}
	_, err := c.Route(42, 1, -1)
	var rf *RouteFault
	if !errors.As(err, &rf) {
		t.Fatalf("Route returned %v, want *RouteFault", err)
	}
	if rf.Healthy != 0 || rf.Draining != 2 || rf.Dead != 0 {
		t.Fatalf("census = %+v, want 0 healthy / 2 draining / 0 dead", rf)
	}
	if c.RouteFaults != 1 {
		t.Fatalf("RouteFaults = %d, want 1", c.RouteFaults)
	}
}

// TestHashPolicyDeterministicAndSticky: the consistent-hash policy maps
// the same key to the same backend run to run, and spreads keys.
func TestHashPolicyDeterministicAndSticky(t *testing.T) {
	mk := func() *Cluster {
		return bootCluster(t, Options{Backends: 4, Mode: cubicle.ModeFull, Policy: PolicyHash, Seed: 3})
	}
	a, b := mk(), mk()
	seen := map[int]int{}
	for key := uint64(0); key < 64; key++ {
		ia, err := a.Route(key, 1, -1)
		if err != nil {
			t.Fatal(err)
		}
		ib, err := b.Route(key, 1, -1)
		if err != nil {
			t.Fatal(err)
		}
		if ia != ib {
			t.Fatalf("key %d routed to %d and %d on identical clusters", key, ia, ib)
		}
		seen[ia]++
	}
	if len(seen) < 3 {
		t.Fatalf("hash ring concentrated 64 keys on %d backends: %v", len(seen), seen)
	}
	// Draining a backend moves only its keys.
	a.Kill(0)
	for key := uint64(0); key < 64; key++ {
		idx, err := a.Route(key, 2, -1)
		if err != nil {
			t.Fatal(err)
		}
		if idx == 0 {
			t.Fatalf("key %d routed to a draining backend", key)
		}
	}
}
