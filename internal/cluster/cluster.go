// Package cluster promotes the single-system siege into a virtual
// cluster: N booted CubicleOS deployments behind a simulated L4/L7
// balancer. Each backend's health is fed by its own supervisor ladder
// (Healthy → Quarantined → Dead) through the monitor's health hook; the
// balancer drains sick backends with a virtual-clock deadline, probes
// them back to life, and re-admits them once their cubicles recover —
// typically via a warm (checkpoint-restored) restart. Per-request
// retries and hedges are bounded by a retry budget so an overloaded
// fleet is never amplified, and routing failures surface as a typed
// *RouteFault.
//
// Everything runs on virtual clocks in one goroutine: the driver
// advances cluster time in fixed quanta and steps every backend until
// its local clock catches up, which is what makes a chaos-laden
// failover run bit-identical for a fixed seed.
package cluster

import (
	"errors"
	"fmt"

	"cubicleos/internal/boot"
	"cubicleos/internal/cubicle"
	"cubicleos/internal/faultinject"
	"cubicleos/internal/httpd"
	"cubicleos/internal/ramfs"
	"cubicleos/internal/siege"
)

// Policy selects the balancer's routing policy.
type Policy int

const (
	// PolicyLeastLoaded routes to the eligible backend with the fewest
	// in-flight requests, ties broken by lowest index.
	PolicyLeastLoaded Policy = iota
	// PolicyHash routes by consistent hashing over a ring of virtual
	// nodes, walking the ring past ineligible backends.
	PolicyHash
)

func (p Policy) String() string {
	if p == PolicyHash {
		return "hash"
	}
	return "least-loaded"
}

// Action is a scripted failover event kind.
type Action int

const (
	// ActKill quarantines the backend's RAMFS through the standard
	// supervision ladder — a whole-backend crash from the balancer's
	// point of view, recoverable by a (warm) restart.
	ActKill Action = iota
	// ActSlow scales the backend's compute cost for a window.
	ActSlow
)

// Event is one scripted chaos event on the cluster clock.
type Event struct {
	AtCycle uint64
	Backend int
	Action  Action
	// Factor multiplies the slowed backend's work scale (ActSlow).
	Factor float64
	// Window is how long the slowdown lasts in cycles (ActSlow).
	Window uint64
}

// ErrKilled is the quarantine cause recorded by scripted backend kills.
var ErrKilled = errors.New("cluster: scripted backend kill")

// Options configures a cluster boot. The zero value of every tuning
// field selects a sensible default (see the constants below).
type Options struct {
	// Backends is the fleet size (default 2).
	Backends int
	// Mode is each backend's isolation mode.
	Mode cubicle.Mode
	// Policy selects the routing policy.
	Policy Policy
	// Seed keys the balancer's hash ring and each backend's chaos
	// streams.
	Seed uint64

	// MaxAttempts bounds legs issued per request — first try plus
	// retries plus hedges (default 3).
	MaxAttempts int
	// BackoffBase/BackoffFactor/BackoffMax shape the exponential
	// virtual-clock backoff between retry legs.
	BackoffBase   uint64
	BackoffFactor uint64
	BackoffMax    uint64
	// RetryBudget caps retries+hedges as a fraction of arrivals so the
	// balancer never amplifies an overloaded fleet (default 0.1).
	RetryBudget float64
	// HedgeAfter, when non-zero, issues a hedged duplicate to a second
	// backend once a request has waited this many cycles unanswered.
	HedgeAfter uint64
	// RequestTimeout abandons a leg unanswered for this many cycles
	// (default 80M ≈ 36 ms at 2.2 GHz).
	RequestTimeout uint64
	// DrainDeadline is how long a drained backend sits out before the
	// balancer probes it for re-admission (default 30M cycles).
	DrainDeadline uint64

	// Per-backend boot knobs, passed through to siege.NewTargetOpts.
	Governance         *httpd.Governance
	Restart            *cubicle.RestartPolicy
	CheckpointInterval uint64
	Chaos              *faultinject.Config
	ReapClosed         bool
	TraceEvents        int

	// Script is the failover scenario on the cluster clock.
	Script []Event
}

// Defaults for the zero-valued Options fields.
const (
	DefaultMaxAttempts    = 3
	DefaultBackoffBase    = 2_000_000
	DefaultBackoffFactor  = 2
	DefaultBackoffMax     = 32_000_000
	DefaultRetryBudget    = 0.1
	DefaultRequestTimeout = 80_000_000
	DefaultDrainDeadline  = 30_000_000
)

func (o *Options) fill() {
	if o.Backends == 0 {
		o.Backends = 2
	}
	if o.MaxAttempts == 0 {
		o.MaxAttempts = DefaultMaxAttempts
	}
	if o.BackoffBase == 0 {
		o.BackoffBase = DefaultBackoffBase
	}
	if o.BackoffFactor == 0 {
		o.BackoffFactor = DefaultBackoffFactor
	}
	if o.BackoffMax == 0 {
		o.BackoffMax = DefaultBackoffMax
	}
	if o.RetryBudget == 0 {
		o.RetryBudget = DefaultRetryBudget
	}
	if o.RequestTimeout == 0 {
		o.RequestTimeout = DefaultRequestTimeout
	}
	if o.DrainDeadline == 0 {
		o.DrainDeadline = DefaultDrainDeadline
	}
}

// Backend is one cluster member: a booted system plus the balancer's
// view of it.
type Backend struct {
	T     *siege.Target
	Index int

	// sick maps cubicle name → health for every currently unhealthy
	// cubicle, maintained by the monitor's health hook. The backend is
	// eligible for routing only while this is empty and it is not
	// sitting out a drain window.
	sick map[string]cubicle.Health

	draining   bool
	drainUntil uint64 // cluster cycle after which the probe goes out
	probe      *leg   // in-flight re-admission probe, nil when none

	slowUntil uint64 // cluster cycle the scripted slowdown ends

	inflight int
	pool     []*siege.KAConn

	// Balancer-side counters for this backend.
	Routed, OK, Shed, Errors, Dropped uint64
	Drains, Readmits                  uint64
}

// dead reports whether any of the backend's cubicles exhausted its
// restart budget — the backend never comes back.
func (b *Backend) dead() bool {
	for _, h := range b.sick {
		if h == cubicle.Dead {
			return true
		}
	}
	return false
}

// eligible reports whether the balancer may route new requests here.
func (b *Backend) eligible() bool {
	return len(b.sick) == 0 && !b.draining
}

// Health names the backend's current balancer-visible state.
func (b *Backend) Health() string {
	switch {
	case b.dead():
		return "dead"
	case b.draining:
		return "draining"
	case len(b.sick) > 0:
		return "sick"
	default:
		return "healthy"
	}
}

// acquire pops a reusable keep-alive connection from the backend's pool
// or dials a fresh one.
func (b *Backend) acquire() *siege.KAConn {
	for n := len(b.pool); n > 0; n = len(b.pool) {
		k := b.pool[n-1]
		b.pool = b.pool[:n-1]
		if !k.Conn.FinRcvd && !k.SawClose {
			return k
		}
	}
	return b.T.OpenKA()
}

// release returns a still-usable connection to the pool.
func (b *Backend) release(k *siege.KAConn) {
	if !k.Conn.FinRcvd && !k.SawClose {
		b.pool = append(b.pool, k)
	}
}

// Cluster is the booted fleet plus balancer state.
type Cluster struct {
	O        Options
	Backends []*Backend

	ring  []ringSlot
	chaos *faultinject.Injector // cluster-level route-chaos stream

	now uint64 // cluster virtual time

	// Fleet-level counters.
	Retries, Hedges, HedgeWins uint64
	Failovers                  uint64
	Drains, Readmits           uint64
	RouteFaults                uint64
}

// New boots a fleet of Options.Backends systems. Chaos injectors (per
// backend and the cluster-level route stream) boot disarmed; call Arm
// once provisioning is done.
func New(o Options) (*Cluster, error) {
	o.fill()
	c := &Cluster{O: o}
	restart := cubicle.DefaultRestartPolicy()
	// The siege-tuned default quarantine backoff (~100k cycles) would let
	// a killed backend restart under the very next in-flight request,
	// before the balancer ever observes the drain. Cluster recovery is
	// owned by the drain window: quarantine long enough that the
	// re-admission probe — not ambient traffic — performs the restart.
	restart.BackoffBase = 8_000_000
	if o.Restart != nil {
		restart = *o.Restart
	}
	for i := 0; i < o.Backends; i++ {
		rp := restart
		t, err := siege.NewTargetOpts(siege.Options{
			Mode:               o.Mode,
			Supervision:        &rp,
			Governance:         o.Governance,
			CheckpointInterval: o.CheckpointInterval,
			Chaos:              o.Chaos,
			ReapClosed:         o.ReapClosed,
			TraceEvents:        o.TraceEvents,
			Cluster:            i,
		})
		if err != nil {
			return nil, fmt.Errorf("cluster: backend %d: %w", i, err)
		}
		b := &Backend{T: t, Index: i, sick: make(map[string]cubicle.Health)}
		t.Sys.M.SetHealthHook(func(name string, _ cubicle.ID, _, to cubicle.Health) {
			// Record-only: the driver reconciles drains/re-admissions
			// between quanta.
			if to == cubicle.Healthy {
				delete(b.sick, name)
			} else {
				b.sick[name] = to
			}
		})
		c.Backends = append(c.Backends, b)
	}
	if o.Chaos != nil {
		c.chaos = faultinject.New(*o.Chaos)
	}
	if o.Policy == PolicyHash {
		c.buildRing()
	}
	return c, nil
}

// MustNew is New for tests where failure is fatal.
func MustNew(o Options) *Cluster {
	c, err := New(o)
	if err != nil {
		panic(err)
	}
	return c
}

// PutFile provisions the same static file on every backend.
func (c *Cluster) PutFile(path string, data []byte) error {
	for _, b := range c.Backends {
		if err := b.T.PutFile(path, data); err != nil {
			return fmt.Errorf("cluster: backend %d: %w", b.Index, err)
		}
	}
	return nil
}

// Arm enables chaos injection fleet-wide (per-backend injectors and the
// balancer's route-chaos stream).
func (c *Cluster) Arm() {
	for _, b := range c.Backends {
		if inj := b.T.Sys.Chaos; inj != nil {
			inj.Arm()
		}
	}
	if c.chaos != nil {
		c.chaos.Arm()
	}
}

// Kill crashes a backend through the supervision ladder: its RAMFS is
// quarantined, so every request needing the file system fails contained
// until the supervisor restarts it (warm when a checkpoint exists).
func (c *Cluster) Kill(backend int) bool {
	b := c.Backends[backend]
	sup := b.T.Sys.Sup
	if sup == nil {
		return false
	}
	return sup.Kill(ramfs.Name, ErrKilled)
}

// Slow scales a backend's compute cost by factor for window cycles of
// cluster time.
func (c *Cluster) Slow(backend int, factor float64, window uint64) {
	b := c.Backends[backend]
	if factor <= 0 {
		factor = 4
	}
	b.T.Sys.M.Clock.SetWorkScale(boot.UnikraftWorkScale * factor)
	b.slowUntil = c.now + window
}

// processScript fires scripted events due at or before the current
// cluster cycle, and ends elapsed slow windows.
func (c *Cluster) processScript(fired *int) {
	for *fired < len(c.O.Script) && c.O.Script[*fired].AtCycle <= c.now {
		ev := c.O.Script[*fired]
		*fired++
		if ev.Backend < 0 || ev.Backend >= len(c.Backends) {
			continue
		}
		switch ev.Action {
		case ActKill:
			c.Kill(ev.Backend)
		case ActSlow:
			c.Slow(ev.Backend, ev.Factor, ev.Window)
		}
	}
	for _, b := range c.Backends {
		if b.slowUntil != 0 && c.now >= b.slowUntil {
			b.T.Sys.M.Clock.SetWorkScale(boot.UnikraftWorkScale)
			b.slowUntil = 0
		}
	}
}

// RouteFault reports that the balancer found no backend eligible for a
// request — the typed "whole fleet is down or draining" error.
type RouteFault struct {
	Policy   string
	Healthy  int
	Draining int
	Dead     int
}

func (f *RouteFault) Error() string {
	return fmt.Sprintf("cluster: no eligible backend (policy %s: %d healthy, %d draining, %d dead)",
		f.Policy, f.Healthy, f.Draining, f.Dead)
}
