package vm

import (
	"bytes"
	"testing"
	"testing/quick"
)

// mustMap is Map for tests whose requests are valid by construction.
func mustMap(as *AddrSpace, npages, owner int, typ PageType, perm Perm, key uint8) Addr {
	a, err := as.Map(npages, owner, typ, perm, key)
	if err != nil {
		panic(err)
	}
	return a
}

func TestAddrHelpers(t *testing.T) {
	a := Addr(0x3025)
	if a.PageNum() != 3 {
		t.Errorf("PageNum = %d, want 3", a.PageNum())
	}
	if a.PageOff() != 0x25 {
		t.Errorf("PageOff = %#x, want 0x25", a.PageOff())
	}
	if a.Add(0x10) != 0x3035 {
		t.Errorf("Add = %#x", uint64(a.Add(0x10)))
	}
}

func TestPermString(t *testing.T) {
	cases := map[Perm]string{
		0:                               "---",
		PermRead:                        "r--",
		PermRead | PermWrite:            "rw-",
		PermRead | PermWrite | PermExec: "rwx",
		PermExec:                        "--x",
	}
	for p, want := range cases {
		if got := p.String(); got != want {
			t.Errorf("Perm(%d).String() = %q, want %q", p, got, want)
		}
	}
}

func TestPageTypeString(t *testing.T) {
	for typ, want := range map[PageType]string{
		PageCode: "code", PageGlobal: "global", PageStack: "stack", PageHeap: "heap",
	} {
		if got := typ.String(); got != want {
			t.Errorf("%v: got %q want %q", typ, got, want)
		}
	}
}

func TestMapAssignsMetadata(t *testing.T) {
	as := NewAddrSpace()
	addr := mustMap(as, 3, 7, PageHeap, PermRead|PermWrite, 5)
	if addr == 0 {
		t.Fatal("Map returned null address")
	}
	if addr.PageOff() != 0 {
		t.Fatal("Map returned unaligned address")
	}
	for i := 0; i < 3; i++ {
		p := as.Page(addr.Add(uint64(i) * PageSize))
		if p == nil {
			t.Fatalf("page %d unmapped", i)
		}
		if p.Owner != 7 || p.Type != PageHeap || p.Key() != 5 || !p.Perm().Has(PermWrite) {
			t.Errorf("page %d metadata = owner %d type %v key %d perm %v", i, p.Owner, p.Type, p.Key(), p.Perm())
		}
	}
}

func TestAddrZeroNeverMapped(t *testing.T) {
	as := NewAddrSpace()
	for i := 0; i < 10; i++ {
		if a := mustMap(as, 1, 0, PageHeap, PermRead, 0); a == 0 {
			t.Fatal("Map returned address 0")
		}
	}
	if as.Page(0) != nil {
		t.Fatal("page 0 is mapped")
	}
}

func TestUnmapAndReuse(t *testing.T) {
	as := NewAddrSpace()
	a := mustMap(as, 1, 1, PageHeap, PermRead, 1)
	b := mustMap(as, 1, 1, PageHeap, PermRead, 1)
	if err := as.Unmap(a, 1); err != nil {
		t.Fatal(err)
	}
	if as.Page(a) != nil {
		t.Fatal("unmapped page still present")
	}
	c := mustMap(as, 1, 2, PageStack, PermWrite, 3)
	if c != a {
		t.Errorf("freed page not reused: got %#x want %#x", uint64(c), uint64(a))
	}
	p := as.Page(c)
	if p.Owner != 2 || p.Type != PageStack || p.Key() != 3 {
		t.Error("reused page kept stale metadata")
	}
	_ = b
}

func TestUnmapErrors(t *testing.T) {
	as := NewAddrSpace()
	a := mustMap(as, 1, 0, PageHeap, PermRead, 0)
	if err := as.Unmap(a.Add(1), 1); err == nil {
		t.Error("Unmap of unaligned address succeeded")
	}
	if err := as.Unmap(a.Add(PageSize), 1); err == nil {
		t.Error("Unmap of unmapped page succeeded")
	}
	// Partial failure must not unmap anything.
	if err := as.Unmap(a, 2); err == nil {
		t.Error("Unmap spanning unmapped page succeeded")
	}
	if as.Page(a) == nil {
		t.Error("failed Unmap removed the mapped page")
	}
}

func TestReadWriteCrossPage(t *testing.T) {
	as := NewAddrSpace()
	addr := mustMap(as, 2, 0, PageHeap, PermRead|PermWrite, 0)
	data := make([]byte, PageSize+123)
	for i := range data {
		data[i] = byte(i * 7)
	}
	start := addr.Add(PageSize - 61) // straddles the boundary
	if err := as.WriteAt(start, data[:128]); err != nil {
		t.Fatal(err)
	}
	got := make([]byte, 128)
	if err := as.ReadAt(start, got); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(got, data[:128]) {
		t.Error("cross-page round trip mismatch")
	}
}

func TestReadWriteUnmapped(t *testing.T) {
	as := NewAddrSpace()
	addr := mustMap(as, 1, 0, PageHeap, PermRead|PermWrite, 0)
	buf := make([]byte, 16)
	if err := as.ReadAt(addr.Add(PageSize-8), buf); err == nil {
		t.Error("read running off the mapping succeeded")
	}
	if err := as.WriteAt(addr.Add(PageSize-8), buf); err == nil {
		t.Error("write running off the mapping succeeded")
	}
}

func TestU64RoundTrip(t *testing.T) {
	as := NewAddrSpace()
	addr := mustMap(as, 2, 0, PageHeap, PermRead|PermWrite, 0)
	f := func(off uint16, v uint64) bool {
		a := addr.Add(uint64(off) % (2*PageSize - 8)) // keep the 8-byte word inside the mapping
		if err := as.WriteU64(a, v); err != nil {
			return false
		}
		got, err := as.ReadU64(a)
		return err == nil && got == v
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestCheckMapped(t *testing.T) {
	as := NewAddrSpace()
	addr := mustMap(as, 2, 0, PageHeap, PermRead, 0)
	if err := as.CheckMapped(addr, 2*PageSize); err != nil {
		t.Errorf("fully mapped range reported error: %v", err)
	}
	if err := as.CheckMapped(addr, 2*PageSize+1); err == nil {
		t.Error("range past the mapping reported mapped")
	}
	if err := as.CheckMapped(0, 1); err == nil {
		t.Error("null range reported mapped")
	}
}

func TestPagesIn(t *testing.T) {
	first, last := PagesIn(Addr(PageSize-1), 2)
	if first != 0 || last != 1 {
		t.Errorf("PagesIn straddle = (%d,%d), want (0,1)", first, last)
	}
	first, last = PagesIn(Addr(PageSize), PageSize)
	if first != 1 || last != 1 {
		t.Errorf("PagesIn exact page = (%d,%d), want (1,1)", first, last)
	}
	first, last = PagesIn(Addr(0x1000), 0)
	if first != 1 || last != 1 {
		t.Errorf("PagesIn empty = (%d,%d), want (1,1)", first, last)
	}
}

func TestPagesFor(t *testing.T) {
	cases := map[uint64]int{0: 1, 1: 1, PageSize: 1, PageSize + 1: 2, 3 * PageSize: 3}
	for n, want := range cases {
		if got := PagesFor(n); got != want {
			t.Errorf("PagesFor(%d) = %d, want %d", n, got, want)
		}
	}
}

func TestForEachPage(t *testing.T) {
	as := NewAddrSpace()
	a := mustMap(as, 2, 0, PageHeap, PermRead, 4)
	mustMap(as, 1, 1, PageStack, PermRead, 5)
	if err := as.Unmap(a, 1); err != nil {
		t.Fatal(err)
	}
	var pns []uint64
	as.ForEachPage(func(pn uint64, p *Page) { pns = append(pns, pn) })
	if len(pns) != 2 {
		t.Fatalf("ForEachPage visited %d pages, want 2", len(pns))
	}
	for i := 1; i < len(pns); i++ {
		if pns[i] <= pns[i-1] {
			t.Error("ForEachPage not in page order")
		}
	}
}

func TestMappedPages(t *testing.T) {
	as := NewAddrSpace()
	if as.MappedPages() != 0 {
		t.Fatal("fresh address space has mapped pages")
	}
	a := mustMap(as, 5, 0, PageHeap, PermRead, 0)
	if as.MappedPages() != 5 {
		t.Errorf("MappedPages = %d, want 5", as.MappedPages())
	}
	if err := as.Unmap(a, 2); err != nil {
		t.Fatal(err)
	}
	if as.MappedPages() != 3 {
		t.Errorf("MappedPages after unmap = %d, want 3", as.MappedPages())
	}
}

func TestMapRejectsNonPositivePages(t *testing.T) {
	as := NewAddrSpace()
	for _, n := range []int{0, -1} {
		if _, err := as.Map(n, 0, PageHeap, PermRead, 0); err == nil {
			t.Errorf("Map(%d pages) did not error", n)
		}
	}
	if as.MappedPages() != 0 {
		t.Error("failed Map left pages mapped")
	}
}

func TestMapAtRestoresSpecificPage(t *testing.T) {
	as := NewAddrSpace()
	a, err := as.Map(3, 4, PageHeap, PermRead|PermWrite, 7)
	if err != nil {
		t.Fatal(err)
	}
	pn := a.PageNum() + 1
	if err := as.Unmap(PageAddr(pn), 1); err != nil {
		t.Fatal(err)
	}
	before := as.Epoch()
	p, err := as.MapAt(pn, 5, PageHeap, PermRead, 9)
	if err != nil {
		t.Fatal(err)
	}
	if p.Owner != 5 || p.Key() != 9 || p.Perm() != PermRead || p.Type != PageHeap {
		t.Errorf("restored page metadata = owner %d key %d perm %v type %v",
			p.Owner, p.Key(), p.Perm(), p.Type)
	}
	if as.Page(PageAddr(pn)) != p {
		t.Error("MapAt did not install the page at the requested number")
	}
	if as.Epoch() != before+1 {
		t.Errorf("MapAt bumped epoch by %d, want 1", as.Epoch()-before)
	}
	// The freed page number must have left the free list: a later Map must
	// not hand it out again.
	if b, err := as.Map(1, 0, PageHeap, PermRead, 0); err != nil || b.PageNum() == pn {
		t.Errorf("free list still contains restored page (Map returned %#x, err %v)", uint64(b), err)
	}
}

func TestMapAtErrors(t *testing.T) {
	as := NewAddrSpace()
	a, err := as.Map(1, 0, PageHeap, PermRead, 0)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := as.MapAt(a.PageNum(), 0, PageHeap, PermRead, 0); err == nil {
		t.Error("MapAt over a mapped page did not error")
	}
	if _, err := as.MapAt(0, 0, PageHeap, PermRead, 0); err == nil {
		t.Error("MapAt of page 0 did not error")
	}
	// Growing past the current table end is fine: restores may re-create
	// pages the teardown's pool recycling has not reused yet.
	if _, err := as.MapAt(100, 1, PageStack, PermRead|PermWrite, 3); err != nil {
		t.Errorf("MapAt past table end: %v", err)
	}
	if as.Page(PageAddr(100)) == nil {
		t.Error("MapAt past table end did not map the page")
	}
}
