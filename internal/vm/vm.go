// Package vm implements the simulated machine memory on which CubicleOS
// runs: a software-managed, paged virtual address space in which every page
// carries the metadata the paper's design needs — a 4-bit MPK protection
// key, page-table permissions, an owning cubicle, and a page type (code,
// global data, stack or heap).
//
// The page metadata map of §5.3 ("CubicleOS keeps a page metadata map that
// identifies the window descriptor array corresponding to that page,
// together with its owner and type") is realised directly by the page
// array: lookups are O(1) by construction.
//
// Package vm performs no permission checking itself. Untrusted component
// code never touches an AddrSpace directly; it goes through the checked
// accessors of the cubicle runtime, which consult the per-thread PKRU
// before delegating to the raw operations here.
//
// Concurrency contract: all mutations (Map, MapAt, Unmap, retags via
// SetKey/SetPerm) happen under the monitor's global lock — one writer at a
// time. Reads, however, may come from any core with no lock at all: the
// cubicle runtime's span-TLB fast path translates addresses lock-free. The
// page table is therefore published through an atomic pointer (growth
// copies to a fresh array), each slot is an atomic *Page, the translation
// epoch is an atomic counter, and the retaggable metadata (key, perm) is a
// single packed word accessed atomically. A lock-free reader sees either
// the pre- or post-mutation state of any one word, never a torn mix, and
// the epoch protocol lets caches detect staleness.
package vm

import (
	"fmt"
	"sort"
	"sync/atomic"
)

// PageShift is log2 of the page size.
const PageShift = 12

// PageSize is the size of one page in bytes (4 KiB, as on x86-64).
const PageSize = 1 << PageShift

// Addr is a virtual address in the simulated address space. Address 0 is
// never mapped and acts as the null pointer.
type Addr uint64

// PageNum returns the page number containing the address.
func (a Addr) PageNum() uint64 { return uint64(a) >> PageShift }

// PageOff returns the offset of the address within its page.
func (a Addr) PageOff() uint64 { return uint64(a) & (PageSize - 1) }

// Add returns the address offset by n bytes.
func (a Addr) Add(n uint64) Addr { return a + Addr(n) }

// Perm is a set of page-table permissions.
type Perm uint8

// Page-table permission bits. Execute permission is page-table state only:
// the paper notes MPK does not control execution (§2.2 challenge iii), so
// X lives here, and the simulated hardware modification of §5.5 (no
// read/write on a key implies no execute) is applied by the MPK layer.
const (
	PermRead Perm = 1 << iota
	PermWrite
	PermExec
)

// Has reports whether all bits in q are set in p.
func (p Perm) Has(q Perm) bool { return p&q == q }

func (p Perm) String() string {
	buf := []byte("---")
	if p.Has(PermRead) {
		buf[0] = 'r'
	}
	if p.Has(PermWrite) {
		buf[1] = 'w'
	}
	if p.Has(PermExec) {
		buf[2] = 'x'
	}
	return string(buf)
}

// PageType classifies a page for the page metadata map. Pages are strictly
// assigned an owner and type at allocation time (§5.3).
type PageType uint8

// Page types distinguished by the monitor's page metadata map.
const (
	PageCode PageType = iota
	PageGlobal
	PageStack
	PageHeap
)

func (t PageType) String() string {
	switch t {
	case PageCode:
		return "code"
	case PageGlobal:
		return "global"
	case PageStack:
		return "stack"
	case PageHeap:
		return "heap"
	}
	return fmt.Sprintf("PageType(%d)", uint8(t))
}

// NoOwner marks a page that belongs to the trusted runtime rather than to
// any cubicle.
const NoOwner = -1

// Page is one mapped page together with its metadata. Owner and Type are
// fixed at map time; the MPK key and page-table permissions can change
// while lock-free readers validate against them, so they live in one
// packed word (perm<<8 | key) behind atomic accessors.
type Page struct {
	Data  [PageSize]byte
	meta  uint32   // atomic: Perm<<8 | Key
	Owner int      // owning cubicle ID, or NoOwner
	Type  PageType // code / global / stack / heap
}

func packMeta(perm Perm, key uint8) uint32 { return uint32(perm)<<8 | uint32(key) }

// Key returns the MPK protection key currently tagged on the page.
func (p *Page) Key() uint8 { return uint8(atomic.LoadUint32(&p.meta)) }

// Perm returns the page-table permissions.
func (p *Page) Perm() Perm { return Perm(atomic.LoadUint32(&p.meta) >> 8) }

// Meta returns the page's permissions and key as one consistent pair —
// a lock-free checker can never observe a key from before a retag paired
// with permissions from after it.
func (p *Page) Meta() (Perm, uint8) {
	m := atomic.LoadUint32(&p.meta)
	return Perm(m >> 8), uint8(m)
}

// SetKey retags the page. Callers serialise (monitor global lock); readers
// may observe the old or new key, never a torn value.
func (p *Page) SetKey(key uint8) {
	m := atomic.LoadUint32(&p.meta)
	atomic.StoreUint32(&p.meta, m&^0xFF|uint32(key))
}

// SetPerm replaces the page-table permissions.
func (p *Page) SetPerm(perm Perm) {
	m := atomic.LoadUint32(&p.meta)
	atomic.StoreUint32(&p.meta, m&0xFF|uint32(perm)<<8)
}

// pageTable is one immutable-length snapshot of the page array. Slots are
// atomic so a reader can load a translation while the (serialised) writer
// maps or unmaps neighbouring pages in place.
type pageTable []atomic.Pointer[Page]

// AddrSpace is the simulated address space: a growable array of pages
// indexed by page number. Page number 0 is reserved so that Addr 0 is
// always invalid.
type AddrSpace struct {
	// pt is the current page table. Growth allocates a larger table,
	// copies the slots, and publishes it here; readers holding the old
	// snapshot still resolve correctly (slot stores before the swap went
	// to the old table, and the epoch protocol catches anything staler).
	pt atomic.Pointer[pageTable]
	// top is the next fresh page number handed out by Map when the free
	// list cannot satisfy a request.
	top  uint64
	free []uint64 // freed page numbers available for reuse
	pool []*Page  // retired Page objects, recycled to keep GC churn flat
	// pooling gates the retired-page pool. Parallel-mode runs disable it:
	// a lock-free reader may still hold a *Page briefly after an unmap,
	// and recycling would rewrite the object under it. With pooling off
	// the GC's reachability is the grace period.
	pooling bool
	// epoch counts translation mutations (map, unmap). Any cached pn→page
	// binding — notably the per-thread software TLBs of the cubicle
	// runtime — is valid only for the epoch it was filled in; a bump
	// invalidates every such cache. In-place metadata changes (retags,
	// permission changes) do not bump: caches must re-check permissions
	// against live page state instead. Atomic: bumped by the serialised
	// writer, read by lock-free validators on every TLB hit.
	epoch uint64
}

// NewAddrSpace returns an empty address space.
func NewAddrSpace() *AddrSpace {
	as := &AddrSpace{top: 1, pooling: true} // page 0 reserved
	t := make(pageTable, 1)
	as.pt.Store(&t)
	return as
}

// SetPooling enables or disables recycling of retired Page objects.
// Disabling drains the pool; parallel-mode callers do this so unmapped
// pages are reclaimed by the GC only after every lock-free reader that
// might still reference them has moved on.
func (as *AddrSpace) SetPooling(on bool) {
	as.pooling = on
	if !on {
		as.pool = nil
	}
}

// Epoch returns the current translation epoch. It increases monotonically
// and never wraps in practice (a 64-bit counter of map/unmap events).
func (as *AddrSpace) Epoch() uint64 { return atomic.LoadUint64(&as.epoch) }

// BumpEpoch advances the translation epoch. Map and Unmap bump it
// internally; software TLBs stamp the epoch into their entries, so a bump
// drops every cached pn→page binding at once. In-place metadata changes
// (retags, permission changes) deliberately do NOT bump: caches re-check
// permissions against live page state on every lookup.
func (as *AddrSpace) BumpEpoch() { atomic.AddUint64(&as.epoch, 1) }

// table returns the current page-table snapshot.
func (as *AddrSpace) table() pageTable { return *as.pt.Load() }

// ensure grows the page table so that page number pn is addressable.
// Growth is geometric, so repeated single-page appends stay amortised
// O(1) despite the copy-on-grow publication.
func (as *AddrSpace) ensure(pn uint64) {
	old := as.table()
	if pn < uint64(len(old)) {
		return
	}
	n := uint64(len(old)) * 2
	if n <= pn {
		n = pn + 1
	}
	t := make(pageTable, n)
	for i := range old {
		t[i].Store(old[i].Load())
	}
	as.pt.Store(&t)
}

// setPage installs p at page number pn (table already grown).
func (as *AddrSpace) setPage(pn uint64, p *Page) {
	as.table()[pn].Store(p)
}

// MappedPages returns the number of currently mapped pages.
func (as *AddrSpace) MappedPages() int {
	n := 0
	t := as.table()
	for i := range t {
		if t[i].Load() != nil {
			n++
		}
	}
	return n
}

// Map allocates npages contiguous pages with the given metadata and
// returns the address of the first. The key is the MPK tag initially
// assigned to every page. A non-positive page count is an error the
// caller must surface as a typed fault, not a raw panic: Map requests
// originate from (simulated) untrusted allocation paths.
func (as *AddrSpace) Map(npages int, owner int, typ PageType, perm Perm, key uint8) (Addr, error) {
	if npages <= 0 {
		return 0, fmt.Errorf("vm: Map with non-positive page count %d", npages)
	}
	as.BumpEpoch()
	if npages == 1 && len(as.free) > 0 {
		pn := as.free[len(as.free)-1]
		as.free = as.free[:len(as.free)-1]
		as.setPage(pn, as.newPage(owner, typ, perm, key))
		return Addr(pn << PageShift), nil
	}
	if pn, ok := as.takeRun(npages); ok {
		for i := 0; i < npages; i++ {
			as.setPage(pn+uint64(i), as.newPage(owner, typ, perm, key))
		}
		return Addr(pn << PageShift), nil
	}
	pn := as.top
	as.top += uint64(npages)
	as.ensure(as.top - 1)
	for i := 0; i < npages; i++ {
		as.setPage(pn+uint64(i), as.newPage(owner, typ, perm, key))
	}
	return Addr(pn << PageShift), nil
}

// newPage returns a zeroed page with the given metadata, recycling a
// retired Page object when one is available. Mapped pages are always
// zero-filled, so reuse is invisible to the guest; recycling keeps the
// allocator's wall-clock cost flat under stack/heap churn (every thread
// maps fresh stacks, every restart reclaims a heap) instead of growing
// the GC heap without bound.
func (as *AddrSpace) newPage(owner int, typ PageType, perm Perm, key uint8) *Page {
	if n := len(as.pool); n > 0 {
		p := as.pool[n-1]
		as.pool = as.pool[:n-1]
		*p = Page{meta: packMeta(perm, key), Owner: owner, Type: typ}
		return p
	}
	return &Page{meta: packMeta(perm, key), Owner: owner, Type: typ}
}

// takeRun removes a contiguous run of npages free page numbers from the
// free list and returns its first page, preferring reuse over growing the
// page table. Multi-page requests are overwhelmingly the fixed-size stack
// and heap arenas that thread exit and cubicle restart free as whole
// runs, so a matching run is the common case.
func (as *AddrSpace) takeRun(npages int) (uint64, bool) {
	if npages < 2 || len(as.free) < npages {
		return 0, false
	}
	sort.Slice(as.free, func(i, j int) bool { return as.free[i] < as.free[j] })
	run := 1
	for i := 1; i < len(as.free); i++ {
		if as.free[i] == as.free[i-1]+1 {
			run++
		} else {
			run = 1
		}
		if run == npages {
			start := i - npages + 1
			pn := as.free[start]
			as.free = append(as.free[:start], as.free[i+1:]...)
			return pn, true
		}
	}
	return 0, false
}

// MapAt maps a single page at the specific page number pn with the given
// metadata, removing pn from the free list (or growing the page table) as
// needed. It is the restore primitive underneath cubicle checkpoints: a
// warm restart re-establishes checkpointed heap pages at their original
// addresses so that every address the cubicle's state holds — free-list
// blocks, file page pointers — stays valid. Mapping over an already-mapped
// page is an error; the caller decides whether that aborts the restore.
// Like Map, MapAt bumps the translation epoch, so every software TLB drops
// its cached bindings.
func (as *AddrSpace) MapAt(pn uint64, owner int, typ PageType, perm Perm, key uint8) (*Page, error) {
	if pn == 0 {
		return nil, fmt.Errorf("vm: MapAt of reserved page 0")
	}
	if as.Page(PageAddr(pn)) != nil {
		return nil, fmt.Errorf("vm: MapAt of already-mapped page %#x", pn<<PageShift)
	}
	for i, f := range as.free {
		if f == pn {
			as.free = append(as.free[:i], as.free[i+1:]...)
			break
		}
	}
	as.ensure(pn)
	if pn >= as.top {
		as.top = pn + 1
	}
	p := as.newPage(owner, typ, perm, key)
	as.setPage(pn, p)
	as.BumpEpoch()
	return p, nil
}

// Unmap releases npages pages starting at addr, which must be page-aligned
// and mapped.
func (as *AddrSpace) Unmap(addr Addr, npages int) error {
	if addr.PageOff() != 0 {
		return fmt.Errorf("vm: Unmap of unaligned address %#x", uint64(addr))
	}
	pn := addr.PageNum()
	t := as.table()
	for i := uint64(0); i < uint64(npages); i++ {
		if pn+i >= uint64(len(t)) || t[pn+i].Load() == nil {
			return fmt.Errorf("vm: Unmap of unmapped page %#x", (pn+i)<<PageShift)
		}
	}
	for i := uint64(0); i < uint64(npages); i++ {
		if as.pooling {
			as.pool = append(as.pool, t[pn+i].Load())
		}
		t[pn+i].Store(nil)
		as.free = append(as.free, pn+i)
	}
	as.BumpEpoch()
	return nil
}

// ForEachPage calls fn for every mapped page, in page-number order.
func (as *AddrSpace) ForEachPage(fn func(pn uint64, p *Page)) {
	t := as.table()
	for pn := range t {
		if p := t[pn].Load(); p != nil {
			fn(uint64(pn), p)
		}
	}
}

// Page returns the page containing addr, or nil if it is unmapped. It is
// safe to call with no lock from any goroutine: the table snapshot and the
// slot are both atomic, and staleness is bounded by the epoch protocol.
func (as *AddrSpace) Page(addr Addr) *Page {
	t := *as.pt.Load()
	pn := addr.PageNum()
	if pn >= uint64(len(t)) {
		return nil
	}
	return t[pn].Load()
}

// errRange describes an access that touches unmapped memory.
func (as *AddrSpace) errRange(op string, addr Addr, n uint64) error {
	return fmt.Errorf("vm: %s of %d bytes at %#x touches unmapped memory", op, n, uint64(addr))
}

// CheckMapped reports an error unless [addr, addr+n) is fully mapped. The
// length is a full 64-bit byte count: ranges that would wrap the address
// space are rejected rather than silently truncated.
func (as *AddrSpace) CheckMapped(addr Addr, n uint64) error {
	if addr == 0 || uint64(addr)+n < uint64(addr) {
		return as.errRange("access", addr, n)
	}
	for off := uint64(0); off < n; {
		p := as.Page(addr.Add(off))
		if p == nil {
			return as.errRange("access", addr, n)
		}
		off += PageSize - addr.Add(off).PageOff()
	}
	if n == 0 && as.Page(addr) == nil {
		return as.errRange("access", addr, n)
	}
	return nil
}

// Span resolves the contiguous range [addr, addr+n) into direct views of
// the backing pages, calling fn once per chunk in address order (one chunk
// per page crossed; a chunk never spans pages). off is the chunk's byte
// offset from addr. The slices alias page memory — they are zero-copy and
// valid only until the page is unmapped; callers that hold them across
// metadata mutations must revalidate against Epoch. Span itself performs no
// permission checking (package doc): it is the raw backing-resolution
// primitive underneath the checked View accessors of the cubicle runtime.
//
// If the range wraps the 64-bit address space or touches an unmapped page,
// Span returns an error; fn has then been called for every chunk preceding
// the offending page.
func (as *AddrSpace) Span(addr Addr, n uint64, fn func(off uint64, chunk []byte)) error {
	if addr == 0 || uint64(addr)+n < uint64(addr) {
		return as.errRange("span", addr, n)
	}
	for off := uint64(0); off < n; {
		a := addr.Add(off)
		p := as.Page(a)
		if p == nil {
			return as.errRange("span", addr, n)
		}
		po := a.PageOff()
		k := PageSize - po
		if rem := n - off; k > rem {
			k = rem
		}
		fn(off, p.Data[po:po+k])
		off += k
	}
	return nil
}

// ReadAt copies len(b) bytes starting at addr into b. It is a raw
// (unchecked) operation for trusted code.
func (as *AddrSpace) ReadAt(addr Addr, b []byte) error {
	for done := 0; done < len(b); {
		p := as.Page(addr.Add(uint64(done)))
		if p == nil {
			return as.errRange("read", addr, uint64(len(b)))
		}
		off := addr.Add(uint64(done)).PageOff()
		n := copy(b[done:], p.Data[off:])
		done += n
	}
	return nil
}

// WriteAt copies b into memory starting at addr. It is a raw (unchecked)
// operation for trusted code.
func (as *AddrSpace) WriteAt(addr Addr, b []byte) error {
	for done := 0; done < len(b); {
		p := as.Page(addr.Add(uint64(done)))
		if p == nil {
			return as.errRange("write", addr, uint64(len(b)))
		}
		off := addr.Add(uint64(done)).PageOff()
		n := copy(p.Data[off:], b[done:])
		done += n
	}
	return nil
}

// ReadU64 reads a little-endian 64-bit word at addr.
func (as *AddrSpace) ReadU64(addr Addr) (uint64, error) {
	var b [8]byte
	if err := as.ReadAt(addr, b[:]); err != nil {
		return 0, err
	}
	var v uint64
	for i := 7; i >= 0; i-- {
		v = v<<8 | uint64(b[i])
	}
	return v, nil
}

// WriteU64 writes a little-endian 64-bit word at addr.
func (as *AddrSpace) WriteU64(addr Addr, v uint64) error {
	var b [8]byte
	for i := 0; i < 8; i++ {
		b[i] = byte(v >> (8 * i))
	}
	return as.WriteAt(addr, b[:])
}

// PagesIn returns the page numbers fully or partially covered by the range
// [addr, addr+size).
func PagesIn(addr Addr, size uint64) (first, last uint64) {
	if size == 0 {
		return addr.PageNum(), addr.PageNum()
	}
	return addr.PageNum(), (uint64(addr) + size - 1) >> PageShift
}

// PageAddr returns the address of the first byte of page number pn.
func PageAddr(pn uint64) Addr { return Addr(pn << PageShift) }

// PagesFor returns how many pages are needed to hold n bytes.
func PagesFor(n uint64) int {
	if n == 0 {
		return 1
	}
	return int((n + PageSize - 1) / PageSize)
}
