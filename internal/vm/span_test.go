package vm

import (
	"bytes"
	"testing"
)

// TestSpanChunking checks that Span tiles a multi-page range with
// page-bounded chunks in ascending order and that the chunks alias the
// backing pages (writes through a chunk are visible to ReadAt).
func TestSpanChunking(t *testing.T) {
	as := NewAddrSpace()
	base := mustMap(as, 3, 1, PageHeap, PermRead|PermWrite, 0)
	start := base.Add(100) // straddle the first boundary
	n := uint64(2*PageSize) + 50

	var offs []uint64
	var total uint64
	err := as.Span(start, n, func(off uint64, chunk []byte) {
		offs = append(offs, off)
		if len(chunk) == 0 || len(chunk) > PageSize {
			t.Fatalf("chunk len %d out of range", len(chunk))
		}
		for i := range chunk {
			chunk[i] = byte(off + uint64(i))
		}
		total += uint64(len(chunk))
	})
	if err != nil {
		t.Fatal(err)
	}
	if total != n {
		t.Fatalf("chunks covered %d bytes, want %d", total, n)
	}
	for i := 1; i < len(offs); i++ {
		if offs[i] <= offs[i-1] {
			t.Fatalf("chunk offsets not ascending: %v", offs)
		}
	}
	// First chunk must stop at the page boundary.
	if offs[1] != uint64(PageSize)-start.PageOff() {
		t.Fatalf("second chunk at off %d, want %d", offs[1], uint64(PageSize)-start.PageOff())
	}
	// Writes made through the chunks are the memory's contents.
	got := make([]byte, n)
	if err := as.ReadAt(start, got); err != nil {
		t.Fatal(err)
	}
	want := make([]byte, n)
	for i := range want {
		want[i] = byte(i)
	}
	if !bytes.Equal(got, want) {
		t.Fatal("span writes not visible through ReadAt")
	}
}

// TestSpanErrors checks the fault cases: the null page, an unmapped page
// mid-range, and a length that wraps the 64-bit address space.
func TestSpanErrors(t *testing.T) {
	as := NewAddrSpace()
	base := mustMap(as, 1, 1, PageHeap, PermRead|PermWrite, 0)
	if err := as.Span(0, 8, func(uint64, []byte) {}); err == nil {
		t.Error("span at null succeeded")
	}
	// One mapped page followed by unmapped space.
	ran := false
	if err := as.Span(base, 2*PageSize, func(off uint64, _ []byte) { ran = true }); err == nil {
		t.Error("span over unmapped page succeeded")
	} else if !ran {
		t.Error("span did not visit the mapped prefix before faulting")
	}
	if err := as.Span(base, ^uint64(0), func(uint64, []byte) {}); err == nil {
		t.Error("wrapping span succeeded")
	}
}

// TestEpochBumps checks that every address-space mutation visible to a
// software TLB moves the epoch: Map, Unmap, and explicit BumpEpoch.
func TestEpochBumps(t *testing.T) {
	as := NewAddrSpace()
	e0 := as.Epoch()
	a := mustMap(as, 2, 1, PageHeap, PermRead|PermWrite, 0)
	e1 := as.Epoch()
	if e1 <= e0 {
		t.Errorf("Map did not bump epoch: %d -> %d", e0, e1)
	}
	if err := as.Unmap(a, 2); err != nil {
		t.Fatal(err)
	}
	e2 := as.Epoch()
	if e2 <= e1 {
		t.Errorf("Unmap did not bump epoch: %d -> %d", e1, e2)
	}
	as.BumpEpoch()
	if as.Epoch() != e2+1 {
		t.Errorf("BumpEpoch: %d -> %d, want +1", e2, as.Epoch())
	}
	// Failed maps must not churn the epoch.
	e3 := as.Epoch()
	if _, err := as.Map(0, 1, PageHeap, PermRead, 0); err == nil {
		t.Fatal("Map(0 pages) succeeded")
	}
	if as.Epoch() != e3 {
		t.Errorf("failed Map bumped epoch: %d -> %d", e3, as.Epoch())
	}
}

// TestCheckMappedWrap checks the uint64 width fix at the vm layer: a
// range whose end wraps must be rejected outright.
func TestCheckMappedWrap(t *testing.T) {
	as := NewAddrSpace()
	base := mustMap(as, 1, 1, PageHeap, PermRead|PermWrite, 0)
	if err := as.CheckMapped(base, ^uint64(0)); err == nil {
		t.Error("CheckMapped accepted a wrapping range")
	}
	if err := as.CheckMapped(base, 8); err != nil {
		t.Errorf("CheckMapped rejected a valid range: %v", err)
	}
}
