package sqldb

import (
	"testing"

	"cubicleos/internal/cubicle"
)

// TestHotJournalRecovery simulates a crash mid-transaction: the journal
// holds pre-images, some dirty pages were already spilled over the
// database, and the process dies before commit. Reopening must roll the
// database back to the pre-transaction state.
func TestHotJournalRecovery(t *testing.T) {
	withPager(t, 16, func(p *Pager) {
		// Committed baseline: a table page with a known byte.
		root := CreateTableTree(p)
		tr := NewTableTree(p, root)
		if err := tr.InsertRow(1, EncodeRecord([]Value{Text("committed")})); err != nil {
			t.Fatal(err)
		}
		if err := p.Begin(); err != nil {
			t.Fatal(err)
		}
		if err := p.Commit(); err != nil {
			t.Fatal(err)
		}
		// An uncommitted transaction overwrites the row, spills its
		// journal and flushes the dirty page — then the "process dies".
		if err := p.Begin(); err != nil {
			t.Fatal(err)
		}
		if err := tr.InsertRow(1, EncodeRecord([]Value{Text("UNCOMMITTED")})); err != nil {
			t.Fatal(err)
		}
		p.spillJournal()
		if err := p.flushAll(); err != nil {
			t.Fatal(err)
		}
		// No Commit, no Rollback, no Close: crash.

		// A fresh pager on the same file must find the hot journal,
		// replay it, and see the committed state.
		e := p.e
		ioBuf2 := e.HeapAlloc(PageSize)
		p2, err := OpenPager(e, p.vfs, p.path, ioBuf2, 16)
		if err != nil {
			t.Fatal(err)
		}
		if p2.Stats.Recoveries != 1 {
			t.Fatalf("recoveries = %d, want 1", p2.Stats.Recoveries)
		}
		tr2 := NewTableTree(p2, root)
		rec := tr2.GetRow(1)
		if rec == nil {
			t.Fatal("row lost after recovery")
		}
		vals, err := DecodeRecord(rec)
		if err != nil {
			t.Fatal(err)
		}
		if vals[0].S != "committed" {
			t.Fatalf("recovered value %q, want the committed one", vals[0].S)
		}
		// The journal must be gone; a third open performs no recovery.
		ioBuf3 := e.HeapAlloc(PageSize)
		p3, err := OpenPager(e, p.vfs, p.path, ioBuf3, 16)
		if err != nil {
			t.Fatal(err)
		}
		if p3.Stats.Recoveries != 0 {
			t.Error("journal not removed after recovery")
		}
	})
}

// TestCommitLeavesNoJournal: a clean commit must remove the journal file
// so the next open sees no hot journal.
func TestCommitLeavesNoJournal(t *testing.T) {
	withPager(t, 8, func(p *Pager) {
		root := CreateTableTree(p)
		tr := NewTableTree(p, root)
		if err := p.Begin(); err != nil {
			t.Fatal(err)
		}
		big := Text(string(make([]byte, 400)))
		for i := int64(0); i < 400; i++ { // enough pages to force spills at cap 8
			if err := tr.InsertRow(i, EncodeRecord([]Value{Int(i), big})); err != nil {
				t.Fatal(err)
			}
		}
		if p.Stats.Spills == 0 {
			t.Error("tiny cache never spilled (test premise broken)")
		}
		if err := p.Commit(); err != nil {
			t.Fatal(err)
		}
		e := p.e
		p2, err := OpenPager(e, p.vfs, p.path, e.HeapAlloc(PageSize), 8)
		if err != nil {
			t.Fatal(err)
		}
		if p2.Stats.Recoveries != 0 {
			t.Error("journal survived a clean commit")
		}
		if problems := NewTableTree(p2, root).Check(); len(problems) > 0 {
			t.Fatalf("integrity after reopen: %v", problems)
		}
	})
}

// TestRollbackAfterSpill: an explicit rollback after dirty pages were
// spilled to disk must restore the on-disk state too.
func TestRollbackAfterSpill(t *testing.T) {
	withPager(t, 8, func(p *Pager) {
		root := CreateTableTree(p)
		tr := NewTableTree(p, root)
		if err := tr.InsertRow(1, EncodeRecord([]Value{Text("base")})); err != nil {
			t.Fatal(err)
		}
		if err := p.flushAll(); err != nil {
			t.Fatal(err)
		}
		if err := p.Begin(); err != nil {
			t.Fatal(err)
		}
		fodder := Text(string(make([]byte, 400)))
		for i := int64(2); i < 400; i++ {
			if err := tr.InsertRow(i, EncodeRecord([]Value{Int(i), fodder})); err != nil {
				t.Fatal(err)
			}
		}
		if err := p.Rollback(); err != nil {
			t.Fatal(err)
		}
		rec := tr.GetRow(1)
		if rec == nil {
			t.Fatal("base row lost after rollback")
		}
		if tr.GetRow(250) != nil {
			t.Fatal("rolled-back row still present")
		}
		if problems := tr.Check(); len(problems) > 0 {
			t.Fatalf("integrity after rollback: %v", problems)
		}
	})
}

// TestFreelistReuse: freed pages are recycled before the file grows.
func TestFreelistReuse(t *testing.T) {
	withPager(t, 32, func(p *Pager) {
		a := p.Allocate()
		before := p.NPages()
		p.Free(a)
		b := p.Allocate()
		if b != a {
			t.Errorf("freed page %d not reused (got %d)", a, b)
		}
		if p.NPages() != before {
			t.Errorf("file grew despite freelist: %d -> %d", before, p.NPages())
		}
	})
}

// TestHeaderResident: the header page never leaves the cache even under
// eviction pressure.
func TestHeaderResident(t *testing.T) {
	withPager(t, 8, func(p *Pager) {
		for i := 0; i < 64; i++ {
			pg := p.Allocate()
			initBtreePage(p.Write(pg), pgTableLeaf)
		}
		if _, ok := p.cache[1]; !ok {
			t.Error("header page evicted")
		}
		if len(p.cache) > p.cap+1 {
			t.Errorf("cache over capacity: %d > %d", len(p.cache), p.cap)
		}
	})
}

func TestNestedBeginRejected(t *testing.T) {
	withPager(t, 8, func(p *Pager) {
		if err := p.Begin(); err != nil {
			t.Fatal(err)
		}
		if err := p.Begin(); err == nil {
			t.Error("nested Begin accepted")
		}
		if err := p.Commit(); err != nil {
			t.Fatal(err)
		}
		if err := p.Commit(); err == nil {
			t.Error("Commit without txn accepted")
		}
		if err := p.Rollback(); err == nil {
			t.Error("Rollback without txn accepted")
		}
	})
}

var _ = cubicle.MonitorID
