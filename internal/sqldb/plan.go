package sqldb

import (
	"strings"
)

// splitConjuncts flattens a WHERE tree's AND chain.
func splitConjuncts(e Expr) []Expr {
	if e == nil {
		return nil
	}
	if b, ok := e.(*EBin); ok && b.Op == "AND" {
		return append(splitConjuncts(b.L), splitConjuncts(b.R)...)
	}
	return []Expr{e}
}

// maxBindIdx returns the highest bind index an expression references, or
// -1 when it references none (literals, parent-correlated columns).
func maxBindIdx(e Expr, binds []*tblCtx) int {
	max := -1
	var walk func(Expr)
	walk = func(e Expr) {
		switch x := e.(type) {
		case *ECol:
			for i, b := range binds {
				if x.Table != "" {
					if strings.EqualFold(b.alias, x.Table) {
						if i > max {
							max = i
						}
						return
					}
					continue
				}
				if strings.EqualFold(x.Name, "rowid") || b.tbl.ColIndex(x.Name) >= 0 {
					if i > max {
						max = i
					}
					return
				}
			}
		case *EBin:
			walk(x.L)
			walk(x.R)
		case *EUn:
			walk(x.E)
		case *EBetween:
			walk(x.E)
			walk(x.Lo)
			walk(x.Hi)
		case *EFunc:
			for _, a := range x.Args {
				walk(a)
			}
		case *EIn:
			walk(x.E)
			for _, le := range x.List {
				walk(le)
			}
			if x.Sub != nil {
				max = len(binds) - 1
			}
		case *ESub:
			// Conservatively pin subqueries to the last bind so they are
			// only evaluated on fully bound rows.
			max = len(binds) - 1
		}
	}
	walk(e)
	return max
}

// colOn returns the column index the expression names on bind i, with
// -2 meaning "the rowid", or -1 when it is not a plain column of bind i.
func colOn(e Expr, binds []*tblCtx, i int) int {
	c, ok := e.(*ECol)
	if !ok {
		return -1
	}
	b := binds[i]
	if c.Table != "" && !strings.EqualFold(c.Table, b.alias) {
		return -1
	}
	if c.Table == "" {
		// An unqualified name binds to the first table that has it.
		if mi := maxBindIdx(e, binds); mi != i {
			return -1
		}
	}
	if strings.EqualFold(c.Name, "rowid") {
		return -2
	}
	ci := b.tbl.ColIndex(c.Name)
	if ci < 0 {
		return -1
	}
	if ci == b.tbl.RowidCol {
		return -2
	}
	return ci
}

// access describes how to enumerate rows of one bind.
type access struct {
	kind string // "scan", "rowid-eq", "rowid-range", "index-eq", "index-range"
	idx  *Index
	// expressions evaluated against the outer row context:
	eq     Expr
	lo, hi Expr
	loIncl bool
	hiIncl bool
}

// planAccess chooses the access path for bind i given the conjuncts that
// become fully bound at this level.
func (db *DB) planAccess(binds []*tblCtx, i int, conjuncts []Expr) access {
	b := binds[i]
	var best access
	best.kind = "scan"
	better := func(a access) bool {
		rank := map[string]int{"scan": 0, "index-range": 1, "rowid-range": 2, "index-eq": 3, "rowid-eq": 4}
		return rank[a.kind] > rank[best.kind]
	}
	indexOn := func(ci int) *Index {
		col := b.tbl.Columns[ci].Name
		for _, idx := range db.cat.TableIndexes(b.tbl.Name) {
			if strings.EqualFold(idx.Cols[0], col) {
				return idx
			}
		}
		return nil
	}
	consider := func(ci int, op string, rhs Expr) {
		if maxBindIdx(rhs, binds) >= i {
			return // rhs not computable before binding this table
		}
		var a access
		switch {
		case ci == -2 && op == "=":
			a = access{kind: "rowid-eq", eq: rhs}
		case ci == -2:
			a = access{kind: "rowid-range"}
			switch op {
			case ">", ">=":
				a.lo, a.loIncl = rhs, op == ">="
			case "<", "<=":
				a.hi, a.hiIncl = rhs, op == "<="
			}
		case ci >= 0:
			idx := indexOn(ci)
			if idx == nil {
				return
			}
			if op == "=" {
				a = access{kind: "index-eq", idx: idx, eq: rhs}
			} else {
				a = access{kind: "index-range", idx: idx}
				switch op {
				case ">", ">=":
					a.lo, a.loIncl = rhs, op == ">="
				case "<", "<=":
					a.hi, a.hiIncl = rhs, op == "<="
				}
			}
		default:
			return
		}
		if better(a) {
			best = a
		}
	}
	flip := map[string]string{"=": "=", "<": ">", "<=": ">=", ">": "<", ">=": "<="}
	for _, c := range conjuncts {
		if maxBindIdx(c, binds) != i {
			continue
		}
		switch x := c.(type) {
		case *EBin:
			switch x.Op {
			case "=", "<", "<=", ">", ">=":
				if ci := colOn(x.L, binds, i); ci != -1 {
					consider(ci, x.Op, x.R)
				} else if ci := colOn(x.R, binds, i); ci != -1 {
					consider(ci, flip[x.Op], x.L)
				}
			}
		case *EBetween:
			if x.Not {
				continue
			}
			if ci := colOn(x.E, binds, i); ci != -1 {
				if maxBindIdx(x.Lo, binds) < i && maxBindIdx(x.Hi, binds) < i {
					if ci == -2 {
						a := access{kind: "rowid-range", lo: x.Lo, hi: x.Hi, loIncl: true, hiIncl: true}
						if better(a) {
							best = a
						}
					} else if idx := indexOn(ci); idx != nil {
						a := access{kind: "index-range", idx: idx, lo: x.Lo, hi: x.Hi, loIncl: true, hiIncl: true}
						if better(a) {
							best = a
						}
					}
				}
			}
		}
	}
	return best
}

// bindRow decodes a fetched row into the bind.
func (db *DB) bindRow(b *tblCtx, rowid int64, record []byte) {
	vals, err := DecodeRecord(record)
	if err != nil {
		fail("%v", err)
	}
	b.vals = db.padRow(b.tbl, vals, rowid)
	b.rowid = rowid
}

// joinLoop enumerates rows of binds[i:] under the already-bound prefix,
// filtering with the conjuncts that become applicable at each level, and
// calls emit for every surviving fully-bound row. Returns false when emit
// asked to stop.
func (db *DB) joinLoop(binds []*tblCtx, i int, rc *rowCtx, conjuncts []Expr, emit func(*rowCtx) bool) bool {
	if i == len(binds) {
		return emit(rc)
	}
	b := binds[i]
	tree := NewTableTree(db.pager, b.tbl.Root)
	rc.tables = append(rc.tables, b)
	defer func() { rc.tables = rc.tables[:len(rc.tables)-1] }()

	// Conjuncts to check once this table is bound.
	var applicable []Expr
	for _, c := range conjuncts {
		if maxBindIdx(c, binds) == i {
			applicable = append(applicable, c)
		}
	}
	// At the last level, conjuncts that reference no binds (correlated or
	// constant) are checked too.
	if i == len(binds)-1 {
		for _, c := range conjuncts {
			if maxBindIdx(c, binds) == -1 {
				applicable = append(applicable, c)
			}
		}
	}

	tryRow := func(rowid int64, record []byte) bool {
		db.bindRow(b, rowid, record)
		db.e.Work(workRowFilter)
		for _, c := range applicable {
			v := db.eval(rc, c)
			if v.IsNull() || !v.Truthy() {
				return true // filtered out; keep scanning
			}
		}
		return db.joinLoop(binds, i+1, rc, conjuncts, emit)
	}

	// rc.tables must not include the current bind while evaluating outer
	// expressions for the access path, but resolve() tolerates it since
	// vals are stale; evaluate access expressions against the prefix only.
	outer := &rowCtx{tables: rc.tables[:len(rc.tables)-1], parent: rc.parent}

	a := db.planAccess(binds, i, conjuncts)
	switch a.kind {
	case "rowid-eq":
		v := db.eval(outer, a.eq)
		if v.IsNull() || v.Kind != KInt && v.Kind != KReal {
			return true
		}
		rowid := int64(v.Num())
		if rec := tree.GetRow(rowid); rec != nil {
			return tryRow(rowid, rec)
		}
		return true
	case "rowid-range":
		lo := int64(-1 << 62)
		hi := int64(1<<62 - 1)
		if a.lo != nil {
			v := db.eval(outer, a.lo)
			if v.IsNull() {
				return true
			}
			lo = int64(v.Num())
			if !a.loIncl {
				lo++
			}
		}
		if a.hi != nil {
			v := db.eval(outer, a.hi)
			if v.IsNull() {
				return true
			}
			hi = int64(v.Num())
			if !a.hiIncl {
				hi--
			}
		}
		ok := true
		tree.ScanTableFrom(lo, func(rowid int64, record []byte) bool {
			if rowid > hi {
				return false
			}
			ok = tryRow(rowid, record)
			return ok
		})
		return ok
	case "index-eq", "index-range":
		itree := NewIndexTree(db.pager, a.idx.Root)
		var lo, hi []byte
		if a.kind == "index-eq" {
			v := db.eval(outer, a.eq)
			if v.IsNull() {
				return true
			}
			lo = EncodeKey([]Value{v})
			hi = append(append([]byte{}, lo...), 0xFF)
		} else {
			// Range bounds only need to be a superset of the matching
			// keys: every applicable conjunct is re-checked per row, so
			// exclusive bounds simply scan inclusively.
			if a.lo != nil {
				v := db.eval(outer, a.lo)
				if v.IsNull() {
					return true
				}
				lo = EncodeKey([]Value{v})
			}
			if a.hi != nil {
				v := db.eval(outer, a.hi)
				if v.IsNull() {
					return true
				}
				hi = append(EncodeKey([]Value{v}), 0xFF)
			}
		}
		ok := true
		itree.ScanIndexRange(lo, hi, func(key []byte, rowid int64) bool {
			rec := tree.GetRow(rowid)
			if rec == nil {
				return true
			}
			ok = tryRow(rowid, rec)
			return ok
		})
		return ok
	}
	// Full scan.
	ok := true
	tree.ScanTable(func(rowid int64, record []byte) bool {
		ok = tryRow(rowid, record)
		return ok
	})
	return ok
}

// scanFiltered enumerates a single table's rows matching where.
func (db *DB) scanFiltered(t *Table, alias string, where Expr, fn func(rowid int64, vals []Value) bool) {
	binds := []*tblCtx{{alias: alias, tbl: t}}
	conjuncts := splitConjuncts(where)
	rc := &rowCtx{}
	db.joinLoop(binds, 0, rc, conjuncts, func(rc *rowCtx) bool {
		return fn(binds[0].rowid, binds[0].vals)
	})
}
