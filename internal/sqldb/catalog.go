package sqldb

import (
	"fmt"
	"sort"
	"strings"
)

// Column is one table column.
type Column struct {
	Name string
	Type string // INTEGER, REAL, TEXT, BLOB (affinity only)
}

// Table is a table's schema entry.
type Table struct {
	Name    string
	Root    uint32
	Columns []Column
	// RowidCol is the index of an INTEGER PRIMARY KEY column aliasing
	// the rowid, or -1.
	RowidCol int
	catRowid int64
}

// ColIndex returns the position of the named column, or -1.
func (t *Table) ColIndex(name string) int {
	for i, c := range t.Columns {
		if strings.EqualFold(c.Name, name) {
			return i
		}
	}
	return -1
}

// Index is a secondary index's schema entry.
type Index struct {
	Name     string
	Table    string
	Root     uint32
	Cols     []string
	Unique   bool
	catRowid int64
}

// Catalog is the schema: a cache over the catalog B+tree (the
// sqlite_master equivalent rooted at a fixed page).
type Catalog struct {
	p       *Pager
	tree    *Btree
	tables  map[string]*Table
	indexes map[string]*Index
}

// catalog record layout: (kind TEXT, name TEXT, table TEXT, root INT,
// definition TEXT). The definition serialises columns or index columns.
func tableDef(t *Table) string {
	parts := make([]string, len(t.Columns))
	for i, c := range t.Columns {
		parts[i] = c.Name + " " + c.Type
		if i == t.RowidCol {
			parts[i] += " PRIMARY KEY"
		}
	}
	return strings.Join(parts, ", ")
}

func parseTableDef(def string) ([]Column, int) {
	var cols []Column
	rowidCol := -1
	for i, part := range strings.Split(def, ", ") {
		fields := strings.Fields(part)
		c := Column{Name: fields[0], Type: "TEXT"}
		if len(fields) > 1 {
			c.Type = fields[1]
		}
		if strings.Contains(strings.ToUpper(part), "PRIMARY KEY") && strings.EqualFold(c.Type, "INTEGER") {
			rowidCol = i
		}
		cols = append(cols, c)
	}
	return cols, rowidCol
}

// LoadCatalog reads the schema from the catalog tree.
func LoadCatalog(p *Pager) (*Catalog, error) {
	c := &Catalog{
		p:       p,
		tree:    NewTableTree(p, p.CatalogRoot()),
		tables:  make(map[string]*Table),
		indexes: make(map[string]*Index),
	}
	var err error
	c.tree.ScanTable(func(rowid int64, record []byte) bool {
		var vals []Value
		vals, err = DecodeRecord(record)
		if err != nil {
			return false
		}
		if len(vals) != 5 {
			err = fmt.Errorf("sqldb: malformed catalog record")
			return false
		}
		switch vals[0].S {
		case "table":
			cols, rowidCol := parseTableDef(vals[4].S)
			c.tables[strings.ToLower(vals[1].S)] = &Table{
				Name: vals[1].S, Root: uint32(vals[3].I),
				Columns: cols, RowidCol: rowidCol, catRowid: rowid,
			}
		case "index":
			idx := &Index{
				Name: vals[1].S, Table: strings.ToLower(vals[2].S),
				Root: uint32(vals[3].I), catRowid: rowid,
			}
			def := vals[4].S
			if strings.HasPrefix(def, "UNIQUE:") {
				idx.Unique = true
				def = strings.TrimPrefix(def, "UNIQUE:")
			}
			idx.Cols = strings.Split(def, ",")
			c.indexes[strings.ToLower(vals[1].S)] = idx
		default:
			err = fmt.Errorf("sqldb: unknown catalog entry kind %q", vals[0].S)
			return false
		}
		return true
	})
	if err != nil {
		return nil, err
	}
	return c, nil
}

// Table looks up a table by name.
func (c *Catalog) Table(name string) *Table { return c.tables[strings.ToLower(name)] }

// Index looks up an index by name.
func (c *Catalog) Index(name string) *Index { return c.indexes[strings.ToLower(name)] }

// TableIndexes returns all indexes on a table, in name order (map
// iteration order must not leak into page layouts — runs have to be
// deterministic for the experiments).
func (c *Catalog) TableIndexes(table string) []*Index {
	var out []*Index
	for _, idx := range c.indexes {
		if idx.Table == strings.ToLower(table) {
			out = append(out, idx)
		}
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Name < out[j].Name })
	return out
}

// Tables returns all table names, sorted.
func (c *Catalog) Tables() []string {
	out := make([]string, 0, len(c.tables))
	for _, t := range c.tables {
		out = append(out, t.Name)
	}
	sort.Strings(out)
	return out
}

// nextCatRowid returns a fresh catalog rowid.
func (c *Catalog) nextCatRowid() int64 { return c.tree.MaxRowid() + 1 }

// CreateTable adds a table to the schema and allocates its tree.
func (c *Catalog) CreateTable(name string, cols []Column, rowidCol int) (*Table, error) {
	if c.Table(name) != nil {
		return nil, fmt.Errorf("sqldb: table %s already exists", name)
	}
	t := &Table{Name: name, Root: CreateTableTree(c.p), Columns: cols, RowidCol: rowidCol}
	t.catRowid = c.nextCatRowid()
	rec := EncodeRecord([]Value{Text("table"), Text(name), Text(name), Int(int64(t.Root)), Text(tableDef(t))})
	if err := c.tree.InsertRow(t.catRowid, rec); err != nil {
		return nil, err
	}
	c.tables[strings.ToLower(name)] = t
	return t, nil
}

// CreateIndex adds an index to the schema and allocates its tree.
func (c *Catalog) CreateIndex(name, table string, cols []string, unique bool) (*Index, error) {
	if c.Index(name) != nil {
		return nil, fmt.Errorf("sqldb: index %s already exists", name)
	}
	t := c.Table(table)
	if t == nil {
		return nil, fmt.Errorf("sqldb: no such table %s", table)
	}
	for _, col := range cols {
		if t.ColIndex(col) < 0 {
			return nil, fmt.Errorf("sqldb: no such column %s.%s", table, col)
		}
	}
	idx := &Index{Name: name, Table: strings.ToLower(table), Root: CreateIndexTree(c.p), Cols: cols, Unique: unique}
	def := strings.Join(cols, ",")
	if unique {
		def = "UNIQUE:" + def
	}
	idx.catRowid = c.nextCatRowid()
	rec := EncodeRecord([]Value{Text("index"), Text(name), Text(table), Int(int64(idx.Root)), Text(def)})
	if err := c.tree.InsertRow(idx.catRowid, rec); err != nil {
		return nil, err
	}
	c.indexes[strings.ToLower(name)] = idx
	return idx, nil
}

// DropTable removes a table and its indexes from the schema.
func (c *Catalog) DropTable(name string) error {
	t := c.Table(name)
	if t == nil {
		return fmt.Errorf("sqldb: no such table %s", name)
	}
	for _, idx := range c.TableIndexes(name) {
		c.tree.DeleteRow(idx.catRowid)
		delete(c.indexes, strings.ToLower(idx.Name))
	}
	c.tree.DeleteRow(t.catRowid)
	delete(c.tables, strings.ToLower(name))
	return nil
}

// DropIndex removes an index from the schema.
func (c *Catalog) DropIndex(name string) error {
	idx := c.Index(name)
	if idx == nil {
		return fmt.Errorf("sqldb: no such index %s", name)
	}
	c.tree.DeleteRow(idx.catRowid)
	delete(c.indexes, strings.ToLower(name))
	return nil
}

// AddColumn implements ALTER TABLE ADD COLUMN: schema-only, existing rows
// read the new column as NULL.
func (c *Catalog) AddColumn(table string, col Column) error {
	t := c.Table(table)
	if t == nil {
		return fmt.Errorf("sqldb: no such table %s", table)
	}
	if t.ColIndex(col.Name) >= 0 {
		return fmt.Errorf("sqldb: column %s already exists", col.Name)
	}
	t.Columns = append(t.Columns, col)
	c.tree.DeleteRow(t.catRowid)
	rec := EncodeRecord([]Value{Text("table"), Text(t.Name), Text(t.Name), Int(int64(t.Root)), Text(tableDef(t))})
	return c.tree.InsertRow(t.catRowid, rec)
}
