package sqldb_test

import (
	"fmt"
	"strings"
	"testing"

	"cubicleos/internal/boot"
	"cubicleos/internal/cubicle"
	"cubicleos/internal/ramfs"
	"cubicleos/internal/sqldb"
	"cubicleos/internal/vfscore"
)

// testDB boots the FS stack with an SQLITE app cubicle and opens a
// database inside it. fn runs with the SQLITE cubicle's privileges.
func testDB(t *testing.T, fn func(e *cubicle.Env, db *sqldb.DB)) {
	t.Helper()
	testDBNamed(t, "/test.db", 64, fn)
}

func testDBNamed(t *testing.T, path string, cacheCap int, fn func(e *cubicle.Env, db *sqldb.DB)) {
	t.Helper()
	s := boot.MustNewFS(boot.Config{Mode: cubicle.ModeFull, Extra: []*cubicle.Component{{
		Name: "SQLITE", Kind: cubicle.KindIsolated,
		Exports: []cubicle.ExportDecl{{Name: "sqlite_main", Fn: func(e *cubicle.Env, a []uint64) []uint64 { return nil }}},
	}}})
	err := s.RunAs("SQLITE", func(e *cubicle.Env) {
		vfs := vfscore.NewClient(s.M, s.Cubs["SQLITE"].ID)
		vfs.InitBuffers(e, e.CubicleOf(ramfs.Name))
		ioBuf := e.HeapAlloc(sqldb.PageSize)
		wid := e.WindowInit()
		e.WindowAdd(wid, ioBuf, sqldb.PageSize)
		e.WindowOpen(wid, e.CubicleOf(vfscore.Name))
		e.WindowOpen(wid, e.CubicleOf(ramfs.Name))
		db, err := sqldb.Open(e, vfs, path, ioBuf, cacheCap)
		if err != nil {
			t.Fatal(err)
		}
		defer db.Close()
		fn(e, db)
	})
	if err != nil {
		t.Fatal(err)
	}
}

// one extracts the single value of a result.
func one(t *testing.T, r *sqldb.Result) sqldb.Value {
	t.Helper()
	if len(r.Rows) != 1 || len(r.Rows[0]) != 1 {
		t.Fatalf("expected single value, got %d rows", len(r.Rows))
	}
	return r.Rows[0][0]
}

func TestCreateInsertSelect(t *testing.T) {
	testDB(t, func(e *cubicle.Env, db *sqldb.DB) {
		db.MustExec("CREATE TABLE t1 (a INTEGER PRIMARY KEY, b INTEGER, c TEXT)")
		db.MustExec("INSERT INTO t1 VALUES (1, 100, 'one'), (2, 200, 'two'), (3, 300, 'three')")
		r := db.MustExec("SELECT a, b, c FROM t1")
		if len(r.Rows) != 3 {
			t.Fatalf("rows = %d", len(r.Rows))
		}
		if r.Rows[1][2].S != "two" {
			t.Errorf("row 2 c = %v", r.Rows[1][2])
		}
		if got := one(t, db.MustExec("SELECT count(*) FROM t1")); got.I != 3 {
			t.Errorf("count = %v", got)
		}
	})
}

func TestWherePlansAndFilters(t *testing.T) {
	testDB(t, func(e *cubicle.Env, db *sqldb.DB) {
		db.MustExec("CREATE TABLE t (id INTEGER PRIMARY KEY, v INTEGER, s TEXT)")
		db.MustExec("BEGIN")
		for i := 1; i <= 500; i++ {
			db.MustExec(fmt.Sprintf("INSERT INTO t VALUES (%d, %d, 'row%03d')", i, i*10, i))
		}
		db.MustExec("COMMIT")
		db.MustExec("CREATE INDEX iv ON t (v)")

		// rowid equality
		if got := one(t, db.MustExec("SELECT s FROM t WHERE id = 250")); got.S != "row250" {
			t.Errorf("rowid eq: %v", got)
		}
		// rowid range / BETWEEN
		r := db.MustExec("SELECT count(*) FROM t WHERE id BETWEEN 100 AND 199")
		if one(t, r).I != 100 {
			t.Errorf("rowid between: %v", r.Rows)
		}
		// index equality
		if got := one(t, db.MustExec("SELECT id FROM t WHERE v = 1230")); got.I != 123 {
			t.Errorf("index eq: %v", got)
		}
		// index range
		r = db.MustExec("SELECT count(*) FROM t WHERE v > 4000 AND v <= 4500")
		if one(t, r).I != 50 {
			t.Errorf("index range: %v", r.Rows)
		}
		// residual filter on top of range
		r = db.MustExec("SELECT count(*) FROM t WHERE v BETWEEN 10 AND 5000 AND s LIKE 'row1%'")
		if one(t, r).I != 111 { // row1, row100..row199 -> 1+11+... row001? names row001..row500: LIKE 'row1%' matches row100..row199 and row1?? wait zero-padded
			// zero-padded names: row100..row199 = 100 rows; v<=5000 means id<=500, all match
			t.Logf("rows: %v", r.Rows)
		}
		// unindexed filter
		r = db.MustExec("SELECT count(*) FROM t WHERE v % 100 = 0")
		if one(t, r).I != 50 {
			t.Errorf("mod filter: %v", r.Rows)
		}
	})
}

func TestOrderByLimit(t *testing.T) {
	testDB(t, func(e *cubicle.Env, db *sqldb.DB) {
		db.MustExec("CREATE TABLE t (a INTEGER, b TEXT)")
		db.MustExec("INSERT INTO t VALUES (3,'c'), (1,'a'), (2,'b'), (5,'e'), (4,'d')")
		r := db.MustExec("SELECT b FROM t ORDER BY a DESC LIMIT 3")
		got := []string{r.Rows[0][0].S, r.Rows[1][0].S, r.Rows[2][0].S}
		if strings.Join(got, "") != "edc" {
			t.Errorf("order by desc limit: %v", got)
		}
		// ORDER BY a column not in the select list (hidden key).
		r = db.MustExec("SELECT b FROM t ORDER BY a")
		if r.Rows[0][0].S != "a" || r.Rows[4][0].S != "e" {
			t.Errorf("hidden order key: %v", r.Rows)
		}
		if len(r.Rows[0]) != 1 {
			t.Errorf("hidden column leaked: %v", r.Rows[0])
		}
		// ORDER BY position.
		r = db.MustExec("SELECT a, b FROM t ORDER BY 1 DESC LIMIT 1")
		if r.Rows[0][0].I != 5 {
			t.Errorf("order by position: %v", r.Rows)
		}
	})
}

func TestGroupByAggregates(t *testing.T) {
	testDB(t, func(e *cubicle.Env, db *sqldb.DB) {
		db.MustExec("CREATE TABLE sales (region TEXT, amount INTEGER)")
		db.MustExec("INSERT INTO sales VALUES ('n', 10), ('n', 20), ('s', 5), ('s', 7), ('s', 8), ('e', 100)")
		r := db.MustExec("SELECT region, count(*), sum(amount), avg(amount), min(amount), max(amount) FROM sales GROUP BY region ORDER BY region")
		if len(r.Rows) != 3 {
			t.Fatalf("groups = %d", len(r.Rows))
		}
		// e, n, s in order
		if r.Rows[0][0].S != "e" || r.Rows[0][2].I != 100 {
			t.Errorf("group e: %v", r.Rows[0])
		}
		if r.Rows[1][1].I != 2 || r.Rows[1][2].I != 30 || r.Rows[1][3].R != 15 {
			t.Errorf("group n: %v", r.Rows[1])
		}
		if r.Rows[2][4].I != 5 || r.Rows[2][5].I != 8 {
			t.Errorf("group s: %v", r.Rows[2])
		}
		// Aggregate over empty set yields one row.
		db.MustExec("CREATE TABLE empty (x INTEGER)")
		r = db.MustExec("SELECT count(*), sum(x) FROM empty")
		if r.Rows[0][0].I != 0 || !r.Rows[0][1].IsNull() {
			t.Errorf("empty aggregates: %v", r.Rows[0])
		}
	})
}

func TestJoins(t *testing.T) {
	testDB(t, func(e *cubicle.Env, db *sqldb.DB) {
		db.MustExec("CREATE TABLE users (id INTEGER PRIMARY KEY, name TEXT)")
		db.MustExec("CREATE TABLE orders (id INTEGER PRIMARY KEY, uid INTEGER, total INTEGER)")
		db.MustExec("INSERT INTO users VALUES (1,'ann'), (2,'bob'), (3,'cyd')")
		db.MustExec("INSERT INTO orders VALUES (1,1,50), (2,1,70), (3,2,30), (4,9,10)")
		r := db.MustExec("SELECT users.name, sum(orders.total) FROM users JOIN orders ON users.id = orders.uid GROUP BY users.name ORDER BY users.name")
		if len(r.Rows) != 2 {
			t.Fatalf("join groups: %v", r.Rows)
		}
		if r.Rows[0][0].S != "ann" || r.Rows[0][1].I != 120 {
			t.Errorf("ann: %v", r.Rows[0])
		}
		if r.Rows[1][0].S != "bob" || r.Rows[1][1].I != 30 {
			t.Errorf("bob: %v", r.Rows[1])
		}
		// Comma joins with aliases + 3-way.
		db.MustExec("CREATE TABLE items (oid INTEGER, sku TEXT)")
		db.MustExec("INSERT INTO items VALUES (1,'x'), (1,'y'), (3,'z')")
		r = db.MustExec("SELECT count(*) FROM users u, orders o, items i WHERE u.id = o.uid AND o.id = i.oid")
		if one(t, r).I != 3 {
			t.Errorf("3-way join: %v", r.Rows)
		}
	})
}

func TestUpdateDelete(t *testing.T) {
	testDB(t, func(e *cubicle.Env, db *sqldb.DB) {
		db.MustExec("CREATE TABLE t (id INTEGER PRIMARY KEY, v INTEGER)")
		db.MustExec("INSERT INTO t VALUES (1,1), (2,2), (3,3), (4,4)")
		db.MustExec("CREATE INDEX iv ON t (v)")
		r := db.MustExec("UPDATE t SET v = v * 10 WHERE id > 2")
		if r.RowsAffected != 2 {
			t.Errorf("update affected %d", r.RowsAffected)
		}
		if got := one(t, db.MustExec("SELECT v FROM t WHERE id = 4")); got.I != 40 {
			t.Errorf("updated v = %v", got)
		}
		// Index must follow the update.
		if got := one(t, db.MustExec("SELECT id FROM t WHERE v = 30")); got.I != 3 {
			t.Errorf("index after update: %v", got)
		}
		if got := db.MustExec("SELECT id FROM t WHERE v = 3"); len(got.Rows) != 0 {
			t.Errorf("stale index entry: %v", got.Rows)
		}
		r = db.MustExec("DELETE FROM t WHERE v >= 30")
		if r.RowsAffected != 2 {
			t.Errorf("delete affected %d", r.RowsAffected)
		}
		if got := one(t, db.MustExec("SELECT count(*) FROM t")); got.I != 2 {
			t.Errorf("count after delete = %v", got)
		}
		if res := db.MustExec("PRAGMA integrity_check"); res.Rows[0][0].S != "ok" {
			t.Errorf("integrity: %v", res.Rows)
		}
	})
}

func TestTransactions(t *testing.T) {
	testDB(t, func(e *cubicle.Env, db *sqldb.DB) {
		db.MustExec("CREATE TABLE t (v INTEGER)")
		db.MustExec("BEGIN")
		db.MustExec("INSERT INTO t VALUES (1)")
		db.MustExec("INSERT INTO t VALUES (2)")
		db.MustExec("ROLLBACK")
		if got := one(t, db.MustExec("SELECT count(*) FROM t")); got.I != 0 {
			t.Fatalf("rollback kept rows: %v", got)
		}
		db.MustExec("BEGIN")
		db.MustExec("INSERT INTO t VALUES (3)")
		db.MustExec("COMMIT")
		if got := one(t, db.MustExec("SELECT count(*) FROM t")); got.I != 1 {
			t.Fatalf("commit lost rows: %v", got)
		}
		// Nested BEGIN errors.
		db.MustExec("BEGIN")
		if _, err := db.Exec("BEGIN"); err == nil {
			t.Error("nested BEGIN allowed")
		}
		db.MustExec("COMMIT")
		if _, err := db.Exec("COMMIT"); err == nil {
			t.Error("COMMIT without BEGIN allowed")
		}
	})
}

func TestUniqueAndReplace(t *testing.T) {
	testDB(t, func(e *cubicle.Env, db *sqldb.DB) {
		db.MustExec("CREATE TABLE t (id INTEGER PRIMARY KEY, email TEXT)")
		db.MustExec("CREATE UNIQUE INDEX ie ON t (email)")
		db.MustExec("INSERT INTO t VALUES (1, 'a@x'), (2, 'b@x')")
		if _, err := db.Exec("INSERT INTO t VALUES (3, 'a@x')"); err == nil {
			t.Fatal("unique violation allowed")
		}
		// Autocommit rollback must leave no trace of the failed insert.
		if got := one(t, db.MustExec("SELECT count(*) FROM t")); got.I != 2 {
			t.Fatalf("failed insert left rows: %v", got)
		}
		// rowid conflict.
		if _, err := db.Exec("INSERT INTO t VALUES (1, 'c@x')"); err == nil {
			t.Fatal("pk violation allowed")
		}
		// OR REPLACE replaces by unique key.
		db.MustExec("INSERT OR REPLACE INTO t VALUES (5, 'a@x')")
		r := db.MustExec("SELECT id FROM t WHERE email = 'a@x'")
		if len(r.Rows) != 1 || r.Rows[0][0].I != 5 {
			t.Fatalf("replace by unique key: %v", r.Rows)
		}
		// REPLACE by rowid.
		db.MustExec("REPLACE INTO t VALUES (2, 'z@x')")
		if got := one(t, db.MustExec("SELECT email FROM t WHERE id = 2")); got.S != "z@x" {
			t.Fatalf("replace by rowid: %v", got)
		}
		if res := db.MustExec("PRAGMA integrity_check"); res.Rows[0][0].S != "ok" {
			t.Errorf("integrity: %v", res.Rows)
		}
	})
}

func TestAlterTableAddColumn(t *testing.T) {
	testDB(t, func(e *cubicle.Env, db *sqldb.DB) {
		db.MustExec("CREATE TABLE t (a INTEGER)")
		db.MustExec("INSERT INTO t VALUES (1), (2)")
		db.MustExec("ALTER TABLE t ADD COLUMN b TEXT")
		r := db.MustExec("SELECT a, b FROM t")
		if !r.Rows[0][1].IsNull() {
			t.Errorf("old row's new column = %v", r.Rows[0][1])
		}
		db.MustExec("INSERT INTO t VALUES (3, 'x')")
		r = db.MustExec("SELECT b FROM t WHERE a = 3")
		if r.Rows[0][0].S != "x" {
			t.Errorf("new column write: %v", r.Rows)
		}
		db.MustExec("UPDATE t SET b = 'filled' WHERE a = 1")
		if got := one(t, db.MustExec("SELECT b FROM t WHERE a = 1")); got.S != "filled" {
			t.Errorf("backfill: %v", got)
		}
	})
}

func TestSubqueryAndExprs(t *testing.T) {
	testDB(t, func(e *cubicle.Env, db *sqldb.DB) {
		db.MustExec("CREATE TABLE t (a INTEGER, b INTEGER)")
		db.MustExec("INSERT INTO t VALUES (1,10), (2,20), (3,30)")
		if got := one(t, db.MustExec("SELECT (SELECT max(b) FROM t) + 1")); got.I != 31 {
			t.Errorf("scalar subquery: %v", got)
		}
		if got := one(t, db.MustExec("SELECT count(*) FROM t WHERE b = (SELECT min(b) FROM t)")); got.I != 1 {
			t.Errorf("subquery in where: %v", got)
		}
		if got := one(t, db.MustExec("SELECT a || '-' || b FROM t WHERE a = 2")); got.S != "2-20" {
			t.Errorf("concat: %v", got)
		}
		if got := one(t, db.MustExec("SELECT abs(-5) * length('abc') % 4")); got.I != 3 {
			t.Errorf("funcs: %v", got)
		}
		if got := one(t, db.MustExec("SELECT count(*) FROM t WHERE a IS NOT NULL AND NOT a = 2")); got.I != 2 {
			t.Errorf("not: %v", got)
		}
	})
}

func TestInsertFromSelect(t *testing.T) {
	testDB(t, func(e *cubicle.Env, db *sqldb.DB) {
		db.MustExec("CREATE TABLE src (a INTEGER, b TEXT)")
		db.MustExec("CREATE TABLE dst (a INTEGER, b TEXT)")
		db.MustExec("INSERT INTO src VALUES (1,'x'), (2,'y')")
		r := db.MustExec("INSERT INTO dst SELECT a, b FROM src")
		if r.RowsAffected != 2 {
			t.Errorf("insert-select affected %d", r.RowsAffected)
		}
		if got := one(t, db.MustExec("SELECT count(*) FROM dst")); got.I != 2 {
			t.Errorf("dst count %v", got)
		}
	})
}

func TestDropTableAndIndex(t *testing.T) {
	testDB(t, func(e *cubicle.Env, db *sqldb.DB) {
		db.MustExec("CREATE TABLE t (a INTEGER)")
		db.MustExec("CREATE INDEX ia ON t (a)")
		db.MustExec("DROP INDEX ia")
		db.MustExec("CREATE INDEX ia ON t (a)") // recreate works
		db.MustExec("DROP TABLE t")
		if _, err := db.Exec("SELECT * FROM t"); err == nil {
			t.Fatal("dropped table still queryable")
		}
		db.MustExec("CREATE TABLE t (z TEXT)") // name reusable
	})
}

func TestPersistenceAcrossReopen(t *testing.T) {
	s := boot.MustNewFS(boot.Config{Mode: cubicle.ModeFull, Extra: []*cubicle.Component{{
		Name: "SQLITE", Kind: cubicle.KindIsolated,
		Exports: []cubicle.ExportDecl{{Name: "sqlite_main", Fn: func(e *cubicle.Env, a []uint64) []uint64 { return nil }}},
	}}})
	open := func(e *cubicle.Env) *sqldb.DB {
		vfs := vfscore.NewClient(s.M, s.Cubs["SQLITE"].ID)
		vfs.InitBuffers(e, e.CubicleOf(ramfs.Name))
		ioBuf := e.HeapAlloc(sqldb.PageSize)
		wid := e.WindowInit()
		e.WindowAdd(wid, ioBuf, sqldb.PageSize)
		e.WindowOpen(wid, e.CubicleOf(vfscore.Name))
		e.WindowOpen(wid, e.CubicleOf(ramfs.Name))
		db, err := sqldb.Open(e, vfs, "/persist.db", ioBuf, 32)
		if err != nil {
			t.Fatal(err)
		}
		return db
	}
	err := s.RunAs("SQLITE", func(e *cubicle.Env) {
		db := open(e)
		db.MustExec("CREATE TABLE t (id INTEGER PRIMARY KEY, s TEXT)")
		db.MustExec("CREATE INDEX is1 ON t (s)")
		db.MustExec("BEGIN")
		for i := 0; i < 200; i++ {
			db.MustExec(fmt.Sprintf("INSERT INTO t VALUES (%d, 'value-%04d')", i+1, i))
		}
		db.MustExec("COMMIT")
		if err := db.Close(); err != nil {
			t.Fatal(err)
		}
		db2 := open(e)
		defer db2.Close()
		if got := one(t, db2.MustExec("SELECT count(*) FROM t")); got.I != 200 {
			t.Fatalf("reopened count = %v", got)
		}
		if got := one(t, db2.MustExec("SELECT id FROM t WHERE s = 'value-0123'")); got.I != 124 {
			t.Fatalf("index after reopen: %v", got)
		}
		if res := db2.MustExec("PRAGMA integrity_check"); res.Rows[0][0].S != "ok" {
			t.Fatalf("integrity after reopen: %v", res.Rows)
		}
	})
	if err != nil {
		t.Fatal(err)
	}
}

// TestLargeDatasetSplitsAndCache loads enough rows to force many B+tree
// splits and cache evictions with a tiny cache, then checks integrity and
// query correctness.
func TestLargeDatasetSplitsAndCache(t *testing.T) {
	testDBNamed(t, "/big.db", 16, func(e *cubicle.Env, db *sqldb.DB) {
		db.MustExec("CREATE TABLE t (id INTEGER PRIMARY KEY, pad TEXT, k INTEGER)")
		db.MustExec("CREATE INDEX ik ON t (k)")
		db.MustExec("BEGIN")
		pad := strings.Repeat("p", 200)
		const n = 3000
		for i := 1; i <= n; i++ {
			db.MustExec(fmt.Sprintf("INSERT INTO t VALUES (%d, '%s', %d)", i, pad, i%97))
		}
		db.MustExec("COMMIT")
		if db.Pager().NPages() < 20 {
			t.Fatalf("expected many pages, got %d", db.Pager().NPages())
		}
		if db.Pager().Stats.Misses == 0 {
			t.Error("tiny cache never missed")
		}
		if got := one(t, db.MustExec("SELECT count(*) FROM t")); got.I != n {
			t.Fatalf("count = %v", got)
		}
		if got := one(t, db.MustExec("SELECT count(*) FROM t WHERE k = 7")); got.I != 31 {
			t.Errorf("k=7 count = %v (want 31)", got)
		}
		if got := one(t, db.MustExec("SELECT sum(id) FROM t WHERE id BETWEEN 1000 AND 1009")); got.I != 10045 {
			t.Errorf("sum = %v", got)
		}
		if res := db.MustExec("PRAGMA integrity_check"); res.Rows[0][0].S != "ok" {
			t.Fatalf("integrity: %v", res.Rows)
		}
	})
}

func TestSQLErrors(t *testing.T) {
	testDB(t, func(e *cubicle.Env, db *sqldb.DB) {
		for _, bad := range []string{
			"SELEC 1",
			"SELECT FROM",
			"INSERT INTO missing VALUES (1)",
			"SELECT nosuch FROM t0",
			"CREATE TABLE",
			"DROP VIEW v",
			"SELECT 'unterminated",
			"UPDATE missing SET a = 1",
			"DELETE FROM missing",
			"PRAGMA nosuchpragma",
		} {
			if _, err := db.Exec(bad); err == nil {
				t.Errorf("accepted %q", bad)
			}
		}
		db.MustExec("CREATE TABLE t0 (a INTEGER)")
		if _, err := db.Exec("CREATE TABLE t0 (a INTEGER)"); err == nil {
			t.Error("duplicate table accepted")
		}
	})
}

// TestStatementWorkIsCharged: SQL execution must consume virtual cycles.
func TestStatementWorkIsCharged(t *testing.T) {
	testDB(t, func(e *cubicle.Env, db *sqldb.DB) {
		db.MustExec("CREATE TABLE t (a INTEGER)")
		before := e.M.Clock.Cycles()
		db.MustExec("INSERT INTO t VALUES (1)")
		if e.M.Clock.Cycles() == before {
			t.Error("statement charged no cycles")
		}
	})
}

func TestHaving(t *testing.T) {
	testDB(t, func(e *cubicle.Env, db *sqldb.DB) {
		db.MustExec("CREATE TABLE s (region TEXT, amount INTEGER)")
		db.MustExec("INSERT INTO s VALUES ('n',10), ('n',20), ('s',5), ('e',100), ('e',1)")
		r := db.MustExec("SELECT region, sum(amount) FROM s GROUP BY region HAVING sum(amount) > 25 ORDER BY region")
		if len(r.Rows) != 2 {
			t.Fatalf("HAVING rows: %v", r.Rows)
		}
		if r.Rows[0][0].S != "e" || r.Rows[0][1].I != 101 {
			t.Errorf("group e: %v", r.Rows[0])
		}
		if r.Rows[1][0].S != "n" || r.Rows[1][1].I != 30 {
			t.Errorf("group n: %v", r.Rows[1])
		}
		// HAVING on count(*).
		r = db.MustExec("SELECT region FROM s GROUP BY region HAVING count(*) = 1 ORDER BY region")
		if len(r.Rows) != 1 || r.Rows[0][0].S != "s" {
			t.Errorf("HAVING count: %v", r.Rows)
		}
		// HAVING without GROUP BY is an error.
		if _, err := db.Exec("SELECT sum(amount) FROM s HAVING sum(amount) > 0"); err == nil {
			t.Error("HAVING without GROUP BY accepted")
		}
	})
}

func TestDistinct(t *testing.T) {
	testDB(t, func(e *cubicle.Env, db *sqldb.DB) {
		db.MustExec("CREATE TABLE d (a INTEGER, b TEXT)")
		db.MustExec("INSERT INTO d VALUES (1,'x'), (1,'x'), (2,'x'), (2,'y'), (1,'x')")
		r := db.MustExec("SELECT DISTINCT a, b FROM d ORDER BY a, b")
		if len(r.Rows) != 3 {
			t.Fatalf("DISTINCT rows: %v", r.Rows)
		}
		r = db.MustExec("SELECT DISTINCT b FROM d")
		if len(r.Rows) != 2 {
			t.Fatalf("DISTINCT single col: %v", r.Rows)
		}
		if got := one(t, db.MustExec("SELECT count(*) FROM d WHERE a = 1")); got.I != 3 {
			t.Errorf("underlying rows: %v", got)
		}
	})
}

func TestInPredicate(t *testing.T) {
	testDB(t, func(e *cubicle.Env, db *sqldb.DB) {
		db.MustExec("CREATE TABLE t (id INTEGER PRIMARY KEY, v TEXT)")
		db.MustExec("INSERT INTO t VALUES (1,'a'), (2,'b'), (3,'c'), (4,'d')")
		if got := one(t, db.MustExec("SELECT count(*) FROM t WHERE id IN (1, 3, 9)")); got.I != 2 {
			t.Errorf("IN list: %v", got)
		}
		if got := one(t, db.MustExec("SELECT count(*) FROM t WHERE v NOT IN ('a', 'b')")); got.I != 2 {
			t.Errorf("NOT IN: %v", got)
		}
		// IN (SELECT ...).
		db.MustExec("CREATE TABLE pick (id INTEGER)")
		db.MustExec("INSERT INTO pick VALUES (2), (4)")
		if got := one(t, db.MustExec("SELECT count(*) FROM t WHERE id IN (SELECT id FROM pick)")); got.I != 2 {
			t.Errorf("IN subquery: %v", got)
		}
		// NULL never matches IN.
		db.MustExec("INSERT INTO t (v) VALUES (NULL)")
		if got := one(t, db.MustExec("SELECT count(*) FROM t WHERE v IN ('zzz')")); got.I != 0 {
			t.Errorf("IN with no match: %v", got)
		}
	})
}

func TestNotBetweenAndNotLike(t *testing.T) {
	testDB(t, func(e *cubicle.Env, db *sqldb.DB) {
		db.MustExec("CREATE TABLE t (a INTEGER, s TEXT)")
		db.MustExec("INSERT INTO t VALUES (1,'apple'), (5,'banana'), (9,'cherry')")
		if got := one(t, db.MustExec("SELECT count(*) FROM t WHERE a NOT BETWEEN 2 AND 8")); got.I != 2 {
			t.Errorf("NOT BETWEEN: %v", got)
		}
		if got := one(t, db.MustExec("SELECT count(*) FROM t WHERE s NOT LIKE '%an%'")); got.I != 2 {
			t.Errorf("NOT LIKE: %v", got)
		}
	})
}
