package sqldb

import (
	"math/rand"
	"strings"
	"testing"
	"testing/quick"
)

func TestParseStatements(t *testing.T) {
	good := []string{
		"SELECT 1",
		"SELECT a, b AS x FROM t WHERE a > 1 AND b < 2 OR NOT a = b",
		"SELECT * FROM t ORDER BY a DESC, b ASC LIMIT 10",
		"SELECT count(*), sum(a+1) FROM t GROUP BY b HAVING count(*) > 2",
		"SELECT DISTINCT a FROM t",
		"SELECT t1.a, t2.b FROM t1 JOIN t2 ON t1.id = t2.ref",
		"SELECT a FROM t1, t2, t3 WHERE t1.a = t2.b AND t2.b = t3.c",
		"SELECT a FROM t WHERE b IN (1, 2, 3) AND c NOT IN (SELECT x FROM u)",
		"SELECT a FROM t WHERE b BETWEEN 1 AND 10 AND c NOT BETWEEN 2 AND 3",
		"SELECT a FROM t WHERE s LIKE 'x%' AND s NOT LIKE '%y'",
		"SELECT a FROM t WHERE b IS NULL OR c IS NOT NULL",
		"SELECT (SELECT max(a) FROM t) + 1",
		"INSERT INTO t VALUES (1, 'two', 3.5, NULL)",
		"INSERT INTO t (a, b) VALUES (1, 2), (3, 4)",
		"INSERT OR REPLACE INTO t VALUES (1)",
		"REPLACE INTO t VALUES (1)",
		"INSERT INTO t SELECT a, b FROM u",
		"UPDATE t SET a = a + 1, b = 'x' WHERE id = 5",
		"DELETE FROM t WHERE a < 0",
		"CREATE TABLE t (id INTEGER PRIMARY KEY, v TEXT NOT NULL, r REAL)",
		"CREATE UNIQUE INDEX i ON t (a, b)",
		"DROP TABLE t",
		"DROP INDEX i",
		"ALTER TABLE t ADD COLUMN extra INTEGER",
		"BEGIN", "BEGIN TRANSACTION", "COMMIT", "END", "ROLLBACK",
		"PRAGMA integrity_check",
		"SELECT -a, +b, a || b, a % b FROM t",
		"SELECT 'it''s quoted'",
		"SELECT 1 -- trailing comment",
		"SELECT 1;",
	}
	for _, src := range good {
		if _, err := Parse(src); err != nil {
			t.Errorf("Parse(%q): %v", src, err)
		}
	}
	bad := []string{
		"", "SELECT", "SELECT FROM t", "SELECT 1 2", "WHERE 1",
		"INSERT t VALUES (1)", "UPDATE SET a = 1", "CREATE t",
		"SELECT 'open", "SELECT a FROM t ORDER", "SELECT a FROM t LIMIT a",
		"DELETE t", "DROP", "SELECT a IN", "SELECT ((1)",
		"SELECT 1 UNION SELECT 2", // unsupported, must error not panic
	}
	for _, src := range bad {
		if _, err := Parse(src); err == nil {
			t.Errorf("Parse(%q) unexpectedly succeeded", src)
		}
	}
}

// TestParseNeverPanics throws random token soup at the parser.
func TestParseNeverPanics(t *testing.T) {
	tokens := []string{
		"SELECT", "FROM", "WHERE", "GROUP", "BY", "ORDER", "LIMIT", "INSERT",
		"INTO", "VALUES", "UPDATE", "SET", "DELETE", "CREATE", "TABLE",
		"INDEX", "AND", "OR", "NOT", "IN", "BETWEEN", "LIKE", "IS", "NULL",
		"JOIN", "ON", "HAVING", "DISTINCT", "t", "a", "b", "ident_1",
		"1", "3.5", "'str'", "(", ")", ",", "*", "+", "-", "/", "%",
		"=", "<", ">", "<=", ">=", "!=", "<>", "||", ".", ";",
	}
	f := func(seed int64, n uint8) bool {
		rng := rand.New(rand.NewSource(seed))
		var sb strings.Builder
		for i := 0; i < int(n%40)+1; i++ {
			sb.WriteString(tokens[rng.Intn(len(tokens))])
			sb.WriteByte(' ')
		}
		_, _ = Parse(sb.String()) // must not panic
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 2000}); err != nil {
		t.Error(err)
	}
}

// TestLexNeverPanics throws arbitrary bytes at the lexer+parser.
func TestLexNeverPanics(t *testing.T) {
	f := func(raw []byte) bool {
		_, _ = Parse(string(raw))
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 2000}); err != nil {
		t.Error(err)
	}
}

func TestParseSelectShape(t *testing.T) {
	stmt, err := Parse("SELECT DISTINCT a, count(*) AS n FROM t1 x JOIN t2 ON x.id = t2.ref WHERE a > 0 GROUP BY a HAVING n > 1 ORDER BY 2 DESC LIMIT 5")
	if err != nil {
		t.Fatal(err)
	}
	s, ok := stmt.(*SelectStmt)
	if !ok {
		t.Fatalf("got %T", stmt)
	}
	if !s.Distinct || len(s.Cols) != 2 || s.Cols[1].Alias != "n" {
		t.Errorf("cols: %+v", s.Cols)
	}
	if len(s.From) != 2 || s.From[0].Alias != "x" || s.From[1].Table != "t2" {
		t.Errorf("from: %+v", s.From)
	}
	if s.Where == nil || s.Having == nil {
		t.Error("where/having missing")
	}
	if len(s.GroupBy) != 1 || len(s.OrderBy) != 1 || !s.OrderBy[0].Desc || s.Limit != 5 {
		t.Errorf("clauses: groupby=%d orderby=%+v limit=%d", len(s.GroupBy), s.OrderBy, s.Limit)
	}
}

func TestParseCreateTableShape(t *testing.T) {
	stmt, err := Parse("CREATE TABLE t (id INTEGER PRIMARY KEY, name TEXT, score REAL)")
	if err != nil {
		t.Fatal(err)
	}
	s := stmt.(*CreateTableStmt)
	if s.Name != "t" || len(s.Cols) != 3 || s.RowidCol != 0 {
		t.Errorf("%+v", s)
	}
	if s.Cols[1].Type != "TEXT" || s.Cols[2].Type != "REAL" {
		t.Errorf("types: %+v", s.Cols)
	}
	// TEXT PRIMARY KEY is not a rowid alias.
	stmt, _ = Parse("CREATE TABLE u (k TEXT PRIMARY KEY)")
	if stmt.(*CreateTableStmt).RowidCol != -1 {
		t.Error("TEXT PRIMARY KEY treated as rowid alias")
	}
}
