package sqldb

import (
	"bytes"
	"encoding/binary"
	"fmt"
)

// B+tree page types.
const (
	pgTableLeaf     = 1
	pgTableInterior = 2
	pgIndexLeaf     = 3
	pgIndexInterior = 4
)

// Page header layout:
//
//	[0]    page type
//	[1:3)  cell count
//	[3:7)  right pointer: next-leaf link (leaf) or rightmost child (interior)
//	[7:16) reserved
//	[16:)  cells, stored contiguously, each u16 length-prefixed
const (
	pgHdrSize  = 16
	maxPayload = PageSize - pgHdrSize - 64 // one cell must always fit
)

// initBtreePage formats a zeroed page.
func initBtreePage(data []byte, typ byte) {
	for i := range data[:pgHdrSize] {
		data[i] = 0
	}
	data[0] = typ
}

// tcell is a decoded table-tree cell: leaf = (rowid, record); interior =
// (maxRowid, child) meaning child holds rowids <= maxRowid.
type tcell struct {
	rowid   int64
	payload []byte // leaf only
	child   uint32 // interior only
}

// icell is a decoded index-tree cell: leaf = (key, rowid); interior =
// (sepKey, child).
type icell struct {
	key   []byte
	rowid int64
	child uint32
}

// --- Cell codecs -------------------------------------------------------------

// encodeTCell builds a table-cell body. Cells travel as bodies; only
// encodePage adds the on-page u16 length prefix.
func encodeTCell(typ byte, c tcell) []byte {
	if typ == pgTableLeaf {
		body := make([]byte, 8, 8+len(c.payload))
		binary.LittleEndian.PutUint64(body, uint64(c.rowid))
		return append(body, c.payload...)
	}
	body := make([]byte, 12)
	binary.LittleEndian.PutUint64(body, uint64(c.rowid))
	binary.LittleEndian.PutUint32(body[8:], c.child)
	return body
}

// encodeICell builds an index-cell body (see encodeTCell). Interior
// cells carry the full (key, rowid) separator so that duplicate keys
// still have a strict total order across children.
func encodeICell(typ byte, c icell) []byte {
	body := make([]byte, 4, 4+len(c.key)+12)
	binary.LittleEndian.PutUint32(body, uint32(len(c.key)))
	body = append(body, c.key...)
	var r [8]byte
	binary.LittleEndian.PutUint64(r[:], uint64(c.rowid))
	body = append(body, r[:]...)
	if typ == pgIndexLeaf {
		return body
	}
	var ch [4]byte
	binary.LittleEndian.PutUint32(ch[:], c.child)
	return append(body, ch[:]...)
}

// decodePage splits a page into its raw cell bodies.
func decodePage(data []byte) (typ byte, right uint32, cells [][]byte) {
	typ = data[0]
	n := int(binary.LittleEndian.Uint16(data[1:]))
	right = binary.LittleEndian.Uint32(data[3:])
	off := pgHdrSize
	cells = make([][]byte, n)
	for i := 0; i < n; i++ {
		l := int(binary.LittleEndian.Uint16(data[off:]))
		cells[i] = data[off+2 : off+2+l]
		off += 2 + l
	}
	return typ, right, cells
}

// encodePage writes cells back into a page; returns false if they do not
// fit. Cell slices may alias the destination page (decodePage returns
// views into it), so the page is assembled in a scratch buffer first.
func encodePage(data []byte, typ byte, right uint32, cells [][]byte) bool {
	need := pgHdrSize
	for _, c := range cells {
		need += 2 + len(c)
	}
	if need > PageSize {
		return false
	}
	var scratch [PageSize]byte
	scratch[0] = typ
	binary.LittleEndian.PutUint16(scratch[1:], uint16(len(cells)))
	binary.LittleEndian.PutUint32(scratch[3:], right)
	off := pgHdrSize
	for _, c := range cells {
		binary.LittleEndian.PutUint16(scratch[off:], uint16(len(c)))
		copy(scratch[off+2:], c)
		off += 2 + len(c)
	}
	copy(data, scratch[:])
	return true
}

func decodeTCell(typ byte, body []byte) tcell {
	c := tcell{rowid: int64(binary.LittleEndian.Uint64(body))}
	if typ == pgTableLeaf {
		c.payload = body[8:]
	} else {
		c.child = binary.LittleEndian.Uint32(body[8:])
	}
	return c
}

func decodeICell(typ byte, body []byte) icell {
	kl := int(binary.LittleEndian.Uint32(body))
	c := icell{key: body[4 : 4+kl]}
	rest := body[4+kl:]
	c.rowid = int64(binary.LittleEndian.Uint64(rest))
	if typ != pgIndexLeaf {
		c.child = binary.LittleEndian.Uint32(rest[8:])
	}
	return c
}

// Btree is a B+tree rooted at a page. The root page number is stable
// (splits push content down), so the catalog can hold root references.
type Btree struct {
	p     *Pager
	root  uint32
	index bool
}

// NewTableTree opens a table B+tree at root.
func NewTableTree(p *Pager, root uint32) *Btree { return &Btree{p: p, root: root} }

// NewIndexTree opens an index B+tree at root.
func NewIndexTree(p *Pager, root uint32) *Btree { return &Btree{p: p, root: root, index: true} }

// CreateTableTree allocates and formats a new table tree; returns its root.
func CreateTableTree(p *Pager) uint32 {
	pg := p.Allocate()
	initBtreePage(p.Write(pg), pgTableLeaf)
	return pg
}

// CreateIndexTree allocates and formats a new index tree; returns its root.
func CreateIndexTree(p *Pager) uint32 {
	pg := p.Allocate()
	initBtreePage(p.Write(pg), pgIndexLeaf)
	return pg
}

// leafType/interiorType for this tree.
func (t *Btree) leafType() byte {
	if t.index {
		return pgIndexLeaf
	}
	return pgTableLeaf
}
func (t *Btree) interiorType() byte {
	if t.index {
		return pgIndexInterior
	}
	return pgTableInterior
}

// cellKeyLess orders a search key against a cell.
func (t *Btree) searchCells(typ byte, cells [][]byte, key []byte, rowid int64) int {
	// Binary search for the first cell with cellKey >= key.
	t.p.e.Work(workNodeSearch)
	lo, hi := 0, len(cells)
	for lo < hi {
		t.p.e.Work(workPerCompare)
		mid := (lo + hi) / 2
		if t.cellLess(typ, cells[mid], key, rowid) {
			lo = mid + 1
		} else {
			hi = mid
		}
	}
	return lo
}

// cellLess reports whether the cell sorts strictly before (key, rowid).
func (t *Btree) cellLess(typ byte, body []byte, key []byte, rowid int64) bool {
	if t.index {
		c := decodeICell(typ, body)
		if cmp := bytes.Compare(c.key, key); cmp != 0 {
			return cmp < 0
		}
		return c.rowid < rowid
	}
	c := decodeTCell(typ, body)
	return c.rowid < rowid
}

// split describes a page split propagating upward: newPg holds the upper
// half; sepKey/sepRowid is the max key of the lower half.
type split struct {
	sepKey   []byte
	sepRowid int64
	newPg    uint32
}

// insert walks down from page pg and inserts the cell; returns a split if
// the page overflowed.
func (t *Btree) insert(pg uint32, key []byte, rowid int64, cell []byte) *split {
	data := t.p.Get(pg)
	typ, right, cells := decodePage(data)
	if typ == t.leafType() {
		pos := t.searchCells(typ, cells, key, rowid)
		// Replace in place on exact match (table trees: same rowid).
		if !t.index && pos < len(cells) {
			if c := decodeTCell(typ, cells[pos]); c.rowid == rowid {
				cells[pos] = cell
				return t.writeOrSplit(pg, typ, right, cells, pos)
			}
		}
		cells = append(cells, nil)
		copy(cells[pos+1:], cells[pos:])
		cells[pos] = cell
		return t.writeOrSplit(pg, typ, right, cells, pos)
	}
	// Interior: find child to descend into.
	pos := t.searchCells(typ, cells, key, rowid)
	var child uint32
	if pos < len(cells) {
		if t.index {
			child = decodeICell(typ, cells[pos]).child
		} else {
			child = decodeTCell(typ, cells[pos]).child
		}
	} else {
		child = right
	}
	sp := t.insert(child, key, rowid, cell)
	if sp == nil {
		return nil
	}
	// The child split: child keeps the lower half (keys <= sep), the new
	// page holds the upper half. Insert a separator cell pointing at the
	// lower page and relink.
	var sepCell []byte
	if t.index {
		sepCell = encodeICell(typ, icell{key: sp.sepKey, rowid: sp.sepRowid, child: child})
	} else {
		sepCell = encodeTCell(typ, tcell{rowid: sp.sepRowid, child: child})
	}
	// The existing cell at pos (or right pointer) must now point at newPg.
	if pos < len(cells) {
		if t.index {
			c := decodeICell(typ, cells[pos])
			c.child = sp.newPg
			cells[pos] = encodeICell(typ, c)
		} else {
			c := decodeTCell(typ, cells[pos])
			c.child = sp.newPg
			cells[pos] = encodeTCell(typ, c)
		}
	} else {
		right = sp.newPg
	}
	cells = append(cells, nil)
	copy(cells[pos+1:], cells[pos:])
	cells[pos] = sepCell
	return t.writeOrSplit(pg, typ, right, cells, pos)
}

// writeOrSplit stores cells into pg, splitting if they overflow. hint is
// the position that was just modified (unused, kept for clarity).
func (t *Btree) writeOrSplit(pg uint32, typ byte, right uint32, cells [][]byte, hint int) *split {
	if encodePage(t.p.Write(pg), typ, right, cells) {
		return nil
	}
	// Split: lower half stays in pg, upper half moves to a fresh page.
	// Cell slices alias pg's buffer, which the encodePage calls below
	// rewrite with shifted offsets — so every cell that outlives the
	// rewrite (the separator, and the halves themselves) is copied first.
	for i, c := range cells {
		cells[i] = append(make([]byte, 0, len(c)), c...)
	}
	mid := len(cells) / 2
	if mid == 0 {
		mid = 1
	}
	lower, upper := cells[:mid], cells[mid:]
	newPg := t.p.Allocate()

	isLeaf := typ == t.leafType()
	var newRight, lowRight uint32
	if isLeaf {
		// Leaf split: sibling links pg -> newPg -> old right.
		newRight = right
		lowRight = newPg
	} else {
		// Interior split: the separator between halves is pushed up; the
		// lower page's rightmost child becomes the separator's child.
		sep := upper[0]
		upper = upper[1:]
		newRight = right
		if t.index {
			lowRight = decodeICell(typ, sep).child
		} else {
			lowRight = decodeTCell(typ, sep).child
		}
		// Separator key travels up via the returned split.
		if !encodePage(t.p.Write(newPg), typ, newRight, upper) {
			panic("sqldb: interior split still overflows")
		}
		if !encodePage(t.p.Write(pg), typ, lowRight, lower) {
			panic("sqldb: interior split lower overflows")
		}
		sp := &split{newPg: newPg}
		if t.index {
			c := decodeICell(typ, sep)
			sp.sepKey = append([]byte{}, c.key...)
			sp.sepRowid = c.rowid
		} else {
			sp.sepRowid = decodeTCell(typ, sep).rowid
		}
		return t.maybeGrowRoot(pg, sp)
	}
	if !encodePage(t.p.Write(newPg), typ, newRight, upper) {
		panic("sqldb: leaf split still overflows")
	}
	if !encodePage(t.p.Write(pg), typ, lowRight, lower) {
		panic("sqldb: leaf split lower overflows")
	}
	sp := &split{newPg: newPg}
	last := lower[len(lower)-1]
	if t.index {
		c := decodeICell(typ, last)
		sp.sepKey = append([]byte{}, c.key...)
		sp.sepRowid = c.rowid
	} else {
		sp.sepRowid = decodeTCell(typ, last).rowid
	}
	return t.maybeGrowRoot(pg, sp)
}

// maybeGrowRoot handles a split reaching the root: the root's content
// moves to a fresh page so the root page number stays stable.
func (t *Btree) maybeGrowRoot(pg uint32, sp *split) *split {
	if pg != t.root || sp == nil {
		return sp
	}
	// Move current root content to a new page.
	moved := t.p.Allocate()
	rootData := t.p.Get(t.root)
	typ, right, cells := decodePage(rootData)
	if !encodePage(t.p.Write(moved), typ, right, cells) {
		panic("sqldb: root move overflows")
	}
	var sepCell []byte
	it := t.interiorType()
	if t.index {
		sepCell = encodeICell(it, icell{key: sp.sepKey, rowid: sp.sepRowid, child: moved})
	} else {
		sepCell = encodeTCell(it, tcell{rowid: sp.sepRowid, child: moved})
	}
	if !encodePage(t.p.Write(t.root), it, sp.newPg, [][]byte{sepCell}) {
		panic("sqldb: new root overflows")
	}
	return nil
}

// --- Table-tree API ----------------------------------------------------------

// InsertRow inserts or replaces the record at rowid.
func (t *Btree) InsertRow(rowid int64, record []byte) error {
	if t.index {
		return fmt.Errorf("sqldb: InsertRow on index tree")
	}
	if len(record) > maxPayload {
		return fmt.Errorf("sqldb: record of %d bytes exceeds page capacity", len(record))
	}
	t.p.e.Work(workRecEncode)
	cell := encodeTCell(pgTableLeaf, tcell{rowid: rowid, payload: record})
	sp := t.insert(t.root, nil, rowid, cell)
	if sp != nil {
		panic("sqldb: unhandled root split")
	}
	return nil
}

// findLeaf descends to the leaf that would contain (key, rowid); returns
// the leaf page number.
func (t *Btree) findLeaf(key []byte, rowid int64) uint32 {
	pg := t.root
	for depth := 0; ; depth++ {
		if depth > 64 {
			panic(fmt.Sprintf("sqldb: findLeaf exceeded depth 64 at page %d (corrupt tree)", pg))
		}
		data := t.p.Get(pg)
		typ, right, cells := decodePage(data)
		if typ == t.leafType() {
			return pg
		}
		pos := t.searchCells(typ, cells, key, rowid)
		if pos < len(cells) {
			if t.index {
				pg = decodeICell(typ, cells[pos]).child
			} else {
				pg = decodeTCell(typ, cells[pos]).child
			}
		} else {
			pg = right
		}
	}
}

// GetRow fetches the record stored at rowid, or nil.
func (t *Btree) GetRow(rowid int64) []byte {
	leaf := t.findLeaf(nil, rowid)
	data := t.p.Get(leaf)
	typ, _, cells := decodePage(data)
	pos := t.searchCells(typ, cells, nil, rowid)
	if pos < len(cells) {
		if c := decodeTCell(typ, cells[pos]); c.rowid == rowid {
			t.p.e.Work(workRecDecode)
			out := make([]byte, len(c.payload))
			copy(out, c.payload)
			return out
		}
	}
	return nil
}

// DeleteRow removes rowid; reports whether it existed.
func (t *Btree) DeleteRow(rowid int64) bool {
	leaf := t.findLeaf(nil, rowid)
	data := t.p.Get(leaf)
	typ, right, cells := decodePage(data)
	pos := t.searchCells(typ, cells, nil, rowid)
	if pos >= len(cells) || decodeTCell(typ, cells[pos]).rowid != rowid {
		return false
	}
	cells = append(cells[:pos], cells[pos+1:]...)
	if !encodePage(t.p.Write(leaf), typ, right, cells) {
		panic("sqldb: delete overflow")
	}
	return true
}

// MaxRowid returns the largest rowid in the table (0 when empty).
func (t *Btree) MaxRowid() int64 {
	pg := t.root
	for {
		data := t.p.Get(pg)
		typ, right, cells := decodePage(data)
		if typ == t.leafType() {
			for pg2 := right; pg2 != 0; {
				// Rightmost leaf is reached via right links only when
				// descending interior rightmost pointers, so right here
				// should be 0; guard anyway.
				data = t.p.Get(pg2)
				typ, right, cells = decodePage(data)
				pg2 = right
			}
			if len(cells) == 0 {
				return 0
			}
			return decodeTCell(t.leafType(), cells[len(cells)-1]).rowid
		}
		pg = right
	}
}

// ScanTable walks all rows in rowid order; fn returns false to stop.
func (t *Btree) ScanTable(fn func(rowid int64, record []byte) bool) {
	pg := t.leftmostLeaf()
	for pg != 0 {
		data := t.p.Get(pg)
		typ, right, cells := decodePage(data)
		for _, body := range cells {
			c := decodeTCell(typ, body)
			t.p.e.Work(workRecDecode)
			if !fn(c.rowid, c.payload) {
				return
			}
		}
		pg = right
	}
}

// ScanTableFrom walks rows with rowid >= start in order.
func (t *Btree) ScanTableFrom(start int64, fn func(rowid int64, record []byte) bool) {
	pg := t.findLeaf(nil, start)
	for pg != 0 {
		data := t.p.Get(pg)
		typ, right, cells := decodePage(data)
		for _, body := range cells {
			c := decodeTCell(typ, body)
			if c.rowid < start {
				continue
			}
			t.p.e.Work(workRecDecode)
			if !fn(c.rowid, c.payload) {
				return
			}
		}
		pg = right
	}
}

func (t *Btree) leftmostLeaf() uint32 {
	pg := t.root
	for {
		data := t.p.Get(pg)
		typ, right, cells := decodePage(data)
		if typ == t.leafType() {
			return pg
		}
		if len(cells) > 0 {
			if t.index {
				pg = decodeICell(typ, cells[0]).child
			} else {
				pg = decodeTCell(typ, cells[0]).child
			}
		} else {
			pg = right
		}
	}
}

// --- Index-tree API ----------------------------------------------------------

// InsertKey adds (key, rowid) to the index.
func (t *Btree) InsertKey(key []byte, rowid int64) error {
	if !t.index {
		return fmt.Errorf("sqldb: InsertKey on table tree")
	}
	if len(key) > maxPayload {
		return fmt.Errorf("sqldb: index key too large")
	}
	t.p.e.Work(workRecEncode)
	cell := encodeICell(pgIndexLeaf, icell{key: key, rowid: rowid})
	sp := t.insert(t.root, key, rowid, cell)
	if sp != nil {
		panic("sqldb: unhandled root split")
	}
	return nil
}

// DeleteKey removes (key, rowid); reports whether it existed.
func (t *Btree) DeleteKey(key []byte, rowid int64) bool {
	leaf := t.findLeaf(key, rowid)
	data := t.p.Get(leaf)
	typ, right, cells := decodePage(data)
	pos := t.searchCells(typ, cells, key, rowid)
	if pos >= len(cells) {
		return false
	}
	c := decodeICell(typ, cells[pos])
	if !bytes.Equal(c.key, key) || c.rowid != rowid {
		return false
	}
	cells = append(cells[:pos], cells[pos+1:]...)
	if !encodePage(t.p.Write(leaf), typ, right, cells) {
		panic("sqldb: index delete overflow")
	}
	return true
}

// ScanIndexRange walks index entries with lo <= key <= hi (nil bounds are
// open); fn returns false to stop.
func (t *Btree) ScanIndexRange(lo, hi []byte, fn func(key []byte, rowid int64) bool) {
	var pg uint32
	if lo == nil {
		pg = t.leftmostLeaf()
	} else {
		pg = t.findLeaf(lo, -1<<62)
	}
	for pg != 0 {
		data := t.p.Get(pg)
		typ, right, cells := decodePage(data)
		for _, body := range cells {
			c := decodeICell(typ, body)
			if lo != nil && bytes.Compare(c.key, lo) < 0 {
				continue
			}
			if hi != nil && bytes.Compare(c.key, hi) > 0 {
				return
			}
			t.p.e.Work(workRecDecode)
			if !fn(c.key, c.rowid) {
				return
			}
		}
		pg = right
	}
}

// --- Integrity check ---------------------------------------------------------

// Check validates the tree's structural invariants (ordering within and
// across pages, leaf sibling chain, reachable pages formatted correctly).
// It returns a list of problems, empty when healthy.
func (t *Btree) Check() []string {
	var problems []string
	var lastKey []byte
	var lastRowid int64 = -1 << 62
	seenLeaf := false
	var walk func(pg uint32, depth int)
	walk = func(pg uint32, depth int) {
		if depth > 64 {
			problems = append(problems, "depth > 64 (cycle?)")
			return
		}
		data := t.p.Get(pg)
		typ, right, cells := decodePage(data)
		switch typ {
		case t.leafType():
			seenLeaf = true
			for _, body := range cells {
				if t.index {
					c := decodeICell(typ, body)
					if lastKey != nil {
						if cmp := bytes.Compare(lastKey, c.key); cmp > 0 || (cmp == 0 && lastRowid >= c.rowid) {
							problems = append(problems, fmt.Sprintf("page %d: index keys out of order", pg))
						}
					}
					lastKey = append(make([]byte, 0, len(c.key)), c.key...)
					lastRowid = c.rowid
				} else {
					c := decodeTCell(typ, body)
					if c.rowid <= lastRowid {
						problems = append(problems, fmt.Sprintf("page %d: rowids out of order (%d after %d)", pg, c.rowid, lastRowid))
					}
					lastRowid = c.rowid
					if _, err := DecodeRecord(c.payload); err != nil {
						problems = append(problems, fmt.Sprintf("page %d rowid %d: %v", pg, c.rowid, err))
					}
				}
			}
		case t.interiorType():
			for _, body := range cells {
				var child uint32
				if t.index {
					child = decodeICell(typ, body).child
				} else {
					child = decodeTCell(typ, body).child
				}
				walk(child, depth+1)
			}
			if right == 0 {
				problems = append(problems, fmt.Sprintf("page %d: interior without rightmost child", pg))
			} else {
				walk(right, depth+1)
			}
		default:
			problems = append(problems, fmt.Sprintf("page %d: bad page type %d", pg, typ))
		}
	}
	walk(t.root, 0)
	if !seenLeaf {
		problems = append(problems, "no leaves reachable")
	}
	return problems
}
