package sqldb

import (
	"fmt"
	"sort"
	"strings"

	"cubicleos/internal/cubicle"
	"cubicleos/internal/vfscore"
	"cubicleos/internal/vm"
)

// DB is one open database connection.
type DB struct {
	e     *cubicle.Env
	vfs   *vfscore.Client
	pager *Pager
	cat   *Catalog
	rand  uint64
	// autoTxn marks that the currently open transaction is implicit
	// (statement-level autocommit).
	autoTxn bool
	// Statements counts executed statements.
	Statements uint64
}

// Open opens (or creates) the database at path. ioBuf must be a
// page-aligned buffer of at least PageSize bytes owned by the calling
// cubicle, with windows open for VFSCORE and the file-system backend.
// cacheCap is the page-cache capacity in pages.
func Open(e *cubicle.Env, vfs *vfscore.Client, path string, ioBuf vm.Addr, cacheCap int) (*DB, error) {
	pager, err := OpenPager(e, vfs, path, ioBuf, cacheCap)
	if err != nil {
		return nil, err
	}
	cat, err := LoadCatalog(pager)
	if err != nil {
		return nil, err
	}
	return &DB{e: e, vfs: vfs, pager: pager, cat: cat, rand: 0x853C49E6748FEA9B}, nil
}

// Close flushes and closes the database.
func (db *DB) Close() error { return db.pager.Close() }

// Pager exposes pager statistics to the benchmark harness.
func (db *DB) Pager() *Pager { return db.pager }

// Catalog exposes the schema (read-only use).
func (db *DB) Catalog() *Catalog { return db.cat }

func (db *DB) nextRand() uint64 {
	x := db.rand
	x ^= x >> 12
	x ^= x << 25
	x ^= x >> 27
	db.rand = x
	return x * 0x2545F4914F6CDD1D
}

// Exec parses and executes one SQL statement.
func (db *DB) Exec(sql string) (res *Result, err error) {
	defer func() {
		if r := recover(); r != nil {
			if ee, ok := r.(execErr); ok {
				res, err = nil, ee.err
				if db.pager.InTxn() && db.autoTxn {
					db.pager.Rollback()
					db.autoTxn = false
				}
				return
			}
			panic(r)
		}
	}()
	db.e.Work(workParseSQL)
	db.Statements++
	stmt, perr := Parse(sql)
	if perr != nil {
		return nil, perr
	}
	return db.exec(stmt)
}

// MustExec is Exec that fails hard; for tests and workloads.
func (db *DB) MustExec(sql string) *Result {
	r, err := db.Exec(sql)
	if err != nil {
		panic(err)
	}
	return r
}

func (db *DB) exec(stmt any) (*Result, error) {
	switch s := stmt.(type) {
	case *SelectStmt:
		return db.execSelect(s, nil), nil
	case *TxnStmt:
		switch s.Kind {
		case "begin":
			if err := db.pager.Begin(); err != nil {
				return nil, err
			}
		case "commit":
			if err := db.pager.Commit(); err != nil {
				return nil, err
			}
		case "rollback":
			if err := db.pager.Rollback(); err != nil {
				return nil, err
			}
		}
		return &Result{}, nil
	case *PragmaStmt:
		return db.execPragma(s)
	}
	// Everything else mutates: wrap in an automatic transaction when no
	// explicit one is open (SQLite autocommit).
	implicit := !db.pager.InTxn()
	if implicit {
		if err := db.pager.Begin(); err != nil {
			return nil, err
		}
		db.autoTxn = true
	}
	res, err := db.execMut(stmt)
	if implicit {
		db.autoTxn = false
		if err != nil {
			db.pager.Rollback()
			return nil, err
		}
		if cerr := db.pager.Commit(); cerr != nil {
			return nil, cerr
		}
	}
	return res, err
}

func (db *DB) execMut(stmt any) (*Result, error) {
	switch s := stmt.(type) {
	case *CreateTableStmt:
		if _, err := db.cat.CreateTable(s.Name, s.Cols, s.RowidCol); err != nil {
			return nil, err
		}
		return &Result{}, nil
	case *CreateIndexStmt:
		return db.execCreateIndex(s)
	case *DropStmt:
		if s.Kind == "table" {
			if err := db.cat.DropTable(s.Name); err != nil {
				return nil, err
			}
		} else {
			if err := db.cat.DropIndex(s.Name); err != nil {
				return nil, err
			}
		}
		return &Result{}, nil
	case *AlterAddColumnStmt:
		if err := db.cat.AddColumn(s.Table, s.Col); err != nil {
			return nil, err
		}
		return &Result{}, nil
	case *InsertStmt:
		return db.execInsert(s)
	case *UpdateStmt:
		return db.execUpdate(s)
	case *DeleteStmt:
		return db.execDelete(s)
	}
	return nil, fmt.Errorf("sqldb: unsupported statement %T", stmt)
}

// --- INSERT -------------------------------------------------------------------

// rowValues assembles a full column-ordered row from an insert statement.
func (db *DB) insertRowValues(t *Table, cols []string, exprs []Expr, rc *rowCtx) []Value {
	vals := make([]Value, len(t.Columns))
	for i := range vals {
		vals[i] = Null()
	}
	if len(cols) == 0 {
		if len(exprs) != len(t.Columns) {
			fail("table %s has %d columns but %d values supplied", t.Name, len(t.Columns), len(exprs))
		}
		for i, e := range exprs {
			vals[i] = db.eval(rc, e)
		}
		return vals
	}
	if len(cols) != len(exprs) {
		fail("%d columns but %d values", len(cols), len(exprs))
	}
	for i, c := range cols {
		ci := t.ColIndex(c)
		if ci < 0 {
			fail("no such column %s.%s", t.Name, c)
		}
		vals[ci] = db.eval(rc, exprs[i])
	}
	return vals
}

// insertRow writes one assembled row, maintaining rowid and indexes.
// Returns the rowid used.
func (db *DB) insertRow(t *Table, vals []Value, replace bool) int64 {
	tree := NewTableTree(db.pager, t.Root)
	var rowid int64
	if t.RowidCol >= 0 && !vals[t.RowidCol].IsNull() {
		rowid = vals[t.RowidCol].I
		if existing := tree.GetRow(rowid); existing != nil {
			if !replace {
				fail("UNIQUE constraint failed: %s rowid %d", t.Name, rowid)
			}
			db.deleteIndexEntriesFor(t, rowid, existing)
		}
	} else {
		rowid = tree.MaxRowid() + 1
		if t.RowidCol >= 0 {
			vals[t.RowidCol] = Int(rowid)
		}
	}
	// Unique secondary index checks.
	for _, idx := range db.cat.TableIndexes(t.Name) {
		if !idx.Unique {
			continue
		}
		key := db.indexKey(t, idx, vals)
		itree := NewIndexTree(db.pager, idx.Root)
		var conflict int64 = -1
		itree.ScanIndexRange(key, key, func(k []byte, rid int64) bool {
			if rid != rowid {
				conflict = rid
			}
			return false
		})
		if conflict >= 0 {
			if !replace {
				fail("UNIQUE constraint failed: index %s", idx.Name)
			}
			old := tree.GetRow(conflict)
			if old != nil {
				db.deleteIndexEntriesFor(t, conflict, old)
				tree.DeleteRow(conflict)
			}
		}
	}
	rec := EncodeRecord(vals)
	if err := tree.InsertRow(rowid, rec); err != nil {
		fail("%v", err)
	}
	for _, idx := range db.cat.TableIndexes(t.Name) {
		itree := NewIndexTree(db.pager, idx.Root)
		if err := itree.InsertKey(db.indexKey(t, idx, vals), rowid); err != nil {
			fail("%v", err)
		}
	}
	return rowid
}

// indexKey builds the encoded key of idx for a row.
func (db *DB) indexKey(t *Table, idx *Index, vals []Value) []byte {
	kvals := make([]Value, len(idx.Cols))
	for i, c := range idx.Cols {
		kvals[i] = vals[t.ColIndex(c)]
	}
	return EncodeKey(kvals)
}

// deleteIndexEntriesFor removes all index entries of a stored row.
func (db *DB) deleteIndexEntriesFor(t *Table, rowid int64, record []byte) {
	vals, err := DecodeRecord(record)
	if err != nil {
		fail("%v", err)
	}
	vals = db.padRow(t, vals, rowid)
	for _, idx := range db.cat.TableIndexes(t.Name) {
		NewIndexTree(db.pager, idx.Root).DeleteKey(db.indexKey(t, idx, vals), rowid)
	}
}

// padRow extends a stored row to the current column count (ALTER TABLE
// ADD COLUMN reads old rows as NULL) and materialises the rowid alias.
func (db *DB) padRow(t *Table, vals []Value, rowid int64) []Value {
	for len(vals) < len(t.Columns) {
		vals = append(vals, Null())
	}
	if t.RowidCol >= 0 {
		vals[t.RowidCol] = Int(rowid)
	}
	return vals
}

func (db *DB) execInsert(s *InsertStmt) (*Result, error) {
	t := db.cat.Table(s.Table)
	if t == nil {
		return nil, fmt.Errorf("sqldb: no such table %s", s.Table)
	}
	res := &Result{}
	if s.FromSelect != nil {
		sub := db.execSelect(s.FromSelect, nil)
		for _, row := range sub.Rows {
			vals := make([]Value, len(t.Columns))
			for i := range vals {
				vals[i] = Null()
			}
			if len(s.Cols) == 0 {
				if len(row) != len(t.Columns) {
					return nil, fmt.Errorf("sqldb: SELECT yields %d columns, table has %d", len(row), len(t.Columns))
				}
				copy(vals, row)
			} else {
				for i, c := range s.Cols {
					vals[t.ColIndex(c)] = row[i]
				}
			}
			res.LastRowid = db.insertRow(t, vals, s.Replace)
			res.RowsAffected++
		}
		return res, nil
	}
	for _, row := range s.Rows {
		vals := db.insertRowValues(t, s.Cols, row, nil)
		res.LastRowid = db.insertRow(t, vals, s.Replace)
		res.RowsAffected++
	}
	return res, nil
}

// --- UPDATE / DELETE ----------------------------------------------------------

func (db *DB) execUpdate(s *UpdateStmt) (*Result, error) {
	t := db.cat.Table(s.Table)
	if t == nil {
		return nil, fmt.Errorf("sqldb: no such table %s", s.Table)
	}
	type hit struct {
		rowid int64
		vals  []Value
	}
	var hits []hit
	db.scanFiltered(t, s.Table, s.Where, func(rowid int64, vals []Value) bool {
		cp := make([]Value, len(vals))
		copy(cp, vals)
		hits = append(hits, hit{rowid, cp})
		return true
	})
	res := &Result{}
	tree := NewTableTree(db.pager, t.Root)
	for _, h := range hits {
		rc := &rowCtx{tables: []*tblCtx{{alias: s.Table, tbl: t, vals: h.vals, rowid: h.rowid}}}
		newVals := make([]Value, len(h.vals))
		copy(newVals, h.vals)
		newRowid := h.rowid
		for _, set := range s.Sets {
			ci := t.ColIndex(set.Col)
			if ci < 0 {
				return nil, fmt.Errorf("sqldb: no such column %s.%s", t.Name, set.Col)
			}
			v := db.eval(rc, set.E)
			newVals[ci] = v
			if ci == t.RowidCol {
				if v.Kind != KInt {
					return nil, fmt.Errorf("sqldb: rowid must be an integer")
				}
				newRowid = v.I
			}
		}
		db.deleteIndexEntriesFor(t, h.rowid, EncodeRecord(h.vals))
		if newRowid != h.rowid {
			tree.DeleteRow(h.rowid)
		}
		if err := tree.InsertRow(newRowid, EncodeRecord(newVals)); err != nil {
			return nil, err
		}
		for _, idx := range db.cat.TableIndexes(t.Name) {
			NewIndexTree(db.pager, idx.Root).InsertKey(db.indexKey(t, idx, newVals), newRowid)
		}
		res.RowsAffected++
	}
	return res, nil
}

func (db *DB) execDelete(s *DeleteStmt) (*Result, error) {
	t := db.cat.Table(s.Table)
	if t == nil {
		return nil, fmt.Errorf("sqldb: no such table %s", s.Table)
	}
	type hit struct {
		rowid int64
		vals  []Value
	}
	var hits []hit
	db.scanFiltered(t, s.Table, s.Where, func(rowid int64, vals []Value) bool {
		cp := make([]Value, len(vals))
		copy(cp, vals)
		hits = append(hits, hit{rowid, cp})
		return true
	})
	tree := NewTableTree(db.pager, t.Root)
	res := &Result{}
	for _, h := range hits {
		db.deleteIndexEntriesFor(t, h.rowid, EncodeRecord(h.vals))
		tree.DeleteRow(h.rowid)
		res.RowsAffected++
	}
	return res, nil
}

// --- CREATE INDEX ---------------------------------------------------------------

func (db *DB) execCreateIndex(s *CreateIndexStmt) (*Result, error) {
	idx, err := db.cat.CreateIndex(s.Name, s.Table, s.Cols, s.Unique)
	if err != nil {
		return nil, err
	}
	// Populate from existing rows.
	t := db.cat.Table(s.Table)
	tree := NewTableTree(db.pager, t.Root)
	itree := NewIndexTree(db.pager, idx.Root)
	var ierr error
	tree.ScanTable(func(rowid int64, record []byte) bool {
		vals, err := DecodeRecord(record)
		if err != nil {
			ierr = err
			return false
		}
		vals = db.padRow(t, vals, rowid)
		if err := itree.InsertKey(db.indexKey(t, idx, vals), rowid); err != nil {
			ierr = err
			return false
		}
		return true
	})
	return &Result{}, ierr
}

// --- PRAGMA ---------------------------------------------------------------------

func (db *DB) execPragma(s *PragmaStmt) (*Result, error) {
	switch s.Name {
	case "integrity_check":
		var problems []string
		problems = append(problems, NewTableTree(db.pager, db.pager.CatalogRoot()).Check()...)
		for _, name := range db.cat.Tables() {
			t := db.cat.Table(name)
			problems = append(problems, NewTableTree(db.pager, t.Root).Check()...)
			for _, idx := range db.cat.TableIndexes(name) {
				problems = append(problems, NewIndexTree(db.pager, idx.Root).Check()...)
			}
		}
		res := &Result{Cols: []string{"integrity_check"}}
		if len(problems) == 0 {
			res.Rows = [][]Value{{Text("ok")}}
		} else {
			for _, p := range problems {
				res.Rows = append(res.Rows, []Value{Text(p)})
			}
		}
		return res, nil
	case "page_count":
		return &Result{Cols: []string{"page_count"},
			Rows: [][]Value{{Int(int64(db.pager.NPages()))}}}, nil
	case "cache_stats":
		st := db.pager.Stats
		return &Result{Cols: []string{"hits", "misses", "writes"},
			Rows: [][]Value{{Int(int64(st.Hits)), Int(int64(st.Misses)), Int(int64(st.Writes))}}}, nil
	}
	return nil, fmt.Errorf("sqldb: unsupported pragma %s", s.Name)
}

// --- SELECT ---------------------------------------------------------------------

// execSelect runs a SELECT; parent provides correlation context.
func (db *DB) execSelect(s *SelectStmt, parent *rowCtx) *Result {
	res := &Result{}
	// Bind tables.
	binds := make([]*tblCtx, len(s.From))
	for i, fi := range s.From {
		t := db.cat.Table(fi.Table)
		if t == nil {
			fail("no such table %s", fi.Table)
		}
		binds[i] = &tblCtx{alias: fi.Alias, tbl: t}
	}
	// Column headers.
	for _, c := range s.Cols {
		switch {
		case c.Star:
			for _, b := range binds {
				for _, col := range b.tbl.Columns {
					res.Cols = append(res.Cols, col.Name)
				}
			}
		case c.Alias != "":
			res.Cols = append(res.Cols, c.Alias)
		default:
			if ec, ok := c.Expr.(*ECol); ok {
				res.Cols = append(res.Cols, ec.Name)
			} else {
				res.Cols = append(res.Cols, fmt.Sprintf("col%d", len(res.Cols)+1))
			}
		}
	}

	conjuncts := splitConjuncts(s.Where)

	// ORDER BY terms that do not name an output column are appended as
	// hidden result columns, computed per row and stripped after sorting.
	visibleWidth := len(res.Cols)
	allCols := make([]SelectCol, len(s.Cols), len(s.Cols)+len(s.OrderBy))
	copy(allCols, s.Cols)
	type okey struct {
		idx  int
		desc bool
	}
	havingIdx := -1
	if s.Having != nil {
		if len(s.GroupBy) == 0 {
			fail("HAVING requires GROUP BY")
		}
		// HAVING rides along as a hidden column so the positional
		// aggregate substitution applies to it like any projection.
		havingIdx = len(res.Cols) + (len(allCols) - len(s.Cols))
		allCols = append(allCols, SelectCol{Expr: s.Having})
	}
	okeys := make([]okey, len(s.OrderBy))
	for i, oi := range s.OrderBy {
		idx := -1
		switch x := oi.Expr.(type) {
		case *ELit:
			if x.V.Kind == KInt && x.V.I >= 1 && int(x.V.I) <= visibleWidth {
				idx = int(x.V.I) - 1
			}
		case *ECol:
			for ci := 0; ci < visibleWidth; ci++ {
				if strings.EqualFold(res.Cols[ci], x.Name) {
					idx = ci
					break
				}
			}
		}
		if idx < 0 {
			idx = visibleWidth + (len(allCols) - len(s.Cols))
			allCols = append(allCols, SelectCol{Expr: oi.Expr})
		}
		okeys[i] = okey{idx: idx, desc: oi.Desc}
	}

	aggregate := len(s.GroupBy) > 0
	for _, c := range allCols {
		if !c.Star && hasAgg(c.Expr) {
			aggregate = true
		}
	}

	type group struct {
		key    string
		first  *rowCtx
		states []*aggState
	}
	var groups map[string]*group
	var groupOrder []string
	if aggregate {
		groups = make(map[string]*group)
	}

	// aggTargets lists the aggregate calls in the select list, in order.
	var aggTargets []*EFunc
	var collect func(e Expr)
	collect = func(e Expr) {
		switch x := e.(type) {
		case *EFunc:
			if isAggFn(x.Name) {
				aggTargets = append(aggTargets, x)
				return
			}
			for _, a := range x.Args {
				collect(a)
			}
		case *EBin:
			collect(x.L)
			collect(x.R)
		case *EUn:
			collect(x.E)
		case *EBetween:
			collect(x.E)
			collect(x.Lo)
			collect(x.Hi)
		}
	}
	if aggregate {
		for _, c := range allCols {
			if !c.Star {
				collect(c.Expr)
			}
		}
	}

	emit := func(rc *rowCtx) bool {
		db.e.Work(workRowFilter)
		if aggregate {
			keyParts := make([]string, len(s.GroupBy))
			for i, ge := range s.GroupBy {
				keyParts[i] = db.eval(rc, ge).String()
			}
			key := strings.Join(keyParts, "\x00")
			g, ok := groups[key]
			if !ok {
				// Snapshot the row context for non-aggregate columns.
				snap := &rowCtx{parent: rc.parent}
				for _, tc := range rc.tables {
					cp := &tblCtx{alias: tc.alias, tbl: tc.tbl, rowid: tc.rowid}
					cp.vals = append([]Value{}, tc.vals...)
					snap.tables = append(snap.tables, cp)
				}
				g = &group{key: key, first: snap}
				for _, at := range aggTargets {
					g.states = append(g.states, &aggState{fn: at.Name, isInt: true})
				}
				groups[key] = g
				groupOrder = append(groupOrder, key)
			}
			for i, at := range aggTargets {
				if at.Star {
					g.states[i].add(Int(1))
				} else if len(at.Args) > 0 {
					g.states[i].add(db.eval(rc, at.Args[0]))
				}
			}
			return true
		}
		row := db.projectRow(rc, allCols, nil, nil)
		res.Rows = append(res.Rows, row)
		// Fast-path LIMIT without ORDER BY.
		if s.Limit >= 0 && len(s.OrderBy) == 0 && int64(len(res.Rows)) >= s.Limit {
			return false
		}
		return true
	}

	db.joinLoop(binds, 0, &rowCtx{tables: nil, parent: parent}, conjuncts, emit)

	if aggregate {
		if len(s.GroupBy) == 0 && len(groupOrder) == 0 {
			// Aggregates over an empty set still produce one row.
			g := &group{first: &rowCtx{parent: parent}}
			for _, at := range aggTargets {
				g.states = append(g.states, &aggState{fn: at.Name, isInt: true})
			}
			groups[""] = g
			groupOrder = append(groupOrder, "")
		}
		for _, key := range groupOrder {
			g := groups[key]
			row := db.projectRow(g.first, allCols, aggTargets, g.states)
			res.Rows = append(res.Rows, row)
		}
	}

	if havingIdx >= 0 {
		kept := res.Rows[:0]
		for _, row := range res.Rows {
			v := row[havingIdx]
			if !v.IsNull() && v.Truthy() {
				kept = append(kept, row)
			}
		}
		res.Rows = kept
	}
	if s.Distinct {
		seen := make(map[string]bool, len(res.Rows))
		kept := res.Rows[:0]
		for _, row := range res.Rows {
			var sb strings.Builder
			for _, v := range row[:visibleWidth] {
				sb.WriteString(v.String())
				sb.WriteByte(0)
				sb.WriteByte(byte(v.Kind))
			}
			k := sb.String()
			if !seen[k] {
				seen[k] = true
				kept = append(kept, row)
			}
		}
		res.Rows = kept
	}
	if len(s.OrderBy) > 0 {
		sort.SliceStable(res.Rows, func(a, b int) bool {
			db.e.Work(workPerCompare)
			for _, k := range okeys {
				cmp := Compare(res.Rows[a][k.idx], res.Rows[b][k.idx])
				if k.desc {
					cmp = -cmp
				}
				if cmp != 0 {
					return cmp < 0
				}
			}
			return false
		})
	}
	if s.Limit >= 0 && int64(len(res.Rows)) > s.Limit {
		res.Rows = res.Rows[:s.Limit]
	}
	// Strip hidden ORDER BY columns.
	if len(allCols) > len(s.Cols) {
		for i := range res.Rows {
			res.Rows[i] = res.Rows[i][:visibleWidth]
		}
	}
	return res
}

// projectRow evaluates the select list for one row/group. When aggStates
// is non-nil, aggregate calls are substituted positionally.
func (db *DB) projectRow(rc *rowCtx, cols []SelectCol, aggTargets []*EFunc, aggStates []*aggState) []Value {
	var row []Value
	agg := 0
	var evalWithAgg func(e Expr) Value
	evalWithAgg = func(e Expr) Value {
		if aggStates != nil {
			if f, ok := e.(*EFunc); ok && isAggFn(f.Name) {
				v := aggStates[agg].result()
				agg++
				return v
			}
			switch x := e.(type) {
			case *EBin:
				l := evalWithAgg(x.L)
				r := evalWithAgg(x.R)
				return db.evalBin(rc, &EBin{Op: x.Op, L: &ELit{V: l}, R: &ELit{V: r}})
			case *EUn:
				v := evalWithAgg(x.E)
				return db.eval(rc, &EUn{Op: x.Op, E: &ELit{V: v}})
			}
		}
		return db.eval(rc, e)
	}
	for _, c := range cols {
		if c.Star {
			for _, tc := range rc.tables {
				for i := range tc.tbl.Columns {
					if i == tc.tbl.RowidCol {
						row = append(row, Int(tc.rowid))
					} else if i < len(tc.vals) {
						row = append(row, tc.vals[i])
					} else {
						row = append(row, Null())
					}
				}
			}
			continue
		}
		row = append(row, evalWithAgg(c.Expr))
	}
	return row
}
