// Package sqldb is the SQLite stand-in of the paper's CPU/memory-intensive
// evaluation (§6.4): an embedded SQL database engine with a pager (page
// cache plus rollback journal), B+tree tables and indexes, a SQL-subset
// front end and an executor. It performs all file I/O through the VFSCORE
// client of the cubicle it runs in, so every page miss, journal write and
// fsync crosses the VFSCORE and RAMFS cubicles exactly as in the paper's
// Figure 8 deployment.
package sqldb

import (
	"encoding/binary"
	"fmt"
	"math"
	"strconv"
	"strings"
)

// Kind is a value's dynamic type.
type Kind uint8

// Value kinds (SQLite's storage classes).
const (
	KNull Kind = iota
	KInt
	KReal
	KText
	KBlob
)

// Value is one SQL value.
type Value struct {
	Kind Kind
	I    int64
	R    float64
	S    string
	B    []byte
}

// Convenience constructors.
func Null() Value          { return Value{Kind: KNull} }
func Int(i int64) Value    { return Value{Kind: KInt, I: i} }
func Real(r float64) Value { return Value{Kind: KReal, R: r} }
func Text(s string) Value  { return Value{Kind: KText, S: s} }
func Blob(b []byte) Value  { return Value{Kind: KBlob, B: b} }
func Bool(b bool) Value {
	if b {
		return Int(1)
	}
	return Int(0)
}

// IsNull reports whether the value is NULL.
func (v Value) IsNull() bool { return v.Kind == KNull }

// Truthy applies SQL boolean semantics (NULL is false).
func (v Value) Truthy() bool {
	switch v.Kind {
	case KInt:
		return v.I != 0
	case KReal:
		return v.R != 0
	case KText:
		f, err := strconv.ParseFloat(v.S, 64)
		return err == nil && f != 0
	}
	return false
}

// Num returns the value coerced to a float64 for arithmetic.
func (v Value) Num() float64 {
	switch v.Kind {
	case KInt:
		return float64(v.I)
	case KReal:
		return v.R
	case KText:
		f, _ := strconv.ParseFloat(strings.TrimSpace(v.S), 64)
		return f
	}
	return 0
}

func (v Value) String() string {
	switch v.Kind {
	case KNull:
		return "NULL"
	case KInt:
		return strconv.FormatInt(v.I, 10)
	case KReal:
		return strconv.FormatFloat(v.R, 'g', -1, 64)
	case KText:
		return v.S
	case KBlob:
		return fmt.Sprintf("x'%x'", v.B)
	}
	return "?"
}

// typeRank orders storage classes for comparison, as SQLite does:
// NULL < numbers < text < blob.
func typeRank(k Kind) int {
	switch k {
	case KNull:
		return 0
	case KInt, KReal:
		return 1
	case KText:
		return 2
	default:
		return 3
	}
}

// Compare orders two values with SQLite semantics. NULLs sort first.
func Compare(a, b Value) int {
	ra, rb := typeRank(a.Kind), typeRank(b.Kind)
	if ra != rb {
		if ra < rb {
			return -1
		}
		return 1
	}
	switch ra {
	case 0:
		return 0
	case 1:
		x, y := a.Num(), b.Num()
		switch {
		case x < y:
			return -1
		case x > y:
			return 1
		}
		return 0
	case 2:
		return strings.Compare(a.S, b.S)
	default:
		x, y := a.B, b.B
		for i := 0; i < len(x) && i < len(y); i++ {
			if x[i] != y[i] {
				if x[i] < y[i] {
					return -1
				}
				return 1
			}
		}
		switch {
		case len(x) < len(y):
			return -1
		case len(x) > len(y):
			return 1
		}
		return 0
	}
}

// --- Record serialisation ---------------------------------------------------

// EncodeRecord serialises a row of values.
func EncodeRecord(vals []Value) []byte {
	out := make([]byte, 0, 16*len(vals)+2)
	out = binary.LittleEndian.AppendUint16(out, uint16(len(vals)))
	for _, v := range vals {
		out = append(out, byte(v.Kind))
		switch v.Kind {
		case KInt:
			out = binary.LittleEndian.AppendUint64(out, uint64(v.I))
		case KReal:
			out = binary.LittleEndian.AppendUint64(out, math.Float64bits(v.R))
		case KText:
			out = binary.LittleEndian.AppendUint32(out, uint32(len(v.S)))
			out = append(out, v.S...)
		case KBlob:
			out = binary.LittleEndian.AppendUint32(out, uint32(len(v.B)))
			out = append(out, v.B...)
		}
	}
	return out
}

// DecodeRecord parses a serialised row.
func DecodeRecord(b []byte) ([]Value, error) {
	if len(b) < 2 {
		return nil, fmt.Errorf("sqldb: record too short")
	}
	n := int(binary.LittleEndian.Uint16(b))
	b = b[2:]
	vals := make([]Value, 0, n)
	for i := 0; i < n; i++ {
		if len(b) < 1 {
			return nil, fmt.Errorf("sqldb: truncated record")
		}
		k := Kind(b[0])
		b = b[1:]
		switch k {
		case KNull:
			vals = append(vals, Null())
		case KInt:
			if len(b) < 8 {
				return nil, fmt.Errorf("sqldb: truncated int")
			}
			vals = append(vals, Int(int64(binary.LittleEndian.Uint64(b))))
			b = b[8:]
		case KReal:
			if len(b) < 8 {
				return nil, fmt.Errorf("sqldb: truncated real")
			}
			vals = append(vals, Real(math.Float64frombits(binary.LittleEndian.Uint64(b))))
			b = b[8:]
		case KText, KBlob:
			if len(b) < 4 {
				return nil, fmt.Errorf("sqldb: truncated length")
			}
			l := int(binary.LittleEndian.Uint32(b))
			b = b[4:]
			if len(b) < l {
				return nil, fmt.Errorf("sqldb: truncated payload")
			}
			if k == KText {
				vals = append(vals, Text(string(b[:l])))
			} else {
				blob := make([]byte, l)
				copy(blob, b[:l])
				vals = append(vals, Blob(blob))
			}
			b = b[l:]
		default:
			return nil, fmt.Errorf("sqldb: bad value kind %d", k)
		}
	}
	return vals, nil
}

// --- Order-preserving index key encoding -------------------------------------

// EncodeKey produces a byte string whose lexicographic order matches
// Compare-order over the value tuple. Used for index B+tree keys.
func EncodeKey(vals []Value) []byte {
	out := make([]byte, 0, 16*len(vals))
	for _, v := range vals {
		switch v.Kind {
		case KNull:
			out = append(out, 0x00)
		case KInt, KReal:
			out = append(out, 0x01)
			bits := math.Float64bits(v.Num())
			// Flip for total order: positive floats get the sign bit set,
			// negatives are fully inverted.
			if bits&(1<<63) != 0 {
				bits = ^bits
			} else {
				bits |= 1 << 63
			}
			out = binary.BigEndian.AppendUint64(out, bits)
		case KText:
			out = append(out, 0x02)
			// 0x00 bytes are escaped as 0x00 0xFF; terminator 0x00 0x00.
			for i := 0; i < len(v.S); i++ {
				c := v.S[i]
				out = append(out, c)
				if c == 0x00 {
					out = append(out, 0xFF)
				}
			}
			out = append(out, 0x00, 0x00)
		case KBlob:
			out = append(out, 0x03)
			for _, c := range v.B {
				out = append(out, c)
				if c == 0x00 {
					out = append(out, 0xFF)
				}
			}
			out = append(out, 0x00, 0x00)
		}
	}
	return out
}
