package sqldb

import (
	"fmt"
	"strings"
)

// Result is the outcome of one statement.
type Result struct {
	Cols         []string
	Rows         [][]Value
	RowsAffected int64
	LastRowid    int64
}

// execErr unwinds execution errors inside the evaluator.
type execErr struct{ err error }

func fail(format string, args ...any) {
	panic(execErr{fmt.Errorf("sqldb: "+format, args...)})
}

// tblCtx is one table binding in the current row context.
type tblCtx struct {
	alias string
	tbl   *Table
	vals  []Value
	rowid int64
}

// rowCtx is the evaluation context: bound tables plus an optional parent
// (for correlated subqueries).
type rowCtx struct {
	tables []*tblCtx
	parent *rowCtx
}

// resolve finds (table, column) for a column reference.
func (rc *rowCtx) resolve(table, name string) (Value, bool) {
	for c := rc; c != nil; c = c.parent {
		for _, t := range c.tables {
			if table != "" && !strings.EqualFold(t.alias, table) {
				continue
			}
			if strings.EqualFold(name, "rowid") {
				return Int(t.rowid), true
			}
			if i := t.tbl.ColIndex(name); i >= 0 {
				if t.tbl.RowidCol == i {
					return Int(t.rowid), true
				}
				if i < len(t.vals) {
					return t.vals[i], true
				}
				return Null(), true // column added after the row was written
			}
		}
	}
	return Value{}, false
}

// aggState accumulates one aggregate function over a group.
type aggState struct {
	fn    string
	count int64
	sum   float64
	sumI  int64
	isInt bool
	min   Value
	max   Value
	seen  bool
}

func (a *aggState) add(v Value) {
	if v.IsNull() {
		return
	}
	a.count++
	switch v.Kind {
	case KInt:
		a.sumI += v.I
		a.sum += float64(v.I)
	default:
		a.isInt = false
		a.sum += v.Num()
	}
	if !a.seen {
		a.min, a.max, a.seen = v, v, true
		return
	}
	if Compare(v, a.min) < 0 {
		a.min = v
	}
	if Compare(v, a.max) > 0 {
		a.max = v
	}
}

func (a *aggState) result() Value {
	switch a.fn {
	case "count":
		return Int(a.count)
	case "sum", "total":
		if a.count == 0 {
			if a.fn == "total" {
				return Real(0)
			}
			return Null()
		}
		if a.isInt {
			return Int(a.sumI)
		}
		return Real(a.sum)
	case "avg":
		if a.count == 0 {
			return Null()
		}
		return Real(a.sum / float64(a.count))
	case "min":
		if !a.seen {
			return Null()
		}
		return a.min
	case "max":
		if !a.seen {
			return Null()
		}
		return a.max
	}
	return Null()
}

func isAggFn(name string) bool {
	switch name {
	case "count", "sum", "avg", "min", "max", "total":
		return true
	}
	return false
}

// hasAgg reports whether the expression contains an aggregate call.
func hasAgg(e Expr) bool {
	switch x := e.(type) {
	case *EFunc:
		if isAggFn(x.Name) {
			return true
		}
		for _, a := range x.Args {
			if hasAgg(a) {
				return true
			}
		}
	case *EBin:
		return hasAgg(x.L) || hasAgg(x.R)
	case *EUn:
		return hasAgg(x.E)
	case *EBetween:
		return hasAgg(x.E) || hasAgg(x.Lo) || hasAgg(x.Hi)
	case *EIn:
		if hasAgg(x.E) {
			return true
		}
		for _, le := range x.List {
			if hasAgg(le) {
				return true
			}
		}
	}
	return false
}

// likeMatch implements SQL LIKE (case-insensitive ASCII, % and _).
func likeMatch(pat, s string) bool {
	pat, s = strings.ToLower(pat), strings.ToLower(s)
	var match func(p, t string) bool
	match = func(p, t string) bool {
		for len(p) > 0 {
			switch p[0] {
			case '%':
				for len(p) > 0 && p[0] == '%' {
					p = p[1:]
				}
				if len(p) == 0 {
					return true
				}
				for i := 0; i <= len(t); i++ {
					if match(p, t[i:]) {
						return true
					}
				}
				return false
			case '_':
				if len(t) == 0 {
					return false
				}
				p, t = p[1:], t[1:]
			default:
				if len(t) == 0 || p[0] != t[0] {
					return false
				}
				p, t = p[1:], t[1:]
			}
		}
		return len(t) == 0
	}
	return match(pat, s)
}

// eval computes an expression in the given row context.
func (db *DB) eval(rc *rowCtx, e Expr) Value {
	db.e.Work(workRowFilter / 4)
	switch x := e.(type) {
	case *ELit:
		return x.V
	case *ECol:
		v, ok := rc.resolve(x.Table, x.Name)
		if !ok {
			fail("no such column %s", colName(x))
		}
		return v
	case *EUn:
		switch x.Op {
		case "NOT":
			v := db.eval(rc, x.E)
			if v.IsNull() {
				return Null()
			}
			return Bool(!v.Truthy())
		case "-":
			v := db.eval(rc, x.E)
			switch v.Kind {
			case KInt:
				return Int(-v.I)
			case KNull:
				return Null()
			default:
				return Real(-v.Num())
			}
		}
	case *EBetween:
		v := db.eval(rc, x.E)
		lo := db.eval(rc, x.Lo)
		hi := db.eval(rc, x.Hi)
		if v.IsNull() || lo.IsNull() || hi.IsNull() {
			return Null()
		}
		in := Compare(v, lo) >= 0 && Compare(v, hi) <= 0
		if x.Not {
			in = !in
		}
		return Bool(in)
	case *EIn:
		v := db.eval(rc, x.E)
		if v.IsNull() {
			return Null()
		}
		found := false
		if x.Sub != nil {
			res := db.execSelect(x.Sub, rc)
			for _, row := range res.Rows {
				if len(row) > 0 && !row[0].IsNull() && Compare(v, row[0]) == 0 {
					found = true
					break
				}
			}
		} else {
			for _, le := range x.List {
				lv := db.eval(rc, le)
				if !lv.IsNull() && Compare(v, lv) == 0 {
					found = true
					break
				}
			}
		}
		if x.Not {
			found = !found
		}
		return Bool(found)
	case *EBin:
		return db.evalBin(rc, x)
	case *EFunc:
		return db.evalFunc(rc, x)
	case *ESub:
		if x.cached != nil {
			return *x.cached
		}
		res := db.execSelect(x.Sel, rc)
		v := Null()
		if len(res.Rows) > 0 && len(res.Rows[0]) > 0 {
			v = res.Rows[0][0]
		}
		// SQLite flattens and caches uncorrelated scalar subqueries;
		// correlated ones must be re-evaluated per outer row.
		if !db.isCorrelated(x.Sel) {
			x.cached = &v
		}
		return v
	}
	fail("unsupported expression %T", e)
	return Null()
}

// isCorrelated reports whether the subquery references columns outside
// its own FROM scope (conservatively: any reference it cannot resolve
// against its own tables marks it correlated).
func (db *DB) isCorrelated(sel *SelectStmt) bool {
	aliases := map[string]bool{}
	var cols []*Table
	for _, fi := range sel.From {
		aliases[strings.ToLower(fi.Alias)] = true
		if t := db.cat.Table(fi.Table); t != nil {
			cols = append(cols, t)
		}
	}
	resolvable := func(c *ECol) bool {
		if c.Table != "" {
			return aliases[strings.ToLower(c.Table)]
		}
		if strings.EqualFold(c.Name, "rowid") {
			return len(cols) > 0
		}
		for _, t := range cols {
			if t.ColIndex(c.Name) >= 0 {
				return true
			}
		}
		return false
	}
	correlated := false
	var walk func(e Expr)
	walk = func(e Expr) {
		if correlated || e == nil {
			return
		}
		switch x := e.(type) {
		case *ECol:
			if !resolvable(x) {
				correlated = true
			}
		case *EBin:
			walk(x.L)
			walk(x.R)
		case *EUn:
			walk(x.E)
		case *EBetween:
			walk(x.E)
			walk(x.Lo)
			walk(x.Hi)
		case *EFunc:
			for _, a := range x.Args {
				walk(a)
			}
		case *EIn:
			walk(x.E)
			for _, le := range x.List {
				walk(le)
			}
			if x.Sub != nil && db.isCorrelated(x.Sub) {
				correlated = true
			}
		case *ESub:
			// A nested subquery resolving against its own scope is fine;
			// treat unresolved nesting conservatively as correlated.
			if db.isCorrelated(x.Sel) {
				correlated = true
			}
		}
	}
	for _, c := range sel.Cols {
		if !c.Star {
			walk(c.Expr)
		}
	}
	walk(sel.Where)
	for _, g := range sel.GroupBy {
		walk(g)
	}
	for _, o := range sel.OrderBy {
		walk(o.Expr)
	}
	return correlated
}

func colName(c *ECol) string {
	if c.Table != "" {
		return c.Table + "." + c.Name
	}
	return c.Name
}

func (db *DB) evalBin(rc *rowCtx, x *EBin) Value {
	switch x.Op {
	case "AND":
		l := db.eval(rc, x.L)
		if !l.IsNull() && !l.Truthy() {
			return Bool(false)
		}
		r := db.eval(rc, x.R)
		if !r.IsNull() && !r.Truthy() {
			return Bool(false)
		}
		if l.IsNull() || r.IsNull() {
			return Null()
		}
		return Bool(true)
	case "OR":
		l := db.eval(rc, x.L)
		if !l.IsNull() && l.Truthy() {
			return Bool(true)
		}
		r := db.eval(rc, x.R)
		if !r.IsNull() && r.Truthy() {
			return Bool(true)
		}
		if l.IsNull() || r.IsNull() {
			return Null()
		}
		return Bool(false)
	case "IS NULL":
		l := db.eval(rc, x.L)
		want := db.eval(rc, x.R).Truthy() // true = IS NULL, false = IS NOT NULL
		return Bool(l.IsNull() == want)
	}
	l := db.eval(rc, x.L)
	r := db.eval(rc, x.R)
	switch x.Op {
	case "=", "!=", "<", "<=", ">", ">=":
		if l.IsNull() || r.IsNull() {
			return Null()
		}
		cmp := Compare(l, r)
		switch x.Op {
		case "=":
			return Bool(cmp == 0)
		case "!=":
			return Bool(cmp != 0)
		case "<":
			return Bool(cmp < 0)
		case "<=":
			return Bool(cmp <= 0)
		case ">":
			return Bool(cmp > 0)
		default:
			return Bool(cmp >= 0)
		}
	case "LIKE":
		if l.IsNull() || r.IsNull() {
			return Null()
		}
		return Bool(likeMatch(r.String(), l.String()))
	case "||":
		if l.IsNull() || r.IsNull() {
			return Null()
		}
		return Text(l.String() + r.String())
	case "+", "-", "*", "/", "%":
		if l.IsNull() || r.IsNull() {
			return Null()
		}
		if l.Kind == KInt && r.Kind == KInt {
			switch x.Op {
			case "+":
				return Int(l.I + r.I)
			case "-":
				return Int(l.I - r.I)
			case "*":
				return Int(l.I * r.I)
			case "/":
				if r.I == 0 {
					return Null()
				}
				return Int(l.I / r.I)
			case "%":
				if r.I == 0 {
					return Null()
				}
				return Int(l.I % r.I)
			}
		}
		a, b := l.Num(), r.Num()
		switch x.Op {
		case "+":
			return Real(a + b)
		case "-":
			return Real(a - b)
		case "*":
			return Real(a * b)
		case "/":
			if b == 0 {
				return Null()
			}
			return Real(a / b)
		case "%":
			if b == 0 {
				return Null()
			}
			return Int(int64(a) % int64(b))
		}
	}
	fail("unsupported operator %q", x.Op)
	return Null()
}

func (db *DB) evalFunc(rc *rowCtx, x *EFunc) Value {
	if isAggFn(x.Name) {
		fail("aggregate %s used outside an aggregate query", x.Name)
	}
	args := make([]Value, len(x.Args))
	for i, a := range x.Args {
		args[i] = db.eval(rc, a)
	}
	switch x.Name {
	case "length":
		if args[0].IsNull() {
			return Null()
		}
		if args[0].Kind == KBlob {
			return Int(int64(len(args[0].B)))
		}
		return Int(int64(len(args[0].String())))
	case "abs":
		v := args[0]
		switch v.Kind {
		case KInt:
			if v.I < 0 {
				return Int(-v.I)
			}
			return v
		case KNull:
			return Null()
		default:
			n := v.Num()
			if n < 0 {
				n = -n
			}
			return Real(n)
		}
	case "upper":
		return Text(strings.ToUpper(args[0].String()))
	case "lower":
		return Text(strings.ToLower(args[0].String()))
	case "substr":
		s := args[0].String()
		start := int(args[1].Num()) - 1
		if start < 0 {
			start = 0
		}
		if start > len(s) {
			return Text("")
		}
		end := len(s)
		if len(args) > 2 {
			end = start + int(args[2].Num())
			if end > len(s) {
				end = len(s)
			}
		}
		return Text(s[start:end])
	case "coalesce", "ifnull":
		for _, a := range args {
			if !a.IsNull() {
				return a
			}
		}
		return Null()
	case "random":
		return Int(int64(db.nextRand()))
	case "typeof":
		switch args[0].Kind {
		case KNull:
			return Text("null")
		case KInt:
			return Text("integer")
		case KReal:
			return Text("real")
		case KText:
			return Text("text")
		default:
			return Text("blob")
		}
	}
	fail("no such function %s", x.Name)
	return Null()
}
