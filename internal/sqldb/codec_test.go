package sqldb

import (
	"bytes"
	"math"
	"math/rand"
	"testing"
	"testing/quick"
)

// genValue produces an arbitrary Value from fuzz bytes.
func genValue(rng *rand.Rand) Value {
	switch rng.Intn(5) {
	case 0:
		return Null()
	case 1:
		return Int(rng.Int63() - rng.Int63())
	case 2:
		return Real(math.Float64frombits(rng.Uint64() &^ (0x7FF << 52))) // avoid NaN/Inf
	case 3:
		n := rng.Intn(40)
		b := make([]byte, n)
		for i := range b {
			b[i] = byte(rng.Intn(128))
		}
		return Text(string(b))
	default:
		n := rng.Intn(40)
		b := make([]byte, n)
		rng.Read(b)
		return Blob(b)
	}
}

// TestRecordRoundTrip: encode/decode is the identity on arbitrary rows.
func TestRecordRoundTrip(t *testing.T) {
	f := func(seed int64, ncols uint8) bool {
		rng := rand.New(rand.NewSource(seed))
		n := int(ncols % 12)
		vals := make([]Value, n)
		for i := range vals {
			vals[i] = genValue(rng)
		}
		got, err := DecodeRecord(EncodeRecord(vals))
		if err != nil {
			return false
		}
		if len(got) != n {
			return false
		}
		for i := range vals {
			if Compare(vals[i], got[i]) != 0 || vals[i].Kind != got[i].Kind {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Error(err)
	}
}

// TestDecodeRecordRejectsGarbage: random bytes either decode cleanly or
// error — never panic.
func TestDecodeRecordRejectsGarbage(t *testing.T) {
	f := func(raw []byte) bool {
		_, _ = DecodeRecord(raw)
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 500}); err != nil {
		t.Error(err)
	}
}

// TestEncodeKeyOrderPreserving: the index key encoding's lexicographic
// order must match Compare order on single values.
func TestEncodeKeyOrderPreserving(t *testing.T) {
	f := func(seedA, seedB int64) bool {
		a := genValue(rand.New(rand.NewSource(seedA)))
		b := genValue(rand.New(rand.NewSource(seedB)))
		cmpV := Compare(a, b)
		cmpK := bytes.Compare(EncodeKey([]Value{a}), EncodeKey([]Value{b}))
		if cmpV == 0 {
			// Int/Real of equal numeric value may encode identically;
			// equal Compare must never produce inverted keys.
			return true
		}
		return (cmpV < 0) == (cmpK < 0) && cmpK != 0 || (cmpV < 0) == (cmpK <= 0)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 1000}); err != nil {
		t.Error(err)
	}
}

// TestEncodeKeyTupleOrder: tuple ordering is component-wise.
func TestEncodeKeyTupleOrder(t *testing.T) {
	low := EncodeKey([]Value{Int(5), Text("a")})
	high := EncodeKey([]Value{Int(5), Text("b")})
	if bytes.Compare(low, high) >= 0 {
		t.Error("tuple second component does not order")
	}
	lower := EncodeKey([]Value{Int(4), Text("zzz")})
	if bytes.Compare(lower, low) >= 0 {
		t.Error("tuple first component does not dominate")
	}
}

// TestEncodeKeyTextWithNULs: embedded zero bytes must not break ordering
// (the escape scheme).
func TestEncodeKeyTextWithNULs(t *testing.T) {
	a := EncodeKey([]Value{Text("a")})
	b := EncodeKey([]Value{Text("a\x00")})
	c := EncodeKey([]Value{Text("a\x00b")})
	if !(bytes.Compare(a, b) < 0 && bytes.Compare(b, c) < 0) {
		t.Error("NUL-embedded strings out of order")
	}
}

func TestCompareSemantics(t *testing.T) {
	// SQLite storage-class ordering: NULL < numbers < text < blob.
	order := []Value{Null(), Int(-5), Real(3.5), Int(10), Text("abc"), Blob([]byte{1})}
	for i := 0; i < len(order)-1; i++ {
		if Compare(order[i], order[i+1]) >= 0 {
			t.Errorf("order[%d] (%v) not < order[%d] (%v)", i, order[i], i+1, order[i+1])
		}
	}
	// Int/Real compare numerically.
	if Compare(Int(2), Real(2.0)) != 0 {
		t.Error("2 != 2.0")
	}
	if Compare(Real(1.5), Int(2)) != -1 {
		t.Error("1.5 !< 2")
	}
}

func TestLikeMatch(t *testing.T) {
	cases := []struct {
		pat, s string
		want   bool
	}{
		{"abc", "abc", true},
		{"abc", "ABC", true}, // case-insensitive
		{"a%", "abcdef", true},
		{"%def", "abcdef", true},
		{"%cd%", "abcdef", true},
		{"a_c", "abc", true},
		{"a_c", "abbc", false},
		{"%", "", true},
		{"_", "", false},
		{"a%b%c", "aXXbYYc", true},
		{"a%b%c", "acb", false},
		{"", "", true},
		{"", "x", false},
	}
	for _, c := range cases {
		if got := likeMatch(c.pat, c.s); got != c.want {
			t.Errorf("likeMatch(%q, %q) = %v", c.pat, c.s, got)
		}
	}
}

// TestValueHelpers covers the scalar coercions.
func TestValueHelpers(t *testing.T) {
	if !Null().IsNull() || Int(0).IsNull() {
		t.Error("IsNull wrong")
	}
	if Int(0).Truthy() || !Int(2).Truthy() || !Real(0.5).Truthy() || Text("0").Truthy() || !Text("3").Truthy() {
		t.Error("Truthy wrong")
	}
	if Text("2.5").Num() != 2.5 || Int(7).Num() != 7 {
		t.Error("Num wrong")
	}
	if Bool(true).I != 1 || Bool(false).I != 0 {
		t.Error("Bool wrong")
	}
	if Int(42).String() != "42" || Text("x").String() != "x" || Null().String() != "NULL" {
		t.Error("String wrong")
	}
}
