package sqldb

import (
	"fmt"
	"strconv"
	"strings"
)

// --- Lexer -------------------------------------------------------------------

type tokKind int

const (
	tkEOF tokKind = iota
	tkIdent
	tkNumber
	tkString
	tkOp
)

type token struct {
	kind tokKind
	text string
}

type lexer struct {
	src  string
	pos  int
	toks []token
}

func lex(src string) ([]token, error) {
	l := &lexer{src: src}
	for l.pos < len(l.src) {
		c := l.src[l.pos]
		switch {
		case c == ' ' || c == '\t' || c == '\n' || c == '\r':
			l.pos++
		case c == '-' && l.pos+1 < len(l.src) && l.src[l.pos+1] == '-':
			for l.pos < len(l.src) && l.src[l.pos] != '\n' {
				l.pos++
			}
		case isDigit(c) || (c == '.' && l.pos+1 < len(l.src) && isDigit(l.src[l.pos+1])):
			start := l.pos
			for l.pos < len(l.src) && (isDigit(l.src[l.pos]) || l.src[l.pos] == '.' || l.src[l.pos] == 'e' || l.src[l.pos] == 'E' ||
				((l.src[l.pos] == '+' || l.src[l.pos] == '-') && l.pos > start && (l.src[l.pos-1] == 'e' || l.src[l.pos-1] == 'E'))) {
				l.pos++
			}
			l.toks = append(l.toks, token{tkNumber, l.src[start:l.pos]})
		case c == '\'':
			l.pos++
			var sb strings.Builder
			for {
				if l.pos >= len(l.src) {
					return nil, fmt.Errorf("sql: unterminated string")
				}
				if l.src[l.pos] == '\'' {
					if l.pos+1 < len(l.src) && l.src[l.pos+1] == '\'' {
						sb.WriteByte('\'')
						l.pos += 2
						continue
					}
					l.pos++
					break
				}
				sb.WriteByte(l.src[l.pos])
				l.pos++
			}
			l.toks = append(l.toks, token{tkString, sb.String()})
		case isIdentStart(c):
			start := l.pos
			for l.pos < len(l.src) && isIdentPart(l.src[l.pos]) {
				l.pos++
			}
			l.toks = append(l.toks, token{tkIdent, l.src[start:l.pos]})
		default:
			// Multi-char operators first.
			for _, op := range []string{"<=", ">=", "<>", "!=", "==", "||"} {
				if strings.HasPrefix(l.src[l.pos:], op) {
					l.toks = append(l.toks, token{tkOp, op})
					l.pos += 2
					goto next
				}
			}
			if strings.ContainsRune("+-*/%=<>(),.;", rune(c)) {
				l.toks = append(l.toks, token{tkOp, string(c)})
				l.pos++
			} else {
				return nil, fmt.Errorf("sql: unexpected character %q", c)
			}
		next:
		}
	}
	l.toks = append(l.toks, token{tkEOF, ""})
	return l.toks, nil
}

func isDigit(c byte) bool      { return c >= '0' && c <= '9' }
func isIdentStart(c byte) bool { return c == '_' || (c >= 'a' && c <= 'z') || (c >= 'A' && c <= 'Z') }
func isIdentPart(c byte) bool  { return isIdentStart(c) || isDigit(c) }

// --- AST ---------------------------------------------------------------------

// Expr is a SQL expression node.
type Expr interface{}

// ELit is a literal value.
type ELit struct{ V Value }

// ECol is a column reference, optionally table-qualified.
type ECol struct{ Table, Name string }

// EBin is a binary operation.
type EBin struct {
	Op   string
	L, R Expr
}

// EUn is a unary operation (NOT, -).
type EUn struct {
	Op string
	E  Expr
}

// EFunc is a function call; Star marks count(*).
type EFunc struct {
	Name string
	Args []Expr
	Star bool
}

// ESub is a scalar subquery. Uncorrelated subqueries are evaluated once
// per statement execution and cached (ASTs are not shared across
// statement executions).
type ESub struct {
	Sel    *SelectStmt
	cached *Value
}

// EIn is x [NOT] IN (e1, e2, ...) or x [NOT] IN (SELECT ...).
type EIn struct {
	E    Expr
	List []Expr
	Sub  *SelectStmt
	Not  bool
}

// EBetween is x BETWEEN lo AND hi (negated when Not).
type EBetween struct {
	E, Lo, Hi Expr
	Not       bool
}

// SelectCol is one result column.
type SelectCol struct {
	Expr  Expr
	Alias string
	Star  bool
}

// FromItem is one table in the FROM clause.
type FromItem struct {
	Table string
	Alias string
}

// OrderItem is one ORDER BY term.
type OrderItem struct {
	Expr Expr
	Desc bool
}

// SelectStmt is a SELECT statement.
type SelectStmt struct {
	Distinct bool
	Cols     []SelectCol
	From     []FromItem
	Where    Expr
	GroupBy  []Expr
	Having   Expr
	OrderBy  []OrderItem
	Limit    int64 // -1 = none
}

// InsertStmt is INSERT [OR REPLACE] INTO.
type InsertStmt struct {
	Table   string
	Cols    []string
	Rows    [][]Expr
	Replace bool
	// FromSelect supports INSERT INTO t SELECT ...
	FromSelect *SelectStmt
}

// UpdateStmt is UPDATE ... SET ... [WHERE].
type UpdateStmt struct {
	Table string
	Sets  []struct {
		Col string
		E   Expr
	}
	Where Expr
}

// DeleteStmt is DELETE FROM ... [WHERE].
type DeleteStmt struct {
	Table string
	Where Expr
}

// CreateTableStmt is CREATE TABLE.
type CreateTableStmt struct {
	Name     string
	Cols     []Column
	RowidCol int
}

// CreateIndexStmt is CREATE [UNIQUE] INDEX.
type CreateIndexStmt struct {
	Name   string
	Table  string
	Cols   []string
	Unique bool
}

// DropStmt drops a table or index.
type DropStmt struct {
	Kind string // "table" or "index"
	Name string
}

// AlterAddColumnStmt is ALTER TABLE t ADD COLUMN.
type AlterAddColumnStmt struct {
	Table string
	Col   Column
}

// TxnStmt is BEGIN/COMMIT/ROLLBACK.
type TxnStmt struct{ Kind string }

// PragmaStmt is PRAGMA name.
type PragmaStmt struct{ Name string }

// --- Parser ------------------------------------------------------------------

type parser struct {
	toks []token
	pos  int
}

// Parse parses one SQL statement.
func Parse(src string) (any, error) {
	toks, err := lex(src)
	if err != nil {
		return nil, err
	}
	p := &parser{toks: toks}
	stmt, err := p.statement()
	if err != nil {
		return nil, err
	}
	p.accept(tkOp, ";")
	if p.peek().kind != tkEOF {
		return nil, fmt.Errorf("sql: trailing tokens at %q", p.peek().text)
	}
	return stmt, nil
}

func (p *parser) peek() token { return p.toks[p.pos] }

func (p *parser) next() token {
	t := p.toks[p.pos]
	if t.kind != tkEOF {
		p.pos++
	}
	return t
}

// acceptKw consumes a keyword (case-insensitive) if present.
func (p *parser) acceptKw(kw string) bool {
	t := p.peek()
	if t.kind == tkIdent && strings.EqualFold(t.text, kw) {
		p.pos++
		return true
	}
	return false
}

func (p *parser) expectKw(kw string) error {
	if !p.acceptKw(kw) {
		return fmt.Errorf("sql: expected %s, got %q", kw, p.peek().text)
	}
	return nil
}

func (p *parser) accept(kind tokKind, text string) bool {
	t := p.peek()
	if t.kind == kind && t.text == text {
		p.pos++
		return true
	}
	return false
}

func (p *parser) expectOp(op string) error {
	if !p.accept(tkOp, op) {
		return fmt.Errorf("sql: expected %q, got %q", op, p.peek().text)
	}
	return nil
}

func (p *parser) ident() (string, error) {
	t := p.peek()
	if t.kind != tkIdent {
		return "", fmt.Errorf("sql: expected identifier, got %q", t.text)
	}
	p.pos++
	return t.text, nil
}

func (p *parser) statement() (any, error) {
	t := p.peek()
	if t.kind != tkIdent {
		return nil, fmt.Errorf("sql: expected statement, got %q", t.text)
	}
	switch strings.ToUpper(t.text) {
	case "SELECT":
		return p.selectStmt()
	case "INSERT", "REPLACE":
		return p.insertStmt()
	case "UPDATE":
		return p.updateStmt()
	case "DELETE":
		return p.deleteStmt()
	case "CREATE":
		return p.createStmt()
	case "DROP":
		return p.dropStmt()
	case "ALTER":
		return p.alterStmt()
	case "BEGIN":
		p.pos++
		p.acceptKw("TRANSACTION")
		return &TxnStmt{Kind: "begin"}, nil
	case "COMMIT", "END":
		p.pos++
		p.acceptKw("TRANSACTION")
		return &TxnStmt{Kind: "commit"}, nil
	case "ROLLBACK":
		p.pos++
		return &TxnStmt{Kind: "rollback"}, nil
	case "PRAGMA":
		p.pos++
		name, err := p.ident()
		if err != nil {
			return nil, err
		}
		return &PragmaStmt{Name: strings.ToLower(name)}, nil
	}
	return nil, fmt.Errorf("sql: unsupported statement %q", t.text)
}

func (p *parser) selectStmt() (*SelectStmt, error) {
	if err := p.expectKw("SELECT"); err != nil {
		return nil, err
	}
	s := &SelectStmt{Limit: -1}
	if p.acceptKw("DISTINCT") {
		s.Distinct = true
	} else {
		p.acceptKw("ALL")
	}
	for {
		if p.accept(tkOp, "*") {
			s.Cols = append(s.Cols, SelectCol{Star: true})
		} else {
			e, err := p.expr()
			if err != nil {
				return nil, err
			}
			col := SelectCol{Expr: e}
			if p.acceptKw("AS") {
				a, err := p.ident()
				if err != nil {
					return nil, err
				}
				col.Alias = a
			}
			s.Cols = append(s.Cols, col)
		}
		if !p.accept(tkOp, ",") {
			break
		}
	}
	if p.acceptKw("FROM") {
		fromItem := func() error {
			name, err := p.ident()
			if err != nil {
				return err
			}
			fi := FromItem{Table: name, Alias: name}
			if t := p.peek(); t.kind == tkIdent && !isKeyword(t.text) {
				fi.Alias = t.text
				p.pos++
			}
			s.From = append(s.From, fi)
			return nil
		}
		if err := fromItem(); err != nil {
			return nil, err
		}
	fromLoop:
		for {
			switch {
			case p.accept(tkOp, ","):
				if err := fromItem(); err != nil {
					return nil, err
				}
			case p.acceptKw("JOIN"), p.acceptKw("INNER"):
				// "INNER" must be followed by JOIN; plain "JOIN" already
				// consumed it.
				if strings.EqualFold(p.toks[p.pos-1].text, "INNER") {
					if err := p.expectKw("JOIN"); err != nil {
						return nil, err
					}
				}
				if err := fromItem(); err != nil {
					return nil, err
				}
				if p.acceptKw("ON") {
					on, err := p.expr()
					if err != nil {
						return nil, err
					}
					if s.Where == nil {
						s.Where = on
					} else {
						s.Where = &EBin{Op: "AND", L: s.Where, R: on}
					}
				}
			default:
				break fromLoop
			}
		}
	}
	if p.acceptKw("WHERE") {
		w, err := p.expr()
		if err != nil {
			return nil, err
		}
		if s.Where == nil {
			s.Where = w
		} else {
			s.Where = &EBin{Op: "AND", L: s.Where, R: w}
		}
	}
	if p.acceptKw("GROUP") {
		if err := p.expectKw("BY"); err != nil {
			return nil, err
		}
		for {
			e, err := p.expr()
			if err != nil {
				return nil, err
			}
			s.GroupBy = append(s.GroupBy, e)
			if !p.accept(tkOp, ",") {
				break
			}
		}
	}
	if p.acceptKw("HAVING") {
		h, err := p.expr()
		if err != nil {
			return nil, err
		}
		s.Having = h
	}
	if p.acceptKw("ORDER") {
		if err := p.expectKw("BY"); err != nil {
			return nil, err
		}
		for {
			e, err := p.expr()
			if err != nil {
				return nil, err
			}
			oi := OrderItem{Expr: e}
			if p.acceptKw("DESC") {
				oi.Desc = true
			} else {
				p.acceptKw("ASC")
			}
			s.OrderBy = append(s.OrderBy, oi)
			if !p.accept(tkOp, ",") {
				break
			}
		}
	}
	if p.acceptKw("LIMIT") {
		e, err := p.expr()
		if err != nil {
			return nil, err
		}
		lit, ok := e.(*ELit)
		if !ok || lit.V.Kind != KInt {
			return nil, fmt.Errorf("sql: LIMIT must be an integer literal")
		}
		s.Limit = lit.V.I
	}
	return s, nil
}

var keywords = map[string]bool{
	"SELECT": true, "FROM": true, "WHERE": true, "GROUP": true, "BY": true,
	"ORDER": true, "LIMIT": true, "JOIN": true, "INNER": true, "ON": true,
	"AND": true, "OR": true, "NOT": true, "AS": true, "ASC": true, "DESC": true,
	"INSERT": true, "INTO": true, "VALUES": true, "UPDATE": true, "SET": true,
	"DELETE": true, "CREATE": true, "DROP": true, "TABLE": true, "INDEX": true,
	"UNIQUE": true, "BEGIN": true, "COMMIT": true, "ROLLBACK": true,
	"LIKE": true, "BETWEEN": true, "IS": true, "NULL": true, "IN": true,
	"PRIMARY": true, "KEY": true, "REPLACE": true, "ALTER": true, "ADD": true,
	"COLUMN": true, "PRAGMA": true, "HAVING": true, "DISTINCT": true, "ALL": true,
	"UNION": true, "END": true, "TRANSACTION": true,
}

func isKeyword(s string) bool { return keywords[strings.ToUpper(s)] }

func (p *parser) insertStmt() (*InsertStmt, error) {
	s := &InsertStmt{}
	if p.acceptKw("REPLACE") {
		s.Replace = true
	} else {
		if err := p.expectKw("INSERT"); err != nil {
			return nil, err
		}
		if p.acceptKw("OR") {
			if err := p.expectKw("REPLACE"); err != nil {
				return nil, err
			}
			s.Replace = true
		}
	}
	if err := p.expectKw("INTO"); err != nil {
		return nil, err
	}
	name, err := p.ident()
	if err != nil {
		return nil, err
	}
	s.Table = name
	if p.accept(tkOp, "(") {
		for {
			col, err := p.ident()
			if err != nil {
				return nil, err
			}
			s.Cols = append(s.Cols, col)
			if !p.accept(tkOp, ",") {
				break
			}
		}
		if err := p.expectOp(")"); err != nil {
			return nil, err
		}
	}
	if p.peek().kind == tkIdent && strings.EqualFold(p.peek().text, "SELECT") {
		sub, err := p.selectStmt()
		if err != nil {
			return nil, err
		}
		s.FromSelect = sub
		return s, nil
	}
	if err := p.expectKw("VALUES"); err != nil {
		return nil, err
	}
	for {
		if err := p.expectOp("("); err != nil {
			return nil, err
		}
		var row []Expr
		for {
			e, err := p.expr()
			if err != nil {
				return nil, err
			}
			row = append(row, e)
			if !p.accept(tkOp, ",") {
				break
			}
		}
		if err := p.expectOp(")"); err != nil {
			return nil, err
		}
		s.Rows = append(s.Rows, row)
		if !p.accept(tkOp, ",") {
			break
		}
	}
	return s, nil
}

func (p *parser) updateStmt() (*UpdateStmt, error) {
	if err := p.expectKw("UPDATE"); err != nil {
		return nil, err
	}
	name, err := p.ident()
	if err != nil {
		return nil, err
	}
	s := &UpdateStmt{Table: name}
	if err := p.expectKw("SET"); err != nil {
		return nil, err
	}
	for {
		col, err := p.ident()
		if err != nil {
			return nil, err
		}
		if err := p.expectOp("="); err != nil {
			return nil, err
		}
		e, err := p.expr()
		if err != nil {
			return nil, err
		}
		s.Sets = append(s.Sets, struct {
			Col string
			E   Expr
		}{col, e})
		if !p.accept(tkOp, ",") {
			break
		}
	}
	if p.acceptKw("WHERE") {
		w, err := p.expr()
		if err != nil {
			return nil, err
		}
		s.Where = w
	}
	return s, nil
}

func (p *parser) deleteStmt() (*DeleteStmt, error) {
	if err := p.expectKw("DELETE"); err != nil {
		return nil, err
	}
	if err := p.expectKw("FROM"); err != nil {
		return nil, err
	}
	name, err := p.ident()
	if err != nil {
		return nil, err
	}
	s := &DeleteStmt{Table: name}
	if p.acceptKw("WHERE") {
		w, err := p.expr()
		if err != nil {
			return nil, err
		}
		s.Where = w
	}
	return s, nil
}

func (p *parser) createStmt() (any, error) {
	if err := p.expectKw("CREATE"); err != nil {
		return nil, err
	}
	unique := p.acceptKw("UNIQUE")
	if p.acceptKw("INDEX") {
		name, err := p.ident()
		if err != nil {
			return nil, err
		}
		if err := p.expectKw("ON"); err != nil {
			return nil, err
		}
		table, err := p.ident()
		if err != nil {
			return nil, err
		}
		if err := p.expectOp("("); err != nil {
			return nil, err
		}
		var cols []string
		for {
			c, err := p.ident()
			if err != nil {
				return nil, err
			}
			cols = append(cols, c)
			if !p.accept(tkOp, ",") {
				break
			}
		}
		if err := p.expectOp(")"); err != nil {
			return nil, err
		}
		return &CreateIndexStmt{Name: name, Table: table, Cols: cols, Unique: unique}, nil
	}
	if unique {
		return nil, fmt.Errorf("sql: UNIQUE only valid for indexes")
	}
	if err := p.expectKw("TABLE"); err != nil {
		return nil, err
	}
	name, err := p.ident()
	if err != nil {
		return nil, err
	}
	if err := p.expectOp("("); err != nil {
		return nil, err
	}
	s := &CreateTableStmt{Name: name, RowidCol: -1}
	for {
		cname, err := p.ident()
		if err != nil {
			return nil, err
		}
		col := Column{Name: cname, Type: "TEXT"}
		if t := p.peek(); t.kind == tkIdent && !isKeyword(t.text) {
			col.Type = strings.ToUpper(t.text)
			p.pos++
		}
		if p.acceptKw("PRIMARY") {
			if err := p.expectKw("KEY"); err != nil {
				return nil, err
			}
			if strings.EqualFold(col.Type, "INTEGER") {
				s.RowidCol = len(s.Cols)
			}
		}
		p.acceptKw("NOT") // tolerate NOT NULL
		p.acceptKw("NULL")
		s.Cols = append(s.Cols, col)
		if !p.accept(tkOp, ",") {
			break
		}
	}
	if err := p.expectOp(")"); err != nil {
		return nil, err
	}
	return s, nil
}

func (p *parser) dropStmt() (*DropStmt, error) {
	if err := p.expectKw("DROP"); err != nil {
		return nil, err
	}
	kind := ""
	switch {
	case p.acceptKw("TABLE"):
		kind = "table"
	case p.acceptKw("INDEX"):
		kind = "index"
	default:
		return nil, fmt.Errorf("sql: DROP must name TABLE or INDEX")
	}
	name, err := p.ident()
	if err != nil {
		return nil, err
	}
	return &DropStmt{Kind: kind, Name: name}, nil
}

func (p *parser) alterStmt() (*AlterAddColumnStmt, error) {
	if err := p.expectKw("ALTER"); err != nil {
		return nil, err
	}
	if err := p.expectKw("TABLE"); err != nil {
		return nil, err
	}
	table, err := p.ident()
	if err != nil {
		return nil, err
	}
	if err := p.expectKw("ADD"); err != nil {
		return nil, err
	}
	p.acceptKw("COLUMN")
	cname, err := p.ident()
	if err != nil {
		return nil, err
	}
	col := Column{Name: cname, Type: "TEXT"}
	if t := p.peek(); t.kind == tkIdent && !isKeyword(t.text) {
		col.Type = strings.ToUpper(t.text)
		p.pos++
	}
	return &AlterAddColumnStmt{Table: table, Col: col}, nil
}

// --- Expression parsing (precedence climbing) ---------------------------------

func (p *parser) expr() (Expr, error) { return p.exprOr() }

func (p *parser) exprOr() (Expr, error) {
	l, err := p.exprAnd()
	if err != nil {
		return nil, err
	}
	for p.acceptKw("OR") {
		r, err := p.exprAnd()
		if err != nil {
			return nil, err
		}
		l = &EBin{Op: "OR", L: l, R: r}
	}
	return l, nil
}

func (p *parser) exprAnd() (Expr, error) {
	l, err := p.exprNot()
	if err != nil {
		return nil, err
	}
	for p.acceptKw("AND") {
		r, err := p.exprNot()
		if err != nil {
			return nil, err
		}
		l = &EBin{Op: "AND", L: l, R: r}
	}
	return l, nil
}

func (p *parser) exprNot() (Expr, error) {
	if p.acceptKw("NOT") {
		e, err := p.exprNot()
		if err != nil {
			return nil, err
		}
		return &EUn{Op: "NOT", E: e}, nil
	}
	return p.exprCmp()
}

func (p *parser) exprCmp() (Expr, error) {
	l, err := p.exprAdd()
	if err != nil {
		return nil, err
	}
	for {
		switch {
		case p.accept(tkOp, "="), p.accept(tkOp, "=="):
			r, err := p.exprAdd()
			if err != nil {
				return nil, err
			}
			l = &EBin{Op: "=", L: l, R: r}
		case p.accept(tkOp, "!="), p.accept(tkOp, "<>"):
			r, err := p.exprAdd()
			if err != nil {
				return nil, err
			}
			l = &EBin{Op: "!=", L: l, R: r}
		case p.accept(tkOp, "<="):
			r, err := p.exprAdd()
			if err != nil {
				return nil, err
			}
			l = &EBin{Op: "<=", L: l, R: r}
		case p.accept(tkOp, ">="):
			r, err := p.exprAdd()
			if err != nil {
				return nil, err
			}
			l = &EBin{Op: ">=", L: l, R: r}
		case p.accept(tkOp, "<"):
			r, err := p.exprAdd()
			if err != nil {
				return nil, err
			}
			l = &EBin{Op: "<", L: l, R: r}
		case p.accept(tkOp, ">"):
			r, err := p.exprAdd()
			if err != nil {
				return nil, err
			}
			l = &EBin{Op: ">", L: l, R: r}
		case p.acceptKw("LIKE"):
			r, err := p.exprAdd()
			if err != nil {
				return nil, err
			}
			l = &EBin{Op: "LIKE", L: l, R: r}
		case p.acceptKw("IS"):
			not := p.acceptKw("NOT")
			if err := p.expectKw("NULL"); err != nil {
				return nil, err
			}
			l = &EBin{Op: "IS NULL", L: l, R: &ELit{V: Bool(!not)}}
		case p.acceptKw("BETWEEN"):
			lo, err := p.exprAdd()
			if err != nil {
				return nil, err
			}
			if err := p.expectKw("AND"); err != nil {
				return nil, err
			}
			hi, err := p.exprAdd()
			if err != nil {
				return nil, err
			}
			l = &EBetween{E: l, Lo: lo, Hi: hi}
		case p.acceptKw("IN"):
			in, err := p.inTail(l, false)
			if err != nil {
				return nil, err
			}
			l = in
		case p.acceptKw("NOT"):
			switch {
			case p.acceptKw("IN"):
				in, err := p.inTail(l, true)
				if err != nil {
					return nil, err
				}
				l = in
			case p.acceptKw("BETWEEN"):
				lo, err := p.exprAdd()
				if err != nil {
					return nil, err
				}
				if err := p.expectKw("AND"); err != nil {
					return nil, err
				}
				hi, err := p.exprAdd()
				if err != nil {
					return nil, err
				}
				l = &EBetween{E: l, Lo: lo, Hi: hi, Not: true}
			case p.acceptKw("LIKE"):
				r, err := p.exprAdd()
				if err != nil {
					return nil, err
				}
				l = &EUn{Op: "NOT", E: &EBin{Op: "LIKE", L: l, R: r}}
			default:
				return nil, fmt.Errorf("sql: expected IN, BETWEEN or LIKE after NOT, got %q", p.peek().text)
			}
		default:
			return l, nil
		}
	}
}

// inTail parses the parenthesised tail of an IN predicate.
func (p *parser) inTail(l Expr, not bool) (Expr, error) {
	if err := p.expectOp("("); err != nil {
		return nil, err
	}
	if p.peek().kind == tkIdent && strings.EqualFold(p.peek().text, "SELECT") {
		sub, err := p.selectStmt()
		if err != nil {
			return nil, err
		}
		if err := p.expectOp(")"); err != nil {
			return nil, err
		}
		return &EIn{E: l, Sub: sub, Not: not}, nil
	}
	var list []Expr
	for {
		e, err := p.expr()
		if err != nil {
			return nil, err
		}
		list = append(list, e)
		if !p.accept(tkOp, ",") {
			break
		}
	}
	if err := p.expectOp(")"); err != nil {
		return nil, err
	}
	return &EIn{E: l, List: list, Not: not}, nil
}

func (p *parser) exprAdd() (Expr, error) {
	l, err := p.exprMul()
	if err != nil {
		return nil, err
	}
	for {
		switch {
		case p.accept(tkOp, "+"):
			r, err := p.exprMul()
			if err != nil {
				return nil, err
			}
			l = &EBin{Op: "+", L: l, R: r}
		case p.accept(tkOp, "-"):
			r, err := p.exprMul()
			if err != nil {
				return nil, err
			}
			l = &EBin{Op: "-", L: l, R: r}
		case p.accept(tkOp, "||"):
			r, err := p.exprMul()
			if err != nil {
				return nil, err
			}
			l = &EBin{Op: "||", L: l, R: r}
		default:
			return l, nil
		}
	}
}

func (p *parser) exprMul() (Expr, error) {
	l, err := p.exprUnary()
	if err != nil {
		return nil, err
	}
	for {
		switch {
		case p.accept(tkOp, "*"):
			r, err := p.exprUnary()
			if err != nil {
				return nil, err
			}
			l = &EBin{Op: "*", L: l, R: r}
		case p.accept(tkOp, "/"):
			r, err := p.exprUnary()
			if err != nil {
				return nil, err
			}
			l = &EBin{Op: "/", L: l, R: r}
		case p.accept(tkOp, "%"):
			r, err := p.exprUnary()
			if err != nil {
				return nil, err
			}
			l = &EBin{Op: "%", L: l, R: r}
		default:
			return l, nil
		}
	}
}

func (p *parser) exprUnary() (Expr, error) {
	if p.accept(tkOp, "-") {
		e, err := p.exprUnary()
		if err != nil {
			return nil, err
		}
		if lit, ok := e.(*ELit); ok {
			switch lit.V.Kind {
			case KInt:
				return &ELit{V: Int(-lit.V.I)}, nil
			case KReal:
				return &ELit{V: Real(-lit.V.R)}, nil
			}
		}
		return &EUn{Op: "-", E: e}, nil
	}
	if p.accept(tkOp, "+") {
		return p.exprUnary()
	}
	return p.exprPrimary()
}

func (p *parser) exprPrimary() (Expr, error) {
	t := p.peek()
	switch t.kind {
	case tkNumber:
		p.pos++
		if strings.ContainsAny(t.text, ".eE") {
			f, err := strconv.ParseFloat(t.text, 64)
			if err != nil {
				return nil, fmt.Errorf("sql: bad number %q", t.text)
			}
			return &ELit{V: Real(f)}, nil
		}
		i, err := strconv.ParseInt(t.text, 10, 64)
		if err != nil {
			return nil, fmt.Errorf("sql: bad integer %q", t.text)
		}
		return &ELit{V: Int(i)}, nil
	case tkString:
		p.pos++
		return &ELit{V: Text(t.text)}, nil
	case tkOp:
		if t.text == "(" {
			p.pos++
			// Scalar subquery?
			if p.peek().kind == tkIdent && strings.EqualFold(p.peek().text, "SELECT") {
				sub, err := p.selectStmt()
				if err != nil {
					return nil, err
				}
				if err := p.expectOp(")"); err != nil {
					return nil, err
				}
				return &ESub{Sel: sub}, nil
			}
			e, err := p.expr()
			if err != nil {
				return nil, err
			}
			if err := p.expectOp(")"); err != nil {
				return nil, err
			}
			return e, nil
		}
	case tkIdent:
		switch strings.ToUpper(t.text) {
		case "NULL":
			p.pos++
			return &ELit{V: Null()}, nil
		case "TRUE":
			p.pos++
			return &ELit{V: Int(1)}, nil
		case "FALSE":
			p.pos++
			return &ELit{V: Int(0)}, nil
		}
		p.pos++
		name := t.text
		// Function call?
		if p.accept(tkOp, "(") {
			f := &EFunc{Name: strings.ToLower(name)}
			if p.accept(tkOp, "*") {
				f.Star = true
			} else if !p.accept(tkOp, ")") {
				for {
					a, err := p.expr()
					if err != nil {
						return nil, err
					}
					f.Args = append(f.Args, a)
					if !p.accept(tkOp, ",") {
						break
					}
				}
				if err := p.expectOp(")"); err != nil {
					return nil, err
				}
				return f, nil
			} else {
				return f, nil
			}
			if f.Star {
				if err := p.expectOp(")"); err != nil {
					return nil, err
				}
			}
			return f, nil
		}
		// Qualified column?
		if p.accept(tkOp, ".") {
			col, err := p.ident()
			if err != nil {
				return nil, err
			}
			return &ECol{Table: name, Name: col}, nil
		}
		return &ECol{Name: name}, nil
	}
	return nil, fmt.Errorf("sql: unexpected token %q", t.text)
}
