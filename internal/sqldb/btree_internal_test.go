package sqldb

import (
	"fmt"
	"testing"

	"cubicleos/internal/boot"
	"cubicleos/internal/cubicle"
	"cubicleos/internal/ramfs"
	"cubicleos/internal/vfscore"
)

// withPager boots a minimal system and hands fn a pager with the given
// cache capacity.
func withPager(t *testing.T, cacheCap int, fn func(p *Pager)) {
	t.Helper()
	s := boot.MustNewFS(boot.Config{Mode: cubicle.ModeUnikraft, Extra: []*cubicle.Component{{
		Name: "APP", Kind: cubicle.KindIsolated,
		Exports: []cubicle.ExportDecl{{Name: "main", Fn: func(e *cubicle.Env, a []uint64) []uint64 { return nil }}},
	}}})
	err := s.RunAs("APP", func(e *cubicle.Env) {
		vfs := vfscore.NewClient(s.M, s.Cubs["APP"].ID)
		vfs.InitBuffers(e, e.CubicleOf(ramfs.Name))
		ioBuf := e.HeapAlloc(PageSize)
		p, err := OpenPager(e, vfs, "/bt.db", ioBuf, cacheCap)
		if err != nil {
			t.Fatal(err)
		}
		fn(p)
	})
	if err != nil {
		t.Fatal(err)
	}
}

func TestIndexTreeDuplicateKeys(t *testing.T) {
	withPager(t, 16, func(p *Pager) {
		root := CreateIndexTree(p)
		tr := NewIndexTree(p, root)
		const n = 3000
		for i := 1; i <= n; i++ {
			key := EncodeKey([]Value{Int(int64(i % 97))})
			if err := tr.InsertKey(key, int64(i)); err != nil {
				t.Fatal(err)
			}
		}
		if problems := tr.Check(); len(problems) > 0 {
			t.Fatalf("integrity: %v", problems[:min(4, len(problems))])
		}
		for _, k := range []int64{0, 7, 50, 96} {
			want := 0
			for i := 1; i <= n; i++ {
				if int64(i%97) == k {
					want++
				}
			}
			key := EncodeKey([]Value{Int(k)})
			hi := append(append([]byte{}, key...), 0xFF)
			got := 0
			tr.ScanIndexRange(key, hi, func(kb []byte, rowid int64) bool {
				got++
				return true
			})
			if got != want {
				t.Errorf("k=%d: got %d entries, want %d", k, got, want)
			}
		}
		// Delete every third entry and recheck.
		for i := 3; i <= n; i += 3 {
			key := EncodeKey([]Value{Int(int64(i % 97))})
			if !tr.DeleteKey(key, int64(i)) {
				t.Fatalf("delete (%d,%d) missed", i%97, i)
			}
		}
		if problems := tr.Check(); len(problems) > 0 {
			t.Fatalf("integrity after delete: %v", problems[:min(4, len(problems))])
		}
	})
}

func TestTableTreeHeavy(t *testing.T) {
	withPager(t, 16, func(p *Pager) {
		root := CreateTableTree(p)
		tr := NewTableTree(p, root)
		const n = 4000
		// Interleaved ascending/descending inserts force splits at both
		// ends.
		for i := 0; i < n/2; i++ {
			rec := EncodeRecord([]Value{Int(int64(i)), Text(fmt.Sprintf("fwd-%d", i))})
			if err := tr.InsertRow(int64(i), rec); err != nil {
				t.Fatal(err)
			}
			j := n - 1 - i
			rec = EncodeRecord([]Value{Int(int64(j)), Text(fmt.Sprintf("rev-%d", j))})
			if err := tr.InsertRow(int64(j), rec); err != nil {
				t.Fatal(err)
			}
		}
		if problems := tr.Check(); len(problems) > 0 {
			t.Fatalf("integrity: %v", problems[:min(4, len(problems))])
		}
		count := 0
		last := int64(-1)
		tr.ScanTable(func(rowid int64, record []byte) bool {
			if rowid <= last {
				t.Fatalf("scan out of order: %d after %d", rowid, last)
			}
			last = rowid
			count++
			return true
		})
		if count != n {
			t.Fatalf("scan found %d rows, want %d", count, n)
		}
		if got := tr.GetRow(1234); got == nil {
			t.Fatal("GetRow(1234) missed")
		}
		if tr.MaxRowid() != n-1 {
			t.Fatalf("MaxRowid = %d", tr.MaxRowid())
		}
	})
}

func min(a, b int) int {
	if a < b {
		return a
	}
	return b
}
