package sqldb

import (
	"encoding/binary"
	"fmt"
	"sort"

	"cubicleos/internal/cubicle"
	"cubicleos/internal/vfscore"
	"cubicleos/internal/vm"
)

// PageSize is the database page size.
const PageSize = 4096

// Work model: the engine's CPU/memory work charged on the virtual clock.
const (
	workPageIO     = 250 // pager bookkeeping per page read/written
	workNodeSearch = 120 // B+tree node binary search base
	workPerCompare = 18
	workRecDecode  = 90
	workRecEncode  = 110
	workRowFilter  = 60 // expression evaluation per row
	workParseSQL   = 2500
)

// headerPage is the database header (page 1) layout:
//
//	[0:8)  magic "CUBIQLDB"
//	[8:12) page count
//	[12:16) catalog btree root page
//	[16:20) freelist head page (0 = empty)
var magic = [8]byte{'C', 'U', 'B', 'I', 'Q', 'L', 'D', 'B'}

// cpage is a cached page.
type cpage struct {
	pgno  uint32
	data  []byte
	dirty bool
	// lru is the last-touch tick.
	lru uint64
}

// PagerStats counts pager events for the experiment reports.
type PagerStats struct {
	Hits, Misses, Reads, Writes, Spills, JournalPages, Fsyncs, Commits uint64
	// Recoveries counts hot-journal rollbacks performed at open.
	Recoveries uint64
}

// Pager is the page cache plus rollback-journal transaction layer. All
// file I/O goes through the VFS client, staged in a window-shared buffer.
type Pager struct {
	e   *cubicle.Env
	vfs *vfscore.Client

	path    string
	fd      uint64
	jfd     uint64 // journal fd while a journal file exists
	ioBuf   vm.Addr
	cache   map[uint32]*cpage
	cap     int
	tick    uint64
	nPages  uint32
	catRoot uint32
	freeHd  uint32

	inTxn    bool
	origs    map[uint32][]byte // pre-transaction page images
	jWritten map[uint32]bool   // images already spilled to the journal file
	jOffset  uint64

	// Window discipline (the ported SQLite's CubicleOS-specific code,
	// §6.2): the I/O buffer's window is opened for the file-system
	// cubicles before each I/O call and closed again after, exactly as
	// Figure 4 does around RAMFS_WRITE.
	ioWid     cubicle.WID
	ioTargets []cubicle.ID

	Stats PagerStats
}

// SetWindowDiscipline makes the pager open/close the given window for the
// target cubicles around every file I/O call. This is the window
// management the paper's SQLite port adds (600 SLOC, §6.2).
func (p *Pager) SetWindowDiscipline(wid cubicle.WID, targets ...cubicle.ID) {
	p.ioWid = wid
	p.ioTargets = p.ioTargets[:0]
	for _, t := range targets {
		dup := false
		for _, have := range p.ioTargets {
			if have == t {
				dup = true
			}
		}
		if !dup {
			p.ioTargets = append(p.ioTargets, t)
		}
	}
}

// openIOWindow grants the FS stack access to the I/O buffer for one call.
func (p *Pager) openIOWindow() {
	for _, t := range p.ioTargets {
		p.e.WindowOpen(p.ioWid, t)
	}
}

// closeIOWindow revokes the grant (lazily, per causal tag consistency).
func (p *Pager) closeIOWindow() {
	for _, t := range p.ioTargets {
		p.e.WindowClose(p.ioWid, t)
	}
}

// OpenPager opens (or creates) the database file at path. The ioBuf must
// be a page-sized, page-aligned buffer owned by the calling cubicle with
// windows open for VFSCORE and the file-system backend.
func OpenPager(e *cubicle.Env, vfs *vfscore.Client, path string, ioBuf vm.Addr, cacheCap int) (*Pager, error) {
	if cacheCap < 8 {
		cacheCap = 8
	}
	p := &Pager{
		e: e, vfs: vfs, path: path, ioBuf: ioBuf,
		cache: make(map[uint32]*cpage), cap: cacheCap,
		origs: make(map[uint32][]byte), jWritten: make(map[uint32]bool),
	}
	fd, errno := vfs.Open(e, path, vfscore.OCreat|vfscore.ORdwr)
	if errno != vfscore.EOK {
		return nil, fmt.Errorf("sqldb: open %s: errno %d", path, errno)
	}
	p.fd = fd
	// Hot-journal recovery: a journal file left behind by a crashed
	// transaction holds the pre-transaction page images; replay them into
	// the database before reading anything (the rollback-journal recovery
	// protocol).
	if err := p.recoverHotJournal(); err != nil {
		return nil, err
	}
	size, errno := vfs.FStat(e, fd)
	if errno != vfscore.EOK {
		return nil, fmt.Errorf("sqldb: fstat: errno %d", errno)
	}
	if size == 0 {
		// Fresh database: header page plus the catalog root.
		p.nPages = 1
		hdr := p.freshPage(1)
		copy(hdr.data, magic[:])
		cat := p.Allocate()
		initBtreePage(p.page(cat).data, pgTableLeaf)
		p.catRoot = cat
		p.writeHeader()
		if err := p.flushAll(); err != nil {
			return nil, err
		}
	} else {
		if err := p.readPage(1); err != nil {
			return nil, err
		}
		hdr := p.cache[1]
		for i := range magic {
			if hdr.data[i] != magic[i] {
				return nil, fmt.Errorf("sqldb: %s is not a database", path)
			}
		}
		p.nPages = binary.LittleEndian.Uint32(hdr.data[8:])
		p.catRoot = binary.LittleEndian.Uint32(hdr.data[12:])
		p.freeHd = binary.LittleEndian.Uint32(hdr.data[16:])
	}
	return p, nil
}

// recoverHotJournal replays a leftover journal file into the database and
// removes it. Each journal record is an 8-byte header (page number) plus
// the page's pre-transaction image.
func (p *Pager) recoverHotJournal() error {
	jpath := p.path + "-journal"
	jsize, errno := p.vfs.Stat(p.e, jpath)
	if errno != vfscore.EOK || jsize == 0 {
		return nil // no hot journal
	}
	jfd, errno := p.vfs.Open(p.e, jpath, vfscore.ORdonly)
	if errno != vfscore.EOK {
		return fmt.Errorf("sqldb: hot journal open: errno %d", errno)
	}
	p.Stats.Recoveries++
	const rec = 8 + PageSize
	for off := uint64(0); off+rec <= jsize; off += rec {
		n, errno := p.vfs.PRead(p.e, jfd, p.ioBuf, 8, off)
		if errno != vfscore.EOK || n != 8 {
			return fmt.Errorf("sqldb: hot journal header read: errno %d", errno)
		}
		hdr := p.e.ReadBytes(p.ioBuf, 8)
		pgno := binary.LittleEndian.Uint32(hdr)
		// Copy the image straight from the journal to the database page.
		if n, errno := p.vfs.PRead(p.e, jfd, p.ioBuf, PageSize, off+8); errno != vfscore.EOK || n != PageSize {
			return fmt.Errorf("sqldb: hot journal image read: errno %d", errno)
		}
		if n, errno := p.vfs.PWrite(p.e, p.fd, p.ioBuf, PageSize, uint64(pgno-1)*PageSize); errno != vfscore.EOK || n != PageSize {
			return fmt.Errorf("sqldb: hot journal replay write: errno %d", errno)
		}
	}
	p.vfs.FSync(p.e, p.fd)
	p.vfs.Close(p.e, jfd)
	if errno := p.vfs.Unlink(p.e, jpath); errno != vfscore.EOK {
		return fmt.Errorf("sqldb: hot journal unlink: errno %d", errno)
	}
	return nil
}

// writeHeader refreshes page 1 from the pager fields.
func (p *Pager) writeHeader() {
	hdr := p.page(1)
	p.beforeWrite(hdr)
	binary.LittleEndian.PutUint32(hdr.data[8:], p.nPages)
	binary.LittleEndian.PutUint32(hdr.data[12:], p.catRoot)
	binary.LittleEndian.PutUint32(hdr.data[16:], p.freeHd)
	hdr.dirty = true
}

// freshPage installs an all-zero cached page without touching the file.
func (p *Pager) freshPage(pgno uint32) *cpage {
	pg := &cpage{pgno: pgno, data: make([]byte, PageSize), dirty: true}
	p.cache[pgno] = pg
	p.touch(pg)
	return pg
}

func (p *Pager) touch(pg *cpage) {
	p.tick++
	pg.lru = p.tick
}

// readPage faults a page in from the file through the window-shared I/O
// buffer.
func (p *Pager) readPage(pgno uint32) error {
	p.e.Work(workPageIO)
	p.Stats.Reads++
	off := uint64(pgno-1) * PageSize
	p.openIOWindow()
	n, errno := p.vfs.PRead(p.e, p.fd, p.ioBuf, PageSize, off)
	p.closeIOWindow()
	if errno != vfscore.EOK {
		return fmt.Errorf("sqldb: read page %d: errno %d", pgno, errno)
	}
	data := make([]byte, PageSize)
	copy(data, p.e.ReadBytes(p.ioBuf, n))
	pg := &cpage{pgno: pgno, data: data}
	p.cache[pgno] = pg
	p.touch(pg)
	p.evictIfNeeded()
	return nil
}

// flushPage writes one page back to the file.
func (p *Pager) flushPage(pg *cpage) error {
	p.e.Work(workPageIO)
	p.Stats.Writes++
	p.e.Write(p.ioBuf, pg.data)
	off := uint64(pg.pgno-1) * PageSize
	p.openIOWindow()
	n, errno := p.vfs.PWrite(p.e, p.fd, p.ioBuf, PageSize, off)
	p.closeIOWindow()
	if errno != vfscore.EOK || n != PageSize {
		return fmt.Errorf("sqldb: write page %d: errno %d", pg.pgno, errno)
	}
	pg.dirty = false
	return nil
}

// evictIfNeeded keeps the cache within capacity, spilling dirty pages
// (after their original image is safely in the journal).
func (p *Pager) evictIfNeeded() {
	for len(p.cache) > p.cap {
		var victim *cpage
		for _, pg := range p.cache {
			if pg.pgno == 1 {
				continue // keep the header resident
			}
			if victim == nil || pg.lru < victim.lru {
				victim = pg
			}
		}
		if victim == nil {
			return
		}
		if victim.dirty {
			p.Stats.Spills++
			if p.inTxn {
				p.spillJournal()
			}
			if err := p.flushPage(victim); err != nil {
				panic(err)
			}
		}
		delete(p.cache, victim.pgno)
	}
}

// page returns the cached page, faulting it in if necessary.
func (p *Pager) page(pgno uint32) *cpage {
	if pg, ok := p.cache[pgno]; ok {
		p.Stats.Hits++
		p.touch(pg)
		return pg
	}
	p.Stats.Misses++
	if err := p.readPage(pgno); err != nil {
		panic(err)
	}
	return p.cache[pgno]
}

// Get returns a page's contents for reading.
func (p *Pager) Get(pgno uint32) []byte { return p.page(pgno).data }

// beforeWrite records the page's pre-transaction image.
func (p *Pager) beforeWrite(pg *cpage) {
	if !p.inTxn {
		return
	}
	if _, ok := p.origs[pg.pgno]; !ok {
		orig := make([]byte, PageSize)
		copy(orig, pg.data)
		p.origs[pg.pgno] = orig
	}
}

// Write returns a page's contents for modification, journaling the
// original image first.
func (p *Pager) Write(pgno uint32) []byte {
	pg := p.page(pgno)
	p.beforeWrite(pg)
	pg.dirty = true
	return pg.data
}

// Allocate returns a fresh page number (from the freelist or by growing
// the file).
func (p *Pager) Allocate() uint32 {
	if p.freeHd != 0 {
		pgno := p.freeHd
		data := p.Get(pgno)
		p.freeHd = binary.LittleEndian.Uint32(data[0:])
		w := p.Write(pgno)
		for i := range w {
			w[i] = 0
		}
		p.writeHeader()
		return pgno
	}
	p.nPages++
	pgno := p.nPages
	p.freshPage(pgno)
	p.beforeWrite(p.cache[pgno])
	p.writeHeader()
	p.evictIfNeeded()
	return pgno
}

// Free returns a page to the freelist.
func (p *Pager) Free(pgno uint32) {
	w := p.Write(pgno)
	binary.LittleEndian.PutUint32(w[0:], p.freeHd)
	p.freeHd = pgno
	p.writeHeader()
}

// NPages returns the database size in pages.
func (p *Pager) NPages() uint32 { return p.nPages }

// CatalogRoot returns the catalog btree root page.
func (p *Pager) CatalogRoot() uint32 { return p.catRoot }

// --- Transactions -----------------------------------------------------------

// InTxn reports whether a transaction is open.
func (p *Pager) InTxn() bool { return p.inTxn }

// Begin opens a transaction.
func (p *Pager) Begin() error {
	if p.inTxn {
		return fmt.Errorf("sqldb: nested transaction")
	}
	p.inTxn = true
	p.origs = make(map[uint32][]byte)
	p.jWritten = make(map[uint32]bool)
	p.jOffset = 0
	return nil
}

// spillJournal makes sure every recorded original image is on disk in the
// journal file before a dirty page may overwrite the database (the
// rollback-journal write-ahead rule).
func (p *Pager) spillJournal() {
	if p.jfd == 0 {
		fd, errno := p.vfs.Open(p.e, p.path+"-journal", vfscore.OCreat|vfscore.OWronly|vfscore.OTrunc)
		if errno != vfscore.EOK {
			panic(fmt.Sprintf("sqldb: journal open: errno %d", errno))
		}
		p.jfd = fd
	}
	pgnos := make([]uint32, 0, len(p.origs))
	for pgno := range p.origs {
		if !p.jWritten[pgno] {
			pgnos = append(pgnos, pgno)
		}
	}
	sort.Slice(pgnos, func(i, j int) bool { return pgnos[i] < pgnos[j] })
	for _, pgno := range pgnos {
		orig := p.origs[pgno]
		p.e.Work(workPageIO)
		p.Stats.JournalPages++
		var hdr [8]byte
		binary.LittleEndian.PutUint32(hdr[:], pgno)
		p.e.Write(p.ioBuf, hdr[:])
		p.openIOWindow()
		p.vfs.PWrite(p.e, p.jfd, p.ioBuf, 8, p.jOffset)
		p.closeIOWindow()
		p.jOffset += 8
		p.e.Write(p.ioBuf, orig)
		p.openIOWindow()
		p.vfs.PWrite(p.e, p.jfd, p.ioBuf, PageSize, p.jOffset)
		p.closeIOWindow()
		p.jOffset += PageSize
		p.jWritten[pgno] = true
	}
	p.vfs.FSync(p.e, p.jfd)
	p.Stats.Fsyncs++
}

// flushAll writes every dirty cached page in ascending page order (both
// for write locality and so that sparse-file zero-filling behaves
// deterministically).
func (p *Pager) flushAll() error {
	pgnos := make([]uint32, 0, len(p.cache))
	for pgno, pg := range p.cache {
		if pg.dirty {
			pgnos = append(pgnos, pgno)
		}
	}
	sort.Slice(pgnos, func(i, j int) bool { return pgnos[i] < pgnos[j] })
	for _, pgno := range pgnos {
		if err := p.flushPage(p.cache[pgno]); err != nil {
			return err
		}
	}
	return nil
}

// Commit makes the transaction durable: journal to disk, fsync, database
// pages to disk, fsync, journal deleted — the SQLite rollback-journal
// commit protocol, and the source of the OS-interface traffic that makes
// the paper's "group 2" queries expensive.
func (p *Pager) Commit() error {
	if !p.inTxn {
		return fmt.Errorf("sqldb: commit outside transaction")
	}
	p.Stats.Commits++
	if len(p.origs) > 0 {
		p.spillJournal()
	}
	if err := p.flushAll(); err != nil {
		return err
	}
	p.vfs.FSync(p.e, p.fd)
	p.Stats.Fsyncs++
	if p.jfd != 0 {
		p.vfs.Close(p.e, p.jfd)
		p.vfs.Unlink(p.e, p.path+"-journal")
		p.jfd = 0
	}
	p.inTxn = false
	p.origs = map[uint32][]byte{}
	p.jWritten = map[uint32]bool{}
	return nil
}

// Rollback restores every page touched by the transaction.
func (p *Pager) Rollback() error {
	if !p.inTxn {
		return fmt.Errorf("sqldb: rollback outside transaction")
	}
	for pgno, orig := range p.origs {
		pg, ok := p.cache[pgno]
		if !ok {
			p.freshPage(pgno)
			pg = p.cache[pgno]
		}
		copy(pg.data, orig)
		pg.dirty = true
	}
	// Restore header-derived fields.
	hdr := p.page(1)
	p.nPages = binary.LittleEndian.Uint32(hdr.data[8:])
	p.catRoot = binary.LittleEndian.Uint32(hdr.data[12:])
	p.freeHd = binary.LittleEndian.Uint32(hdr.data[16:])
	if err := p.flushAll(); err != nil {
		return err
	}
	if p.jfd != 0 {
		p.vfs.Close(p.e, p.jfd)
		p.vfs.Unlink(p.e, p.path+"-journal")
		p.jfd = 0
	}
	p.inTxn = false
	p.origs = map[uint32][]byte{}
	p.jWritten = map[uint32]bool{}
	return nil
}

// Close flushes and closes the database file.
func (p *Pager) Close() error {
	if p.inTxn {
		if err := p.Rollback(); err != nil {
			return err
		}
	}
	if err := p.flushAll(); err != nil {
		return err
	}
	p.vfs.Close(p.e, p.fd)
	return nil
}
