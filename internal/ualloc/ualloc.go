// Package ualloc is the ALLOC component: the system-wide memory allocator
// of the paper's deployments. In the NGINX deployment every component
// allocates through ALLOC (making it the hottest cubicle in Figure 5); in
// the SQLite deployment each cubicle uses its own allocation library and
// ALLOC serves only coarse-grained allocations (Figure 8).
//
// ALLOC owns the arena pages it hands out and therefore manages one
// window per client cubicle covering that client's arenas, opened for the
// client — the client's accesses then trap-and-map onto its own key. A
// client that wants to pass an ALLOC-owned buffer to a third cubicle asks
// ALLOC to share it (the nested-call rule of §5.6: only the owner of the
// memory can open windows onto it, so sharing must be arranged by ALLOC
// "ahead of time").
package ualloc

import (
	"fmt"

	"cubicleos/internal/cubicle"
	"cubicleos/internal/vm"
)

// Name of the component in deployments.
const Name = "ALLOC"

// arenaBytes is the granularity at which ALLOC grows a client's arena.
const arenaBytes = 64 * vm.PageSize

// mallocWork models the allocator's own bookkeeping cost per operation.
const mallocWork = 60

type block struct {
	addr vm.Addr
	size uint64
}

// clientState is ALLOC's per-client bookkeeping: the client's arenas are
// covered by one window opened for that client only, so distinct clients
// never share pages.
type clientState struct {
	window cubicle.WID
	opened bool
	free   []block
	sizes  map[vm.Addr]uint64
	shares map[vm.Addr]*shareState
	// arena is the client's arena footprint in bytes. Arenas are never
	// returned to the monitor, so this is also the client's high-water
	// mark — the quantity ClientQuota caps.
	arena uint64
}

type shareState struct {
	wid    cubicle.WID
	size   uint64
	openTo map[cubicle.ID]bool
}

// Module is the ALLOC component state.
type Module struct {
	clients map[cubicle.ID]*clientState
	// ClientQuota caps each client's arena footprint in bytes (0 =
	// unlimited). Exceeding it raises a *cubicle.QuotaFault attributed to
	// the client — a transient, contained overload signal, not a crash.
	ClientQuota uint64
}

// New creates the ALLOC module.
func New() *Module {
	return &Module{clients: make(map[cubicle.ID]*clientState)}
}

func (a *Module) client(e *cubicle.Env, id cubicle.ID) *clientState {
	cs, ok := a.clients[id]
	if !ok {
		cs = &clientState{
			window: e.WindowInit(),
			sizes:  make(map[vm.Addr]uint64),
			shares: make(map[vm.Addr]*shareState),
		}
		a.clients[id] = cs
	}
	return cs
}

// insertFree adds a block to the client free list with coalescing.
func (cs *clientState) insertFree(b block) {
	i := 0
	for i < len(cs.free) && cs.free[i].addr < b.addr {
		i++
	}
	cs.free = append(cs.free, block{})
	copy(cs.free[i+1:], cs.free[i:])
	cs.free[i] = b
	if i+1 < len(cs.free) && cs.free[i].addr.Add(cs.free[i].size) == cs.free[i+1].addr {
		cs.free[i].size += cs.free[i+1].size
		cs.free = append(cs.free[:i+1], cs.free[i+2:]...)
	}
	if i > 0 && cs.free[i-1].addr.Add(cs.free[i-1].size) == cs.free[i].addr {
		cs.free[i-1].size += cs.free[i].size
		cs.free = append(cs.free[:i], cs.free[i+1:]...)
	}
}

// malloc allocates size bytes for the calling cubicle.
func (a *Module) malloc(e *cubicle.Env, size uint64) vm.Addr {
	e.Work(mallocWork)
	if size == 0 {
		size = 1
	}
	caller := e.Caller()
	cs := a.client(e, caller)
	align := uint64(16)
	if size >= vm.PageSize {
		align = vm.PageSize
	}
	size = (size + 15) &^ 15
	for pass := 0; pass < 2; pass++ {
		for i := range cs.free {
			b := cs.free[i]
			start := (uint64(b.addr) + align - 1) &^ (align - 1)
			pad := start - uint64(b.addr)
			if b.size < pad+size {
				continue
			}
			cs.free = append(cs.free[:i], cs.free[i+1:]...)
			if pad > 0 {
				cs.insertFree(block{addr: b.addr, size: pad})
			}
			if rem := b.size - pad - size; rem > 0 {
				cs.insertFree(block{addr: vm.Addr(start + size), size: rem})
			}
			cs.sizes[vm.Addr(start)] = size
			return vm.Addr(start)
		}
		// Grow: a fresh page-aligned arena owned by ALLOC, added to the
		// client's window and opened for it.
		grow := arenaBytes
		if size+vm.PageSize > uint64(grow) {
			grow = int((size + 2*vm.PageSize - 1) &^ (vm.PageSize - 1))
		}
		if q := a.ClientQuota; q != 0 && cs.arena+uint64(grow) > q {
			e.RaiseQuota(caller, "arena", cs.arena+uint64(grow), q)
		}
		arena := e.HeapAlloc(uint64(grow))
		e.WindowAdd(cs.window, arena, uint64(grow))
		if !cs.opened {
			e.WindowOpen(cs.window, caller)
			cs.opened = true
		}
		cs.arena += uint64(grow)
		cs.insertFree(block{addr: arena, size: uint64(grow)})
	}
	panic(&cubicle.APIError{Cubicle: caller, Op: "alloc_malloc",
		Reason: fmt.Sprintf("arena growth failed to satisfy %d bytes", size)})
}

// ClientArenaBytes returns the arena footprint of one client cubicle.
func (a *Module) ClientArenaBytes(id cubicle.ID) uint64 {
	if cs, ok := a.clients[id]; ok {
		return cs.arena
	}
	return 0
}

// TotalArenaBytes returns the arena footprint across all clients.
func (a *Module) TotalArenaBytes() uint64 {
	var n uint64
	for _, cs := range a.clients {
		n += cs.arena
	}
	return n
}

// freeAlloc releases an allocation of the calling cubicle.
func (a *Module) freeAlloc(e *cubicle.Env, addr vm.Addr) {
	e.Work(mallocWork)
	caller := e.Caller()
	cs := a.client(e, caller)
	size, ok := cs.sizes[addr]
	if !ok {
		panic(&cubicle.APIError{Cubicle: caller, Op: "alloc_free",
			Reason: fmt.Sprintf("free of unallocated address %#x", uint64(addr))})
	}
	if sh, shared := cs.shares[addr]; shared {
		e.WindowCloseAll(sh.wid)
		e.WindowDestroy(sh.wid)
		delete(cs.shares, addr)
	}
	delete(cs.sizes, addr)
	cs.insertFree(block{addr: addr, size: size})
}

// share opens the allocation at addr for an additional cubicle cid via a
// dedicated window. Page granularity applies: the client should allocate
// shared buffers page-aligned (≥ one page) to avoid unintended sharing.
func (a *Module) share(e *cubicle.Env, addr vm.Addr, cid cubicle.ID) {
	caller := e.Caller()
	cs := a.client(e, caller)
	size, ok := cs.sizes[addr]
	if !ok {
		panic(&cubicle.APIError{Cubicle: caller, Op: "alloc_share",
			Reason: fmt.Sprintf("share of unallocated address %#x", uint64(addr))})
	}
	sh, ok := cs.shares[addr]
	if !ok {
		sh = &shareState{wid: e.WindowInit(), size: size, openTo: make(map[cubicle.ID]bool)}
		e.WindowAdd(sh.wid, addr, size)
		cs.shares[addr] = sh
	}
	if !sh.openTo[cid] {
		e.WindowOpen(sh.wid, cid)
		sh.openTo[cid] = true
	}
}

// unshare revokes a prior share of addr for cid.
func (a *Module) unshare(e *cubicle.Env, addr vm.Addr, cid cubicle.ID) {
	caller := e.Caller()
	cs := a.client(e, caller)
	sh, ok := cs.shares[addr]
	if !ok {
		return
	}
	e.WindowClose(sh.wid, cid)
	delete(sh.openTo, cid)
}

// Component returns the ALLOC component for the builder.
func (a *Module) Component() *cubicle.Component {
	return &cubicle.Component{
		Name: Name,
		Kind: cubicle.KindIsolated,
		Exports: []cubicle.ExportDecl{
			{Name: "alloc_malloc", RegArgs: 1, Fn: func(e *cubicle.Env, args []uint64) []uint64 {
				cubicle.GuardArgs(e, "alloc_malloc", args, 1)
				return []uint64{uint64(a.malloc(e, args[0]))}
			}},
			{Name: "alloc_free", RegArgs: 1, Fn: func(e *cubicle.Env, args []uint64) []uint64 {
				cubicle.GuardArgs(e, "alloc_free", args, 1)
				a.freeAlloc(e, vm.Addr(args[0]))
				return nil
			}},
			{Name: "alloc_palloc", RegArgs: 1, Fn: func(e *cubicle.Env, args []uint64) []uint64 {
				cubicle.GuardArgs(e, "alloc_palloc", args, 1)
				return []uint64{uint64(a.malloc(e, args[0]*vm.PageSize))}
			}},
			{Name: "alloc_share", RegArgs: 2, Fn: func(e *cubicle.Env, args []uint64) []uint64 {
				cubicle.GuardArgs(e, "alloc_share", args, 2)
				a.share(e, vm.Addr(args[0]), cubicle.ID(args[1]))
				return nil
			}},
			{Name: "alloc_unshare", RegArgs: 2, Fn: func(e *cubicle.Env, args []uint64) []uint64 {
				cubicle.GuardArgs(e, "alloc_unshare", args, 2)
				a.unshare(e, vm.Addr(args[0]), cubicle.ID(args[1]))
				return nil
			}},
		},
	}
}

// Client is typed access to ALLOC from another cubicle.
type Client struct {
	malloc, free, palloc, share, unshare cubicle.Handle
}

// NewClient resolves ALLOC's entry points for a caller cubicle.
func NewClient(m *cubicle.Monitor, caller cubicle.ID) *Client {
	return &Client{
		malloc:  m.MustResolve(caller, Name, "alloc_malloc"),
		free:    m.MustResolve(caller, Name, "alloc_free"),
		palloc:  m.MustResolve(caller, Name, "alloc_palloc"),
		share:   m.MustResolve(caller, Name, "alloc_share"),
		unshare: m.MustResolve(caller, Name, "alloc_unshare"),
	}
}

// Malloc allocates size bytes owned by ALLOC, windowed to the caller.
func (c *Client) Malloc(e *cubicle.Env, size uint64) vm.Addr {
	return vm.Addr(c.malloc.Call(e, size)[0])
}

// Free releases an allocation.
func (c *Client) Free(e *cubicle.Env, addr vm.Addr) { c.free.Call(e, uint64(addr)) }

// Palloc allocates npages pages, page-aligned.
func (c *Client) Palloc(e *cubicle.Env, npages uint64) vm.Addr {
	return vm.Addr(c.palloc.Call(e, npages)[0])
}

// Share opens the caller's allocation at addr for cubicle cid.
func (c *Client) Share(e *cubicle.Env, addr vm.Addr, cid cubicle.ID) {
	c.share.Call(e, uint64(addr), uint64(cid))
}

// Unshare revokes a Share.
func (c *Client) Unshare(e *cubicle.Env, addr vm.Addr, cid cubicle.ID) {
	c.unshare.Call(e, uint64(addr), uint64(cid))
}

// Allocator abstracts where a component gets its memory: its own cubicle
// sub-allocator (the SQLite deployment) or the ALLOC component (the NGINX
// deployment). Share/Unshare are no-ops for local memory because the
// component owns it and manages windows itself.
type Allocator interface {
	Malloc(e *cubicle.Env, size uint64) vm.Addr
	Free(e *cubicle.Env, addr vm.Addr)
	// Owned reports whether the component itself owns the memory (and
	// can therefore window it directly).
	Owned() bool
	// Share makes [addr,addr+size) accessible to cid, however the
	// underlying ownership requires.
	Share(e *cubicle.Env, addr vm.Addr, size uint64, cid cubicle.ID)
	// Unshare revokes a Share.
	Unshare(e *cubicle.Env, addr vm.Addr, cid cubicle.ID)
}

// Local allocates from the calling cubicle's own sub-allocator and
// windows memory directly. Windows created by Share are tracked so
// Unshare can close them.
type Local struct {
	wids map[vm.Addr]cubicle.WID
}

// NewLocal returns a Local allocator.
func NewLocal() *Local { return &Local{wids: make(map[vm.Addr]cubicle.WID)} }

// Malloc allocates from the cubicle's own heap.
func (l *Local) Malloc(e *cubicle.Env, size uint64) vm.Addr { return e.HeapAlloc(size) }

// Free releases a local allocation.
func (l *Local) Free(e *cubicle.Env, addr vm.Addr) {
	if wid, ok := l.wids[addr]; ok {
		e.WindowCloseAll(wid)
		e.WindowDestroy(wid)
		delete(l.wids, addr)
	}
	e.HeapFree(addr)
}

// Owned reports true: the cubicle owns its local heap.
func (l *Local) Owned() bool { return true }

// Share opens a window onto the local allocation for cid.
func (l *Local) Share(e *cubicle.Env, addr vm.Addr, size uint64, cid cubicle.ID) {
	wid, ok := l.wids[addr]
	if !ok {
		wid = e.WindowInit()
		e.WindowAdd(wid, addr, size)
		l.wids[addr] = wid
	}
	e.WindowOpen(wid, cid)
}

// Unshare closes the window for cid.
func (l *Local) Unshare(e *cubicle.Env, addr vm.Addr, cid cubicle.ID) {
	if wid, ok := l.wids[addr]; ok {
		e.WindowClose(wid, cid)
	}
}

// Remote allocates through the ALLOC component.
type Remote struct{ C *Client }

// Malloc allocates via ALLOC.
func (r *Remote) Malloc(e *cubicle.Env, size uint64) vm.Addr { return r.C.Malloc(e, size) }

// Free releases via ALLOC.
func (r *Remote) Free(e *cubicle.Env, addr vm.Addr) { r.C.Free(e, addr) }

// Owned reports false: ALLOC owns the memory.
func (r *Remote) Owned() bool { return false }

// Share asks ALLOC to open the allocation for cid.
func (r *Remote) Share(e *cubicle.Env, addr vm.Addr, size uint64, cid cubicle.ID) {
	r.C.Share(e, addr, cid)
}

// Unshare asks ALLOC to revoke the share.
func (r *Remote) Unshare(e *cubicle.Env, addr vm.Addr, cid cubicle.ID) {
	r.C.Unshare(e, addr, cid)
}
