package ualloc_test

import (
	"testing"

	"cubicleos/internal/boot"
	"cubicleos/internal/cubicle"
	"cubicleos/internal/ualloc"
	"cubicleos/internal/vm"
)

func bootWithApps(t *testing.T, names ...string) *boot.System {
	t.Helper()
	var extra []*cubicle.Component
	for _, n := range names {
		extra = append(extra, &cubicle.Component{
			Name: n, Kind: cubicle.KindIsolated,
			Exports: []cubicle.ExportDecl{{Name: "main_" + n,
				Fn: func(e *cubicle.Env, a []uint64) []uint64 { return nil }}},
		})
	}
	return boot.MustNewFS(boot.Config{Mode: cubicle.ModeFull, Extra: extra})
}

func TestAllocMallocIsUsableByClient(t *testing.T) {
	s := bootWithApps(t, "A")
	err := s.RunAs("A", func(e *cubicle.Env) {
		c := ualloc.NewClient(s.M, s.Cubs["A"].ID)
		buf := c.Malloc(e, 1000)
		if buf == 0 {
			t.Fatal("malloc returned null")
		}
		// The memory is ALLOC-owned but windowed to A: accesses
		// trap-and-map onto A's key.
		e.Memset(buf, 0x5A, 1000)
		if e.LoadByte(buf.Add(999)) != 0x5A {
			t.Error("allocation not writable/readable")
		}
		p := s.M.AS.Page(buf)
		if p.Owner != int(s.Cubs["ALLOC"].ID) {
			t.Errorf("page owner = %d, want ALLOC", p.Owner)
		}
		c.Free(e, buf)
	})
	if err != nil {
		t.Fatal(err)
	}
}

func TestAllocClientsDoNotSharePages(t *testing.T) {
	s := bootWithApps(t, "A", "B")
	var bufA vm.Addr
	if err := s.RunAs("A", func(e *cubicle.Env) {
		c := ualloc.NewClient(s.M, s.Cubs["A"].ID)
		bufA = c.Malloc(e, 64)
		e.Memset(bufA, 1, 64)
	}); err != nil {
		t.Fatal(err)
	}
	if err := s.RunAs("B", func(e *cubicle.Env) {
		c := ualloc.NewClient(s.M, s.Cubs["B"].ID)
		bufB := c.Malloc(e, 64)
		e.Memset(bufB, 2, 64)
		if bufA.PageNum() == bufB.PageNum() {
			t.Fatal("allocations for different clients share a page")
		}
		// B must not be able to touch A's ALLOC-backed buffer.
		if fault := cubicle.Catch(func() { e.LoadByte(bufA) }); fault == nil {
			t.Error("B read A's ALLOC-backed buffer")
		}
	}); err != nil {
		t.Fatal(err)
	}
}

func TestAllocShareUnshare(t *testing.T) {
	s := bootWithApps(t, "A", "B")
	var buf vm.Addr
	if err := s.RunAs("A", func(e *cubicle.Env) {
		c := ualloc.NewClient(s.M, s.Cubs["A"].ID)
		buf = c.Malloc(e, vm.PageSize) // page-aligned shared buffer
		e.Memset(buf, 0x77, vm.PageSize)
		c.Share(e, buf, s.Cubs["B"].ID)
	}); err != nil {
		t.Fatal(err)
	}
	if err := s.RunAs("B", func(e *cubicle.Env) {
		if got := e.LoadByte(buf.Add(10)); got != 0x77 {
			t.Errorf("shared read = %#x", got)
		}
	}); err != nil {
		t.Fatal(err)
	}
	// Unshare, then force a retag via the owner (A touches it), and B
	// must fault.
	if err := s.RunAs("A", func(e *cubicle.Env) {
		c := ualloc.NewClient(s.M, s.Cubs["A"].ID)
		c.Unshare(e, buf, s.Cubs["B"].ID)
		_ = e.LoadByte(buf) // A's access retags to A (arena window)
	}); err != nil {
		t.Fatal(err)
	}
	if err := s.RunAs("B", func(e *cubicle.Env) {
		if fault := cubicle.Catch(func() { e.LoadByte(buf) }); fault == nil {
			t.Error("B still reads after unshare")
		}
	}); err != nil {
		t.Fatal(err)
	}
}

func TestAllocFreeErrors(t *testing.T) {
	s := bootWithApps(t, "A")
	err := s.RunAs("A", func(e *cubicle.Env) {
		c := ualloc.NewClient(s.M, s.Cubs["A"].ID)
		buf := c.Malloc(e, 32)
		c.Free(e, buf)
		if fault := cubicle.Catch(func() { c.Free(e, buf) }); fault == nil {
			t.Error("double free via ALLOC succeeded")
		}
		if fault := cubicle.Catch(func() { c.Share(e, vm.Addr(0xdead000), s.Cubs["A"].ID) }); fault == nil {
			t.Error("share of unallocated address succeeded")
		}
	})
	if err != nil {
		t.Fatal(err)
	}
}

func TestAllocReuseAfterFree(t *testing.T) {
	s := bootWithApps(t, "A")
	err := s.RunAs("A", func(e *cubicle.Env) {
		c := ualloc.NewClient(s.M, s.Cubs["A"].ID)
		a := c.Malloc(e, 128)
		c.Free(e, a)
		b := c.Malloc(e, 128)
		if a != b {
			t.Errorf("freed ALLOC block not reused: %#x vs %#x", uint64(a), uint64(b))
		}
	})
	if err != nil {
		t.Fatal(err)
	}
}

func TestPalloc(t *testing.T) {
	s := bootWithApps(t, "A")
	err := s.RunAs("A", func(e *cubicle.Env) {
		c := ualloc.NewClient(s.M, s.Cubs["A"].ID)
		buf := c.Palloc(e, 3)
		if buf.PageOff() != 0 {
			t.Error("palloc not page-aligned")
		}
		e.Memset(buf, 9, 3*vm.PageSize)
	})
	if err != nil {
		t.Fatal(err)
	}
}

func TestLocalAllocatorShare(t *testing.T) {
	s := bootWithApps(t, "A", "B")
	local := ualloc.NewLocal()
	var buf vm.Addr
	if err := s.RunAs("A", func(e *cubicle.Env) {
		buf = local.Malloc(e, vm.PageSize)
		e.Memset(buf, 0x42, vm.PageSize)
		if !local.Owned() {
			t.Error("local allocator not owned")
		}
		local.Share(e, buf, vm.PageSize, s.Cubs["B"].ID)
	}); err != nil {
		t.Fatal(err)
	}
	if err := s.RunAs("B", func(e *cubicle.Env) {
		if got := e.LoadByte(buf); got != 0x42 {
			t.Errorf("shared local read = %#x", got)
		}
	}); err != nil {
		t.Fatal(err)
	}
	if err := s.RunAs("A", func(e *cubicle.Env) {
		local.Unshare(e, buf, s.Cubs["B"].ID)
		_ = e.LoadByte(buf)
	}); err != nil {
		t.Fatal(err)
	}
	if err := s.RunAs("B", func(e *cubicle.Env) {
		if fault := cubicle.Catch(func() { e.LoadByte(buf) }); fault == nil {
			t.Error("B reads local buffer after unshare")
		}
	}); err != nil {
		t.Fatal(err)
	}
	// Free closes and destroys the window.
	if err := s.RunAs("A", func(e *cubicle.Env) {
		local.Free(e, buf)
	}); err != nil {
		t.Fatal(err)
	}
}
