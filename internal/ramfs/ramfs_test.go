package ramfs_test

import (
	"bytes"
	"testing"

	"cubicleos/internal/boot"
	"cubicleos/internal/cubicle"
	"cubicleos/internal/ramfs"
	"cubicleos/internal/vfscore"
	"cubicleos/internal/vm"
)

func harness(t *testing.T, fn func(e *cubicle.Env, vfs *vfscore.Client, buf vm.Addr)) {
	t.Helper()
	s := boot.MustNewFS(boot.Config{Mode: cubicle.ModeFull, Extra: []*cubicle.Component{{
		Name: "APP", Kind: cubicle.KindIsolated,
		Exports: []cubicle.ExportDecl{{Name: "main", Fn: func(e *cubicle.Env, a []uint64) []uint64 { return nil }}},
	}}})
	err := s.RunAs("APP", func(e *cubicle.Env) {
		vfs := vfscore.NewClient(s.M, s.Cubs["APP"].ID)
		vfs.InitBuffers(e, e.CubicleOf(ramfs.Name))
		buf := e.HeapAlloc(4 * vm.PageSize)
		wid := e.WindowInit()
		e.WindowAdd(wid, buf, 4*vm.PageSize)
		e.WindowOpen(wid, e.CubicleOf(vfscore.Name))
		e.WindowOpen(wid, e.CubicleOf(ramfs.Name))
		fn(e, vfs, buf)
	})
	if err != nil {
		t.Fatal(err)
	}
}

func TestNestedDirectories(t *testing.T) {
	harness(t, func(e *cubicle.Env, vfs *vfscore.Client, buf vm.Addr) {
		for _, d := range []string{"/a", "/a/b", "/a/b/c"} {
			if errno := vfs.Mkdir(e, d); errno != vfscore.EOK {
				t.Fatalf("mkdir %s: %d", d, errno)
			}
		}
		fd, errno := vfs.Open(e, "/a/b/c/deep.txt", vfscore.OCreat|vfscore.ORdwr)
		if errno != vfscore.EOK {
			t.Fatalf("open deep: %d", errno)
		}
		e.Write(buf, []byte("deep"))
		vfs.Write(e, fd, buf, 4)
		vfs.Close(e, fd)
		if size, errno := vfs.Stat(e, "/a/b/c/deep.txt"); errno != vfscore.EOK || size != 4 {
			t.Fatalf("stat deep: size=%d errno=%d", size, errno)
		}
		// A file is not a directory.
		if _, errno := vfs.Open(e, "/a/b/c/deep.txt/x", vfscore.OCreat); errno != vfscore.ENOTDIR {
			t.Fatalf("create under file: %d", errno)
		}
		// Unlinking a non-empty directory fails.
		if errno := vfs.Unlink(e, "/a/b"); errno != vfscore.EINVAL {
			t.Fatalf("unlink non-empty dir: %d", errno)
		}
	})
}

func TestTruncateZeroFillsOnExtend(t *testing.T) {
	harness(t, func(e *cubicle.Env, vfs *vfscore.Client, buf vm.Addr) {
		fd, _ := vfs.Open(e, "/t", vfscore.OCreat|vfscore.ORdwr)
		e.Write(buf, bytes.Repeat([]byte{0xAB}, 100))
		vfs.Write(e, fd, buf, 100)
		// Shrink, then extend past the old size.
		vfs.FTruncate(e, fd, 10)
		vfs.FTruncate(e, fd, 50)
		e.Memset(buf, 0xFF, 50)
		n, _ := vfs.PRead(e, fd, buf, 50, 0)
		if n != 50 {
			t.Fatalf("read %d", n)
		}
		data := e.ReadBytes(buf, 50)
		for i := 0; i < 10; i++ {
			if data[i] != 0xAB {
				t.Fatalf("kept prefix corrupted at %d: %#x", i, data[i])
			}
		}
		for i := 10; i < 50; i++ {
			if data[i] != 0 {
				t.Fatalf("extended region not zero at %d: %#x", i, data[i])
			}
		}
	})
}

func TestSparseWriteReadsZeroGap(t *testing.T) {
	harness(t, func(e *cubicle.Env, vfs *vfscore.Client, buf vm.Addr) {
		fd, _ := vfs.Open(e, "/s", vfscore.OCreat|vfscore.ORdwr)
		e.Write(buf, []byte("END"))
		// Write at a large offset: the gap reads back as zeroes.
		vfs.PWrite(e, fd, buf, 3, 9000)
		if size, _ := vfs.FStat(e, fd); size != 9003 {
			t.Fatalf("size %d", size)
		}
		n, _ := vfs.PRead(e, fd, buf, 100, 4500)
		if n != 100 {
			t.Fatalf("gap read %d", n)
		}
		for _, b := range e.ReadBytes(buf, 100) {
			if b != 0 {
				t.Fatal("gap not zero-filled")
			}
		}
	})
}

func TestRenameReplacesTarget(t *testing.T) {
	harness(t, func(e *cubicle.Env, vfs *vfscore.Client, buf vm.Addr) {
		for i, name := range []string{"/old", "/new"} {
			fd, _ := vfs.Open(e, name, vfscore.OCreat|vfscore.ORdwr)
			e.Write(buf, []byte{byte('A' + i)})
			vfs.Write(e, fd, buf, 1)
			vfs.Close(e, fd)
		}
		if errno := vfs.Rename(e, "/old", "/new"); errno != vfscore.EOK {
			t.Fatalf("rename over target: %d", errno)
		}
		fd, _ := vfs.Open(e, "/new", vfscore.ORdonly)
		n, _ := vfs.Read(e, fd, buf, 8)
		if n != 1 || e.LoadByte(buf) != 'A' {
			t.Fatalf("target content: n=%d b=%c", n, e.LoadByte(buf))
		}
		if _, errno := vfs.Stat(e, "/old"); errno != vfscore.ENOENT {
			t.Fatal("source still exists")
		}
		// Renaming a missing source fails.
		if errno := vfs.Rename(e, "/ghost", "/x"); errno != vfscore.ENOENT {
			t.Fatalf("rename missing: %d", errno)
		}
	})
}

func TestLargeFileMultiPage(t *testing.T) {
	harness(t, func(e *cubicle.Env, vfs *vfscore.Client, buf vm.Addr) {
		fd, _ := vfs.Open(e, "/big", vfscore.OCreat|vfscore.ORdwr)
		want := make([]byte, 3*vm.PageSize+77)
		for i := range want {
			want[i] = byte(i * 13)
		}
		e.Write(buf, want)
		if n, errno := vfs.Write(e, fd, buf, uint64(len(want))); errno != vfscore.EOK || n != uint64(len(want)) {
			t.Fatalf("write: n=%d errno=%d", n, errno)
		}
		e.Memset(buf, 0, uint64(len(want)))
		if n, _ := vfs.PRead(e, fd, buf, uint64(len(want)), 0); n != uint64(len(want)) {
			t.Fatalf("read back %d", n)
		}
		if !bytes.Equal(e.ReadBytes(buf, uint64(len(want))), want) {
			t.Fatal("multi-page content mismatch")
		}
	})
}
